type t = { width : int; polynomial : int; mutable state : int }

(* One primitive polynomial per degree, from the standard tables (Golomb;
   Bardell/McAnney/Savir).  Mask bit k is the coefficient of x^k; the x^w
   term is implicit.  With the right-shift recurrence
   new_bit = parity(state land mask) this realizes
   a(t+w) = sum_k mask_k * a(t+k), so a primitive polynomial yields the
   full period 2^w - 1. *)
let primitive_polynomials =
  [|
    (* x^1 + 1 *) 0x1;
    (* x^2 + x + 1 *) 0x3;
    (* x^3 + x + 1 *) 0x3;
    (* x^4 + x + 1 *) 0x3;
    (* x^5 + x^2 + 1 *) 0x5;
    (* x^6 + x + 1 *) 0x3;
    (* x^7 + x + 1 *) 0x3;
    (* x^8 + x^4 + x^3 + x^2 + 1 *) 0x1D;
    (* x^9 + x^4 + 1 *) 0x11;
    (* x^10 + x^3 + 1 *) 0x9;
    (* x^11 + x^2 + 1 *) 0x5;
    (* x^12 + x^6 + x^4 + x + 1 *) 0x53;
    (* x^13 + x^4 + x^3 + x + 1 *) 0x1B;
    (* x^14 + x^10 + x^6 + x + 1 *) 0x443;
    (* x^15 + x + 1 *) 0x3;
    (* x^16 + x^12 + x^3 + x + 1 *) 0x100B;
    (* x^17 + x^3 + 1 *) 0x9;
    (* x^18 + x^7 + 1 *) 0x81;
    (* x^19 + x^5 + x^2 + x + 1 *) 0x27;
    (* x^20 + x^3 + 1 *) 0x9;
    (* x^21 + x^2 + 1 *) 0x5;
    (* x^22 + x + 1 *) 0x3;
    (* x^23 + x^5 + 1 *) 0x21;
    (* x^24 + x^7 + x^2 + x + 1 *) 0x87;
    (* x^25 + x^3 + 1 *) 0x9;
    (* x^26 + x^6 + x^2 + x + 1 *) 0x47;
    (* x^27 + x^5 + x^2 + x + 1 *) 0x27;
    (* x^28 + x^3 + 1 *) 0x9;
    (* x^29 + x^2 + 1 *) 0x5;
    (* x^30 + x^23 + x^2 + x + 1 *) 0x800007;
    (* x^31 + x^3 + 1 *) 0x9;
    (* x^32 + x^22 + x^2 + x + 1 *) 0x400007;
  |]

let primitive_polynomial w =
  if w < 1 || w > 32 then invalid_arg "Lfsr.primitive_polynomial: width in [1,32]";
  primitive_polynomials.(w - 1)

let create ?polynomial ~width ~seed () =
  if width < 1 || width > 32 then invalid_arg "Lfsr.create: width in [1,32]";
  let polynomial =
    match polynomial with Some p -> p | None -> primitive_polynomial width
  in
  let mask = if width = 32 then 0xFFFFFFFF else (1 lsl width) - 1 in
  if polynomial land mask = 0 then invalid_arg "Lfsr.create: empty polynomial";
  let state = seed land mask in
  if state = 0 then invalid_arg "Lfsr.create: seed must be non-zero (mod 2^width)";
  { width; polynomial = polynomial land mask; state }

let width l = l.width

let state l = l.state

let parity = Stc_bits.Word.parity

(* Fibonacci style: feedback bit = parity of tapped stages, shifted in at
   the top. *)
let step l =
  let feedback = parity (l.state land l.polynomial) in
  l.state <- (l.state lsr 1) lor (feedback lsl (l.width - 1));
  l.state

let next_pattern l =
  let current = l.state in
  ignore (step l);
  current

let sequence l n = Array.init n (fun _ -> next_pattern l)

let period l =
  let initial = l.state in
  let count = ref 0 in
  let continue = ref true in
  while !continue do
    ignore (step l);
    incr count;
    if l.state = initial then continue := false
    else if !count > 1 lsl l.width then
      invalid_arg "Lfsr.period: no recurrence (non-invertible polynomial?)"
  done;
  !count

let bit l k = (l.state lsr k) land 1 = 1
