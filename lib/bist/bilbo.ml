type mode = System | Scan | Pattern_gen | Signature

type t = {
  width : int;
  polynomial : int;
  mask : int;
  mutable mode : mode;
  mutable state : int;
}

let create ?polynomial ~width () =
  if width < 1 || width > 32 then invalid_arg "Bilbo.create: width in [1,32]";
  let polynomial =
    match polynomial with
    | Some p -> p
    | None -> Lfsr.primitive_polynomial width
  in
  let mask = if width = 32 then 0xFFFFFFFF else (1 lsl width) - 1 in
  { width; polynomial = polynomial land mask; mask; mode = System; state = 0 }

let width t = t.width

let mode t = t.mode

let set_mode t m = t.mode <- m

let state t = t.state

let load t word = t.state <- word land t.mask

let parity = Stc_bits.Word.parity

let clock t ~parallel ~serial =
  let feedback = parity (t.state land t.polynomial) in
  let next =
    match t.mode with
    | System -> parallel
    | Scan -> (t.state lsr 1) lor (Bool.to_int serial lsl (t.width - 1))
    | Pattern_gen -> (t.state lsr 1) lor (feedback lsl (t.width - 1))
    | Signature ->
      ((t.state lsr 1) lor (feedback lsl (t.width - 1))) lxor parallel
  in
  t.state <- next land t.mask;
  t.state

let scan_out t = t.state land 1 = 1
