type t = { width : int; polynomial : int; mask : int; mutable state : int }

let create ?polynomial ~width ~seed () =
  if width < 1 || width > 32 then invalid_arg "Misr.create: width in [1,32]";
  let polynomial =
    match polynomial with
    | Some p -> p
    | None -> Lfsr.primitive_polynomial width
  in
  let mask = if width = 32 then 0xFFFFFFFF else (1 lsl width) - 1 in
  { width; polynomial = polynomial land mask; mask; state = seed land mask }

let width m = m.width

let signature m = m.state

let parity = Stc_bits.Word.parity

let absorb m word =
  let feedback = parity (m.state land m.polynomial) in
  let shifted = (m.state lsr 1) lor (feedback lsl (m.width - 1)) in
  m.state <- (shifted lxor word) land m.mask;
  m.state

let absorb_all m words =
  Array.iter (fun w -> ignore (absorb m w)) words;
  m.state

let reset m seed = m.state <- seed land m.mask
