(* The pre-bit-engine partition kernels, retained verbatim (modulo
   operating on raw class maps instead of interned values) as the
   executable specification the packed implementation is property-tested
   and benchmarked against.  Nothing in the tree should call these on a
   hot path. *)

module Union_find = Stc_util.Union_find

let canonicalize cls =
  let n = Array.length cls in
  let remap = Hashtbl.create 16 in
  let out = Array.make n 0 in
  for s = 0 to n - 1 do
    out.(s) <-
      (match Hashtbl.find_opt remap cls.(s) with
      | Some id -> id
      | None ->
        let id = Hashtbl.length remap in
        Hashtbl.replace remap cls.(s) id;
        id)
  done;
  out

let num_classes cls =
  Array.fold_left (fun m c -> max m (c + 1)) 0 (canonicalize cls)

let meet a b =
  let n = Array.length a in
  if Array.length b <> n then invalid_arg "Reference.meet: size mismatch";
  let table = Hashtbl.create 16 in
  let cls = Array.make n 0 in
  for s = 0 to n - 1 do
    let key = (a.(s), b.(s)) in
    cls.(s) <-
      (match Hashtbl.find_opt table key with
      | Some id -> id
      | None ->
        let id = Hashtbl.length table in
        Hashtbl.replace table key id;
        id)
  done;
  cls

let join a b =
  let n = Array.length a in
  if Array.length b <> n then invalid_arg "Reference.join: size mismatch";
  let a = canonicalize a and b = canonicalize b in
  let uf = Union_find.create n in
  let first_a = Array.make n (-1) and first_b = Array.make n (-1) in
  for s = 0 to n - 1 do
    let ca = a.(s) and cb = b.(s) in
    if first_a.(ca) < 0 then first_a.(ca) <- s
    else ignore (Union_find.union uf first_a.(ca) s);
    if first_b.(cb) < 0 then first_b.(cb) <- s
    else ignore (Union_find.union uf first_b.(cb) s)
  done;
  canonicalize (Union_find.class_map uf)

let subseteq a b =
  let n = Array.length a in
  Array.length b = n
  && begin
    let a = canonicalize a in
    let image = Array.make n (-1) in
    let ok = ref true in
    let s = ref 0 in
    while !ok && !s < n do
      let ca = a.(!s) and cb = b.(!s) in
      if image.(ca) < 0 then image.(ca) <- cb
      else if image.(ca) <> cb then ok := false;
      incr s
    done;
    !ok
  end

let hash_class_map n cls =
  let h = ref (0x811c9dc5 + n) in
  for i = 0 to Array.length cls - 1 do
    h := ((!h lxor cls.(i)) * 0x01000193) land max_int
  done;
  !h
