(** Partitions (equivalence relations) on the finite set [{0..n-1}].

    The paper manipulates equivalence relations as subsets of [S x S]
    ordered by inclusion; this module represents them as canonical class
    maps.  Inclusion of relations corresponds to refinement of partitions:
    [subseteq p q] holds when every block of [p] lies inside a block of
    [q], i.e. [p] (as a relation) is a subset of [q].  Intersection of
    relations is {!meet}; the transitive closure of a union is {!join}.

    Values are canonical (classes numbered 0,1,... by first occurrence),
    so structural equality coincides with semantic equality and values can
    be used as keys.

    Values are additionally {e hash-consed}: every constructor interns its
    result in a domain-local weak table, so within a domain semantically
    equal partitions are physically equal ([==]), {!equal} is a pointer
    check in the common case, and {!hash} returns a cached integer.  This
    makes partitions O(1) keys for the solver's memo tables.  Values built
    in different domains may be physically distinct; {!equal} and
    {!compare} fall back to a (hash-guarded) structural check, so all
    observable semantics are domain-independent. *)

type t

(** [size p] is [n], the number of underlying elements. *)
val size : t -> int

(** [num_classes p] is the number of blocks. *)
val num_classes : t -> int

(** [class_of p s] is the dense class index of element [s]. *)
val class_of : t -> int -> int

(** [same p s t] tests whether [s] and [t] lie in the same block. *)
val same : t -> int -> int -> bool

(** [identity n] is the finest partition (all singletons) - the relation
    written [=] in the paper. *)
val identity : int -> t

(** [universal n] is the coarsest partition (one block). *)
val universal : int -> t

(** [is_identity p], [is_universal p]. *)
val is_identity : t -> bool

val is_universal : t -> bool

(** [of_class_map cls] builds a partition from an arbitrary class map
    (values need not be dense; they are canonicalized). *)
val of_class_map : int array -> t

(** [class_map p] returns a copy of the canonical class map. *)
val class_map : t -> int array

(** [of_blocks ~n blocks] builds a partition from explicit blocks;
    elements not mentioned become singletons.
    @raise Invalid_argument if blocks overlap or indices are out of
    range. *)
val of_blocks : n:int -> int list list -> t

(** [blocks p] lists the blocks, each sorted, ordered by smallest
    element. *)
val blocks : t -> int list list

(** [pair_relation ~n s t] is the basis relation [p_{s,t}] of the paper:
    identity except that [s] and [t] are identified. *)
val pair_relation : n:int -> int -> int -> t

(** [merge_classes p c d] coarsens [p] by one step: blocks [c] and [d]
    (class ids in [\[0, num_classes p)]) become one block.  Equivalent to
    [join p (pair_relation s t)] for representatives [s], [t] of the two
    blocks, but via direct class-map surgery — the move kernel of the
    stochastic search.  [merge_classes p c c = p]. *)
val merge_classes : t -> int -> int -> t

(** [split_singleton p s] refines [p] by one step: element [s] leaves its
    block and becomes a singleton.  Returns [p] itself when [s] already is
    one.  The downward move kernel of the stochastic search. *)
val split_singleton : t -> int -> t

(** [class_size p c] is the number of members of block [c], counted
    word-parallel over the packed row. *)
val class_size : t -> int -> int

(** [coarsen_with p f] merges the blocks of [p] along the idempotent class
    map [f] ([f (f c) = f c], all values in [\[0, num_classes p)]): blocks
    [c] and [d] end up together iff [f c = f d].  This is the
    materialization step of the incremental closure engine
    ({!Pair.close_merge}): only dirty groups union their packed rows, clean
    blocks are blitted through, and [coarsen_with p Fun.id == p].
    Equivalent to (but much cheaper than) joining [p] with the
    corresponding representative pair relations. *)
val coarsen_with : t -> (int -> int) -> t

(** [meet p q] is the coarsest common refinement - the intersection of the
    relations. *)
val meet : t -> t -> t

(** [join p q] is the finest common coarsening - the transitive closure of
    the union of the relations. *)
val join : t -> t -> t

(** [join_all ~n ps] folds {!join} over a list, starting from
    [identity n]. *)
val join_all : n:int -> t list -> t

(** [subseteq p q] is relation inclusion ([p] refines [q]).  Decided by
    one word-parallel subset test per block of [p]. *)
val subseteq : t -> t -> bool

(** [meet_subseteq p q r] is [subseteq (meet p q) r] without
    materializing (or interning) the meet - the solver's admissibility
    and Lemma-1 viability tests in one O(n) pass. *)
val meet_subseteq : t -> t -> t -> bool

(** [equal p q] is semantic (= structural) equality; thanks to interning
    it is usually decided by a pointer comparison. *)
val equal : t -> t -> bool

(** [compare] is a total order compatible with [equal] (for use in
    sets/maps). *)
val compare : t -> t -> int

(** [hash p] is compatible with [equal].  The hash is computed once at
    interning time over the full class map and cached, so this is O(1). *)
val hash : t -> int

(** [representatives p] maps each class to its smallest member. *)
val representatives : t -> int array

(** [members p c] lists the elements of class [c], sorted. *)
val members : t -> int -> int list

(** [iter_coarse_members p f] calls [f rep s] for every element [s] that
    is not the smallest member [rep] of its block, blocks in class-id
    order, members ascending.  Singleton blocks are skipped without
    touching their elements - the workhorse of the [m]-operator and
    partition-pair checks, which only look at non-representatives. *)
val iter_coarse_members : t -> (int -> int -> unit) -> unit

(** [pp] prints blocks as [{0,3}{1,2}]. *)
val pp : Format.formatter -> t -> unit

val to_string : t -> string
