(** Element-wise reference kernels over raw class maps: the
    implementation {!Partition} used before the packed-row rewrite,
    retained as the executable specification for equivalence property
    tests and the old side of [bench core].

    All functions take class maps as plain [int array]s (ids need not be
    dense) and return canonical class maps (dense ids by first
    occurrence), so results compare with
    [Partition.class_map (Partition.op ...)] by structural equality. *)

(** [canonicalize cls] renumbers ids densely by first occurrence. *)
val canonicalize : int array -> int array

(** [num_classes cls] is the number of distinct ids. *)
val num_classes : int array -> int

(** [meet a b] is the coarsest common refinement, canonical. *)
val meet : int array -> int array -> int array

(** [join a b] is the finest common coarsening (union-find based),
    canonical. *)
val join : int array -> int array -> int array

(** [subseteq a b] is refinement: every [a]-class inside one
    [b]-class. *)
val subseteq : int array -> int array -> bool

(** [hash_class_map n cls] is the old full-width FNV mix over the class
    map - the hash {!Partition.hash} cached before the rewrite. *)
val hash_class_map : int -> int array -> int
