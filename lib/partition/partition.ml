module Word = Stc_bits.Word
module Arena = Stc_bits.Arena

(* A partition carries two synchronized representations:

   - [cls], the canonical class map (dense ids by first occurrence) -
     the external interface and the basis of the [compare] order that
     the solver's deterministic traversal depends on;
   - [rows], packed membership bitvectors, one block per [wpr] words
     ([wpr = ceil (n / Word.bits)]), in class-id order.

   The row family is where the speed lives: refinement checks become a
   couple of word subset tests per block, [join] becomes a merge of
   disjoint rows, and block iteration skips singletons without touching
   their elements.  The class map keeps [meet]/[meet_subseteq] O(n) via
   epoch-stamped pair renumbering, with no hashing on the hot path. *)

type t = {
  n : int;
  cls : int array;  (* canonical: dense class ids by first occurrence *)
  count : int;
  wpr : int;  (* words per row *)
  rows : int array;  (* count * wpr words; row c = block c's members *)
  hcache : int;  (* cached hash over (n, rows) *)
}

let wb = Word.bits

let words_per_row n = (n + wb - 1) / wb

(* [cls] must be canonical with [count] classes. *)
let rows_of_cls ~n ~count ~wpr cls =
  let rows = Array.make (count * wpr) 0 in
  for s = 0 to n - 1 do
    let idx = (Array.unsafe_get cls s * wpr) + (s / wb) in
    Array.unsafe_set rows idx
      (Array.unsafe_get rows idx lor (1 lsl (s mod wb)))
  done;
  rows

(* ------------------------------------------------------------------ *)
(* Hash-consing                                                        *)
(* ------------------------------------------------------------------ *)

(* Every constructor funnels through [intern], which keeps one canonical
   value per distinct class map in a weak table.  Within a domain, equal
   partitions are therefore physically equal, [equal] is a pointer check
   in the common case, and [hash] is a cached int - exactly what the
   solver's memo tables need for O(1) keys.

   The intern table is domain-local ([Domain.DLS]): [Weak.Make] tables
   are not safe for concurrent mutation, and a lock around a global one
   would serialize the parallel search's hottest allocation path.  The
   price is that values built in different domains may be physically
   distinct, so [equal] keeps a structural fallback (guarded by the
   cached hash); all semantics are unchanged. *)

(* Full-width FNV-style mix over the packed rows ([Hashtbl.hash] only
   samples a prefix, which collides badly on the long class maps of
   dk16/tbk).  The row family determines the partition, and at
   [count * wpr] words it is shorter than the [n]-element class map.

   Unlike class ids, row words carry their entropy in arbitrary bit
   positions (member [s] sets bit [s mod 63]), and an FNV multiply only
   diffuses low bits upward - hash tables index with the low bits, so
   partitions differing in high-half words would all share buckets.
   Each word is therefore folded onto its low half before mixing, and a
   xorshift-multiply avalanche spreads the final state both ways. *)
let hash_rows n rows =
  let h = ref (0x811c9dc5 + n) in
  for i = 0 to Array.length rows - 1 do
    let w = Array.unsafe_get rows i in
    h := (!h lxor (w lxor (w lsr 31))) * 0x01000193
  done;
  let h = !h in
  let h = (h lxor (h lsr 29)) * 0x2545f4914f6cdd1d in
  (h lxor (h lsr 32)) land max_int

module Intern = Weak.Make (struct
  type nonrec t = t

  let equal a b = a.hcache = b.hcache && a.n = b.n && a.rows = b.rows
  let hash p = p.hcache
end)

let intern_table = Domain.DLS.new_key (fun () -> Intern.create 4096)

(* [cls] must already be canonical and must not be mutated afterwards.
   [rows], when given, must be the matching row family (callers that
   already materialized the rows, e.g. [join], pass them through). *)
let intern ?rows ~n ~count cls =
  let wpr = words_per_row n in
  let rows =
    match rows with Some r -> r | None -> rows_of_cls ~n ~count ~wpr cls
  in
  let p = { n; cls; count; wpr; rows; hcache = hash_rows n rows } in
  Intern.merge (Domain.DLS.get intern_table) p

let size p = p.n

let num_classes p = p.count

let class_of p s = p.cls.(s)

let same p s t = p.cls.(s) = p.cls.(t)

(* ------------------------------------------------------------------ *)
(* Canonicalization                                                    *)
(* ------------------------------------------------------------------ *)

(* Dense renumbering by first occurrence.  The hot path (every id
   already in [0..n-1], true for every internally produced class map)
   renumbers through an epoch-stamped scratch arena: no hashing, no
   per-call allocation beyond the result.  Arbitrary ids from
   [of_class_map] fall back to a hash table. *)

let scratch = Domain.DLS.new_key (fun () -> Arena.Stamped.create 256)

let canonicalize_small cls n =
  let a = Domain.DLS.get scratch in
  Arena.Stamped.ensure a n;
  let e = Arena.Stamped.bump a in
  let data = a.data and stamp = a.stamp in
  let out = Array.make n 0 in
  let count = ref 0 in
  for s = 0 to n - 1 do
    let c = Array.unsafe_get cls s in
    if Array.unsafe_get stamp c = e then
      Array.unsafe_set out s (Array.unsafe_get data c)
    else begin
      Array.unsafe_set stamp c e;
      Array.unsafe_set data c !count;
      Array.unsafe_set out s !count;
      incr count
    end
  done;
  intern ~n ~count:!count out

let canonicalize_slow cls n =
  let remap = Hashtbl.create 16 in
  let out = Array.make n 0 in
  for s = 0 to n - 1 do
    out.(s) <-
      (match Hashtbl.find_opt remap cls.(s) with
      | Some id -> id
      | None ->
        let id = Hashtbl.length remap in
        Hashtbl.replace remap cls.(s) id;
        id)
  done;
  intern ~n ~count:(Hashtbl.length remap) out

let canonicalize cls =
  let n = Array.length cls in
  let in_range = ref true in
  for s = 0 to n - 1 do
    let c = Array.unsafe_get cls s in
    if c < 0 || c >= n then in_range := false
  done;
  if !in_range then canonicalize_small cls n else canonicalize_slow cls n

let of_class_map cls =
  if Array.length cls = 0 then invalid_arg "Partition.of_class_map: empty";
  canonicalize cls

let class_map p = Array.copy p.cls

let identity n =
  if n <= 0 then invalid_arg "Partition.identity: n must be positive";
  intern ~n ~count:n (Array.init n (fun s -> s))

let universal n =
  if n <= 0 then invalid_arg "Partition.universal: n must be positive";
  intern ~n ~count:1 (Array.make n 0)

let is_identity p = p.count = p.n

let is_universal p = p.count = 1

let of_blocks ~n blocks =
  let cls = Array.make n (-1) in
  List.iteri
    (fun b block ->
      List.iter
        (fun s ->
          if s < 0 || s >= n then
            invalid_arg (Printf.sprintf "Partition.of_blocks: %d out of range" s);
          if cls.(s) >= 0 then
            invalid_arg (Printf.sprintf "Partition.of_blocks: %d in two blocks" s);
          cls.(s) <- b)
        block)
    blocks;
  let next = ref (List.length blocks) in
  for s = 0 to n - 1 do
    if cls.(s) < 0 then begin
      cls.(s) <- !next;
      incr next
    end
  done;
  canonicalize cls

let pair_relation ~n s t =
  if s < 0 || s >= n || t < 0 || t >= n then
    invalid_arg "Partition.pair_relation: out of range";
  let cls = Array.init n (fun x -> x) in
  cls.(max s t) <- min s t;
  canonicalize cls

(* ------------------------------------------------------------------ *)
(* Move kernels                                                        *)
(* ------------------------------------------------------------------ *)

(* One-step lattice moves for the stochastic search: direct class-map
   surgery plus one canonicalization pass, cheaper than composing
   [join p (pair_relation s t)] (which interns an intermediate basis
   partition and runs the general join). *)

let merge_classes p c d =
  if c < 0 || c >= p.count || d < 0 || d >= p.count then
    invalid_arg "Partition.merge_classes: class out of range";
  if c = d then p
  else begin
    let lo = min c d and hi = max c d in
    let cls = Array.init p.n (fun s ->
        let x = Array.unsafe_get p.cls s in
        if x = hi then lo else x)
    in
    canonicalize_small cls p.n
  end

(* Row population count, two words per iteration. *)
let row_popcount rows wpr c =
  let base = c * wpr in
  let pop = ref 0 in
  let wi = ref 0 in
  while !wi + 1 < wpr do
    pop :=
      !pop
      + Word.Lane.popcount2
          (Array.unsafe_get rows (base + !wi))
          (Array.unsafe_get rows (base + !wi + 1));
    wi := !wi + 2
  done;
  if !wi < wpr then pop := !pop + Word.popcount (Array.unsafe_get rows (base + !wi));
  !pop

let class_size p c =
  if c < 0 || c >= p.count then invalid_arg "Partition.class_size: out of range";
  row_popcount p.rows p.wpr c

let split_singleton p s =
  if s < 0 || s >= p.n then
    invalid_arg "Partition.split_singleton: out of range";
  (* A singleton block cannot be refined further. *)
  let c = p.cls.(s) in
  if row_popcount p.rows p.wpr c <= 1 then p
  else begin
    (* [count] is a fresh id; count < n here since block [c] has >= 2
       members, so the fast canonicalizer applies. *)
    let cls = Array.copy p.cls in
    cls.(s) <- p.count;
    canonicalize_small cls p.n
  end

(* Batch coarsening for the incremental closure engine (Pair.close_merge):
   [f] maps every class id onto a group representative ([f (f c) = f c]);
   the result merges each group into one block.  Unlike [join], nothing
   global is recomputed: unchanged groups blit their packed row straight
   through and only dirty groups union rows, so the cost is
   O(count * wpr) row words plus the O(n) class-map pass - never a
   pairwise block scan.  Group numbering by smallest member class id is
   first-occurrence canonical (class ids are themselves ordered by first
   occurrence). *)
let coarsen_with p f =
  let count = p.count and wpr = p.wpr in
  let newid = Array.make count (-1) in
  let count' = ref 0 in
  for c = 0 to count - 1 do
    let r = f c in
    if r < 0 || r >= count then
      invalid_arg "Partition.coarsen_with: map out of range";
    if Array.unsafe_get newid r < 0 then begin
      Array.unsafe_set newid r !count';
      incr count'
    end
  done;
  if !count' = count then p
  else begin
    let count' = !count' in
    let rows = Array.make (count' * wpr) 0 in
    for c = 0 to count - 1 do
      let dest = Array.unsafe_get newid (f c) * wpr in
      let base = c * wpr in
      let wi = ref 0 in
      while !wi + 1 < wpr do
        Array.unsafe_set rows (dest + !wi)
          (Array.unsafe_get rows (dest + !wi)
          lor Array.unsafe_get p.rows (base + !wi));
        Array.unsafe_set rows (dest + !wi + 1)
          (Array.unsafe_get rows (dest + !wi + 1)
          lor Array.unsafe_get p.rows (base + !wi + 1));
        wi := !wi + 2
      done;
      if !wi < wpr then
        Array.unsafe_set rows (dest + !wi)
          (Array.unsafe_get rows (dest + !wi)
          lor Array.unsafe_get p.rows (base + !wi))
    done;
    let cls = Array.make p.n 0 in
    for s = 0 to p.n - 1 do
      Array.unsafe_set cls s
        (Array.unsafe_get newid (f (Array.unsafe_get p.cls s)))
    done;
    intern ~rows ~n:p.n ~count:count' cls
  end

(* ------------------------------------------------------------------ *)
(* Row iteration                                                       *)
(* ------------------------------------------------------------------ *)

(* [iter_row_members rows wpr c f] calls [f] on block [c]'s members in
   ascending order, one [ffs] per member. *)
let iter_row_members rows wpr c f =
  let base = c * wpr in
  for wi = 0 to wpr - 1 do
    let w = ref (Array.unsafe_get rows (base + wi)) in
    while !w <> 0 do
      f ((wi * wb) + Word.ffs !w);
      w := !w land (!w - 1)
    done
  done

let blocks p =
  let out = ref [] in
  for c = p.count - 1 downto 0 do
    let members = ref [] in
    iter_row_members p.rows p.wpr c (fun s -> members := s :: !members);
    out := List.rev !members :: !out
  done;
  !out

let representatives p =
  Array.init p.count (fun c ->
      let base = c * p.wpr in
      let rec go wi =
        (* every block is non-empty, so this terminates within the row *)
        let w = Array.unsafe_get p.rows (base + wi) in
        if w = 0 then go (wi + 1) else (wi * wb) + Word.ffs w
      in
      go 0)

let members p c =
  let acc = ref [] in
  iter_row_members p.rows p.wpr c (fun s -> acc := s :: !acc);
  List.rev !acc

let iter_coarse_members p f =
  for c = 0 to p.count - 1 do
    let base = c * p.wpr in
    let rep = ref (-1) in
    for wi = 0 to p.wpr - 1 do
      let w = ref (Array.unsafe_get p.rows (base + wi)) in
      if !rep < 0 && !w <> 0 then begin
        rep := (wi * wb) + Word.ffs !w;
        w := !w land (!w - 1)
      end;
      while !w <> 0 do
        f !rep ((wi * wb) + Word.ffs !w);
        w := !w land (!w - 1)
      done
    done
  done

(* ------------------------------------------------------------------ *)
(* Lattice operations                                                  *)
(* ------------------------------------------------------------------ *)

(* Pair-key renumbering cap: beyond [count_p * count_q] stamped slots of
   this budget, fall back to hashing so scratch memory stays O(n). *)
let pair_key_cap n = max 1024 (4 * n)

let meet_slow p q =
  let table = Hashtbl.create 16 in
  let cls = Array.make p.n 0 in
  for s = 0 to p.n - 1 do
    let key = (p.cls.(s), q.cls.(s)) in
    cls.(s) <-
      (match Hashtbl.find_opt table key with
      | Some id -> id
      | None ->
        let id = Hashtbl.length table in
        Hashtbl.replace table key id;
        id)
  done;
  intern ~n:p.n ~count:(Hashtbl.length table) cls

let meet p q =
  if p.n <> q.n then invalid_arg "Partition.meet: size mismatch";
  if p == q || is_identity p || is_universal q then p
  else if is_identity q || is_universal p then q
  else if p.count * q.count > pair_key_cap p.n then meet_slow p q
  else begin
    let a = Domain.DLS.get scratch in
    Arena.Stamped.ensure a (p.count * q.count);
    let e = Arena.Stamped.bump a in
    let data = a.data and stamp = a.stamp in
    let pc = p.cls and qc = q.cls and qn = q.count in
    let cls = Array.make p.n 0 in
    let count = ref 0 in
    for s = 0 to p.n - 1 do
      let key = (Array.unsafe_get pc s * qn) + Array.unsafe_get qc s in
      if Array.unsafe_get stamp key = e then
        Array.unsafe_set cls s (Array.unsafe_get data key)
      else begin
        Array.unsafe_set stamp key e;
        Array.unsafe_set data key !count;
        Array.unsafe_set cls s !count;
        incr count
      end
    done;
    (* first-occurrence numbering of the pair keys is already canonical *)
    intern ~n:p.n ~count:!count cls
  end

(* Coarse-regime join by row merging.  Start from [p]'s rows; for each
   block of [q], union every live row it touches into the first one.
   One pass suffices: live rows stay pairwise disjoint (they only ever
   merge), so a row can meet a [q]-block group only through the block's
   own bits, and later blocks absorb previously merged rows the same
   way.

   Canonical numbering comes for free: the canonical row family has
   strictly increasing minimum elements, a merged group survives at the
   minimum index of its members, and min-index order equals min-element
   order - so scanning surviving rows in index order is first-occurrence
   order. *)
let join_rows p q =
  let n = p.n and wpr = p.wpr in
  let live = Array.copy p.rows in
  let alive = Array.make p.count true in
  let survivors = ref p.count in
  for j = 0 to q.count - 1 do
    let qbase = j * wpr in
    let acc = ref (-1) in
    for r = 0 to p.count - 1 do
      if Array.unsafe_get alive r then begin
        let rbase = r * wpr in
        let hit = ref false in
        let wi = ref 0 in
        while (not !hit) && !wi + 1 < wpr do
          if
            Word.Lane.inter2
              (Array.unsafe_get live (rbase + !wi))
              (Array.unsafe_get q.rows (qbase + !wi))
              (Array.unsafe_get live (rbase + !wi + 1))
              (Array.unsafe_get q.rows (qbase + !wi + 1))
          then hit := true;
          wi := !wi + 2
        done;
        if
          (not !hit) && !wi < wpr
          && Array.unsafe_get live (rbase + !wi)
             land Array.unsafe_get q.rows (qbase + !wi)
             <> 0
        then hit := true;
        if !hit then
          if !acc < 0 then acc := r
          else begin
            let abase = !acc * wpr in
            for wi = 0 to wpr - 1 do
              Array.unsafe_set live (abase + wi)
                (Array.unsafe_get live (abase + wi)
                lor Array.unsafe_get live (rbase + wi))
            done;
            Array.unsafe_set alive r false;
            decr survivors
          end
      end
    done
  done;
  let count = !survivors in
  let cls = Array.make n 0 in
  let rows = Array.make (count * wpr) 0 in
  let id = ref 0 in
  for r = 0 to p.count - 1 do
    if alive.(r) then begin
      let c = !id in
      incr id;
      Array.blit live (r * wpr) rows (c * wpr) wpr;
      iter_row_members live wpr r (fun s -> Array.unsafe_set cls s c)
    end
  done;
  intern ~rows ~n ~count cls

(* Fine-regime join: union-find over [p]'s class ids (path halving, no
   ranks - the forests are tiny), unioning along each coarse block of
   [q] - singleton [q]-blocks merge nothing and are skipped via the
   rows.  The output pass fuses find with the stamped first-occurrence
   renumbering, so the whole join is one scan of [q]'s coarse members
   plus one scan of the elements. *)
let join_uf p q =
  let n = p.n in
  let parent = Array.init p.count (fun c -> c) in
  let rec find c =
    let pc = Array.unsafe_get parent c in
    if pc = c then c
    else begin
      let gp = Array.unsafe_get parent pc in
      Array.unsafe_set parent c gp;
      find gp
    end
  in
  iter_coarse_members q (fun rep s ->
      let a = find (Array.unsafe_get p.cls rep)
      and b = find (Array.unsafe_get p.cls s) in
      if a <> b then Array.unsafe_set parent b a);
  let a = Domain.DLS.get scratch in
  Arena.Stamped.ensure a p.count;
  let e = Arena.Stamped.bump a in
  let data = a.data and stamp = a.stamp in
  let out = Array.make n 0 in
  let count = ref 0 in
  for s = 0 to n - 1 do
    let c = find (Array.unsafe_get p.cls s) in
    if Array.unsafe_get stamp c = e then
      Array.unsafe_set out s (Array.unsafe_get data c)
    else begin
      Array.unsafe_set stamp c e;
      Array.unsafe_set data c !count;
      Array.unsafe_set out s !count;
      incr count
    end
  done;
  intern ~n ~count:!count out

let join p q =
  if p.n <> q.n then invalid_arg "Partition.join: size mismatch";
  if p == q || is_identity q || is_universal p then p
  else if is_identity p || is_universal q then q
  else if p.count * q.count * p.wpr <= 2 * p.n then join_rows p q
  else join_uf p q

let join_all ~n ps = List.fold_left join (identity n) ps

(* p refines q iff every row of p is a subset of the q-row of its
   representative: one class lookup plus [wpr] word tests per block. *)
let subseteq p q =
  p.n = q.n
  && (p == q || is_universal q || is_identity p
     || p.count >= q.count
        && begin
          let wpr = p.wpr in
          let ok = ref true in
          let c = ref 0 in
          while !ok && !c < p.count do
            let base = !c * wpr in
            let rec rep wi =
              let w = Array.unsafe_get p.rows (base + wi) in
              if w = 0 then rep (wi + 1) else (wi * wb) + Word.ffs w
            in
            let qbase = Array.unsafe_get q.cls (rep 0) * wpr in
            let wi = ref 0 in
            while !ok && !wi + 1 < wpr do
              if
                Word.Lane.diffsub2
                  (Array.unsafe_get p.rows (base + !wi))
                  (Array.unsafe_get q.rows (qbase + !wi))
                  (Array.unsafe_get p.rows (base + !wi + 1))
                  (Array.unsafe_get q.rows (qbase + !wi + 1))
              then ok := false;
              wi := !wi + 2
            done;
            if
              !ok && !wi < wpr
              && Array.unsafe_get p.rows (base + !wi)
                 land lnot (Array.unsafe_get q.rows (qbase + !wi))
                 <> 0
            then ok := false;
            incr c
          done;
          !ok
        end)

let meet_subseteq_slow p q r =
  let table = Hashtbl.create 16 in
  let ok = ref true in
  let s = ref 0 in
  while !ok && !s < p.n do
    let key = (p.cls.(!s), q.cls.(!s)) in
    let rc = r.cls.(!s) in
    (match Hashtbl.find_opt table key with
    | Some rc' -> if rc' <> rc then ok := false
    | None -> Hashtbl.replace table key rc);
    incr s
  done;
  !ok

(* [subseteq (meet p q) r] without materializing (or interning) the
   meet: the meet refines r iff all elements sharing a (p, q) class
   pair share their r class. *)
let meet_subseteq p q r =
  if p.n <> q.n || p.n <> r.n then
    invalid_arg "Partition.meet_subseteq: size mismatch";
  if is_universal r || is_identity p || is_identity q then true
  else if p == q then subseteq p r
  else if is_universal p then subseteq q r
  else if is_universal q then subseteq p r
  else if p.count * q.count > pair_key_cap p.n then meet_subseteq_slow p q r
  else begin
    let a = Domain.DLS.get scratch in
    Arena.Stamped.ensure a (p.count * q.count);
    let e = Arena.Stamped.bump a in
    let data = a.data and stamp = a.stamp in
    let pc = p.cls and qc = q.cls and rc = r.cls and qn = q.count in
    let ok = ref true in
    let s = ref 0 in
    while !ok && !s < p.n do
      let key = (Array.unsafe_get pc !s * qn) + Array.unsafe_get qc !s in
      let cr = Array.unsafe_get rc !s in
      if Array.unsafe_get stamp key = e then begin
        if Array.unsafe_get data key <> cr then ok := false
      end
      else begin
        Array.unsafe_set stamp key e;
        Array.unsafe_set data key cr
      end;
      incr s
    done;
    !ok
  end

let equal p q =
  p == q || (p.hcache = q.hcache && p.n = q.n && p.rows = q.rows)

let compare p q =
  if p == q then 0
  else
    let c = Stdlib.compare p.n q.n in
    if c <> 0 then c else Stdlib.compare p.cls q.cls

let hash p = p.hcache

let pp ppf p =
  List.iter
    (fun block ->
      Format.fprintf ppf "{%s}"
        (String.concat "," (List.map string_of_int block)))
    (blocks p)

let to_string p = Format.asprintf "%a" pp p
