module Union_find = Stc_util.Union_find

let dims next =
  let n = Array.length next in
  if n = 0 then invalid_arg "Pair: empty transition table";
  (n, Array.length next.(0))

let is_pair ~next pi rho =
  let n, k = dims next in
  if Partition.size pi <> n || Partition.size rho <> n then
    invalid_arg "Pair.is_pair: size mismatch";
  (* Enough to compare each state against its block representative;
     [iter_coarse_members] skips singleton blocks outright. *)
  match
    Partition.iter_coarse_members pi (fun r s ->
        let nr = next.(r) and ns = next.(s) in
        for i = 0 to k - 1 do
          if not (Partition.same rho ns.(i) nr.(i)) then raise Exit
        done)
  with
  | () -> true
  | exception Exit -> false

let is_symmetric_pair ~next pi rho =
  is_pair ~next pi rho && is_pair ~next rho pi

let m ~next pi =
  let n, k = dims next in
  let uf = Union_find.create n in
  Partition.iter_coarse_members pi (fun r s ->
      let nr = next.(r) and ns = next.(s) in
      for i = 0 to k - 1 do
        ignore (Union_find.union uf ns.(i) nr.(i))
      done);
  Partition.of_class_map (Union_find.class_map uf)

(* Successor-signature grouping.  When the [k] rho-class ids fit one
   native word the signature packs into an int key (cheap hash, cheap
   compare); the int-array keying remains as fallback for very wide
   input alphabets. *)
let big_m ~next rho =
  let n, k = dims next in
  let width =
    let rec go b = if 1 lsl b >= Partition.num_classes rho then b else go (b + 1) in
    go 1
  in
  let cls = Array.make n 0 in
  if k * width <= 62 then begin
    let table = Hashtbl.create 16 in
    for s = 0 to n - 1 do
      let ns = next.(s) in
      let key = ref 0 in
      for i = 0 to k - 1 do
        key := (!key lsl width) lor Partition.class_of rho ns.(i)
      done;
      cls.(s) <-
        (match Hashtbl.find_opt table !key with
        | Some id -> id
        | None ->
          let id = Hashtbl.length table in
          Hashtbl.replace table !key id;
          id)
    done
  end
  else begin
    let table = Hashtbl.create 16 in
    for s = 0 to n - 1 do
      let signature =
        Array.init k (fun i -> Partition.class_of rho next.(s).(i))
      in
      cls.(s) <-
        (match Hashtbl.find_opt table signature with
        | Some id -> id
        | None ->
          let id = Hashtbl.length table in
          Hashtbl.replace table signature id;
          id)
    done
  end;
  Partition.of_class_map cls

let is_mm_pair ~next pi rho =
  Partition.equal (big_m ~next rho) pi && Partition.equal (m ~next pi) rho

(* m(p_{s,t}) without building the intermediate pair relation: the join of
   the pairs (delta(s,i), delta(t,i)). *)
let m_of_state_pair ~next s t =
  let n, k = dims next in
  let uf = Union_find.create n in
  for i = 0 to k - 1 do
    ignore (Union_find.union uf next.(s).(i) next.(t).(i))
  done;
  Partition.of_class_map (Union_find.class_map uf)

module PTbl = Hashtbl.Make (struct
  type t = Partition.t

  let equal = Partition.equal
  let hash = Partition.hash
end)

let basis ~next =
  let n, _ = dims next in
  let seen = PTbl.create 64 in
  for s = 0 to n - 1 do
    for t = s + 1 to n - 1 do
      let p = m_of_state_pair ~next s t in
      if not (PTbl.mem seen p) then PTbl.replace seen p ()
    done
  done;
  PTbl.fold (fun p () acc -> p :: acc) seen [] |> List.sort Partition.compare

let basis_size ~next = List.length (basis ~next)

module Memo = struct
  type nonrec t = {
    next : int array array;
    m_tbl : Partition.t PTbl.t;
    big_m_tbl : Partition.t PTbl.t;
    mutable hits : int;
    mutable misses : int;
  }

  let create ~next =
    {
      next;
      m_tbl = PTbl.create 1024;
      big_m_tbl = PTbl.create 1024;
      hits = 0;
      misses = 0;
    }

  let lookup memo tbl op pi =
    match PTbl.find_opt tbl pi with
    | Some r ->
      memo.hits <- memo.hits + 1;
      r
    | None ->
      memo.misses <- memo.misses + 1;
      let r = op ~next:memo.next pi in
      PTbl.add tbl pi r;
      r

  let m memo pi = lookup memo memo.m_tbl m pi
  let big_m memo rho = lookup memo memo.big_m_tbl big_m rho
  let hits memo = memo.hits
  let misses memo = memo.misses
end

let mm_pairs ~next =
  let n, _ = dims next in
  let base = basis ~next in
  let seen = PTbl.create 64 in
  let queue = Queue.create () in
  let add p =
    if not (PTbl.mem seen p) then begin
      PTbl.replace seen p ();
      Queue.add p queue
    end
  in
  add (Partition.identity n);
  while not (Queue.is_empty queue) do
    let p = Queue.take queue in
    List.iter (fun b -> add (Partition.join p b)) base
  done;
  PTbl.fold (fun p () acc -> (p, big_m ~next p) :: acc) seen []
  |> List.sort (fun (a, _) (b, _) -> Partition.compare a b)
