module Union_find = Stc_util.Union_find

let dims next =
  let n = Array.length next in
  if n = 0 then invalid_arg "Pair: empty transition table";
  (n, Array.length next.(0))

let is_pair ~next pi rho =
  let n, k = dims next in
  if Partition.size pi <> n || Partition.size rho <> n then
    invalid_arg "Pair.is_pair: size mismatch";
  (* Enough to compare each state against its block representative;
     [iter_coarse_members] skips singleton blocks outright. *)
  match
    Partition.iter_coarse_members pi (fun r s ->
        let nr = next.(r) and ns = next.(s) in
        for i = 0 to k - 1 do
          if not (Partition.same rho ns.(i) nr.(i)) then raise Exit
        done)
  with
  | () -> true
  | exception Exit -> false

let is_symmetric_pair ~next pi rho =
  is_pair ~next pi rho && is_pair ~next rho pi

let m ~next pi =
  let n, k = dims next in
  let uf = Union_find.create n in
  Partition.iter_coarse_members pi (fun r s ->
      let nr = next.(r) and ns = next.(s) in
      for i = 0 to k - 1 do
        ignore (Union_find.union uf ns.(i) nr.(i))
      done);
  Partition.of_class_map (Union_find.class_map uf)

(* Successor-signature grouping.  When the [k] rho-class ids fit one
   native word the signature packs into an int key (cheap hash, cheap
   compare); the int-array keying remains as fallback for very wide
   input alphabets. *)
let big_m ~next rho =
  let n, k = dims next in
  let width =
    let rec go b = if 1 lsl b >= Partition.num_classes rho then b else go (b + 1) in
    go 1
  in
  let cls = Array.make n 0 in
  if k * width <= 62 then begin
    let table = Hashtbl.create 16 in
    for s = 0 to n - 1 do
      let ns = next.(s) in
      let key = ref 0 in
      for i = 0 to k - 1 do
        key := (!key lsl width) lor Partition.class_of rho ns.(i)
      done;
      cls.(s) <-
        (match Hashtbl.find_opt table !key with
        | Some id -> id
        | None ->
          let id = Hashtbl.length table in
          Hashtbl.replace table !key id;
          id)
    done
  end
  else begin
    let table = Hashtbl.create 16 in
    for s = 0 to n - 1 do
      let signature =
        Array.init k (fun i -> Partition.class_of rho next.(s).(i))
      in
      cls.(s) <-
        (match Hashtbl.find_opt table signature with
        | Some id -> id
        | None ->
          let id = Hashtbl.length table in
          Hashtbl.replace table signature id;
          id)
    done
  end;
  Partition.of_class_map cls

let is_mm_pair ~next pi rho =
  Partition.equal (big_m ~next rho) pi && Partition.equal (m ~next pi) rho

(* ------------------------------------------------------------------ *)
(* Incremental closure                                                 *)
(* ------------------------------------------------------------------ *)

(* [close_merge] computes the least symmetric pair above
   [(merge_classes pi c d, rho)] (or the rho-side merge) given that
   [(pi, rho)] is already a closed symmetric pair - the delta engine of
   the anytime tier.  Where the from-scratch fixpoint re-derives whole
   m-images and whole-partition joins per iteration (O(n * k) each), the
   delta path observes that every constraint of the parent is preserved
   by coarsening, so only the newly merged groups can force anything:

   - a union-find per side, over the parent's class ids, holds the
     evolving coarsening;
   - each union of two groups enqueues one propagation task carrying a
     representative state of either group (within a group, all members'
     images are pairwise united on the other side by induction, so one
     state per group is enough);
   - a task replays the pair constraint for its two states: for every
     input, the image classes must be united on the other side -
     O(k) finds per union event, and the total number of union events is
     bounded by the class counts, not by [n].

   Materialization goes through [Partition.coarsen_with], which unions
   only the dirty packed rows.  The result is the same least fixpoint
   [close_pair] reaches (both compute the least coarsening pair closed
   under the pair constraints above the same seed), hence bit-identical
   partitions.

   Returns [(pi', rho', dirty)], [dirty] being the number of group
   merges propagated across both sides (0 forces [pi' == pi] and
   [rho' == rho] up to the initial move).  Precondition: [(pi, rho)] is
   a symmetric pair ([is_symmetric_pair ~next pi rho]); violating it
   silently under-closes. *)
let close_merge ~next ~pi ~rho ~on_pi c d =
  let n, k = dims next in
  if Partition.size pi <> n || Partition.size rho <> n then
    invalid_arg "Pair.close_merge: size mismatch";
  let kp = Partition.num_classes pi and kr = Partition.num_classes rho in
  if on_pi && (c < 0 || c >= kp || d < 0 || d >= kp) then
    invalid_arg "Pair.close_merge: class out of range";
  if (not on_pi) && (c < 0 || c >= kr || d < 0 || d >= kr) then
    invalid_arg "Pair.close_merge: class out of range";
  (* Smallest member state per class, one backward pass per side. *)
  let pi_rep = Array.make kp 0 and rho_rep = Array.make kr 0 in
  for s = n - 1 downto 0 do
    Array.unsafe_set pi_rep (Partition.class_of pi s) s;
    Array.unsafe_set rho_rep (Partition.class_of rho s) s
  done;
  let pi_parent = Array.init kp (fun i -> i) in
  let rho_parent = Array.init kr (fun i -> i) in
  let rec find parent x =
    let px = Array.unsafe_get parent x in
    if px = x then x
    else begin
      let gx = Array.unsafe_get parent px in
      Array.unsafe_set parent x gx;
      find parent gx
    end
  in
  let queue = Queue.create () in
  let dirty = ref 0 in
  let union ~pi_side a b =
    let parent, rep =
      if pi_side then (pi_parent, pi_rep) else (rho_parent, rho_rep)
    in
    let ra = find parent a and rb = find parent b in
    if ra <> rb then begin
      incr dirty;
      let lo = min ra rb and hi = max ra rb in
      Array.unsafe_set parent hi lo;
      Queue.add (pi_side, Array.unsafe_get rep ra, Array.unsafe_get rep rb)
        queue
    end
  in
  union ~pi_side:on_pi c d;
  while not (Queue.is_empty queue) do
    let pi_side, sa, sb = Queue.take queue in
    let na = next.(sa) and nb = next.(sb) in
    (* A merge on one side forces the images together on the other:
       (pi, rho) and (rho, pi) must both stay pairs. *)
    if pi_side then
      for i = 0 to k - 1 do
        union ~pi_side:false
          (Partition.class_of rho (Array.unsafe_get na i))
          (Partition.class_of rho (Array.unsafe_get nb i))
      done
    else
      for i = 0 to k - 1 do
        union ~pi_side:true
          (Partition.class_of pi (Array.unsafe_get na i))
          (Partition.class_of pi (Array.unsafe_get nb i))
      done
  done;
  let pi' = Partition.coarsen_with pi (fun x -> find pi_parent x) in
  let rho' = Partition.coarsen_with rho (fun x -> find rho_parent x) in
  (pi', rho', !dirty)

(* [big_m rho] derived from [bm = big_m base] for a refinement
   [base subseteq rho]: states grouped together by [bm] have identical
   successor signatures under [base], hence under the coarser [rho], so
   [big_m rho] only ever merges whole [bm]-blocks - grouping the
   [num_classes bm] representatives is enough, O(classes * k) instead of
   O(n * k).  Same packed-int signature keying as [big_m]. *)
let big_m_coarse ~next ~rho bm =
  let n, k = dims next in
  let kb = Partition.num_classes bm in
  let rep = Array.make kb 0 in
  for s = n - 1 downto 0 do
    Array.unsafe_set rep (Partition.class_of bm s) s
  done;
  let width =
    let rec go b = if 1 lsl b >= Partition.num_classes rho then b else go (b + 1) in
    go 1
  in
  let group = Array.make kb 0 in
  if k * width <= 62 then begin
    let table = Hashtbl.create 16 in
    for c = 0 to kb - 1 do
      let ns = next.(Array.unsafe_get rep c) in
      let key = ref 0 in
      for i = 0 to k - 1 do
        key := (!key lsl width) lor Partition.class_of rho ns.(i)
      done;
      group.(c) <-
        (match Hashtbl.find_opt table !key with
        | Some id -> id
        | None ->
          let id = Hashtbl.length table in
          Hashtbl.replace table !key id;
          id)
    done
  end
  else begin
    let table = Hashtbl.create 16 in
    for c = 0 to kb - 1 do
      let signature =
        Array.init k (fun i -> Partition.class_of rho next.(rep.(c)).(i))
      in
      group.(c) <-
        (match Hashtbl.find_opt table signature with
        | Some id -> id
        | None ->
          let id = Hashtbl.length table in
          Hashtbl.replace table signature id;
          id)
    done
  end;
  let cls = Array.make n 0 in
  for s = 0 to n - 1 do
    Array.unsafe_set cls s
      (Array.unsafe_get group (Partition.class_of bm s))
  done;
  Partition.of_class_map cls

(* m(p_{s,t}) without building the intermediate pair relation: the join of
   the pairs (delta(s,i), delta(t,i)). *)
let m_of_state_pair ~next s t =
  let n, k = dims next in
  let uf = Union_find.create n in
  for i = 0 to k - 1 do
    ignore (Union_find.union uf next.(s).(i) next.(t).(i))
  done;
  Partition.of_class_map (Union_find.class_map uf)

module PTbl = Hashtbl.Make (struct
  type t = Partition.t

  let equal = Partition.equal
  let hash = Partition.hash
end)

let basis ~next =
  let n, _ = dims next in
  let seen = PTbl.create 64 in
  for s = 0 to n - 1 do
    for t = s + 1 to n - 1 do
      let p = m_of_state_pair ~next s t in
      if not (PTbl.mem seen p) then PTbl.replace seen p ()
    done
  done;
  PTbl.fold (fun p () acc -> p :: acc) seen [] |> List.sort Partition.compare

let basis_size ~next = List.length (basis ~next)

module Memo = struct
  type nonrec t = {
    next : int array array;
    m_tbl : Partition.t PTbl.t;
    big_m_tbl : Partition.t PTbl.t;
    mutable hits : int;
    mutable misses : int;
  }

  let create ~next =
    {
      next;
      m_tbl = PTbl.create 1024;
      big_m_tbl = PTbl.create 1024;
      hits = 0;
      misses = 0;
    }

  let lookup memo tbl op pi =
    match PTbl.find_opt tbl pi with
    | Some r ->
      memo.hits <- memo.hits + 1;
      r
    | None ->
      memo.misses <- memo.misses + 1;
      let r = op ~next:memo.next pi in
      PTbl.add tbl pi r;
      r

  (* The memoized operators below shadow the module-level functions; keep
     a handle on the raw [big_m] for the hinted variant's base case. *)
  let big_m_op = big_m
  let m memo pi = lookup memo memo.m_tbl m pi
  let big_m memo rho = lookup memo memo.big_m_tbl big_m rho

  (* Hinted variant for the incremental polish: on a cache miss, derive
     [big_m rho] from the memoized [big_m base] by per-class grouping
     ([big_m_coarse]) instead of the O(n * k) state sweep.  [base] must
     refine [rho] (the anytime tier passes the parent's side, which every
     closure iterate coarsens); the derived value is the same partition
     [big_m rho] returns, so the cache stays consistent whichever path
     filled it. *)
  let big_m_from memo ~base rho =
    match PTbl.find_opt memo.big_m_tbl rho with
    | Some r ->
      memo.hits <- memo.hits + 1;
      r
    | None ->
      memo.misses <- memo.misses + 1;
      let r =
        if Partition.equal base rho then big_m_op ~next:memo.next rho
        else big_m_coarse ~next:memo.next ~rho (big_m memo base)
      in
      PTbl.add memo.big_m_tbl rho r;
      r

  let hits memo = memo.hits
  let misses memo = memo.misses
end

let mm_pairs ~next =
  let n, _ = dims next in
  let base = basis ~next in
  let seen = PTbl.create 64 in
  let queue = Queue.create () in
  let add p =
    if not (PTbl.mem seen p) then begin
      PTbl.replace seen p ();
      Queue.add p queue
    end
  in
  add (Partition.identity n);
  while not (Queue.is_empty queue) do
    let p = Queue.take queue in
    List.iter (fun b -> add (Partition.join p b)) base
  done;
  PTbl.fold (fun p () acc -> (p, big_m ~next p) :: acc) seen []
  |> List.sort (fun (a, _) (b, _) -> Partition.compare a b)
