(* The chunked parallel range primitive of the bit engine.  The
   implementation lives in [Stc_util.Parallel] (the util layer cannot
   depend on this one); re-exported here so kernels built on [Stc_bits]
   find the whole hot-loop toolkit - words, vectors, arenas, fork/join -
   under one namespace. *)

include Stc_util.Parallel
