(* Scratch-arena helpers for per-domain hot-loop buffers.

   The pattern shared by the minimizer's blocking matrix, the fault
   simulator's faulty-value overlay and the partition kernels is: one
   mutable buffer per domain, grown geometrically and never shrunk, with
   O(1) logical clearing between uses.  These helpers capture the two
   halves of that pattern ([ensure*] growth, [Stamped] epoch clearing);
   ownership stays with the caller - typically a [Domain.DLS] slot - so
   nothing here needs synchronization. *)

let grow_to len n = max n (max 16 (2 * len))

let ensure a n =
  if Array.length a >= n then a else Array.make (grow_to (Array.length a) n) 0

let ensure_bool a n =
  if Array.length a >= n then a
  else Array.make (grow_to (Array.length a) n) false

module Stamped = struct
  type t = {
    mutable data : int array;
    mutable stamp : int array;
    mutable epoch : int;
  }

  let create n =
    let n = max 1 n in
    { data = Array.make n 0; stamp = Array.make n 0; epoch = 0 }

  (* Growth discards contents: slots of the fresh arrays carry stamp 0,
     which is strictly below every epoch ever handed out, so they read as
     unwritten - exactly the semantics of a [bump]. *)
  let ensure t n =
    if Array.length t.data < n then begin
      let cap = grow_to (Array.length t.data) n in
      t.data <- Array.make cap 0;
      t.stamp <- Array.make cap 0
    end

  let bump t =
    t.epoch <- t.epoch + 1;
    t.epoch

  let mem t i = t.stamp.(i) = t.epoch

  let get t i ~default = if t.stamp.(i) = t.epoch then t.data.(i) else default

  let set t i v =
    t.data.(i) <- v;
    t.stamp.(i) <- t.epoch
end
