(** Per-domain scratch arenas for allocation-free hot loops.

    Two building blocks, both single-domain (callers keep one instance
    per domain, typically in a [Domain.DLS] slot):

    - [ensure]/[ensure_bool]: geometric buffer growth, never shrinking,
      so a loop that is re-entered with varying problem sizes settles on
      one allocation.
    - {!Stamped}: an epoch-stamped overlay whose logical clear is a
      single integer increment, for sparse writes over a large index
      space (the fault simulator's faulty-value overlay, the partition
      kernels' class renumbering). *)

(** [ensure a n] returns [a] if it has at least [n] slots, otherwise a
    fresh array of at least [max n (2 * length a)] zeros.  Contents are
    unspecified; callers must write before reading. *)
val ensure : int array -> int -> int array

(** [ensure_bool a n] is {!ensure} for bool buffers (fresh slots
    [false]). *)
val ensure_bool : bool array -> int -> bool array

(** Epoch-stamped integer overlay.  A slot is "written" iff its stamp
    equals the current epoch; {!Stamped.bump} therefore clears the whole
    overlay in O(1).  The record is exposed so hot loops can address
    [data]/[stamp] directly with the epoch in a register. *)
module Stamped : sig
  type t = {
    mutable data : int array;
    mutable stamp : int array;
    mutable epoch : int;
  }

  (** [create n] allocates an overlay for indices [0..n-1], all slots
      unwritten. *)
  val create : int -> t

  (** [ensure t n] grows the overlay to at least [n] slots.  Growth
      discards contents (fresh slots read as unwritten). *)
  val ensure : t -> int -> unit

  (** [bump t] starts a new epoch - logically clearing every slot - and
      returns it. *)
  val bump : t -> int

  (** [mem t i] tests whether slot [i] was written this epoch. *)
  val mem : t -> int -> bool

  (** [get t i ~default] reads slot [i], or [default] if unwritten this
      epoch. *)
  val get : t -> int -> default:int -> int

  (** [set t i v] writes slot [i] for the current epoch. *)
  val set : t -> int -> int -> unit
end
