(* Single-word SWAR kernels shared by every packed representation in the
   tree (cubes, stimuli, signatures, partition blocks).  OCaml's native
   int has 63 value bits; all operations here treat the word as a plain
   63-bit field and are branch-free where it matters. *)

let bits = 63

(* Branch-free popcount via a 16-bit table; per-nibble SWAR constants do
   not fit OCaml's 63-bit literal syntax.  Promoted from the packed-cube
   engine (lib/logic/cube.ml), which now reads it from here. *)
let pc16 =
  let t = Bytes.create 65536 in
  Bytes.unsafe_set t 0 '\000';
  for i = 1 to 65535 do
    Bytes.unsafe_set t i
      (Char.chr (Char.code (Bytes.unsafe_get t (i lsr 1)) + (i land 1)))
  done;
  t

let popcount x =
  Char.code (Bytes.unsafe_get pc16 (x land 0xffff))
  + Char.code (Bytes.unsafe_get pc16 ((x lsr 16) land 0xffff))
  + Char.code (Bytes.unsafe_get pc16 ((x lsr 32) land 0xffff))
  + Char.code (Bytes.unsafe_get pc16 ((x lsr 48) land 0xffff))

let parity x = popcount x land 1

(* Lowest set bit index: isolate it ([x land -x]), turn it into a run of
   ones ([- 1]) and count.  Works for bit 62 (the sign bit) because [lsr]
   in [popcount] is a logical shift. *)
let ffs x =
  if x = 0 then invalid_arg "Word.ffs: zero word"
  else popcount ((x land -x) - 1)

let mask n =
  if n < 0 || n > bits then invalid_arg "Word.mask: width out of range"
  else if n = bits then -1
  else (1 lsl n) - 1
