(* Single-word SWAR kernels shared by every packed representation in the
   tree (cubes, stimuli, signatures, partition blocks).  OCaml's native
   int has 63 value bits; all operations here treat the word as a plain
   63-bit field and are branch-free where it matters. *)

let bits = 63

(* Branch-free popcount via a 16-bit table; per-nibble SWAR constants do
   not fit OCaml's 63-bit literal syntax.  Promoted from the packed-cube
   engine (lib/logic/cube.ml), which now reads it from here. *)
let pc16 =
  let t = Bytes.create 65536 in
  Bytes.unsafe_set t 0 '\000';
  for i = 1 to 65535 do
    Bytes.unsafe_set t i
      (Char.chr (Char.code (Bytes.unsafe_get t (i lsr 1)) + (i land 1)))
  done;
  t

let popcount x =
  Char.code (Bytes.unsafe_get pc16 (x land 0xffff))
  + Char.code (Bytes.unsafe_get pc16 ((x lsr 16) land 0xffff))
  + Char.code (Bytes.unsafe_get pc16 ((x lsr 32) land 0xffff))
  + Char.code (Bytes.unsafe_get pc16 ((x lsr 48) land 0xffff))

let parity x = popcount x land 1

(* Lowest set bit index: isolate it ([x land -x]), turn it into a run of
   ones ([- 1]) and count.  Works for bit 62 (the sign bit) because [lsr]
   in [popcount] is a logical shift. *)
let ffs x =
  if x = 0 then invalid_arg "Word.ffs: zero word"
  else popcount ((x land -x) - 1)

let mask n =
  if n < 0 || n > bits then invalid_arg "Word.mask: width out of range"
  else if n = bits then -1
  else (1 lsl n) - 1

(* Two-word (126-bit) SWAR lane.  The row kernels in lib/partition walk
   multi-word rows a word at a time; fusing adjacent words into one lane
   halves the loop iterations and, for the predicate kernels, folds two
   word tests into a single compare against zero.  Everything here is a
   plain composition of the single-word operations - the lane exists so
   the unrolled loops have exactly one definition to call (and one place
   to widen again, e.g. to four-word lanes). *)
module Lane = struct
  let bits = 2 * bits

  let popcount2 lo hi = popcount lo + popcount hi

  (* [(a land lnot b) lor (c land lnot d) <> 0]: the fused subset test of
     two adjacent row words against their container row.  *)
  let diffsub2 a b c d = (a land lnot b) lor (c land lnot d) <> 0

  (* [(a land b) lor (c land d) <> 0]: two-word intersection test. *)
  let inter2 a b c d = (a land b) lor (c land d) <> 0
end
