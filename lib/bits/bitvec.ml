(* Packed bitvector over native int words.

   Invariant: bits at positions >= len in the last word are zero.  Every
   operation preserves it (only [compl] has to mask), so word loops never
   need end-of-vector special cases and [equal]/[popcount] are plain word
   scans. *)

type t = { len : int; words : int array }

let wb = Word.bits

let words_for len = (len + wb - 1) / wb

let create len =
  if len < 0 then invalid_arg "Bitvec.create: negative length";
  { len; words = Array.make (words_for len) 0 }

let length v = v.len

let copy v = { v with words = Array.copy v.words }

let check_index v i =
  if i < 0 || i >= v.len then invalid_arg "Bitvec: index out of range"

let set v i =
  check_index v i;
  v.words.(i / wb) <- v.words.(i / wb) lor (1 lsl (i mod wb))

let clear v i =
  check_index v i;
  v.words.(i / wb) <- v.words.(i / wb) land lnot (1 lsl (i mod wb))

let mem v i =
  check_index v i;
  v.words.(i / wb) land (1 lsl (i mod wb)) <> 0

let of_bools bools =
  let v = create (Array.length bools) in
  Array.iteri (fun i b -> if b then set v i) bools;
  v

let to_bools v = Array.init v.len (mem v)

let check_pair a b ctx =
  if a.len <> b.len then invalid_arg ("Bitvec." ^ ctx ^ ": length mismatch")

let binop ctx f a b =
  check_pair a b ctx;
  { len = a.len;
    words =
      Array.init (Array.length a.words) (fun i ->
          f (Array.unsafe_get a.words i) (Array.unsafe_get b.words i)) }

let union a b = binop "union" ( lor ) a b

let inter a b = binop "inter" ( land ) a b

let diff a b = binop "diff" (fun x y -> x land lnot y) a b

let symdiff a b = binop "symdiff" ( lxor ) a b

let compl a =
  let nw = Array.length a.words in
  let words = Array.map lnot a.words in
  if nw > 0 then begin
    let tail = a.len - ((nw - 1) * wb) in
    words.(nw - 1) <- words.(nw - 1) land Word.mask tail
  end;
  { a with words }

let is_empty v = Array.for_all (fun w -> w = 0) v.words

let equal a b = a.len = b.len && a.words = b.words

(* Subset / disjointness with early exit: the common use is a guard in a
   larger loop, where the first conflicting word decides. *)
let subset a b =
  check_pair a b "subset";
  let nw = Array.length a.words in
  let ok = ref true in
  let i = ref 0 in
  while !ok && !i < nw do
    if Array.unsafe_get a.words !i land lnot (Array.unsafe_get b.words !i) <> 0
    then ok := false;
    incr i
  done;
  !ok

let disjoint a b =
  check_pair a b "disjoint";
  let nw = Array.length a.words in
  let ok = ref true in
  let i = ref 0 in
  while !ok && !i < nw do
    if Array.unsafe_get a.words !i land Array.unsafe_get b.words !i <> 0 then
      ok := false;
    incr i
  done;
  !ok

let popcount v =
  let n = ref 0 in
  for i = 0 to Array.length v.words - 1 do
    n := !n + Word.popcount (Array.unsafe_get v.words i)
  done;
  !n

let parity v = popcount v land 1

let first_set v =
  let nw = Array.length v.words in
  let rec go i =
    if i >= nw then None
    else
      let w = Array.unsafe_get v.words i in
      if w = 0 then go (i + 1) else Some ((i * wb) + Word.ffs w)
  in
  go 0

let iter f v =
  for i = 0 to Array.length v.words - 1 do
    let w = ref (Array.unsafe_get v.words i) in
    while !w <> 0 do
      let b = !w land - !w in
      f ((i * wb) + Word.ffs b);
      w := !w land (!w - 1)
    done
  done

let fold f init v =
  let acc = ref init in
  iter (fun i -> acc := f !acc i) v;
  !acc

let to_string v =
  String.init v.len (fun i -> if mem v i then '1' else '0')
