(** Packed bitvectors: sets over [0..len-1] stored 63 elements per native
    int word.

    The general-purpose face of the shared bit engine.  The specialized
    packed representations (positional cubes, partition block rows,
    stimuli words) keep their own flat layouts for cache reasons but use
    the same {!Word} kernels; [Bitvec] is for everything else, and doubles
    as the executable specification the hot layouts are property-tested
    against.

    Bits at positions [>= length] are kept zero, so word-wise operations
    never mask. *)

type t

(** [create len] is the empty set over [0..len-1]. *)
val create : int -> t

val length : t -> int

val copy : t -> t

(** [set]/[clear]/[mem]: single-bit access.
    @raise Invalid_argument when the index is out of range. *)
val set : t -> int -> unit

val clear : t -> int -> unit

val mem : t -> int -> bool

val of_bools : bool array -> t

val to_bools : t -> bool array

(** Set algebra.  All binary operations require equal lengths.
    @raise Invalid_argument on a length mismatch. *)
val union : t -> t -> t

val inter : t -> t -> t

(** [diff a b] is [a land lnot b]. *)
val diff : t -> t -> t

val symdiff : t -> t -> t

val compl : t -> t

val is_empty : t -> bool

val equal : t -> t -> bool

(** [subset a b] / [disjoint a b]: word-parallel with early exit on the
    first deciding word. *)
val subset : t -> t -> bool

val disjoint : t -> t -> bool

val popcount : t -> int

val parity : t -> int

(** [first_set v] is the smallest member, if any. *)
val first_set : t -> int option

(** [iter f v] calls [f] on each member in ascending order. *)
val iter : (int -> unit) -> t -> unit

val fold : ('a -> int -> 'a) -> 'a -> t -> 'a

(** ['0'/'1'] rendering, index 0 first. *)
val to_string : t -> string
