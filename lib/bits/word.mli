(** Single-word SWAR kernels: the lowest layer of the shared bit engine.

    Every packed representation in the tree - positional cubes
    ({!Stc_logic.Cube}), bit-parallel stimuli ({!Stc_faultsim.Engine}),
    signature registers ({!Stc_bist}) and partition block rows
    ({!Stc_partition.Partition}) - does its per-word arithmetic through
    this module, so there is exactly one popcount/parity/ffs
    implementation to maintain (and one place to widen, e.g. to 128-bit
    lanes). *)

(** Number of value bits in a native [int] (63 on 64-bit platforms; the
    whole tree assumes a 64-bit platform). *)
val bits : int

(** [popcount x] counts the set bits of [x], including a set sign bit.
    Branch-free (four 16-bit table lookups). *)
val popcount : int -> int

(** [parity x] is [popcount x land 1]. *)
val parity : int -> int

(** [ffs x] is the index of the lowest set bit of [x] (0-based).
    @raise Invalid_argument on [x = 0]. *)
val ffs : int -> int

(** [mask n] is the word with the low [n] bits set, [0 <= n <= bits].
    [mask bits] is [-1] (all 63 value bits).
    @raise Invalid_argument outside that range. *)
val mask : int -> int

(** Two-word (126-bit) SWAR lane: fused kernels over adjacent words of a
    packed row.  The partition row kernels ({!Stc_partition.Partition})
    walk rows two words per iteration through this module, so the
    unrolled loops have exactly one definition of each fused test. *)
module Lane : sig
  (** [bits] is [2 * Word.bits] (126). *)
  val bits : int

  (** [popcount2 lo hi] is [popcount lo + popcount hi]. *)
  val popcount2 : int -> int -> int

  (** [diffsub2 a b c d] is [(a land lnot b) lor (c land lnot d) <> 0]:
      true when either word pair fails the subset test [a subseteq b] /
      [c subseteq d]. *)
  val diffsub2 : int -> int -> int -> int -> bool

  (** [inter2 a b c d] is [(a land b) lor (c land d) <> 0]: true when
      either word pair intersects. *)
  val inter2 : int -> int -> int -> int -> bool
end
