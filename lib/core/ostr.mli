(** One-call facade: solve OSTR and construct the optimal self-testable
    realization.  This is the entry point most examples and tools use. *)

type outcome = {
  machine : Stc_fsm.Machine.t;  (** the specification that was solved *)
  solution : Solver.solution;
  realization : Realization.t;
  stats : Solver.stats;
}

(** [run ?timeout ?jobs machine] solves OSTR for [machine] (pruned,
    memoized depth-first search, over [jobs] domains) and builds the
    Theorem-1 realization of the optimum. *)
val run : ?timeout:float -> ?jobs:int -> Stc_fsm.Machine.t -> outcome

(** [nontrivial outcome] holds when at least one factor is smaller than the
    state set - the "nontrivial solution" notion of section 4. *)
val nontrivial : outcome -> bool

(** [reaches_lower_bound outcome] holds when [|S1| * |S2| = |S|], the lower
    bound achieved by [shiftreg] and [tav] in Table 1. *)
val reaches_lower_bound : outcome -> bool

(** [pp_summary] prints a human-readable report: factor sizes, flip-flop
    counts (conventional vs pipeline), search statistics. *)
val pp_summary : Format.formatter -> outcome -> unit
