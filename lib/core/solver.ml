module Machine = Stc_fsm.Machine
module Equiv = Stc_fsm.Equiv
module Pair = Stc_partition.Pair
module Clock = Stc_util.Clock
module Trace = Stc_obs.Trace
module Metrics = Stc_obs.Metrics
module Progress = Stc_obs.Progress

(* Observability handles (no-ops unless the registry / tracer is enabled;
   per-domain shards keep the hot-loop bumps contention-free).  The
   per-domain totals of these counters equal the summed [stats] of the
   run - `ostr solve --metrics` relies on that. *)
let m_investigated = Metrics.counter "solver.investigated"
let m_deduped = Metrics.counter "solver.deduped"
let m_pruned = Metrics.counter "solver.pruned"
let m_solutions = Metrics.counter "solver.solutions"
let m_memo_hits = Metrics.counter "solver.memo_hits"
let g_best_bits = Metrics.gauge "solver.best_bits"
let g_effective_jobs = Metrics.gauge "solver.effective_jobs"

(* Minimum top-level branches per requested domain before the fan-out
   pays for itself.  BENCH_solver.json showed every corpus machine slower
   at jobs=2 than sequential on a box where [recommended_domain_count]
   is 1 (dk16: 0.59 s seq vs 0.66 s par): spawn/join overhead plus
   duplicated transposition work swamp a basis of a few hundred
   branches.  Below the threshold — or whenever the hardware offers a
   single core — the solver silently degrades to the sequential fast
   path, which also restores run-to-run deterministic stats. *)
let par_basis_threshold = 64

type cost = { bits : int; imbalance : float; factor_states : int }

let compare_cost a b =
  let c = Int.compare a.bits b.bits in
  if c <> 0 then c
  else
    let c = Int.compare a.factor_states b.factor_states in
    if c <> 0 then c else Float.compare a.imbalance b.imbalance

type solution = { pi : Partition.t; rho : Partition.t; cost : cost }

let is_trivial (machine : Machine.t) sol =
  Partition.num_classes sol.pi = machine.num_states
  && Partition.num_classes sol.rho = machine.num_states

type stats = {
  basis_size : int;
  search_space : float;
  investigated : int;
  deduped : int;
  pruned : int;
  solutions : int;
  memo_hits : int;
  elapsed : float;
  timed_out : bool;
}

type result = { best : solution; stats : stats }

let cost_of (_machine : Machine.t) ~pi ~rho =
  let k1 = Partition.num_classes pi and k2 = Partition.num_classes rho in
  let bits = Machine.bits_for k1 + Machine.bits_for k2 in
  let hi = float_of_int (max k1 k2) and lo = float_of_int (min k1 k2) in
  { bits; imbalance = (hi /. lo) -. 1.0; factor_states = k1 + k2 }

let equivalence_partition machine = Partition.of_class_map (Equiv.classes machine)

let validate (machine : Machine.t) sol =
  let next = machine.next in
  let equiv = equivalence_partition machine in
  if not (Pair.is_pair ~next sol.pi sol.rho) then
    Error "(pi, rho) is not a partition pair"
  else if not (Pair.is_pair ~next sol.rho sol.pi) then
    Error "(rho, pi) is not a partition pair"
  else if not (Partition.subseteq (Partition.meet sol.pi sol.rho) equiv) then
    Error "pi /\\ rho does not refine state equivalence"
  else Ok ()

exception Timeout

module PTbl = Hashtbl.Make (struct
  type t = Partition.t

  let equal = Partition.equal
  let hash = Partition.hash
end)

(* Besides the single best solution, keep a small pool of the best distinct
   candidates as starting points for the final hill climb. *)
let pool_capacity = 16

(* Per-domain search state.  Everything here is owned by exactly one domain
   during the parallel walk and merged after the joins. *)
type worker = {
  memo : Pair.Memo.t;
  (* Transposition table over the Mm-sub-lattice: partition -> lowest
     [from_index] it has been expanded with ([closed_node] once the node
     can never need re-expansion, e.g. after Lemma-1 pruning). *)
  seen : int PTbl.t;
  mutable investigated : int;
  mutable deduped : int;
  mutable pruned : int;
  mutable solutions : int;
  (* Sorted best-first, at most [pool_capacity] entries. *)
  mutable pool : solution list;
}

let closed_node = 0

let new_worker ~next () =
  {
    memo = Pair.Memo.create ~next;
    seen = PTbl.create 4096;
    investigated = 0;
    deduped = 0;
    pruned = 0;
    solutions = 0;
    pool = [];
  }

(* Bounded insertion sort keyed by [compare_cost]: O(pool_capacity) per
   candidate instead of the former sort of the whole pool. *)
let pool_add w sol =
  let known existing =
    Partition.equal existing.pi sol.pi && Partition.equal existing.rho sol.rho
  in
  if not (List.exists known w.pool) then begin
    let rec insert slots l =
      if slots = 0 then []
      else
        match l with
        | [] -> [ sol ]
        | x :: rest ->
          if compare_cost sol.cost x.cost < 0 then sol :: keep (slots - 1) l
          else x :: insert (slots - 1) rest
    and keep slots l =
      match l with
      | [] -> []
      | x :: rest -> if slots = 0 then [] else x :: keep (slots - 1) rest
    in
    w.pool <- insert pool_capacity w.pool
  end

let solve ?(timeout = infinity) ?(prune = true) ?(max_nodes = max_int)
    ?(jobs = 1) ?(sequential_fallback = true) (machine : Machine.t) =
  Trace.span ~cat:"solver" "solve" @@ fun () ->
  let requested_jobs = max 1 jobs in
  let next = machine.next in
  let n = machine.num_states in
  let equiv = equivalence_partition machine in
  let basis =
    Trace.span ~cat:"solver" "basis" (fun () ->
        Array.of_list (Pair.basis ~next))
  in
  let num_basis = Array.length basis in
  let jobs =
    if
      requested_jobs > 1 && sequential_fallback
      && (Domain.recommended_domain_count () <= 1
         || num_basis < par_basis_threshold * requested_jobs)
    then 1
    else requested_jobs
  in
  Metrics.set_gauge g_effective_jobs jobs;
  let start = Clock.now () in
  (* Shared between domains: the incumbent best (pruning bound for the
     recording path), the global node budget, and the cancellation flag
     raised by whichever worker first exhausts a budget. *)
  let best = Atomic.make (None : solution option) in
  let node_count = Atomic.make 0 in
  let cancelled = Atomic.make false in
  let timed_out = Atomic.make false in
  (* Top-level branch cursor for the domain fan-out (declared here so the
     progress reporter can render the remaining queue depth). *)
  let next_branch = Atomic.make 0 in
  let rec offer_best sol =
    let current = Atomic.get best in
    let better =
      match current with
      | None -> true
      | Some b -> compare_cost sol.cost b.cost < 0
    in
    if better then begin
      if Atomic.compare_and_set best current (Some sol) then
        Metrics.set_gauge g_best_bits sol.cost.bits
      else offer_best sol
    end
  in
  let workers_ref = ref ([] : worker list) in
  let progress =
    Progress.create
      ~label:("solve " ^ machine.name)
      ~render:(fun () ->
        let elapsed = Float.max 1e-9 (Clock.now () -. start) in
        let nodes = Atomic.get node_count in
        let investigated, deduped, hits, misses =
          List.fold_left
            (fun (i, d, h, ms) w ->
              ( i + w.investigated,
                d + w.deduped,
                h + Pair.Memo.hits w.memo,
                ms + Pair.Memo.misses w.memo ))
            (0, 0, 0, 0) !workers_ref
        in
        let pct a b =
          if a + b = 0 then 0.0
          else 100.0 *. float_of_int a /. float_of_int (a + b)
        in
        let best_bits =
          match Atomic.get best with
          | None -> "-"
          | Some b -> string_of_int b.cost.bits
        in
        Printf.sprintf
          "%d nodes (%.0f/s)  best %s bits  memo-hit %.1f%%  dedupe %.1f%%  \
           queue %d/%d  domains %d"
          nodes
          (float_of_int nodes /. elapsed)
          best_bits (pct hits misses)
          (pct deduped investigated)
          (max 0 (num_basis - Atomic.get next_branch))
          num_basis
          (List.length !workers_ref))
      ()
  in
  let best_cost () =
    match Atomic.get best with None -> None | Some b -> Some b.cost
  in
  let admissible candidate_pi candidate_rho =
    Pair.is_symmetric_pair ~next candidate_pi candidate_rho
    && Partition.meet_subseteq candidate_pi candidate_rho equiv
  in
  (* Alternately coarsen each side with the M operator while the pair stays
     admissible.  If (pi, rho) is a symmetric pair then so is (M rho, rho):
     (M rho, rho) is a pair by definition of M, and (rho, M rho) is one
     because (rho, pi) is and pi is a subset of M rho.  Coarsening can only
     shrink class counts, so this is a monotone improvement. *)
  let rec polish w candidate_pi candidate_rho =
    let pi' = Pair.Memo.big_m w.memo candidate_rho in
    if
      (not (Partition.equal pi' candidate_pi))
      && admissible pi' candidate_rho
    then polish w pi' candidate_rho
    else begin
      let rho' = Pair.Memo.big_m w.memo candidate_pi in
      if
        (not (Partition.equal rho' candidate_rho))
        && admissible candidate_pi rho'
      then polish w candidate_pi rho'
      else (candidate_pi, candidate_rho)
    end
  in
  let record w candidate_pi candidate_rho =
    if admissible candidate_pi candidate_rho then begin
      w.solutions <- w.solutions + 1;
      Metrics.incr m_solutions;
      let candidate_pi, candidate_rho = polish w candidate_pi candidate_rho in
      let cost = cost_of machine ~pi:candidate_pi ~rho:candidate_rho in
      let sol = { pi = candidate_pi; rho = candidate_rho; cost } in
      pool_add w sol;
      (* The shared incumbent prunes nothing from the lattice walk (cost is
         not monotone along joins) but keeps every domain's [best] the true
         global one, so post-search refinement starts from the optimum. *)
      match best_cost () with
      | Some b when compare_cost cost b >= 0 -> ()
      | _ -> offer_best sol
    end
  in
  (* The depth-first walk of the paper visits every subset of the basis;
     but distinct subsets routinely join to the same partition, and the
     whole subtree under a node is a function of (join, from_index) only.
     [w.seen] therefore maps each join pi to the lowest [from_index] it has
     been expanded with:

     - arriving at (pi, i) with [seen pi <= i] adds nothing - the earlier
       expansion already covered children [j >= seen pi  >=  j >= i] and,
       recursively, everything below them - so the node is deduped;
     - arriving with [i < seen pi] only needs the children in
       [i .. seen pi - 1]; the candidate solutions at pi itself were
       recorded by the first arrival.

     Each (pi, j) join is thus computed at most once, collapsing the
     2^|MM| subset tree to the Mm-sub-lattice it generates.  Lemma-1
     pruning marks pi [closed_node] (= index 0): no re-arrival can sit
     below index 0, so pruned nodes are never touched again. *)
  let rec visit w pi from_index =
    match PTbl.find_opt w.seen pi with
    | Some lowest when lowest <= from_index ->
      w.deduped <- w.deduped + 1;
      Metrics.incr m_deduped
    | prior ->
      (* The root always runs to completion so that the trivial solution is
         recorded even under a zero timeout. *)
      if Atomic.get node_count > 0 then begin
        Progress.tick progress;
        if Atomic.get cancelled then raise Timeout;
        if Atomic.get node_count >= max_nodes then raise Timeout;
        if Clock.now () -. start > timeout then raise Timeout
      end;
      Atomic.incr node_count;
      w.investigated <- w.investigated + 1;
      Metrics.incr m_investigated;
      let upto = match prior with None -> num_basis | Some lowest -> lowest in
      let expand () =
        PTbl.replace w.seen pi from_index;
        for j = from_index to upto - 1 do
          visit w (Partition.join pi basis.(j)) (j + 1)
        done
      in
      match prior with
      | Some _ -> expand ()
      | None ->
        let mpi = Pair.Memo.m w.memo pi in
        let big_mpi = Pair.Memo.big_m w.memo pi in
        (* Candidate 1: the Mm-pair (M(pi), pi). *)
        record w big_mpi pi;
        (* Candidate 2: (m(pi), pi), whose intersection with pi is minimal
           among all pairs bracketed by the Mm-pair (Theorem 2 discussion). *)
        if not (Partition.equal mpi big_mpi) then record w mpi pi;
        (* Lemma 1: if m(pi) /\ pi does not refine equivalence, no successor
           can yield an admissible pair with right member above pi. *)
        let viable = Partition.meet_subseteq mpi pi equiv in
        if prune && not viable then begin
          w.pruned <- w.pruned + 1;
          Metrics.incr m_pruned;
          PTbl.replace w.seen pi closed_node
        end
        else expand ()
  in
  (* Root node, handled in the calling domain before any fan-out. *)
  let root = Partition.identity n in
  let main_worker = new_worker ~next () in
  workers_ref := [ main_worker ];
  Atomic.incr node_count;
  main_worker.investigated <- 1;
  Metrics.incr m_investigated;
  let root_viable =
    Trace.span ~cat:"solver" "root" (fun () ->
        let m_root = Pair.Memo.m main_worker.memo root in
        let big_m_root = Pair.Memo.big_m main_worker.memo root in
        record main_worker big_m_root root;
        if not (Partition.equal m_root big_m_root) then
          record main_worker m_root root;
        Partition.meet_subseteq m_root root equiv)
  in
  PTbl.replace main_worker.seen root closed_node;
  if prune && not root_viable then begin
    main_worker.pruned <- main_worker.pruned + 1;
    Metrics.incr m_pruned
  end;
  (* Fan the top-level basis branches out over domains: a shared atomic
     cursor hands branch j (= subtree rooted at basis.(j)) to the next free
     worker.  Each domain dedupes against its own transposition table;
     overlap across domains costs repeated work, never correctness. *)
  let run_worker w =
    try
      Trace.span ~cat:"solver" "dfs" @@ fun () ->
      let rec loop () =
        let j = Atomic.fetch_and_add next_branch 1 in
        if j < num_basis && not (Atomic.get cancelled) then begin
          visit w (Partition.join root basis.(j)) (j + 1);
          loop ()
        end
      in
      loop ()
    with Timeout ->
      Atomic.set cancelled true;
      Atomic.set timed_out true
  in
  let workers =
    if (not prune) || root_viable then begin
      if jobs = 1 || num_basis <= 1 then begin
        (* Sequential fast path: identical traversal order (hence identical
           stats) on every run, no domain overhead. *)
        run_worker main_worker;
        [ main_worker ]
      end
      else begin
        let extras =
          List.init
            (min (jobs - 1) (num_basis - 1))
            (fun _ -> new_worker ~next ())
        in
        workers_ref := main_worker :: extras;
        let domains =
          List.map (fun w -> Domain.spawn (fun () -> run_worker w)) extras
        in
        run_worker main_worker;
        List.iter Domain.join domains;
        main_worker :: extras
      end
    end
    else [ main_worker ]
  in
  let best =
    match Atomic.get best with
    | Some sol -> sol
    | None ->
      (* The root always records (M(identity), identity); unreachable. *)
      assert false
  in
  (* Post-search refinement, in the calling domain.  The paper's candidate
     set (M(pi), pi) / (m(pi), pi) can miss optima whose right member is
     not a join of basis elements; a greedy class-merge hill climb recovers
     them.  [close_pair] computes the least symmetric partition pair above
     a seed pair by alternating joins with the m images. *)
  let memo = main_worker.memo in
  let rec close_pair pi rho =
    let rho' = Partition.join rho (Pair.Memo.m memo pi) in
    let pi' = Partition.join pi (Pair.Memo.m memo rho') in
    if Partition.equal pi pi' && Partition.equal rho rho' then (pi, rho')
    else close_pair pi' rho'
  in
  let merge_candidates partition =
    let reps = Partition.representatives partition in
    let k = Array.length reps in
    let acc = ref [] in
    for c = 0 to k - 1 do
      for d = c + 1 to k - 1 do
        acc := (reps.(c), reps.(d)) :: !acc
      done
    done;
    !acc
  in
  let try_merge sol (side : [ `Left | `Right ]) (s, t) =
    let seed = Partition.pair_relation ~n s t in
    let pi0, rho0 =
      match side with
      | `Left -> (Partition.join sol.pi seed, sol.rho)
      | `Right -> (sol.pi, Partition.join sol.rho seed)
    in
    let pi', rho' = close_pair pi0 rho0 in
    if admissible pi' rho' then begin
      let pi', rho' =
        Trace.span ~cat:"solver" "polish" (fun () ->
            polish main_worker pi' rho')
      in
      let cost = cost_of machine ~pi:pi' ~rho:rho' in
      if compare_cost cost sol.cost < 0 then Some { pi = pi'; rho = rho'; cost }
      else None
    end
    else None
  in
  let rec hill_climb sol =
    let moves =
      List.map (fun p -> (`Left, p)) (merge_candidates sol.pi)
      @ List.map (fun p -> (`Right, p)) (merge_candidates sol.rho)
    in
    let improved =
      List.fold_left
        (fun acc (side, p) ->
          match acc with Some _ -> acc | None -> try_merge sol side p)
        None moves
    in
    match improved with None -> sol | Some better -> hill_climb better
  in
  (* Merge the per-domain candidate pools before the hill climb. *)
  let merged_pool =
    Trace.span ~cat:"solver" "merge" (fun () ->
        List.concat_map (fun w -> w.pool) workers)
  in
  let best =
    Trace.span ~cat:"solver" "hill_climb" (fun () ->
        List.fold_left
          (fun acc sol ->
            let sol = hill_climb sol in
            if compare_cost sol.cost acc.cost < 0 then sol else acc)
          (hill_climb best) merged_pool)
  in
  (match validate machine best with
  | Ok () -> ()
  | Error msg -> invalid_arg ("Solver.solve: internal error: " ^ msg));
  let sum f = List.fold_left (fun acc w -> acc + f w) 0 workers in
  Metrics.add m_memo_hits (sum (fun w -> Pair.Memo.hits w.memo));
  Progress.force progress;
  {
    best;
    stats =
      {
        basis_size = num_basis;
        search_space = Float.pow 2.0 (float_of_int num_basis);
        investigated = sum (fun w -> w.investigated);
        deduped = sum (fun w -> w.deduped);
        pruned = sum (fun w -> w.pruned);
        solutions = sum (fun w -> w.solutions);
        memo_hits = sum (fun w -> Pair.Memo.hits w.memo);
        elapsed = Clock.now () -. start;
        timed_out = Atomic.get timed_out;
      };
  }

let solve_exhaustive (machine : Machine.t) =
  let next = machine.next in
  let n = machine.num_states in
  let equiv = equivalence_partition machine in
  (* Streamed: Bell(n)^2 pairs are visited but never materialized, so the
     memory ceiling of the old list-based enumeration is gone. *)
  let all = Stc_partition.Enumerate.partitions n in
  let best = ref None in
  Seq.iter
    (fun pi ->
      Seq.iter
        (fun rho ->
          if
            Pair.is_symmetric_pair ~next pi rho
            && Partition.meet_subseteq pi rho equiv
          then begin
            let cost = cost_of machine ~pi ~rho in
            let sol = { pi; rho; cost } in
            match !best with
            | None -> best := Some sol
            | Some b -> if compare_cost cost b.cost < 0 then best := Some sol
          end)
        all)
    all;
  match !best with
  | Some sol -> sol
  | None -> assert false (* (identity, identity) is always admissible *)
