(** Anytime stochastic tier over the Mm-lattice.

    The exact OSTR search ({!Solver.solve}) is exponential in the basis
    and the basis itself is quadratic in the state count, which caps the
    exact tier at a few hundred states.  This module scales the frontier
    to 10^3-10^4 states with a budget-triggered stochastic search over
    symmetric partition pairs, in the spirit of evolutionary BIST
    synthesis (Garvie & Husbands; Skobtsov et al., see PAPERS.md):

    + a {e seeded beam search} whose move set is one-step partition
      merges ({!Stc_partition.Partition.merge_classes}) and singleton
      splits ({!Stc_partition.Partition.split_singleton}), each proposal
      closed to the least symmetric pair above it and screened by the
      fused {!Stc_partition.Partition.meet_subseteq} admissibility
      kernel — feasibility {e is} the fitness gate;
    + a {e simulated-annealing polish} of the incumbent with the same
      move set and a Metropolis acceptance rule over a scalar relaxation
      of the lexicographic cost.

    Every proposal is evaluated under a per-task RNG substream derived
    from the seed by task index ({!Stc_util.Rng.substream}), and results
    are collected into index-addressed slots, so the outcome — best
    solution, statistics, and the XOR fingerprint of all consumed
    streams — is a pure function of [(machine, config)]: bit-identical
    at any [jobs] value and across repeated runs.  Wall-clock budgets
    are a safety cap; all default stopping rules are deterministic
    (round, evaluation and stagnation counters). *)

(** Why the stochastic tier ran. *)
type engage_reason =
  | Forced  (** caller asked for it ([--anytime] / [force]) *)
  | Budget_exhausted  (** exact DFS hit its node/wall budget *)
  | Too_large  (** state count above [exact_max_states]; the basis
                   (quadratic in states) was never built *)

type tier =
  | Exact  (** the exact DFS finished within budget; its result stands *)
  | Stochastic of engage_reason

type config = {
  seed : int;  (** master seed; everything derives from it *)
  beam_width : int;  (** survivors per generation *)
  moves_per_candidate : int;  (** proposals per survivor per round *)
  split_ratio : int;
      (** 1-in-[split_ratio] proposals are singleton splits, the rest
          block merges; [<= 0] disables splits entirely (changing this
          changes the consumed RNG streams, hence the fingerprint) *)
  max_rounds : int;  (** beam generations cap *)
  max_evals : int;  (** total proposal cap (beam + annealing) *)
  patience : int;  (** stop after this many non-improving rounds *)
  sa_chains : int;  (** independent annealing chains (fixed count,
                        independent of [jobs] — determinism) *)
  sa_steps : int;  (** Metropolis steps per chain *)
  exact_max_nodes : int;  (** node budget handed to the exact tier *)
  exact_max_states : int;  (** skip the exact tier above this size *)
  budget : float;  (** wall-clock safety cap, seconds; [infinity] means
                       the deterministic counters are the only stops *)
  jobs : int;  (** domains to fan proposal evaluation over *)
  incremental : bool;
      (** evaluate merge proposals with the delta closure engine
          ({!Stc_partition.Pair.close_merge} seeded by the parent's
          already-closed pair, M-images derived per class); [false]
          forces the full-recompute oracle path.  Results are
          bit-identical either way — the switch exists for equivalence
          gates and benchmarking *)
}

val default_config : config

(** One point of the quality-vs-time frontier: recorded whenever the
    incumbent improves, plus the final state. *)
type frontier_point = {
  round : int;
  evals : int;  (** proposals consumed when the point was recorded *)
  elapsed : float;  (** wall-clock seconds since the search started *)
  cost : Solver.cost;  (** incumbent cost at that moment *)
}

type stats = {
  tier : tier;
  exact : Solver.stats option;
      (** statistics of the exact attempt when one ran *)
  rounds : int;  (** beam generations executed *)
  evals : int;  (** proposals evaluated (beam + annealing) *)
  feasible : int;  (** proposals that passed the admissibility kernel *)
  sa_accepted : int;  (** Metropolis acceptances across all chains *)
  elapsed : float;  (** wall-clock seconds, whole run *)
  timed_out : bool;  (** the wall-clock safety cap fired *)
  rng_fingerprint : int;
      (** XOR of {!Stc_util.Rng.fingerprint} over every consumed task
          stream — equal runs consume equal streams, at any [jobs] *)
  trajectory : frontier_point list;  (** improvements, oldest first *)
}

type result = { best : Solver.solution; stats : stats }

(** [search ?config ?seeds machine] runs the stochastic tier only,
    seeding the beam with [seeds] (feasible solutions, e.g. the exact
    incumbent at hand-off) next to the trivial root pair.  Never raises
    on feasible input; the returned solution is validated. *)
val search :
  ?config:config -> ?seeds:Solver.solution list -> Stc_fsm.Machine.t -> result

(** [solve ?config ?force machine] is the anytime driver: run the exact
    DFS under [exact_max_nodes] / half the wall budget (sequentially, so
    the hand-off seed is reproducible), and fall back to {!search} —
    seeded with the exact incumbent — when the budget fires.  Machines
    above [exact_max_states] skip straight to {!search}, as does
    [~force:true].  Every hand-off bumps the [solver.anytime_engaged]
    counter and emits an [anytime_engaged] trace instant. *)
val solve : ?config:config -> ?force:bool -> Stc_fsm.Machine.t -> result

(** [pp_tier] renders the tier for reports ("exact",
    "stochastic(budget)", ...). *)
val pp_tier : Format.formatter -> tier -> unit
