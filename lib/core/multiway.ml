module Machine = Stc_fsm.Machine
module Equiv = Stc_fsm.Equiv
module Pair = Stc_partition.Pair
module Trace = Stc_obs.Trace
module Metrics = Stc_obs.Metrics

let m_investigated = Metrics.counter "multiway.investigated"

type chain = {
  parts : Partition.t array;
  bits : int;
  factor_states : int;
}

let is_chain ~next parts =
  let m = Array.length parts in
  if m < 2 then invalid_arg "Multiway.is_chain: need at least 2 stages";
  let ok = ref true in
  for k = 0 to m - 1 do
    if not (Pair.is_pair ~next parts.(k) parts.((k + 1) mod m)) then ok := false
  done;
  !ok

let equivalence machine = Partition.of_class_map (Equiv.classes machine)

let meet_all parts =
  Array.fold_left Partition.meet parts.(0)
    (Array.sub parts 1 (Array.length parts - 1))

let admissible machine parts =
  is_chain ~next:machine.Machine.next parts
  && Partition.subseteq (meet_all parts) (equivalence machine)

let cost_of parts =
  let classes = Array.map Partition.num_classes parts in
  let bits = Array.fold_left (fun acc k -> acc + Machine.bits_for k) 0 classes in
  let states = Array.fold_left ( + ) 0 classes in
  let hi = Array.fold_left max 1 classes and lo = Array.fold_left min max_int classes in
  (bits, states, float_of_int hi /. float_of_int lo)

let compare_cost (b1, s1, i1) (b2, s2, i2) =
  let c = Int.compare b1 b2 in
  if c <> 0 then c
  else
    let c = Int.compare s1 s2 in
    if c <> 0 then c else Float.compare i1 i2

exception Timeout

let solve ?(timeout = 60.0) ~stages (machine : Machine.t) =
  if stages < 2 then invalid_arg "Multiway.solve: stages >= 2";
  Trace.span ~cat:"solver" "multiway" @@ fun () ->
  let next = machine.next in
  let n = machine.num_states in
  let equiv = equivalence machine in
  let basis = Array.of_list (Pair.basis ~next) in
  let num_basis = Array.length basis in
  let start = Stc_util.Clock.now () in
  let admissible_parts parts =
    Partition.subseteq (meet_all parts) equiv && is_chain ~next parts
  in
  (* Round-robin coarsening: c_k <- M(c_(k+1)) while the chain stays
     admissible (for stages = 2 this is the pair polish). *)
  let polish parts =
    let parts = Array.copy parts in
    let improved = ref true in
    while !improved do
      improved := false;
      for k = 0 to stages - 1 do
        let coarser = Pair.big_m ~next parts.((k + 1) mod stages) in
        if not (Partition.equal coarser parts.(k)) then begin
          let candidate = Array.copy parts in
          candidate.(k) <- coarser;
          if admissible_parts candidate then begin
            parts.(k) <- coarser;
            improved := true
          end
        end
      done
    done;
    parts
  in
  let best = ref [| |] and best_cost = ref (max_int, max_int, infinity) in
  let record parts =
    if admissible_parts parts then begin
      let parts = polish parts in
      let cost = cost_of parts in
      if compare_cost cost !best_cost < 0 then begin
        best := parts;
        best_cost := cost
      end
    end
  in
  (* Trivial chain: identity everywhere. *)
  record (Array.make stages (Partition.identity n));
  let investigated = ref 0 in
  let rec visit pi from_index =
    if !investigated > 0 && Stc_util.Clock.elapsed ~since:start > timeout then
      raise Timeout;
    incr investigated;
    Metrics.incr m_investigated;
    (* Forward m-closure chain from pi. *)
    let parts = Array.make stages pi in
    for k = 1 to stages - 1 do
      parts.(k) <- Pair.m ~next parts.(k - 1)
    done;
    (* Valid ring iff the wrap-around condition holds. *)
    if Partition.subseteq (Pair.m ~next parts.(stages - 1)) pi then record parts;
    (* Lemma-1 analogue: every component is monotone in pi, so once the
       meet escapes the equivalence it stays out on all successors. *)
    if Partition.subseteq (meet_all parts) equiv then
      for j = from_index to num_basis - 1 do
        visit (Partition.join pi basis.(j)) (j + 1)
      done
  in
  (try visit (Partition.identity n) 0 with Timeout -> ());
  (* Greedy class-merge hill climb, as in the pair solver: the forward
     m-closure chains are as fine as possible on the later stages, and
     admissible chains with coarser intermediate stages (e.g. the three
     2-class stages of a 3-bit shift register) are reachable only by
     merging.  [close] restores the chain property after a merge by
     joining each stage with the m-image of its predecessor. *)
  let close parts =
    let parts = Array.copy parts in
    let stable = ref false in
    while not !stable do
      stable := true;
      for k = 0 to stages - 1 do
        let succ = (k + 1) mod stages in
        let grown = Partition.join parts.(succ) (Pair.m ~next parts.(k)) in
        if not (Partition.equal grown parts.(succ)) then begin
          parts.(succ) <- grown;
          stable := false
        end
      done
    done;
    parts
  in
  let try_merge parts k (s, t) =
    let seeded = Array.copy parts in
    seeded.(k) <- Partition.join parts.(k) (Partition.pair_relation ~n s t);
    let closed = close seeded in
    if admissible_parts closed then begin
      let closed = polish closed in
      let cost = cost_of closed in
      if compare_cost cost !best_cost < 0 then Some (closed, cost) else None
    end
    else None
  in
  let rec hill_climb () =
    let improved = ref None in
    let k = ref 0 in
    while !improved = None && !k < stages do
      let reps = Partition.representatives !best.(!k) in
      let classes = Array.length reps in
      let c = ref 0 in
      while !improved = None && !c < classes do
        let d = ref (!c + 1) in
        while !improved = None && !d < classes do
          (match try_merge !best !k (reps.(!c), reps.(!d)) with
          | Some (parts, cost) -> improved := Some (parts, cost)
          | None -> ());
          incr d
        done;
        incr c
      done;
      incr k
    done;
    match !improved with
    | Some (parts, cost) ->
      best := parts;
      best_cost := cost;
      hill_climb ()
    | None -> ()
  in
  hill_climb ();
  let bits, factor_states, _ = !best_cost in
  { parts = !best; bits; factor_states }

let factor_tables (machine : Machine.t) parts =
  let next = machine.next in
  let stages = Array.length parts in
  let tables =
    Array.init stages (fun k ->
        Array.make_matrix (Partition.num_classes parts.(k)) machine.num_inputs
          (-1))
  in
  for s = 0 to machine.num_states - 1 do
    for k = 0 to stages - 1 do
      let x = Partition.class_of parts.(k) s in
      for i = 0 to machine.num_inputs - 1 do
        let y = Partition.class_of parts.((k + 1) mod stages) next.(s).(i) in
        if tables.(k).(x).(i) >= 0 then assert (tables.(k).(x).(i) = y)
        else tables.(k).(x).(i) <- y
      done
    done
  done;
  tables

let realize (machine : Machine.t) parts =
  if not (admissible machine parts) then
    invalid_arg "Multiway.realize: not an admissible chain";
  let stages = Array.length parts in
  let classes = Array.map Partition.num_classes parts in
  let total = Array.fold_left ( * ) 1 classes in
  if total > 1 lsl 20 then invalid_arg "Multiway.realize: product too large";
  let tables = factor_tables machine parts in
  (* Mixed-radix index, stage 0 most significant. *)
  let index tuple =
    let acc = ref 0 in
    for k = 0 to stages - 1 do
      acc := (!acc * classes.(k)) + tuple.(k)
    done;
    !acc
  in
  let tuple_of idx =
    let tuple = Array.make stages 0 in
    let rest = ref idx in
    for k = stages - 1 downto 0 do
      tuple.(k) <- !rest mod classes.(k);
      rest := !rest / classes.(k)
    done;
    tuple
  in
  let alpha =
    Array.init machine.num_states (fun s ->
        index (Array.init stages (fun k -> Partition.class_of parts.(k) s)))
  in
  let witness = Array.make total (-1) in
  for s = machine.num_states - 1 downto 0 do
    witness.(alpha.(s)) <- s
  done;
  let next = Array.make_matrix total machine.num_inputs 0 in
  let output = Array.make_matrix total machine.num_inputs 0 in
  for idx = 0 to total - 1 do
    let tuple = tuple_of idx in
    let w = witness.(idx) in
    for i = 0 to machine.num_inputs - 1 do
      let next_tuple =
        Array.init stages (fun k ->
            let src = (k + stages - 1) mod stages in
            tables.(src).(tuple.(src)).(i))
      in
      next.(idx).(i) <- index next_tuple;
      output.(idx).(i) <- (if w >= 0 then machine.output.(w).(i) else 0)
    done
  done;
  let product =
    Machine.make
      ~name:(machine.name ^ "_ring")
      ~num_states:total ~num_inputs:machine.num_inputs
      ~num_outputs:machine.num_outputs ~next ~output
      ~reset:alpha.(machine.reset) ~input_names:machine.input_names
      ~output_names:machine.output_names ()
  in
  (product, alpha)

let realizes machine parts =
  let product, alpha = realize machine parts in
  let ok = ref true in
  for s = 0 to machine.Machine.num_states - 1 do
    for i = 0 to machine.Machine.num_inputs - 1 do
      if
        product.Machine.next.(alpha.(s)).(i)
        <> alpha.(machine.Machine.next.(s).(i))
      then ok := false;
      if product.Machine.output.(alpha.(s)).(i) <> machine.Machine.output.(s).(i)
      then ok := false
    done
  done;
  !ok
