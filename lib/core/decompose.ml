module Machine = Stc_fsm.Machine
module Equiv = Stc_fsm.Equiv
module Pair = Stc_partition.Pair

let is_closed ~next pi = Pair.is_pair ~next pi pi

let closure ~next pi =
  let rec go pi =
    let grown = Partition.join pi (Pair.m ~next pi) in
    if Partition.equal grown pi then pi else go grown
  in
  go pi

let closed_partitions ~next =
  let n = Array.length next in
  let base =
    let seen = Hashtbl.create 64 in
    for s = 0 to n - 1 do
      for t = s + 1 to n - 1 do
        let c = closure ~next (Partition.pair_relation ~n s t) in
        if not (Hashtbl.mem seen c) then Hashtbl.replace seen c ()
      done
    done;
    Hashtbl.fold (fun p () acc -> p :: acc) seen []
  in
  let seen = Hashtbl.create 64 in
  let queue = Queue.create () in
  let add p =
    if not (Hashtbl.mem seen p) then begin
      if Hashtbl.length seen > 50_000 then
        invalid_arg "Decompose.closed_partitions: lattice too large";
      Hashtbl.replace seen p ();
      Queue.add p queue
    end
  in
  add (Partition.identity n);
  while not (Queue.is_empty queue) do
    let p = Queue.take queue in
    (* Joins of closed partitions are closed. *)
    List.iter (fun b -> add (Partition.join p b)) base
  done;
  Hashtbl.fold (fun p () acc -> p :: acc) seen []
  |> List.sort Partition.compare

type parallel = { pi1 : Partition.t; pi2 : Partition.t; bits : int }

let cost pi1 pi2 =
  let k1 = Partition.num_classes pi1 and k2 = Partition.num_classes pi2 in
  let hi = float_of_int (max k1 k2) and lo = float_of_int (min k1 k2) in
  (Machine.bits_for k1 + Machine.bits_for k2, k1 + k2, (hi /. lo) -. 1.0)

let nontrivial_partition n pi =
  let k = Partition.num_classes pi in
  k > 1 && k < n

let parallel (machine : Machine.t) =
  Stc_obs.Trace.span ~cat:"solver" "decompose.parallel" @@ fun () ->
  let next = machine.next in
  let n = machine.num_states in
  let equiv = Partition.of_class_map (Equiv.classes machine) in
  let closed =
    List.filter (nontrivial_partition n) (closed_partitions ~next)
  in
  let best = ref None in
  List.iter
    (fun pi1 ->
      List.iter
        (fun pi2 ->
          if Partition.subseteq (Partition.meet pi1 pi2) equiv then begin
            let c = cost pi1 pi2 in
            match !best with
            | Some (_, _, c') when c' <= c -> ()
            | _ -> best := Some (pi1, pi2, c)
          end)
        closed)
    closed;
  Option.map (fun (pi1, pi2, (bits, _, _)) -> { pi1; pi2; bits }) !best

type serial = { head : Partition.t; tail_states : int; bits : int }

let max_block_size pi =
  List.fold_left (fun acc block -> max acc (List.length block)) 1
    (Partition.blocks pi)

let serial (machine : Machine.t) =
  Stc_obs.Trace.span ~cat:"solver" "decompose.serial" @@ fun () ->
  let next = machine.next in
  let n = machine.num_states in
  let closed = closed_partitions ~next in
  let evaluate pi =
    let head_classes = Partition.num_classes pi in
    let tail_states = max_block_size pi in
    (Machine.bits_for head_classes + Machine.bits_for tail_states,
     head_classes + tail_states)
  in
  let candidates = List.filter (nontrivial_partition n) closed in
  let best =
    List.fold_left
      (fun acc pi ->
        let c = evaluate pi in
        match acc with
        | Some (_, c') when c' <= c -> acc
        | _ -> Some (pi, c))
      None candidates
  in
  Option.map
    (fun (head, (bits, _)) -> { head; tail_states = max_block_size head; bits })
    best
