module Partition = Stc_partition.Partition
module Pair = Stc_partition.Pair
module Machine = Stc_fsm.Machine
module Equiv = Stc_fsm.Equiv
module Rng = Stc_util.Rng
module Parallel = Stc_util.Parallel
module Clock = Stc_util.Clock
module Metrics = Stc_obs.Metrics
module Trace = Stc_obs.Trace

(* Stochastic anytime tier: seeded beam search + simulated annealing over
   symmetric partition pairs.  See the .mli for the contract; the
   load-bearing invariant throughout is that every random decision comes
   from a per-task substream indexed by a deterministic counter, and
   every cross-domain result lands in an index-addressed slot, so the
   whole search is a pure function of (machine, config) regardless of
   how many domains execute it. *)

let m_engaged = Metrics.counter "solver.anytime_engaged"
let m_evals = Metrics.counter "anytime.evals"
let m_feasible = Metrics.counter "anytime.feasible"
let m_rounds = Metrics.counter "anytime.rounds"
let m_sa_accepted = Metrics.counter "anytime.sa_accepted"
let m_closure_delta = Metrics.counter "anytime.closure_delta"
let m_closure_full = Metrics.counter "anytime.closure_full"
let m_closure_dirty = Metrics.counter "anytime.closure_dirty"
let m_closure_tt_hits = Metrics.counter "anytime.closure_tt_hits"
let g_best_bits = Metrics.gauge "anytime.best_bits"

type engage_reason = Forced | Budget_exhausted | Too_large

type tier = Exact | Stochastic of engage_reason

type config = {
  seed : int;
  beam_width : int;
  moves_per_candidate : int;
  split_ratio : int;
  max_rounds : int;
  max_evals : int;
  patience : int;
  sa_chains : int;
  sa_steps : int;
  exact_max_nodes : int;
  exact_max_states : int;
  budget : float;
  jobs : int;
  incremental : bool;
}

let default_config =
  {
    seed = 1;
    beam_width = 8;
    moves_per_candidate = 24;
    split_ratio = 6;
    max_rounds = 256;
    max_evals = 20_000;
    patience = 16;
    sa_chains = 4;
    sa_steps = 400;
    exact_max_nodes = 50_000;
    exact_max_states = 300;
    budget = infinity;
    jobs = 1;
    incremental = true;
  }

type frontier_point = {
  round : int;
  evals : int;
  elapsed : float;
  cost : Solver.cost;
}

type stats = {
  tier : tier;
  exact : Solver.stats option;
  rounds : int;
  evals : int;
  feasible : int;
  sa_accepted : int;
  elapsed : float;
  timed_out : bool;
  rng_fingerprint : int;
  trajectory : frontier_point list;
}

type result = { best : Solver.solution; stats : stats }

let pp_tier ppf = function
  | Exact -> Format.pp_print_string ppf "exact"
  | Stochastic Forced -> Format.pp_print_string ppf "stochastic(forced)"
  | Stochastic Budget_exhausted ->
    Format.pp_print_string ppf "stochastic(budget)"
  | Stochastic Too_large -> Format.pp_print_string ppf "stochastic(too-large)"

(* ------------------------------------------------------------------ *)
(* Move evaluation                                                     *)
(* ------------------------------------------------------------------ *)

type ctx = {
  machine : Machine.t;
  n : int;
  next : int array array;
  equiv : Partition.t;  (* state equivalence: the admissibility bound *)
}

let make_ctx machine =
  {
    machine;
    n = machine.Machine.num_states;
    next = machine.Machine.next;
    equiv = Partition.of_class_map (Equiv.classes machine);
  }

let admissible ctx pi rho =
  Pair.is_symmetric_pair ~next:ctx.next pi rho
  && Partition.meet_subseteq pi rho ctx.equiv

(* Least symmetric pair above a seed pair (same alternation as the exact
   solver's post-search refinement). *)
let rec close_pair memo pi rho =
  let rho' = Partition.join rho (Pair.Memo.m memo pi) in
  let pi' = Partition.join pi (Pair.Memo.m memo rho') in
  if Partition.equal pi pi' && Partition.equal rho rho' then (pi, rho')
  else close_pair memo pi' rho'

(* Monotone improvement: coarsen each side with M while admissible. *)
let rec polish ctx memo pi rho =
  let pi' = Pair.Memo.big_m memo rho in
  if (not (Partition.equal pi' pi)) && admissible ctx pi' rho then
    polish ctx memo pi' rho
  else begin
    let rho' = Pair.Memo.big_m memo pi in
    if (not (Partition.equal rho' rho)) && admissible ctx pi rho' then
      polish ctx memo pi rho'
    else (pi, rho)
  end

(* One-step move descriptor.  Generation — the only consumer of the RNG
   — is separated from evaluation so a transposition-table hit can skip
   the closure without perturbing the stream: the draw sequence is a
   pure function of the parent, never of how (or whether) the proposal
   gets evaluated. *)
type move =
  | Merge of { on_pi : bool; c : int; d : int }
      (** merge blocks [c] and [d] of the chosen side *)
  | Split of { on_pi : bool; s : int }
      (** singleton-split element [s] out of its block *)

(* Draw-for-draw the historical generator: split with probability
   [1/split_ratio] (never when [split_ratio <= 0], and then without the
   arm draw), otherwise merge.  Each arm consumes exactly the draws the
   old materializing generator did; the old split-and-compare degenerate
   test is the singleton test here. *)
let gen_move ctx ~split_ratio rng (parent : Solver.solution) =
  Trace.span ~cat:"anytime" "move_gen" @@ fun () ->
  if split_ratio > 0 && Rng.int rng split_ratio = 0 then begin
    (* Escape move: singleton-split one element on one side; evaluation
       re-opens the other side with the matching extremal operator.
       Deliberately a long jump — it abandons the untouched side — which
       is what lets the beam leave a basin the merges cannot. *)
    let on_pi = Rng.bool rng in
    let side = if on_pi then parent.Solver.pi else parent.Solver.rho in
    if Partition.is_identity side then None
    else begin
      let s = Rng.int rng ctx.n in
      if Partition.class_size side (Partition.class_of side s) = 1 then None
      else Some (Split { on_pi; s })
    end
  end
  else begin
    (* Upward move: merge two random blocks on one side.  The closure
       keeps the proposal a symmetric pair by construction, so the only
       feasibility question left is the meet bound. *)
    let on_pi = Rng.bool rng in
    let side = if on_pi then parent.Solver.pi else parent.Solver.rho in
    let k = Partition.num_classes side in
    if k < 2 then None
    else begin
      let c = Rng.int rng k in
      let d =
        let d = Rng.int rng (k - 1) in
        if d >= c then d + 1 else d
      in
      Some (Merge { on_pi; c; d })
    end
  end

(* Full-recompute closure: materialize the moved side and re-close from
   scratch — exactly the historical evaluator, kept as the equivalence
   oracle for the incremental engine.  Splits always come here: a split
   refines the parent, so the parent's closure caches say nothing. *)
let close_full memo (parent : Solver.solution) = function
  | Merge { on_pi; c; d } ->
    let side = if on_pi then parent.Solver.pi else parent.Solver.rho in
    let side' = Partition.merge_classes side c d in
    if on_pi then close_pair memo side' parent.Solver.rho
    else close_pair memo parent.Solver.pi side'
  | Split { on_pi; s } ->
    let side = if on_pi then parent.Solver.pi else parent.Solver.rho in
    let side' = Partition.split_singleton side s in
    if on_pi then close_pair memo side' (Pair.Memo.m memo side')
    else close_pair memo (Pair.Memo.big_m memo side') side'

(* Polish loop of the incremental path.  Every iterate coarsens the
   closed proposal, which (for a merge move) coarsens the parent, so
   each M-image may be derived from the parent's cached image by
   grouping block representatives ({!Pair.Memo.big_m_from}) instead of
   rescanning all states. *)
let rec polish_inc ctx memo ~base_pi ~base_rho pi rho =
  let pi' = Pair.Memo.big_m_from memo ~base:base_rho rho in
  if (not (Partition.equal pi' pi)) && admissible ctx pi' rho then
    polish_inc ctx memo ~base_pi ~base_rho pi' rho
  else begin
    let rho' = Pair.Memo.big_m_from memo ~base:base_pi pi in
    if (not (Partition.equal rho' rho)) && admissible ctx pi rho' then
      polish_inc ctx memo ~base_pi ~base_rho pi rho'
    else (pi, rho)
  end

(* Per-domain proposal transposition table.  Beam siblings share a
   parent and the move space is only quadratic in its class counts, so
   a round of [beam * moves] draws repeats (parent, move) pairs often;
   the table replays the cached evaluation result before any closure
   work.  Invisible to the search semantics at any [jobs]: the cached
   value is exactly what re-evaluation would produce, and generation
   has already consumed the stream. *)
module TT = Hashtbl.Make (struct
  type t = Partition.t * Partition.t * move

  let equal (p1, r1, m1) (p2, r2, m2) =
    m1 = m2 && Partition.equal p1 p2 && Partition.equal r1 r2

  let hash (p, r, m) = Hashtbl.hash (Partition.hash p, Partition.hash r, m)
end)

(* One domain's working state: the m/M memo plus the transposition
   table, both keyed on hash-consed partitions local to that domain. *)
type local = { memo : Pair.Memo.t; tt : Solver.solution option TT.t }

let make_local ctx () =
  { memo = Pair.Memo.create ~next:ctx.next; tt = TT.create 256 }

(* Evaluate one proposal: generate, consult the table, then close
   (delta worklist for merges, full recompute otherwise), gate on the
   fused [meet_subseteq] kernel, and polish + cost the survivors.  The
   spans are the frames the profiler attributes anytime flamegraphs
   to. *)
let eval_move ctx ~split_ratio ~incremental { memo; tt } rng
    (parent : Solver.solution) =
  Metrics.incr m_evals;
  match gen_move ctx ~split_ratio rng parent with
  | None -> None
  | Some mv -> (
    let key = (parent.Solver.pi, parent.Solver.rho, mv) in
    match TT.find_opt tt key with
    | Some r ->
      Metrics.incr m_closure_tt_hits;
      r
    | None ->
      let delta = incremental && match mv with Merge _ -> true | Split _ -> false in
      let pi, rho =
        if delta then
          Trace.span ~cat:"anytime" "closure_delta" @@ fun () ->
          match mv with
          | Split _ -> assert false
          | Merge { on_pi; c; d } ->
            Metrics.incr m_closure_delta;
            let pi, rho, dirty =
              Pair.close_merge ~next:ctx.next ~pi:parent.Solver.pi
                ~rho:parent.Solver.rho ~on_pi c d
            in
            Metrics.add m_closure_dirty dirty;
            (pi, rho)
        else
          Trace.span ~cat:"anytime" "closure_full" @@ fun () ->
          begin
            Metrics.incr m_closure_full;
            close_full memo parent mv
          end
      in
      let r =
        let feasible =
          Trace.span ~cat:"anytime" "feasibility_check" @@ fun () ->
          Partition.meet_subseteq pi rho ctx.equiv
        in
        if not feasible then None
        else begin
          Metrics.incr m_feasible;
          let pi, rho =
            Trace.span ~cat:"anytime" "polish" @@ fun () ->
            if delta then
              polish_inc ctx memo ~base_pi:parent.Solver.pi
                ~base_rho:parent.Solver.rho pi rho
            else polish ctx memo pi rho
          in
          let cost = Solver.cost_of ctx.machine ~pi ~rho in
          Some { Solver.pi; rho; cost }
        end
      in
      TT.add tt key r;
      r)

(* Total deterministic order on candidates: lexicographic cost, then
   structural partition order — domain-independent, so selection and
   deduplication never depend on evaluation timing. *)
let cand_compare (a : Solver.solution) (b : Solver.solution) =
  let c = Solver.compare_cost a.Solver.cost b.Solver.cost in
  if c <> 0 then c
  else
    let c = Partition.compare a.Solver.pi b.Solver.pi in
    if c <> 0 then c else Partition.compare a.Solver.rho b.Solver.rho

let dedupe_sorted cands =
  let sorted = List.sort cand_compare cands in
  let rec go = function
    | a :: b :: rest ->
      if cand_compare a b = 0 then go (a :: rest) else a :: go (b :: rest)
    | l -> l
  in
  go sorted

let rec take k = function
  | [] -> []
  | _ when k <= 0 -> []
  | x :: rest -> x :: take (k - 1) rest

(* Scalar relaxation of the lexicographic cost for Metropolis: bits
   dominate, factor states break ties at sub-bit scale, imbalance at
   sub-tie scale.  Only differences matter. *)
let energy ctx (s : Solver.solution) =
  float_of_int s.Solver.cost.Solver.bits
  +. (float_of_int s.Solver.cost.Solver.factor_states
     /. float_of_int (4 * ctx.n))
  +. (0.01 *. s.Solver.cost.Solver.imbalance
      /. (1.0 +. s.Solver.cost.Solver.imbalance))

(* ------------------------------------------------------------------ *)
(* The stochastic search                                               *)
(* ------------------------------------------------------------------ *)

let run_stochastic ~reason ~config ~seeds machine =
  Trace.span ~cat:"anytime" "stochastic" @@ fun () ->
  let start = Clock.now () in
  let ctx = make_ctx machine in
  let jobs = max 1 config.jobs in
  let moves = max 1 config.moves_per_candidate in
  (* Master stream: never advanced, only [substream]ed by task index. *)
  let root_rng = Rng.create config.seed in
  let main_memo = Pair.Memo.create ~next:ctx.next in
  let root =
    (* (M(identity), identity) is always an admissible symmetric pair:
       the same root the exact DFS records first. *)
    let id = Partition.identity ctx.n in
    let pi, rho = polish ctx main_memo (Pair.Memo.big_m main_memo id) id in
    { Solver.pi; rho; cost = Solver.cost_of machine ~pi ~rho }
  in
  let seeds =
    List.filter (fun s -> admissible ctx s.Solver.pi s.Solver.rho) seeds
  in
  let beam0 = take config.beam_width (dedupe_sorted (root :: seeds)) in
  let best0 = List.hd beam0 in
  let evals = ref 0 in
  let feasible = ref 0 in
  let fingerprint = ref 0 in
  let timed_out = ref false in
  let trajectory =
    ref
      [ { round = 0; evals = 0; elapsed = Clock.now () -. start;
          cost = best0.Solver.cost } ]
  in
  let over_budget () =
    config.budget < infinity && Clock.now () -. start > config.budget
  in
  (* Beam generations.  Each round fans [beam * moves] proposals over the
     domains; task i draws from substream (#evals-so-far + i) and lands
     in slot i, so the round's outcome is independent of [jobs]. *)
  let rec beam_loop beam best round stagnation =
    let beam_arr = Array.of_list beam in
    let ntasks = Array.length beam_arr * moves in
    if
      round >= config.max_rounds
      || stagnation >= config.patience
      || ntasks = 0
      || !evals + ntasks > config.max_evals
    then (best, round)
    else if over_budget () then begin
      timed_out := true;
      (best, round)
    end
    else begin
      Metrics.incr m_rounds;
      let results = Array.make ntasks None in
      let fps = Array.make ntasks 0 in
      let base = !evals in
      Trace.span ~cat:"anytime" "beam_round" (fun () ->
          Parallel.iter_range_local ~jobs ~local:(make_local ctx) ntasks
            (fun local i ->
              let rng = Rng.substream root_rng (base + i) in
              results.(i) <-
                eval_move ctx ~split_ratio:config.split_ratio
                  ~incremental:config.incremental local rng
                  beam_arr.(i / moves);
              fps.(i) <- Rng.fingerprint rng));
      evals := !evals + ntasks;
      Array.iter (fun v -> fingerprint := !fingerprint lxor v) fps;
      let fresh = List.filter_map Fun.id (Array.to_list results) in
      feasible := !feasible + List.length fresh;
      let beam' = take config.beam_width (dedupe_sorted (beam @ fresh)) in
      let best' = List.hd beam' in
      let improved = cand_compare best' best < 0 in
      (* [improved] includes the structural tie-breaks (it drives the
         stagnation counter); the frontier only records genuine cost
         improvements *)
      if Solver.compare_cost best'.Solver.cost best.Solver.cost < 0 then begin
        Metrics.set_gauge g_best_bits best'.Solver.cost.Solver.bits;
        trajectory :=
          { round = round + 1; evals = !evals;
            elapsed = Clock.now () -. start; cost = best'.Solver.cost }
          :: !trajectory
      end;
      beam_loop beam' best' (round + 1) (if improved then 0 else stagnation + 1)
    end
  in
  let best, rounds = beam_loop beam0 best0 0 0 in
  (* Annealing polish: a fixed number of independent Metropolis chains
     (not one per domain — the chain count must not depend on [jobs]),
     each walking from the beam incumbent under its own substream. *)
  let chains = max 0 config.sa_chains in
  let sa_steps =
    if chains = 0 then 0
    else min config.sa_steps (max 0 ((config.max_evals - !evals) / chains))
  in
  let sa_results = Array.make (max 1 chains) None in
  if sa_steps > 0 && not (over_budget ()) then begin
    let sa_base = !evals in
    Trace.span ~cat:"anytime" "sa" (fun () ->
        Parallel.iter_range_local ~jobs ~local:(make_local ctx) chains
          (fun local c ->
            let rng = Rng.substream root_rng (sa_base + c) in
            let current = ref best in
            let chain_best = ref best in
            let accepted = ref 0 in
            let chain_feasible = ref 0 in
            let t0 = 2.0 and t1 = 0.02 in
            for k = 0 to sa_steps - 1 do
              let temp =
                t0
                *. ((t1 /. t0)
                   ** (float_of_int k /. float_of_int (max 1 (sa_steps - 1))))
              in
              match
                eval_move ctx ~split_ratio:config.split_ratio
                  ~incremental:config.incremental local rng !current
              with
              | None -> ()
              | Some cand ->
                incr chain_feasible;
                let d = energy ctx cand -. energy ctx !current in
                if d <= 0.0 || Rng.float rng < exp (-.d /. temp) then begin
                  incr accepted;
                  current := cand;
                  if cand_compare cand !chain_best < 0 then chain_best := cand
                end
            done;
            sa_results.(c) <-
              Some (!chain_best, !accepted, !chain_feasible,
                    Rng.fingerprint rng)));
    evals := !evals + (chains * sa_steps)
  end
  else if over_budget () then timed_out := true;
  let sa_accepted = ref 0 in
  let best =
    Array.fold_left
      (fun acc r ->
        match r with
        | None -> acc
        | Some (b, acc_n, feas, fp) ->
          sa_accepted := !sa_accepted + acc_n;
          feasible := !feasible + feas;
          fingerprint := !fingerprint lxor fp;
          if cand_compare b acc < 0 then b else acc)
      best sa_results
  in
  Metrics.add m_sa_accepted !sa_accepted;
  Metrics.set_gauge g_best_bits best.Solver.cost.Solver.bits;
  (match Solver.validate machine best with
  | Ok () -> ()
  | Error msg -> invalid_arg ("Anytime.search: internal error: " ^ msg));
  let final =
    { round = rounds; evals = !evals; elapsed = Clock.now () -. start;
      cost = best.Solver.cost }
  in
  {
    best;
    stats =
      {
        tier = Stochastic reason;
        exact = None;
        rounds;
        evals = !evals;
        feasible = !feasible;
        sa_accepted = !sa_accepted;
        elapsed = Clock.now () -. start;
        timed_out = !timed_out;
        rng_fingerprint = !fingerprint;
        trajectory = List.rev (final :: !trajectory);
      };
  }

let search ?(config = default_config) ?(seeds = []) machine =
  run_stochastic ~reason:Forced ~config ~seeds machine

(* ------------------------------------------------------------------ *)
(* The anytime driver                                                  *)
(* ------------------------------------------------------------------ *)

let solve ?(config = default_config) ?(force = false) machine =
  Trace.span ~cat:"anytime" "anytime" @@ fun () ->
  let start = Clock.now () in
  let n = machine.Machine.num_states in
  let engage reason ~exact ~seeds =
    Metrics.incr m_engaged;
    Trace.instant ~cat:"anytime" "anytime_engaged";
    let remaining =
      if config.budget = infinity then infinity
      else Float.max 0.5 (config.budget -. (Clock.now () -. start))
    in
    let r =
      run_stochastic ~reason
        ~config:{ config with budget = remaining }
        ~seeds machine
    in
    { r with stats = { r.stats with exact; elapsed = Clock.now () -. start } }
  in
  if force then engage Forced ~exact:None ~seeds:[]
  else if n > config.exact_max_states then
    (* The basis alone is n(n-1)/2 interned partitions — never built. *)
    engage Too_large ~exact:None ~seeds:[]
  else begin
    let exact_timeout =
      if config.budget = infinity then infinity else 0.5 *. config.budget
    in
    (* Sequential on purpose: the hand-off incumbent must be reproducible
       for the stochastic tier to be; fan-out lives in the beam/SA
       loops. *)
    let r =
      Trace.span ~cat:"anytime" "exact_tier" @@ fun () ->
      Solver.solve ~timeout:exact_timeout ~max_nodes:config.exact_max_nodes
        ~jobs:1 machine
    in
    if r.Solver.stats.Solver.timed_out then
      engage Budget_exhausted ~exact:(Some r.Solver.stats)
        ~seeds:[ r.Solver.best ]
    else
      {
        best = r.Solver.best;
        stats =
          {
            tier = Exact;
            exact = Some r.Solver.stats;
            rounds = 0;
            evals = 0;
            feasible = 0;
            sa_accepted = 0;
            elapsed = Clock.now () -. start;
            timed_out = false;
            rng_fingerprint = 0;
            trajectory = [];
          };
      }
  end
