module Machine = Stc_fsm.Machine
module Equiv = Stc_fsm.Equiv
module Pair = Stc_partition.Pair

type t = {
  spec : Machine.t;
  pi : Partition.t;
  rho : Partition.t;
  delta1 : int array array;
  delta2 : int array array;
  product : Machine.t;
  alpha : int array;
  filler_output : int;
  filled : int;
}

let build (machine : Machine.t) ~pi ~rho =
  Stc_obs.Trace.span ~cat:"synth" "realization" @@ fun () ->
  let next = machine.next in
  let n = machine.num_states and k = machine.num_inputs in
  if Partition.size pi <> n || Partition.size rho <> n then
    invalid_arg "Realization.build: partition size mismatch";
  if not (Pair.is_symmetric_pair ~next pi rho) then
    invalid_arg "Realization.build: (pi, rho) is not a symmetric partition pair";
  let equiv = Partition.of_class_map (Equiv.classes machine) in
  if not (Partition.subseteq (Partition.meet pi rho) equiv) then
    invalid_arg "Realization.build: pi /\\ rho does not refine state equivalence";
  let k1 = Partition.num_classes pi and k2 = Partition.num_classes rho in
  (* delta1 and delta2 are well defined because the pair is symmetric; we
     nevertheless assert agreement over whole blocks as a safety net. *)
  let delta1 = Array.make_matrix k1 k 0 and delta2 = Array.make_matrix k2 k 0 in
  let seen1 = Array.make k1 false and seen2 = Array.make k2 false in
  for s = 0 to n - 1 do
    let c1 = Partition.class_of pi s and c2 = Partition.class_of rho s in
    for i = 0 to k - 1 do
      let d1 = Partition.class_of rho next.(s).(i)
      and d2 = Partition.class_of pi next.(s).(i) in
      if seen1.(c1) then assert (delta1.(c1).(i) = d1) else delta1.(c1).(i) <- d1;
      if seen2.(c2) then assert (delta2.(c2).(i) = d2) else delta2.(c2).(i) <- d2
    done;
    seen1.(c1) <- true;
    seen2.(c2) <- true
  done;
  (* Representative spec state for each (c1, c2) intersection, if any. *)
  let witness = Array.make (k1 * k2) (-1) in
  for s = n - 1 downto 0 do
    witness.((Partition.class_of pi s * k2) + Partition.class_of rho s) <- s
  done;
  let filler_output = 0 in
  let filled = ref 0 in
  let product_next = Array.make_matrix (k1 * k2) k 0 in
  let product_out = Array.make_matrix (k1 * k2) k 0 in
  for c1 = 0 to k1 - 1 do
    for c2 = 0 to k2 - 1 do
      let p = (c1 * k2) + c2 in
      let w = witness.(p) in
      if w < 0 then incr filled;
      for i = 0 to k - 1 do
        product_next.(p).(i) <- (delta2.(c2).(i) * k2) + delta1.(c1).(i);
        product_out.(p).(i) <-
          (if w >= 0 then machine.output.(w).(i) else filler_output)
      done
    done
  done;
  let alpha =
    Array.init n (fun s ->
        (Partition.class_of pi s * k2) + Partition.class_of rho s)
  in
  let state_names =
    Array.init (k1 * k2) (fun p -> Printf.sprintf "p%d_%d" (p / k2) (p mod k2))
  in
  let product =
    Machine.make
      ~name:(machine.name ^ "_pipeline")
      ~num_states:(k1 * k2) ~num_inputs:k ~num_outputs:machine.num_outputs
      ~next:product_next ~output:product_out ~reset:alpha.(machine.reset)
      ~state_names ~input_names:machine.input_names
      ~output_names:machine.output_names ()
  in
  {
    spec = machine;
    pi;
    rho;
    delta1;
    delta2;
    product;
    alpha;
    filler_output;
    filled = !filled;
  }

let of_solution machine (solution : Solver.solution) =
  build machine ~pi:solution.pi ~rho:solution.rho

let realizes r =
  let m = r.spec and p = r.product in
  let ok = ref true in
  for s = 0 to m.Machine.num_states - 1 do
    for i = 0 to m.Machine.num_inputs - 1 do
      if p.Machine.next.(r.alpha.(s)).(i) <> r.alpha.(m.Machine.next.(s).(i)) then
        ok := false;
      if p.Machine.output.(r.alpha.(s)).(i) <> m.Machine.output.(s).(i) then
        ok := false
    done
  done;
  !ok

let num_s1 r = Partition.num_classes r.pi

let num_s2 r = Partition.num_classes r.rho

let flipflops r = Machine.bits_for (num_s1 r) + Machine.bits_for (num_s2 r)

let spec_transitions r =
  r.spec.Machine.num_states * r.spec.Machine.num_inputs

let factor_transitions r =
  (num_s1 r + num_s2 r) * r.spec.Machine.num_inputs

let pp_factors ppf r =
  let open Format in
  fprintf ppf "@[<v>";
  let m = r.spec in
  let class_name partition c =
    (* Name a class after its smallest member, as the paper writes [1]pi. *)
    match Partition.members partition c with
    | s :: _ -> Printf.sprintf "[%s]" m.Machine.state_names.(s)
    | [] -> assert false
  in
  let print_table title table side other =
    fprintf ppf "%s@," title;
    fprintf ppf "%8s" "";
    for i = 0 to m.Machine.num_inputs - 1 do
      fprintf ppf "  %-8s" m.Machine.input_names.(i)
    done;
    fprintf ppf "@,";
    Array.iteri
      (fun c row ->
        fprintf ppf "%8s" (class_name side c);
        Array.iter (fun d -> fprintf ppf "  %-8s" (class_name other d)) row;
        fprintf ppf "@,")
      table
  in
  print_table "delta1 : S/pi x I -> S/rho" r.delta1 r.pi r.rho;
  print_table "delta2 : S/rho x I -> S/pi" r.delta2 r.rho r.pi;
  fprintf ppf "@]"
