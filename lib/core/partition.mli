(** Re-export of {!Stc_partition.Partition} so that [Stc_core.Partition]
    is the partition type appearing in this library's interfaces.  The
    [module type of struct include ... end] form preserves the type
    equalities, so values flow freely between the two paths. *)

include module type of struct
  include Stc_partition.Partition
end
