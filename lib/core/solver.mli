(** The OSTR search procedure (section 3 of the paper).

    Given a fully specified machine [M], find a symmetric partition pair
    [(pi, rho)] with [pi /\ rho] refining state equivalence, minimizing

    + (i) [ceil(log2 |S/pi|) + ceil(log2 |S/rho|)] (total flip-flops of the
      pipeline structure), then
    + (ii) the imbalance of the two factors, then
    + (iii) the total number of factor states [|S/pi| + |S/rho|] (fewer
      state transitions to implement, cf. the remark below Table 1).

    The search walks a tree whose nodes are subsets of the basis
    [MM = {m(p_{s,t})}]; at each node [pi = join of the subset], the
    candidates [(M(pi), pi)] and [(m(pi), pi)] are examined, and Lemma 1
    prunes the subtree whenever [m(pi) /\ pi] does not refine state
    equivalence.  The unpruned tree has [2^|MM|] nodes - the [|V|] column
    of Table 2. *)

type cost = {
  bits : int;  (** criterion (i): flip-flops of the pipeline realization *)
  imbalance : float;  (** criterion (ii): [max/min - 1] of the factor sizes *)
  factor_states : int;  (** criterion (iii): [|S1| + |S2|] *)
}

(** [compare_cost] orders costs lexicographically, smaller = better. *)
val compare_cost : cost -> cost -> int

type solution = {
  pi : Partition.t;  (** left factor: [S1 = S/pi], register R1 *)
  rho : Partition.t;  (** right factor: [S2 = S/rho], register R2 *)
  cost : cost;
}

(** [is_trivial machine solution] holds when both factors have as many
    states as the (possibly unreduced) machine itself - i.e. the solution
    is no better than doubling the machine (fig. 3). *)
val is_trivial : Stc_fsm.Machine.t -> solution -> bool

type stats = {
  basis_size : int;  (** [|MM|] after deduplication *)
  search_space : float;  (** [2^basis_size], the [|V|] of Table 2 *)
  investigated : int;  (** nodes actually expanded (Table 2, last column) *)
  deduped : int;
      (** arrivals skipped by the transposition table: the node's subset
          joined to a partition already expanded from an index at least as
          low, so its whole subtree was subsumed by an earlier one *)
  pruned : int;  (** subtrees cut by Lemma 1 *)
  solutions : int;  (** candidate solutions that passed all checks *)
  memo_hits : int;  (** cache hits of the memoized [m] / [M] operators *)
  elapsed : float;  (** wall-clock seconds (monotonic) *)
  timed_out : bool;
}

type result = { best : solution; stats : stats }

(** [solve ?timeout ?prune ?max_nodes ?jobs machine] runs the depth-first
    search over the Mm-sub-lattice.

    Distinct basis subsets routinely join to the same partition; a
    transposition table keyed on (partition, lowest expansion index)
    expands each (partition, branch) combination at most once, and the
    [m] / [M] operators are memoized per partition, so the [2^|MM|]
    subset tree collapses to the sub-lattice it generates ([deduped]
    counts the skipped arrivals).

    - [timeout] (wall-clock seconds): on expiry the best solution found so
      far is returned with [timed_out = true] (the paper does the same for
      [tbk]).
    - [prune] (default [true]): disable to measure the effect of Lemma 1
      (only feasible for very small machines).
    - [max_nodes]: hard cap on investigated nodes, a safety net for
      experiments.
    - [jobs] (default [1]): number of domains to fan the top-level basis
      branches over.  The returned [best] has the same cost for every
      [jobs] value; with [jobs = 1] the traversal (hence [stats]) is fully
      deterministic, while parallel runs may investigate a few nodes more
      or fewer depending on how branches land on domains (each domain
      dedupes against its own transposition table).
    - [sequential_fallback] (default [true]): degrade [jobs > 1] to the
      sequential fast path when the hardware reports a single
      recommended domain or the basis offers fewer than ~64 top-level
      branches per requested domain — measured configurations where the
      fan-out is slower than sequential search.  The effective fan-out
      is published on the [solver.effective_jobs] gauge.  Pass [false]
      to force the parallel machinery regardless (tests do).

    The search always returns at least the trivial solution found at the
    tree root, so [best] is total.  Every returned solution is validated:
    symmetric partition pair with intersection refining equivalence. *)
val solve :
  ?timeout:float ->
  ?prune:bool ->
  ?max_nodes:int ->
  ?jobs:int ->
  ?sequential_fallback:bool ->
  Stc_fsm.Machine.t ->
  result

(** [solve_exhaustive machine] enumerates {e all} partition pairs by brute
    force over every partition of the state set (Bell-number cost!) and
    returns the optimum.  The enumeration streams
    ({!Stc_partition.Enumerate.partitions}), so memory stays flat; run
    time makes ~9 states the practical ceiling for the [Bell(n)^2] pair
    scan.  Oracle for testing [solve]. *)
val solve_exhaustive : Stc_fsm.Machine.t -> solution

(** [cost_of machine ~pi ~rho] computes the cost record of a candidate
    pair. *)
val cost_of : Stc_fsm.Machine.t -> pi:Partition.t -> rho:Partition.t -> cost

(** [validate machine solution] re-checks that the solution is a symmetric
    partition pair whose intersection refines state equivalence; returns an
    error message otherwise. *)
val validate : Stc_fsm.Machine.t -> solution -> (unit, string) Stdlib.result
