module Trace = Stc_obs.Trace
module Metrics = Stc_obs.Metrics

type stimuli = int array array

type report = {
  label : string;
  total : int;
  detected : int;
  coverage : float;
  undetected : Netlist.fault list;
}

let pack (stimuli : stimuli) =
  match Array.length stimuli with
  | 0 -> []
  | cycles ->
    let num_inputs = Array.length stimuli.(0) in
    let w = Netlist.word_bits in
    let batches = (cycles + w - 1) / w in
    List.init batches (fun b ->
        Array.init num_inputs (fun k ->
            let word = ref 0 in
            for lane = 0 to w - 1 do
              let cycle = (b * w) + lane in
              if cycle < cycles && stimuli.(cycle).(k) <> 0 then
                word := !word lor (1 lsl lane)
            done;
            !word))

(* Mask of the lanes that carry real cycles in batch [b]. *)
let lane_masks ~cycles =
  let w = Netlist.word_bits in
  let batches = (cycles + w - 1) / w in
  List.init batches (fun b ->
      let valid = min w (cycles - (b * w)) in
      (* (1 lsl 62) - 1 = max_int: exactly the 62 pattern lanes. *)
      (1 lsl valid) - 1)

let observe netlist ?fault ~inputs observed =
  let values = Netlist.eval ?fault netlist ~inputs in
  Array.map (fun g -> values.(g)) observed

(* Lowest set bit index = first simulation lane (cycle within the batch)
   where the faulty response differs. *)
let first_lane word =
  let rec go k w = if w land 1 = 1 then k else go (k + 1) (w lsr 1) in
  go 0 word

let grade ?on_detect netlist ~batches ~masks ~observed faults =
  (* Golden responses per batch. *)
  let golden =
    List.map (fun inputs -> observe netlist ~inputs observed) batches
  in
  let w = Netlist.word_bits in
  let undetected = ref [] and detected = ref 0 in
  List.iter
    (fun fault ->
      let rec try_batches b batches golden masks =
        match (batches, golden, masks) with
        | [], [], [] -> false
        | inputs :: rest, g :: grest, m :: mrest ->
          let faulty = observe netlist ~fault ~inputs observed in
          let diff = ref 0 in
          Array.iteri
            (fun k v -> diff := !diff lor ((v lxor g.(k)) land m))
            faulty;
          if !diff <> 0 then begin
            (match on_detect with
            | Some f -> f ~cycle:((b * w) + first_lane !diff)
            | None -> ());
            true
          end
          else try_batches (b + 1) rest grest mrest
        | _ -> assert false
      in
      if try_batches 0 batches golden masks then incr detected
      else undetected := fault :: !undetected)
    faults;
  (!detected, List.rev !undetected)

(* Coverage-over-patterns histogram for one session: each detected fault
   contributes its first detection cycle, so the cumulative counts show
   how coverage accumulates as the LFSR stream lengthens. *)
let detect_histogram label =
  let slug =
    String.map
      (fun c ->
        match c with
        | 'a' .. 'z' | 'A' .. 'Z' | '0' .. '9' | '.' | '-' | '_' -> c
        | _ -> '_')
      label
  in
  Metrics.histogram ("faultsim.detect_cycle." ^ slug)

let observe_detect hist ~cycle = Metrics.observe hist (cycle + 1)

let run ~label netlist ~stimuli ~observed =
  Trace.span ~cat:"faultsim" ("session:" ^ label) @@ fun () ->
  let faults = Netlist.fault_sites netlist in
  let batches = pack stimuli in
  let masks = lane_masks ~cycles:(Array.length stimuli) in
  let hist = detect_histogram label in
  let detected, undetected =
    grade ~on_detect:(observe_detect hist) netlist ~batches ~masks ~observed
      faults
  in
  let total = List.length faults in
  {
    label;
    total;
    detected;
    coverage = (if total = 0 then 1.0 else float_of_int detected /. float_of_int total);
    undetected;
  }

let run_sessions ~label netlist sessions =
  Trace.span ~cat:"faultsim" ("sessions:" ^ label) @@ fun () ->
  let faults = Netlist.fault_sites netlist in
  let total = List.length faults in
  let remaining = ref faults and detected = ref 0 in
  List.iteri
    (fun k (stimuli, observed) ->
      let session_label = Printf.sprintf "%s.s%d" label (k + 1) in
      Trace.span ~cat:"faultsim" ("session:" ^ session_label) @@ fun () ->
      let batches = pack stimuli in
      let masks = lane_masks ~cycles:(Array.length stimuli) in
      let hist = detect_histogram session_label in
      let d, undetected =
        grade ~on_detect:(observe_detect hist) netlist ~batches ~masks
          ~observed !remaining
      in
      detected := !detected + d;
      remaining := undetected)
    sessions;
  {
    label;
    total;
    detected = !detected;
    coverage =
      (if total = 0 then 1.0 else float_of_int !detected /. float_of_int total);
    undetected = !remaining;
  }

let fault_on (fault : Netlist.fault) tags =
  List.find_map
    (fun (name, gates) ->
      if List.mem fault.Netlist.gate gates then Some name else None)
    tags
