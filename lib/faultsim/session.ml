module Trace = Stc_obs.Trace
module Metrics = Stc_obs.Metrics

type stimuli = int array array

type report = {
  label : string;
  total : int;
  detected : int;
  coverage : float;
  undetected : Netlist.fault list;
}

let pack stimuli = Array.to_list (Engine.pack stimuli).Engine.words

(* Same registered counter as the engine's, so naive and optimized runs
   report gate evaluations on a common scale. *)
let m_gate_evals = Metrics.counter "faultsim.gate_evals"

let observe netlist ?fault ~inputs observed =
  let values = Netlist.eval ?fault netlist ~inputs in
  Metrics.add m_gate_evals (Netlist.num_gates netlist);
  Array.map (fun g -> values.(g)) observed

(* Coverage-over-patterns histogram for one session: each detected fault
   contributes its first detection cycle, so the cumulative counts show
   how coverage accumulates as the LFSR stream lengthens. *)
let detect_histogram label =
  let slug =
    String.map
      (fun c ->
        match c with
        | 'a' .. 'z' | 'A' .. 'Z' | '0' .. '9' | '.' | '-' | '_' -> c
        | _ -> '_')
      label
  in
  Metrics.histogram ("faultsim.detect_cycle." ^ slug)

let observe_detect hist ~cycle = Metrics.observe hist (cycle + 1)

let report ~label ~total ~detected ~undetected =
  {
    label;
    total;
    detected;
    coverage =
      (if total = 0 then 1.0 else float_of_int detected /. float_of_int total);
    undetected;
  }

(* ------------------------------------------------------------------ *)
(* Naive reference grader: full netlist evaluation per fault per batch  *)
(* ------------------------------------------------------------------ *)

let grade_naive ?on_detect netlist ~(packed : Engine.packed) ~observed faults =
  let golden =
    Array.map (fun inputs -> observe netlist ~inputs observed) packed.Engine.words
  in
  let w = Netlist.word_bits in
  let nb = Engine.num_batches packed in
  let undetected = ref [] and detected = ref 0 in
  List.iter
    (fun fault ->
      let rec try_batches b =
        if b >= nb then false
        else begin
          let faulty =
            observe netlist ~fault ~inputs:packed.Engine.words.(b) observed
          in
          let g = golden.(b) and m = packed.Engine.masks.(b) in
          let diff = ref 0 in
          Array.iteri
            (fun k v -> diff := !diff lor ((v lxor g.(k)) land m))
            faulty;
          if !diff <> 0 then begin
            (match on_detect with
            | Some f -> f ~cycle:((b * w) + Engine.first_lane !diff)
            | None -> ());
            true
          end
          else try_batches (b + 1)
        end
      in
      if try_batches 0 then incr detected
      else undetected := fault :: !undetected)
    faults;
  (!detected, List.rev !undetected)

let run_sessions_naive ~label netlist sessions =
  let faults = Netlist.fault_sites netlist in
  let total = List.length faults in
  let remaining = ref faults and detected = ref 0 in
  List.iter2
    (fun session_label (stimuli, observed) ->
      Trace.span ~cat:"faultsim" ("session:" ^ session_label) @@ fun () ->
      let packed = Engine.pack stimuli in
      let hist = detect_histogram session_label in
      let d, undetected =
        grade_naive ~on_detect:(observe_detect hist) netlist ~packed ~observed
          !remaining
      in
      detected := !detected + d;
      remaining := undetected)
    (List.mapi (fun k _ -> Printf.sprintf "%s.s%d" label (k + 1)) sessions)
    sessions;
  report ~label ~total ~detected:!detected ~undetected:!remaining

(* ------------------------------------------------------------------ *)
(* Fast path: collapsed classes + cone-limited eval + fault-parallel    *)
(* ------------------------------------------------------------------ *)

let union_observed sessions =
  let tbl = Hashtbl.create 64 in
  List.iter
    (fun (_, observed) ->
      Array.iter (fun g -> Hashtbl.replace tbl g ()) observed)
    sessions;
  Array.of_list (List.sort compare (Hashtbl.fold (fun g () acc -> g :: acc) tbl []))

let run_sessions_fast ~jobs ~need_cycles ~session_labels netlist sessions =
  (* Protect every gate any session observes: equivalences must never fold
     a fault across an observation point. *)
  let eng = Engine.create ~protected:(union_observed sessions) netlist in
  let cl = Engine.collapsed eng in
  let faults = cl.Netlist.faults in
  let num_classes = Array.length cl.Netlist.representatives in
  let active = Array.make num_classes true in
  let detected = ref 0 in
  List.iter2
    (fun session_label (stimuli, observed) ->
      Trace.span ~cat:"faultsim" ("session:" ^ session_label) @@ fun () ->
      let p = Engine.pack stimuli in
      let g = Engine.golden eng p in
      let verdicts = Engine.grade eng ~jobs ~need_cycles p g ~observed ~active in
      let hist = detect_histogram session_label in
      Array.iteri
        (fun c verdict ->
          if active.(c) then
            match verdict with
            | Engine.Undetected -> ()
            | Engine.Detected cyc ->
              active.(c) <- false;
              let members = cl.Netlist.classes.(c) in
              detected := !detected + Array.length members;
              (* Equivalent faults share the exact same faulty responses,
                 hence the same first-detection cycle: credit each raw
                 member so histograms count raw faults. *)
              (match cyc with
              | Some cycle ->
                Array.iter (fun _ -> observe_detect hist ~cycle) members
              | None -> ()))
        verdicts)
    session_labels sessions;
  let undetected = ref [] in
  for i = Array.length faults - 1 downto 0 do
    if active.(cl.Netlist.class_of.(i)) then
      undetected := faults.(i) :: !undetected
  done;
  (!detected, !undetected, Array.length faults)

let defaults ?(jobs = 1) ?(naive = false) ?need_cycles () =
  let need_cycles =
    match need_cycles with Some b -> b | None -> Metrics.enabled ()
  in
  (jobs, naive, need_cycles)

let run ?jobs ?naive ?need_cycles ~label netlist ~stimuli ~observed =
  let jobs, naive, need_cycles = defaults ?jobs ?naive ?need_cycles () in
  if naive then
    Trace.span ~cat:"faultsim" ("session:" ^ label) @@ fun () ->
    let faults = Netlist.fault_sites netlist in
    let packed = Engine.pack stimuli in
    let hist = detect_histogram label in
    let detected, undetected =
      grade_naive ~on_detect:(observe_detect hist) netlist ~packed ~observed
        faults
    in
    report ~label ~total:(List.length faults) ~detected ~undetected
  else begin
    let detected, undetected, total =
      run_sessions_fast ~jobs ~need_cycles ~session_labels:[ label ] netlist
        [ (stimuli, observed) ]
    in
    report ~label ~total ~detected ~undetected
  end

let run_sessions ?jobs ?naive ?need_cycles ~label netlist sessions =
  let jobs, naive, need_cycles = defaults ?jobs ?naive ?need_cycles () in
  Trace.span ~cat:"faultsim" ("sessions:" ^ label) @@ fun () ->
  if naive then run_sessions_naive ~label netlist sessions
  else begin
    let session_labels =
      List.mapi (fun k _ -> Printf.sprintf "%s.s%d" label (k + 1)) sessions
    in
    let detected, undetected, total =
      run_sessions_fast ~jobs ~need_cycles ~session_labels netlist sessions
    in
    report ~label ~total ~detected ~undetected
  end

let adjusted (r : report) ~redundant =
  let tbl = Hashtbl.create 64 in
  List.iter (fun f -> Hashtbl.replace tbl f ()) redundant;
  let undetected =
    List.filter (fun f -> not (Hashtbl.mem tbl f)) r.undetected
  in
  let excluded = List.length r.undetected - List.length undetected in
  report ~label:r.label ~total:(r.total - excluded) ~detected:r.detected
    ~undetected

let fault_on (fault : Netlist.fault) tags =
  List.find_map
    (fun (name, gates) ->
      if List.mem fault.Netlist.gate gates then Some name else None)
    tags
