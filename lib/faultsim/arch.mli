(** Gate-level models of the paper's four controller structures (figs. 1-4)
    and their self-test sessions.

    All blocks are two-level networks synthesized from espresso-minimized
    covers.  Registers are part of the test-equipment model: the stimulus
    generator replays LFSR patterns into the register-output nets and
    records what the MISRs would compress, so each architecture reduces to
    a combinational netlist plus per-session (stimuli, observed) pairs -
    see {!Session}.

    What the structures demonstrate (section 1 of the paper):
    - fig. 2 (conventional BIST): the test register T drives C through a
      multiplexer during self-test, so the feedback lines from R and the
      R-side multiplexer pins are never exercised - their faults escape;
    - fig. 3 (doubled): full coverage, but two full-width registers and two
      copies of C;
    - fig. 4 (pipeline): full coverage with the factored blocks C1/C2 and
      registers sized by the OSTR factors. *)

type built = {
  label : string;
  netlist : Netlist.t;
  sessions : (Session.stimuli * int array) list;
      (** one (stimuli, observed gates) pair per self-test session *)
  tags : (string * int list) list;
      (** named gate groups, e.g. "feedback", "mux", "c1" - for classifying
          undetected faults *)
  flipflops : int;  (** register bits of the full structure *)
}

(** [conventional machine] is the plain fig. 1 structure (block C plus
    feedback buffers).  It has no self-test session; useful for area
    stats. *)
val conventional : Stc_fsm.Machine.t -> built

(** [conventional_bist ?cycles machine] is the fig. 2 structure: C,
    feedback buffers from R, a test-mode multiplexer column, and the test
    register T.  One session: T and the primary inputs run as LFSRs, the
    next-state and output lines are observed (R and an output MISR
    compress them).  [cycles] defaults to 1024. *)
val conventional_bist : ?cycles:int -> Stc_fsm.Machine.t -> built

(** [doubled ?cycles machine] is the fig. 3 structure: two copies of C in a
    ring.  Two sessions, each testing one copy. *)
val doubled : ?cycles:int -> Stc_fsm.Machine.t -> built

(** [pipeline ?cycles ?covers tables] is the fig. 4 structure built from
    the OSTR realization's minimized C1/C2/Lambda blocks.  Two sessions:
    R1 generates while R2 compresses, then the roles swap.  [covers]
    supplies already-minimized [(c1, c2, lambda)] implementation covers,
    skipping the internal espresso pass - callers that minimize the
    blocks themselves (e.g. the static analyzer) avoid paying for it
    twice.  [jobs] fans the internal minimizations over that many
    domains (see {!Stc_logic.Minimize.minimize}). *)
val pipeline :
  ?cycles:int ->
  ?jobs:int ->
  ?covers:Stc_logic.Cover.t * Stc_logic.Cover.t * Stc_logic.Cover.t ->
  Stc_encoding.Tables.pipeline ->
  built

(** [pipeline_of_machine ?cycles ?timeout ?jobs machine] runs the OSTR
    solver (over [jobs] domains), minimizes the factor blocks (same
    [jobs]) and builds the fig. 4 model. *)
val pipeline_of_machine :
  ?cycles:int -> ?timeout:float -> ?jobs:int -> Stc_fsm.Machine.t -> built

(** [grade built] runs all sessions and merges the verdicts
    ({!Session.run_sessions}); [jobs]/[naive]/[need_cycles] are passed
    through. *)
val grade :
  ?jobs:int -> ?naive:bool -> ?need_cycles:bool -> built -> Session.report

(** [undetected_by_tag built report] buckets the undetected faults by tag
    name ("other" when untagged). *)
val undetected_by_tag : built -> Session.report -> (string * int) list
