module Misr = Stc_bist.Misr

type report = {
  total : int;
  stream_detected : int;
  signature_detected : int;
  aliased : int;
  aliasing_rate : float;
  misr_width : int;
}

(* Observed gate values of one cycle, packed MSB-first into a word for the
   MISR (truncated to its width - wider observation buses fold, which only
   makes aliasing more likely, i.e. the measurement conservative). *)
let observe_word values observed ~width =
  let word = ref 0 in
  Array.iteri
    (fun k g ->
      if k < width then word := (!word lsl 1) lor (values.(g) land 1))
    observed;
  !word

let truncate_sessions ?cycles (built : Arch.built) =
  List.map
    (fun (stimuli, observed) ->
      let stimuli =
        match cycles with
        | Some c when c < Array.length stimuli -> Array.sub stimuli 0 c
        | _ -> stimuli
      in
      (stimuli, observed))
    built.Arch.sessions

let misr_width sessions =
  List.fold_left
    (fun acc (_, observed) -> max acc (min 32 (Array.length observed)))
    1 sessions

(* Reference implementation: every fault replays every session with a full
   netlist evaluation per cycle. *)
let measure_naive ~sessions ~width (net : Netlist.t) =
  (* Per fault and session: (stream differs, final signature). *)
  let run_session ?fault (stimuli, observed) =
    let misr = Misr.create ~width ~seed:0 () in
    let trace = Array.make (Array.length stimuli) 0 in
    Array.iteri
      (fun cycle vec ->
        let values = Netlist.eval ?fault net ~inputs:vec in
        let word = observe_word values observed ~width in
        trace.(cycle) <- word;
        ignore (Misr.absorb misr word))
      stimuli;
    (trace, Misr.signature misr)
  in
  let golden = List.map (fun session -> run_session session) sessions in
  let faults = Netlist.fault_sites net in
  let stream_detected = ref 0
  and signature_detected = ref 0
  and aliased = ref 0 in
  List.iter
    (fun fault ->
      let stream = ref false and signature = ref false in
      List.iter2
        (fun session (golden_trace, golden_sig) ->
          let trace, sig_ = run_session ~fault session in
          if trace <> golden_trace then stream := true;
          if sig_ <> golden_sig then signature := true)
        sessions golden;
      if !stream then incr stream_detected;
      if !signature then incr signature_detected;
      if !stream && not !signature then incr aliased)
    faults;
  (List.length faults, !stream_detected, !signature_detected, !aliased)

(* Engine-backed implementation: the packed golden responses are computed
   once per session (instead of once per fault per session) and each
   fault's observed words come from a cone-limited incremental
   re-evaluation of one collapsed representative. *)
let measure_fast ~jobs ~sessions ~width (net : Netlist.t) =
  (* The MISR only sees the first [width] observed gates - truncate the
     observation sets so the engine's difference verdicts line up with the
     stream words exactly. *)
  let sessions =
    List.map
      (fun (stimuli, observed) ->
        let observed =
          if Array.length observed > width then Array.sub observed 0 width
          else observed
        in
        (stimuli, observed))
      sessions
  in
  let protected =
    let tbl = Hashtbl.create 64 in
    List.iter
      (fun (_, observed) ->
        Array.iter (fun g -> Hashtbl.replace tbl g ()) observed)
      sessions;
    Array.of_list
      (List.sort compare (Hashtbl.fold (fun g () acc -> g :: acc) tbl []))
  in
  let eng = Engine.create ~protected net in
  let cl = Engine.collapsed eng in
  let w = Netlist.word_bits in
  let packed_sessions =
    List.map
      (fun (stimuli, observed) ->
        let p = Engine.pack stimuli in
        (p, Engine.golden eng p, observed))
      sessions
  in
  let golden_sigs =
    List.map
      (fun (p, g, observed) ->
        let misr = Misr.create ~width ~seed:0 () in
        for c = 0 to p.Engine.cycles - 1 do
          let b = c / w and lane = c mod w in
          let word = ref 0 in
          Array.iter
            (fun gate ->
              word := (!word lsl 1) lor ((g.(b).(gate) lsr lane) land 1))
            observed;
          ignore (Misr.absorb misr !word)
        done;
        Misr.signature misr)
      packed_sessions
  in
  let num_classes = Array.length cl.Netlist.representatives in
  let verdicts = Array.make num_classes (false, false) in
  let cursor = Atomic.make 0 in
  let worker () =
    let scr = Engine.scratch eng in
    let rec loop () =
      let ci = Atomic.fetch_and_add cursor 1 in
      if ci < num_classes then begin
        let fault = cl.Netlist.faults.(cl.Netlist.representatives.(ci)) in
        let stream = ref false and signature = ref false in
        List.iter2
          (fun (p, g, observed) golden_sig ->
            let misr = Misr.create ~width ~seed:0 () in
            let into = Array.make (Array.length observed) 0 in
            for b = 0 to Engine.num_batches p - 1 do
              if Engine.response eng scr g p ~batch:b fault ~observed ~into
              then stream := true;
              let valid = min w (p.Engine.cycles - (b * w)) in
              for lane = 0 to valid - 1 do
                let word = ref 0 in
                Array.iter
                  (fun wd -> word := (!word lsl 1) lor ((wd lsr lane) land 1))
                  into;
                ignore (Misr.absorb misr !word)
              done
            done;
            if Misr.signature misr <> golden_sig then signature := true)
          packed_sessions golden_sigs;
        verdicts.(ci) <- (!stream, !signature);
        loop ()
      end
    in
    loop ()
  in
  let jobs = max 1 (min jobs (max 1 num_classes)) in
  if jobs = 1 then worker ()
  else begin
    let domains = List.init (jobs - 1) (fun _ -> Domain.spawn worker) in
    worker ();
    List.iter Domain.join domains
  end;
  (* Equivalent faults produce identical observed traces, hence identical
     signatures: weight each class verdict by its raw member count. *)
  let stream_detected = ref 0
  and signature_detected = ref 0
  and aliased = ref 0 in
  Array.iteri
    (fun ci (stream, signature) ->
      let members = Array.length cl.Netlist.classes.(ci) in
      if stream then stream_detected := !stream_detected + members;
      if signature then signature_detected := !signature_detected + members;
      if stream && not signature then aliased := !aliased + members)
    verdicts;
  (Array.length cl.Netlist.faults, !stream_detected, !signature_detected,
   !aliased)

let measure ?cycles ?(jobs = 1) ?(naive = false) (built : Arch.built) =
  let net = built.Arch.netlist in
  let sessions = truncate_sessions ?cycles built in
  let width = misr_width sessions in
  let total, stream_detected, signature_detected, aliased =
    if naive then measure_naive ~sessions ~width net
    else measure_fast ~jobs ~sessions ~width net
  in
  {
    total;
    stream_detected;
    signature_detected;
    aliased;
    aliasing_rate =
      (if stream_detected = 0 then 0.0
       else float_of_int aliased /. float_of_int stream_detected);
    misr_width = width;
  }
