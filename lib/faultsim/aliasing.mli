(** MISR aliasing measurement.

    The session grader ({!Session}) compares observed-response streams
    directly, i.e. it assumes ideal compaction.  In the real structure the
    responses are compressed into a signature register, and a faulty
    stream can {e alias} - produce the fault-free signature (probability
    about [2^-w] for a width-[w] MISR).  This module replays each
    session's stimuli fault by fault, compresses the observed nets into an
    actual {!Stc_bist.Misr}, and counts the stream-detected faults whose
    final signatures nevertheless match - quantifying the error made by
    the ideal-compaction assumption. *)

type report = {
  total : int;  (** faults simulated *)
  stream_detected : int;  (** detected by direct stream comparison *)
  signature_detected : int;
      (** detected by comparing the final MISR signature of some session *)
  aliased : int;  (** stream-detected but signature-equal in every session *)
  aliasing_rate : float;  (** aliased / stream_detected (0 when none) *)
  misr_width : int;  (** width used (= observed nets, capped at 32) *)
}

(** [measure ?cycles built] replays the sessions of a built architecture
    (typically {!Arch.pipeline}); [cycles] truncates each session's
    stimuli (default: use them all).

    By default the packed golden responses are computed once per session
    and each fault replays only its output cone through the collapsed
    {!Engine} (one representative per class, verdicts weighted by class
    size); [jobs] (default 1) shards the classes over domains.  [naive]
    restores the reference full-replay-per-fault measurement. *)
val measure : ?cycles:int -> ?jobs:int -> ?naive:bool -> Arch.built -> report
