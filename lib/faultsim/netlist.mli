(** Re-export of {!Stc_netlist.Netlist} so that [Stc_faultsim.Netlist]
    is the netlist type appearing in this library's interfaces.  The
    [module type of struct include ... end] form preserves the type
    equalities, so values flow freely between the two paths. *)

include module type of struct
  include Stc_netlist.Netlist
end
