module Rng = Stc_util.Rng
module Tables = Stc_encoding.Tables

type result = {
  total : int;
  detected : int;
  coverage : float;
  detection_cycles : int array;
  cycles : int;
}

let lane_mask = (1 lsl Netlist.word_bits) - 1

(* Spread bit [k] (MSB first, width [w]) of [code] to all lanes. *)
let code_bit_word ~width code k =
  if code land (1 lsl (width - 1 - k)) <> 0 then lane_mask else 0

let run ?(seed = 20240705) ?(jobs = 1) ?(naive = false) ~cycles ~state_width
    ~reset_code (net : Netlist.t) =
  let num_inputs = Array.length net.Netlist.inputs in
  if num_inputs <= state_width then
    invalid_arg "Seqtest.run: netlist has no primary inputs beside the state";
  let primary = num_inputs - state_width in
  let num_outputs = Array.length net.Netlist.outputs in
  if num_outputs <= state_width then
    invalid_arg "Seqtest.run: netlist has no primary outputs beside next-state";
  let ns_gates =
    Array.init state_width (fun k -> snd net.Netlist.outputs.(k))
  in
  let po_gates =
    Array.init (num_outputs - state_width) (fun k ->
        snd net.Netlist.outputs.(state_width + k))
  in
  (* One independent random input stream per lane: pre-draw a word per
     primary input per cycle. *)
  let rng = Rng.create seed in
  let stimulus =
    Array.init cycles (fun _ ->
        Array.init primary (fun _ ->
            Int64.to_int (Int64.logand (Rng.bits64 rng) 0x3FFFFFFFFFFFFFFFL)
            land lane_mask))
  in
  let initial_state =
    Array.init state_width (code_bit_word ~width:state_width reset_code)
  in
  let num_gates = Netlist.num_gates net in
  let simulate ?fault ~values ~inputs ~observe () =
    (* [observe cycle values] may stop the run by returning true.
       [values] and [inputs] are the caller's buffers (one set per
       domain) - the loop allocates nothing per cycle. *)
    let state = Array.copy initial_state in
    let stopped = ref None in
    let cycle = ref 0 in
    while !stopped = None && !cycle < cycles do
      Array.blit stimulus.(!cycle) 0 inputs 0 primary;
      Array.blit state 0 inputs primary state_width;
      Netlist.eval_into ?fault net ~values ~inputs;
      if observe !cycle values then stopped := Some !cycle
      else begin
        Array.iteri (fun k g -> state.(k) <- values.(g) land lane_mask) ns_gates;
        incr cycle
      end
    done;
    !stopped
  in
  (* Golden primary-output trace. *)
  let golden = Array.make cycles [||] in
  let gvalues = Array.make num_gates 0 in
  let ginputs = Array.make num_inputs 0 in
  ignore
    (simulate ~values:gvalues ~inputs:ginputs
       ~observe:(fun cycle values ->
         golden.(cycle) <- Array.map (fun g -> values.(g)) po_gates;
         false)
       ());
  let first_detect ~values ~inputs fault =
    simulate ~fault ~values ~inputs
      ~observe:(fun cycle values ->
        let g = golden.(cycle) in
        let differs = ref false in
        Array.iteri
          (fun k gate ->
            if (values.(gate) lxor g.(k)) land lane_mask <> 0 then
              differs := true)
          po_gates;
        !differs)
      ()
  in
  let total, detected, detections =
    if naive then begin
      let faults = Netlist.fault_sites net in
      let detections = ref [] and detected = ref 0 in
      List.iter
        (fun fault ->
          match first_detect ~values:gvalues ~inputs:ginputs fault with
          | Some cycle ->
            incr detected;
            detections := cycle :: !detections
          | None -> ())
        faults;
      (List.length faults, !detected, !detections)
    end
    else begin
      (* Both the primary outputs and the fed-back next-state lines must
         stay distinct under collapsing: equivalent faults then share the
         exact same state evolution and first-detection cycle, so one
         simulation per class is exact for every member. *)
      let cl =
        Netlist.collapse ~protected:(Array.append ns_gates po_gates) net
      in
      let num_classes = Array.length cl.Netlist.representatives in
      let hits = Array.make num_classes None in
      let cursor = Atomic.make 0 in
      let worker () =
        let values = Array.make num_gates 0 in
        let inputs = Array.make num_inputs 0 in
        let rec loop () =
          let c = Atomic.fetch_and_add cursor 1 in
          if c < num_classes then begin
            hits.(c) <-
              first_detect ~values ~inputs
                cl.Netlist.faults.(cl.Netlist.representatives.(c));
            loop ()
          end
        in
        loop ()
      in
      let jobs = max 1 (min jobs (max 1 num_classes)) in
      if jobs = 1 then worker ()
      else begin
        let domains = List.init (jobs - 1) (fun _ -> Domain.spawn worker) in
        worker ();
        List.iter Domain.join domains
      end;
      let detections = ref [] and detected = ref 0 in
      Array.iteri
        (fun c hit ->
          match hit with
          | Some cycle ->
            let members = Array.length cl.Netlist.classes.(c) in
            detected := !detected + members;
            for _ = 1 to members do
              detections := cycle :: !detections
            done
          | None -> ())
        hits;
      (Array.length cl.Netlist.faults, !detected, !detections)
    end
  in
  let detection_cycles = Array.of_list detections in
  Array.sort compare detection_cycles;
  {
    total;
    detected;
    coverage =
      (if total = 0 then 1.0 else float_of_int detected /. float_of_int total);
    detection_cycles;
    cycles;
  }

let run_conventional ?seed ?jobs ?naive ?(cycles = 2048) machine =
  let built = Arch.conventional machine in
  let enc = Tables.encode machine in
  let code = enc.Tables.state_code in
  run ?seed ?jobs ?naive ~cycles ~state_width:code.Stc_encoding.Code.width
    ~reset_code:code.Stc_encoding.Code.codes.(machine.Stc_fsm.Machine.reset)
    built.Arch.netlist

let cycles_to_coverage result fraction =
  if result.detected = 0 then None
  else begin
    let index =
      min (result.detected - 1)
        (int_of_float (ceil (fraction *. float_of_int result.detected)) - 1)
    in
    let index = max 0 index in
    Some (result.detection_cycles.(index) + 1)
  end
