module Metrics = Stc_obs.Metrics
module Clock = Stc_util.Clock
module Word = Stc_bits.Word
module Arena = Stc_bits.Arena
module Parallel = Stc_bits.Parallel

type stimuli = int array array

type packed = {
  cycles : int;
  words : int array array;
  masks : int array;
}

let word_bits = Netlist.word_bits

let pack (stimuli : stimuli) =
  let cycles = Array.length stimuli in
  let w = word_bits in
  let batches = (cycles + w - 1) / w in
  let num_inputs = if cycles = 0 then 0 else Array.length stimuli.(0) in
  let words =
    Array.init batches (fun b ->
        Array.init num_inputs (fun k ->
            let word = ref 0 in
            for lane = 0 to w - 1 do
              let cycle = (b * w) + lane in
              if cycle < cycles && stimuli.(cycle).(k) <> 0 then
                word := !word lor (1 lsl lane)
            done;
            !word))
  in
  let masks =
    Array.init batches (fun b ->
        let valid = min w (cycles - (b * w)) in
        (* (1 lsl 62) - 1 = max_int: exactly the 62 pattern lanes. *)
        (1 lsl valid) - 1)
  in
  { cycles; words; masks }

let num_batches p = Array.length p.words

(* Lowest set bit index = first simulation lane (cycle within the batch)
   where the faulty response differs. *)
let first_lane word =
  if word = 0 then invalid_arg "Engine.first_lane: zero difference word";
  Word.ffs word

(* ------------------------------------------------------------------ *)
(* Observability                                                       *)
(* ------------------------------------------------------------------ *)

let m_raw = Metrics.counter "faultsim.faults.raw"
let m_classes = Metrics.counter "faultsim.faults.classes"
let m_dom_skips = Metrics.counter "faultsim.dominance_skips"
let m_gate_evals = Metrics.counter "faultsim.gate_evals"
let m_cone = Metrics.histogram "faultsim.cone_size"
let m_domain_ms = Metrics.histogram "faultsim.domain_wall_ms"

(* ------------------------------------------------------------------ *)
(* Engine: collapsed fault list plus per-site output cones              *)
(* ------------------------------------------------------------------ *)

type t = {
  net : Netlist.t;
  collapsed : Netlist.collapsed;
  cones : int array array;  (* by site gate; [||] where no fault lives *)
}

let create ?protected net =
  let collapsed = Netlist.collapse ?protected net in
  let rd = Netlist.readers net in
  let cones = Array.make (Netlist.num_gates net) [||] in
  Array.iter
    (fun rep ->
      let g = collapsed.Netlist.faults.(rep).Netlist.gate in
      if Array.length cones.(g) = 0 then begin
        let c = Netlist.cone ~readers:rd net g in
        cones.(g) <- c;
        Metrics.observe m_cone (Array.length c)
      end)
    collapsed.Netlist.representatives;
  Metrics.add m_raw (Array.length collapsed.Netlist.faults);
  Metrics.add m_classes (Array.length collapsed.Netlist.representatives);
  { net; collapsed; cones }

let netlist t = t.net

let collapsed t = t.collapsed

(* ------------------------------------------------------------------ *)
(* Golden evaluation: once per batch, full netlist, reused buffers      *)
(* ------------------------------------------------------------------ *)

type golden = int array array

let golden t (p : packed) : golden =
  let n = Netlist.num_gates t.net in
  Array.map
    (fun inputs ->
      let values = Array.make n 0 in
      Netlist.eval_into t.net ~values ~inputs;
      Metrics.add m_gate_evals n;
      values)
    p.words

(* ------------------------------------------------------------------ *)
(* Cone-limited incremental faulty evaluation                          *)
(* ------------------------------------------------------------------ *)

(* Per-domain scratch: a faulty-value overlay over the golden buffer -
   an epoch-stamped arena ([Arena.Stamped]), so clearing between faults
   is O(1). *)
type scratch = Arena.Stamped.t

let scratch t = Arena.Stamped.create (Netlist.num_gates t.net)

let all_ones = -1

(* Evaluate [fault] against one packed batch.  Only gates in the fault
   site's output cone are touched, and of those only the ones with a
   differing fanin are recomputed; a gate whose masked value matches the
   golden word is not marked, so a fault effect that dies at controlling
   side-inputs stops costing anything.  Returns the OR over observed
   gates of the masked faulty-vs-golden difference; with [stop_early]
   the scan returns at the first observed difference (verdict-only
   grading does not need the exact first lane). *)
let eval_fault t scr ~(gv : int array) ~mask ~(obs_mark : bool array)
    ~stop_early (fault : Netlist.fault) =
  let gates = t.net.Netlist.gates in
  let site = fault.Netlist.gate in
  let cone = t.cones.(site) in
  let ep = Arena.Stamped.bump scr in
  let stamp = scr.Arena.Stamped.stamp and faulty = scr.Arena.Stamped.data in
  let stuck = if fault.Netlist.stuck_at then all_ones else 0 in
  let evals = ref 1 in
  let site_val =
    match fault.Netlist.pin with
    | None -> stuck
    | Some fpin ->
      let read k x = if k = fpin then stuck else gv.(x) in
      (match gates.(site) with
      | Netlist.Buf x -> read 0 x
      | Netlist.Not x -> lnot (read 0 x)
      | Netlist.And xs ->
        let acc = ref all_ones in
        Array.iteri (fun k x -> acc := !acc land read k x) xs;
        !acc
      | Netlist.Or xs ->
        let acc = ref 0 in
        Array.iteri (fun k x -> acc := !acc lor read k x) xs;
        !acc
      | Netlist.Xor xs ->
        let acc = ref 0 in
        Array.iteri (fun k x -> acc := !acc lxor read k x) xs;
        !acc
      | Netlist.Mux { sel; a; b } ->
        let s = read 0 sel in
        (lnot s land read 1 a) lor (s land read 2 b)
      | Netlist.Input _ | Netlist.Const _ ->
        (* Pin faults are only enumerated on logic gates. *)
        gv.(site))
  in
  let site_diff = (site_val lxor gv.(site)) land mask in
  if site_diff = 0 then begin
    (* The injected value agrees with the golden one on every valid lane:
       the whole cone is unaffected (lanes are independent). *)
    Metrics.add m_gate_evals !evals;
    0
  end
  else begin
    faulty.(site) <- site_val;
    stamp.(site) <- ep;
    let diff_obs = ref (if obs_mark.(site) then site_diff else 0) in
    let nc = Array.length cone in
    (try
       for ci = 1 to nc - 1 do
         if stop_early && !diff_obs <> 0 then raise Exit;
         let idx = cone.(ci) in
         let ops = Netlist.operands gates.(idx) in
         let dirty = ref false in
         Array.iter (fun x -> if stamp.(x) = ep then dirty := true) ops;
         if !dirty then begin
           let read x = if stamp.(x) = ep then faulty.(x) else gv.(x) in
           let v =
             match gates.(idx) with
             | Netlist.Buf x -> read x
             | Netlist.Not x -> lnot (read x)
             | Netlist.And xs ->
               let acc = ref all_ones in
               Array.iter (fun x -> acc := !acc land read x) xs;
               !acc
             | Netlist.Or xs ->
               let acc = ref 0 in
               Array.iter (fun x -> acc := !acc lor read x) xs;
               !acc
             | Netlist.Xor xs ->
               let acc = ref 0 in
               Array.iter (fun x -> acc := !acc lxor read x) xs;
               !acc
             | Netlist.Mux { sel; a; b } ->
               let s = read sel in
               (lnot s land read a) lor (s land read b)
             | Netlist.Input _ | Netlist.Const _ -> gv.(idx)
           in
           incr evals;
           let d = (v lxor gv.(idx)) land mask in
           if d <> 0 then begin
             faulty.(idx) <- v;
             stamp.(idx) <- ep;
             if obs_mark.(idx) then diff_obs := !diff_obs lor d
           end
         end
       done
     with Exit -> ());
    Metrics.add m_gate_evals !evals;
    !diff_obs
  end

let obs_marks t observed =
  let mark = Array.make (Netlist.num_gates t.net) false in
  Array.iter (fun g -> mark.(g) <- true) observed;
  mark

let response t scr (g : golden) (p : packed) ~batch fault ~observed ~into =
  let gv = g.(batch) in
  let obs_mark = obs_marks t observed in
  let diff =
    eval_fault t scr ~gv ~mask:p.masks.(batch) ~obs_mark ~stop_early:false fault
  in
  Array.iteri
    (fun j gate -> into.(j) <- Arena.Stamped.get scr gate ~default:gv.(gate))
    observed;
  diff <> 0

(* ------------------------------------------------------------------ *)
(* Fault-parallel grading                                              *)
(* ------------------------------------------------------------------ *)

type verdict = Undetected | Detected of int option

(* Shard [work] (class ids) over [jobs] domains with chunked grabs; each
   domain owns its scratch buffers and writes disjoint slots of
   [verdicts]. *)
let run_sharded t ~jobs ~verdicts ~grade_one (work : int array) =
  let nw = Array.length work in
  if nw > 0 then
    Parallel.iter_range_local ~jobs
      ~local:(fun () -> (scratch t, Clock.now ()))
      ~finish:(fun (_, t0) ->
        Metrics.observe m_domain_ms
          (int_of_float (1000.0 *. Clock.elapsed ~since:t0)))
      nw
      (fun (scr, _) i ->
        let c = work.(i) in
        verdicts.(c) <- grade_one scr c)

let grade t ~jobs ~need_cycles ?(dominance = true) (p : packed) (g : golden)
    ~observed ~(active : bool array) =
  let cl = t.collapsed in
  let num_classes = Array.length cl.Netlist.representatives in
  let verdicts = Array.make num_classes Undetected in
  let obs_mark = obs_marks t observed in
  let nb = num_batches p in
  let grade_one scr c =
    let fault = cl.Netlist.faults.(cl.Netlist.representatives.(c)) in
    let rec go b =
      if b >= nb then Undetected
      else
        let diff =
          eval_fault t scr ~gv:g.(b) ~mask:p.masks.(b) ~obs_mark
            ~stop_early:(not need_cycles) fault
        in
        if diff <> 0 then
          Detected
            (if need_cycles then Some ((b * word_bits) + first_lane diff)
             else None)
        else go (b + 1)
    in
    go 0
  in
  (* Dominance shortcut: classes whose detection is implied by a dominated
     class are graded after the rest - they only need simulating when
     every dominated class escaped.  Exact first-detect cycles cannot be
     inferred this way, so the shortcut is off when cycles are wanted. *)
  let use_dom = dominance && not need_cycles in
  let deferred = ref [] and phase1 = ref [] in
  for c = num_classes - 1 downto 0 do
    if active.(c) then
      if
        use_dom
        && Array.exists (fun d -> active.(d)) cl.Netlist.dominated_by.(c)
      then deferred := c :: !deferred
      else phase1 := c :: !phase1
  done;
  run_sharded t ~jobs ~verdicts ~grade_one (Array.of_list !phase1);
  let simulate = ref [] in
  List.iter
    (fun c ->
      let implied =
        Array.exists
          (fun d ->
            active.(d) && match verdicts.(d) with Detected _ -> true | Undetected -> false)
          cl.Netlist.dominated_by.(c)
      in
      if implied then begin
        verdicts.(c) <- Detected None;
        Metrics.incr m_dom_skips
      end
      else simulate := c :: !simulate)
    !deferred;
  run_sharded t ~jobs ~verdicts ~grade_one (Array.of_list (List.rev !simulate));
  verdicts
