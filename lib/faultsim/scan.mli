(** Full-scan testing of the fig. 1 structure - the other conventional
    alternative to the paper's architecture.

    With every state flip-flop on a scan chain, the combinational block C
    becomes fully controllable and observable, so coverage is essentially
    complete - but each pattern costs [chain length + 1] clock cycles
    (shift in, capture, with shift-out overlapped), the chain multiplexers
    add delay on every path into the register, and the test cannot run
    concurrently with normal operation.  The paper's pipeline structure
    reaches comparable coverage with one cycle per pattern and no
    multiplexer in the mission path.

    The model reuses the combinational grader: patterns drive both the
    primary inputs and the (scanned-in) state bits, and both the
    next-state lines and the primary outputs are observed (captured into
    the chain / visible at the pins). *)

type result = {
  report : Session.report;
  patterns : int;
  chain_length : int;
  test_cycles : int;  (** [patterns * (chain_length + 1)] *)
  extra_muxes : int;  (** one scan multiplexer per flip-flop *)
}

(** [run ?patterns machine] grades the fig. 1 netlist under [patterns]
    (default 1024) pseudo-random scan patterns; [jobs]/[naive] as in
    {!Session.run}. *)
val run : ?jobs:int -> ?naive:bool -> ?patterns:int -> Stc_fsm.Machine.t -> result
