(** Sequential random testing of the plain fig. 1 structure - the baseline
    the paper argues against.

    Without BIST, the controller can only be tested through its primary
    inputs and outputs: fault effects must first be driven into the state
    register and then propagated to an output, which is why "the necessary
    test sequences might be prohibitively long" (section 1).  This module
    quantifies that: it applies random input sequences to the sequential
    circuit (state register fed back each cycle) and records, per stuck-at
    fault, the first cycle at which a primary output differs.

    Simulation is lane-parallel: each of the {!Netlist.word_bits} word
    lanes carries an independent random test sequence with its own state
    evolution, so one pass grades 62 sequences at once. *)

type result = {
  total : int;  (** faults graded *)
  detected : int;
  coverage : float;
  detection_cycles : int array;
      (** sorted first-detection cycle (over the best lane) for each
          detected fault; length [detected] *)
  cycles : int;  (** sequence length applied *)
}

(** [run ?seed ~cycles built] grades all faults of a {!Arch.conventional}
    structure (or any [built] whose netlist has inputs
    [primary @ state-register bits] and outputs [next-state @ primary
    outputs] in that order) under random primary-input sequences.  The
    state register is [state_width] bits wide and starts at the reset
    code; only the primary outputs are observed.

    By default faults are structurally collapsed (next-state and output
    lines protected, so classes share the exact state evolution and
    first-detection cycle) and sharded over [jobs] domains (default 1);
    [naive] grades the raw fault list serially as the reference.  Cone
    limiting and dominance do not apply to sequential simulation.

    @raise Invalid_argument if the netlist shape does not match. *)
val run :
  ?seed:int ->
  ?jobs:int ->
  ?naive:bool ->
  cycles:int ->
  state_width:int ->
  reset_code:int ->
  Netlist.t ->
  result

(** [run_conventional ?seed ?cycles machine] builds the fig. 1 structure
    and grades it. *)
val run_conventional :
  ?seed:int -> ?jobs:int -> ?naive:bool -> ?cycles:int ->
  Stc_fsm.Machine.t -> result

(** [cycles_to_coverage result fraction] is the sequence length after
    which [fraction] of the {e detected} faults had been found, or [None]
    if nothing was detected.  Useful for "test length to reach 90%"
    comparisons. *)
val cycles_to_coverage : result -> float -> int option
