module Machine = Stc_fsm.Machine
module Tables = Stc_encoding.Tables
module Minimize = Stc_logic.Minimize
module Builder = Netlist.Builder
module Lfsr = Stc_bist.Lfsr
module Misr = Stc_bist.Misr

type built = {
  label : string;
  netlist : Netlist.t;
  sessions : (Session.stimuli * int array) list;
  tags : (string * int list) list;
  flipflops : int;
}

let minimized ?jobs ~dc on = fst (Minimize.minimize ?jobs ~dc on)

(* MSB-first bits of [word], as 0/1 ints. *)
let word_bits ~width word =
  Array.init width (fun k -> (word lsr (width - 1 - k)) land 1)

let range first count = List.init count (fun k -> first + k)

(* Evaluate one cycle fault-free (single lane) and read the given gates as
   a word, MSB-first. *)
let read_word values gates =
  Array.fold_left (fun acc g -> (acc lsl 1) lor (values.(g) land 1)) 0 gates

(* Session pattern generator.  A width-w LFSR never reaches the all-zero
   state and degenerates entirely for w <= 2; and two separate LFSRs over
   the same polynomial produce linearly dependent streams, which can leave
   whole subspaces of the joint pattern space unvisited.  Real BIST
   designs handle this with zero injection and distinct feedback
   polynomials; we model it by drawing ALL pattern fields of a session
   from one sufficiently wide LFSR, whose sliced bit fields are linearly
   independent functions of the sequence. *)
module Patterns = struct
  type t = { lfsr : Lfsr.t; fields : (int * int) array (* offset, width *) }

  let create ~widths ~seed =
    let total = Array.fold_left ( + ) 0 widths in
    let fields = Array.make (Array.length widths) (0, 0) in
    let offset = ref 0 in
    Array.iteri
      (fun k w ->
        fields.(k) <- (!offset, w);
        offset := !offset + w)
      widths;
    let lfsr_width = min 32 (max 8 (total + 2)) in
    if total > 30 then invalid_arg "Patterns.create: too many pattern bits";
    { lfsr = Lfsr.create ~width:lfsr_width ~seed:(max 1 seed) (); fields }

  let field t k =
    let offset, width = t.fields.(k) in
    (Lfsr.state t.lfsr lsr offset) land ((1 lsl width) - 1)

  let step t = ignore (Lfsr.step t.lfsr)
end

(* ------------------------------------------------------------------ *)
(* fig. 1: conventional structure, no test hardware                    *)
(* ------------------------------------------------------------------ *)

let conventional machine =
  let enc = Tables.encode machine in
  let on, dc = Tables.conventional enc in
  let cover = minimized ~dc on in
  let w = enc.Tables.state_code.Stc_encoding.Code.width in
  let b = Builder.create (machine.Machine.name ^ "_fig1") in
  let primary =
    Array.init enc.Tables.input_width (fun k ->
        Builder.input b (Printf.sprintf "i%d" k))
  in
  let r = Array.init w (fun k -> Builder.input b (Printf.sprintf "r%d" k)) in
  let feedback = Array.map (fun g -> Builder.buf b g) r in
  let first_c = ref 0 in
  let outs =
    let inputs = Array.append primary feedback in
    first_c := Array.length (Builder.finish b).Netlist.gates;
    Builder.emit_cover b ~inputs cover
  in
  Array.iteri
    (fun k g ->
      let name =
        if k < w then Printf.sprintf "ns%d" k
        else Printf.sprintf "po%d" (k - w)
      in
      Builder.output b name g)
    outs;
  let netlist = Builder.finish b in
  {
    label = machine.Machine.name ^ " fig1 conventional";
    netlist;
    sessions = [];
    tags =
      [
        ("feedback", Array.to_list feedback);
        ("logic", range !first_c (Netlist.num_gates netlist - !first_c));
      ];
    flipflops = w;
  }

(* ------------------------------------------------------------------ *)
(* fig. 2: conventional BIST with test register and multiplexer        *)
(* ------------------------------------------------------------------ *)

let conventional_bist ?(cycles = 1024) machine =
  let enc = Tables.encode machine in
  let on, dc = Tables.conventional enc in
  let cover = minimized ~dc on in
  let w = enc.Tables.state_code.Stc_encoding.Code.width in
  let iw = enc.Tables.input_width in
  let ow = enc.Tables.output_width in
  let b = Builder.create (machine.Machine.name ^ "_fig2") in
  let primary = Array.init iw (fun k -> Builder.input b (Printf.sprintf "i%d" k)) in
  let r = Array.init w (fun k -> Builder.input b (Printf.sprintf "r%d" k)) in
  let t = Array.init w (fun k -> Builder.input b (Printf.sprintf "t%d" k)) in
  let test_mode = Builder.input b "test_mode" in
  let feedback = Array.map (fun g -> Builder.buf b g) r in
  let muxes =
    Array.init w (fun k -> Builder.mux b ~sel:test_mode ~a:feedback.(k) ~b:t.(k))
  in
  let first_c = Netlist.num_gates (Builder.finish b) in
  let outs = Builder.emit_cover b ~inputs:(Array.append primary muxes) cover in
  Array.iteri
    (fun k g ->
      let name =
        if k < w then Printf.sprintf "ns%d" k else Printf.sprintf "po%d" (k - w)
      in
      Builder.output b name g)
    outs;
  let netlist = Builder.finish b in
  let ns_gates = Array.sub outs 0 w and po_gates = Array.sub outs w ow in
  let observed = Array.append ns_gates po_gates in
  (* Stimuli: primary inputs and T are LFSRs; R replays the MISR that
     compresses the (fault-free) next-state lines; test_mode is 1. *)
  let stimuli = Array.make cycles [||] in
  let gen = Patterns.create ~widths:[| iw; w |] ~seed:0b10110 in
  let misr_r = Misr.create ~width:w ~seed:0 () in
  let values = Array.make (Netlist.num_gates netlist) 0 in
  for cycle = 0 to cycles - 1 do
    let vec =
      Array.concat
        [
          word_bits ~width:iw (Patterns.field gen 0);
          word_bits ~width:w (Misr.signature misr_r);
          word_bits ~width:w (Patterns.field gen 1);
          [| 1 |];
        ]
    in
    stimuli.(cycle) <- vec;
    Netlist.eval_into netlist ~values ~inputs:vec;
    ignore (Misr.absorb misr_r (read_word values ns_gates));
    Patterns.step gen
  done;
  {
    label = machine.Machine.name ^ " fig2 conventional BIST";
    netlist;
    sessions = [ (stimuli, observed) ];
    tags =
      [
        ("r-input", Array.to_list r);
        ("feedback", Array.to_list feedback);
        ("mux", Array.to_list muxes);
        ("logic", range first_c (Netlist.num_gates netlist - first_c));
      ];
    flipflops = 2 * w;
  }

(* ------------------------------------------------------------------ *)
(* fig. 3: doubled register and combinational circuitry                *)
(* ------------------------------------------------------------------ *)

let doubled ?(cycles = 1024) machine =
  let enc = Tables.encode machine in
  let on, dc = Tables.conventional enc in
  let cover = minimized ~dc on in
  let w = enc.Tables.state_code.Stc_encoding.Code.width in
  let iw = enc.Tables.input_width in
  let b = Builder.create (machine.Machine.name ^ "_fig3") in
  let primary = Array.init iw (fun k -> Builder.input b (Printf.sprintf "i%d" k)) in
  let ra = Array.init w (fun k -> Builder.input b (Printf.sprintf "ra%d" k)) in
  let rb = Array.init w (fun k -> Builder.input b (Printf.sprintf "rb%d" k)) in
  let fa = Array.map (fun g -> Builder.buf b g) ra in
  let fb = Array.map (fun g -> Builder.buf b g) rb in
  let outs_a = Builder.emit_cover b ~inputs:(Array.append primary fa) cover in
  let outs_b = Builder.emit_cover b ~inputs:(Array.append primary fb) cover in
  Array.iteri
    (fun k g ->
      let name =
        if k < w then Printf.sprintf "nsa%d" k else Printf.sprintf "poa%d" (k - w)
      in
      Builder.output b name g)
    outs_a;
  Array.iteri
    (fun k g ->
      let name =
        if k < w then Printf.sprintf "nsb%d" k else Printf.sprintf "pob%d" (k - w)
      in
      Builder.output b name g)
    outs_b;
  let netlist = Builder.finish b in
  let ns_a = Array.sub outs_a 0 w and ns_b = Array.sub outs_b 0 w in
  let session active_ns observe_all ~seed =
    let stimuli = Array.make cycles [||] in
    let gen = Patterns.create ~widths:[| iw; w |] ~seed in
    let misr = Misr.create ~width:w ~seed:0 () in
    let values = Array.make (Netlist.num_gates netlist) 0 in
    for cycle = 0 to cycles - 1 do
      let gen_bits = word_bits ~width:w (Patterns.field gen 1) in
      let cap_bits = word_bits ~width:w (Misr.signature misr) in
      let vec =
        if active_ns == ns_a then
          Array.concat [ word_bits ~width:iw (Patterns.field gen 0); gen_bits; cap_bits ]
        else
          Array.concat [ word_bits ~width:iw (Patterns.field gen 0); cap_bits; gen_bits ]
      in
      stimuli.(cycle) <- vec;
      Netlist.eval_into netlist ~values ~inputs:vec;
      ignore (Misr.absorb misr (read_word values active_ns));
      Patterns.step gen
    done;
    (stimuli, observe_all)
  in
  {
    label = machine.Machine.name ^ " fig3 doubled";
    netlist;
    sessions =
      [
        session ns_a outs_a ~seed:0b101;
        session ns_b outs_b ~seed:0b111;
      ];
    tags =
      [
        ("feedback", Array.to_list fa @ Array.to_list fb);
        ("logic", range (fb.(w - 1) + 1) (Netlist.num_gates netlist - fb.(w - 1) - 1));
      ];
    flipflops = 2 * w;
  }

(* ------------------------------------------------------------------ *)
(* fig. 4: optimized self-testable pipeline structure                  *)
(* ------------------------------------------------------------------ *)

let pipeline ?(cycles = 1024) ?jobs ?covers (p : Tables.pipeline) =
  let enc = p.Tables.enc in
  let machine = enc.Tables.machine in
  let c1, c2, lambda =
    match covers with
    | Some cs -> cs
    | None ->
      ( minimized ?jobs ~dc:p.Tables.c1_dc p.Tables.c1_on,
        minimized ?jobs ~dc:p.Tables.c2_dc p.Tables.c2_on,
        minimized ?jobs ~dc:p.Tables.lambda_dc p.Tables.lambda_on )
  in
  let w1 = p.Tables.code1.Stc_encoding.Code.width in
  let w2 = p.Tables.code2.Stc_encoding.Code.width in
  let iw = enc.Tables.input_width in
  let b = Builder.create (machine.Machine.name ^ "_fig4") in
  let primary = Array.init iw (fun k -> Builder.input b (Printf.sprintf "i%d" k)) in
  let r1 = Array.init w1 (fun k -> Builder.input b (Printf.sprintf "r1_%d" k)) in
  let r2 = Array.init w2 (fun k -> Builder.input b (Printf.sprintf "r2_%d" k)) in
  let l1 = Array.map (fun g -> Builder.buf b g) r1 in
  let l2 = Array.map (fun g -> Builder.buf b g) r2 in
  let first_c1 = Netlist.num_gates (Builder.finish b) in
  let c1_out = Builder.emit_cover b ~inputs:(Array.append primary l1) c1 in
  let first_c2 = Netlist.num_gates (Builder.finish b) in
  let c2_out = Builder.emit_cover b ~inputs:(Array.append primary l2) c2 in
  let first_lambda = Netlist.num_gates (Builder.finish b) in
  let lambda_out =
    Builder.emit_cover b ~inputs:(Array.concat [ primary; l1; l2 ]) lambda
  in
  Array.iteri (fun k g -> Builder.output b (Printf.sprintf "r2n%d" k) g) c1_out;
  Array.iteri (fun k g -> Builder.output b (Printf.sprintf "r1n%d" k) g) c2_out;
  Array.iteri (fun k g -> Builder.output b (Printf.sprintf "po%d" k) g) lambda_out;
  let netlist = Builder.finish b in
  let session ~generator ~seed =
    (* generator = `R1: R1 runs as LFSR, R2 compresses C1; `R2 mirrored. *)
    let stimuli = Array.make cycles [||] in
    let gen_width = match generator with `R1 -> w1 | `R2 -> w2 in
    let cap_width = match generator with `R1 -> w2 | `R2 -> w1 in
    let gen = Patterns.create ~widths:[| iw; gen_width |] ~seed in
    let misr = Misr.create ~width:cap_width ~seed:0 () in
    let compressed_gates = match generator with `R1 -> c1_out | `R2 -> c2_out in
    let values = Array.make (Netlist.num_gates netlist) 0 in
    for cycle = 0 to cycles - 1 do
      let r1_bits, r2_bits =
        match generator with
        | `R1 ->
          ( word_bits ~width:w1 (Patterns.field gen 1),
            word_bits ~width:w2 (Misr.signature misr) )
        | `R2 ->
          ( word_bits ~width:w1 (Misr.signature misr),
            word_bits ~width:w2 (Patterns.field gen 1) )
      in
      let vec =
        Array.concat [ word_bits ~width:iw (Patterns.field gen 0); r1_bits; r2_bits ]
      in
      stimuli.(cycle) <- vec;
      Netlist.eval_into netlist ~values ~inputs:vec;
      ignore (Misr.absorb misr (read_word values compressed_gates));
      Patterns.step gen
    done;
    let observed =
      match generator with
      | `R1 -> Array.append c1_out lambda_out
      | `R2 -> Array.append c2_out lambda_out
    in
    (stimuli, observed)
  in
  {
    label = machine.Machine.name ^ " fig4 pipeline";
    netlist;
    sessions = [ session ~generator:`R1 ~seed:0b101; session ~generator:`R2 ~seed:0b111 ];
    tags =
      [
        ("r-lines", Array.to_list l1 @ Array.to_list l2);
        ("c1", range first_c1 (first_c2 - first_c1));
        ("c2", range first_c2 (first_lambda - first_c2));
        ("lambda", range first_lambda (Netlist.num_gates netlist - first_lambda));
      ];
    flipflops = w1 + w2;
  }

let pipeline_of_machine ?cycles ?timeout ?jobs machine =
  pipeline ?cycles ?jobs (Tables.pipeline_of_machine ?timeout ?jobs machine)

let grade ?jobs ?naive ?need_cycles built =
  Session.run_sessions ?jobs ?naive ?need_cycles ~label:built.label
    built.netlist built.sessions

let undetected_by_tag built (report : Session.report) =
  let counts = Hashtbl.create 8 in
  List.iter
    (fun fault ->
      let tag =
        match Session.fault_on fault built.tags with
        | Some t -> t
        | None -> "other"
      in
      Hashtbl.replace counts tag
        (1 + Option.value ~default:0 (Hashtbl.find_opt counts tag)))
    report.Session.undetected;
  Hashtbl.fold (fun tag n acc -> (tag, n) :: acc) counts []
  |> List.sort compare
