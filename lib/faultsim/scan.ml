module Tables = Stc_encoding.Tables
module Lfsr = Stc_bist.Lfsr

type result = {
  report : Session.report;
  patterns : int;
  chain_length : int;
  test_cycles : int;
  extra_muxes : int;
}

let run ?jobs ?naive ?(patterns = 1024) machine =
  let built = Arch.conventional machine in
  let net = built.Arch.netlist in
  let enc = Tables.encode machine in
  let w = enc.Tables.state_code.Stc_encoding.Code.width in
  let iw = enc.Tables.input_width in
  (* Pseudo-random (input, scanned state) patterns from one wide LFSR, as
     in Arch's session generators. *)
  let gen = Lfsr.create ~width:(min 32 (max 8 (iw + w + 2))) ~seed:0b1011 () in
  let stimuli =
    Array.init patterns (fun _ ->
        let v = Lfsr.next_pattern gen in
        Array.init (iw + w) (fun k -> (v lsr k) land 1))
  in
  let observed = Array.map snd net.Netlist.outputs in
  let report =
    Session.run ?jobs ?naive
      ~label:(machine.Stc_fsm.Machine.name ^ " scan")
      net ~stimuli ~observed
  in
  {
    report;
    patterns;
    chain_length = w;
    test_cycles = patterns * (w + 1);
    extra_muxes = w;
  }
