(** Self-test session simulation and single-stuck-at fault grading.

    A session applies a deterministic stimulus stream to a combinational
    netlist (the registers are part of the test equipment model: LFSRs
    generate, MISRs compress - see {!Arch}) and observes a set of nets.  A
    fault is detected when any observed net differs from the fault-free
    value in any cycle.

    Grading runs on the optimized {!Engine} by default - structurally
    collapsed fault classes, cone-limited incremental evaluation, and
    optional fault-parallel domains - and is detect-for-detect identical
    to the naive full-evaluation grader, which is kept behind [~naive]
    as the reference for equivalence tests and benchmarks.

    Two deliberate modelling simplifications, both conservative:
    - compression aliasing is ignored (streams are compared directly, as
      if the MISR were ideal);
    - register contents are replayed from the fault-free run, so fault
      effects that would detour through a compressing register are not
      credited with extra detections. *)

type stimuli = int array array
(** [stimuli.(cycle).(k)] is the 0/1 value of netlist input [k]. *)

type report = {
  label : string;
  total : int;  (** raw faults graded (before collapsing) *)
  detected : int;
  coverage : float;  (** detected / total *)
  undetected : Netlist.fault list;
}

(** [run ~label netlist ~stimuli ~observed] grades every fault site of the
    netlist against the stimulus stream, observing the gates in
    [observed].  Patterns are packed {!Netlist.word_bits} per simulation
    word and faults are dropped at first detection.

    [jobs] (default 1) shards the collapsed fault list over that many
    domains.  [naive] (default false) switches to the reference
    full-evaluation grader.  [need_cycles] asks for exact first-detection
    cycles (feeding the [faultsim.detect_cycle.*] histograms) at the cost
    of the dominance shortcut and early-exit scans; it defaults to
    [Stc_obs.Metrics.enabled ()] so instrumented runs stay exact. *)
val run :
  ?jobs:int ->
  ?naive:bool ->
  ?need_cycles:bool ->
  label:string ->
  Netlist.t ->
  stimuli:stimuli ->
  observed:int array ->
  report

(** [run_sessions ~label netlist sessions] grades the same fault universe
    against several sessions (e.g. the two sessions of fig. 4); a fault
    counts as detected when any session detects it.  Options as in
    {!run}. *)
val run_sessions :
  ?jobs:int ->
  ?naive:bool ->
  ?need_cycles:bool ->
  label:string ->
  Netlist.t ->
  (stimuli * int array) list ->
  report

(** [pack stimuli] transposes a cycle-major 0/1 matrix into word-parallel
    batches: one [int array] of input words per group of
    {!Netlist.word_bits} cycles.  Thin wrapper over {!Engine.pack}. *)
val pack : stimuli -> int array list

(** [adjusted report ~redundant] excludes proven-untestable faults from
    the coverage denominator: every fault of [redundant] still sitting
    in the undetected list is dropped from both the list and [total],
    and [coverage] is recomputed as detected over the testable universe
    - the honest correction the SAT prover
    ({!Stc_sat.Prove.redundant}) enables.  Faults not present in the
    undetected list (already detected, or from another netlist) are
    ignored, so the adjustment can never inflate the numerator. *)
val adjusted : report -> redundant:Netlist.fault list -> report

(** [fault_on fault tags] finds the tag naming the fault's gate, if any;
    used to classify undetected faults (e.g. "feedback"). *)
val fault_on : Netlist.fault -> (string * int list) list -> string option
