(** High-throughput stuck-at fault grading.

    The engine combines three optimizations over the naive
    one-full-eval-per-fault-per-batch grader, all of them exact:

    - {b structural fault collapsing} ({!Netlist.collapse}): only one
      representative per equivalence class is simulated, and dominance
      lets verdict-only runs skip dominator classes whose detection is
      already implied;
    - {b cone-limited incremental evaluation}: the golden circuit is
      evaluated once per pattern batch; each fault then re-evaluates only
      the gates in its output cone whose fanin actually differs, with an
      early exit when the difference frontier dies out;
    - {b fault-parallel multicore grading}: the collapsed class list is
      sharded over OCaml domains through an atomic cursor, one scratch
      buffer per domain.

    Instrumentation (when {!Stc_obs.Metrics} is enabled): counters
    [faultsim.faults.raw], [faultsim.faults.classes],
    [faultsim.dominance_skips], [faultsim.gate_evals]; histograms
    [faultsim.cone_size] and [faultsim.domain_wall_ms]. *)

(** One input vector per cycle (0/1 per input, in netlist input order). *)
type stimuli = int array array

(** Bit-packed stimuli: [words.(b).(k)] carries {!Netlist.word_bits}
    consecutive cycles of input [k] in its bit lanes, [masks.(b)] selects
    the valid lanes of batch [b]. *)
type packed = {
  cycles : int;
  words : int array array;
  masks : int array;
}

val pack : stimuli -> packed

val num_batches : packed -> int

(** [first_lane w] is the lowest set bit index of [w] - the first cycle
    within a batch where a difference shows.
    @raise Invalid_argument on [w = 0]. *)
val first_lane : int -> int

(** A netlist prepared for fast grading: collapsed fault list plus the
    output cone of every representative fault site. *)
type t

(** [create ?protected net] collapses the fault universe and precomputes
    cones.  [protected] must include every gate any session observes
    (default: the declared outputs) - faults on those gates are kept
    distinct so equivalences never merge across an observation point. *)
val create : ?protected:int array -> Netlist.t -> t

val netlist : t -> Netlist.t

val collapsed : t -> Netlist.collapsed

(** Golden values, one full evaluation per batch: [g.(b).(gate)]. *)
type golden = int array array

val golden : t -> packed -> golden

(** Per-domain workspace for incremental faulty evaluation. *)
type scratch

val scratch : t -> scratch

(** [Detected None] means the fault is provably detected but the exact
    first-detection cycle was not tracked (dominance skip, or
    [need_cycles = false] grading). *)
type verdict = Undetected | Detected of int option

(** [grade t ~jobs ~need_cycles p g ~observed ~active] grades every class
    with [active.(class)] set against the packed batches, returning one
    verdict per class (inactive classes report [Undetected] - ignore
    them).  [need_cycles] asks for exact first-detection cycles, which
    disables the dominance shortcut and the early-exit scan.
    [dominance] (default [true]) may be forced off for benchmarking. *)
val grade :
  t ->
  jobs:int ->
  need_cycles:bool ->
  ?dominance:bool ->
  packed ->
  golden ->
  observed:int array ->
  active:bool array ->
  verdict array

(** [response t scr g p ~batch fault ~observed ~into] writes the faulty
    words of the [observed] gates for one batch into [into] (same length
    and order as [observed]) and reports whether any valid lane differs
    from golden.  Used by {!Aliasing} to feed MISR signatures without
    re-simulating whole sessions. *)
val response :
  t ->
  scratch ->
  golden ->
  packed ->
  batch:int ->
  Netlist.fault ->
  observed:int array ->
  into:int array ->
  bool
