module Cube = Stc_logic.Cube
module Cover = Stc_logic.Cover

type gate =
  | Input of string
  | Const of bool
  | Buf of int
  | Not of int
  | And of int array
  | Or of int array
  | Xor of int array
  | Mux of { sel : int; a : int; b : int }

type t = {
  name : string;
  gates : gate array;
  inputs : int array;
  outputs : (string * int) array;
  uid : int;
}

(* Every finished netlist gets a process-unique id: it keys the collapse
   cache below (physical identity, not structure). *)
let next_uid = Atomic.make 0

let word_bits = 62

type fault = { gate : int; pin : int option; stuck_at : bool }

module Builder = struct
  type netlist = t

  type t = {
    name : string;
    mutable gates : gate array;
    mutable count : int;
    mutable input_ids : int list;
    mutable output_list : (string * int) list;
  }

  let create name =
    { name; gates = Array.make 64 (Const false); count = 0;
      input_ids = []; output_list = [] }

  let check b idx what =
    if idx < 0 || idx >= b.count then
      invalid_arg (Printf.sprintf "Netlist.Builder: %s refers to gate %d, have %d"
                     what idx b.count)

  let push b gate =
    if b.count = Array.length b.gates then begin
      let bigger = Array.make (2 * b.count) (Const false) in
      Array.blit b.gates 0 bigger 0 b.count;
      b.gates <- bigger
    end;
    b.gates.(b.count) <- gate;
    b.count <- b.count + 1;
    b.count - 1

  let input b name =
    let idx = push b (Input name) in
    b.input_ids <- idx :: b.input_ids;
    idx

  let const b v = push b (Const v)

  let buf b x =
    check b x "Buf";
    push b (Buf x)

  let not_ b x =
    check b x "Not";
    push b (Not x)

  let gate_of_list b what of_array = function
    | [] -> invalid_arg (Printf.sprintf "Netlist.Builder: empty %s" what)
    | [ x ] ->
      check b x what;
      push b (Buf x)
    | xs ->
      List.iter (fun x -> check b x what) xs;
      push b (of_array (Array.of_list xs))

  let and_ b xs = gate_of_list b "And" (fun a -> And a) xs

  let or_ b xs = gate_of_list b "Or" (fun a -> Or a) xs

  let xor_ b xs = gate_of_list b "Xor" (fun a -> Xor a) xs

  let mux b ~sel ~a ~b:b' =
    check b sel "Mux.sel";
    check b a "Mux.a";
    check b b' "Mux.b";
    push b (Mux { sel; a; b = b' })

  let output b name gate =
    check b gate "output";
    b.output_list <- (name, gate) :: b.output_list

  let emit_cover b ~inputs (cover : Cover.t) =
    if Array.length inputs <> cover.Cover.num_vars then
      invalid_arg "Netlist.Builder.emit_cover: input count mismatch";
    (* Shared input inverters, created on demand. *)
    let inverted = Array.make cover.Cover.num_vars (-1) in
    let inv k =
      if inverted.(k) < 0 then inverted.(k) <- not_ b inputs.(k);
      inverted.(k)
    in
    let term_of_cube cube =
      let literals = ref [] in
      for k = 0 to cover.Cover.num_vars - 1 do
        match Cube.get cube k with
        | Cube.One -> literals := inputs.(k) :: !literals
        | Cube.Zero -> literals := inv k :: !literals
        | Cube.Dc -> ()
      done;
      match !literals with
      | [] -> const b true
      | ls -> and_ b (List.rev ls)
    in
    let terms =
      Array.to_list
        (Array.map (fun cube -> (cube, term_of_cube cube)) cover.Cover.cubes)
    in
    Array.init cover.Cover.num_outputs (fun o ->
        let fanin =
          List.filter_map
            (fun (cube, term) ->
              if Cube.output_bit cube o then Some term else None)
            terms
        in
        match fanin with [] -> const b false | ls -> or_ b ls)

  let finish b : netlist =
    {
      name = b.name;
      gates = Array.sub b.gates 0 b.count;
      inputs = Array.of_list (List.rev b.input_ids);
      outputs = Array.of_list (List.rev b.output_list);
      uid = Atomic.fetch_and_add next_uid 1;
    }
end

let num_gates (net : t) = Array.length net.gates

let operands = function
  | Input _ | Const _ -> [||]
  | Buf x | Not x -> [| x |]
  | And xs | Or xs | Xor xs -> xs
  | Mux { sel; a; b } -> [| sel; a; b |]

type stats = { gates : int; literals : int; depth : int; inverters : int }

let stats (net : t) =
  let gates = ref 0 and literals = ref 0 and inverters = ref 0 in
  let level = Array.make (num_gates net) 0 in
  let depth = ref 0 in
  Array.iteri
    (fun idx gate ->
      let operands = operands gate in
      (match gate with
      | Input _ | Const _ -> ()
      | Not _ ->
        incr gates;
        incr inverters
      | Buf _ -> incr gates
      | And xs | Or xs | Xor xs ->
        incr gates;
        literals := !literals + Array.length xs
      | Mux _ ->
        incr gates;
        literals := !literals + 3);
      let lvl =
        Array.fold_left (fun acc x -> max acc (level.(x) + 1)) 0 operands
      in
      level.(idx) <- lvl;
      if lvl > !depth then depth := lvl)
    net.gates;
  { gates = !gates; literals = !literals; depth = !depth; inverters = !inverters }

let all_ones = -1

let eval_into ?fault (net : t) ~values ~inputs =
  if Array.length inputs <> Array.length net.inputs then
    invalid_arg "Netlist.eval: input count mismatch";
  if Array.length values <> num_gates net then
    invalid_arg "Netlist.eval_into: values buffer size mismatch";
  let next_input = ref 0 in
  let faulty_output, faulty_pin =
    match fault with
    | None -> (-1, (-1, -1, false))
    | Some { gate; pin = None; stuck_at } ->
      ((gate lsl 1) lor Bool.to_int stuck_at, (-1, -1, false))
    | Some { gate; pin = Some k; stuck_at } -> (-1, (gate, k, stuck_at))
  in
  let fgate, fpin, fstuck = faulty_pin in
  Array.iteri
    (fun idx gate ->
      let read k x =
        if idx = fgate && k = fpin then if fstuck then all_ones else 0
        else values.(x)
      in
      let v =
        match gate with
        | Input _ ->
          let v = inputs.(!next_input) in
          incr next_input;
          v
        | Const true -> all_ones
        | Const false -> 0
        | Buf x -> read 0 x
        | Not x -> lnot (read 0 x)
        | And xs ->
          let acc = ref all_ones in
          Array.iteri (fun k x -> acc := !acc land read k x) xs;
          !acc
        | Or xs ->
          let acc = ref 0 in
          Array.iteri (fun k x -> acc := !acc lor read k x) xs;
          !acc
        | Xor xs ->
          let acc = ref 0 in
          Array.iteri (fun k x -> acc := !acc lxor read k x) xs;
          !acc
        | Mux { sel; a; b } ->
          let s = read 0 sel in
          (lnot s land read 1 a) lor (s land read 2 b)
      in
      values.(idx) <-
        (if faulty_output = (idx lsl 1) lor 1 then all_ones
         else if faulty_output = idx lsl 1 then 0
         else v))
    net.gates

let eval ?fault (net : t) ~inputs =
  let values = Array.make (num_gates net) 0 in
  eval_into ?fault net ~values ~inputs;
  values

let eval_outputs ?fault (net : t) ~inputs =
  let values = eval ?fault net ~inputs in
  Array.map (fun (_, g) -> values.(g)) net.outputs

let fault_sites (net : t) =
  let sites = ref [] in
  let add gate pin =
    sites :=
      { gate; pin; stuck_at = true } :: { gate; pin; stuck_at = false } :: !sites
  in
  Array.iteri
    (fun idx gate ->
      match gate with
      | Const _ -> ()
      | Input _ -> add idx None
      | Buf _ | Not _ ->
        (* The input pin fault is equivalent to the driver's output fault
           (possibly inverted), which is already in the list. *)
        add idx None
      | And xs | Or xs | Xor xs ->
        add idx None;
        Array.iteri (fun k _ -> add idx (Some k)) xs
      | Mux _ ->
        add idx None;
        for k = 0 to 2 do
          add idx (Some k)
        done)
    net.gates;
  List.rev !sites

(* ------------------------------------------------------------------ *)
(* Structural analyses for the fault-simulation engine                  *)
(* ------------------------------------------------------------------ *)

let readers (net : t) =
  let n = num_gates net in
  let counts = Array.make n 0 in
  Array.iter
    (fun g -> Array.iter (fun x -> counts.(x) <- counts.(x) + 1) (operands g))
    net.gates;
  let out = Array.init n (fun x -> Array.make counts.(x) (0, 0)) in
  let fill = Array.make n 0 in
  Array.iteri
    (fun idx g ->
      Array.iteri
        (fun pin x ->
          out.(x).(fill.(x)) <- (idx, pin);
          fill.(x) <- fill.(x) + 1)
        (operands g))
    net.gates;
  out

let cone ?readers:rd (net : t) g =
  let rd = match rd with Some r -> r | None -> readers net in
  let n = num_gates net in
  if g < 0 || g >= n then invalid_arg "Netlist.cone: gate out of range";
  let seen = Array.make n false in
  let stack = ref [ g ] in
  let count = ref 0 in
  seen.(g) <- true;
  while !stack <> [] do
    match !stack with
    | [] -> ()
    | x :: rest ->
      stack := rest;
      incr count;
      Array.iter
        (fun (r, _) ->
          if not seen.(r) then begin
            seen.(r) <- true;
            stack := r :: !stack
          end)
        rd.(x)
  done;
  (* Collect in ascending index order: gate indices are topological, so
     the cone can be replayed with a single left-to-right pass. *)
  let cone = Array.make !count 0 in
  let k = ref 0 in
  for idx = g to n - 1 do
    if seen.(idx) then begin
      cone.(!k) <- idx;
      incr k
    end
  done;
  cone

type collapsed = {
  faults : fault array;
  class_of : int array;
  classes : int array array;
  representatives : int array;
  dominated_by : int array array;
}

let collapse_uncached ?protected (net : t) =
  let faults = Array.of_list (fault_sites net) in
  let nf = Array.length faults in
  let idx_of = Hashtbl.create (2 * nf) in
  Array.iteri (fun i f -> Hashtbl.replace idx_of f i) faults;
  let fidx gate pin stuck_at = Hashtbl.find_opt idx_of { gate; pin; stuck_at } in
  let n = num_gates net in
  let prot = Array.make n false in
  (match protected with
  | Some ps -> Array.iter (fun g -> prot.(g) <- true) ps
  | None -> Array.iter (fun (_, g) -> prot.(g) <- true) net.outputs);
  let rd = readers net in
  let uf = Stc_util.Union_find.create nf in
  let union_f a b =
    match (a, b) with
    | Some i, Some j -> ignore (Stc_util.Union_find.union uf i j)
    | _ -> ()
  in
  Array.iteri
    (fun g gate ->
      (match gate with
      | And xs ->
        (* Any input stuck at the controlling value forces the output to
           the controlled value: pin s-a-0 == output s-a-0. *)
        Array.iteri
          (fun k _ -> union_f (fidx g (Some k) false) (fidx g None false))
          xs
      | Or xs ->
        Array.iteri
          (fun k _ -> union_f (fidx g (Some k) true) (fidx g None true))
          xs
      | Buf x ->
        (* A Buf/Not chain is transparent: its output fault equals the
           driver's output fault (inverted through a Not) - but only when
           the driver feeds nothing else and is never observed directly. *)
        if Array.length rd.(x) = 1 && not prot.(x) then begin
          union_f (fidx g None false) (fidx x None false);
          union_f (fidx g None true) (fidx x None true)
        end
      | Not x ->
        if Array.length rd.(x) = 1 && not prot.(x) then begin
          union_f (fidx g None false) (fidx x None true);
          union_f (fidx g None true) (fidx x None false)
        end
      | Input _ | Const _ | Xor _ | Mux _ -> ());
      (* Fanout-free stem: a gate read exactly once, and never observed,
         has its output faults indistinguishable from the reader's
         input-pin faults. *)
      if (not prot.(g)) && Array.length rd.(g) = 1 then begin
        let r, pin = rd.(g).(0) in
        match net.gates.(r) with
        | And _ | Or _ | Xor _ | Mux _ ->
          union_f (fidx g None false) (fidx r (Some pin) false);
          union_f (fidx g None true) (fidx r (Some pin) true)
        | Input _ | Const _ | Buf _ | Not _ -> ()
      end)
    net.gates;
  let class_of = Stc_util.Union_find.class_map uf in
  let num_classes = Stc_util.Union_find.count uf in
  let sizes = Array.make num_classes 0 in
  Array.iter (fun c -> sizes.(c) <- sizes.(c) + 1) class_of;
  let classes = Array.init num_classes (fun c -> Array.make sizes.(c) 0) in
  let fill = Array.make num_classes 0 in
  Array.iteri
    (fun i c ->
      classes.(c).(fill.(c)) <- i;
      fill.(c) <- fill.(c) + 1)
    class_of;
  let representatives = Array.map (fun members -> members.(0)) classes in
  (* Dominance: a test that detects an And input s-a-1 (resp. Or input
     s-a-0) sets that pin to the sole non-controlling value and propagates
     the flipped output, so it also detects the output s-a-1 (resp.
     s-a-0).  Detection of any dominated class therefore implies detection
     of the dominator class - the grader may skip simulating it. *)
  let dom = Array.make num_classes [] in
  let add_dominance out_fault pin_faults =
    match out_fault with
    | None -> ()
    | Some oi ->
      let d = class_of.(oi) in
      List.iter
        (fun pf ->
          match pf with
          | Some pi when class_of.(pi) <> d ->
            if not (List.mem class_of.(pi) dom.(d)) then
              dom.(d) <- class_of.(pi) :: dom.(d)
          | _ -> ())
        pin_faults
  in
  Array.iteri
    (fun g gate ->
      match gate with
      | And xs ->
        add_dominance (fidx g None true)
          (List.init (Array.length xs) (fun k -> fidx g (Some k) true))
      | Or xs ->
        add_dominance (fidx g None false)
          (List.init (Array.length xs) (fun k -> fidx g (Some k) false))
      | Input _ | Const _ | Buf _ | Not _ | Xor _ | Mux _ -> ())
    net.gates;
  let dominated_by =
    Array.map (fun ds -> Array.of_list (List.sort compare ds)) dom
  in
  { faults; class_of; classes; representatives; dominated_by }

(* Collapsing is pure in (netlist identity, protected set) and costs a
   union-find pass over the whole fault universe, yet the fault-test
   session planner and the aliasing analyzer used to recompute it for
   every session.  A small shared cache keyed by the netlist [uid] and
   the normalized protected set memoizes it; entries are immutable after
   construction, so sharing one [collapsed] across domains is safe.  The
   cache is bounded: when it would exceed [collapse_cache_cap] keys it
   is reset wholesale (netlists are short-lived in tests; a dropped
   entry only costs a recompute). *)
let collapse_cache : (int * int list, collapsed) Hashtbl.t = Hashtbl.create 32

let collapse_mutex = Mutex.create ()

let collapse_cache_cap = 64

let collapse ?protected (net : t) =
  let key =
    let prot =
      match protected with
      | Some ps -> Array.to_list ps
      | None -> Array.to_list (Array.map snd net.outputs)
    in
    (net.uid, List.sort_uniq compare prot)
  in
  Mutex.lock collapse_mutex;
  Fun.protect
    ~finally:(fun () -> Mutex.unlock collapse_mutex)
    (fun () ->
      match Hashtbl.find_opt collapse_cache key with
      | Some c -> c
      | None ->
        let c = collapse_uncached ?protected net in
        if Hashtbl.length collapse_cache >= collapse_cache_cap then
          Hashtbl.reset collapse_cache;
        Hashtbl.add collapse_cache key c;
        c)

let pp ppf (net : t) =
  let open Format in
  fprintf ppf "@[<v>netlist %s: %d gates, %d inputs, %d outputs@," net.name
    (num_gates net) (Array.length net.inputs) (Array.length net.outputs);
  Array.iteri
    (fun idx gate ->
      let show =
        match gate with
        | Input n -> Printf.sprintf "input %s" n
        | Const v -> Printf.sprintf "const %b" v
        | Buf x -> Printf.sprintf "buf g%d" x
        | Not x -> Printf.sprintf "not g%d" x
        | And xs ->
          "and "
          ^ String.concat " " (Array.to_list (Array.map (Printf.sprintf "g%d") xs))
        | Or xs ->
          "or "
          ^ String.concat " " (Array.to_list (Array.map (Printf.sprintf "g%d") xs))
        | Xor xs ->
          "xor "
          ^ String.concat " " (Array.to_list (Array.map (Printf.sprintf "g%d") xs))
        | Mux { sel; a; b } -> Printf.sprintf "mux sel=g%d a=g%d b=g%d" sel a b
      in
      fprintf ppf "g%d: %s@," idx show)
    net.gates;
  Array.iter (fun (name, g) -> fprintf ppf "output %s = g%d@," name g) net.outputs;
  fprintf ppf "@]"
