(** Combinational gate-level netlists with bit-parallel simulation.

    Gates are stored in topological order (operands always refer to
    earlier gates - the builder enforces this), so evaluation is a single
    left-to-right pass.  Values are machine words: each of the low
    {!word_bits} bit lanes carries an independent test pattern, giving
    parallel-pattern evaluation for the fault simulator.

    Sequential elements are deliberately absent: in every BIST session of
    the paper's architectures the registers are driven by the test
    hardware (LFSR / MISR), so each clock cycle evaluates a pure
    combinational cone.  The register models live in [Stc_bist]. *)

type gate =
  | Input of string
  | Const of bool
  | Buf of int
  | Not of int
  | And of int array  (** >= 1 operand *)
  | Or of int array
  | Xor of int array
  | Mux of { sel : int; a : int; b : int }  (** [sel = 0 -> a, 1 -> b] *)

type t = private {
  name : string;
  gates : gate array;
  inputs : int array;  (** indices of the [Input] gates, in creation order *)
  outputs : (string * int) array;
  uid : int;
      (** process-unique identity assigned by [Builder.finish]; keys the
          {!collapse} cache *)
}

(** Number of independent pattern lanes per simulation word. *)
val word_bits : int

(** A single stuck-at fault: on a gate's output ([pin = None]) or on one of
    its input pins ([pin = Some k], the [k]-th operand). *)
type fault = { gate : int; pin : int option; stuck_at : bool }

(** Imperative netlist construction. *)
module Builder : sig
  type netlist := t

  type t

  val create : string -> t

  (** Each constructor returns the index of the new gate.  Operand indices
      must refer to already-created gates.
      @raise Invalid_argument on forward references or empty operand
      lists. *)

  val input : t -> string -> int

  val const : t -> bool -> int

  val buf : t -> int -> int

  val not_ : t -> int -> int

  val and_ : t -> int list -> int

  val or_ : t -> int list -> int

  val xor_ : t -> int list -> int

  val mux : t -> sel:int -> a:int -> b:int -> int

  (** [output b name gate] registers a named primary output. *)
  val output : t -> string -> int -> unit

  (** [emit_cover b ~inputs cover] instantiates a two-level (AND-OR with
      input inverters) network for [cover]; [inputs] supplies the gate
      index of each cover variable.  Returns one gate index per cover
      output. *)
  val emit_cover : t -> inputs:int array -> Stc_logic.Cover.t -> int array

  val finish : t -> netlist
end

(** [num_gates n] counts all gates, inputs included. *)
val num_gates : t -> int

(** [operands g] is the fanin of [g] in pin order (empty for inputs and
    constants).  For And/Or/Xor this is the gate's internal array - do
    not mutate it. *)
val operands : gate -> int array

type stats = {
  gates : int;  (** logic gates (excluding inputs and constants) *)
  literals : int;  (** total fanin count of And/Or/Xor/Mux gates *)
  depth : int;  (** maximum logic depth from any input *)
  inverters : int;
}

val stats : t -> stats

(** [eval net ?fault ~inputs] evaluates all gates; [inputs] gives one word
    per [Input] gate (in creation order).  Returns the value of every
    gate.  With [fault], the corresponding stuck-at is injected.
    @raise Invalid_argument if [inputs] length mismatches. *)
val eval : ?fault:fault -> t -> inputs:int array -> int array

(** [eval_into net ?fault ~values ~inputs] is {!eval} writing into the
    caller-provided buffer [values] (length {!num_gates}) instead of
    allocating - the fault simulator's hot loop reuses one buffer across
    thousands of evaluations.
    @raise Invalid_argument on input or buffer length mismatch. *)
val eval_into : ?fault:fault -> t -> values:int array -> inputs:int array -> unit

(** [eval_outputs net ?fault ~inputs] returns just the primary output
    words, in declaration order. *)
val eval_outputs : ?fault:fault -> t -> inputs:int array -> int array

(** [fault_sites net] enumerates all stuck-at faults: two per gate output
    and two per gate input pin, with trivial equivalences collapsed (a
    [Buf]/[Not] input fault is equivalent to the output fault of its
    driver; faults on [Input] outputs are kept, [Const] gates have
    none). *)
val fault_sites : t -> fault list

(** [readers net] is the fanout map: [readers.(g)] lists the
    [(reader, pin)] pairs that consume gate [g], in gate order. *)
val readers : t -> (int * int) array array

(** [cone ?readers net g] is the output cone of gate [g]: every gate whose
    value can change when [g]'s value changes ([g] included), in ascending
    (= topological) index order.  Pass a precomputed [readers] map to
    amortize the fanout scan across many cones. *)
val cone : ?readers:(int * int) array array -> t -> int -> int array

(** Structural single-stuck-at fault collapsing.

    The raw fault universe ({!fault_sites}) is partitioned into
    equivalence classes of faults with identical faulty behaviour on
    every observable net:
    - an And input s-a-0 forces the output to 0, exactly like the output
      s-a-0 (dually Or input/output s-a-1);
    - a Buf (Not) output fault equals its driver's output fault (inverted
      for Not) when the driver feeds nothing else and is not observable;
    - a fanout-free, unobservable stem's output faults equal the reader's
      corresponding input-pin faults.

    Simulating one representative per class gives the exact verdict (and
    first-detection cycle) of every member.  [dominated_by] additionally
    records dominance: detection of any listed class implies detection of
    the indexed class (And output s-a-1 is detected by any test for one
    of its input s-a-1 faults, dually for Or s-a-0), letting a
    verdict-only grader skip simulating dominator classes. *)
type collapsed = {
  faults : fault array;  (** the raw universe, in {!fault_sites} order *)
  class_of : int array;  (** fault index -> dense class id *)
  classes : int array array;
      (** class id -> member fault indices, ascending *)
  representatives : int array;
      (** class id -> least member fault index *)
  dominated_by : int array array;
      (** class id -> classes whose detection implies this class detected
          (empty for most classes) *)
}

(** [collapse ?protected net] collapses the fault list.  [protected]
    names the gates that may ever be observed directly (a session's
    observed nets); faults on protected gates are never folded onto
    neighbours.  Default: the netlist's declared outputs.

    Results are memoized in a bounded process-wide cache keyed by
    [(net.uid, sorted protected set)] — repeated calls for the same
    machine (one per BIST session, one per aliasing measurement, one
    per SAT proof pass) share a single computation.  The returned
    arrays are shared: treat them as read-only. *)
val collapse : ?protected:int array -> t -> collapsed

val pp : Format.formatter -> t -> unit
