(** Random and structured machine generation.

    The central construction is {!block_product}, which plants a symmetric
    partition pair of prescribed factor sizes into an otherwise random
    machine.  It is used to build deterministic stand-ins for the IWLS'93
    benchmarks (see DESIGN.md section 5) and as a workload generator for
    sweeps. *)

(** Result of {!block_product}: the machine together with the planted
    partition pair, given as class maps (state [s] lies in S1-class
    [pi_classes.(s)] and S2-class [rho_classes.(s)]). *)
type product_info = {
  machine : Machine.t;
  pi_classes : int array;
  rho_classes : int array;
  num_pi : int;  (** = prescribed |S1| *)
  num_rho : int;  (** = prescribed |S2| *)
}

(** [random ~rng ~name ~num_states ~num_inputs ~num_outputs ()] draws a
    uniform fully specified machine, then repairs connectivity (rewiring
    single transitions until every state is reachable from reset).  With
    [ensure_reduced] (default [true]) output rows are re-drawn until no two
    states are equivalent; machines with [num_outputs ** num_inputs <
    num_states] cannot be reduced this way and raise [Invalid_argument]
    after [max_attempts].

    [completeness] (default [1.0]) is the fraction of transitions drawn
    uniformly; the rest self-loop before the reachability repair, modelling
    sparsely specified flow tables.  [num_inputs] is the fan-out knob:
    every state has exactly that many outgoing edges. *)
val random :
  rng:Stc_util.Rng.t ->
  name:string ->
  num_states:int ->
  num_inputs:int ->
  num_outputs:int ->
  ?ensure_reduced:bool ->
  ?max_attempts:int ->
  ?completeness:float ->
  unit ->
  Machine.t

(** [block_product ~rng ~name ~blocks ~num_inputs ~num_outputs ()] builds a
    connected, reduced machine whose state set is a disjoint union of
    complete bipartite blocks [A_j x B_j] with [(|A_j|, |B_j|)] drawn from
    [blocks].  The kernels of the two coordinate projections form a
    symmetric partition pair [(pi, rho)] with [pi /\ rho = identity],
    [|S/pi| = sum |A_j|] and [|S/rho| = sum |B_j|] - i.e. the machine
    admits a self-testable realization with exactly those factor sizes.

    The construction: block-level dynamics [sigma : blocks x I -> blocks]
    (randomized, repaired to be reachable), then per-coordinate maps
    [f(a, i) in B_(sigma(j,i))] and [g(b, i) in A_(sigma(j,i))] chosen
    uniformly, giving [delta((a, b), i) = (g(b, i), f(a, i))].  Retries
    until the machine is connected and reduced.

    With [distinct_signatures] (default [true]) the rows of [f] and of [g]
    are additionally required to be pairwise distinct; this makes the
    planted pair an "Mm-clean" pair ([M rho = pi] and [M pi = rho]), which
    guarantees the OSTR search recovers factors at least as good as the
    planted ones.

    [require_connected] (default [true]) may be dropped by callers that
    restrict to the reachable component themselves (see {!planted}) —
    at low fan-out the full product is essentially never connected.

    @raise Invalid_argument if constraints cannot be met in
    [max_attempts]. *)
val block_product :
  rng:Stc_util.Rng.t ->
  name:string ->
  blocks:(int * int) list ->
  num_inputs:int ->
  num_outputs:int ->
  ?distinct_signatures:bool ->
  ?require_connected:bool ->
  ?max_attempts:int ->
  unit ->
  product_info

(** [shuffled ~rng info] hides the block structure of a generated machine
    by applying a uniform state permutation; the class maps are permuted
    along. *)
val shuffled : rng:Stc_util.Rng.t -> product_info -> product_info

(** [planted ~rng ~name ~num_states ~num_inputs ()] is the scalable
    planted family behind the anytime benchmarks: {!block_product} over
    identical square blocks whose edge grows with [num_states] (2, 4 or
    8), overshooting the tile count and restricting to the reachable
    component until [machine.num_states >= num_states] (best effort: the
    overshoot is capped at 4x).  The restricted planted pair is still a
    symmetric pair with identity meet, and the machine stays reduced. *)
val planted :
  rng:Stc_util.Rng.t ->
  name:string ->
  num_states:int ->
  num_inputs:int ->
  ?num_outputs:int ->
  unit ->
  product_info

(** [of_spec s] builds a machine from a compact generator spec, used by
    the CLI and bench drivers to name synthetic workloads:

    - ["random:<states>x<inputs>\[@seed\]\[,<completeness>\]"] — {!random}
      (without the reducedness retry loop);
    - ["planted:<states>x<inputs>\[@seed\]"] — {!planted}, state-shuffled.

    Inputs must be a power of two; outputs are fixed at 4 symbols; [seed]
    defaults to 1.  Returns [None] when [s] does not parse. *)
val of_spec : string -> Machine.t option

(** [binary_output_names n] returns [n] distinct binary strings of width
    [ceil(log2 n)] (width 1 for [n = 1]), as used by all generators so the
    machines can round-trip through KISS2. *)
val binary_output_names : int -> string array
