module Rng = Stc_util.Rng

type product_info = {
  machine : Machine.t;
  pi_classes : int array;
  rho_classes : int array;
  num_pi : int;
  num_rho : int;
}

let binary_output_names n =
  let width = max 1 (Machine.bits_for n) in
  Array.init n (fun o ->
      String.init width (fun k ->
          if o land (1 lsl (width - 1 - k)) <> 0 then '1' else '0'))

let binary_input_names n =
  if n land (n - 1) <> 0 then
    invalid_arg "Generate: num_inputs must be a power of two";
  let width = max 1 (Machine.bits_for n) in
  Array.init n (fun i ->
      String.init width (fun k ->
          if i land (1 lsl (width - 1 - k)) <> 0 then '1' else '0'))

(* Rewire single transitions until every node is reachable from [start]:
   pick an unreachable node, redirect a random transition of a reachable
   node to it.  Terminates because each repair makes one more node
   reachable. *)
let repair_reachability ~rng ~num_inputs next start =
  let n = Array.length next in
  let reach () =
    let seen = Array.make n false in
    let queue = Queue.create () in
    seen.(start) <- true;
    Queue.add start queue;
    while not (Queue.is_empty queue) do
      let s = Queue.take queue in
      Array.iter
        (fun s' ->
          if not seen.(s') then begin
            seen.(s') <- true;
            Queue.add s' queue
          end)
        next.(s)
    done;
    seen
  in
  let continue = ref true in
  while !continue do
    let seen = reach () in
    let unreachable = ref [] in
    Array.iteri (fun s ok -> if not ok then unreachable := s :: !unreachable) seen;
    match !unreachable with
    | [] -> continue := false
    | missing ->
      let reachable_states =
        Array.of_list
          (List.filter (fun s -> seen.(s)) (List.init n (fun s -> s)))
      in
      let target = List.nth missing (Rng.int rng (List.length missing)) in
      let s = Rng.pick rng reachable_states in
      next.(s).(Rng.int rng num_inputs) <- target
  done

let random ~rng ~name ~num_states ~num_inputs ~num_outputs
    ?(ensure_reduced = true) ?(max_attempts = 500) ?(completeness = 1.0) () =
  if completeness < 0.0 || completeness > 1.0 then
    invalid_arg "Generate.random: completeness must be in [0, 1]";
  let next =
    Array.init num_states (fun s ->
        Array.init num_inputs (fun _ ->
            (* Sparse machines: transitions outside the drawn fraction
               self-loop, the FSM analogue of an unspecified entry in a
               flow table.  Reachability repair below rewires as needed. *)
            if completeness >= 1.0 || Rng.float rng < completeness then
              Rng.int rng num_states
            else s))
  in
  repair_reachability ~rng ~num_inputs next 0;
  let draw_outputs () =
    Array.init num_states (fun _ ->
        Array.init num_inputs (fun _ -> Rng.int rng num_outputs))
  in
  let build output =
    Machine.make ~name ~num_states ~num_inputs ~num_outputs ~next ~output
      ~input_names:(binary_input_names num_inputs)
      ~output_names:(binary_output_names num_outputs) ()
  in
  let rec attempt k =
    if k > max_attempts then
      invalid_arg
        (Printf.sprintf "Generate.random: no reduced machine for %s in %d attempts"
           name max_attempts);
    let m = build (draw_outputs ()) in
    if (not ensure_reduced) || Equiv.is_reduced m then m else attempt (k + 1)
  in
  attempt 1

(* Block-level dynamics sigma with all blocks reachable from block 0. *)
let block_dynamics ~rng ~num_blocks ~num_inputs =
  let sigma =
    Array.init num_blocks (fun _ ->
        Array.init num_inputs (fun _ -> Rng.int rng num_blocks))
  in
  repair_reachability ~rng ~num_inputs sigma 0;
  sigma

let block_product ~rng ~name ~blocks ~num_inputs ~num_outputs
    ?(distinct_signatures = true) ?(require_connected = true)
    ?(max_attempts = 2000) () =
  if blocks = [] then invalid_arg "Generate.block_product: no blocks";
  List.iter
    (fun (r, c) ->
      if r < 1 || c < 1 then invalid_arg "Generate.block_product: block sizes >= 1")
    blocks;
  let blocks = Array.of_list blocks in
  let num_blocks = Array.length blocks in
  (* Global ids for the S1 side (a) and S2 side (b), block by block. *)
  let a_base = Array.make num_blocks 0 and b_base = Array.make num_blocks 0 in
  let num_pi = ref 0 and num_rho = ref 0 in
  Array.iteri
    (fun j (r, c) ->
      a_base.(j) <- !num_pi;
      b_base.(j) <- !num_rho;
      num_pi := !num_pi + r;
      num_rho := !num_rho + c)
    blocks;
  let num_pi = !num_pi and num_rho = !num_rho in
  (* States: all (a, b) pairs inside each block. *)
  let state_of = Hashtbl.create 64 in
  let coords = ref [] in
  let num_states = ref 0 in
  Array.iteri
    (fun j (r, c) ->
      for ra = 0 to r - 1 do
        for cb = 0 to c - 1 do
          let a = a_base.(j) + ra and b = b_base.(j) + cb in
          Hashtbl.replace state_of (a, b) !num_states;
          coords := (a, b, j) :: !coords;
          incr num_states
        done
      done)
    blocks;
  let num_states = !num_states in
  let coords = Array.of_list (List.rev !coords) in
  let block_of_a = Array.make num_pi 0 and block_of_b = Array.make num_rho 0 in
  Array.iteri
    (fun j (r, c) ->
      for ra = 0 to r - 1 do block_of_a.(a_base.(j) + ra) <- j done;
      for cb = 0 to c - 1 do block_of_b.(b_base.(j) + cb) <- j done)
    blocks;
  let attempt () =
    let sigma = block_dynamics ~rng ~num_blocks ~num_inputs in
    (* f : a x i -> element of the B side of block sigma(block(a), i);
       g : b x i -> element of the A side of block sigma(block(b), i). *)
    let f =
      Array.init num_pi (fun a ->
          Array.init num_inputs (fun i ->
              let j = sigma.(block_of_a.(a)).(i) in
              b_base.(j) + Rng.int rng (snd blocks.(j))))
    and g =
      Array.init num_rho (fun b ->
          Array.init num_inputs (fun i ->
              let j = sigma.(block_of_b.(b)).(i) in
              a_base.(j) + Rng.int rng (fst blocks.(j))))
    in
    (* Distinct successor signatures make the planted pair "Mm-clean":
       rows of f pairwise distinct force M(rho) = pi, rows of g force
       M(pi) = rho, so the OSTR search provably recovers the planted
       factor sizes (see DESIGN.md). *)
    let all_rows_distinct table =
      let seen = Hashtbl.create 16 in
      Array.for_all
        (fun row ->
          if Hashtbl.mem seen row then false
          else begin
            Hashtbl.replace seen row ();
            true
          end)
        table
    in
    if distinct_signatures && not (all_rows_distinct f && all_rows_distinct g)
    then None
    else begin
    let next = Array.make_matrix num_states num_inputs 0 in
    Array.iteri
      (fun s (a, b, _) ->
        for i = 0 to num_inputs - 1 do
          let a' = g.(b).(i) and b' = f.(a).(i) in
          (* a' and b' live in the same block sigma(..., i) only when
             block_of_a a = block_of_b b, which holds for states. *)
          match Hashtbl.find_opt state_of (a', b') with
          | Some s' -> next.(s).(i) <- s'
          | None -> assert false
        done)
      coords;
    let output =
      Array.init num_states (fun _ ->
          Array.init num_inputs (fun _ -> Rng.int rng num_outputs))
    in
    let machine =
      Machine.make ~name ~num_states ~num_inputs ~num_outputs ~next ~output
        ~input_names:(binary_input_names num_inputs)
        ~output_names:(binary_output_names num_outputs) ()
    in
    if
      ((not require_connected) || Reach.is_connected machine)
      && Equiv.is_reduced machine
    then Some machine
    else None
    end
  in
  let rec loop k =
    if k > max_attempts then
      invalid_arg
        (Printf.sprintf
           "Generate.block_product: constraints not met for %s in %d attempts"
           name max_attempts)
    else
      match attempt () with
      | Some machine ->
        let pi_classes = Array.map (fun (a, _, _) -> a) coords in
        let rho_classes = Array.map (fun (_, b, _) -> b) coords in
        { machine; pi_classes; rho_classes; num_pi; num_rho }
      | None -> loop (k + 1)
  in
  loop 1

let shuffled ~rng info =
  let n = info.machine.Machine.num_states in
  let perm = Rng.permutation rng n in
  let pi_classes = Array.make n 0 and rho_classes = Array.make n 0 in
  for s = 0 to n - 1 do
    pi_classes.(perm.(s)) <- info.pi_classes.(s);
    rho_classes.(perm.(s)) <- info.rho_classes.(s)
  done;
  { info with machine = Machine.relabel_states info.machine perm; pi_classes; rho_classes }

(* Restrict a generated machine to its reachable component.  The planted
   pair restricts along: any state word from a reachable state stays in
   the component, so the restricted class maps still form a symmetric
   pair with identity meet, and distinguishability (hence reducedness)
   is preserved. *)
let restrict_reachable info =
  let m = info.machine in
  let n = m.Machine.num_states in
  let seen = Array.make n false in
  let order = ref [] in
  let queue = Queue.create () in
  seen.(m.Machine.reset) <- true;
  Queue.add m.Machine.reset queue;
  let count = ref 0 in
  while not (Queue.is_empty queue) do
    let s = Queue.take queue in
    order := s :: !order;
    incr count;
    Array.iter
      (fun s' ->
        if not seen.(s') then begin
          seen.(s') <- true;
          Queue.add s' queue
        end)
      m.Machine.next.(s)
  done;
  if !count = n then info
  else begin
    let keep = Array.of_list (List.rev !order) in
    let new_id = Array.make n (-1) in
    Array.iteri (fun j s -> new_id.(s) <- j) keep;
    let n' = Array.length keep in
    let next = Array.map (fun s -> Array.map (fun t -> new_id.(t)) m.Machine.next.(s)) keep in
    let output = Array.map (fun s -> Array.copy m.Machine.output.(s)) keep in
    let machine =
      Machine.make ~name:m.Machine.name ~num_states:n'
        ~num_inputs:m.Machine.num_inputs ~num_outputs:m.Machine.num_outputs
        ~next ~output
        ~reset:new_id.(m.Machine.reset)
        ~input_names:m.Machine.input_names
        ~output_names:m.Machine.output_names ()
    in
    let pi_classes = Array.map (fun s -> info.pi_classes.(s)) keep in
    let rho_classes = Array.map (fun s -> info.rho_classes.(s)) keep in
    let distinct a =
      let t = Hashtbl.create 16 in
      Array.iter (fun c -> Hashtbl.replace t c ()) a;
      Hashtbl.length t
    in
    {
      machine;
      pi_classes;
      rho_classes;
      num_pi = distinct pi_classes;
      num_rho = distinct rho_classes;
    }
  end

(* Scalable planted family: tile square blocks until the requested state
   count.  The block edge grows with the machine so the distinct-
   signature rejection stays viable — 8 rows drawn from c^k possibilities
   per block must be pairwise distinct, and c = 8 with k >= 3 keeps the
   per-block collision probability low enough that a few attempts
   suffice even at 10^4 states.

   At low fan-out the full product is essentially never connected (an
   (a, b) pair needs a matching prefix to be hit), so instead of
   rejection-sampling on connectivity the generator overshoots the state
   count and restricts to the reachable component, growing the overshoot
   until the component is big enough. *)
let planted ~rng ~name ~num_states ~num_inputs ?(num_outputs = 4) ()
    : product_info =
  if num_states < 8 then invalid_arg "Generate.planted: need >= 8 states";
  let edge = if num_states >= 512 then 8 else if num_states >= 64 then 4 else 2 in
  let area = edge * edge in
  let rec attempt target =
    let num_blocks = max 2 ((target + area - 1) / area) in
    let blocks = List.init num_blocks (fun _ -> (edge, edge)) in
    let info =
      block_product ~rng ~name ~blocks ~num_inputs ~num_outputs
        ~require_connected:false ()
    in
    let info = restrict_reachable info in
    if
      info.machine.Machine.num_states >= num_states
      || target >= 4 * num_states
    then info
    else attempt (target + max area (num_states / 4))
  in
  attempt (num_states + (num_states / 4))

(* Spec grammar for CLI and bench drivers:
     random:<states>x<inputs>[@seed][,<completeness>]
     planted:<states>x<inputs>[@seed]
   e.g. "planted:1024x4@7", "random:5000x2,0.8".  Inputs must be a power
   of two (binary input names); outputs are fixed at 4 symbols. *)
let of_spec spec =
  let parse_tail tail =
    (* <states>x<inputs>[@seed][,<completeness>] *)
    let tail, completeness =
      match String.index_opt tail ',' with
      | None -> (tail, 1.0)
      | Some i ->
        ( String.sub tail 0 i,
          float_of_string
            (String.sub tail (i + 1) (String.length tail - i - 1)) )
    in
    let tail, seed =
      match String.index_opt tail '@' with
      | None -> (tail, 1)
      | Some i ->
        ( String.sub tail 0 i,
          int_of_string (String.sub tail (i + 1) (String.length tail - i - 1))
        )
    in
    match String.index_opt tail 'x' with
    | None -> None
    | Some i ->
      let states = int_of_string (String.sub tail 0 i) in
      let inputs =
        int_of_string (String.sub tail (i + 1) (String.length tail - i - 1))
      in
      if states <= 0 || inputs <= 0 || inputs land (inputs - 1) <> 0 then None
      else Some (states, inputs, seed, completeness)
  in
  match String.index_opt spec ':' with
  | None -> None
  | Some i -> (
    let kind = String.sub spec 0 i in
    let tail = String.sub spec (i + 1) (String.length spec - i - 1) in
    match (kind, parse_tail tail) with
    | exception (Failure _ | Invalid_argument _) -> None
    | "random", Some (num_states, num_inputs, seed, completeness) ->
      let rng = Rng.create seed in
      Some
        (random ~rng ~name:(String.map (fun c -> if c = ':' then '_' else c) spec)
           ~num_states ~num_inputs ~num_outputs:4 ~ensure_reduced:false
           ~completeness ())
    | "planted", Some (num_states, num_inputs, seed, _) ->
      let rng = Rng.create seed in
      let info =
        planted ~rng
          ~name:(String.map (fun c -> if c = ':' then '_' else c) spec)
          ~num_states ~num_inputs ()
      in
      Some (shuffled ~rng info).machine
    | _ -> None)
