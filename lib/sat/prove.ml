(* Untestable-fault proofs over the collapsed fault list.  See prove.mli. *)

module N = Stc_netlist.Netlist
module Trace = Stc_obs.Trace

type verdict = {
  total_faults : int;
  total_classes : int;
  redundant : N.fault list;
  redundant_classes : int;
  unobservable_classes : int;
}

let sorted_unique a =
  let a = Array.copy a in
  Array.sort compare a;
  let out = ref [] in
  Array.iteri
    (fun i g -> if i = 0 || a.(i - 1) <> g then out := g :: !out)
    a;
  Array.of_list (List.rev !out)

(* Encode the faulty copy of [cone] into [s], guarded by [act]; gates
   outside the cone share the good circuit's literals.  Returns the
   faulty literal of each cone gate (a small gate->lit table). *)
let add_faulty_cone s ~act ~good ~(net : N.t) ~fault cone =
  let const b = if b then Solver.true_lit s else Solver.false_lit s in
  let flit = Hashtbl.create (2 * Array.length cone) in
  Array.iter
    (fun g ->
      let gate = net.N.gates.(g) in
      let lit =
        if g = fault.N.gate && fault.N.pin = None then const fault.N.stuck_at
        else begin
          let read k x =
            let base =
              match Hashtbl.find_opt flit x with
              | Some l -> l
              | None -> good.(x)
            in
            if g = fault.N.gate && fault.N.pin = Some k then
              const fault.N.stuck_at
            else base
          in
          match gate with
          | N.Input _ | N.Const _ ->
            (* only reachable as the fault site, handled above *)
            good.(g)
          | N.Buf x -> read 0 x
          | N.Not x -> Solver.negate (read 0 x)
          | N.And xs ->
            Cnf.mk_and s ~guard:act (List.mapi (fun k x -> read k x) (Array.to_list xs))
          | N.Or xs ->
            Cnf.mk_or s ~guard:act (List.mapi (fun k x -> read k x) (Array.to_list xs))
          | N.Xor xs ->
            let acc = ref (read 0 xs.(0)) in
            for k = 1 to Array.length xs - 1 do
              acc := Cnf.mk_xor s ~guard:act !acc (read k xs.(k))
            done;
            !acc
          | N.Mux { sel; a; b } ->
            Cnf.mk_mux s ~guard:act (read 0 sel) (read 1 a) (read 2 b)
        end
      in
      Hashtbl.replace flit g lit)
    cone;
  flit

let redundant ?(jobs = 1) ?observed (net : N.t) =
  Trace.span ~cat:"sat" "sat.redundant" @@ fun () ->
  let observed =
    match observed with
    | Some o -> sorted_unique o
    | None -> sorted_unique (Array.map snd net.N.outputs)
  in
  let cl = N.collapse ~protected:observed net in
  let readers = N.readers net in
  let is_observed = Array.make (N.num_gates net) false in
  Array.iter (fun g -> is_observed.(g) <- true) observed;
  let nclasses = Array.length cl.N.classes in
  let untestable = Array.make nclasses false in
  let unobservable = Array.make nclasses false in
  Stc_util.Parallel.iter_range_local ~jobs
    ~local:(fun () ->
      let s = Solver.create () in
      let inputs = Cnf.fresh_inputs s (Array.length net.N.inputs) in
      let good = Cnf.add_netlist s net ~inputs in
      (s, good))
    nclasses
    (fun (s, good) ci ->
      let fault = cl.N.faults.(cl.N.representatives.(ci)) in
      let cone = N.cone ~readers net fault.N.gate in
      let obs =
        Array.to_list cone |> List.filter (fun g -> is_observed.(g))
      in
      if obs = [] then begin
        (* the fault cannot reach any observed net: trivially untestable *)
        untestable.(ci) <- true;
        unobservable.(ci) <- true
      end
      else begin
        let act = Solver.pos (Solver.new_var s) in
        let flit = add_faulty_cone s ~act ~good ~net ~fault cone in
        let diffs =
          List.map
            (fun o -> Cnf.mk_xor s ~guard:act (Hashtbl.find flit o) good.(o))
            obs
        in
        Solver.add_clause s (Solver.negate act :: diffs);
        (match Solver.solve ~assumptions:[ act ] s with
        | Solver.Sat -> ()
        | Solver.Unsat -> untestable.(ci) <- true);
        (* retract this fault's miter for the next one *)
        Solver.add_clause s [ Solver.negate act ]
      end);
  let redundant_classes = ref 0 and unobservable_classes = ref 0 in
  let idxs = ref [] in
  for ci = nclasses - 1 downto 0 do
    if untestable.(ci) then begin
      incr redundant_classes;
      Array.iter (fun fi -> idxs := fi :: !idxs) cl.N.classes.(ci)
    end;
    if unobservable.(ci) then incr unobservable_classes
  done;
  let idxs = List.sort_uniq compare !idxs in
  {
    total_faults = Array.length cl.N.faults;
    total_classes = nclasses;
    redundant = List.map (fun fi -> cl.N.faults.(fi)) idxs;
    redundant_classes = !redundant_classes;
    unobservable_classes = !unobservable_classes;
  }
