(* Tseitin encoders.  See cnf.mli for the conventions. *)

module N = Stc_netlist.Netlist
module Cover = Stc_logic.Cover
module Cube = Stc_logic.Cube

type lit = Solver.lit

let clause s guard lits =
  match guard with
  | None -> Solver.add_clause s lits
  | Some g -> Solver.add_clause s (Solver.negate g :: lits)

let fresh s = Solver.pos (Solver.new_var s)

let fresh_inputs s n = Array.init n (fun _ -> fresh s)

let mk_and s ?guard lits =
  match lits with
  | [] -> Solver.true_lit s
  | [ l ] -> l
  | _ ->
    let v = fresh s in
    let nv = Solver.negate v in
    List.iter (fun l -> clause s guard [ nv; l ]) lits;
    clause s guard (v :: List.map Solver.negate lits);
    v

let mk_or s ?guard lits =
  match lits with
  | [] -> Solver.false_lit s
  | [ l ] -> l
  | _ ->
    let v = fresh s in
    let nv = Solver.negate v in
    List.iter (fun l -> clause s guard [ Solver.negate l; v ]) lits;
    clause s guard (nv :: lits);
    v

let mk_xor s ?guard a b =
  let v = fresh s in
  let nv = Solver.negate v in
  let na = Solver.negate a and nb = Solver.negate b in
  clause s guard [ nv; a; b ];
  clause s guard [ nv; na; nb ];
  clause s guard [ v; na; b ];
  clause s guard [ v; a; nb ];
  v

(* sel = 0 -> v = a, sel = 1 -> v = b, plus the redundant
   both-branches clauses for stronger propagation *)
let mk_mux s ?guard sel a b =
  let v = fresh s in
  let nv = Solver.negate v in
  let nsel = Solver.negate sel in
  let na = Solver.negate a and nb = Solver.negate b in
  clause s guard [ sel; na; v ];
  clause s guard [ sel; a; nv ];
  clause s guard [ nsel; nb; v ];
  clause s guard [ nsel; b; nv ];
  clause s guard [ na; nb; v ];
  clause s guard [ a; b; nv ];
  v

let add_netlist s ?guard ?fault (net : N.t) ~inputs =
  if Array.length inputs <> Array.length net.N.inputs then
    invalid_arg "Cnf.add_netlist: inputs length mismatch";
  let forced_output, fgate, fpin, fstuck =
    match fault with
    | None -> (-1, -1, -1, false)
    | Some { N.gate; pin = None; stuck_at } -> (gate, -1, -1, stuck_at)
    | Some { N.gate; pin = Some k; stuck_at } -> (-1, gate, k, stuck_at)
  in
  let const b = if b then Solver.true_lit s else Solver.false_lit s in
  let lits = Array.make (N.num_gates net) (-1) in
  let next_input = ref 0 in
  Array.iteri
    (fun idx gate ->
      let read k x =
        if idx = fgate && k = fpin then const fstuck else lits.(x)
      in
      let v =
        if idx = forced_output then begin
          (if match gate with N.Input _ -> true | _ -> false then
             incr next_input);
          const fstuck
        end
        else
          match gate with
          | N.Input _ ->
            let l = inputs.(!next_input) in
            incr next_input;
            l
          | N.Const b -> const b
          | N.Buf x -> read 0 x
          | N.Not x -> Solver.negate (read 0 x)
          | N.And xs ->
            mk_and s ?guard (List.mapi (fun k x -> read k x) (Array.to_list xs))
          | N.Or xs ->
            mk_or s ?guard (List.mapi (fun k x -> read k x) (Array.to_list xs))
          | N.Xor xs ->
            let acc = ref (read 0 xs.(0)) in
            for k = 1 to Array.length xs - 1 do
              acc := mk_xor s ?guard !acc (read k xs.(k))
            done;
            !acc
          | N.Mux { sel; a; b } ->
            mk_mux s ?guard (read 0 sel) (read 1 a) (read 2 b)
      in
      lits.(idx) <- v)
    net.N.gates;
  lits

let outputs (net : N.t) lits =
  Array.map (fun (_, g) -> lits.(g)) net.N.outputs

let add_cover s ?guard (cover : Cover.t) ~inputs =
  if Array.length inputs <> cover.Cover.num_vars then
    invalid_arg "Cnf.add_cover: inputs length mismatch";
  let cube_lit cube =
    let conj = ref [] in
    for v = cover.Cover.num_vars - 1 downto 0 do
      match Cube.get cube v with
      | Cube.Zero -> conj := Solver.negate inputs.(v) :: !conj
      | Cube.One -> conj := inputs.(v) :: !conj
      | Cube.Dc -> ()
    done;
    mk_and s ?guard !conj
  in
  let cube_lits = Array.map cube_lit cover.Cover.cubes in
  Array.init cover.Cover.num_outputs (fun o ->
      let terms = ref [] in
      for i = Array.length cube_lits - 1 downto 0 do
        if Cube.output_bit cover.Cover.cubes.(i) o then
          terms := cube_lits.(i) :: !terms
      done;
      mk_or s ?guard !terms)
