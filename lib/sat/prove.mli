(** SAT-backed untestable-fault proofs.

    For each collapsed fault class of a netlist, build the cone-limited
    miter between the good circuit and the faulty circuit and ask for an
    input assignment that makes any observed output differ.  UNSAT is a
    {e proof} that no test pattern exists: the fault is untestable
    (redundant), and excluding it from the coverage denominator is the
    honest correction to the fig-5 numbers.

    Incremental construction: each participating domain owns one solver
    holding the good circuit once; every fault class then adds its
    faulty cone {e guarded by a fresh activation literal}, solves under
    the assumption of that literal, and retracts the cone with the unit
    clause of its negation — the same activation-literal discipline a
    future ATPG pass will use to enumerate test patterns. *)

type netlist := Stc_netlist.Netlist.t

type verdict = {
  total_faults : int;  (** raw fault universe, [Netlist.fault_sites] *)
  total_classes : int;  (** collapsed classes *)
  redundant : Stc_netlist.Netlist.fault list;
      (** untestable raw faults, in [fault_sites] order *)
  redundant_classes : int;
  unobservable_classes : int;
      (** classes proven untestable structurally: no observed gate in
          the fault cone (no SAT call needed) *)
}

(** [redundant ?jobs ?observed net] proves every collapsed fault class
    testable or untestable.  [observed] is the set of gate indices ever
    observed (default: the declared primary outputs); it is both the
    collapse protection set and the miter's output set.  [jobs] domains
    grade classes in parallel (verdicts are per-class pure, so the
    result is independent of [jobs]). *)
val redundant : ?jobs:int -> ?observed:int array -> netlist -> verdict
