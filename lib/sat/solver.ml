(* MiniSat-style CDCL.  See solver.mli for the feature inventory.

   Representation choices, tuned for the miter workload:
   - literals are ints ([2v] / [2v+1]); all per-variable state lives in
     flat arrays grown geometrically, so the propagation inner loop is
     array indexing with no boxing;
   - clauses are bare [int array]s in a growable store addressed by
     index (reasons and watcher lists store indices, not pointers);
   - the implied literal of a reason clause is kept at position 0, the
     two watched literals at positions 0 and 1;
   - no clause deletion: the instances here are small and short-lived
     (one solver per verification session), so the learned store just
     grows. *)

let restart_base = 100

type lit = int

type result = Sat | Unsat

type stats = {
  decisions : int;
  conflicts : int;
  propagations : int;
  learned : int;
  restarts : int;
  solves : int;
}

(* Growable int vector (watcher lists, trail limits). *)
type ivec = { mutable a : int array; mutable n : int }

let ivec () = { a = [||]; n = 0 }

let ipush v x =
  if v.n = Array.length v.a then begin
    let cap = max 4 (2 * v.n) in
    let a = Array.make cap 0 in
    Array.blit v.a 0 a 0 v.n;
    v.a <- a
  end;
  v.a.(v.n) <- x;
  v.n <- v.n + 1

type t = {
  (* per-variable state, indexed by var *)
  mutable values : int array;  (* 0 unassigned, 1 true, -1 false *)
  mutable level : int array;
  mutable reason : int array;  (* clause index, -1 for decisions *)
  mutable activity : float array;
  mutable polarity : bool array;  (* saved phase *)
  mutable seen : bool array;
  mutable heap_pos : int array;  (* -1 when not in heap *)
  mutable nvars : int;
  (* per-literal watcher lists *)
  mutable watches : ivec array;
  (* clause store *)
  mutable clauses : int array array;
  mutable nclauses : int;
  (* assignment trail *)
  mutable trail : int array;
  mutable trail_len : int;
  mutable qhead : int;
  trail_lim : ivec;  (* trail_lim.n = current decision level *)
  (* heap of unassigned candidate vars, ordered by activity *)
  mutable heap : int array;
  mutable heap_len : int;
  mutable var_inc : float;
  mutable ok : bool;  (* false once a top-level contradiction is found *)
  mutable true_var : int;  (* -1 until allocated *)
  mutable core : int list;  (* failed assumptions of the last Unsat *)
  mutable n_decisions : int;
  mutable n_conflicts : int;
  mutable n_propagations : int;
  mutable n_learned : int;
  mutable n_restarts : int;
  mutable n_solves : int;
}

let m_decisions = Stc_obs.Metrics.counter "sat.decisions"
let m_conflicts = Stc_obs.Metrics.counter "sat.conflicts"
let m_propagations = Stc_obs.Metrics.counter "sat.propagations"
let m_solves = Stc_obs.Metrics.counter "sat.solves"

let create () =
  {
    values = [||];
    level = [||];
    reason = [||];
    activity = [||];
    polarity = [||];
    seen = [||];
    heap_pos = [||];
    nvars = 0;
    watches = [||];
    clauses = [||];
    nclauses = 0;
    trail = [||];
    trail_len = 0;
    qhead = 0;
    trail_lim = ivec ();
    heap = [||];
    heap_len = 0;
    var_inc = 1.0;
    ok = true;
    true_var = -1;
    core = [];
    n_decisions = 0;
    n_conflicts = 0;
    n_propagations = 0;
    n_learned = 0;
    n_restarts = 0;
    n_solves = 0;
  }

let pos v = 2 * v
let neg_of_var v = (2 * v) + 1
let negate l = l lxor 1
let var_of l = l lsr 1
let num_vars s = s.nvars

(* value of a literal: 0 unassigned, 1 true, -1 false *)
let lit_value s l =
  let v = s.values.(l lsr 1) in
  if l land 1 = 0 then v else -v

(* --- activity heap -------------------------------------------------- *)

let heap_swap s i j =
  let a = s.heap.(i) and b = s.heap.(j) in
  s.heap.(i) <- b;
  s.heap.(j) <- a;
  s.heap_pos.(a) <- j;
  s.heap_pos.(b) <- i

let rec heap_up s i =
  if i > 0 then begin
    let p = (i - 1) / 2 in
    if s.activity.(s.heap.(i)) > s.activity.(s.heap.(p)) then begin
      heap_swap s i p;
      heap_up s p
    end
  end

let rec heap_down s i =
  let l = (2 * i) + 1 in
  if l < s.heap_len then begin
    let r = l + 1 in
    let c =
      if r < s.heap_len && s.activity.(s.heap.(r)) > s.activity.(s.heap.(l))
      then r
      else l
    in
    if s.activity.(s.heap.(c)) > s.activity.(s.heap.(i)) then begin
      heap_swap s i c;
      heap_down s c
    end
  end

let heap_insert s v =
  if s.heap_pos.(v) < 0 then begin
    s.heap.(s.heap_len) <- v;
    s.heap_pos.(v) <- s.heap_len;
    s.heap_len <- s.heap_len + 1;
    heap_up s s.heap_pos.(v)
  end

let heap_pop s =
  let v = s.heap.(0) in
  s.heap_len <- s.heap_len - 1;
  s.heap_pos.(v) <- -1;
  if s.heap_len > 0 then begin
    let last = s.heap.(s.heap_len) in
    s.heap.(0) <- last;
    s.heap_pos.(last) <- 0;
    heap_down s 0
  end;
  v

(* --- variable allocation -------------------------------------------- *)

let grow n a fill =
  let cap = max n (max 16 (2 * Array.length a)) in
  let b = Array.make cap fill in
  Array.blit a 0 b 0 (Array.length a);
  b

let new_var s =
  let v = s.nvars in
  if v >= Array.length s.values then begin
    let n = v + 1 in
    s.values <- grow n s.values 0;
    s.level <- grow n s.level 0;
    s.reason <- grow n s.reason (-1);
    s.activity <- (fun a -> Array.blit s.activity 0 a 0 (Array.length s.activity); a)
        (Array.make (max n (max 16 (2 * Array.length s.activity))) 0.0);
    s.polarity <- (fun a -> Array.blit s.polarity 0 a 0 (Array.length s.polarity); a)
        (Array.make (max n (max 16 (2 * Array.length s.polarity))) false);
    s.seen <- (fun a -> Array.blit s.seen 0 a 0 (Array.length s.seen); a)
        (Array.make (max n (max 16 (2 * Array.length s.seen))) false);
    s.heap_pos <- grow n s.heap_pos (-1);
    s.heap <- grow n s.heap 0;
    s.trail <- grow n s.trail 0;
    let w = Array.init (max (2 * n) (max 32 (2 * Array.length s.watches)))
        (fun i -> if i < Array.length s.watches then s.watches.(i) else ivec ())
    in
    s.watches <- w
  end;
  s.nvars <- v + 1;
  s.values.(v) <- 0;
  s.reason.(v) <- -1;
  s.activity.(v) <- 0.0;
  s.heap_pos.(v) <- -1;
  heap_insert s v;
  v

let bump s v =
  s.activity.(v) <- s.activity.(v) +. s.var_inc;
  if s.activity.(v) > 1e100 then begin
    for i = 0 to s.nvars - 1 do
      s.activity.(i) <- s.activity.(i) *. 1e-100
    done;
    s.var_inc <- s.var_inc *. 1e-100
  end;
  if s.heap_pos.(v) >= 0 then heap_up s s.heap_pos.(v)

(* --- trail ----------------------------------------------------------- *)

let decision_level s = s.trail_lim.n

let enqueue s l reason =
  let v = l lsr 1 in
  s.values.(v) <- (if l land 1 = 0 then 1 else -1);
  s.level.(v) <- decision_level s;
  s.reason.(v) <- reason;
  s.trail.(s.trail_len) <- l;
  s.trail_len <- s.trail_len + 1

let new_decision_level s = ipush s.trail_lim s.trail_len

let cancel_until s lvl =
  if decision_level s > lvl then begin
    let bound = s.trail_lim.a.(lvl) in
    for i = s.trail_len - 1 downto bound do
      let v = s.trail.(i) lsr 1 in
      s.polarity.(v) <- s.values.(v) = 1;
      s.values.(v) <- 0;
      s.reason.(v) <- -1;
      heap_insert s v
    done;
    s.trail_len <- bound;
    s.qhead <- bound;
    s.trail_lim.n <- lvl
  end

(* --- clauses --------------------------------------------------------- *)

let store_clause s lits =
  if s.nclauses = Array.length s.clauses then begin
    let cap = max 16 (2 * s.nclauses) in
    let a = Array.make cap [||] in
    Array.blit s.clauses 0 a 0 s.nclauses;
    s.clauses <- a
  end;
  s.clauses.(s.nclauses) <- lits;
  let c = s.nclauses in
  s.nclauses <- c + 1;
  ipush s.watches.(lits.(0)) c;
  ipush s.watches.(lits.(1)) c;
  c

(* Unit propagation.  Returns the conflicting clause index, or -1. *)
let propagate s =
  let confl = ref (-1) in
  while !confl < 0 && s.qhead < s.trail_len do
    let p = s.trail.(s.qhead) in
    s.qhead <- s.qhead + 1;
    s.n_propagations <- s.n_propagations + 1;
    let np = p lxor 1 in
    let ws = s.watches.(np) in
    let j = ref 0 in
    let i = ref 0 in
    while !i < ws.n do
      let c = ws.a.(!i) in
      incr i;
      let lits = s.clauses.(c) in
      (* ensure the falsified watch sits at position 1 *)
      if lits.(0) = np then begin
        lits.(0) <- lits.(1);
        lits.(1) <- np
      end;
      let first = lits.(0) in
      if lit_value s first = 1 then begin
        (* satisfied: keep watching *)
        ws.a.(!j) <- c;
        incr j
      end
      else begin
        (* look for a non-false replacement watch *)
        let k = ref 2 in
        let len = Array.length lits in
        while !k < len && lit_value s lits.(!k) = -1 do incr k done;
        if !k < len then begin
          lits.(1) <- lits.(!k);
          lits.(!k) <- np;
          ipush s.watches.(lits.(1)) c
          (* dropped from this list: do not bump j *)
        end
        else begin
          ws.a.(!j) <- c;
          incr j;
          if lit_value s first = -1 then begin
            (* conflict: restore the remaining watchers and stop *)
            confl := c;
            while !i < ws.n do
              ws.a.(!j) <- ws.a.(!i);
              incr j;
              incr i
            done;
            s.qhead <- s.trail_len
          end
          else enqueue s first c
        end
      end
    done;
    ws.n <- !j
  done;
  !confl

(* --- conflict analysis ----------------------------------------------- *)

(* First-UIP resolution along the trail, then basic self-subsumption
   minimization.  Returns the learned clause (asserting literal first)
   and the backtrack level. *)
let analyze s confl0 =
  let learned = ref [] in
  let nlearned = ref 0 in
  let counter = ref 0 in
  let p = ref (-1) in
  let confl = ref confl0 in
  let index = ref (s.trail_len - 1) in
  let cur = decision_level s in
  let to_clear = ref [] in
  let continue = ref true in
  while !continue do
    let lits = s.clauses.(!confl) in
    let start = if !p < 0 then 0 else 1 in
    for k = start to Array.length lits - 1 do
      let q = lits.(k) in
      let v = q lsr 1 in
      if (not s.seen.(v)) && s.level.(v) > 0 then begin
        bump s v;
        s.seen.(v) <- true;
        to_clear := v :: !to_clear;
        if s.level.(v) >= cur then incr counter
        else begin
          learned := q :: !learned;
          incr nlearned
        end
      end
    done;
    (* next trail literal to resolve on *)
    while not s.seen.(s.trail.(!index) lsr 1) do decr index done;
    p := s.trail.(!index);
    decr index;
    let v = !p lsr 1 in
    s.seen.(v) <- false;
    decr counter;
    if !counter > 0 then confl := s.reason.(v) else continue := false
  done;
  (* basic minimization: drop literals whose reason is subsumed *)
  let redundant q =
    let v = q lsr 1 in
    let r = s.reason.(v) in
    r >= 0
    &&
    let lits = s.clauses.(r) in
    let ok = ref true in
    for k = 1 to Array.length lits - 1 do
      let w = lits.(k) lsr 1 in
      if (not s.seen.(w)) && s.level.(w) > 0 then ok := false
    done;
    !ok
  in
  let kept = List.filter (fun q -> not (redundant q)) !learned in
  List.iter (fun v -> s.seen.(v) <- false) !to_clear;
  let asserting = negate !p in
  match kept with
  | [] -> ([| asserting |], 0)
  | _ ->
    (* second watch: a literal of the highest remaining level *)
    let best = ref (List.hd kept) in
    List.iter
      (fun q -> if s.level.(q lsr 1) > s.level.(!best lsr 1) then best := q)
      kept;
    let bt = s.level.(!best lsr 1) in
    let arr =
      Array.of_list (asserting :: !best :: List.filter (fun q -> q != !best) kept)
    in
    (arr, bt)

(* Failed-assumption analysis: which assumptions imply the falsity of
   assumption literal [a]?  (MiniSat's analyzeFinal.) *)
let analyze_final s a =
  let core = ref [ a ] in
  if decision_level s > 0 then begin
    let bottom = s.trail_lim.a.(0) in
    s.seen.(a lsr 1) <- true;
    for i = s.trail_len - 1 downto bottom do
      let l = s.trail.(i) in
      let v = l lsr 1 in
      if s.seen.(v) then begin
        (if s.reason.(v) < 0 then core := l :: !core
         else
           let lits = s.clauses.(s.reason.(v)) in
           for k = 1 to Array.length lits - 1 do
             let w = lits.(k) lsr 1 in
             if s.level.(w) > 0 then s.seen.(w) <- true
           done);
        s.seen.(v) <- false
      end
    done;
    s.seen.(a lsr 1) <- false
  end;
  !core

(* --- adding clauses --------------------------------------------------- *)

let add_clause s lits =
  List.iter
    (fun l ->
      if l < 0 || l lsr 1 >= s.nvars then
        invalid_arg "Solver.add_clause: literal out of range")
    lits;
  if s.ok then begin
    cancel_until s 0;
    (* simplify against the level-0 assignment *)
    let lits = List.sort_uniq compare lits in
    let taut =
      List.exists (fun l -> List.mem (negate l) lits || lit_value s l = 1) lits
    in
    if not taut then begin
      let lits = List.filter (fun l -> lit_value s l <> -1) lits in
      match lits with
      | [] -> s.ok <- false
      | [ l ] ->
        enqueue s l (-1);
        if propagate s >= 0 then s.ok <- false
      | _ :: _ :: _ -> ignore (store_clause s (Array.of_list lits))
    end
  end

let true_lit s =
  if s.true_var < 0 then begin
    let v = new_var s in
    s.true_var <- v;
    add_clause s [ pos v ]
  end;
  pos s.true_var

let false_lit s = negate (true_lit s)

(* --- search ----------------------------------------------------------- *)

let luby i =
  (* the i-th term (1-based) of 1 1 2 1 1 2 4 1 1 2 1 1 2 4 8 ... *)
  let size = ref 1 and seq = ref 0 in
  while !size < i + 1 do
    incr seq;
    size := (2 * !size) + 1
  done;
  let x = ref i in
  while !size - 1 <> !x do
    size := (!size - 1) / 2;
    decr seq;
    x := !x mod !size
  done;
  1 lsl !seq

let record_learned s arr =
  s.n_learned <- s.n_learned + 1;
  if Array.length arr = 1 then enqueue s arr.(0) (-1)
  else begin
    let c = store_clause s arr in
    enqueue s arr.(0) c
  end

let solve ?(assumptions = []) s =
  s.n_solves <- s.n_solves + 1;
  let d0 = s.n_decisions and c0 = s.n_conflicts and p0 = s.n_propagations in
  s.core <- [];
  let result =
    if not s.ok then Unsat
    else begin
      List.iter
        (fun l ->
          if l < 0 || l lsr 1 >= s.nvars then
            invalid_arg "Solver.solve: assumption out of range")
        assumptions;
      cancel_until s 0;
      let assumps = Array.of_list assumptions in
      let nassump = Array.length assumps in
      let conflicts_here = ref 0 in
      let restart_no = ref 0 in
      let limit = ref (restart_base * luby 1) in
      let answer = ref None in
      (if propagate s >= 0 then begin
         s.ok <- false;
         answer := Some Unsat
       end);
      while !answer = None do
        let confl = propagate s in
        if confl >= 0 then begin
          s.n_conflicts <- s.n_conflicts + 1;
          incr conflicts_here;
          if decision_level s = 0 then begin
            s.ok <- false;
            answer := Some Unsat
          end
          else begin
            let arr, bt = analyze s confl in
            cancel_until s bt;
            record_learned s arr;
            s.var_inc <- s.var_inc /. 0.95
          end
        end
        else if decision_level s < nassump then begin
          (* re-establish the next assumption *)
          let a = assumps.(decision_level s) in
          match lit_value s a with
          | 1 -> new_decision_level s
          | -1 ->
            s.core <- analyze_final s a;
            answer := Some Unsat
          | _ ->
            new_decision_level s;
            enqueue s a (-1)
        end
        else if !conflicts_here >= !limit then begin
          (* Luby restart *)
          incr restart_no;
          s.n_restarts <- s.n_restarts + 1;
          conflicts_here := 0;
          limit := restart_base * luby (!restart_no + 1);
          cancel_until s 0
        end
        else begin
          (* pick a branching variable *)
          let v = ref (-1) in
          while !v < 0 && s.heap_len > 0 do
            let c = heap_pop s in
            if s.values.(c) = 0 then v := c
          done;
          if !v < 0 then answer := Some Sat
          else begin
            s.n_decisions <- s.n_decisions + 1;
            new_decision_level s;
            enqueue s (if s.polarity.(!v) then pos !v else neg_of_var !v) (-1)
          end
        end
      done;
      (match !answer with Some r -> r | None -> assert false)
    end
  in
  Stc_obs.Metrics.add m_decisions (s.n_decisions - d0);
  Stc_obs.Metrics.add m_conflicts (s.n_conflicts - c0);
  Stc_obs.Metrics.add m_propagations (s.n_propagations - p0);
  Stc_obs.Metrics.incr m_solves;
  result

let value s l =
  let v = s.values.(l lsr 1) in
  if v = 0 then invalid_arg "Solver.value: unassigned literal";
  if l land 1 = 0 then v = 1 else v = -1

let unsat_core s = s.core

let stats s =
  {
    decisions = s.n_decisions;
    conflicts = s.n_conflicts;
    propagations = s.n_propagations;
    learned = s.n_learned;
    restarts = s.n_restarts;
    solves = s.n_solves;
  }
