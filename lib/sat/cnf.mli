(** Tseitin CNF encoding of {!Stc_netlist.Netlist} gate graphs and
    {!Stc_logic.Cover} two-level covers into a {!Solver} instance.

    Encoding conventions (documented for DESIGN.md section 9):
    - every encoder allocates solver variables on demand and returns the
      {e literal} of each encoded net, so [Buf]/[Not] gates cost no
      variables or clauses at all — a [Not] is the negated literal of
      its operand;
    - [And]/[Or] use the standard n-ary Tseitin clauses, [Xor] a
      pairwise fold, [Mux] the 4-clause if-then-else;
    - an optional [guard] literal [g] weakens every emitted clause [C]
      to [¬g ∨ C]: the encoded logic is enforced only under the
      assumption [g].  Guards are the activation literals of the
      incremental per-fault miters ({!Prove}) — retract a fault's
      clauses by adding the unit [¬g];
    - an optional [fault] injects a stuck-at while encoding: an output
      fault replaces the gate's literal by a constant, a pin fault
      replaces the read operand, exactly mirroring
      {!Stc_netlist.Netlist.eval}. *)

type lit = Solver.lit

(** [add_netlist s ?guard ?fault net ~inputs] encodes every gate of
    [net], with [inputs] supplying one literal per [Input] gate (in
    creation order, like [Netlist.eval]).  Returns the literal of every
    gate, indexed by gate id.
    @raise Invalid_argument on an [inputs] length mismatch. *)
val add_netlist :
  Solver.t ->
  ?guard:lit ->
  ?fault:Stc_netlist.Netlist.fault ->
  Stc_netlist.Netlist.t ->
  inputs:lit array ->
  lit array

(** [outputs net lits] projects the gate-literal map returned by
    {!add_netlist} onto the declared primary outputs, in declaration
    order. *)
val outputs : Stc_netlist.Netlist.t -> lit array -> lit array

(** [add_cover s ?guard cover ~inputs] encodes a two-level cover: one
    AND literal per cube, one OR literal per cover output.  [inputs]
    has one literal per cover variable.
    @raise Invalid_argument on an [inputs] length mismatch. *)
val add_cover :
  Solver.t -> ?guard:lit -> Stc_logic.Cover.t -> inputs:lit array -> lit array

(** [mk_and s ?guard lits] / [mk_or s ?guard lits]: a fresh literal
    constrained equivalent to the conjunction / disjunction (constants
    for the empty list). *)
val mk_and : Solver.t -> ?guard:lit -> lit list -> lit

val mk_or : Solver.t -> ?guard:lit -> lit list -> lit

(** [mk_xor s ?guard a b]: a fresh literal equivalent to [a xor b] —
    the per-output miter gate. *)
val mk_xor : Solver.t -> ?guard:lit -> lit -> lit -> lit

(** [mk_mux s ?guard sel a b]: a fresh literal equivalent to
    [if sel then b else a] (the netlist [Mux] convention). *)
val mk_mux : Solver.t -> ?guard:lit -> lit -> lit -> lit -> lit

(** [fresh_inputs s n] allocates [n] fresh unconstrained literals. *)
val fresh_inputs : Solver.t -> int -> lit array
