(** A small, dependency-free CDCL SAT solver.

    The design is the classic MiniSat recipe, sized for the CNF
    instances this repository produces (netlist miters with a few
    thousand variables):

    - {b two-watched literals} for unit propagation: each clause is
      watched by its first two literals; a falsified watch triggers a
      scan for a replacement, an implication, or a conflict;
    - {b first-UIP clause learning} with self-subsumption minimization:
      every conflict is resolved backwards along the trail until one
      literal of the current decision level remains, and learned
      literals whose reason is already subsumed are dropped;
    - {b EVSIDS} variable scoring: a max-heap ordered by exponentially
      decayed activity picks decision variables, with phase saving for
      the polarity;
    - {b Luby restarts} (unit {!restart_base} conflicts);
    - {b incremental solving under assumptions}: assumptions are
      enqueued as pseudo-decisions below all search decisions, clauses
      may be added between [solve] calls, and a failed solve exposes the
      subset of assumptions used in the refutation ({!unsat_core}) —
      the activation-literal API the ATPG roadmap item builds on.

    Literals are plain ints: variable [v] (from {!new_var}, [0]-based)
    has positive literal [2 * v] and negative literal [2 * v + 1]
    ({!pos}, {!neg_of_var}, {!negate}).  The solver is single-domain
    mutable state; parallel users create one solver per domain.

    When the {!Stc_obs.Metrics} registry is enabled, every [solve]
    charges the [sat.decisions] / [sat.conflicts] / [sat.propagations] /
    [sat.solves] counters with that call's work. *)

type t

(** Literals: [2 * var] (positive) or [2 * var + 1] (negated). *)
type lit = int

val create : unit -> t

(** [new_var s] allocates a fresh variable and returns its index. *)
val new_var : t -> int

val num_vars : t -> int

(** [pos v] / [neg_of_var v]: the two literals of variable [v]. *)
val pos : int -> lit

val neg_of_var : int -> lit

val negate : lit -> lit

val var_of : lit -> int

(** [true_lit s] is a literal constrained true at level 0 (allocated on
    first use); [false_lit s] is its negation. *)
val true_lit : t -> lit

val false_lit : t -> lit

(** [add_clause s lits] adds a clause over existing variables.
    Tautologies and clauses satisfied at level 0 are dropped; false
    literals are removed.  An empty (or falsified unit) result makes
    the instance contradictory: all subsequent solves answer [Unsat]
    with an empty core.  Clauses may be added freely between [solve]
    calls (the solver backtracks to level 0 first).
    @raise Invalid_argument on a literal without a variable. *)
val add_clause : t -> lit list -> unit

type result = Sat | Unsat

(** [solve ?assumptions s] decides satisfiability of the added clauses
    under the given assumption literals (default none). *)
val solve : ?assumptions:lit list -> t -> result

(** After [solve] returned [Sat]: the model value of a literal.  Every
    allocated variable is assigned in a model. *)
val value : t -> lit -> bool

(** After [solve] returned [Unsat]: the subset of the assumptions that
    the refutation used (in no particular order).  Empty when the
    clause set is contradictory without assumptions. *)
val unsat_core : t -> lit list

type stats = {
  decisions : int;
  conflicts : int;
  propagations : int;
  learned : int;  (** learned clauses currently in the store *)
  restarts : int;
  solves : int;
}

(** Cumulative counts since [create]. *)
val stats : t -> stats

(** Luby restart unit, in conflicts. *)
val restart_base : int
