(** Netlist dependency-graph analysis and the pipeline-property prover.

    The signal dependency graph has one node per gate and an edge from
    every operand to its user.  On top of it:

    - Tarjan SCC detection for combinational cycles ([NET001] error;
      the {!Stc_netlist.Netlist.Builder} makes them unconstructible,
      but imported netlists go through the same pass);
    - floating logic gates, i.e. gates outside every primary-output
      cone ([NET002] warning; dead area);
    - multiply-driven primary outputs, i.e. one output name declared
      twice ([NET003] error);
    - primary inputs no output depends on ([NET004] note);
    - the {b pipeline-property prover}: registers are recovered from the
      net naming convention of {!Stc_faultsim.Arch} (register [R]
      reads inputs [r*] and is loaded from outputs [ns*]; [R1]: [r1_*]
      from [r1n*]; [R2]: [r2_*] from [r2n*]; [RA]/[RB]: [ra*]/[rb*]
      from [nsb*]/[nsa*]; the fig. 2 test register [T] is
      generator-loaded and has no next-state net).  A register whose
      next-state cone reaches its own outputs has an R->C->R
      combinational feedback path ([NET010] error on netlists that must
      be feedback-free, note otherwise); a netlist whose registers are
      all feedback-free is certified with [NET011], naming the register
      dependency ring - the fig. 4 structural property that makes the
      realization self-testable without a transparency register. *)

type netlist := Stc_netlist.Netlist.t

(** [sccs ~n ~succ] is Tarjan's algorithm on an arbitrary graph with
    nodes [0..n-1]: the strongly connected components in reverse
    topological order, each sorted ascending. *)
val sccs : n:int -> succ:(int -> int list) -> int list list

(** [cyclic_sccs ~n ~succ] keeps only genuine cycles: components of
    size [>= 2], and singletons with a self-edge. *)
val cyclic_sccs : n:int -> succ:(int -> int list) -> int list list

(** [operands g] is the fanin of a gate. *)
val operands : Stc_netlist.Netlist.gate -> int array

(** [fanin_cone net roots] marks every gate in the transitive fanin of
    [roots] (roots included). *)
val fanin_cone : netlist -> int list -> bool array

(** A register recovered from the naming convention: [inputs] are its
    output nets (modelled as [Input] gates), [next] the gates computing
    its next state ([[]] for generator-loaded registers). *)
type reg = { reg_name : string; inputs : int list; next : int list }

val registers : netlist -> reg list

(** [feeds net regs] lists, for each register with a next-state net, the
    names of the registers (and ["primary"] for primary inputs) its
    next-state cone depends on. *)
val feeds : netlist -> reg list -> (string * string list) list

(** [prove_pipeline ~subject ~required net] is the prover: NET010 per
    feedback register (error iff [required]), NET011 certification when
    [required] and no feedback exists. *)
val prove_pipeline : subject:string -> required:bool -> netlist -> Diagnostic.t list

(** [structure ~subject net] runs the pure graph checks
    (NET001-NET004). *)
val structure : subject:string -> netlist -> Diagnostic.t list

(** The context pass over every {!Context.t.netlists} target. *)
val pass : Pass.t
