module Machine = Stc_fsm.Machine
module Reach = Stc_fsm.Reach
module Equiv = Stc_fsm.Equiv
module D = Diagnostic

(* ------------------------------------------------------------------ *)
(* Machine-level checks                                                *)
(* ------------------------------------------------------------------ *)

let unreachable_states ~subject (m : Machine.t) =
  let reachable = Reach.reachable m in
  let diags = ref [] in
  Array.iteri
    (fun s ok ->
      if not ok then
        diags :=
          D.warning ~code:"FSM001" ~subject
            ~loc:(Printf.sprintf "state %s" m.Machine.state_names.(s))
            "unreachable from the reset state (dead table rows; run \
             `ostr minimize` to trim)"
          :: !diags)
    reachable;
  !diags

let residual_equivalences ~subject (m : Machine.t) =
  let classes = Equiv.classes m in
  let members = Hashtbl.create 8 in
  Array.iteri
    (fun s c ->
      Hashtbl.replace members c (s :: Option.value ~default:[] (Hashtbl.find_opt members c)))
    classes;
  Hashtbl.fold
    (fun _c states acc ->
      match List.rev states with
      | first :: (_ :: _ as rest) ->
        let names ss =
          String.concat ", "
            (List.map (fun s -> m.Machine.state_names.(s)) ss)
        in
        D.warning ~code:"FSM002" ~subject
          ~loc:(Printf.sprintf "state %s" m.Machine.state_names.(first))
          (Printf.sprintf
             "equivalent to state(s) %s - the table is not reduced" (names rest))
        :: acc
      | _ -> acc)
    members []

let duplicate_inputs ~subject (m : Machine.t) =
  let same_column i j =
    let ok = ref true in
    for s = 0 to m.Machine.num_states - 1 do
      if
        m.Machine.next.(s).(i) <> m.Machine.next.(s).(j)
        || m.Machine.output.(s).(i) <> m.Machine.output.(s).(j)
      then ok := false
    done;
    !ok
  in
  let diags = ref [] in
  for j = 1 to m.Machine.num_inputs - 1 do
    let rec first_dup i =
      if i >= j then None else if same_column i j then Some i else first_dup (i + 1)
    in
    match first_dup 0 with
    | Some i ->
      diags :=
        D.info ~code:"FSM003" ~subject
          ~loc:(Printf.sprintf "input %s" m.Machine.input_names.(j))
          (Printf.sprintf
             "next-state and output columns duplicate input %s"
             m.Machine.input_names.(i))
        :: !diags
    | None -> ()
  done;
  !diags

let unused_outputs ~subject (m : Machine.t) =
  let used = Array.make m.Machine.num_outputs false in
  Machine.iter_transitions m (fun _s _i _s' o -> used.(o) <- true);
  let diags = ref [] in
  Array.iteri
    (fun o u ->
      if not u then
        diags :=
          D.info ~code:"FSM004" ~subject
            ~loc:(Printf.sprintf "output %s" m.Machine.output_names.(o))
            "output symbol is never emitted"
          :: !diags)
    used;
  !diags

let connectivity ~subject (m : Machine.t) =
  if Reach.is_strongly_connected m then []
  else
    [
      D.info ~code:"FSM007" ~subject ~loc:"machine"
        "not strongly connected: some states cannot reach each other \
         (test sequences may not be able to revisit them)";
    ]

let lint_machine ~subject m =
  List.concat
    [
      unreachable_states ~subject m;
      residual_equivalences ~subject m;
      duplicate_inputs ~subject m;
      unused_outputs ~subject m;
      connectivity ~subject m;
    ]

let pass =
  {
    Pass.name = "fsm-lint";
    doc =
      "unreachable states, residual equivalent states, duplicate input \
       columns, unused outputs, connectivity (FSM001-FSM004, FSM007)";
    run =
      (fun ctx ->
        lint_machine ~subject:(Context.subject ctx "") ctx.Context.machine);
  }

(* ------------------------------------------------------------------ *)
(* Raw KISS2 scanner                                                   *)
(* ------------------------------------------------------------------ *)

(* A deliberately tolerant reader: where Stc_fsm.Kiss.parse raises, this
   scanner keeps going and reports, so one run surfaces every defect of
   a hand-written table. *)
let lint_kiss ~subject text =
  let diags = ref [] in
  let add d = diags := d :: !diags in
  let input_bits = ref (-1) in
  let reset = ref None in
  (* (state, minterm) -> (next, output, line) *)
  let tbl : (string * int, string * string * int) Hashtbl.t =
    Hashtbl.create 64
  in
  let states = Hashtbl.create 16 in
  let note_state s = if not (Hashtbl.mem states s) then Hashtbl.add states s () in
  let expand line bits =
    (* All minterms matching a 0/1/- pattern, MSB first. *)
    let n = String.length bits in
    let rec go k acc =
      if k = n then acc
      else
        match bits.[k] with
        | '0' -> go (k + 1) (List.map (fun v -> v lsl 1) acc)
        | '1' -> go (k + 1) (List.map (fun v -> (v lsl 1) lor 1) acc)
        | '-' ->
          go (k + 1)
            (List.concat_map (fun v -> [ v lsl 1; (v lsl 1) lor 1 ]) acc)
        | c ->
          add
            (D.error ~code:"FSM005" ~subject
               ~loc:(Printf.sprintf "line %d" line)
               (Printf.sprintf "bad input character %C in %S" c bits));
          go (k + 1) acc
    in
    go 0 [ 0 ]
  in
  let lines = String.split_on_char '\n' text in
  List.iteri
    (fun k raw ->
      let line = k + 1 in
      let stripped =
        match String.index_opt raw '#' with
        | Some i -> String.sub raw 0 i
        | None -> raw
      in
      let fields =
        String.split_on_char ' ' (String.map (function '\t' | '\r' -> ' ' | c -> c) stripped)
        |> List.filter (fun f -> f <> "")
      in
      match fields with
      | [] -> ()
      | directive :: rest when directive.[0] = '.' -> (
        match (directive, rest) with
        | ".i", [ n ] -> input_bits := int_of_string_opt n |> Option.value ~default:(-1)
        | ".r", [ s ] ->
          reset := Some s;
          note_state s
        | _ -> ())
      | [ bits; src; dst; out ] ->
        note_state src;
        note_state dst;
        if !input_bits < 0 then input_bits := String.length bits;
        if String.length bits <> !input_bits then
          add
            (D.error ~code:"FSM005" ~subject
               ~loc:(Printf.sprintf "line %d" line)
               (Printf.sprintf "input field %S has %d columns, expected %d"
                  bits (String.length bits) !input_bits))
        else if String.contains out '-' then
          add
            (D.error ~code:"FSM005" ~subject
               ~loc:(Printf.sprintf "line %d" line)
               (Printf.sprintf
                  "output field %S contains a don't-care; outputs must be \
                   fully specified"
                  out))
        else
          List.iter
            (fun minterm ->
              match Hashtbl.find_opt tbl (src, minterm) with
              | Some (dst', out', line') when dst' <> dst || out' <> out ->
                add
                  (D.error ~code:"FSM005" ~subject
                     ~loc:(Printf.sprintf "line %d" line)
                     (Printf.sprintf
                        "nondeterministic: state %s under input %s already \
                         maps to %s/%s (line %d), here %s/%s"
                        src
                        (let b = Bytes.create !input_bits in
                         for j = 0 to !input_bits - 1 do
                           Bytes.set b j
                             (if minterm land (1 lsl (!input_bits - 1 - j)) <> 0
                              then '1'
                              else '0')
                         done;
                         Bytes.to_string b)
                        dst' out' line' dst out))
              | Some _ -> ()
              | None -> Hashtbl.add tbl (src, minterm) (dst, out, line))
            (expand line bits)
      | _ ->
        add
          (D.error ~code:"FSM005" ~subject
             ~loc:(Printf.sprintf "line %d" line)
             (Printf.sprintf "malformed row %S (expected: input state next output)"
                (String.trim stripped))))
    lines;
  (* Completeness: every noted state must specify all 2^i minterms. *)
  if !input_bits >= 0 && !input_bits <= 16 then begin
    let total = 1 lsl !input_bits in
    let specified = Hashtbl.create 16 in
    Hashtbl.iter
      (fun (s, _) _ ->
        Hashtbl.replace specified s
          (1 + Option.value ~default:0 (Hashtbl.find_opt specified s)))
      tbl;
    Hashtbl.iter
      (fun s () ->
        let n = Option.value ~default:0 (Hashtbl.find_opt specified s) in
        if n < total then
          add
            (D.warning ~code:"FSM006" ~subject
               ~loc:(Printf.sprintf "state %s" s)
               (Printf.sprintf
                  "incomplete: %d of %d input minterms unspecified (the \
                   parser completes them by policy)"
                  (total - n) total)))
      states
  end;
  !diags
