module Trace = Stc_obs.Trace
module Metrics = Stc_obs.Metrics

type t = {
  name : string;
  doc : string;
  run : Context.t -> Diagnostic.t list;
}

let registry : (string, t) Hashtbl.t = Hashtbl.create 16

let register pass = Hashtbl.replace registry pass.name pass

let find name = Hashtbl.find_opt registry name

let all () =
  Hashtbl.fold (fun _ pass acc -> pass :: acc) registry []
  |> List.sort (fun a b -> String.compare a.name b.name)

let m_runs = lazy (Metrics.counter "lint.pass.runs")
let m_errors = lazy (Metrics.counter "lint.diagnostics.error")
let m_warnings = lazy (Metrics.counter "lint.diagnostics.warning")
let m_infos = lazy (Metrics.counter "lint.diagnostics.info")

let run_one ctx pass =
  Trace.span ~cat:"lint" ("lint." ^ pass.name) @@ fun () ->
  let found = pass.run ctx in
  Metrics.incr (Lazy.force m_runs);
  Metrics.add (Lazy.force m_errors) (Diagnostic.count Diagnostic.Error found);
  Metrics.add (Lazy.force m_warnings)
    (Diagnostic.count Diagnostic.Warning found);
  Metrics.add (Lazy.force m_infos) (Diagnostic.count Diagnostic.Info found);
  found

let run_all ?(select = fun _ -> true) ?(jobs = 1) ctx =
  let passes = List.filter select (all ()) in
  let diags =
    if jobs <= 1 then List.concat_map (run_one ctx) passes
    else begin
      (* passes are independent; fan them over the domain pool and
         re-concatenate in name order, so the merged report is the
         sequential one (Diagnostic.sort is a total order anyway) *)
      let arr = Array.of_list passes in
      Stc_util.Parallel.map_range ~jobs (Array.length arr)
        (fun i -> run_one ctx arr.(i))
        ~init:[]
      |> Array.to_list |> List.concat
    end
  in
  Diagnostic.sort diags
