(** Front door of the SAT verification family: registers the three
    proof passes and runs them over a {!Context.t}.

    The family is disjoint from {!Lint.builtin}: [ostr lint] never runs
    these (they are SAT-heavy and can take seconds per machine), and
    [ostr verify] never runs the lint passes.  Both share the
    {!Pass} registry, contexts and diagnostic plumbing.

    Passes run sequentially in name order; parallelism lives {e inside}
    the passes (the per-fault proofs fan over domains according to
    [ctx.pass_jobs]), and every consumer is jobs-invariant, so reports
    are byte-identical across [--jobs] settings. *)

(** The verification passes (cec, net-prove, sat-redundant), in
    registration order.  Loading this module registers them. *)
val builtin : Pass.t list

(** The pass names, for drivers that validate [--pass] selections. *)
val names : string list

(** [run ?select ctx] runs the selected verification passes (default
    all three); sorted diagnostics.
    @raise Invalid_argument if [select] names an unknown pass. *)
val run : ?select:string list -> Context.t -> Diagnostic.t list
