(** Combinational equivalence checking (SAT miters).

    Three proof obligations per context, all discharged with
    {!Stc_sat.Solver} miters and all {e modulo the don't-care set} (two
    correct implementations may legitimately differ on dc minterms):

    - every minimized block against its on/dc specification;
    - the packed minimizer's output against the [Naive] reference
      engine's output on the same specification (replacing the QCheck
      sampling cross-check with proof);
    - every architecture netlist against the FSM truth tables: fig. 4's
      C1/C2/Lambda cones, fig. 1's monolithic block, fig. 2 in both
      functional ([test_mode = 0], state from R) and test
      ([test_mode = 1], state from T) modes, and fig. 3's two copies.

    Diagnostic codes (stable):
    - [CEC001] error: a block cover asserts an output on an off-set
      minterm (witness input assignment in the message);
    - [CEC002] error: a care on-set minterm is uncovered (witness);
    - [CEC003] note: block proven equivalent to its specification;
    - [CEC004] error: a netlist output disagrees with its table spec on
      a care minterm (witness);
    - [CEC005] note: netlist group proven equivalent to its tables;
    - [CEC006] error: packed and naive minimizers disagree on a care
      minterm (witness);
    - [CEC007] note: packed output proven equivalent to the naive
      reference;
    - [CEC008] note: the naive reference exceeded its time budget, the
      agreement proof was skipped. *)

(** Wall-clock budget (seconds) for the [Naive] reference minimization
    behind the CEC006/CEC007 agreement proof. *)
val naive_budget : float

(** [check_block ~subject b] proves [b.minimized] against [(b.on, b.dc)]:
    CEC001/CEC002 errors or the CEC003 certificate. *)
val check_block : subject:string -> Context.block -> Diagnostic.t list

(** [check_naive_agreement ~subject b] re-minimizes [b]'s specification
    with the [Naive] reference engine and proves the two results
    equivalent modulo dc: CEC006/CEC007/CEC008. *)
val check_naive_agreement :
  subject:string -> Context.block -> Diagnostic.t list

(** [check_netlist ~subject ctx target] proves the architecture netlist
    [target] against the FSM tables (labels [fig1]-[fig4]; unknown
    labels yield no diagnostics): CEC004/CEC005. *)
val check_netlist :
  subject:string -> Context.t -> Context.netlist_target -> Diagnostic.t list

(** The registered pass (name ["cec"]): all of the above over every
    block and netlist target of the context. *)
val pass : Pass.t
