module Json = Stc_obs.Json

type severity = Error | Warning | Info

type t = {
  code : string;
  severity : severity;
  subject : string;
  loc : string;
  message : string;
}

let make ~code ~severity ~subject ~loc message =
  { code; severity; subject; loc; message }

let error ~code ~subject ~loc message =
  make ~code ~severity:Error ~subject ~loc message

let warning ~code ~subject ~loc message =
  make ~code ~severity:Warning ~subject ~loc message

let info ~code ~subject ~loc message =
  make ~code ~severity:Info ~subject ~loc message

let severity_to_string = function
  | Error -> "error"
  | Warning -> "warning"
  | Info -> "info"

(* Severity participates last: equal codes always carry equal severities,
   but a total order must not depend on that. *)
let severity_rank = function Error -> 0 | Warning -> 1 | Info -> 2

let compare a b =
  let ( <?> ) c next = if c <> 0 then c else next () in
  String.compare a.subject b.subject <?> fun () ->
  String.compare a.code b.code <?> fun () ->
  String.compare a.loc b.loc <?> fun () ->
  String.compare a.message b.message <?> fun () ->
  Int.compare (severity_rank a.severity) (severity_rank b.severity)

let sort diags = List.sort_uniq compare diags

let count severity diags =
  List.length (List.filter (fun d -> d.severity = severity) diags)

let max_severity diags =
  List.fold_left
    (fun worst d ->
      match worst with
      | None -> Some d.severity
      | Some w ->
        if severity_rank d.severity < severity_rank w then Some d.severity
        else worst)
    None diags

let fails ~werror diags =
  match max_severity diags with
  | Some Error -> true
  | Some Warning -> werror
  | Some Info | None -> false

let pp fmt d =
  Format.fprintf fmt "%s[%s] %s: %s: %s"
    (severity_to_string d.severity)
    d.code d.subject d.loc d.message

let to_string d = Format.asprintf "%a" pp d

let pp_report fmt diags =
  let sorted = sort diags in
  List.iter (fun d -> Format.fprintf fmt "%a@." pp d) sorted;
  Format.fprintf fmt "%d errors, %d warnings, %d notes@."
    (count Error sorted) (count Warning sorted) (count Info sorted)

let to_json d =
  Json.Obj
    [
      ("code", Json.String d.code);
      ("severity", Json.String (severity_to_string d.severity));
      ("subject", Json.String d.subject);
      ("loc", Json.String d.loc);
      ("message", Json.String d.message);
    ]

let report_to_json ~subject diags =
  let sorted = sort diags in
  Json.Obj
    [
      ("machine", Json.String subject);
      ("diagnostics", Json.List (List.map to_json sorted));
      ( "summary",
        Json.Obj
          [
            ("errors", Json.Int (count Error sorted));
            ("warnings", Json.Int (count Warning sorted));
            ("infos", Json.Int (count Info sorted));
          ] );
    ]
