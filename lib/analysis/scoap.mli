(** SCOAP testability analysis (Goldstein's controllability /
    observability measures) over combinational netlists.

    [CC0 g] / [CC1 g] estimate the effort of driving gate [g] to 0 / 1
    (primary inputs cost 1, every level adds 1, AND-like gates sum their
    required sides, OR-like gates take the cheapest side).  [CO g]
    estimates the effort of propagating [g]'s value to a primary output
    (outputs cost 0; a path through a gate adds the cost of enabling its
    side inputs).  High values flag hard-to-test nets - the static
    counterpart of the fault simulator's coverage numbers, cheap enough
    to run on every synthesis result.

    Values saturate at {!inf} (unreachable: a constant net's opposite
    value, an unobservable floating gate).

    Diagnostic codes (stable):
    - [SCP001] note: per-netlist summary (emitted once per analyzed
      netlist, also the row source of `ostr scoap`);
    - [SCP002] warning: a gate inside a primary-output cone whose
      controllability or observability saturates at {!inf}. *)

type netlist := Stc_netlist.Netlist.t

(** Saturation value standing in for "impossible". *)
val inf : int

type t = {
  cc0 : int array;  (** per-gate 0-controllability *)
  cc1 : int array;  (** per-gate 1-controllability *)
  co : int array;  (** per-gate observability *)
}

val analyze : netlist -> t

type summary = {
  nets : int;  (** gates considered (inputs and logic; constants excluded) *)
  cc0_max : int;
  cc1_max : int;
  co_max : int;  (** maxima over finite values *)
  cc0_mean : float;
  cc1_mean : float;
  co_mean : float;  (** means over finite values *)
  uncontrollable : int;  (** non-constant gates with CC0 or CC1 = {!inf} *)
  unobservable : int;  (** gates with CO = {!inf} *)
}

val summarize : netlist -> t -> summary

val pp_summary : Format.formatter -> summary -> unit

(** [summary_to_string s] is a stable one-line rendering, used in the
    SCP001 note. *)
val summary_to_string : summary -> string

(** The context pass: analyzes every netlist target and reports
    SCP001/SCP002. *)
val pass : Pass.t
