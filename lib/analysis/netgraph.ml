module N = Stc_netlist.Netlist
module D = Diagnostic

let operands : N.gate -> int array = function
  | N.Input _ | N.Const _ -> [||]
  | N.Buf x | N.Not x -> [| x |]
  | N.And xs | N.Or xs | N.Xor xs -> xs
  | N.Mux { sel; a; b } -> [| sel; a; b |]

(* ------------------------------------------------------------------ *)
(* Tarjan SCC (recursive; netlist graphs are shallow two-level cones)  *)
(* ------------------------------------------------------------------ *)

let sccs ~n ~succ =
  let index = Array.make n (-1) in
  let lowlink = Array.make n 0 in
  let on_stack = Array.make n false in
  let stack = ref [] in
  let counter = ref 0 in
  let components = ref [] in
  let rec strongconnect v =
    index.(v) <- !counter;
    lowlink.(v) <- !counter;
    incr counter;
    stack := v :: !stack;
    on_stack.(v) <- true;
    List.iter
      (fun w ->
        if index.(w) < 0 then begin
          strongconnect w;
          lowlink.(v) <- min lowlink.(v) lowlink.(w)
        end
        else if on_stack.(w) then lowlink.(v) <- min lowlink.(v) index.(w))
      (succ v);
    if lowlink.(v) = index.(v) then begin
      let rec pop acc =
        match !stack with
        | w :: rest ->
          stack := rest;
          on_stack.(w) <- false;
          if w = v then w :: acc else pop (w :: acc)
        | [] -> acc
      in
      components := List.sort Int.compare (pop []) :: !components
    end
  in
  for v = 0 to n - 1 do
    if index.(v) < 0 then strongconnect v
  done;
  List.rev !components

let cyclic_sccs ~n ~succ =
  List.filter
    (fun comp ->
      match comp with
      | [ v ] -> List.mem v (succ v)
      | _ :: _ :: _ -> true
      | [] -> false)
    (sccs ~n ~succ)

(* ------------------------------------------------------------------ *)
(* Cones                                                               *)
(* ------------------------------------------------------------------ *)

let fanin_cone (net : N.t) roots =
  let n = N.num_gates net in
  let seen = Array.make n false in
  let rec visit v =
    if not seen.(v) then begin
      seen.(v) <- true;
      Array.iter visit (operands net.N.gates.(v))
    end
  in
  List.iter visit roots;
  seen

(* ------------------------------------------------------------------ *)
(* Register recovery from the Arch naming convention                   *)
(* ------------------------------------------------------------------ *)

type reg = { reg_name : string; inputs : int list; next : int list }

let is_digits s =
  s <> "" && String.for_all (fun c -> c >= '0' && c <= '9') s

let after prefix s =
  let lp = String.length prefix in
  if String.length s > lp && String.sub s 0 lp = prefix then
    Some (String.sub s lp (String.length s - lp))
  else None

let classify_input name =
  let tail p = Option.map is_digits (after p name) = Some true in
  if tail "r1_" then Some "R1"
  else if tail "r2_" then Some "R2"
  else if tail "ra" then Some "RA"
  else if tail "rb" then Some "RB"
  else if tail "r" then Some "R"
  else if tail "t" then Some "T"
  else None

let classify_output name =
  let tail p = Option.map is_digits (after p name) = Some true in
  if tail "r1n" then Some "R1"
  else if tail "r2n" then Some "R2"
  else if tail "nsa" then Some "RB"  (* C_a's next-state lines load RB *)
  else if tail "nsb" then Some "RA"
  else if tail "ns" then Some "R"
  else None

let registers (net : N.t) =
  let add tbl key v =
    Hashtbl.replace tbl key (v :: Option.value ~default:[] (Hashtbl.find_opt tbl key))
  in
  let ins = Hashtbl.create 4 and nexts = Hashtbl.create 4 in
  Array.iter
    (fun g ->
      match net.N.gates.(g) with
      | N.Input name -> (
        match classify_input name with
        | Some reg -> add ins reg g
        | None -> ())
      | _ -> ())
    net.N.inputs;
  Array.iter
    (fun (name, g) ->
      match classify_output name with
      | Some reg -> add nexts reg g
      | None -> ())
    net.N.outputs;
  Hashtbl.fold
    (fun reg_name gates acc ->
      let next =
        List.rev (Option.value ~default:[] (Hashtbl.find_opt nexts reg_name))
      in
      { reg_name; inputs = List.rev gates; next } :: acc)
    ins []
  |> List.sort (fun a b -> String.compare a.reg_name b.reg_name)

let feeds net regs =
  List.filter_map
    (fun r ->
      if r.next = [] then None
      else begin
        let cone = fanin_cone net r.next in
        let deps =
          List.filter_map
            (fun other ->
              if List.exists (fun g -> cone.(g)) other.inputs then
                Some other.reg_name
              else None)
            regs
        in
        let reg_inputs =
          List.concat_map (fun r -> r.inputs) regs
        in
        let primary =
          Array.exists
            (fun g -> cone.(g) && not (List.mem g reg_inputs))
            net.N.inputs
        in
        let deps = if primary then deps @ [ "primary" ] else deps in
        Some (r.reg_name, deps)
      end)
    regs

(* ------------------------------------------------------------------ *)
(* Pipeline-property prover                                            *)
(* ------------------------------------------------------------------ *)

let prove_pipeline ~subject ~required (net : N.t) =
  let regs = registers net in
  let feedback =
    List.filter
      (fun r ->
        r.next <> []
        &&
        let cone = fanin_cone net r.next in
        List.exists (fun g -> cone.(g)) r.inputs)
      regs
  in
  let diags =
    List.map
      (fun r ->
        let message =
          Printf.sprintf
            "combinational path from register %s back into its own \
             next-state logic (R->C->R feedback; the structure is not \
             the feedback-free fig. 4 pipeline)"
            r.reg_name
        in
        if required then
          D.error ~code:"NET010" ~subject
            ~loc:(Printf.sprintf "register %s" r.reg_name)
            message
        else
          D.info ~code:"NET010" ~subject
            ~loc:(Printf.sprintf "register %s" r.reg_name)
            message)
      feedback
  in
  if required && feedback = [] then
    let ring =
      feeds net regs
      |> List.map (fun (name, deps) ->
             Printf.sprintf "%s <- {%s}" name (String.concat ", " deps))
      |> String.concat "; "
    in
    D.info ~code:"NET011" ~subject ~loc:"registers"
      (Printf.sprintf
         "pipeline property certified: no register feeds its own \
          next-state logic (%s)"
         (if ring = "" then "no registers recognized" else ring))
    :: diags
  else diags

(* ------------------------------------------------------------------ *)
(* Structural graph checks                                             *)
(* ------------------------------------------------------------------ *)

let structure ~subject (net : N.t) =
  let n = N.num_gates net in
  let succ v = Array.to_list (operands net.N.gates.(v)) in
  let diags = ref [] in
  List.iter
    (fun comp ->
      let show = List.filteri (fun i _ -> i < 8) comp in
      diags :=
        D.error ~code:"NET001" ~subject
          ~loc:
            (Printf.sprintf "gates {%s%s}"
               (String.concat ", " (List.map string_of_int show))
               (if List.length comp > 8 then ", ..." else ""))
          (Printf.sprintf "combinational cycle through %d gates"
             (List.length comp))
        :: !diags)
    (cyclic_sccs ~n ~succ);
  let seen_outputs = Hashtbl.create 16 in
  Array.iter
    (fun (name, _) ->
      if Hashtbl.mem seen_outputs name then
        diags :=
          D.error ~code:"NET003" ~subject
            ~loc:(Printf.sprintf "output %s" name)
            "primary output declared more than once (multiply-driven net)"
          :: !diags
      else Hashtbl.add seen_outputs name ())
    net.N.outputs;
  let cone =
    fanin_cone net (Array.to_list (Array.map snd net.N.outputs))
  in
  Array.iteri
    (fun g gate ->
      if not cone.(g) then
        match gate with
        | N.Input name ->
          diags :=
            D.info ~code:"NET004" ~subject
              ~loc:(Printf.sprintf "input %s" name)
              "no primary output depends on this input"
            :: !diags
        | N.Const _ -> ()
        | _ ->
          diags :=
            D.warning ~code:"NET002" ~subject
              ~loc:(Printf.sprintf "gate %d" g)
              "floating: outside every primary-output cone (dead logic)"
            :: !diags)
    net.N.gates;
  !diags

let pass =
  {
    Pass.name = "net-graph";
    doc =
      "signal dependency graph: combinational cycles, floating gates, \
       multiply-driven outputs, dead inputs, and the fig. 4 \
       pipeline-property prover (NET001-NET004, NET010/NET011)";
    run =
      (fun ctx ->
        List.concat_map
          (fun { Context.net_label; netlist; feedback_free } ->
            let subject = Context.subject ctx net_label in
            structure ~subject netlist
            @ prove_pipeline ~subject ~required:feedback_free netlist)
          ctx.Context.netlists);
  }
