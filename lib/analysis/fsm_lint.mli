(** FSM lint: structural hygiene of the specification machine and of raw
    KISS2 transition tables.

    Diagnostic codes (stable):
    - [FSM001] warning: state unreachable from reset;
    - [FSM002] warning: residual equivalent states (the table is not
      reduced; {!Stc_fsm.Equiv.minimize} would shrink it);
    - [FSM003] note: input symbol whose next-state and output columns
      duplicate an earlier symbol's (common after don't-care expansion
      of KISS2 rows, hence only a note);
    - [FSM004] note: output symbol never emitted;
    - [FSM005] error: nondeterministic KISS2 table - two rows give the
      same (state, input minterm) conflicting successors or outputs;
    - [FSM006] warning: incomplete KISS2 table - (state, minterm) pairs
      left unspecified (the parser completes them by policy);
    - [FSM007] note: machine is not strongly connected (relevant to
      test-sequence arguments in the BIST literature). *)

(** The machine-level pass, run on {!Context.t.machine}. *)
val pass : Pass.t

(** [lint_machine ~subject m] is the pass body on an explicit machine. *)
val lint_machine : subject:string -> Stc_fsm.Machine.t -> Diagnostic.t list

(** [lint_kiss ~subject text] scans raw KISS2 [text] without building a
    machine: tolerant of the defects {!Stc_fsm.Kiss.parse} rejects, it
    reports FSM005 / FSM006 (and parse-level problems as errors with
    code [FSM005]). *)
val lint_kiss : subject:string -> string -> Diagnostic.t list
