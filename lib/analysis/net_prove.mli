(** SAT-backed pipeline-property proofs.

    {!Netgraph.prove_pipeline} reasons structurally: a register is
    flagged when its next-state fanin cone {e contains} one of its own
    output nets.  This pass proves the functional property instead: a
    register [R] feeds back iff its next state {e functionally depends}
    on [R]'s own value — there exist two input assignments, equal
    everywhere except on one of [R]'s bits, for which some next-state
    bit differs.

    The miter holds two copies of the netlist plus per-input
    equality/inequality guard literals and a per-register selector
    clause over the next-state XOR differences, so the whole pass is
    one incremental solver with one [solve] call per
    (register, register bit) — the assumption API's intended pattern.

    Diagnostic codes (shared with the structural prover, upgraded):
    - [NET010]: SAT-proven combinational feedback, with an input
      witness (error iff the netlist must be feedback-free);
    - [NET011] note: SAT certificate — no register feeds back
      (emitted only on netlists that require the property);
    - [NET012] note: a structural feedback path exists but is
      functionally inert (the next state is independent of the
      register's own value) — structurally flagged, SAT-exonerated. *)

(** [check ~subject ~required net] proves the property for every
    named register with a next-state net (generator-loaded registers
    are skipped). *)
val check :
  subject:string -> required:bool -> Stc_netlist.Netlist.t ->
  Diagnostic.t list

(** The registered pass (name ["net-prove"]): {!check} over every
    context netlist target, [required] from
    {!Context.netlist_target.feedback_free}. *)
val pass : Pass.t
