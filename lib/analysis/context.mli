(** The unit of analysis: one specification machine together with the
    synthesized artifacts every pass may want to inspect - the pipeline
    realization of Theorem 1, the minimized two-level blocks, and the
    gate-level structures of figs. 1 and 4.

    Building a context runs the OSTR solver (sequentially, [jobs = 1],
    so the chosen optimum - and therefore every downstream diagnostic -
    is deterministic), extracts and minimizes the C1 / C2 / Lambda
    covers, and instantiates the fig. 1 and fig. 4 netlists through
    {!Stc_faultsim.Arch}, the same construction the fault simulator
    grades. *)

(** A two-level block: specification on/dc-sets plus the minimized
    implementation cover, as handed to the netlist emitter. *)
type block = {
  block_label : string;  (** ["c1"], ["c2"], ["lambda"] *)
  on : Stc_logic.Cover.t;
  dc : Stc_logic.Cover.t;
  minimized : Stc_logic.Cover.t;
}

(** A gate-level structure to analyze.  [feedback_free] marks netlists
    that the pipeline-property prover must certify (the fig. 4
    realization); on netlists with [feedback_free = false] a detected
    register feedback path is reported as a note, not an error. *)
type netlist_target = {
  net_label : string;  (** ["fig4"], ["fig1"], ["fig2"], ["fig3"] *)
  netlist : Stc_netlist.Netlist.t;
  feedback_free : bool;
}

type t = {
  name : string;  (** machine name, the subject prefix of diagnostics *)
  machine : Stc_fsm.Machine.t;
  realization : Stc_core.Realization.t;
  blocks : block list;
  netlists : netlist_target list;
  pass_jobs : int;
      (** domain budget for passes that parallelize internally (the
          per-fault SAT proofs).  Every consumer is jobs-invariant, so
          diagnostics stay deterministic. *)
}

(** [of_machine ?timeout ?conventional ?all_archs ?jobs machine]
    synthesizes the decomposed realization and packages every artifact.
    [timeout] (default 120 s) bounds the OSTR search.  [conventional]
    (default [false]) additionally builds the fig. 1 structure for
    comparison - expensive on large machines (the monolithic block C of
    [tbk] takes minutes in the espresso loop), hence opt-in.
    [all_archs] (default [false]) also instantiates the fig. 2 and
    fig. 3 BIST structures, so the verification passes can certify all
    four architectures.  [jobs] (default 1) is stored as [pass_jobs];
    the OSTR search itself always runs sequentially for determinism. *)
val of_machine :
  ?timeout:float -> ?conventional:bool -> ?all_archs:bool -> ?jobs:int ->
  Stc_fsm.Machine.t -> t

(** [of_realization ?conventional ?all_archs ?jobs realization]
    packages an existing realization without re-running the solver
    (used by drivers that already solved). *)
val of_realization :
  ?conventional:bool -> ?all_archs:bool -> ?jobs:int ->
  Stc_core.Realization.t -> t

(** [subject ctx label] is the diagnostic subject ["name/label"] for a
    sub-artifact, or just [name] when [label] is empty. *)
val subject : t -> string -> string
