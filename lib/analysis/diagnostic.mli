(** Diagnostics: the currency of the static-analysis framework.

    Every lint / verification pass reports findings as a list of
    diagnostics with a stable machine-readable code (documented in the
    README "Static analysis" section), a severity, the subject it was
    found on (machine, cover block or netlist name) and a short location
    string ("state s3", "cube 4", "gate 17").

    Diagnostics are value types with a total order; {!sort} orders them
    by (subject, code, location, message) and drops duplicates, so a
    report rendered from sorted diagnostics is byte-stable across runs
    regardless of pass scheduling. *)

type severity = Error | Warning | Info

type t = {
  code : string;  (** stable identifier, e.g. ["FSM001"] *)
  severity : severity;
  subject : string;  (** machine / block / netlist the finding is on *)
  loc : string;  (** human-readable location inside the subject *)
  message : string;
}

(** [make ~code ~severity ~subject ~loc message] builds a diagnostic. *)
val make :
  code:string -> severity:severity -> subject:string -> loc:string -> string -> t

val error : code:string -> subject:string -> loc:string -> string -> t

val warning : code:string -> subject:string -> loc:string -> string -> t

val info : code:string -> subject:string -> loc:string -> string -> t

val severity_to_string : severity -> string

(** [compare] orders by (subject, code, loc, message); severity never
    disagrees for equal codes. *)
val compare : t -> t -> int

(** [sort diags] sorts by {!compare} and removes exact duplicates -
    the canonical report order. *)
val sort : t list -> t list

(** [count severity diags] counts the diagnostics of the given
    severity. *)
val count : severity -> t list -> int

(** [max_severity diags] is the worst severity present, if any. *)
val max_severity : t list -> severity option

(** [fails ~werror diags] holds when the report should make the run exit
    nonzero: any error, or any warning when [werror]. *)
val fails : werror:bool -> t list -> bool

(** [pp] prints ["severity[CODE] subject: loc: message"] - plain ASCII,
    no styling, so rendered reports are byte-comparable. *)
val pp : Format.formatter -> t -> unit

val to_string : t -> string

(** [pp_report fmt diags] prints sorted diagnostics one per line followed
    by a summary line ["N errors, M warnings, K notes"]. *)
val pp_report : Format.formatter -> t list -> unit

val to_json : t -> Stc_obs.Json.t

(** [report_to_json ~subject diags] is the machine-readable report:
    [{ "machine": ..., "diagnostics": [...],
       "summary": {"errors": n, "warnings": m, "infos": k} }].
    Diagnostics are sorted. *)
val report_to_json : subject:string -> t list -> Stc_obs.Json.t
