(* Untestable-fault diagnostics on every netlist target: RED001 per
   collapsed fault class proven redundant, RED002 per-netlist summary.
   The heavy lifting is Stc_sat.Prove.redundant; this pass renders its
   verdict as diagnostics, while faultcov consumers call Prove directly
   for the adjusted-coverage arithmetic. *)

module N = Stc_netlist.Netlist
module Prove = Stc_sat.Prove
module D = Diagnostic

let fault_loc (f : N.fault) =
  Printf.sprintf "gate %d%s s-a-%d" f.N.gate
    (match f.N.pin with None -> "" | Some k -> Printf.sprintf " pin %d" k)
    (Bool.to_int f.N.stuck_at)

let check ~subject ?jobs net =
  let v = Prove.redundant ?jobs net in
  let per_fault =
    List.map
      (fun f ->
        D.info ~code:"RED001" ~subject ~loc:(fault_loc f)
          "proven untestable: no input assignment propagates the fault to \
           an observed output")
      v.Prove.redundant
  in
  D.info ~code:"RED002" ~subject ~loc:"faults"
    (Printf.sprintf
       "%d of %d raw faults untestable (%d of %d collapsed classes, %d \
        unobservable without a SAT call); excluded from the coverage \
        denominator"
       (List.length v.Prove.redundant)
       v.Prove.total_faults v.Prove.redundant_classes v.Prove.total_classes
       v.Prove.unobservable_classes)
  :: per_fault

let pass =
  {
    Pass.name = "sat-redundant";
    doc =
      "per-fault good-vs-faulty SAT miters: prove collapsed fault classes \
       untestable and report the redundant-fault list (RED001-RED002)";
    run =
      (fun ctx ->
        List.concat_map
          (fun t ->
            let subject = Context.subject ctx t.Context.net_label in
            check ~subject ~jobs:ctx.Context.pass_jobs t.Context.netlist)
          ctx.Context.netlists);
  }
