(* SAT-backed pipeline-property prover.

   Netgraph's NET010/NET011 reason structurally: a register is flagged
   when its next-state cone merely *contains* one of its own output
   nets.  This pass upgrades the property to a functional proof: a
   register R genuinely feeds back iff there are two input assignments,
   equal everywhere except on one of R's output bits, on which some bit
   of R's next state differs - i.e. the next state *functionally
   depends* on R's own value.

   The miter holds two copies A/B of the netlist.  Per primary input k,
   guard literals [eq_k] (force A = B) and [neq_k] (force A <> B); per
   register, a selector literal whose clause demands some next-state
   bit to differ.  One incremental solve per (register, register bit)
   under the assumptions [sel_R; neq_bit; eq_everything_else] - the
   assumption API exists precisely for this query pattern. *)

module N = Stc_netlist.Netlist
module Solver = Stc_sat.Solver
module Cnf = Stc_sat.Cnf
module D = Diagnostic

type dependence = {
  dep_reg : string;
  dep_bit : string;  (** name of the register output net the state depends on *)
  dep_witness : string;  (** A-side input assignment, creation order *)
}

let prove ~subject ~required (net : N.t) =
  let regs =
    List.filter (fun r -> r.Netgraph.next <> []) (Netgraph.registers net)
  in
  if regs = [] then []
  else begin
    let n_in = Array.length net.N.inputs in
    let pos_of_gate = Hashtbl.create 16 in
    Array.iteri (fun k g -> Hashtbl.replace pos_of_gate g k) net.N.inputs;
    let input_name g =
      match net.N.gates.(g) with N.Input n -> n | _ -> assert false
    in
    let s = Solver.create () in
    let xa = Cnf.fresh_inputs s n_in in
    let xb = Cnf.fresh_inputs s n_in in
    let la = Cnf.add_netlist s net ~inputs:xa in
    let lb = Cnf.add_netlist s net ~inputs:xb in
    let eq = Array.make n_in 0 and neq = Array.make n_in 0 in
    for k = 0 to n_in - 1 do
      let e = Solver.pos (Solver.new_var s) in
      let d = Solver.pos (Solver.new_var s) in
      let na = Solver.negate xa.(k) and nb = Solver.negate xb.(k) in
      Solver.add_clause s [ Solver.negate e; na; xb.(k) ];
      Solver.add_clause s [ Solver.negate e; xa.(k); nb ];
      Solver.add_clause s [ Solver.negate d; xa.(k); xb.(k) ];
      Solver.add_clause s [ Solver.negate d; na; nb ];
      eq.(k) <- e;
      neq.(k) <- d
    done;
    let structural =
      (* the structural verdict, for NET012: does the next-state cone
         even contain one of R's own output nets? *)
      fun r ->
        let cone = Netgraph.fanin_cone net r.Netgraph.next in
        List.exists (fun g -> cone.(g)) r.Netgraph.inputs
    in
    List.concat_map
      (fun r ->
        let sel = Solver.pos (Solver.new_var s) in
        let diffs =
          List.map (fun g -> Cnf.mk_xor s la.(g) lb.(g)) r.Netgraph.next
        in
        Solver.add_clause s (Solver.negate sel :: diffs);
        let dependence =
          List.find_map
            (fun g ->
              let bit =
                match Hashtbl.find_opt pos_of_gate g with
                | Some k -> k
                | None -> assert false
              in
              let assumptions =
                sel :: neq.(bit)
                :: List.filteri (fun k _ -> k <> bit) (Array.to_list eq)
              in
              match Solver.solve ~assumptions s with
              | Solver.Sat ->
                Some
                  {
                    dep_reg = r.Netgraph.reg_name;
                    dep_bit = input_name g;
                    dep_witness =
                      String.init n_in (fun k ->
                          if Solver.value s xa.(k) then '1' else '0');
                  }
              | Solver.Unsat -> None)
            r.Netgraph.inputs
        in
        (* retire this register's selector before moving on *)
        Solver.add_clause s [ Solver.negate sel ];
        match dependence with
        | Some d ->
          let message =
            Printf.sprintf
              "SAT-proven combinational feedback: next state of %s depends \
               on its own bit %s (witness inputs %s, flipped bit changes \
               the next state)"
              d.dep_reg d.dep_bit d.dep_witness
          in
          [
            (if required then
               D.error ~code:"NET010" ~subject ~loc:d.dep_reg message
             else D.info ~code:"NET010" ~subject ~loc:d.dep_reg message);
          ]
        | None ->
          if structural r then
            [
              D.info ~code:"NET012" ~subject ~loc:r.Netgraph.reg_name
                (Printf.sprintf
                   "structural path from %s through its next-state logic \
                    is functionally inert: SAT proves the next state \
                    independent of the register's own value"
                   r.Netgraph.reg_name);
            ]
          else [])
      regs
  end

(* Wrap [prove] so the NET011 certificate can look at the whole result. *)
let check ~subject ~required net =
  let diags = prove ~subject ~required net in
  let has_feedback =
    List.exists (fun d -> d.D.code = "NET010") diags
  in
  if required && not has_feedback then
    diags
    @ [
        D.info ~code:"NET011" ~subject ~loc:"registers"
          (Printf.sprintf
             "pipeline property SAT-certified: no register of %s \
              combinationally feeds back into itself"
             net.N.name);
      ]
  else diags

let pass =
  {
    Pass.name = "net-prove";
    doc =
      "SAT-backed pipeline-property proofs: functional register feedback \
       (NET010), SAT certificate (NET011), functionally inert structural \
       paths (NET012)";
    run =
      (fun ctx ->
        List.concat_map
          (fun t ->
            let subject = Context.subject ctx t.Context.net_label in
            check ~subject ~required:t.Context.feedback_free
              t.Context.netlist)
          ctx.Context.netlists);
  }
