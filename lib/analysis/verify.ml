let builtin = [ Cec.pass; Net_prove.pass; Sat_redundant.pass ]

let () = List.iter Pass.register builtin

let names = List.map (fun p -> p.Pass.name) builtin

let select_name keep p = List.mem p.Pass.name keep

let run ?(select = names) ctx =
  let unknown = List.filter (fun n -> not (List.mem n names)) select in
  (match unknown with
  | [] -> ()
  | n :: _ ->
    invalid_arg (Printf.sprintf "Verify.run: unknown verification pass %S" n));
  Pass.run_all ~jobs:1 ~select:(select_name select) ctx
