(** Cover lint: correctness and redundancy checks on two-level covers,
    in particular on {!Stc_logic.Minimize} output against its on/dc
    specification.

    Diagnostic codes (stable):
    - [COV001] error: a cube asserts an output on a minterm of the
      off-set - overlapping/conflicting implementation, the minimized
      block computes a wrong value;
    - [COV002] error: a care on-set minterm is left uncovered - the
      block drops a required 1;
    - [COV003] warning: redundant cube (the rest of the cover plus the
      don't-care set already covers it);
    - [COV004] warning: cube contained in another single cube;
    - [COV005] warning: duplicate cube;
    - [COV006] note: the redundancy analysis (COV003-COV005, quadratic
      in cubes) was truncated to the first {!redundancy_limit} cubes;
      the note names the number of cubes left unanalyzed, and the
      COV001/COV002 correctness checks still cover the whole block. *)

(** Cube-count budget past which the pass truncates the quadratic
    redundancy analysis (with a COV006 note naming the skipped cube
    count). *)
val redundancy_limit : int

(** The context pass: checks every synthesized block
    ({!Context.t.blocks}) against its on/dc specification. *)
val pass : Pass.t

(** [check_block ~subject ~on ~dc result] verifies the implementation
    cover [result] against specification [(on, dc)]: COV001/COV002. *)
val check_block :
  subject:string ->
  on:Stc_logic.Cover.t ->
  dc:Stc_logic.Cover.t ->
  Stc_logic.Cover.t ->
  Diagnostic.t list

(** [check_redundancy ~subject ?dc ?limit cover] reports
    COV003/COV004/COV005 on a standalone cover; with [limit] only the
    first [limit] cubes participate (the truncated budget mode). *)
val check_redundancy :
  subject:string -> ?dc:Stc_logic.Cover.t -> ?limit:int ->
  Stc_logic.Cover.t -> Diagnostic.t list
