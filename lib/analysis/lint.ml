module Kiss = Stc_fsm.Kiss
module D = Diagnostic

let builtin = [ Fsm_lint.pass; Cover_lint.pass; Netgraph.pass; Scoap.pass ]

let () = List.iter Pass.register builtin

(* Only the lint builtins: the verification passes (Verify.builtin)
   live in the same registry but are SAT-heavy and have their own
   driver, so `ostr lint` output is unchanged by their registration. *)
let names = List.map (fun p -> p.Pass.name) builtin

let run ?jobs ctx =
  Pass.run_all ?jobs ~select:(fun p -> List.mem p.Pass.name names) ctx

let lint_machine ?timeout ?conventional ?jobs machine =
  let ctx = Context.of_machine ?timeout ?conventional machine in
  (ctx, run ?jobs ctx)

let lint_kiss_text ?timeout ?conventional ?jobs ~name text =
  let raw = Fsm_lint.lint_kiss ~subject:name text in
  match Kiss.parse ~name ~on_missing:`Self_loop text with
  | exception Kiss.Parse_error { Kiss.line; message } ->
    ( None,
      D.sort
        (D.error ~code:"FSM005" ~subject:name
           ~loc:(Printf.sprintf "line %d" line)
           (Printf.sprintf "unparseable KISS2: %s" message)
        :: raw) )
  | machine ->
    let ctx, diags = lint_machine ?timeout ?conventional ?jobs machine in
    (Some ctx, D.sort (raw @ diags))
