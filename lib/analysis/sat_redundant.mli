(** Untestable-fault proofs as an analysis pass.

    Wraps {!Stc_sat.Prove.redundant} over every netlist target:
    - [RED001] note per raw fault proven untestable (no input assignment
      propagates it to an observed output - UNSAT miter);
    - [RED002] note per netlist: summary counts, including how many
      classes were settled structurally (empty observed cone).

    The redundant list is deterministic and jobs-invariant, so these
    reports are stable across [--jobs] settings. *)

(** [fault_loc f] is the stable location string of a fault
    (["gate 12 pin 1 s-a-0"]). *)
val fault_loc : Stc_netlist.Netlist.fault -> string

(** [check ~subject ?jobs net] runs the prover on one netlist. *)
val check :
  subject:string -> ?jobs:int -> Stc_netlist.Netlist.t -> Diagnostic.t list

(** The registered pass (name ["sat-redundant"]). *)
val pass : Pass.t
