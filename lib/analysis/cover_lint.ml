module Cover = Stc_logic.Cover
module Cube = Stc_logic.Cube
module D = Diagnostic

let check_block ~subject ~on ~dc result =
  let care = Cover.union on dc in
  let diags = ref [] in
  (* Off-set conflicts (COV001): a result cube asserts an output on an
     off-set minterm iff it meets some cube of the complement of the
     specification on a shared output.  One complement up front, then a
     pair of allocation-free word tests per (result cube, off cube) -
     the previous per-cube [covers_cube] calls redid the same Shannon
     recursion once per result cube. *)
  let off = Cover.complement care in
  Array.iteri
    (fun k cube ->
      let conflicts =
        Array.exists
          (fun r -> Cube.output_overlap cube r && not (Cube.disjoint cube r))
          off.Cover.cubes
      in
      if conflicts then
        diags :=
          D.error ~code:"COV001" ~subject
            ~loc:(Printf.sprintf "cube %d" k)
            (Printf.sprintf
               "%s asserts an output on off-set minterms (conflicts with \
                the specification)"
               (Cube.to_string cube))
          :: !diags)
    result.Cover.cubes;
  let result_dc = Cover.union result dc in
  Array.iteri
    (fun k cube ->
      if not (Cover.covers_cube result_dc cube) then
        diags :=
          D.error ~code:"COV002" ~subject
            ~loc:(Printf.sprintf "on-cube %d" k)
            (Printf.sprintf "care on-set minterms of %s are uncovered"
               (Cube.to_string cube))
          :: !diags)
    on.Cover.cubes;
  !diags

let check_redundancy ~subject ?dc ?limit cover =
  let cubes = cover.Cover.cubes in
  let n =
    match limit with
    | None -> Array.length cubes
    | Some l -> min l (Array.length cubes)
  in
  let diags = ref [] in
  for j = 0 to n - 1 do
    (* Duplicate / single-cube containment against earlier cubes.  Note
       equality is reported once (COV005) and not doubled as COV004. *)
    let rec scan i =
      if i < n then
        if i = j then scan (i + 1)
        else if Cube.equal cubes.(i) cubes.(j) then begin
          if i < j then
            diags :=
              D.warning ~code:"COV005" ~subject
                ~loc:(Printf.sprintf "cube %d" j)
                (Printf.sprintf "duplicates cube %d (%s)" i
                   (Cube.to_string cubes.(j)))
              :: !diags
        end
        else if Cube.contains cubes.(i) cubes.(j) then
          diags :=
            D.warning ~code:"COV004" ~subject
              ~loc:(Printf.sprintf "cube %d" j)
              (Printf.sprintf "%s is contained in cube %d (%s)"
                 (Cube.to_string cubes.(j)) i
                 (Cube.to_string cubes.(i)))
            :: !diags
        else scan (i + 1)
    in
    scan 0;
    (* Redundancy against the rest of the (budgeted) cover, plus
       don't-cares. *)
    let rest =
      Cover.make ~num_vars:cover.Cover.num_vars
        ~num_outputs:cover.Cover.num_outputs
        (List.filteri
           (fun i _ -> i <> j && i < n)
           (Array.to_list cubes))
    in
    let rest = match dc with None -> rest | Some d -> Cover.union rest d in
    if Cover.size rest > 0 && Cover.covers_cube rest cubes.(j) then
      diags :=
        D.warning ~code:"COV003" ~subject
          ~loc:(Printf.sprintf "cube %d" j)
          (Printf.sprintf "redundant: the rest of the cover already covers %s"
             (Cube.to_string cubes.(j)))
        :: !diags
  done;
  !diags

(* The redundancy analysis is quadratic in cubes (a tautology check per
   cube against the rest of the cover); past this size it stops being a
   lint and starts being a batch job, so it is skipped with an explicit
   note rather than silently hanging the run.  With the packed engine
   and its memoized tautology recursion the budget is 4x what the
   trit-array engine could afford. *)
let redundancy_limit = 4096

let pass =
  {
    Pass.name = "cover-lint";
    doc =
      "minimized blocks vs. their on/dc specification: off-set conflicts, \
       uncovered minterms, redundant / contained / duplicate cubes \
       (COV001-COV006)";
    run =
      (fun ctx ->
        List.concat_map
          (fun { Context.block_label; on; dc; minimized } ->
            let subject = Context.subject ctx block_label in
            let redundancy =
              let n = Cover.size minimized in
              if n > redundancy_limit then
                D.info ~code:"COV006" ~subject ~loc:"cover"
                  (Printf.sprintf
                     "redundancy analysis truncated to the first %d of %d \
                      cubes: %d cubes skipped (correctness checks still \
                      cover the whole block)"
                     redundancy_limit n (n - redundancy_limit))
                :: check_redundancy ~subject ~dc ~limit:redundancy_limit
                     minimized
              else check_redundancy ~subject ~dc minimized
            in
            check_block ~subject ~on ~dc minimized @ redundancy)
          ctx.Context.blocks);
  }
