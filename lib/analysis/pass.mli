(** Pass registry of the static-analysis framework.

    A pass is a named, documented analysis over a {!Context.t} returning
    diagnostics.  Passes register themselves (idempotently, keyed by
    name); {!run_all} executes every registered pass in name order, each
    one bracketed by an [Stc_obs.Trace] span and counted into the
    [lint.*] metrics, and returns the sorted, deduplicated union of
    their findings - so reports are deterministic regardless of
    registration order. *)

type t = {
  name : string;  (** unique, e.g. ["fsm-lint"] *)
  doc : string;  (** one-line description for [--list-passes] *)
  run : Context.t -> Diagnostic.t list;
}

(** [register pass] adds [pass] to the registry; re-registering a name
    replaces the previous pass. *)
val register : t -> unit

(** [find name] looks a pass up. *)
val find : string -> t option

(** [all ()] lists registered passes sorted by name. *)
val all : unit -> t list

(** [run_all ?select ?jobs ctx] runs the selected passes (default: all)
    in name order and returns {!Diagnostic.sort} of their combined
    output.  With [jobs > 1] the passes fan out over that many domains
    ({!Stc_util.Parallel.map_range}); results are merged in name order
    before sorting, so the report is byte-identical to the sequential
    run. *)
val run_all : ?select:(t -> bool) -> ?jobs:int -> Context.t -> Diagnostic.t list
