module N = Stc_netlist.Netlist
module D = Diagnostic

let inf = max_int / 4

let ( ++ ) a b = if a >= inf || b >= inf then inf else a + b

let min3 a b c = min a (min b c)

type t = { cc0 : int array; cc1 : int array; co : int array }

let analyze (net : N.t) =
  let n = N.num_gates net in
  let cc0 = Array.make n inf and cc1 = Array.make n inf in
  let co = Array.make n inf in
  (* Forward pass: controllability in topological (= storage) order. *)
  Array.iteri
    (fun g gate ->
      let z, o =
        match gate with
        | N.Input _ -> (1, 1)
        | N.Const true -> (inf, 1)
        | N.Const false -> (1, inf)
        | N.Buf x -> (cc0.(x) ++ 1, cc1.(x) ++ 1)
        | N.Not x -> (cc1.(x) ++ 1, cc0.(x) ++ 1)
        | N.And xs ->
          ( Array.fold_left (fun acc x -> min acc cc0.(x)) inf xs ++ 1,
            Array.fold_left (fun acc x -> acc ++ cc1.(x)) 0 xs ++ 1 )
        | N.Or xs ->
          ( Array.fold_left (fun acc x -> acc ++ cc0.(x)) 0 xs ++ 1,
            Array.fold_left (fun acc x -> min acc cc1.(x)) inf xs ++ 1 )
        | N.Xor xs ->
          (* Parity DP: cheapest way to set the inputs to even / odd
             parity. *)
          let p0, p1 =
            Array.fold_left
              (fun (p0, p1) x ->
                ( min (p0 ++ cc0.(x)) (p1 ++ cc1.(x)),
                  min (p0 ++ cc1.(x)) (p1 ++ cc0.(x)) ))
              (0, inf) xs
          in
          (p0 ++ 1, p1 ++ 1)
        | N.Mux { sel; a; b } ->
          ( min (cc0.(sel) ++ cc0.(a)) (cc1.(sel) ++ cc0.(b)) ++ 1,
            min (cc0.(sel) ++ cc1.(a)) (cc1.(sel) ++ cc1.(b)) ++ 1 )
      in
      cc0.(g) <- z;
      cc1.(g) <- o)
    net.N.gates;
  (* Backward pass: observability.  Primary outputs are free; each use
     site offers one propagation path, the cheapest wins. *)
  Array.iter (fun (_, g) -> co.(g) <- 0) net.N.outputs;
  for g = n - 1 downto 0 do
    let offer x cost = if cost < co.(x) then co.(x) <- cost in
    (match net.N.gates.(g) with
    | N.Input _ | N.Const _ -> ()
    | N.Buf x | N.Not x -> offer x (co.(g) ++ 1)
    | N.And xs ->
      Array.iteri
        (fun k x ->
          let side = ref 0 in
          Array.iteri (fun j y -> if j <> k then side := !side ++ cc1.(y)) xs;
          offer x (co.(g) ++ !side ++ 1))
        xs
    | N.Or xs ->
      Array.iteri
        (fun k x ->
          let side = ref 0 in
          Array.iteri (fun j y -> if j <> k then side := !side ++ cc0.(y)) xs;
          offer x (co.(g) ++ !side ++ 1))
        xs
    | N.Xor xs ->
      Array.iteri
        (fun k x ->
          let side = ref 0 in
          Array.iteri
            (fun j y -> if j <> k then side := !side ++ min cc0.(y) cc1.(y))
            xs;
          offer x (co.(g) ++ !side ++ 1))
        xs
    | N.Mux { sel; a; b } ->
      (* Observing sel needs the two data inputs to differ. *)
      offer sel
        (co.(g) ++ min3 (cc0.(a) ++ cc1.(b)) (cc1.(a) ++ cc0.(b)) inf ++ 1);
      offer a (co.(g) ++ cc0.(sel) ++ 1);
      offer b (co.(g) ++ cc1.(sel) ++ 1));
    ()
  done;
  { cc0; cc1; co }

type summary = {
  nets : int;
  cc0_max : int;
  cc1_max : int;
  co_max : int;
  cc0_mean : float;
  cc1_mean : float;
  co_mean : float;
  uncontrollable : int;
  unobservable : int;
}

let summarize (net : N.t) { cc0; cc1; co } =
  let nets = ref 0 in
  let uncontrollable = ref 0 and unobservable = ref 0 in
  let acc = Array.make 3 0 and cnt = Array.make 3 0 and mx = Array.make 3 0 in
  let feed k v =
    if v < inf then begin
      acc.(k) <- acc.(k) + v;
      cnt.(k) <- cnt.(k) + 1;
      if v > mx.(k) then mx.(k) <- v
    end
  in
  Array.iteri
    (fun g gate ->
      match gate with
      | N.Const _ -> ()
      | _ ->
        incr nets;
        feed 0 cc0.(g);
        feed 1 cc1.(g);
        feed 2 co.(g);
        if cc0.(g) >= inf || cc1.(g) >= inf then incr uncontrollable;
        if co.(g) >= inf then incr unobservable)
    net.N.gates;
  let mean k = if cnt.(k) = 0 then 0.0 else float_of_int acc.(k) /. float_of_int cnt.(k) in
  {
    nets = !nets;
    cc0_max = mx.(0);
    cc1_max = mx.(1);
    co_max = mx.(2);
    cc0_mean = mean 0;
    cc1_mean = mean 1;
    co_mean = mean 2;
    uncontrollable = !uncontrollable;
    unobservable = !unobservable;
  }

let summary_to_string s =
  Printf.sprintf
    "SCOAP over %d nets: CC0 max %d mean %.1f, CC1 max %d mean %.1f, CO \
     max %d mean %.1f, uncontrollable %d, unobservable %d"
    s.nets s.cc0_max s.cc0_mean s.cc1_max s.cc1_mean s.co_max s.co_mean
    s.uncontrollable s.unobservable

let pp_summary fmt s = Format.pp_print_string fmt (summary_to_string s)

let pass =
  {
    Pass.name = "scoap";
    doc =
      "SCOAP CC0/CC1 controllability and CO observability per net, \
       summarized per netlist (SCP001, SCP002)";
    run =
      (fun ctx ->
        List.concat_map
          (fun { Context.net_label; netlist; feedback_free = _ } ->
            let subject = Context.subject ctx net_label in
            let r = analyze netlist in
            let s = summarize netlist r in
            let hard =
              let cone =
                Netgraph.fanin_cone netlist
                  (Array.to_list (Array.map snd netlist.N.outputs))
              in
              let out = ref [] in
              Array.iteri
                (fun g gate ->
                  match gate with
                  | N.Const _ -> ()
                  | _ ->
                    if
                      cone.(g)
                      && (r.cc0.(g) >= inf || r.cc1.(g) >= inf
                        || r.co.(g) >= inf)
                    then
                      out :=
                        D.warning ~code:"SCP002" ~subject
                          ~loc:(Printf.sprintf "gate %d" g)
                          "inside an output cone but uncontrollable or \
                           unobservable (untestable stuck-at faults)"
                        :: !out)
                netlist.N.gates;
              !out
            in
            D.info ~code:"SCP001" ~subject ~loc:"netlist"
              (summary_to_string s)
            :: hard)
          ctx.Context.netlists);
  }
