module Machine = Stc_fsm.Machine
module Ostr = Stc_core.Ostr
module Realization = Stc_core.Realization
module Tables = Stc_encoding.Tables
module Cover = Stc_logic.Cover
module Minimize = Stc_logic.Minimize
module Arch = Stc_faultsim.Arch
module Trace = Stc_obs.Trace

type block = {
  block_label : string;
  on : Cover.t;
  dc : Cover.t;
  minimized : Cover.t;
}

type netlist_target = {
  net_label : string;
  netlist : Stc_netlist.Netlist.t;
  feedback_free : bool;
}

type t = {
  name : string;
  machine : Machine.t;
  realization : Realization.t;
  blocks : block list;
  netlists : netlist_target list;
  pass_jobs : int;
}

let block label on dc =
  let minimized, _report = Minimize.minimize ~dc on in
  { block_label = label; on; dc; minimized }

let of_realization ?(conventional = false) ?(all_archs = false) ?(jobs = 1)
    (realization : Realization.t) =
  Trace.span ~cat:"lint" "lint.context" @@ fun () ->
  let machine = realization.Realization.spec in
  let p = Tables.pipeline realization in
  let c1 = block "c1" p.Tables.c1_on p.Tables.c1_dc in
  let c2 = block "c2" p.Tables.c2_on p.Tables.c2_dc in
  let lambda = block "lambda" p.Tables.lambda_on p.Tables.lambda_dc in
  let blocks = [ c1; c2; lambda ] in
  (* One simulation cycle is the cheapest the session builder allows (the
     static passes only look at the netlist structure), and handing over
     the covers minimized above skips the builder's own espresso pass. *)
  let fig4 =
    Arch.pipeline ~cycles:1
      ~covers:(c1.minimized, c2.minimized, lambda.minimized)
      p
  in
  let netlists =
    { net_label = "fig4"; netlist = fig4.Arch.netlist; feedback_free = true }
    ::
    (if conventional then
       let fig1 = Arch.conventional machine in
       [ { net_label = "fig1"; netlist = fig1.Arch.netlist; feedback_free = false } ]
     else [])
    @
    (if all_archs then
       (* one simulation cycle, as for fig. 4: only the structure is
          analyzed, the session schedules are never replayed here *)
       let fig2 = Arch.conventional_bist ~cycles:1 machine in
       let fig3 = Arch.doubled ~cycles:1 machine in
       [
         { net_label = "fig2"; netlist = fig2.Arch.netlist; feedback_free = false };
         { net_label = "fig3"; netlist = fig3.Arch.netlist; feedback_free = true };
       ]
     else [])
  in
  {
    name = machine.Machine.name;
    machine;
    realization;
    blocks;
    netlists;
    pass_jobs = max 1 jobs;
  }

let of_machine ?(timeout = 120.0) ?conventional ?all_archs ?jobs machine =
  (* solver jobs = 1: the sequential search is deterministic, so
     equally-optimal partition pairs cannot race and flip downstream
     diagnostics.  [jobs] only feeds [pass_jobs], whose consumers are
     jobs-invariant. *)
  let outcome = Ostr.run ~timeout ~jobs:1 machine in
  of_realization ?conventional ?all_archs ?jobs outcome.Ostr.realization

let subject ctx label = if label = "" then ctx.name else ctx.name ^ "/" ^ label
