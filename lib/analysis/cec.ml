(* SAT-based combinational equivalence checking.  See cec.mli for the
   codes and the modulo-dc proof obligations. *)

module Cover = Stc_logic.Cover
module Naive = Stc_logic.Naive
module N = Stc_netlist.Netlist
module Tables = Stc_encoding.Tables
module Code = Stc_encoding.Code
module Solver = Stc_sat.Solver
module Cnf = Stc_sat.Cnf
module D = Diagnostic

let naive_budget = 10.0

(* Render the model's assignment of [inputs] as a 0/1 string, variable 0
   leftmost - the witness format of every CEC error. *)
let witness s inputs =
  String.init (Array.length inputs) (fun k ->
      if Solver.value s inputs.(k) then '1' else '0')

(* Prove [impl.(o) = spec modulo dc] for every output: under the given
   extra [assumptions], SAT of [impl_o & ~on_o & ~dc_o] is an off-set
   violation, SAT of [~impl_o & on_o] a dropped care minterm.  [bad]
   renders the error diagnostic for output [o] with a witness. *)
let prove_outputs s ?(assumptions = []) ~inputs ~impl ~on_lits ~dc_lits ~bad ()
    =
  let errs = ref [] in
  Array.iteri
    (fun o impl_o ->
      (match
         Solver.solve
           ~assumptions:
             (impl_o :: Solver.negate on_lits.(o)
              :: Solver.negate dc_lits.(o) :: assumptions)
           s
       with
      | Solver.Sat ->
        errs := bad o ~off:true ~witness:(witness s inputs) :: !errs
      | Solver.Unsat -> ());
      match
        Solver.solve
          ~assumptions:(Solver.negate impl_o :: on_lits.(o) :: assumptions)
          s
      with
      | Solver.Sat ->
        errs := bad o ~off:false ~witness:(witness s inputs) :: !errs
      | Solver.Unsat -> ())
    impl;
  List.rev !errs

(* --- blocks vs. specification ---------------------------------------- *)

let check_block ~subject (b : Context.block) =
  let s = Solver.create () in
  let inputs = Cnf.fresh_inputs s b.Context.on.Cover.num_vars in
  let impl = Cnf.add_cover s b.Context.minimized ~inputs in
  let on_lits = Cnf.add_cover s b.Context.on ~inputs in
  let dc_lits = Cnf.add_cover s b.Context.dc ~inputs in
  let bad o ~off ~witness =
    if off then
      D.error ~code:"CEC001" ~subject
        ~loc:(Printf.sprintf "output %d" o)
        (Printf.sprintf
           "minimized cover asserts an off-set minterm (witness inputs %s)"
           witness)
    else
      D.error ~code:"CEC002" ~subject
        ~loc:(Printf.sprintf "output %d" o)
        (Printf.sprintf
           "minimized cover drops a care on-set minterm (witness inputs %s)"
           witness)
  in
  match prove_outputs s ~inputs ~impl ~on_lits ~dc_lits ~bad () with
  | [] ->
    [
      D.info ~code:"CEC003" ~subject ~loc:"cover"
        (Printf.sprintf
           "implementation proven equivalent to the on/dc specification \
            on all %d outputs"
           (Array.length impl));
    ]
  | errs -> errs

(* --- packed vs. naive minimizer -------------------------------------- *)

let check_naive_agreement ~subject (b : Context.block) =
  match Naive.minimize ~budget:naive_budget ~dc:b.Context.dc b.Context.on with
  | exception Naive.Timeout ->
    [
      D.info ~code:"CEC008" ~subject ~loc:"cover"
        (Printf.sprintf
           "naive reference minimization exceeded its %gs budget; the \
            packed-vs-naive agreement proof was skipped"
           naive_budget);
    ]
  | reference, _iterations ->
    let s = Solver.create () in
    let inputs = Cnf.fresh_inputs s b.Context.on.Cover.num_vars in
    let packed = Cnf.add_cover s b.Context.minimized ~inputs in
    let naive = Cnf.add_cover s reference ~inputs in
    let dc_lits = Cnf.add_cover s b.Context.dc ~inputs in
    let errs = ref [] in
    Array.iteri
      (fun o packed_o ->
        let diff = Cnf.mk_xor s packed_o naive.(o) in
        match
          Solver.solve ~assumptions:[ diff; Solver.negate dc_lits.(o) ] s
        with
        | Solver.Sat ->
          errs :=
            D.error ~code:"CEC006" ~subject
              ~loc:(Printf.sprintf "output %d" o)
              (Printf.sprintf
                 "packed and naive minimizers disagree on a care minterm \
                  (witness inputs %s)"
                 (witness s inputs))
            :: !errs
        | Solver.Unsat -> ())
      packed;
    (match List.rev !errs with
    | [] ->
      [
        D.info ~code:"CEC007" ~subject ~loc:"cover"
          (Printf.sprintf
             "packed minimizer output (%d cubes) proven equivalent to the \
              naive reference (%d cubes) modulo dc"
             (Cover.size b.Context.minimized)
             (Cover.size reference));
      ]
    | errs -> errs)

(* --- netlists vs. FSM tables ----------------------------------------- *)

(* One proof group: a slice of the netlist checked against one table
   spec.  [vars] names the Input gates in cover-variable order, [outs]
   the primary outputs in spec-output order, [fixed] pins mode inputs
   (fig. 2's [test_mode]). *)
type group = {
  g_loc : string;
  vars : string array;
  outs : string array;
  spec_on : Cover.t;
  spec_dc : Cover.t;
  fixed : (string * bool) list;
}

let names prefix n = Array.init n (fun k -> Printf.sprintf "%s%d" prefix k)

let block_with label blocks =
  List.find (fun b -> b.Context.block_label = label) blocks

let fig4_groups (ctx : Context.t) =
  let c1 = block_with "c1" ctx.Context.blocks in
  let c2 = block_with "c2" ctx.Context.blocks in
  let lambda = block_with "lambda" ctx.Context.blocks in
  let w1 = c2.Context.on.Cover.num_outputs in
  let w2 = c1.Context.on.Cover.num_outputs in
  let iw = c1.Context.on.Cover.num_vars - w1 in
  let ow = lambda.Context.on.Cover.num_outputs in
  let i = names "i" iw in
  let r1 = names "r1_" w1 in
  let r2 = names "r2_" w2 in
  [
    {
      g_loc = "c1";
      vars = Array.append i r1;
      outs = names "r2n" w2;
      spec_on = c1.Context.on;
      spec_dc = c1.Context.dc;
      fixed = [];
    };
    {
      g_loc = "c2";
      vars = Array.append i r2;
      outs = names "r1n" w1;
      spec_on = c2.Context.on;
      spec_dc = c2.Context.dc;
      fixed = [];
    };
    {
      g_loc = "lambda";
      vars = Array.concat [ i; r1; r2 ];
      outs = names "po" ow;
      spec_on = lambda.Context.on;
      spec_dc = lambda.Context.dc;
      fixed = [];
    };
  ]

(* fig. 1/2/3 all implement the monolithic conventional block C; the
   groups differ only in which register (or test) nets feed the state
   variables and which output column is checked. *)
let conventional_groups (ctx : Context.t) label =
  let enc = Tables.encode ctx.Context.machine in
  let spec_on, spec_dc = Tables.conventional enc in
  let w = enc.Tables.state_code.Code.width in
  let iw = enc.Tables.input_width in
  let ow = enc.Tables.output_width in
  let i = names "i" iw in
  let group g_loc state_prefix ~ns ~po fixed =
    {
      g_loc;
      vars = Array.append i (names state_prefix w);
      outs = Array.append (names ns w) (names po ow);
      spec_on;
      spec_dc;
      fixed;
    }
  in
  match label with
  | "fig1" -> [ group "C" "r" ~ns:"ns" ~po:"po" [] ]
  | "fig2" ->
    [
      group "functional mode" "r" ~ns:"ns" ~po:"po" [ ("test_mode", false) ];
      group "test mode" "t" ~ns:"ns" ~po:"po" [ ("test_mode", true) ];
    ]
  | "fig3" ->
    [
      group "copy A" "ra" ~ns:"nsa" ~po:"poa" [];
      group "copy B" "rb" ~ns:"nsb" ~po:"pob" [];
    ]
  | _ -> []

let check_netlist ~subject (ctx : Context.t) (t : Context.netlist_target) =
  let groups =
    match t.Context.net_label with
    | "fig4" -> fig4_groups ctx
    | label -> conventional_groups ctx label
  in
  if groups = [] then []
  else begin
    let net = t.Context.netlist in
    let s = Solver.create () in
    let in_lits = Cnf.fresh_inputs s (Array.length net.N.inputs) in
    let gate_lits = Cnf.add_netlist s net ~inputs:in_lits in
    let input_lit = Hashtbl.create 16 in
    Array.iteri
      (fun k g ->
        match net.N.gates.(g) with
        | N.Input name -> Hashtbl.replace input_lit name in_lits.(k)
        | _ -> ())
      net.N.inputs;
    let output_lit = Hashtbl.create 16 in
    Array.iter
      (fun (name, g) -> Hashtbl.replace output_lit name gate_lits.(g))
      net.N.outputs;
    let lookup table kind name =
      match Hashtbl.find_opt table name with
      | Some l -> l
      | None ->
        invalid_arg
          (Printf.sprintf "Cec.check_netlist: no %s named %S in %s" kind name
             net.N.name)
    in
    List.concat_map
      (fun g ->
        let inputs = Array.map (lookup input_lit "input") g.vars in
        let impl = Array.map (lookup output_lit "output") g.outs in
        let on_lits = Cnf.add_cover s g.spec_on ~inputs in
        let dc_lits = Cnf.add_cover s g.spec_dc ~inputs in
        let assumptions =
          List.map
            (fun (name, v) ->
              let l = lookup input_lit "input" name in
              if v then l else Solver.negate l)
            g.fixed
        in
        let bad o ~off ~witness =
          D.error ~code:"CEC004" ~subject
            ~loc:(Printf.sprintf "%s output %s" g.g_loc g.outs.(o))
            (Printf.sprintf
               "netlist %s the table specification on a care minterm \
                (witness %s inputs %s)"
               (if off then "asserts outside" else "drops a minterm of")
               g.g_loc witness)
        in
        match
          prove_outputs s ~assumptions ~inputs ~impl ~on_lits ~dc_lits ~bad ()
        with
        | [] ->
          [
            D.info ~code:"CEC005" ~subject ~loc:g.g_loc
              (Printf.sprintf
                 "netlist proven equivalent to the FSM tables on all %d %s \
                  outputs"
                 (Array.length impl) g.g_loc);
          ]
        | errs -> errs)
      groups
  end

let pass =
  {
    Pass.name = "cec";
    doc =
      "SAT equivalence proofs: minimized blocks vs. on/dc specification, \
       packed vs. naive minimizer, architecture netlists vs. FSM tables \
       (CEC001-CEC008)";
    run =
      (fun ctx ->
        List.concat_map
          (fun b ->
            let subject = Context.subject ctx b.Context.block_label in
            check_block ~subject b @ check_naive_agreement ~subject b)
          ctx.Context.blocks
        @ List.concat_map
            (fun t ->
              let subject = Context.subject ctx t.Context.net_label in
              check_netlist ~subject ctx t)
            ctx.Context.netlists);
  }
