(** Front door of the static-analysis framework: registers the built-in
    lint passes and runs them over a machine or a raw KISS2 file.

    Determinism contract: the solver inside {!Context.of_machine} runs
    sequentially, passes run in name order, and reports are sorted by
    {!Diagnostic.compare} - so for a given machine the text and JSON
    reports are byte-identical across runs and unaffected by any
    [--jobs] setting anywhere in the process ([jobs] below only
    schedules independent passes over domains; the merged report is
    re-sorted). *)

(** The built-in lint passes (fsm-lint, cover-lint, net-graph, scoap),
    in registration order.  Loading this module registers them.  The
    SAT verification passes are a separate family ({!Verify.builtin})
    and are {e not} run by {!run}. *)
val builtin : Pass.t list

(** [run ?jobs ctx] runs the lint passes (exactly {!builtin}, whatever
    else is registered); sorted diagnostics.  [jobs > 1] fans the
    passes over domains. *)
val run : ?jobs:int -> Context.t -> Diagnostic.t list

(** [lint_machine ?timeout ?conventional ?jobs machine] builds the
    context (solving OSTR, minimizing the blocks, instantiating the
    fig. 4 - and, with [conventional], fig. 1 - netlists) and runs
    every lint pass. *)
val lint_machine :
  ?timeout:float -> ?conventional:bool -> ?jobs:int -> Stc_fsm.Machine.t ->
  Context.t * Diagnostic.t list

(** [lint_kiss_text ?timeout ?conventional ?jobs ~name text] lints raw
    KISS2 text: the FSM005/FSM006 raw-table scan, plus the full machine
    pipeline when the text parses (with unspecified entries completed
    as self-loops, mirroring the scanner's warnings). *)
val lint_kiss_text :
  ?timeout:float -> ?conventional:bool -> ?jobs:int -> name:string ->
  string -> Context.t option * Diagnostic.t list
