(** Front door of the static-analysis framework: registers the built-in
    passes and runs them over a machine or a raw KISS2 file.

    Determinism contract: the solver inside {!Context.of_machine} runs
    sequentially, passes run in name order, and reports are sorted by
    {!Diagnostic.compare} - so for a given machine the text and JSON
    reports are byte-identical across runs and unaffected by any
    [--jobs] setting elsewhere in the process. *)

(** The built-in passes (fsm-lint, cover-lint, net-graph, scoap), in
    registration order.  Loading this module registers them. *)
val builtin : Pass.t list

(** [run ctx] runs every registered pass; sorted diagnostics. *)
val run : Context.t -> Diagnostic.t list

(** [lint_machine ?timeout ?conventional machine] builds the context
    (solving OSTR, minimizing the blocks, instantiating the fig. 4 -
    and, with [conventional], fig. 1 - netlists) and runs every
    pass. *)
val lint_machine :
  ?timeout:float -> ?conventional:bool -> Stc_fsm.Machine.t ->
  Context.t * Diagnostic.t list

(** [lint_kiss_text ?timeout ?conventional ~name text] lints raw KISS2
    text: the FSM005/FSM006 raw-table scan, plus the full machine
    pipeline when the text parses (with unspecified entries completed
    as self-loops, mirroring the scanner's warnings). *)
val lint_kiss_text :
  ?timeout:float -> ?conventional:bool -> name:string -> string ->
  Context.t option * Diagnostic.t list
