(** Minimal deterministic fork/join over OCaml 5 domains.

    Work items are indices [0..n-1] handed out through an atomic cursor;
    each item is processed by exactly one domain and results are written
    into index-addressed slots, so the outcome is independent of [jobs]
    as long as [f] is pure per index. *)

(** [iter_range ~jobs n f] runs [f i] for every [i] in [0..n-1] on up to
    [jobs] domains (including the calling one).  [jobs <= 1] or [n <= 1]
    degrades to a plain sequential loop with no domain spawns. *)
val iter_range : jobs:int -> int -> (int -> unit) -> unit

(** [map_range ~jobs n f ~init] collects [f i] into a fresh array
    ([init] pre-fills the slots and is returned for [n = 0]). *)
val map_range : jobs:int -> int -> (int -> 'a) -> init:'a -> 'a array
