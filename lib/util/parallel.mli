(** Deterministic fork/join over OCaml 5 domains with chunked work
    stealing.

    Work items are indices [0..n-1] handed out through an atomic cursor
    in chunks (default {!default_chunk}, capped so every domain gets at
    least a few grabs); each index is processed by exactly one domain and
    results are written into index-addressed slots, so the outcome is
    independent of [jobs] and [chunk] as long as [f] is pure per index. *)

(** Default chunk size (64): large enough that the cursor's cache line is
    touched rarely, small enough to balance uneven per-index costs. *)
val default_chunk : int

(** [iter_range ~jobs n f] runs [f i] for every [i] in [0..n-1] on up to
    [jobs] domains (including the calling one).  [jobs <= 1] or [n <= 1]
    degrades to a plain sequential loop with no domain spawns.
    [?chunk] overrides the grab size (it is still capped to keep at
    least four grabs per domain when [n] allows).
    @raise Invalid_argument when [chunk < 1]. *)
val iter_range : ?chunk:int -> jobs:int -> int -> (int -> unit) -> unit

(** [map_range ~jobs n f ~init] collects [f i] into a fresh array in
    index order ([init] pre-fills the slots and is returned for
    [n = 0]). *)
val map_range :
  ?chunk:int -> jobs:int -> int -> (int -> 'a) -> init:'a -> 'a array

(** [iter_range_local ~jobs ~local ?finish n f] is {!iter_range} with
    per-domain state: every participating domain calls [local ()] once
    before its first index, passes the result to each [f], and runs
    [finish] on it after its last grab (also on the degraded sequential
    path).  This is the hook for per-domain scratch buffers and metrics
    flushes. *)
val iter_range_local :
  ?chunk:int ->
  jobs:int ->
  local:(unit -> 's) ->
  ?finish:('s -> unit) ->
  int ->
  ('s -> int -> unit) ->
  unit
