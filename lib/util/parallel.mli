(** Deterministic fork/join over OCaml 5 domains with chunked work
    stealing.

    Work items are indices [0..n-1] handed out through an atomic cursor
    in chunks (default {!default_chunk}, capped so every domain gets at
    least a few grabs); each index is processed by exactly one domain and
    results are written into index-addressed slots, so the outcome is
    independent of [jobs] and [chunk] as long as [f] is pure per index. *)

(** Default chunk size (64): large enough that the cursor's cache line is
    touched rarely, small enough to balance uneven per-index costs. *)
val default_chunk : int

(** Per-worker utilization record, reported once per participating domain
    after its last grab (sequential degradation reports a single worker 0).
    [busy_ns] is the time spent inside [f], accumulated per chunk;
    [stop_ns - start_ns - busy_ns] is the idle share (cursor contention,
    scheduler delay, uneven tails).  [grabs] counts cursor grabs,
    [items] the indices this worker processed. *)
type worker_stats = {
  worker : int;  (** 0 = the calling domain, 1.. = spawned workers *)
  dom : int;  (** [Domain.self] of the worker *)
  start_ns : int;
  stop_ns : int;
  busy_ns : int;
  grabs : int;
  items : int;
}

(** [set_monitor (Some report)] makes every subsequent range iteration
    time its workers and call [report] once per worker, from that
    worker's own domain.  [set_monitor None] (the default) restores the
    untimed path — no clock reads.  The callback must be domain-safe.
    The observability layer installs its metrics/trace bridge here
    ([Stc_obs.Parmon.install]). *)
val set_monitor : (worker_stats -> unit) option -> unit

(** [monitor ()] is the currently installed callback. *)
val monitor : unit -> (worker_stats -> unit) option

(** [iter_range ~jobs n f] runs [f i] for every [i] in [0..n-1] on up to
    [jobs] domains (including the calling one).  [jobs <= 1] or [n <= 1]
    degrades to a plain sequential loop with no domain spawns.
    [?chunk] overrides the grab size (it is still capped to keep at
    least four grabs per domain when [n] allows).
    @raise Invalid_argument when [chunk < 1]. *)
val iter_range : ?chunk:int -> jobs:int -> int -> (int -> unit) -> unit

(** [map_range ~jobs n f ~init] collects [f i] into a fresh array in
    index order ([init] pre-fills the slots and is returned for
    [n = 0]). *)
val map_range :
  ?chunk:int -> jobs:int -> int -> (int -> 'a) -> init:'a -> 'a array

(** [iter_range_local ~jobs ~local ?finish n f] is {!iter_range} with
    per-domain state: every participating domain calls [local ()] once
    before its first index, passes the result to each [f], and runs
    [finish] on it after its last grab (also on the degraded sequential
    path).  This is the hook for per-domain scratch buffers and metrics
    flushes. *)
val iter_range_local :
  ?chunk:int ->
  jobs:int ->
  local:(unit -> 's) ->
  ?finish:('s -> unit) ->
  int ->
  ('s -> int -> unit) ->
  unit
