type t = { mutable state : int64 }

let golden_gamma = 0x9E3779B97F4A7C15L

let create seed = { state = Int64.of_int seed }

let copy t = { state = t.state }

(* SplitMix64 finalizer (Steele, Lea & Flood 2014). *)
let mix z =
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 30)) 0xBF58476D1CE4E5B9L in
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 27)) 0x94D049BB133111EBL in
  Int64.logxor z (Int64.shift_right_logical z 31)

let bits64 t =
  t.state <- Int64.add t.state golden_gamma;
  mix t.state

let split t =
  let s = bits64 t in
  { state = mix s }

(* Derived streams must not advance the parent: anytime search hands
   stream [i] to task [i] regardless of which domain runs it, so the
   stream is a pure function of (parent state, index).  Mixing twice
   decorrelates adjacent indices the same way [split] decorrelates
   sequential draws. *)
let substream t i =
  let z = Int64.add t.state (Int64.mul (Int64.of_int (i + 1)) golden_gamma) in
  { state = mix (mix z) }

let fingerprint t = Int64.to_int (mix t.state) land max_int

(* Rejection sampling over 62-bit draws: [v mod bound] alone is biased
   towards small residues whenever [bound] does not divide 2^62, so draws
   at or above the largest exact multiple of [bound] are rejected and
   redrawn.  The rejection zone is [2^62 mod bound < bound] values out of
   2^62, so for any practical bound the first draw is accepted and the
   output stream is unchanged from the pre-rejection implementation.
   2^62 itself overflows the 63-bit native int, so the remainder is
   computed in Int64; [rem = 0] (power-of-two bound) means no draw is
   ever rejected. *)
let int t bound =
  if bound <= 0 then invalid_arg "Rng.int: bound must be positive";
  let rem =
    Int64.to_int (Int64.rem (Int64.shift_left 1L 62) (Int64.of_int bound))
  in
  (* limit = 2^62 - rem = (max_int + 1) - rem, representable when rem > 0. *)
  let limit = max_int - rem + 1 in
  let rec draw () =
    let v = Int64.to_int (Int64.shift_right_logical (bits64 t) 2) in
    if rem > 0 && v >= limit then draw () else v mod bound
  in
  draw ()

let bool t = Int64.logand (bits64 t) 1L = 1L

let float t =
  let v = Int64.to_float (Int64.shift_right_logical (bits64 t) 11) in
  v /. 9007199254740992.0 (* 2^53 *)

let pick t arr =
  if Array.length arr = 0 then invalid_arg "Rng.pick: empty array";
  arr.(int t (Array.length arr))

let shuffle t arr =
  for i = Array.length arr - 1 downto 1 do
    let j = int t (i + 1) in
    let tmp = arr.(i) in
    arr.(i) <- arr.(j);
    arr.(j) <- tmp
  done

let permutation t n =
  let arr = Array.init n (fun i -> i) in
  shuffle t arr;
  arr
