(** Deterministic splittable pseudo-random number generator (SplitMix64).

    All randomized code in this project uses this generator rather than
    [Stdlib.Random] so that benchmark machines, property seeds and workload
    sweeps are reproducible bit-for-bit across runs and platforms. *)

type t

(** [create seed] returns a fresh generator.  Equal seeds yield equal
    streams. *)
val create : int -> t

(** [copy t] duplicates the generator state. *)
val copy : t -> t

(** [split t] returns a statistically independent generator and advances
    [t]. *)
val split : t -> t

(** [substream t i] derives the [i]-th of a family of statistically
    independent generators from [t]'s current state {e without} advancing
    [t].  Equal [(state, i)] pairs yield equal streams, which is what makes
    work distributed over domains by task index reproducible at any job
    count. *)
val substream : t -> int -> t

(** [fingerprint t] hashes the current stream state to a non-negative
    [int].  Two generators agree on all future draws iff their fingerprints
    were produced from equal states; used to pin per-task RNG stream state
    in determinism tests. *)
val fingerprint : t -> int

(** [bits64 t] returns the next raw 64-bit value. *)
val bits64 : t -> int64

(** [int t bound] returns a uniform integer in [\[0, bound)].  [bound] must
    be positive.  Exactly uniform: draws in the truncated-modulus tail are
    rejected and redrawn rather than folded onto small residues. *)
val int : t -> int -> int

(** [bool t] returns a uniform boolean. *)
val bool : t -> bool

(** [float t] returns a uniform float in [\[0, 1)]. *)
val float : t -> float

(** [pick t arr] returns a uniform element of [arr].  [arr] must be
    non-empty. *)
val pick : t -> 'a array -> 'a

(** [shuffle t arr] permutes [arr] in place (Fisher-Yates). *)
val shuffle : t -> 'a array -> unit

(** [permutation t n] returns a uniform permutation of [\[0..n-1\]]. *)
val permutation : t -> int -> int array
