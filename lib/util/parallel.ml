(* Chunked deterministic fork/join over OCaml 5 domains.

   The original cursor handed out one index per [Atomic.fetch_and_add];
   on fine-grained work (a partition join, one fault class) the
   cache-line ping-pong on the cursor dominated.  Chunked grabs amortize
   one atomic over [chunk] indices; the chunk size is capped so small
   ranges still spread across all domains (at least four grabs per
   domain when the range allows it). *)

let default_chunk = 64

let effective_chunk ~chunk ~jobs n =
  max 1 (min chunk ((n + (4 * jobs) - 1) / (4 * jobs)))

(* Utilization monitor.  The observability layer (which sits above this
   library, so it cannot be called directly from here) installs a
   callback; each participating domain then times its chunk loops and
   reports once after its last grab.  With no monitor installed the
   fork/join takes the exact untimed path - no clock reads at all. *)

type worker_stats = {
  worker : int;
  dom : int;
  start_ns : int;
  stop_ns : int;
  busy_ns : int;
  grabs : int;
  items : int;
}

let monitor_ref : (worker_stats -> unit) option Atomic.t = Atomic.make None

let set_monitor m = Atomic.set monitor_ref m
let monitor () = Atomic.get monitor_ref

let now_ns () = Int64.to_int (Clock.now_ns ())

let iter_range_local ?(chunk = default_chunk) ~jobs ~local ?(finish = ignore)
    n f =
  if chunk < 1 then invalid_arg "Parallel.iter_range_local: chunk < 1";
  let jobs = max 1 (min jobs n) in
  let mon = monitor () in
  if jobs <= 1 then begin
    let st = local () in
    (match mon with
    | None ->
      for i = 0 to n - 1 do
        f st i
      done
    | Some report ->
      let start_ns = now_ns () in
      for i = 0 to n - 1 do
        f st i
      done;
      let stop_ns = now_ns () in
      report
        {
          worker = 0;
          dom = (Domain.self () :> int);
          start_ns;
          stop_ns;
          busy_ns = stop_ns - start_ns;
          grabs = (if n > 0 then 1 else 0);
          items = n;
        });
    finish st
  end
  else begin
    let chunk = effective_chunk ~chunk ~jobs n in
    let cursor = Atomic.make 0 in
    let worker w () =
      let st = local () in
      (match mon with
      | None ->
        let rec loop () =
          let start = Atomic.fetch_and_add cursor chunk in
          if start < n then begin
            let stop = min n (start + chunk) - 1 in
            for i = start to stop do
              f st i
            done;
            loop ()
          end
        in
        loop ()
      | Some report ->
        (* Busy time is accumulated per chunk, so the clock is read twice
           per [chunk] indices - the gap between chunks (the idle share)
           is the cursor contention plus scheduler delay this monitor
           exists to expose. *)
        let start_ns = now_ns () in
        let busy = ref 0 and grabs = ref 0 and items = ref 0 in
        let rec loop () =
          let start = Atomic.fetch_and_add cursor chunk in
          if start < n then begin
            let stop = min n (start + chunk) - 1 in
            incr grabs;
            items := !items + (stop - start + 1);
            let t0 = now_ns () in
            for i = start to stop do
              f st i
            done;
            busy := !busy + (now_ns () - t0);
            loop ()
          end
        in
        loop ();
        let stop_ns = now_ns () in
        report
          {
            worker = w;
            dom = (Domain.self () :> int);
            start_ns;
            stop_ns;
            busy_ns = !busy;
            grabs = !grabs;
            items = !items;
          });
      finish st
    in
    let domains =
      List.init (jobs - 1) (fun k -> Domain.spawn (fun () -> worker (k + 1) ()))
    in
    worker 0 ();
    List.iter Domain.join domains
  end

let iter_range ?chunk ~jobs n f =
  iter_range_local ?chunk ~jobs ~local:(fun () -> ()) n (fun () i -> f i)

let map_range ?chunk ~jobs n f ~init =
  let out = Array.make n init in
  iter_range ?chunk ~jobs n (fun i -> out.(i) <- f i);
  out
