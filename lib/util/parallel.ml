let iter_range ~jobs n f =
  let jobs = max 1 (min jobs n) in
  if jobs <= 1 then
    for i = 0 to n - 1 do
      f i
    done
  else begin
    let cursor = Atomic.make 0 in
    let worker () =
      let rec loop () =
        let i = Atomic.fetch_and_add cursor 1 in
        if i < n then begin
          f i;
          loop ()
        end
      in
      loop ()
    in
    let domains = List.init (jobs - 1) (fun _ -> Domain.spawn worker) in
    worker ();
    List.iter Domain.join domains
  end

let map_range ~jobs n f ~init =
  let out = Array.make n init in
  iter_range ~jobs n (fun i -> out.(i) <- f i);
  out
