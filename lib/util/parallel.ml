(* Chunked deterministic fork/join over OCaml 5 domains.

   The original cursor handed out one index per [Atomic.fetch_and_add];
   on fine-grained work (a partition join, one fault class) the
   cache-line ping-pong on the cursor dominated.  Chunked grabs amortize
   one atomic over [chunk] indices; the chunk size is capped so small
   ranges still spread across all domains (at least four grabs per
   domain when the range allows it). *)

let default_chunk = 64

let effective_chunk ~chunk ~jobs n =
  max 1 (min chunk ((n + (4 * jobs) - 1) / (4 * jobs)))

let iter_range_local ?(chunk = default_chunk) ~jobs ~local ?(finish = ignore)
    n f =
  if chunk < 1 then invalid_arg "Parallel.iter_range_local: chunk < 1";
  let jobs = max 1 (min jobs n) in
  if jobs <= 1 then begin
    let st = local () in
    for i = 0 to n - 1 do
      f st i
    done;
    finish st
  end
  else begin
    let chunk = effective_chunk ~chunk ~jobs n in
    let cursor = Atomic.make 0 in
    let worker () =
      let st = local () in
      let rec loop () =
        let start = Atomic.fetch_and_add cursor chunk in
        if start < n then begin
          let stop = min n (start + chunk) - 1 in
          for i = start to stop do
            f st i
          done;
          loop ()
        end
      in
      loop ();
      finish st
    in
    let domains = List.init (jobs - 1) (fun _ -> Domain.spawn worker) in
    worker ();
    List.iter Domain.join domains
  end

let iter_range ?chunk ~jobs n f =
  iter_range_local ?chunk ~jobs ~local:(fun () -> ()) n (fun () i -> f i)

let map_range ?chunk ~jobs n f ~init =
  let out = Array.make n init in
  iter_range ?chunk ~jobs n (fun i -> out.(i) <- f i);
  out
