module Machine = Stc_fsm.Machine

type t = { width : int; codes : int array }

let make ~width codes =
  let n = Array.length codes in
  if n = 0 then invalid_arg "Code.make: no states";
  if width < 1 || width > 30 then invalid_arg "Code.make: width out of range";
  let seen = Hashtbl.create n in
  Array.iter
    (fun c ->
      if c < 0 || c >= 1 lsl width then invalid_arg "Code.make: code out of range";
      if Hashtbl.mem seen c then invalid_arg "Code.make: duplicate code";
      Hashtbl.replace seen c ())
    codes;
  { width; codes = Array.copy codes }

let binary ~num_states =
  let width = max 1 (Machine.bits_for num_states) in
  { width; codes = Array.init num_states (fun s -> s) }

let gray ~num_states =
  let width = max 1 (Machine.bits_for num_states) in
  { width; codes = Array.init num_states (fun s -> s lxor (s lsr 1)) }

let one_hot ~num_states =
  if num_states > 30 then invalid_arg "Code.one_hot: too many states";
  { width = num_states; codes = Array.init num_states (fun s -> 1 lsl s) }

let popcount = Stc_bits.Word.popcount

let adjacency_cost (m : Machine.t) code =
  let total = ref 0 in
  Machine.iter_transitions m (fun s _ s' _ ->
      total := !total + popcount (code.codes.(s) lxor code.codes.(s')));
  !total

let heuristic (m : Machine.t) =
  let code = binary ~num_states:m.num_states in
  let codes = Array.copy code.codes in
  let current = ref (adjacency_cost m { code with codes }) in
  let improved = ref true in
  while !improved do
    improved := false;
    for s = 0 to m.num_states - 1 do
      for t = s + 1 to m.num_states - 1 do
        let tmp = codes.(s) in
        codes.(s) <- codes.(t);
        codes.(t) <- tmp;
        let cost = adjacency_cost m { code with codes } in
        if cost < !current then begin
          current := cost;
          improved := true
        end
        else begin
          let tmp = codes.(s) in
          codes.(s) <- codes.(t);
          codes.(t) <- tmp
        end
      done
    done
  done;
  { code with codes }

let bit code ~state ~k =
  code.codes.(state) land (1 lsl (code.width - 1 - k)) <> 0

let used code =
  let u = Array.make (1 lsl code.width) false in
  Array.iter (fun c -> u.(c) <- true) code.codes;
  u

let decode code word =
  let found = ref None in
  Array.iteri (fun s c -> if c = word && !found = None then found := Some s) code.codes;
  !found
