(** Truth-table extraction: from an encoded machine (or pipeline
    realization) to the PLA covers handed to the logic minimizer.

    Variable order conventions (MSB first inside each group):
    - conventional block C (fig. 1): inputs [primary inputs @ state bits],
      outputs [next-state bits @ primary output bits];
    - pipeline block C1 (fig. 4): inputs [primary inputs @ R1 bits],
      outputs [R2 next bits];
    - pipeline block C2: inputs [primary inputs @ R2 bits], outputs
      [R1 next bits];
    - pipeline output block Lambda: inputs [primary inputs @ R1 @ R2],
      outputs [primary output bits].

    Unused state code words, and product states with an empty class
    intersection (the filler entries of Theorem 1), become don't-cares. *)

module Cover = Stc_logic.Cover

type encoded = {
  machine : Stc_fsm.Machine.t;
  state_code : Code.t;
  input_width : int;  (** bits of the primary input bus *)
  output_width : int;  (** bits of the primary output bus *)
  output_codes : int array;  (** output symbol -> code word *)
}

(** [encode ?state_code machine] picks codes: binary state encoding by
    default, primary inputs as the binary representation of the symbol
    index (KISS2 machines already use exactly this), outputs taken from the
    binary output names when present (KISS2) and from symbol indices
    otherwise. *)
val encode : ?state_code:Code.t -> Stc_fsm.Machine.t -> encoded

(** [conventional enc] is [(on, dc)] for the monolithic next-state/output
    block C of fig. 1. *)
val conventional : encoded -> Cover.t * Cover.t

type pipeline = {
  realization : Stc_core.Realization.t;
  code1 : Code.t;  (** codes of S1 = S/pi, register R1 *)
  code2 : Code.t;  (** codes of S2 = S/rho, register R2 *)
  enc : encoded;  (** primary input/output encoding, shared with the spec *)
  c1_on : Cover.t;
  c1_dc : Cover.t;
  c2_on : Cover.t;
  c2_dc : Cover.t;
  lambda_on : Cover.t;
  lambda_dc : Cover.t;
}

(** [pipeline ?code1 ?code2 realization] extracts the three combinational
    blocks of fig. 4.  Default codes are binary. *)
val pipeline :
  ?code1:Code.t -> ?code2:Code.t -> Stc_core.Realization.t -> pipeline

(** [pipeline_of_machine machine] runs the OSTR solver and extracts the
    pipeline tables of the optimal realization; [jobs] fans the solver
    over that many domains (see {!Stc_core.Ostr.run}). *)
val pipeline_of_machine :
  ?timeout:float -> ?jobs:int -> Stc_fsm.Machine.t -> pipeline
