module Machine = Stc_fsm.Machine
module Kiss = Stc_fsm.Kiss
module Realization = Stc_core.Realization
module Partition = Stc_partition.Partition
module Cube = Stc_logic.Cube
module Cover = Stc_logic.Cover

type encoded = {
  machine : Machine.t;
  state_code : Code.t;
  input_width : int;
  output_width : int;
  output_codes : int array;
}

let bits_of ~width v =
  Array.init width (fun k ->
      if v land (1 lsl (width - 1 - k)) <> 0 then Cube.One else Cube.Zero)

let dc_bits width = Array.make width Cube.Dc

let int_of_binary s =
  String.fold_left (fun acc c -> (acc * 2) + if c = '1' then 1 else 0) 0 s

let encode ?state_code (machine : Machine.t) =
  let state_code =
    match state_code with
    | Some c ->
      if Array.length c.Code.codes <> machine.num_states then
        invalid_arg "Tables.encode: state code size mismatch";
      c
    | None -> Code.binary ~num_states:machine.num_states
  in
  let input_width =
    match Kiss.input_bits machine with
    | w -> w
    | exception Invalid_argument _ -> max 1 (Machine.bits_for machine.num_inputs)
  in
  let output_width, output_codes =
    match Kiss.output_bits machine with
    | w -> (w, Array.map int_of_binary machine.output_names)
    | exception Invalid_argument _ ->
      ( max 1 (Machine.bits_for machine.num_outputs),
        Array.init machine.num_outputs (fun o -> o) )
  in
  { machine; state_code; input_width; output_width; output_codes }

(* Append a cube asserting the 1-bits of [value] (width [out_width]) at
   output offset [off]; skip when no bit is set. *)
let add_row acc ~input ~num_outputs ~off ~out_width value =
  let output = Array.make num_outputs false in
  let any = ref false in
  for k = 0 to out_width - 1 do
    if value land (1 lsl (out_width - 1 - k)) <> 0 then begin
      output.(off + k) <- true;
      any := true
    end
  done;
  if !any then Cube.make ~input ~output :: acc else acc

let all_dc_row ~input ~num_outputs =
  Cube.make ~input ~output:(Array.make num_outputs true)

let conventional enc =
  let m = enc.machine in
  let w = enc.state_code.Code.width in
  let num_vars = enc.input_width + w in
  let num_outputs = w + enc.output_width in
  let on = ref [] in
  for s = 0 to m.num_states - 1 do
    for i = 0 to m.num_inputs - 1 do
      let input =
        Array.append (bits_of ~width:enc.input_width i)
          (bits_of ~width:w enc.state_code.Code.codes.(s))
      in
      let value =
        (enc.state_code.Code.codes.(m.next.(s).(i)) lsl enc.output_width)
        lor enc.output_codes.(m.output.(s).(i))
      in
      on := add_row !on ~input ~num_outputs ~off:0 ~out_width:num_outputs value
    done
  done;
  let dc = ref [] in
  Array.iteri
    (fun word taken ->
      if not taken then begin
        let input = Array.append (dc_bits enc.input_width) (bits_of ~width:w word) in
        dc := all_dc_row ~input ~num_outputs :: !dc
      end)
    (Code.used enc.state_code);
  ( Cover.make ~num_vars ~num_outputs (List.rev !on),
    Cover.make ~num_vars ~num_outputs !dc )

type pipeline = {
  realization : Realization.t;
  code1 : Code.t;
  code2 : Code.t;
  enc : encoded;
  c1_on : Cover.t;
  c1_dc : Cover.t;
  c2_on : Cover.t;
  c2_dc : Cover.t;
  lambda_on : Cover.t;
  lambda_dc : Cover.t;
}

(* One factor block: delta is [k x num_inputs] over classes; [code_in] the
   source register's code, [code_out] the target register's code. *)
let factor_block ~input_width ~num_inputs ~delta ~code_in ~code_out =
  let w_in = code_in.Code.width and w_out = code_out.Code.width in
  let num_vars = input_width + w_in in
  let on = ref [] in
  Array.iteri
    (fun c row ->
      for i = 0 to num_inputs - 1 do
        let input =
          Array.append (bits_of ~width:input_width i)
            (bits_of ~width:w_in code_in.Code.codes.(c))
        in
        on :=
          add_row !on ~input ~num_outputs:w_out ~off:0 ~out_width:w_out
            code_out.Code.codes.(row.(i))
      done)
    delta;
  let dc = ref [] in
  Array.iteri
    (fun word taken ->
      if not taken then begin
        let input = Array.append (dc_bits input_width) (bits_of ~width:w_in word) in
        dc := all_dc_row ~input ~num_outputs:w_out :: !dc
      end)
    (Code.used code_in);
  ( Cover.make ~num_vars ~num_outputs:w_out (List.rev !on),
    Cover.make ~num_vars ~num_outputs:w_out !dc )

let pipeline ?code1 ?code2 (r : Realization.t) =
  let m = r.Realization.spec in
  let k1 = Realization.num_s1 r and k2 = Realization.num_s2 r in
  let code1 = match code1 with Some c -> c | None -> Code.binary ~num_states:k1 in
  let code2 = match code2 with Some c -> c | None -> Code.binary ~num_states:k2 in
  if Array.length code1.Code.codes <> k1 || Array.length code2.Code.codes <> k2
  then invalid_arg "Tables.pipeline: code size mismatch";
  let enc = encode m in
  let c1_on, c1_dc =
    factor_block ~input_width:enc.input_width ~num_inputs:m.num_inputs
      ~delta:r.Realization.delta1 ~code_in:code1 ~code_out:code2
  in
  let c2_on, c2_dc =
    factor_block ~input_width:enc.input_width ~num_inputs:m.num_inputs
      ~delta:r.Realization.delta2 ~code_in:code2 ~code_out:code1
  in
  (* Output block Lambda over (inputs, R1, R2). *)
  let w1 = code1.Code.width and w2 = code2.Code.width in
  let num_vars = enc.input_width + w1 + w2 in
  let num_outputs = enc.output_width in
  let witness = Array.make (k1 * k2) (-1) in
  for s = m.num_states - 1 downto 0 do
    let c1 = Partition.class_of r.Realization.pi s
    and c2 = Partition.class_of r.Realization.rho s in
    witness.((c1 * k2) + c2) <- s
  done;
  let lambda_on = ref [] and lambda_dc = ref [] in
  for c1 = 0 to k1 - 1 do
    for c2 = 0 to k2 - 1 do
      let codes =
        Array.append
          (bits_of ~width:w1 code1.Code.codes.(c1))
          (bits_of ~width:w2 code2.Code.codes.(c2))
      in
      let s = witness.((c1 * k2) + c2) in
      if s < 0 then
        (* Empty class intersection: Theorem 1 allows any output o*. *)
        lambda_dc :=
          all_dc_row ~input:(Array.append (dc_bits enc.input_width) codes)
            ~num_outputs
          :: !lambda_dc
      else
        for i = 0 to m.num_inputs - 1 do
          let input = Array.append (bits_of ~width:enc.input_width i) codes in
          lambda_on :=
            add_row !lambda_on ~input ~num_outputs ~off:0 ~out_width:num_outputs
              enc.output_codes.(m.output.(s).(i))
        done
    done
  done;
  (* Unused register code words are also don't-cares. *)
  Array.iteri
    (fun word taken ->
      if not taken then begin
        let input =
          Array.concat [ dc_bits enc.input_width; bits_of ~width:w1 word; dc_bits w2 ]
        in
        lambda_dc := all_dc_row ~input ~num_outputs :: !lambda_dc
      end)
    (Code.used code1);
  Array.iteri
    (fun word taken ->
      if not taken then begin
        let input =
          Array.concat [ dc_bits enc.input_width; dc_bits w1; bits_of ~width:w2 word ]
        in
        lambda_dc := all_dc_row ~input ~num_outputs :: !lambda_dc
      end)
    (Code.used code2);
  {
    realization = r;
    code1;
    code2;
    enc;
    c1_on;
    c1_dc;
    c2_on;
    c2_dc;
    lambda_on = Cover.make ~num_vars ~num_outputs (List.rev !lambda_on);
    lambda_dc = Cover.make ~num_vars ~num_outputs !lambda_dc;
  }

let pipeline_of_machine ?timeout ?jobs machine =
  let outcome = Stc_core.Ostr.run ?timeout ?jobs machine in
  pipeline outcome.Stc_core.Ostr.realization
