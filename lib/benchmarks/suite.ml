module Generate = Stc_fsm.Generate
module Zoo = Stc_fsm.Zoo
module Rng = Stc_util.Rng

type kind =
  | Exact
  | Planted of { blocks : (int * int) list; seed : int }
  | Random of { seed : int }

type table1_row = {
  s1 : int;
  s2 : int;
  ff_conventional : int;
  ff_pipeline : int;
}

type spec = {
  name : string;
  states : int;
  input_bits : int;
  output_bits : int;
  kind : kind;
  paper : table1_row;
  paper_timeout : bool;
  paper_investigated : int option;
  expected : table1_row;
}

let row s1 s2 ff_conventional ff_pipeline = { s1; s2; ff_conventional; ff_pipeline }

let ones n = List.init n (fun _ -> (1, 1))

(* Seeds below were selected offline (tools/seed_search) so that the stand-in is
   connected, reduced, and the OSTR solver provably finds exactly the
   [expected] row; the test suite re-verifies this. *)
let all =
  [
    {
      name = "bbara";
      states = 10;
      input_bits = 4;
      output_bits = 2;
      kind = Planted { blocks = [ (1, 2); (2, 1); (2, 2) ] @ ones 2; seed = 1001000 };
      paper = row 7 7 8 6;
      paper_timeout = false;
      paper_investigated = Some 815;
      expected = row 7 7 8 6;
    };
    {
      name = "bbtas";
      states = 6;
      input_bits = 2;
      output_bits = 2;
      kind = Random { seed = 2001000 };
      paper = row 6 6 6 6;
      paper_timeout = false;
      paper_investigated = Some 375;
      expected = row 6 6 6 6;
    };
    {
      name = "dk14";
      states = 7;
      input_bits = 3;
      output_bits = 5;
      kind = Random { seed = 2002000 };
      paper = row 7 7 6 6;
      paper_timeout = false;
      paper_investigated = Some 55;
      expected = row 7 7 6 6;
    };
    {
      name = "dk15";
      states = 4;
      input_bits = 3;
      output_bits = 5;
      kind = Random { seed = 2003000 };
      paper = row 4 4 4 4;
      paper_timeout = false;
      paper_investigated = Some 7;
      expected = row 4 4 4 4;
    };
    {
      name = "dk16";
      states = 27;
      input_bits = 2;
      output_bits = 3;
      kind = Planted { blocks = [ (1, 2); (2, 1); (2, 2) ] @ ones 19; seed = 1002000 };
      paper = row 24 24 10 10;
      paper_timeout = false;
      paper_investigated = Some 337041;
      expected = row 24 24 10 10;
    };
    {
      name = "dk17";
      states = 8;
      input_bits = 2;
      output_bits = 3;
      kind = Random { seed = 2004000 };
      paper = row 8 8 6 6;
      paper_timeout = false;
      paper_investigated = Some 63;
      expected = row 8 8 6 6;
    };
    {
      name = "dk27";
      states = 7;
      input_bits = 1;
      output_bits = 2;
      kind = Planted { blocks = (1, 2) :: ones 5; seed = 1003000 };
      paper = row 6 7 6 6;
      paper_timeout = false;
      paper_investigated = Some 203;
      expected = row 6 7 6 6;
    };
    {
      name = "dk512";
      states = 15;
      input_bits = 1;
      output_bits = 3;
      kind = Planted { blocks = [ (1, 2); (2, 1) ] @ ones 11; seed = 1004000 };
      paper = row 14 14 8 8;
      paper_timeout = false;
      paper_investigated = Some 343853;
      expected = row 14 14 8 8;
    };
    {
      name = "mc";
      states = 4;
      input_bits = 3;
      output_bits = 5;
      kind = Random { seed = 2005000 };
      paper = row 4 4 4 4;
      paper_timeout = false;
      paper_investigated = Some 13;
      expected = row 4 4 4 4;
    };
    {
      name = "s1";
      states = 20;
      input_bits = 8;
      output_bits = 6;
      kind = Random { seed = 2006000 };
      paper = row 20 20 10 10;
      paper_timeout = false;
      paper_investigated = Some 323;
      expected = row 20 20 10 10;
    };
    {
      name = "shiftreg";
      states = 8;
      input_bits = 1;
      output_bits = 1;
      kind = Exact;
      paper = row 4 2 6 3;
      paper_timeout = false;
      paper_investigated = Some 45;
      expected = row 4 2 6 3;
    };
    {
      name = "tav";
      states = 4;
      input_bits = 4;
      output_bits = 4;
      kind = Planted { blocks = [ (2, 2) ]; seed = 1005000 };
      paper = row 2 2 4 2;
      paper_timeout = false;
      paper_investigated = Some 47;
      expected = row 2 2 4 2;
    };
    {
      name = "tbk";
      states = 32;
      input_bits = 6;
      output_bits = 3;
      kind = Planted { blocks = List.init 8 (fun _ -> (2, 2)); seed = 1006000 };
      paper = row 16 16 10 8;
      paper_timeout = true;
      paper_investigated = None;
      expected = row 16 16 10 8;
    };
  ]

let names = List.map (fun spec -> spec.name) all

let find name = List.find_opt (fun spec -> spec.name = name) all

let machine spec =
  match spec.kind with
  | Exact ->
    (* shiftreg is the only exactly reconstructed benchmark. *)
    assert (spec.name = "shiftreg");
    Zoo.shift_register ~bits:3
  | Planted { blocks; seed } ->
    let rng = Rng.create seed in
    (* dk27-style machines have all-singleton A sides, so distinct g rows
       are impossible; the planted pair is recovered at the search root
       instead (rho = identity). *)
    let distinct_signatures =
      List.exists (fun (r, _) -> r > 1) blocks
    in
    let info =
      Generate.block_product ~rng ~name:spec.name ~blocks
        ~num_inputs:(1 lsl spec.input_bits)
        ~num_outputs:(1 lsl spec.output_bits)
        ~distinct_signatures ()
    in
    let info = Generate.shuffled ~rng info in
    info.Generate.machine
  | Random { seed } ->
    let rng = Rng.create seed in
    Generate.random ~rng ~name:spec.name ~num_states:spec.states
      ~num_inputs:(1 lsl spec.input_bits)
      ~num_outputs:(1 lsl spec.output_bits)
      ()

let nontrivial spec = spec.paper.s1 < spec.states || spec.paper.s2 < spec.states
