module Json = Stc_obs.Json

(* Noise-aware comparison of two versioned bench documents.

   Rows are matched by identity key ("kernel"/n when present, else
   "name"), then flattened to numeric leaves; only time-like leaves are
   judged — a path ending in "_s" that mentions "wall", or one ending in
   "ns_per_op".  Ratios ("speedup"), counters and structural fields are
   carried by the rows but say nothing about regressions directly, and
   judging them would double-count the walls they are derived from.

   A change only counts when it clears BOTH a relative threshold and an
   absolute floor: micro-kernel timings in the low nanoseconds jitter by
   tens of percent between runs, and long walls can drift by whole
   milliseconds that matter to nobody.  The defaults (35 % and
   50 ms / 3 ns) absorb run-to-run noise on an unloaded box — the
   check.sh gate runs the same config twice and fails on any reported
   regression, which keeps the thresholds honest. *)

type options = { rel : float; abs_s : float; abs_ns : float }

let default_options = { rel = 0.35; abs_s = 0.05; abs_ns = 3.0 }

type verdict = {
  key : string;  (* row identity *)
  metric : string;  (* flattened leaf path, e.g. "parallel.wall_s" *)
  old_v : float;
  new_v : float;
  ratio : float;  (* new / old *)
  regressed : bool;
  improved : bool;
}

type result_t = {
  verdicts : verdict list;
  warnings : string list;  (* unmatched rows, non-numeric mismatches *)
  regressions : int;
  improvements : int;
}

(* --- row plumbing -------------------------------------------------- *)

let row_key row =
  match Json.member "kernel" row with
  | Some (Json.String k) -> (
    match Json.member "n" row with
    | Some (Json.Int n) -> Some (Printf.sprintf "%s[n=%d]" k n)
    | _ -> Some k)
  | _ -> (
    match Json.member "name" row with
    | Some (Json.String n) -> Some n
    | _ -> None)

let rows_of doc =
  match Json.member "rows" doc with
  | Some (Json.List rows) -> rows
  | _ -> []

(* Flatten to (path, float) leaves; Int leaves are included so integer
   nanosecond fields still compare. *)
let rec numeric_leaves prefix json acc =
  match json with
  | Json.Obj fields ->
    List.fold_left
      (fun acc (k, v) ->
        let path = if prefix = "" then k else prefix ^ "." ^ k in
        numeric_leaves path v acc)
      acc fields
  | Json.Float f -> (prefix, f) :: acc
  | Json.Int n -> (prefix, float_of_int n) :: acc
  | Json.List _ | Json.String _ | Json.Bool _ | Json.Null -> acc

let leaf_name path =
  match String.rindex_opt path '.' with
  | Some i -> String.sub path (i + 1) (String.length path - i - 1)
  | None -> path

let ends_with ~suffix s =
  let ls = String.length suffix and l = String.length s in
  l >= ls && String.sub s (l - ls) ls = suffix

let contains_sub ~sub s =
  let ls = String.length sub and l = String.length s in
  let rec go i = i + ls <= l && (String.sub s i ls = sub || go (i + 1)) in
  ls = 0 || go 0

type unit_kind = Seconds | Nanoseconds

(* Which leaves are time measurements (lower is better)? *)
let time_unit path =
  let name = leaf_name path in
  if ends_with ~suffix:"ns_per_op" name then Some Nanoseconds
  else if ends_with ~suffix:"_ns" name then Some Nanoseconds
  else if ends_with ~suffix:"_s" name && contains_sub ~sub:"wall" name then
    Some Seconds
  else None

(* --- comparison ---------------------------------------------------- *)

let judge opts ~unit_kind ~old_v ~new_v =
  let floor = match unit_kind with Seconds -> opts.abs_s | Nanoseconds -> opts.abs_ns in
  let regressed =
    new_v > old_v *. (1.0 +. opts.rel) && new_v -. old_v > floor
  in
  let improved =
    old_v > new_v *. (1.0 +. opts.rel) && old_v -. new_v > floor
  in
  (regressed, improved)

let compare_docs ?(opts = default_options) ~old_doc ~new_doc () =
  match (Schema.validate old_doc, Schema.validate new_doc) with
  | Error errs, _ -> Error ("old file: " ^ String.concat "; " errs)
  | _, Error errs -> Error ("new file: " ^ String.concat "; " errs)
  | Ok old_bench, Ok new_bench ->
    if old_bench <> new_bench then
      Error
        (Printf.sprintf "bench mismatch: old is %S, new is %S" old_bench
           new_bench)
    else begin
      let warnings = ref [] in
      let warn fmt = Printf.ksprintf (fun s -> warnings := s :: !warnings) fmt in
      let index rows =
        List.filteri (fun i _ -> i >= 0) rows
        |> List.mapi (fun i row ->
               match row_key row with
               | Some k -> (k, row)
               | None ->
                 (* Keyless rows match positionally as a last resort. *)
                 (Printf.sprintf "#%d" i, row))
      in
      let old_rows = index (rows_of old_doc) in
      let new_rows = index (rows_of new_doc) in
      List.iter
        (fun (k, _) ->
          if not (List.mem_assoc k new_rows) then
            warn "row %S only in old file" k)
        old_rows;
      List.iter
        (fun (k, _) ->
          if not (List.mem_assoc k old_rows) then
            warn "row %S only in new file" k)
        new_rows;
      let verdicts =
        List.concat_map
          (fun (key, old_row) ->
            match List.assoc_opt key new_rows with
            | None -> []
            | Some new_row ->
              let old_leaves = numeric_leaves "" old_row [] in
              let new_leaves = numeric_leaves "" new_row [] in
              List.filter_map
                (fun (path, old_v) ->
                  match time_unit path with
                  | None -> None
                  | Some unit_kind -> (
                    match List.assoc_opt path new_leaves with
                    | None ->
                      warn "row %S: metric %s missing in new file" key path;
                      None
                    | Some new_v ->
                      let regressed, improved =
                        judge opts ~unit_kind ~old_v ~new_v
                      in
                      Some
                        {
                          key;
                          metric = path;
                          old_v;
                          new_v;
                          ratio =
                            (if old_v > 0.0 then new_v /. old_v
                             else if new_v > 0.0 then Float.infinity
                             else 1.0);
                          regressed;
                          improved;
                        }))
                (List.rev old_leaves))
          old_rows
      in
      let count p = List.length (List.filter p verdicts) in
      Ok
        {
          verdicts;
          warnings = List.rev !warnings;
          regressions = count (fun v -> v.regressed);
          improvements = count (fun v -> v.improved);
        }
    end

(* --- rendering ----------------------------------------------------- *)

let pp_value unit_kind v =
  match unit_kind with
  | _ when Float.abs v >= 1.0 -> Printf.sprintf "%.3f" v
  | _ -> Printf.sprintf "%.4g" v

let render ?(verbose = false) r =
  let b = Buffer.create 512 in
  let line fmt = Printf.ksprintf (fun s -> Buffer.add_string b (s ^ "\n")) fmt in
  let interesting v = v.regressed || v.improved in
  List.iter
    (fun v ->
      if interesting v || verbose then
        line "%-11s %-32s %-28s %10s -> %-10s %5.2fx"
          (if v.regressed then "REGRESSION"
           else if v.improved then "improved"
           else "ok")
          v.key v.metric
          (pp_value Seconds v.old_v)
          (pp_value Seconds v.new_v) v.ratio)
    r.verdicts;
  List.iter (fun w -> line "warning: %s" w) r.warnings;
  line "%d metrics compared: %d regressions, %d improvements, %d stable"
    (List.length r.verdicts) r.regressions r.improvements
    (List.length r.verdicts - r.regressions - r.improvements);
  Buffer.contents b
