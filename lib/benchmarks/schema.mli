(** Versioned envelope for the BENCH_*.json artifacts.

    Every bench writer wraps its rows with {!wrap}, which stamps the
    schema version plus provenance — git revision (resolved from the
    [.git] directory without running git), hostname, parallel fan-out
    and a timestamp that honours [SOURCE_DATE_EPOCH] / [BENCH_TIMESTAMP]
    for reproducible artifacts.  {!validate} is the shared checker used
    by [tools/json_lint --bench] and [tools/bench_diff]: header keys
    present, version understood, and every row carrying the same key set
    as row 0 (so per-row comparisons are meaningful). *)

val schema_version : int

(** Top-level keys every versioned bench file must carry:
    [schema_version], [bench], [git_rev], [host], [jobs],
    [timestamp_unix_s], [rows]. *)
val required_keys : string list

val git_rev : unit -> string
val host : unit -> string

(** Seconds since the epoch, from [BENCH_TIMESTAMP] or
    [SOURCE_DATE_EPOCH] when set (CI pins these), else the wall clock. *)
val timestamp : unit -> int

val header : bench:string -> jobs:int -> (string * Stc_obs.Json.t) list

(** [wrap ~bench ~jobs ?extra rows] is the full document:
    header fields, then [extra] suite-specific fields, then ["rows"]. *)
val wrap :
  bench:string ->
  jobs:int ->
  ?extra:(string * Stc_obs.Json.t) list ->
  Stc_obs.Json.t list ->
  Stc_obs.Json.t

(** [validate doc] is [Ok bench_name], or [Error messages] listing every
    violation (missing/mistyped header keys, unknown version, row key
    inconsistencies). *)
val validate : Stc_obs.Json.t -> (string, string list) result
