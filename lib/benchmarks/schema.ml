module Json = Stc_obs.Json

(* Versioned envelope shared by every BENCH_*.json writer.

   Before this module each bench mode invented its own top level, so no
   tool could compare two runs: there was no version to dispatch on, no
   provenance (which commit? which host? how many domains?) and no
   guarantee that rows of one file even carried the same keys.  The
   envelope fixes the contract:

     { "schema_version": 1,
       "bench": "<suite name>",
       "git_rev": "<commit or \"unknown\">",
       "host": "<hostname>",
       "jobs": <parallel fan-out used>,
       "timestamp_unix_s": <externally supplied or wall clock>,
       ...suite-specific extras...,
       "rows": [ {..}, {..} ] }

   The timestamp honours SOURCE_DATE_EPOCH / BENCH_TIMESTAMP so CI can
   pin it for reproducible artifacts. *)

let schema_version = 1

let required_keys =
  [ "schema_version"; "bench"; "git_rev"; "host"; "jobs"; "timestamp_unix_s"; "rows" ]

(* --- provenance ---------------------------------------------------- *)

let read_file path =
  match open_in path with
  | exception Sys_error _ -> None
  | ic ->
    Fun.protect
      ~finally:(fun () -> close_in ic)
      (fun () ->
        match really_input_string ic (in_channel_length ic) with
        | s -> Some (String.trim s)
        | exception End_of_file -> None)

let is_hex40 s =
  String.length s = 40
  && String.for_all (function '0' .. '9' | 'a' .. 'f' -> true | _ -> false) s

(* Resolve HEAD without running git: walk up from the cwd to the first
   .git directory, follow one level of "ref:" indirection, fall back to
   packed-refs.  "unknown" on any miss — provenance is best-effort. *)
let git_rev_at root =
  let git = Filename.concat root ".git" in
  if not (Sys.file_exists git && Sys.is_directory git) then None
  else
    match read_file (Filename.concat git "HEAD") with
    | None -> None
    | Some head ->
      if is_hex40 head then Some head
      else if String.length head > 5 && String.sub head 0 5 = "ref: " then begin
        let refname = String.trim (String.sub head 5 (String.length head - 5)) in
        match read_file (Filename.concat git refname) with
        | Some rev when is_hex40 rev -> Some rev
        | _ -> (
          match read_file (Filename.concat git "packed-refs") with
          | None -> None
          | Some packed ->
            String.split_on_char '\n' packed
            |> List.find_map (fun line ->
                   match String.index_opt line ' ' with
                   | Some i
                     when String.sub line (i + 1) (String.length line - i - 1)
                          = refname ->
                     let rev = String.sub line 0 i in
                     if is_hex40 rev then Some rev else None
                   | _ -> None))
      end
      else None

let git_rev () =
  let rec up root k =
    if k = 0 then None
    else
      match git_rev_at root with
      | Some rev -> Some rev
      | None -> up (Filename.concat root Filename.parent_dir_name) (k - 1)
  in
  Option.value ~default:"unknown" (up Filename.current_dir_name 6)

let host () =
  match Unix.gethostname () with
  | h -> h
  | exception Unix.Unix_error _ -> "unknown"

(* Externally supplied timestamp: SOURCE_DATE_EPOCH (the reproducible-
   builds convention) or BENCH_TIMESTAMP override the wall clock. *)
let timestamp () =
  let env k =
    Option.bind (Sys.getenv_opt k) (fun v -> int_of_string_opt (String.trim v))
  in
  match env "BENCH_TIMESTAMP" with
  | Some t -> t
  | None -> (
    match env "SOURCE_DATE_EPOCH" with
    | Some t -> t
    | None -> int_of_float (Unix.time ()))

(* --- construction -------------------------------------------------- *)

let header ~bench ~jobs =
  [
    ("schema_version", Json.Int schema_version);
    ("bench", Json.String bench);
    ("git_rev", Json.String (git_rev ()));
    ("host", Json.String (host ()));
    ("jobs", Json.Int jobs);
    ("timestamp_unix_s", Json.Int (timestamp ()));
  ]

let wrap ~bench ~jobs ?(extra = []) rows =
  Json.Obj (header ~bench ~jobs @ extra @ [ ("rows", Json.List rows) ])

(* --- validation ---------------------------------------------------- *)

let obj_keys = function
  | Json.Obj fields -> Some (List.map fst fields)
  | _ -> None

let validate doc =
  let errors = ref [] in
  let err fmt = Printf.ksprintf (fun s -> errors := s :: !errors) fmt in
  (match Json.member "schema_version" doc with
  | Some (Json.Int v) when v = schema_version -> ()
  | Some (Json.Int v) ->
    err "schema_version %d (this validator knows %d)" v schema_version
  | Some _ -> err "schema_version is not an int"
  | None -> err "missing key \"schema_version\"");
  List.iter
    (fun k ->
      match Json.member k doc with
      | Some _ -> ()
      | None -> err "missing key %S" k)
    (List.filter (fun k -> k <> "schema_version" && k <> "rows") required_keys);
  (match Json.member "rows" doc with
  | Some (Json.List rows) -> (
    match rows with
    | [] -> ()
    | first :: _ -> (
      match obj_keys first with
      | None -> err "rows.0 is not an object"
      | Some keys0 ->
        let sorted0 = List.sort String.compare keys0 in
        List.iteri
          (fun i row ->
            match obj_keys row with
            | None -> err "rows.%d is not an object" i
            | Some keys ->
              if List.sort String.compare keys <> sorted0 then
                err "rows.%d keys differ from rows.0 (%s vs %s)" i
                  (String.concat "," (List.sort String.compare keys))
                  (String.concat "," sorted0))
          rows))
  | Some _ -> err "\"rows\" is not a list"
  | None -> err "missing key \"rows\"");
  match !errors with
  | [] -> (
    match Json.member "bench" doc with
    | Some (Json.String b) -> Ok b
    | _ -> Error [ "\"bench\" is not a string" ])
  | errs -> Error (List.rev errs)
