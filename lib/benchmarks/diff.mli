(** Noise-aware regression comparison of two versioned bench documents
    (see {!Schema}).

    Rows are matched by identity ([kernel]/[n] when present, else
    [name]); within matched rows, every time-like numeric leaf — a
    [..wall.._s] field or a [..ns_per_op] field, at any nesting depth —
    is compared.  A change counts only when it clears both the relative
    threshold and the unit's absolute floor, so nanosecond-kernel jitter
    and irrelevant millisecond drift stay quiet. *)

type options = {
  rel : float;  (** relative threshold, e.g. 0.35 = 35 % *)
  abs_s : float;  (** absolute floor for seconds metrics *)
  abs_ns : float;  (** absolute floor for nanosecond metrics *)
}

(** 35 %, 50 ms, 3 ns. *)
val default_options : options

type verdict = {
  key : string;
  metric : string;
  old_v : float;
  new_v : float;
  ratio : float;  (** new / old *)
  regressed : bool;
  improved : bool;
}

type result_t = {
  verdicts : verdict list;
  warnings : string list;
  regressions : int;
  improvements : int;
}

(** [compare_docs ~old_doc ~new_doc ()] validates both documents against
    the schema (and that they describe the same bench), then judges
    every matched time metric.  Unmatched rows and metrics become
    warnings, not errors. *)
val compare_docs :
  ?opts:options -> old_doc:Stc_obs.Json.t -> new_doc:Stc_obs.Json.t -> unit ->
  (result_t, string) result

(** [render r] is a human-readable report: one line per regression or
    improvement ([~verbose:true] prints stable metrics too) plus a
    summary line. *)
val render : ?verbose:bool -> result_t -> string
