(* The pre-packed trit-array engine, retained verbatim as a reference
   implementation: `bench minimize` and the QCheck equivalence suite
   cross-check the packed Cube/Cover/Minimize results against this
   module.  Everything here mirrors the original list-based code paths
   (including their cube ordering quirks); only the entry points convert
   from and to the packed public types. *)

exception Timeout

(* Wall-clock budget for {!minimize}: the reference engine predates every
   performance fix, so on large covers (s1's 5000-row monolithic block)
   a full espresso pass can take hours.  The deadline is polled every
   1024 ticks from the recursion hot spots; [minimize] installs and
   clears it.  The module is only ever driven sequentially (it is a
   reference, not a production path), so plain mutable state is fine. *)
let deadline = ref infinity

let tick = ref 0

let check () =
  incr tick;
  if !tick land 1023 = 0 && Stc_util.Clock.now () > !deadline then
    raise Timeout

type ncube = { input : Cube.trit array; output : bool array }

type ncover = { nv : int; no : int; cubes : ncube list }

let ncube_of c = { input = Cube.input c; output = Cube.output c }

let cube_of n = Cube.make ~input:n.input ~output:n.output

let ncover_of (c : Cover.t) =
  { nv = c.Cover.num_vars;
    no = c.Cover.num_outputs;
    cubes = Array.to_list (Array.map ncube_of c.Cover.cubes) }

let cover_of n =
  Cover.make ~num_vars:n.nv ~num_outputs:n.no (List.map cube_of n.cubes)

(* ------------------------------------------------------------------
   Cube operations (original per-literal array walks).
   ------------------------------------------------------------------ *)

let ncube_literals c =
  Array.fold_left (fun acc t -> if t = Cube.Dc then acc else acc + 1) 0 c.input

let ncube_contains a b =
  Array.length a.input = Array.length b.input
  && Array.length a.output = Array.length b.output
  && (let ok = ref true in
      Array.iteri
        (fun k ta ->
          match (ta, b.input.(k)) with
          | Cube.Dc, _ -> ()
          | Cube.One, Cube.One | Cube.Zero, Cube.Zero -> ()
          | Cube.One, (Cube.Zero | Cube.Dc) | Cube.Zero, (Cube.One | Cube.Dc)
            ->
            ok := false)
        a.input;
      !ok)
  && (let ok = ref true in
      Array.iteri
        (fun o bo -> if bo && not a.output.(o) then ok := false)
        b.output;
      !ok)

let ncube_intersect a b =
  let n = Array.length a.input in
  let input = Array.make n Cube.Dc in
  let ok = ref true in
  for k = 0 to n - 1 do
    match (a.input.(k), b.input.(k)) with
    | Cube.Dc, t | t, Cube.Dc -> input.(k) <- t
    | Cube.One, Cube.One -> input.(k) <- Cube.One
    | Cube.Zero, Cube.Zero -> input.(k) <- Cube.Zero
    | Cube.One, Cube.Zero | Cube.Zero, Cube.One -> ok := false
  done;
  let output = Array.mapi (fun o bo -> bo && b.output.(o)) a.output in
  if !ok && Array.exists Fun.id output then Some { input; output } else None

let ncube_supercube a b =
  let input =
    Array.mapi
      (fun k ta ->
        match (ta, b.input.(k)) with
        | Cube.One, Cube.One -> Cube.One
        | Cube.Zero, Cube.Zero -> Cube.Zero
        | _ -> Cube.Dc)
      a.input
  in
  let output = Array.mapi (fun o bo -> bo || b.output.(o)) a.output in
  { input; output }

let ncube_distance a b =
  let d = ref 0 in
  Array.iteri
    (fun k ta ->
      match (ta, b.input.(k)) with
      | Cube.One, Cube.Zero | Cube.Zero, Cube.One -> incr d
      | _ -> ())
    a.input;
  !d

let ncube_cofactor c ~wrt =
  if ncube_distance c wrt > 0 then None
  else begin
    let input =
      Array.mapi (fun k t -> if wrt.input.(k) = Cube.Dc then t else Cube.Dc)
        c.input
    in
    let output = Array.mapi (fun o bo -> bo && wrt.output.(o)) c.output in
    if Array.exists Fun.id output then Some { input; output } else None
  end

let ncube_full ~nv ~no =
  { input = Array.make nv Cube.Dc; output = Array.make no true }

(* ------------------------------------------------------------------
   Cover operations (original list-based single-output rows engine).
   ------------------------------------------------------------------ *)

let ncover_cost c =
  let literals =
    List.fold_left
      (fun acc cube ->
        acc + ncube_literals cube
        + Array.fold_left (fun a b -> if b then a + 1 else a) 0 cube.output)
      0 c.cubes
  in
  (List.length c.cubes, literals)

let ncover_cofactor c ~wrt =
  { c with cubes = List.filter_map (fun cube -> ncube_cofactor cube ~wrt) c.cubes }

let row_all_dc row = Array.for_all (fun t -> t = Cube.Dc) row

let row_cofactor row k polarity =
  match (row.(k), polarity) with
  | Cube.Dc, _ -> Some row
  | Cube.One, true | Cube.Zero, false ->
    let r = Array.copy row in
    r.(k) <- Cube.Dc;
    Some r
  | Cube.One, false | Cube.Zero, true -> None

let rows_cofactor rows k polarity =
  List.filter_map (fun r -> row_cofactor r k polarity) rows

let select_var num_vars rows =
  let ones = Array.make num_vars 0 and zeros = Array.make num_vars 0 in
  List.iter
    (fun row ->
      Array.iteri
        (fun k t ->
          match t with
          | Cube.One -> ones.(k) <- ones.(k) + 1
          | Cube.Zero -> zeros.(k) <- zeros.(k) + 1
          | Cube.Dc -> ())
        row)
    rows;
  let best = ref None in
  for k = 0 to num_vars - 1 do
    if ones.(k) + zeros.(k) > 0 then begin
      let score = (min ones.(k) zeros.(k) * 10000) + ones.(k) + zeros.(k) in
      match !best with
      | Some (_, s) when s >= score -> ()
      | _ -> best := Some (k, score)
    end
  done;
  match !best with
  | Some (k, _) -> Some (k, ones.(k) > 0 && zeros.(k) > 0)
  | None -> None

let rec rows_tautology num_vars rows =
  check ();
  if List.exists row_all_dc rows then true
  else
    match select_var num_vars rows with
    | None -> false
    | Some (k, binate) ->
      if binate then
        rows_tautology num_vars (rows_cofactor rows k true)
        && rows_tautology num_vars (rows_cofactor rows k false)
      else begin
        let polarity = List.exists (fun r -> r.(k) = Cube.Zero) rows in
        rows_tautology num_vars (rows_cofactor rows k polarity)
      end

let rec rows_complement num_vars rows =
  check ();
  if List.exists row_all_dc rows then []
  else if rows = [] then [ Array.make num_vars Cube.Dc ]
  else
    match select_var num_vars rows with
    | None -> assert false
    | Some (k, _) ->
      let branch polarity =
        let sub = rows_complement num_vars (rows_cofactor rows k polarity) in
        List.map
          (fun r ->
            let r = Array.copy r in
            r.(k) <- (if polarity then Cube.One else Cube.Zero);
            r)
          sub
      in
      branch true @ branch false

let rows_for_output c o =
  List.filter_map
    (fun cube -> if cube.output.(o) then Some cube.input else None)
    c.cubes

let ncover_covers_cube c cube =
  let cf = ncover_cofactor c ~wrt:cube in
  let ok = ref true in
  Array.iteri
    (fun o asserted ->
      if asserted && !ok then
        if not (rows_tautology c.nv (rows_for_output cf o)) then ok := false)
    cube.output;
  !ok

let ncover_tautology c = ncover_covers_cube c (ncube_full ~nv:c.nv ~no:c.no)

let output_singleton no o = Array.init no (fun i -> i = o)

let ncover_complement c =
  let cubes = ref [] in
  for o = 0 to c.no - 1 do
    let comp = rows_complement c.nv (rows_for_output c o) in
    List.iter
      (fun input ->
        cubes := { input; output = output_singleton c.no o } :: !cubes)
      comp
  done;
  { c with cubes = !cubes }

let ncover_sharp_cube cube c =
  let nv = Array.length cube.input in
  let no = Array.length cube.output in
  let cubes = ref [] in
  Array.iteri
    (fun o asserted ->
      if asserted then begin
        let comp = rows_complement nv (rows_for_output c o) in
        List.iter
          (fun input ->
            let candidate = { input; output = output_singleton no o } in
            match ncube_intersect cube candidate with
            | Some piece ->
              cubes := { piece with output = output_singleton no o } :: !cubes
            | None -> ())
          comp
      end)
    cube.output;
  { nv; no; cubes = !cubes }

(* The original (order-dependent) single-cube containment: keeps the
   first of two equal cubes. *)
let ncover_scc c =
  let rec keep acc = function
    | [] -> List.rev acc
    | cube :: rest ->
      let contained_elsewhere =
        List.exists (fun other -> ncube_contains other cube) rest
        || List.exists (fun other -> ncube_contains other cube) acc
      in
      if contained_elsewhere then keep acc rest else keep (cube :: acc) rest
  in
  { c with cubes = keep [] c.cubes }

(* ------------------------------------------------------------------
   The original minimize loop.
   ------------------------------------------------------------------ *)

let with_dc ?dc on =
  match dc with None -> on | Some d -> { on with cubes = on.cubes @ d.cubes }

let off_set ?dc on = ncover_complement (with_dc ?dc on)

let conflicts_with_off off cube =
  List.exists (fun r -> ncube_intersect cube r <> None) off.cubes

let expand_cube ~off cube =
  check ();
  let current = ref cube in
  let num_vars = Array.length cube.input in
  for k = 0 to num_vars - 1 do
    let c = !current in
    if c.input.(k) <> Cube.Dc then begin
      let input = Array.copy c.input in
      input.(k) <- Cube.Dc;
      let candidate = { c with input } in
      if not (conflicts_with_off off candidate) then current := candidate
    end
  done;
  let num_outputs = Array.length cube.output in
  for o = 0 to num_outputs - 1 do
    let c = !current in
    if not c.output.(o) then begin
      let output = Array.copy c.output in
      output.(o) <- true;
      let candidate = { c with output } in
      if not (conflicts_with_off off candidate) then current := candidate
    end
  done;
  !current

let nexpand ~off cover =
  ncover_scc { cover with cubes = List.map (expand_cube ~off) cover.cubes }

let nirredundant ?dc cover =
  let cubes =
    List.sort (fun a b -> Int.compare (ncube_literals b) (ncube_literals a))
      cover.cubes
  in
  let keep = ref [] in
  let remaining = ref cubes in
  while !remaining <> [] do
    match !remaining with
    | [] -> ()
    | cube :: rest ->
      remaining := rest;
      let others = { cover with cubes = !keep @ rest } in
      let context = with_dc ?dc others in
      if not (ncover_covers_cube context cube) then keep := cube :: !keep
  done;
  { cover with cubes = !keep }

let nreduce ?dc cover =
  let rec go processed = function
    | [] -> List.rev processed
    | cube :: rest ->
      let others = { cover with cubes = processed @ rest } in
      let context = with_dc ?dc others in
      let unique = ncover_sharp_cube cube context in
      (match unique.cubes with
      | [] -> go processed rest
      | first :: more ->
        let shrunk = List.fold_left ncube_supercube first more in
        let shrunk = if ncube_contains cube shrunk then shrunk else cube in
        go (shrunk :: processed) rest)
  in
  { cover with cubes = go [] cover.cubes }

let nminimize ?dc on =
  let off = off_set ?dc on in
  let current = ref (nirredundant ?dc (nexpand ~off (ncover_scc on))) in
  let best = ref !current in
  let best_cost = ref (ncover_cost !current) in
  let iterations = ref 1 in
  let improving = ref true in
  while !improving && !iterations < 10 do
    incr iterations;
    let reduced = nreduce ?dc !current in
    let expanded = nexpand ~off reduced in
    let cleaned = nirredundant ?dc expanded in
    current := cleaned;
    let cost = ncover_cost cleaned in
    if cost < !best_cost then begin
      best := cleaned;
      best_cost := cost
    end
    else improving := false
  done;
  (!best, !iterations)

(* ------------------------------------------------------------------
   Public entry points on the packed types.
   ------------------------------------------------------------------ *)

let contains a b = ncube_contains (ncube_of a) (ncube_of b)

let intersect a b =
  Option.map cube_of (ncube_intersect (ncube_of a) (ncube_of b))

let tautology c = ncover_tautology (ncover_of c)

let complement c = cover_of (ncover_complement (ncover_of c))

let covers_cube c cube = ncover_covers_cube (ncover_of c) (ncube_of cube)

let single_cube_containment c = cover_of (ncover_scc (ncover_of c))

let minimize ?budget ?dc on =
  deadline :=
    (match budget with
    | None -> infinity
    | Some b -> Stc_util.Clock.now () +. b);
  tick := 0;
  Fun.protect ~finally:(fun () -> deadline := infinity) @@ fun () ->
  let dc = Option.map ncover_of dc in
  let result, iterations = nminimize ?dc (ncover_of on) in
  (cover_of result, iterations)
