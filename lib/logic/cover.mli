(** Covers: sets of multi-output cubes, with the classical two-level
    operations (cofactor, tautology, containment, complement) implemented
    by unate/binate Shannon recursion as in Espresso.

    Covers are array-backed, and the recursion runs on interned packed
    row sets with per-domain memo tables for tautology, cofactor and
    complement results (see the [minimize.tautology_calls],
    [minimize.tautology_memo_hits] and [minimize.cofactor_cache_hits]
    counters in {!Stc_obs.Metrics}).  Every operation is a pure function
    of cover content, so results do not depend on which domain computes
    them. *)

type t = private {
  num_vars : int;
  num_outputs : int;
  cubes : Cube.t array;
}

(** [make ~num_vars ~num_outputs cubes] validates dimensions.
    @raise Invalid_argument on mismatched cube sizes. *)
val make : num_vars:int -> num_outputs:int -> Cube.t list -> t

(** [of_array ~num_vars ~num_outputs cubes] is {!make} on an array the
    cover takes ownership of. *)
val of_array : num_vars:int -> num_outputs:int -> Cube.t array -> t

val empty : num_vars:int -> num_outputs:int -> t

(** [of_strings ~num_vars ~num_outputs rows] builds a cover from PLA-style
    rows like ["1-0 10"]. *)
val of_strings : num_vars:int -> num_outputs:int -> string list -> t

val size : t -> int

(** [cost c] is [(cubes, literals)] where literals counts fixed input
    positions plus asserted outputs - the usual PLA area proxy. *)
val cost : t -> int * int

(** [eval c v] evaluates the cover on input minterm [v], one boolean per
    output. *)
val eval : t -> int -> bool array

(** [add c cube] prepends a cube. *)
val add : t -> Cube.t -> t

(** [union a b] concatenates two covers of equal dimensions. *)
val union : t -> t -> t

(** [cofactor c ~wrt] is the Shannon cofactor: cubes intersecting [wrt],
    cofactored. *)
val cofactor : t -> wrt:Cube.t -> t

(** [tautology c] holds when every input minterm is covered for every
    output.  Unate reduction + binate-variable Shannon recursion with a
    unate-leaf shortcut (a unate cover is a tautology iff it contains the
    universal cube). *)
val tautology : t -> bool

(** [covers_cube c cube] tests whether [c] covers all minterms of [cube]
    for all of [cube]'s outputs. *)
val covers_cube : t -> Cube.t -> bool

(** [covers a b]: [a] covers every cube of [b]. *)
val covers : t -> t -> bool

(** [equivalent a b] is semantic equality (mutual cover containment). *)
val equivalent : t -> t -> bool

(** [complement ?jobs c] computes, output by output, the complement of
    the function represented by [c]; the result asserts output [o]
    exactly on the minterms where [c] does not.  [jobs] (default 1) fans
    the per-output complements over that many domains; the result is
    identical for every [jobs] value. *)
val complement : ?jobs:int -> t -> t

(** [sharp_cube cube c] is the set difference [cube \ c] as a cover:
    the parts of [cube] (per output of [cube]) not covered by [c]. *)
val sharp_cube : Cube.t -> t -> t

(** [single_cube_containment c] drops every cube contained in another
    single cube of [c] (cheap redundancy removal).  The result is
    canonical: cubes are ordered most-general-first (fewest input
    literals, then most outputs), and of two equal cubes exactly one
    survives, so EXPAND results do not depend on input order. *)
val single_cube_containment : t -> t

(** [minterms c] expands the cover into one cube per covered
    (minterm, output-set); exponential, for tests on small covers. *)
val minterms : t -> t

(** [clear_caches ()] drops the calling domain's memo tables (interned
    row sets, tautology/cofactor/complement results).  The tables are
    bounded and self-evicting; this is for benchmarks that want cold
    starts. *)
val clear_caches : unit -> unit

val pp : Format.formatter -> t -> unit

val to_string : t -> string
