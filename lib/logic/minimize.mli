(** Espresso-style heuristic two-level minimization: EXPAND against the
    off-set, IRREDUNDANT, REDUCE, iterated until the cost stops improving.

    This is the "logic minimization" step of the conventional synthesis
    flow (fig. 1) and of the pipeline blocks C1/C2 (fig. 4); the area
    comparison of section 4 is made on the minimized covers.

    The hot loop is bit-parallel: EXPAND raises columns against per-cube
    blocking matrices derived from the off-set (one word-AND per
    off-cube), IRREDUNDANT splits cubes into relatively-essential and
    partially-redundant classes before the sequential greedy drop, and
    the optional [jobs] argument fans the per-cube work of EXPAND and
    the classification pass of IRREDUNDANT (plus the per-output off-set
    complements) over that many OCaml domains.  Results are identical
    for every [jobs] value.  Progress is observable through the
    [minimize.*] counters of {!Stc_obs.Metrics} (expand raises
    attempted/accepted, tautology calls and memo hits, cofactor cache
    hits) and the [logic] trace spans. *)

type report = {
  initial_cubes : int;
  initial_literals : int;
  final_cubes : int;
  final_literals : int;
  iterations : int;
}

(** [minimize ?jobs ?dc on] minimizes the on-set [on] using the optional
    don't-care set [dc].  The result covers every care on-set minterm
    (don't-cares take precedence on overlap), covers nothing outside
    on+dc, and is irredundant. *)
val minimize : ?jobs:int -> ?dc:Cover.t -> Cover.t -> Cover.t * report

(** [reference ?budget ?dc on] is the original list-based minimizer
    retained in {!Naive}, with the same result contract as {!minimize}
    (the covers are semantically equivalent, not cube-identical).
    Benchmarks and the equivalence suite cross-check against it.
    [budget] caps the wall-clock seconds; exceeding it raises
    {!Naive.Timeout}. *)
val reference : ?budget:float -> ?dc:Cover.t -> Cover.t -> Cover.t * report

(** [expand ?jobs ~off cover] raises each cube to a prime cube: columns
    and outputs are lifted, cheapest first, as long as the cube stays
    disjoint from the off-set [off]; then single-cube containment cleans
    up. *)
val expand : ?jobs:int -> off:Cover.t -> Cover.t -> Cover.t

(** [irredundant ?jobs ?dc cover] removes cubes covered by the rest of
    the cover (plus [dc]): relatively essential cubes are kept, the
    partially redundant rest is dropped greedily, most specific
    first. *)
val irredundant : ?jobs:int -> ?dc:Cover.t -> Cover.t -> Cover.t

(** [reduce ?dc cover] shrinks each cube to the supercube of the parts only
    it covers, enabling the next expansion to escape local minima.  Cubes
    that become empty are dropped. *)
val reduce : ?dc:Cover.t -> Cover.t -> Cover.t

(** [off_set ?jobs ?dc on] is the complement of [on + dc]. *)
val off_set : ?jobs:int -> ?dc:Cover.t -> Cover.t -> Cover.t

(** [verify ~on ?dc result] checks the minimization contract:
    [(on \ dc) <= result <= on + dc]. *)
val verify : on:Cover.t -> ?dc:Cover.t -> Cover.t -> bool

(** [is_irredundant ?dc cover] holds when no single cube can be dropped. *)
val is_irredundant : ?dc:Cover.t -> Cover.t -> bool
