type t = { num_vars : int; num_outputs : int; cubes : Cube.t array }

module R = Cube.Raw

let check_dims ~num_vars ~num_outputs c =
  if Cube.num_vars c <> num_vars || Cube.num_outputs c <> num_outputs then
    invalid_arg "Cover.make: cube dimension mismatch"

let of_array ~num_vars ~num_outputs cubes =
  Array.iter (check_dims ~num_vars ~num_outputs) cubes;
  { num_vars; num_outputs; cubes }

let make ~num_vars ~num_outputs cubes =
  of_array ~num_vars ~num_outputs (Array.of_list cubes)

let empty ~num_vars ~num_outputs = { num_vars; num_outputs; cubes = [||] }

let of_strings ~num_vars ~num_outputs rows =
  make ~num_vars ~num_outputs (List.map Cube.of_string rows)

let size c = Array.length c.cubes

let cost c =
  let literals =
    Array.fold_left
      (fun acc cube -> acc + Cube.literals cube + Cube.output_count cube)
      0 c.cubes
  in
  (Array.length c.cubes, literals)

let eval c v =
  let ow = R.out_words c.num_outputs in
  let acc = Array.make ow 0 in
  Array.iter
    (fun cube ->
      if Cube.matches cube v then begin
        let w = R.output_words cube in
        for i = 0 to ow - 1 do
          acc.(i) <- acc.(i) lor w.(i)
        done
      end)
    c.cubes;
  Array.init c.num_outputs (fun o ->
      acc.(o / R.outs_per_word) land (1 lsl (o mod R.outs_per_word)) <> 0)

let add c cube =
  check_dims ~num_vars:c.num_vars ~num_outputs:c.num_outputs cube;
  { c with cubes = Array.append [| cube |] c.cubes }

let union a b =
  if a.num_vars <> b.num_vars || a.num_outputs <> b.num_outputs then
    invalid_arg "Cover.union: dimension mismatch";
  { a with cubes = Array.append a.cubes b.cubes }

let array_filter_map f a =
  let out = ref [] in
  for i = Array.length a - 1 downto 0 do
    match f a.(i) with Some x -> out := x :: !out | None -> ()
  done;
  Array.of_list !out

let cofactor c ~wrt =
  { c with cubes = array_filter_map (fun cube -> Cube.cofactor cube ~wrt) c.cubes }

(* --------------------------------------------------------------------
   Single-output engine: rows are bare packed input parts (the word
   arrays of {!Cube.Raw}), shared with the cubes they come from and
   never mutated in place.

   Row sets are interned into [rnode]s keyed by their canonical
   (sorted, deduped) content, so the tautology / cofactor / complement
   memo tables can be keyed by the node id: two covers that reach the
   same sub-cover during the Shannon recursion share one node and one
   memo entry.  Caches are per-domain (Domain.DLS) - every operation is
   a pure function of row content, so results are identical no matter
   which domain computes them.
   -------------------------------------------------------------------- *)

let m_taut_calls = Stc_obs.Metrics.counter "minimize.tautology_calls"

let m_taut_memo = Stc_obs.Metrics.counter "minimize.tautology_memo_hits"

let m_cof_hits = Stc_obs.Metrics.counter "minimize.cofactor_cache_hits"

type rnode = { rid : int; rows : int array array }

module Rows_key = struct
  type t = int array array

  let equal (a : t) (b : t) = a = b

  (* Deep FNV-style mix over every word: the polymorphic hash only
     samples a few elements, which collapses large row sets onto a
     handful of buckets. *)
  let hash (rows : t) =
    let h = ref (Array.length rows lxor 0x9e3779b9) in
    Array.iter
      (fun r ->
        Array.iter
          (fun w -> h := ((!h * 0x01000193) + (w lxor (w lsr 31))) land max_int)
          r)
      rows;
    !h
end

module Rows_tbl = Hashtbl.Make (Rows_key)

type cache = {
  mutable next_rid : int;
  intern : rnode Rows_tbl.t;
  taut : (int, bool) Hashtbl.t;
  cof : (int * int * bool, rnode) Hashtbl.t;
  compl_ : (int, int array array) Hashtbl.t;
}

let cache_cap = 1 lsl 16

let fresh_cache () =
  { next_rid = 0;
    intern = Rows_tbl.create 1024;
    taut = Hashtbl.create 1024;
    cof = Hashtbl.create 1024;
    compl_ = Hashtbl.create 256 }

let cache_key = Domain.DLS.new_key fresh_cache

let reset_cache c =
  (* [next_rid] stays monotonic so entries added by frames that still
     hold a pre-reset node can never alias a fresh node. *)
  Rows_tbl.reset c.intern;
  Hashtbl.reset c.taut;
  Hashtbl.reset c.cof;
  Hashtbl.reset c.compl_

let clear_caches () = reset_cache (Domain.DLS.get cache_key)

(* Canonicalize a row list: sorted, duplicates removed.  Rows are shared,
   not copied. *)
let canonical_rows rows_list =
  let a = Array.of_list rows_list in
  Array.sort Stdlib.compare a;
  let n = Array.length a in
  if n = 0 then a
  else begin
    let out = ref 1 in
    for i = 1 to n - 1 do
      if a.(i) <> a.(!out - 1) then begin
        a.(!out) <- a.(i);
        incr out
      end
    done;
    if !out = n then a else Array.sub a 0 !out
  end

let intern cache rows =
  match Rows_tbl.find_opt cache.intern rows with
  | Some n -> n
  | None ->
    if Rows_tbl.length cache.intern >= cache_cap then reset_cache cache;
    let n = { rid = cache.next_rid; rows } in
    cache.next_rid <- cache.next_rid + 1;
    Rows_tbl.add cache.intern rows n;
    n

let row_all_dc row = Array.for_all (fun w -> w = R.mask11) row

let row_pair row k =
  (row.(k / R.vars_per_word) lsr (2 * (k mod R.vars_per_word))) land 3

let row_with_pair row k code =
  let r = Array.copy row in
  let wi = k / R.vars_per_word and p = 2 * (k mod R.vars_per_word) in
  r.(wi) <- r.(wi) land lnot (3 lsl p) lor (code lsl p);
  r

(* Cofactor one row by [x_k = polarity]: [None] when the row dies, the
   unchanged (shared) row when [x_k] is don't-care. *)
let row_cofactor row k polarity =
  match row_pair row k with
  | 3 -> Some row
  | 2 -> if polarity then Some (row_with_pair row k 3) else None
  | 1 -> if polarity then None else Some (row_with_pair row k 3)
  | _ -> None

(* Pick the variable on which the rows are "most binate":
   lexicographically maximal [(min ones zeros, ones + zeros)].  [None]
   when all rows are all-dc or the set is empty. *)
let select_var nv rows =
  let ones = Array.make nv 0 and zeros = Array.make nv 0 in
  Array.iter
    (fun row ->
      for k = 0 to nv - 1 do
        match row_pair row k with
        | 1 -> zeros.(k) <- zeros.(k) + 1
        | 2 -> ones.(k) <- ones.(k) + 1
        | _ -> ()
      done)
    rows;
  let best = ref (-1) and best_min = ref (-1) and best_tot = ref (-1) in
  for k = 0 to nv - 1 do
    let o = ones.(k) and z = zeros.(k) in
    let m = min o z and tot = o + z in
    if tot > 0 && (m > !best_min || (m = !best_min && tot > !best_tot)) then begin
      best := k;
      best_min := m;
      best_tot := tot
    end
  done;
  if !best < 0 then None
  else Some (!best, !best_min > 0)

let node_cofactor cache node k polarity =
  match Hashtbl.find_opt cache.cof (node.rid, k, polarity) with
  | Some n ->
    Stc_obs.Metrics.incr m_cof_hits;
    n
  | None ->
    let rows = ref [] in
    for i = Array.length node.rows - 1 downto 0 do
      match row_cofactor node.rows.(i) k polarity with
      | Some r -> rows := r :: !rows
      | None -> ()
    done;
    let n = intern cache (canonical_rows !rows) in
    Hashtbl.add cache.cof (node.rid, k, polarity) n;
    n

let rec node_tautology cache nv node =
  Stc_obs.Metrics.incr m_taut_calls;
  match Hashtbl.find_opt cache.taut node.rid with
  | Some b ->
    Stc_obs.Metrics.incr m_taut_memo;
    b
  | None ->
    let b =
      if Array.exists row_all_dc node.rows then true
      else
        match select_var nv node.rows with
        | None -> false (* empty, or no fixed literal and no all-dc row *)
        | Some (k, binate) ->
          if binate then
            node_tautology cache nv (node_cofactor cache node k true)
            && node_tautology cache nv (node_cofactor cache node k false)
          else
            (* Unate leaf: a unate cover is a tautology iff it contains
               the universal row, which was just ruled out. *)
            false
    in
    Hashtbl.add cache.taut node.rid b;
    b

(* Complement of a single row by De Morgan: one row per fixed position,
   carrying only the opposite literal (everything else don't-care). *)
let single_row_complement nv row =
  let all_dc = Array.make (Array.length row) R.mask11 in
  let out = ref [] in
  for k = nv - 1 downto 0 do
    match row_pair row k with
    | 1 -> out := row_with_pair all_dc k 2 :: !out
    | 2 -> out := row_with_pair all_dc k 1 :: !out
    | _ -> ()
  done;
  Array.of_list !out

let rec node_complement cache nv nw node =
  if Array.length node.rows = 0 then
    (* Width is not recoverable from empty content, so this case stays
       outside the content-keyed memo. *)
    [| Array.make nw R.mask11 |]
  else
    match Hashtbl.find_opt cache.compl_ node.rid with
    | Some rows -> rows
    | None ->
      let result =
        if Array.exists row_all_dc node.rows then [||]
        else if Array.length node.rows = 1 then
          single_row_complement nv node.rows.(0)
        else
          match select_var nv node.rows with
          | None -> assert false (* nonempty without all-dc row has a literal *)
          | Some (k, _) ->
            let branch polarity =
              let sub =
                node_complement cache nv nw (node_cofactor cache node k polarity)
              in
              Array.map
                (fun r -> row_with_pair r k (if polarity then 2 else 1))
                sub
            in
            Array.append (branch true) (branch false)
      in
      Hashtbl.add cache.compl_ node.rid result;
      result

(* --------------------------------------------------------------------
   Cover-level operations on top of the engine.
   -------------------------------------------------------------------- *)

let output_words_singleton num_outputs o =
  let w = Array.make (R.out_words num_outputs) 0 in
  w.(o / R.outs_per_word) <- 1 lsl (o mod R.outs_per_word);
  w

let rows_for_output c o =
  let rows = ref [] in
  for i = Array.length c.cubes - 1 downto 0 do
    let cube = c.cubes.(i) in
    if Cube.output_bit cube o then rows := R.input_words cube :: !rows
  done;
  !rows

(* Cofactor [row] by the (non-conflicting) input part [wrt]: every
   variable fixed in [wrt] is raised to don't-care. *)
let row_cofactor_wrt nw wrt row =
  Array.init nw (fun i ->
      let f = wrt.(i) in
      let dc01 = f land (f lsr 1) land R.mask01 in
      let fixed01 = R.mask01 land lnot dc01 in
      row.(i) lor fixed01 lor (fixed01 lsl 1))

let rows_conflict nw a b =
  let conflict = ref false in
  for i = 0 to nw - 1 do
    if R.words_conflict (a.(i) land b.(i)) then conflict := true
  done;
  !conflict

let covers_cube c cube =
  let nw = R.in_words c.num_vars in
  let cache = Domain.DLS.get cache_key in
  let wrt = R.input_words cube in
  let ok = ref true in
  let o = ref 0 in
  while !ok && !o < c.num_outputs do
    if Cube.output_bit cube !o then begin
      let rows = ref [] in
      for i = Array.length c.cubes - 1 downto 0 do
        let cc = c.cubes.(i) in
        if Cube.output_bit cc !o then begin
          let r = R.input_words cc in
          if not (rows_conflict nw r wrt) then
            rows := row_cofactor_wrt nw wrt r :: !rows
        end
      done;
      let node = intern cache (canonical_rows !rows) in
      if not (node_tautology cache c.num_vars node) then ok := false
    end;
    incr o
  done;
  !ok

let tautology c =
  covers_cube c (Cube.full ~num_vars:c.num_vars ~num_outputs:c.num_outputs)

let covers a b = Array.for_all (fun cube -> covers_cube a cube) b.cubes

let equivalent a b = covers a b && covers b a

let complement_rows_for_output c o =
  let cache = Domain.DLS.get cache_key in
  let node = intern cache (canonical_rows (rows_for_output c o)) in
  node_complement cache c.num_vars (R.in_words c.num_vars) node

let complement ?(jobs = 1) c =
  let per_output =
    Stc_util.Parallel.map_range ~jobs c.num_outputs
      (fun o -> complement_rows_for_output c o)
      ~init:[||]
  in
  let cubes = ref [] in
  for o = c.num_outputs - 1 downto 0 do
    let outw = output_words_singleton c.num_outputs o in
    let rows = per_output.(o) in
    for i = Array.length rows - 1 downto 0 do
      cubes :=
        R.make_packed ~num_vars:c.num_vars ~num_outputs:c.num_outputs rows.(i)
          outw
        :: !cubes
    done
  done;
  { c with cubes = Array.of_list !cubes }

let sharp_cube cube c =
  let num_vars = Cube.num_vars cube in
  let num_outputs = Cube.num_outputs cube in
  let nw = R.in_words num_vars in
  let cache = Domain.DLS.get cache_key in
  let cube_in = R.input_words cube in
  let cubes = ref [] in
  for o = num_outputs - 1 downto 0 do
    if Cube.output_bit cube o then begin
      (* Complement [c] inside the subspace of [cube]: cofactor the
         intersecting rows first, so the recursion only sees the cube's
         free variables.  For points of [cube] the cofactored cover
         agrees with [c], so complement-then-intersect yields the same
         point set as a global complement restricted to [cube] - but
         the cofactored row sets are tiny and repeat across calls, so
         the interned complement memo actually hits. *)
      let rows = ref [] in
      for i = Array.length c.cubes - 1 downto 0 do
        let cc = c.cubes.(i) in
        if Cube.output_bit cc o then begin
          let r = R.input_words cc in
          if not (rows_conflict nw r cube_in) then
            rows := row_cofactor_wrt nw cube_in r :: !rows
        end
      done;
      let node = intern cache (canonical_rows !rows) in
      let comp = node_complement cache num_vars nw node in
      for i = Array.length comp - 1 downto 0 do
        let r = comp.(i) in
        if not (rows_conflict nw r cube_in) then begin
          let piece = Array.init nw (fun j -> r.(j) land cube_in.(j)) in
          cubes :=
            R.make_packed ~num_vars ~num_outputs piece
              (output_words_singleton num_outputs o)
            :: !cubes
        end
      done
    end
  done;
  { num_vars; num_outputs; cubes = Array.of_list !cubes }

(* Keep only maximal cubes, canonically: sort most-general-first (fewer
   input literals, then more outputs, then {!Cube.compare}) and keep a
   cube iff no already-kept cube contains it.  A container has at most
   as many input literals and at least as many outputs as the cubes it
   contains, so it sorts before them and one forward pass over the kept
   prefix suffices; equal duplicates collapse onto the first copy.  The
   result order is the sorted order - a canonical function of the cover
   as a set, independent of the input arrangement. *)
let single_cube_containment c =
  let order a b =
    let la = Cube.literals a and lb = Cube.literals b in
    if la <> lb then Int.compare la lb
    else
      let oa = Cube.output_count a and ob = Cube.output_count b in
      if oa <> ob then Int.compare ob oa else Cube.compare a b
  in
  let sorted = Array.copy c.cubes in
  Array.sort order sorted;
  let kept = ref [] in
  Array.iter
    (fun cube ->
      if not (List.exists (fun k -> Cube.contains k cube) !kept) then
        kept := cube :: !kept)
    sorted;
  { c with cubes = Array.of_list (List.rev !kept) }

let minterms c =
  if c.num_vars > 16 then invalid_arg "Cover.minterms: too many variables";
  let cubes = ref [] in
  for v = (1 lsl c.num_vars) - 1 downto 0 do
    let out = eval c v in
    if Array.exists Fun.id out then begin
      let m = Cube.minterm ~num_vars:c.num_vars ~num_outputs:c.num_outputs v in
      cubes := Cube.make ~input:(Cube.input m) ~output:out :: !cubes
    end
  done;
  { c with cubes = Array.of_list !cubes }

let pp ppf c =
  Format.fprintf ppf "@[<v>";
  Array.iter
    (fun cube -> Format.fprintf ppf "%s@," (Cube.to_string cube))
    c.cubes;
  Format.fprintf ppf "@]"

let to_string c = Format.asprintf "%a" pp c
