(* Packed positional-cube representation.  Each input variable takes two
   bits in a word (01 = Zero, 10 = One, 11 = Dc, 00 = empty/conflict);
   31 variables fit in one 63-bit OCaml int (bits 0..61).  The output part
   is a plain bitset, 62 outputs per word.  Pairs beyond [num_vars] are
   stored as 11 and output bits beyond [num_outputs] as 0, so word-wise
   operations never need end-of-array masking. *)

type trit = Zero | One | Dc

type t = {
  nv : int;
  no : int;
  inw : int array;  (* positional pairs, LSB-first: var k at bits 2k..2k+1 *)
  outw : int array;  (* output bitset, LSB-first *)
}

let vars_per_word = 31

let outs_per_word = 62

(* 01 repeated [vars_per_word] times (bits 0,2,..,60).  Written as a fold
   because the literal would not fit OCaml's 63-bit int syntax. *)
let mask01 =
  let rec go acc i = if i = 0 then acc else go ((acc lsl 2) lor 1) (i - 1) in
  go 0 vars_per_word

let mask11 = mask01 lor (mask01 lsl 1)

let in_words nv = (nv + vars_per_word - 1) / vars_per_word

let out_words no = (no + outs_per_word - 1) / outs_per_word

let popcount = Stc_bits.Word.popcount

(* Some pair of [v] is 00 (an empty variable after an AND). *)
let words_conflict v = (v lor (v lsr 1)) land mask01 <> mask01

let pack_input input =
  let nv = Array.length input in
  let w = Array.make (in_words nv) mask11 in
  Array.iteri
    (fun k t ->
      let wi = k / vars_per_word and p = 2 * (k mod vars_per_word) in
      let code = match t with Zero -> 1 | One -> 2 | Dc -> 3 in
      w.(wi) <- w.(wi) land lnot (3 lsl p) lor (code lsl p))
    input;
  w

let pack_output output =
  let no = Array.length output in
  let w = Array.make (out_words no) 0 in
  Array.iteri
    (fun o b ->
      if b then
        let wi = o / outs_per_word and p = o mod outs_per_word in
        w.(wi) <- w.(wi) lor (1 lsl p))
    output;
  w

let make ~input ~output =
  if Array.length output = 0 then invalid_arg "Cube.make: no outputs";
  if not (Array.exists Fun.id output) then
    invalid_arg "Cube.make: output part is empty";
  { nv = Array.length input;
    no = Array.length output;
    inw = pack_input input;
    outw = pack_output output }

let num_vars c = c.nv

let num_outputs c = c.no

let get c k =
  let w = c.inw.(k / vars_per_word) in
  match (w lsr (2 * (k mod vars_per_word))) land 3 with
  | 1 -> Zero
  | 2 -> One
  | _ -> Dc

let output_bit c o =
  c.outw.(o / outs_per_word) land (1 lsl (o mod outs_per_word)) <> 0

let input c = Array.init c.nv (get c)

let output c = Array.init c.no (output_bit c)

let of_string s =
  match String.split_on_char ' ' (String.trim s) with
  | [ inp; out ] ->
    let input =
      Array.init (String.length inp) (fun k ->
          match inp.[k] with
          | '0' -> Zero
          | '1' -> One
          | '-' | '2' -> Dc
          | c -> invalid_arg (Printf.sprintf "Cube.of_string: input char %C" c))
    in
    let output =
      Array.init (String.length out) (fun k ->
          match out.[k] with
          | '1' | '4' -> true
          | '0' | '~' | '-' -> false
          | c -> invalid_arg (Printf.sprintf "Cube.of_string: output char %C" c))
    in
    make ~input ~output
  | _ -> invalid_arg "Cube.of_string: expected \"<inputs> <outputs>\""

let to_string c =
  let inp =
    String.init c.nv (fun k ->
        match get c k with Zero -> '0' | One -> '1' | Dc -> '-')
  in
  let out = String.init c.no (fun o -> if output_bit c o then '1' else '0') in
  inp ^ " " ^ out

let ones n = if n >= 62 then max_int else (1 lsl n) - 1

let full ~num_vars ~num_outputs =
  let ow = out_words num_outputs in
  let outw = Array.make ow 0 in
  if ow > 0 then begin
    for i = 0 to ow - 2 do
      outw.(i) <- ones outs_per_word
    done;
    outw.(ow - 1) <- ones (num_outputs - ((ow - 1) * outs_per_word))
  end;
  { nv = num_vars;
    no = num_outputs;
    inw = Array.make (in_words num_vars) mask11;
    outw }

let minterm ~num_vars ~num_outputs value =
  let c = full ~num_vars ~num_outputs in
  let inw = Array.copy c.inw in
  for k = 0 to num_vars - 1 do
    let wi = k / vars_per_word and p = 2 * (k mod vars_per_word) in
    let code = if value land (1 lsl (num_vars - 1 - k)) <> 0 then 2 else 1 in
    inw.(wi) <- inw.(wi) land lnot (3 lsl p) lor (code lsl p)
  done;
  { c with inw }

let matches c v =
  let n = c.nv in
  let ok = ref true in
  let k = ref 0 in
  while !ok && !k < n do
    let w = Array.unsafe_get c.inw (!k / vars_per_word) in
    let pair = (w lsr (2 * (!k mod vars_per_word))) land 3 in
    let need = if v land (1 lsl (n - 1 - !k)) <> 0 then 2 else 1 in
    if pair land need = 0 then ok := false;
    incr k
  done;
  !ok

let literals c =
  let n = ref 0 in
  for i = 0 to Array.length c.inw - 1 do
    let w = Array.unsafe_get c.inw i in
    (* pairs 01 and 10 have xor-of-bits 1, pairs 11 (and 00) have 0 *)
    n := !n + popcount ((w lxor (w lsr 1)) land mask01)
  done;
  !n

let input_size c = Float.pow 2.0 (float_of_int (c.nv - literals c))

let input_contains a b =
  let ok = ref true in
  for i = 0 to Array.length a.inw - 1 do
    let bw = Array.unsafe_get b.inw i in
    if bw land Array.unsafe_get a.inw i <> bw then ok := false
  done;
  !ok

let output_contains a b =
  let ok = ref true in
  for i = 0 to Array.length a.outw - 1 do
    let bw = Array.unsafe_get b.outw i in
    if bw land Array.unsafe_get a.outw i <> bw then ok := false
  done;
  !ok

let contains a b =
  a.nv = b.nv && a.no = b.no && input_contains a b && output_contains a b

let disjoint a b =
  let conflict = ref false in
  for i = 0 to Array.length a.inw - 1 do
    if words_conflict (Array.unsafe_get a.inw i land Array.unsafe_get b.inw i)
    then conflict := true
  done;
  !conflict

let output_overlap a b =
  let overlap = ref false in
  for i = 0 to Array.length a.outw - 1 do
    if Array.unsafe_get a.outw i land Array.unsafe_get b.outw i <> 0 then
      overlap := true
  done;
  !overlap

let intersect a b =
  let nw = Array.length a.inw in
  let inw = Array.make nw 0 in
  let ok = ref true in
  for i = 0 to nw - 1 do
    let v = Array.unsafe_get a.inw i land Array.unsafe_get b.inw i in
    if words_conflict v then ok := false;
    Array.unsafe_set inw i v
  done;
  let ow = Array.length a.outw in
  let outw = Array.make ow 0 in
  let any = ref false in
  for i = 0 to ow - 1 do
    let v = Array.unsafe_get a.outw i land Array.unsafe_get b.outw i in
    if v <> 0 then any := true;
    Array.unsafe_set outw i v
  done;
  if !ok && !any then Some { a with inw; outw } else None

let distance a b =
  let d = ref 0 in
  for i = 0 to Array.length a.inw - 1 do
    let v = Array.unsafe_get a.inw i land Array.unsafe_get b.inw i in
    d := !d + popcount (lnot (v lor (v lsr 1)) land mask01)
  done;
  !d

let supercube a b =
  { a with
    inw = Array.map2 ( lor ) a.inw b.inw;
    outw = Array.map2 ( lor ) a.outw b.outw }

let consensus a b =
  if distance a b <> 1 then None
  else begin
    let nw = Array.length a.inw in
    let inw = Array.make nw 0 in
    for i = 0 to nw - 1 do
      let v = Array.unsafe_get a.inw i land Array.unsafe_get b.inw i in
      let e01 = lnot (v lor (v lsr 1)) land mask01 in
      Array.unsafe_set inw i (v lor e01 lor (e01 lsl 1))
    done;
    let ow = Array.length a.outw in
    let outw = Array.make ow 0 in
    let any = ref false in
    for i = 0 to ow - 1 do
      let v = Array.unsafe_get a.outw i land Array.unsafe_get b.outw i in
      if v <> 0 then any := true;
      Array.unsafe_set outw i v
    done;
    if !any then Some { a with inw; outw } else None
  end

let cofactor c ~wrt =
  if disjoint c wrt then None
  else begin
    let nw = Array.length c.inw in
    let inw = Array.make nw 0 in
    for i = 0 to nw - 1 do
      let f = Array.unsafe_get wrt.inw i in
      (* pairs of [wrt] that are fixed (01 or 10) become Dc in the result *)
      let dc01 = f land (f lsr 1) land mask01 in
      let fixed01 = mask01 land lnot dc01 in
      Array.unsafe_set inw i
        (Array.unsafe_get c.inw i lor fixed01 lor (fixed01 lsl 1))
    done;
    let ow = Array.length c.outw in
    let outw = Array.make ow 0 in
    let any = ref false in
    for i = 0 to ow - 1 do
      let v = Array.unsafe_get c.outw i land Array.unsafe_get wrt.outw i in
      if v <> 0 then any := true;
      Array.unsafe_set outw i v
    done;
    if !any then Some { c with inw; outw } else None
  end

let dc_count c = c.nv - literals c

let output_count c =
  let n = ref 0 in
  for i = 0 to Array.length c.outw - 1 do
    n := !n + popcount (Array.unsafe_get c.outw i)
  done;
  !n

let equal a b = a.nv = b.nv && a.no = b.no && a.inw = b.inw && a.outw = b.outw

let compare a b =
  Stdlib.compare (a.nv, a.no, a.inw, a.outw) (b.nv, b.no, b.inw, b.outw)

module Raw = struct
  let vars_per_word = vars_per_word

  let outs_per_word = outs_per_word

  let mask01 = mask01

  let mask11 = mask11

  let popcount = popcount

  let words_conflict = words_conflict

  let in_words = in_words

  let out_words = out_words

  let input_words c = c.inw

  let output_words c = c.outw

  let make_packed ~num_vars ~num_outputs inw outw =
    { nv = num_vars; no = num_outputs; inw; outw }
end
