type report = {
  initial_cubes : int;
  initial_literals : int;
  final_cubes : int;
  final_literals : int;
  iterations : int;
}

let with_dc ?dc on =
  match dc with None -> on | Some d -> Cover.union on d

let off_set ?dc on = Cover.complement (with_dc ?dc on)

let conflicts_with_off off cube =
  List.exists (fun r -> Cube.intersect cube r <> None) off.Cover.cubes

(* Raise one cube against the off-set: first input literals (in order of
   ascending variable index), then output parts. *)
let expand_cube ~off cube =
  let current = ref cube in
  let num_vars = Cube.num_vars cube in
  for k = 0 to num_vars - 1 do
    let c = !current in
    if c.Cube.input.(k) <> Cube.Dc then begin
      let input = Array.copy c.Cube.input in
      input.(k) <- Cube.Dc;
      let candidate = Cube.make ~input ~output:c.Cube.output in
      if not (conflicts_with_off off candidate) then current := candidate
    end
  done;
  let num_outputs = Cube.num_outputs cube in
  for o = 0 to num_outputs - 1 do
    let c = !current in
    if not c.Cube.output.(o) then begin
      let output = Array.copy c.Cube.output in
      output.(o) <- true;
      let candidate = Cube.make ~input:c.Cube.input ~output in
      if not (conflicts_with_off off candidate) then current := candidate
    end
  done;
  !current

let expand ~off cover =
  let raised = List.map (expand_cube ~off) cover.Cover.cubes in
  Cover.single_cube_containment
    (Cover.make ~num_vars:cover.Cover.num_vars
       ~num_outputs:cover.Cover.num_outputs raised)

let irredundant ?dc cover =
  (* Greedily drop cubes, most specific first, whenever the rest (plus the
     don't-care set) still covers them. *)
  let cubes =
    List.sort (fun a b -> Int.compare (Cube.literals b) (Cube.literals a))
      cover.Cover.cubes
  in
  let keep = ref [] in
  let remaining = ref cubes in
  while !remaining <> [] do
    match !remaining with
    | [] -> ()
    | cube :: rest ->
      remaining := rest;
      let others =
        Cover.make ~num_vars:cover.Cover.num_vars
          ~num_outputs:cover.Cover.num_outputs (!keep @ rest)
      in
      let context = with_dc ?dc others in
      if not (Cover.covers_cube context cube) then keep := cube :: !keep
  done;
  Cover.make ~num_vars:cover.Cover.num_vars ~num_outputs:cover.Cover.num_outputs
    !keep

let reduce ?dc cover =
  let num_vars = cover.Cover.num_vars
  and num_outputs = cover.Cover.num_outputs in
  let rec go processed = function
    | [] -> List.rev processed
    | cube :: rest ->
      let others = Cover.make ~num_vars ~num_outputs (processed @ rest) in
      let context = with_dc ?dc others in
      let unique = Cover.sharp_cube cube context in
      (match unique.Cover.cubes with
      | [] -> go processed rest (* fully covered elsewhere: drop *)
      | first :: more ->
        let shrunk = List.fold_left Cube.supercube first more in
        (* Never grow: reduction stays inside the original cube. *)
        let shrunk = if Cube.contains cube shrunk then shrunk else cube in
        go (shrunk :: processed) rest)
  in
  Cover.make ~num_vars ~num_outputs (go [] cover.Cover.cubes)

let verify ~on ?dc result =
  let care_on =
    match dc with
    | None -> on
    | Some d ->
      (* on \ dc: don't-cares take precedence where the sets overlap. *)
      Cover.make ~num_vars:on.Cover.num_vars ~num_outputs:on.Cover.num_outputs
        (List.concat_map
           (fun cube -> (Cover.sharp_cube cube d).Cover.cubes)
           on.Cover.cubes)
  in
  Cover.covers result care_on && Cover.covers (with_dc ?dc on) result

let is_irredundant ?dc cover =
  let num_vars = cover.Cover.num_vars
  and num_outputs = cover.Cover.num_outputs in
  let rec check before = function
    | [] -> true
    | cube :: rest ->
      let others = Cover.make ~num_vars ~num_outputs (before @ rest) in
      let context = with_dc ?dc others in
      (not (Cover.covers_cube context cube)) && check (cube :: before) rest
  in
  check [] cover.Cover.cubes

let m_calls = Stc_obs.Metrics.counter "logic.minimize_calls"

let minimize ?dc on =
  Stc_obs.Trace.span ~cat:"logic" "minimize" @@ fun () ->
  Stc_obs.Metrics.incr m_calls;
  let initial_cubes, initial_literals = Cover.cost on in
  let off = off_set ?dc on in
  let current = ref (irredundant ?dc (expand ~off (Cover.single_cube_containment on))) in
  let best = ref !current in
  let best_cost = ref (Cover.cost !current) in
  let iterations = ref 1 in
  let improving = ref true in
  while !improving && !iterations < 10 do
    incr iterations;
    let reduced = reduce ?dc !current in
    let expanded = expand ~off reduced in
    let cleaned = irredundant ?dc expanded in
    current := cleaned;
    let cost = Cover.cost cleaned in
    if cost < !best_cost then begin
      best := cleaned;
      best_cost := cost
    end
    else improving := false
  done;
  let final_cubes, final_literals = !best_cost in
  ( !best,
    { initial_cubes; initial_literals; final_cubes; final_literals;
      iterations = !iterations } )
