type report = {
  initial_cubes : int;
  initial_literals : int;
  final_cubes : int;
  final_literals : int;
  iterations : int;
}

module R = Cube.Raw

let m_calls = Stc_obs.Metrics.counter "logic.minimize_calls"

let m_raise_att = Stc_obs.Metrics.counter "minimize.expand_raises_attempted"

let m_raise_acc = Stc_obs.Metrics.counter "minimize.expand_raises_accepted"

let with_dc ?dc on =
  match dc with None -> on | Some d -> Cover.union on d

let off_set ?jobs ?dc on = Cover.complement ?jobs (with_dc ?dc on)

let rows_conflict nw a b =
  let conflict = ref false in
  for i = 0 to nw - 1 do
    if R.words_conflict (a.(i) land b.(i)) then conflict := true
  done;
  !conflict

(* Per-domain scratch for the blocking matrix, reused across cubes so the
   hot loop allocates nothing proportional to the off-set.  [sets] holds
   the conflict masks row-major ([nrel] rows of [nw] words), [col_rows]
   the row indices per conflict column in CSR layout. *)
type scratch = {
  mutable sets : int array;
  mutable counts : int array;
  mutable col_count : int array;
  mutable col_start : int array;  (* nv + 1 entries *)
  mutable col_cursor : int array;
  mutable col_rows : int array;
  mutable blocked : bool array;
}

let scratch_key =
  Domain.DLS.new_key (fun () ->
      {
        sets = [||];
        counts = [||];
        col_count = [||];
        col_start = [||];
        col_cursor = [||];
        col_rows = [||];
        blocked = [||];
      })

let ensure = Stc_bits.Arena.ensure

(* Raise one cube against the off-set using a blocking matrix: for every
   off-cube whose output part overlaps the cube's, record the set of
   input columns on which the two conflict (one word-AND per off-cube).
   A column may be raised as long as it is not the last conflict column
   of any such set; raising it removes the column from every set, and
   any set thereby reduced to a single column permanently blocks that
   remaining column.  Columns are tried in ascending blocker count (then
   index), as in espresso.  Output parts are raised afterwards: one
   disjointness scan of the raised input part over the off-set collects
   every blocked output at once. *)
let expand_cube ~(off : Cover.t) cube =
  let nv = Cube.num_vars cube in
  let no = Cube.num_outputs cube in
  let nw = R.in_words nv in
  let ow = R.out_words no in
  let cin = Array.copy (R.input_words cube) in
  let cout = Array.copy (R.output_words cube) in
  let off_cubes = off.Cover.cubes in
  let s = Domain.DLS.get scratch_key in
  s.sets <- ensure s.sets (Array.length off_cubes * nw);
  s.counts <- ensure s.counts (Array.length off_cubes);
  s.col_count <- ensure s.col_count nv;
  s.col_start <- ensure s.col_start (nv + 1);
  s.col_cursor <- ensure s.col_cursor nv;
  s.blocked <- Stc_bits.Arena.ensure_bool s.blocked nv;
  (* Conflict-column sets of the output-overlapping off-cubes. *)
  let nrel = ref 0 and total = ref 0 in
  let invalid = ref false in
  Array.iter
    (fun r ->
      if not !invalid && Cube.output_overlap r cube then begin
        let rin = R.input_words r in
        let cnt = ref 0 in
        let base = !nrel * nw in
        for w = 0 to nw - 1 do
          let v = cin.(w) land rin.(w) in
          let e = lnot (v lor (v lsr 1)) land R.mask01 in
          s.sets.(base + w) <- e;
          cnt := !cnt + R.popcount e
        done;
        (* No conflict column means the cube already intersects the
           off-set (an invalid input): mirror the old engine and return
           it unraised. *)
        if !cnt = 0 then invalid := true;
        s.counts.(!nrel) <- !cnt;
        total := !total + !cnt;
        incr nrel
      end)
    off_cubes;
  if !invalid then cube
  else begin
    let nrel = !nrel in
    s.col_rows <- ensure s.col_rows !total;
    Array.fill s.col_count 0 nv 0;
    Array.fill s.blocked 0 nv false;
    let col_of w b = (w * R.vars_per_word) + (R.popcount (b - 1) / 2) in
    (* Only meaningful for rows with a single conflict bit left: the one
       nonzero word then holds exactly that bit, which [col_of] maps to
       its column. *)
    let last_col base =
      let j = ref (-1) in
      for w = 0 to nw - 1 do
        if s.sets.(base + w) <> 0 then j := col_of w s.sets.(base + w)
      done;
      !j
    in
    for i = 0 to nrel - 1 do
      let base = i * nw in
      for w = 0 to nw - 1 do
        let e = ref s.sets.(base + w) in
        while !e <> 0 do
          let b = !e land - !e in
          let k = col_of w b in
          s.col_count.(k) <- s.col_count.(k) + 1;
          e := !e land lnot b
        done
      done;
      if s.counts.(i) = 1 then s.blocked.(last_col base) <- true
    done;
    (* CSR fill: row indices of each column's blockers. *)
    let acc = ref 0 in
    for k = 0 to nv - 1 do
      s.col_start.(k) <- !acc;
      s.col_cursor.(k) <- !acc;
      acc := !acc + s.col_count.(k)
    done;
    s.col_start.(nv) <- !acc;
    for i = 0 to nrel - 1 do
      let base = i * nw in
      for w = 0 to nw - 1 do
        let e = ref s.sets.(base + w) in
        while !e <> 0 do
          let b = !e land - !e in
          let k = col_of w b in
          s.col_rows.(s.col_cursor.(k)) <- i;
          s.col_cursor.(k) <- s.col_cursor.(k) + 1;
          e := !e land lnot b
        done
      done
    done;
    (* Fixed columns of the cube, cheapest (fewest blockers) first. *)
    let fixed = ref [] in
    for k = nv - 1 downto 0 do
      let pair = (cin.(k / R.vars_per_word) lsr (2 * (k mod R.vars_per_word))) land 3 in
      if pair <> 3 then fixed := k :: !fixed
    done;
    let order =
      List.stable_sort
        (fun a b -> Int.compare s.col_count.(a) s.col_count.(b))
        !fixed
    in
    List.iter
      (fun k ->
        Stc_obs.Metrics.incr m_raise_att;
        if not s.blocked.(k) then begin
          let wi = k / R.vars_per_word and p = 2 * (k mod R.vars_per_word) in
          cin.(wi) <- cin.(wi) lor (3 lsl p);
          Stc_obs.Metrics.incr m_raise_acc;
          for idx = s.col_start.(k) to s.col_start.(k + 1) - 1 do
            let i = s.col_rows.(idx) in
            s.sets.((i * nw) + wi) <- s.sets.((i * nw) + wi) land lnot (1 lsl p);
            s.counts.(i) <- s.counts.(i) - 1;
            if s.counts.(i) = 1 then s.blocked.(last_col (i * nw)) <- true
          done
        end)
      order;
    (* Output raising: output [o] may be added iff the (now raised) input
       part is disjoint from every off-cube asserting [o].  One scan over
       the off-set accumulates every blocked output. *)
    let blocked_out = Array.make ow 0 in
    Array.iter
      (fun r ->
        if not (rows_conflict nw cin (R.input_words r)) then begin
          let rout = R.output_words r in
          for w = 0 to ow - 1 do
            blocked_out.(w) <- blocked_out.(w) lor rout.(w)
          done
        end)
      off_cubes;
    for o = 0 to no - 1 do
      let wi = o / R.outs_per_word and p = o mod R.outs_per_word in
      if cout.(wi) land (1 lsl p) = 0 then begin
        Stc_obs.Metrics.incr m_raise_att;
        if blocked_out.(wi) land (1 lsl p) = 0 then begin
          cout.(wi) <- cout.(wi) lor (1 lsl p);
          Stc_obs.Metrics.incr m_raise_acc
        end
      end
    done;
    R.make_packed ~num_vars:nv ~num_outputs:no cin cout
  end

let expand ?(jobs = 1) ~off cover =
  Stc_obs.Trace.span ~cat:"logic" "expand" @@ fun () ->
  let n = Array.length cover.Cover.cubes in
  let raised =
    if n = 0 then [||]
    else
      Stc_util.Parallel.map_range ~jobs n
        (fun i -> expand_cube ~off cover.Cover.cubes.(i))
        ~init:cover.Cover.cubes.(0)
  in
  Cover.single_cube_containment
    (Cover.of_array ~num_vars:cover.Cover.num_vars
       ~num_outputs:cover.Cover.num_outputs raised)

let cubes_except cubes alive i =
  let out = ref [] in
  for j = Array.length cubes - 1 downto 0 do
    if j <> i && alive.(j) then out := cubes.(j) :: !out
  done;
  !out

(* IRREDUNDANT via the relatively-essential / partially-redundant split:
   one (parallelizable) covered-by-all-others test per cube classifies it
   as relatively essential (kept unconditionally) or partially redundant;
   only the partially-redundant cubes then go through the sequential
   greedy drop, most-specific first. *)
let irredundant ?(jobs = 1) ?dc cover =
  Stc_obs.Trace.span ~cat:"logic" "irredundant" @@ fun () ->
  let cubes = cover.Cover.cubes in
  let n = Array.length cubes in
  if n <= 1 then cover
  else begin
    let num_vars = cover.Cover.num_vars
    and num_outputs = cover.Cover.num_outputs in
    let all_alive = Array.make n true in
    let context_of alive i =
      with_dc ?dc
        (Cover.make ~num_vars ~num_outputs (cubes_except cubes alive i))
    in
    let covered =
      Stc_util.Parallel.map_range ~jobs n
        (fun i -> Cover.covers_cube (context_of all_alive i) cubes.(i))
        ~init:false
    in
    let partially_redundant = ref [] in
    for i = n - 1 downto 0 do
      if covered.(i) then partially_redundant := i :: !partially_redundant
    done;
    let order =
      List.stable_sort
        (fun a b ->
          let la = Cube.literals cubes.(a) and lb = Cube.literals cubes.(b) in
          if la <> lb then Int.compare lb la
          else Cube.compare cubes.(a) cubes.(b))
        !partially_redundant
    in
    let alive = Array.make n true in
    List.iter
      (fun i ->
        if Cover.covers_cube (context_of alive i) cubes.(i) then
          alive.(i) <- false)
      order;
    let kept = ref [] in
    for i = n - 1 downto 0 do
      if alive.(i) then kept := cubes.(i) :: !kept
    done;
    Cover.make ~num_vars ~num_outputs !kept
  end

let reduce ?dc cover =
  Stc_obs.Trace.span ~cat:"logic" "reduce" @@ fun () ->
  let cubes = Array.copy cover.Cover.cubes in
  let n = Array.length cubes in
  let alive = Array.make n true in
  let num_vars = cover.Cover.num_vars
  and num_outputs = cover.Cover.num_outputs in
  for i = 0 to n - 1 do
    let others = Cover.make ~num_vars ~num_outputs (cubes_except cubes alive i) in
    let context = with_dc ?dc others in
    let unique = Cover.sharp_cube cubes.(i) context in
    match Array.to_list unique.Cover.cubes with
    | [] -> alive.(i) <- false (* fully covered elsewhere: drop *)
    | first :: more ->
      let shrunk = List.fold_left Cube.supercube first more in
      (* Never grow: reduction stays inside the original cube. *)
      if Cube.contains cubes.(i) shrunk then cubes.(i) <- shrunk
  done;
  let kept = ref [] in
  for i = n - 1 downto 0 do
    if alive.(i) then kept := cubes.(i) :: !kept
  done;
  Cover.make ~num_vars ~num_outputs !kept

let verify ~on ?dc result =
  let care_on =
    match dc with
    | None -> on
    | Some d ->
      (* on \ dc: don't-cares take precedence where the sets overlap. *)
      Cover.of_array ~num_vars:on.Cover.num_vars
        ~num_outputs:on.Cover.num_outputs
        (Array.concat
           (Array.to_list
              (Array.map
                 (fun cube -> (Cover.sharp_cube cube d).Cover.cubes)
                 on.Cover.cubes)))
  in
  Cover.covers result care_on && Cover.covers (with_dc ?dc on) result

let is_irredundant ?dc cover =
  let cubes = cover.Cover.cubes in
  let n = Array.length cubes in
  let alive = Array.make n true in
  let num_vars = cover.Cover.num_vars
  and num_outputs = cover.Cover.num_outputs in
  let ok = ref true in
  for i = 0 to n - 1 do
    if !ok then begin
      let others =
        Cover.make ~num_vars ~num_outputs (cubes_except cubes alive i)
      in
      if Cover.covers_cube (with_dc ?dc others) cubes.(i) then ok := false
    end
  done;
  !ok

let minimize ?(jobs = 1) ?dc on =
  Stc_obs.Trace.span ~cat:"logic" "minimize" @@ fun () ->
  Stc_obs.Metrics.incr m_calls;
  let initial_cubes, initial_literals = Cover.cost on in
  let off = off_set ~jobs ?dc on in
  let current =
    ref (irredundant ~jobs ?dc (expand ~jobs ~off (Cover.single_cube_containment on)))
  in
  let best = ref !current in
  let best_cost = ref (Cover.cost !current) in
  let iterations = ref 1 in
  let improving = ref true in
  while !improving && !iterations < 10 do
    incr iterations;
    let reduced = reduce ?dc !current in
    let expanded = expand ~jobs ~off reduced in
    let cleaned = irredundant ~jobs ?dc expanded in
    current := cleaned;
    let cost = Cover.cost cleaned in
    if cost < !best_cost then begin
      best := cleaned;
      best_cost := cost
    end
    else improving := false
  done;
  let final_cubes, final_literals = !best_cost in
  ( !best,
    { initial_cubes; initial_literals; final_cubes; final_literals;
      iterations = !iterations } )

let reference ?budget ?dc on =
  let initial_cubes, initial_literals = Cover.cost on in
  let result, iterations = Naive.minimize ?budget ?dc on in
  let final_cubes, final_literals = Cover.cost result in
  ( result,
    { initial_cubes; initial_literals; final_cubes; final_literals;
      iterations } )
