type file = { name : string option; on : Cover.t; dc : Cover.t }

exception Parse_error of string

let fail fmt = Printf.ksprintf (fun m -> raise (Parse_error m)) fmt

let parse text =
  let num_vars = ref (-1)
  and num_outputs = ref (-1)
  and name = ref None
  and declared_products = ref (-1) in
  let on = ref [] and dc = ref [] in
  let lines = String.split_on_char '\n' text in
  List.iteri
    (fun idx line ->
      let lineno = idx + 1 in
      let line =
        match String.index_opt line '#' with
        | None -> line
        | Some k -> String.sub line 0 k
      in
      let tokens =
        String.split_on_char ' '
          (String.map (function '\t' | '\r' -> ' ' | c -> c) line)
        |> List.filter (fun t -> t <> "")
      in
      match tokens with
      | [] -> ()
      | [ ".i"; v ] -> num_vars := int_of_string v
      | [ ".o"; v ] -> num_outputs := int_of_string v
      | [ ".p"; v ] -> declared_products := int_of_string v
      | [ ".e" ] | [ ".end" ] -> ()
      | ".ilb" :: _ | ".ob" :: _ -> () (* labels are ignored *)
      | [ ".name"; n ] -> name := Some n
      | [ ".type"; t ] ->
        if t <> "f" && t <> "fd" then fail "line %d: unsupported .type %s" lineno t
      | [ inputs; outputs ] ->
        if !num_vars < 0 || !num_outputs < 0 then
          fail "line %d: row before .i/.o" lineno;
        if String.length inputs <> !num_vars then
          fail "line %d: input width %d, expected %d" lineno
            (String.length inputs) !num_vars;
        if String.length outputs <> !num_outputs then
          fail "line %d: output width %d, expected %d" lineno
            (String.length outputs) !num_outputs;
        let input =
          Array.init !num_vars (fun k ->
              match inputs.[k] with
              | '0' -> Cube.Zero
              | '1' -> Cube.One
              | '-' | '2' -> Cube.Dc
              | c -> fail "line %d: input char %C" lineno c)
        in
        let on_out = Array.make !num_outputs false in
        let dc_out = Array.make !num_outputs false in
        String.iteri
          (fun o ch ->
            match ch with
            | '1' | '4' -> on_out.(o) <- true
            | '0' | '~' -> ()
            | '-' | '2' -> dc_out.(o) <- true
            | c -> fail "line %d: output char %C" lineno c)
          outputs;
        if Array.exists Fun.id on_out then
          on := Cube.make ~input ~output:on_out :: !on;
        if Array.exists Fun.id dc_out then
          dc := Cube.make ~input ~output:dc_out :: !dc
      | tok :: _ -> fail "line %d: unexpected token %S" lineno tok)
    lines;
  if !num_vars < 0 then fail "missing .i";
  if !num_outputs < 0 then fail "missing .o";
  ignore !declared_products;
  {
    name = !name;
    on = Cover.make ~num_vars:!num_vars ~num_outputs:!num_outputs (List.rev !on);
    dc = Cover.make ~num_vars:!num_vars ~num_outputs:!num_outputs (List.rev !dc);
  }

let print ?name ?dc on =
  let buf = Buffer.create 256 in
  (match name with
  | Some n -> Buffer.add_string buf (Printf.sprintf ".name %s\n" n)
  | None -> ());
  let dc_cubes = match dc with None -> [||] | Some d -> d.Cover.cubes in
  Buffer.add_string buf (Printf.sprintf ".i %d\n" on.Cover.num_vars);
  Buffer.add_string buf (Printf.sprintf ".o %d\n" on.Cover.num_outputs);
  Buffer.add_string buf
    (Printf.sprintf ".type %s\n" (if dc_cubes = [||] then "f" else "fd"));
  Buffer.add_string buf
    (Printf.sprintf ".p %d\n"
       (Array.length on.Cover.cubes + Array.length dc_cubes));
  let add_cube ~dc_row cube =
    let inp =
      String.init (Cube.num_vars cube) (fun k ->
          match Cube.get cube k with
          | Cube.Zero -> '0'
          | Cube.One -> '1'
          | Cube.Dc -> '-')
    in
    let out =
      String.init (Cube.num_outputs cube) (fun o ->
          if Cube.output_bit cube o then (if dc_row then '-' else '1') else '0')
    in
    Buffer.add_string buf (inp ^ " " ^ out ^ "\n")
  in
  Array.iter (add_cube ~dc_row:false) on.Cover.cubes;
  Array.iter (add_cube ~dc_row:true) dc_cubes;
  Buffer.add_string buf ".e\n";
  Buffer.contents buf
