(** Multi-output cubes in positional notation, the unit of two-level logic
    minimization.

    A cube over [n] input variables and [m] outputs has an input part
    (each variable is {!Zero}, {!One} or {!Dc}) and an output part (a bit
    per function: does this product term feed output [o]?).  A cube
    represents the set of minterms matching the input part, asserted for
    every output in the output part.

    The representation is packed: two bits per input variable (positional
    cube notation, 31 variables per word) and one bit per output, so the
    set operations below are word-wise [land]/[lor]/popcount loops rather
    than per-literal array walks.  Use {!get}/{!output_bit} for random
    access and {!input}/{!output} to materialize plain arrays. *)

type trit = Zero | One | Dc

type t

(** [make ~input ~output] validates and builds a cube.
    @raise Invalid_argument if [output] is all-false or empty. *)
val make : input:trit array -> output:bool array -> t

(** [of_string "1-0 10"] parses a PLA-style row: input characters
    [0 1 - 2] ([2] is espresso's alternative don't-care), output
    characters [0 1] ([4] is accepted for 1, [~] and [-] for 0). *)
val of_string : string -> t

val to_string : t -> string

(** [full ~num_vars ~num_outputs] is the universal cube: all inputs
    don't-care, all outputs asserted. *)
val full : num_vars:int -> num_outputs:int -> t

(** [minterm ~num_vars ~num_outputs value] is the cube of the single input
    minterm [value] (bit [num_vars-1] of [value] is variable 0), asserted
    for all outputs. *)
val minterm : num_vars:int -> num_outputs:int -> int -> t

val num_vars : t -> int

val num_outputs : t -> int

(** [get c k] is input variable [k] of the cube. *)
val get : t -> int -> trit

(** [output_bit c o] is output bit [o] of the cube. *)
val output_bit : t -> int -> bool

(** [input c] materializes the input part as a fresh trit array. *)
val input : t -> trit array

(** [output c] materializes the output part as a fresh bool array. *)
val output : t -> bool array

(** [matches c v] tests whether input minterm [v] lies in the cube. *)
val matches : t -> int -> bool

(** [literals c] counts the non-don't-care input positions. *)
val literals : t -> int

(** [dc_count c] counts the don't-care input positions
    ([num_vars - literals]). *)
val dc_count : t -> int

(** [output_count c] counts the asserted output bits. *)
val output_count : t -> int

(** [input_size c] is the number of minterms covered ([2^dc_count]). *)
val input_size : t -> float

(** [contains a b] tests whether [a] covers [b] (input part covers and
    output part is a superset).  Allocation-free. *)
val contains : t -> t -> bool

(** [disjoint a b] tests whether the input parts do not intersect (some
    variable is fixed to opposite values), i.e. [distance a b > 0].
    Allocation-free. *)
val disjoint : t -> t -> bool

(** [output_overlap a b] tests whether the output parts share an asserted
    bit.  Allocation-free. *)
val output_overlap : t -> t -> bool

(** [intersect a b] is the cube of minterms in both, asserted for outputs
    in both; [None] when empty. *)
val intersect : t -> t -> t option

(** [distance a b] is the number of input variables on which [a] and [b]
    have opposite fixed values; 0 means the input parts intersect. *)
val distance : t -> t -> int

(** [supercube a b] is the smallest cube containing both. *)
val supercube : t -> t -> t

(** [consensus a b] is the consensus cube when the input parts conflict in
    exactly one variable: that variable raised to don't-care, every other
    variable intersected, outputs intersected.  [None] when the distance
    is not 1 or the output intersection is empty. *)
val consensus : t -> t -> t option

(** [cofactor c ~wrt] is the Shannon cofactor of [c] with respect to cube
    [wrt] (input parts only; output part of [c] is restricted to outputs of
    [wrt]): [None] if [c] does not intersect [wrt]. *)
val cofactor : t -> wrt:t -> t option

(** [equal a b] structural equality. *)
val equal : t -> t -> bool

val compare : t -> t -> int

(**/**)

(** Packed-word internals for {!Cover} and {!Minimize}.  The word arrays
    returned by [input_words]/[output_words] are the cube's own storage:
    treat them as read-only. *)
module Raw : sig
  val vars_per_word : int

  val outs_per_word : int

  (** [01] repeated [vars_per_word] times (the low bit of every pair). *)
  val mask01 : int

  (** [11] repeated [vars_per_word] times (an all-don't-care word). *)
  val mask11 : int

  val popcount : int -> int

  (** [words_conflict v] tests whether some pair of [v] is [00] - an
      empty variable after intersecting two input words. *)
  val words_conflict : int -> bool

  val in_words : int -> int

  val out_words : int -> int

  val input_words : t -> int array

  val output_words : t -> int array

  (** [make_packed ~num_vars ~num_outputs inw outw] wraps already-packed
      words without copying or validation; the caller must keep the
      tail-fill invariants (pairs beyond [num_vars] are [11], output bits
      beyond [num_outputs] are [0]). *)
  val make_packed : num_vars:int -> num_outputs:int -> int array -> int array -> t
end
