(** The pre-packed trit-array reference engine.

    This module preserves the original list-based [Cube]/[Cover]/
    [Minimize] code paths, byte for byte in behavior, as an executable
    specification: the QCheck equivalence suite and the [bench minimize]
    cross-check run every packed operation against it.  Entry points
    take and return the packed public types; all internal work happens
    on plain trit arrays.  It is deliberately slow - do not call it from
    synthesis paths. *)

(** Raised by {!minimize} when its [budget] is exhausted. *)
exception Timeout

val contains : Cube.t -> Cube.t -> bool

val intersect : Cube.t -> Cube.t -> Cube.t option

val tautology : Cover.t -> bool

val complement : Cover.t -> Cover.t

val covers_cube : Cover.t -> Cube.t -> bool

(** The original order-dependent single-cube containment (keeps the
    first of two equal cubes) - retained so the canonicality fix in
    {!Cover.single_cube_containment} has a regression baseline. *)
val single_cube_containment : Cover.t -> Cover.t

(** [minimize ?budget ?dc on] is the original espresso loop (greedy
    EXPAND against a materialized off-set, drop-and-retry IRREDUNDANT,
    REDUCE); returns the minimized cover and the iteration count.
    [budget] caps the wall-clock seconds spent; when exceeded the run
    raises {!Timeout} (used by [bench minimize] to report a lower-bound
    speedup on covers the reference engine cannot finish). *)
val minimize : ?budget:float -> ?dc:Cover.t -> Cover.t -> Cover.t * int
