(** Bridge from {!Stc_util.Parallel}'s utilization monitor to the
    metrics registry and the span tracer.

    Once {!install}ed, every [Parallel.iter_range] /
    [iter_range_local] / [map_range] reports per-worker busy/idle time,
    cursor-grab and item counts into the [obs.parallel.*] metrics family
    (including a busy-permille utilization histogram) and back-dates a
    [parallel.worker.N] span over each worker's busy window in traces.
    With all sinks disabled the installed callback costs two atomic
    loads per worker per range — install it once at program start. *)

(** The callback itself, exposed for tests. *)
val observe : Stc_util.Parallel.worker_stats -> unit

val install : unit -> unit
val uninstall : unit -> unit
