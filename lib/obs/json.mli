(** Minimal JSON tree: emitter and parser.

    The container image carries no JSON library, so the observability
    layer hand-rolls one.  It is deliberately small: enough to write the
    Chrome-trace / metrics-snapshot files and to parse them back in tests
    and in the [tools/json_lint] CI gate.  Numbers parse to [Int] when
    they are exact integers and to [Float] otherwise; strings support the
    standard escapes including [\uXXXX] (encoded back as UTF-8). *)

type t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | String of string
  | List of t list
  | Obj of (string * t) list

(** [to_string v] prints [v] compactly; [~pretty:true] indents with two
    spaces per level. *)
val to_string : ?pretty:bool -> t -> string

(** [to_channel oc v] writes [to_string ~pretty:true v] followed by a
    newline. *)
val to_channel : out_channel -> t -> unit

(** [write path v] writes [v] pretty-printed to [path]. *)
val write : string -> t -> unit

(** [parse s] parses one JSON value (surrounding whitespace allowed;
    trailing garbage is an error). *)
val parse : string -> (t, string) result

(** [parse_exn s] is [parse s], raising [Failure] on malformed input. *)
val parse_exn : string -> t

(** [parse_file path] reads and parses [path]. *)
val parse_file : string -> (t, string) result

(** [member key v] looks [key] up in an [Obj], [None] otherwise. *)
val member : string -> t -> t option
