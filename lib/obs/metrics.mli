(** Lock-free metrics registry.

    Named counters, gauges and fixed-bucket histograms, safe to bump from
    any OCaml 5 domain.  Counters and histogram cells are sharded by
    domain id ({!shards} slots, merged on snapshot), so a bump from the
    solver hot loop costs one branch on the global enable flag plus one
    [Atomic.fetch_and_add] on a shard that is, in the common case,
    touched by a single domain.  Merged totals are exact: every bump
    lands in exactly one shard.

    Registration (the [counter] / [gauge] / [histogram] constructors) is
    the only mutex-protected path; it is idempotent (get-or-create) and
    meant for the module-initialisation or setup phase.  Handles stay
    valid across {!reset}, which zeroes values but keeps registrations.

    When the registry is disabled (the default), every bump is a no-op
    after a single [Atomic.get] on the enable flag, so un-instrumented
    runs pay nothing measurable. *)

(** Number of per-domain shards (a power of two; domain ids are folded
    into it, so collisions merge counts but never lose them). *)
val shards : int

(** [set_enabled b] turns the whole registry on or off. *)
val set_enabled : bool -> unit

val enabled : unit -> bool

(** [reset ()] zeroes every registered metric (registrations survive). *)
val reset : unit -> unit

type counter

(** [counter name] registers (or retrieves) the counter [name].
    @raise Invalid_argument if [name] is registered with another kind. *)
val counter : string -> counter

(** [incr c] adds 1 to the current domain's shard (no-op when disabled). *)
val incr : counter -> unit

(** [add c v] adds [v] (no-op when disabled). *)
val add : counter -> int -> unit

(** [counter_value c] merges all shards. *)
val counter_value : counter -> int

type gauge

(** [gauge name] registers (or retrieves) the gauge [name]. *)
val gauge : string -> gauge

(** [set_gauge g v] stores the latest value (no-op when disabled). *)
val set_gauge : gauge -> int -> unit

(** [set_gauge_max g v] raises the gauge to [v] if larger (high-water
    mark; safe against concurrent raisers, no-op when disabled). *)
val set_gauge_max : gauge -> int -> unit

val gauge_value : gauge -> int

type histogram

(** Default histogram bucket edges: powers of two from 1 to 65536. *)
val default_edges : int array

(** [histogram ?edges name] registers (or retrieves) a histogram with the
    given strictly increasing bucket upper edges.  Observation [v] lands
    in the first bucket with [v <= edges.(i)], or in the overflow bucket
    beyond the last edge. *)
val histogram : ?edges:int array -> string -> histogram

(** [observe h v] records one observation (no-op when disabled). *)
val observe : histogram -> int -> unit

type hist_snapshot = {
  edges : int array;
  counts : int array;  (** length [Array.length edges + 1]; last = overflow *)
  count : int;  (** total observations *)
  sum : int;  (** sum of observed values *)
}

type value = Counter of int | Gauge of int | Histogram of hist_snapshot

(** [snapshot ()] merges every shard of every registered metric, sorted
    by name. *)
val snapshot : unit -> (string * value) list

(** [find name] is the merged value of [name], if registered. *)
val find : string -> value option

(** [to_json ()] renders the snapshot as
    [{ "metrics": [ {"name": ..., "kind": ..., ...}, ... ] }]. *)
val to_json : unit -> Json.t

(** [write path] writes [to_json ()] to [path]. *)
val write : string -> unit
