module Clock = Stc_util.Clock

(* Sampling profiler.

   A ticker domain wakes every [1/hz] seconds and snapshots the active
   span stack of every domain (maintained by Trace whenever tracing or
   sampling is enabled).  Samples aggregate into a folded-stack table —
   the flamegraph.pl / speedscope input format: one line per distinct
   stack, frames joined by ';', a space, and the sample count.

   Sampling is statistical by construction: the stack reads race with
   the running domains (see Trace.live_stacks), and on a loaded box the
   ticker's period stretches.  Both effects only blur attribution, they
   never corrupt the table. *)

let default_hz = 199
(* A prime just under 200 Hz: dense enough for sub-second solves, cheap
   enough for a one-core box, and off every round-number period a
   phase-locked workload could hide behind. *)

(* ------------------------------------------------------------------ *)
(* Frame escaping and the folded format                                 *)
(* ------------------------------------------------------------------ *)

(* Folded syntax reserves ';' (frame separator), ' ' (count separator)
   and the line structure itself; '%' is the escape lead-in.  Percent
   encoding keeps escaped names readable and round-trips exactly. *)
let escape_frame name =
  let must_escape = function
    | ';' | ' ' | '\t' | '\n' | '\r' | '%' -> true
    | _ -> false
  in
  if not (String.exists must_escape name) then name
  else begin
    let b = Buffer.create (String.length name + 8) in
    String.iter
      (fun c ->
        if must_escape c then Buffer.add_string b (Printf.sprintf "%%%02x" (Char.code c))
        else Buffer.add_char b c)
      name;
    Buffer.contents b
  end

let unescape_frame s =
  let n = String.length s in
  let b = Buffer.create n in
  let hex c =
    match c with
    | '0' .. '9' -> Char.code c - Char.code '0'
    | 'a' .. 'f' -> Char.code c - Char.code 'a' + 10
    | 'A' .. 'F' -> Char.code c - Char.code 'A' + 10
    | _ -> invalid_arg "Profile.unescape_frame: bad hex digit"
  in
  let rec go i =
    if i < n then
      if s.[i] = '%' then begin
        if i + 2 >= n then invalid_arg "Profile.unescape_frame: truncated escape";
        Buffer.add_char b (Char.chr ((hex s.[i + 1] * 16) + hex s.[i + 2]));
        go (i + 3)
      end
      else begin
        Buffer.add_char b s.[i];
        go (i + 1)
      end
  in
  go 0;
  Buffer.contents b

let fold_key stack = String.concat ";" (List.map escape_frame stack)

let unfold_key key =
  List.map unescape_frame (String.split_on_char ';' key)

(* ------------------------------------------------------------------ *)
(* Reports                                                             *)
(* ------------------------------------------------------------------ *)

type report = {
  hz : int;
  samples : int;  (** total samples taken, = sum of folded counts *)
  ticks : int;  (** ticker wakeups (a tick with no live span samples nothing) *)
  wall_s : float;
  folded : (string list * int) list;  (** stack (outermost first), count *)
}

(* Per-name self (samples with the name as leaf) and total (samples with
   the name anywhere, counted once per sample) attribution. *)
let self_total r =
  let tbl : (string, int ref * int ref) Hashtbl.t = Hashtbl.create 16 in
  let cell name =
    match Hashtbl.find_opt tbl name with
    | Some c -> c
    | None ->
      let c = (ref 0, ref 0) in
      Hashtbl.replace tbl name c;
      c
  in
  List.iter
    (fun (stack, count) ->
      (match List.rev stack with
      | leaf :: _ ->
        let self, _ = cell leaf in
        self := !self + count
      | [] -> ());
      List.iter
        (fun name ->
          let _, total = cell name in
          total := !total + count)
        (List.sort_uniq String.compare stack))
    r.folded;
  Hashtbl.fold (fun name (self, total) acc -> (name, !self, !total) :: acc) tbl []
  |> List.sort (fun (_, a, _) (_, b, _) -> compare b a)

(* ------------------------------------------------------------------ *)
(* The ticker                                                          *)
(* ------------------------------------------------------------------ *)

type running = {
  hz : int;
  table : (string, int ref) Hashtbl.t;  (* folded key -> count; ticker-only *)
  stop_requested : bool Atomic.t;
  mutable samples : int;
  mutable ticks : int;
  started_ns : int;
  mutable ticker : unit Domain.t option;
}

let current : running option ref = ref None
let current_mutex = Mutex.create ()

let running () =
  Mutex.protect current_mutex (fun () -> Option.is_some !current)

let start ?(hz = default_hz) () =
  if hz < 1 then invalid_arg "Profile.start: hz < 1";
  Mutex.protect current_mutex @@ fun () ->
  match !current with
  | Some _ -> invalid_arg "Profile.start: already running"
  | None ->
    let st =
      {
        hz;
        table = Hashtbl.create 64;
        stop_requested = Atomic.make false;
        samples = 0;
        ticks = 0;
        started_ns = Int64.to_int (Clock.now_ns ());
        ticker = None;
      }
    in
    Trace.set_sampling true;
    let period = 1.0 /. float_of_int hz in
    let ticker () =
      (* The ticker's own DLS buffer registers in Trace; it never runs a
         span, so its stack stays empty and is skipped by live_stacks. *)
      while not (Atomic.get st.stop_requested) do
        Unix.sleepf period;
        st.ticks <- st.ticks + 1;
        List.iter
          (fun (_dom, stack) ->
            st.samples <- st.samples + 1;
            let key = fold_key stack in
            match Hashtbl.find_opt st.table key with
            | Some c -> incr c
            | None -> Hashtbl.replace st.table key (ref 1))
          (Trace.live_stacks ())
      done
    in
    st.ticker <- Some (Domain.spawn ticker);
    current := Some st

let stop () =
  let st =
    Mutex.protect current_mutex (fun () ->
        match !current with
        | None -> invalid_arg "Profile.stop: not running"
        | Some st ->
          current := None;
          st)
  in
  Atomic.set st.stop_requested true;
  Option.iter Domain.join st.ticker;
  Trace.set_sampling false;
  let wall_ns = Int64.to_int (Clock.now_ns ()) - st.started_ns in
  let folded =
    Hashtbl.fold (fun key count acc -> (key, !count) :: acc) st.table []
    (* Hot stacks first; key breaks ties so output is deterministic for
       a fixed sample table. *)
    |> List.sort (fun (ka, ca) (kb, cb) ->
           match compare cb ca with 0 -> compare ka kb | c -> c)
    |> List.map (fun (key, count) -> (unfold_key key, count))
  in
  {
    hz = st.hz;
    samples = st.samples;
    ticks = st.ticks;
    wall_s = float_of_int wall_ns *. 1e-9;
    folded;
  }

(* ------------------------------------------------------------------ *)
(* Folded file I/O                                                     *)
(* ------------------------------------------------------------------ *)

let header_magic = "# stc-profile "

let header_json (r : report) =
  Json.Obj
    [
      ("schema_version", Json.Int 1);
      ("hz", Json.Int r.hz);
      ("samples", Json.Int r.samples);
      ("ticks", Json.Int r.ticks);
      ("wall_s", Json.Float r.wall_s);
    ]

let to_folded_string r =
  let b = Buffer.create 1024 in
  Buffer.add_string b header_magic;
  Buffer.add_string b (Json.to_string (header_json r));
  Buffer.add_char b '\n';
  List.iter
    (fun (stack, count) ->
      Buffer.add_string b (fold_key stack);
      Buffer.add_char b ' ';
      Buffer.add_string b (string_of_int count);
      Buffer.add_char b '\n')
    r.folded;
  Buffer.contents b

let write_folded path r =
  let oc = open_out path in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () -> output_string oc (to_folded_string r))

let parse_folded text =
  let lines = String.split_on_char '\n' text in
  let parse_line line =
    match String.rindex_opt line ' ' with
    | None -> Error (Printf.sprintf "folded line without count: %S" line)
    | Some i -> (
      let stack_part = String.sub line 0 i in
      let count_part = String.sub line (i + 1) (String.length line - i - 1) in
      match int_of_string_opt count_part with
      | Some count when count > 0 && stack_part <> "" -> (
        match unfold_key stack_part with
        | stack -> Ok (stack, count)
        | exception Invalid_argument msg -> Error msg)
      | _ -> Error (Printf.sprintf "bad folded count: %S" line))
  in
  match lines with
  | [] -> Error "empty folded file"
  | header :: rest ->
    if not (String.length header > String.length header_magic
            && String.sub header 0 (String.length header_magic) = header_magic)
    then Error "missing '# stc-profile' header line"
    else begin
      let meta =
        String.sub header (String.length header_magic)
          (String.length header - String.length header_magic)
      in
      match Json.parse meta with
      | Error msg -> Error ("header json: " ^ msg)
      | Ok meta -> (
        let int_key k =
          match Json.member k meta with Some (Json.Int n) -> Some n | _ -> None
        in
        match (int_key "hz", int_key "samples", int_key "ticks") with
        | Some hz, Some samples, Some ticks -> (
          let body = List.filter (fun l -> l <> "") rest in
          let rec fold acc = function
            | [] -> Ok (List.rev acc)
            | l :: tl -> (
              match parse_line l with
              | Ok entry -> fold (entry :: acc) tl
              | Error msg -> Error msg)
          in
          match fold [] body with
          | Error msg -> Error msg
          | Ok folded ->
            let wall_s =
              match Json.member "wall_s" meta with
              | Some (Json.Float f) -> f
              | Some (Json.Int n) -> float_of_int n
              | _ -> 0.0
            in
            Ok { hz; samples; ticks; wall_s; folded })
        | _ -> Error "header json: missing hz/samples/ticks")
    end
