(** Structured span tracer.

    Records begin / end / instant events with monotonic
    {!Stc_util.Clock} timestamps and the recording domain's id.  Events
    are appended to a buffer owned by the recording domain
    (domain-local storage, registered once under a mutex on first use),
    so the hot path is one enable-flag check plus an unsynchronised
    array write — no cross-domain contention.

    Each span additionally captures a {!Gc.quick_stat} delta (minor /
    promoted / major words, collection counts, end-of-span heap size):
    the delta rides the End event into the Chrome-trace [args] and feeds
    the [obs.gc.*] metrics family — word and collection counters are
    charged by outermost spans only (nested spans overlap their parents)
    while the [obs.gc.max_heap_words] high-water gauge is raised on
    every span end.

    Spans also maintain a per-domain stack of active span names that the
    sampling profiler ({!Profile}) observes from its ticker domain; the
    stack is kept whenever tracing {e or} sampling is enabled.

    Flushing merges all buffers (call it after the worker domains have
    been joined) and writes either

    - Chrome [trace_event] JSON ([{"traceEvents": [...]}]) — loadable in
      Perfetto or [chrome://tracing], one track per domain — or
    - JSONL, one event object per line.

    When tracing and sampling are both disabled (the default), {!span}
    runs its thunk directly: the no-op path is two [Atomic.get]s. *)

type phase = Begin | End | Instant

(** GC movement across one span ([Gc.quick_stat] at begin vs end; word
    counts are per-domain, matching the span's owner).  [heap_words] is
    the absolute major-heap size at span end, not a delta. *)
type gc_delta = {
  minor_words : int;
  promoted_words : int;
  major_words : int;
  minor_collections : int;
  major_collections : int;
  heap_words : int;
}

type event = {
  name : string;
  cat : string;
  phase : phase;
  ts_ns : int;  (** monotonic, absolute nanoseconds *)
  dom : int;  (** recording domain id *)
  gc : gc_delta option;  (** [End] events of spans, when tracing *)
}

val set_enabled : bool -> unit
val enabled : unit -> bool

(** [set_sampling b] keeps the per-domain span stacks alive for the
    profiler even when event recording is off.  {!Profile.start} flips
    this; spans pay one extra array write each way while it is set. *)
val set_sampling : bool -> unit

val sampling : unit -> bool

(** [reset ()] drops every buffered event. *)
val reset : unit -> unit

(** [span ?cat name f] brackets [f ()] with begin/end events (emitted on
    exceptions too).  Disabled: tail-calls [f]. *)
val span : ?cat:string -> string -> (unit -> 'a) -> 'a

(** [instant ?cat name] records a point event. *)
val instant : ?cat:string -> string -> unit

(** [interval ?cat name ~start_ns ~stop_ns] records a back-dated
    Begin/End pair with caller-supplied timestamps, attributed to the
    calling domain — for work whose extent is only known after the fact
    (e.g. a parallel worker's busy window). *)
val interval : ?cat:string -> string -> start_ns:int -> stop_ns:int -> unit

(** [live_stacks ()] snapshots every domain's active span stack,
    outermost first, skipping empty ones.  Reads race with the owning
    domains by design (the profiler samples); the push publish order
    keeps each snapshot prefix-consistent. *)
val live_stacks : unit -> (int * string list) list

(** [events ()] merges all domain buffers, sorted by timestamp. *)
val events : unit -> event list

(** [phase_totals ()] matches begin/end pairs per domain (LIFO nesting)
    and returns total seconds spent per span name, summed across domains
    — so concurrent DFS workers contribute more than wall-clock time.
    Unmatched begins are charged up to the latest buffered timestamp. *)
val phase_totals : unit -> (string * float) list

(** [to_chrome_json ()] renders the merged events in Chrome
    [trace_event] format (timestamps rebased to the earliest event, in
    microseconds; [tid] is the domain id; span End events carry the GC
    delta under [args]). *)
val to_chrome_json : unit -> Json.t

val write_chrome : string -> unit
val write_jsonl : string -> unit

(** [write path] picks the format from the extension: [.jsonl] writes
    JSONL, anything else Chrome trace JSON. *)
val write : string -> unit
