(** Structured span tracer.

    Records begin / end / instant events with monotonic
    {!Stc_util.Clock} timestamps and the recording domain's id.  Events
    are appended to a buffer owned by the recording domain
    (domain-local storage, registered once under a mutex on first use),
    so the hot path is one enable-flag check plus an unsynchronised
    array write — no cross-domain contention.

    Flushing merges all buffers (call it after the worker domains have
    been joined) and writes either

    - Chrome [trace_event] JSON ([{"traceEvents": [...]}]) — loadable in
      Perfetto or [chrome://tracing], one track per domain — or
    - JSONL, one event object per line.

    When tracing is disabled (the default), {!span} runs its thunk
    directly: the no-op path is a single [Atomic.get]. *)

type phase = Begin | End | Instant

type event = {
  name : string;
  cat : string;
  phase : phase;
  ts_ns : int;  (** monotonic, absolute nanoseconds *)
  dom : int;  (** recording domain id *)
}

val set_enabled : bool -> unit
val enabled : unit -> bool

(** [reset ()] drops every buffered event. *)
val reset : unit -> unit

(** [span ?cat name f] brackets [f ()] with begin/end events (emitted on
    exceptions too).  Disabled: tail-calls [f]. *)
val span : ?cat:string -> string -> (unit -> 'a) -> 'a

(** [instant ?cat name] records a point event. *)
val instant : ?cat:string -> string -> unit

(** [events ()] merges all domain buffers, sorted by timestamp. *)
val events : unit -> event list

(** [phase_totals ()] matches begin/end pairs per domain (LIFO nesting)
    and returns total seconds spent per span name, summed across domains
    — so concurrent DFS workers contribute more than wall-clock time.
    Unmatched begins are charged up to the latest buffered timestamp. *)
val phase_totals : unit -> (string * float) list

(** [to_chrome_json ()] renders the merged events in Chrome
    [trace_event] format (timestamps rebased to the earliest event, in
    microseconds; [tid] is the domain id). *)
val to_chrome_json : unit -> Json.t

val write_chrome : string -> unit
val write_jsonl : string -> unit

(** [write path] picks the format from the extension: [.jsonl] writes
    JSONL, anything else Chrome trace JSON. *)
val write : string -> unit
