(* Bridge from Stc_util.Parallel's utilization monitor into the
   observability sinks.  Stc_util sits below this library, so Parallel
   cannot call Metrics/Trace itself; instead it exposes a callback and
   this module installs one that

   - bumps the obs.parallel.* counters (busy/idle nanoseconds, cursor
     grabs, items, workers) and a per-mille utilization histogram, and
   - back-dates a "parallel.worker" span over the worker's busy window
     so parallel sections show up as per-domain blocks in traces.

   The callback runs on the worker's own domain right after its last
   grab, before the fork/join returns - both sinks are domain-safe.
   When every sink is disabled the callback is two atomic loads. *)

module Parallel = Stc_util.Parallel

let m_busy = lazy (Metrics.counter "obs.parallel.busy_ns")
let m_idle = lazy (Metrics.counter "obs.parallel.idle_ns")
let m_grabs = lazy (Metrics.counter "obs.parallel.grabs")
let m_items = lazy (Metrics.counter "obs.parallel.items")
let m_workers = lazy (Metrics.counter "obs.parallel.workers")

(* Busy share of the worker's wall window, in permille (0..1000): the
   direct parallel-efficiency read-out.  Edges resolve the interesting
   high end. *)
let h_util =
  lazy
    (Metrics.histogram
       ~edges:[| 100; 250; 500; 700; 800; 900; 950; 990; 1000 |]
       "obs.parallel.utilization_permille")

let observe (s : Parallel.worker_stats) =
  if Metrics.enabled () then begin
    let wall = max 1 (s.Parallel.stop_ns - s.Parallel.start_ns) in
    let busy = min s.Parallel.busy_ns wall in
    Metrics.add (Lazy.force m_busy) busy;
    Metrics.add (Lazy.force m_idle) (wall - busy);
    Metrics.add (Lazy.force m_grabs) s.Parallel.grabs;
    Metrics.add (Lazy.force m_items) s.Parallel.items;
    Metrics.incr (Lazy.force m_workers);
    Metrics.observe (Lazy.force h_util) (busy * 1000 / wall)
  end;
  if Trace.enabled () then
    Trace.interval ~cat:"parallel"
      (Printf.sprintf "parallel.worker.%d" s.Parallel.worker)
      ~start_ns:s.Parallel.start_ns ~stop_ns:s.Parallel.stop_ns

let install () = Parallel.set_monitor (Some observe)
let uninstall () = Parallel.set_monitor None
