(** Periodic progress reporter.

    A handle created with a [render] closure; the instrumented hot loop
    calls {!tick} at will (typically once per node).  The tick checks a
    global enable flag, then an atomic next-due timestamp, and at most
    one caller wins the compare-and-set and prints one report to the
    output channel (stderr by default) — so reporting works unchanged
    when several domains tick concurrently.

    Output adapts to the destination: on an interactive terminal the
    report redraws one status line in place ([\r] + erase); on anything
    else — a pipe, a CI log, a redirect — or when the [NO_COLOR]
    environment variable is set (or [TERM] is unset/[dumb]), every
    update is a plain full line, so captured logs stay readable.

    Disabled (the default), a tick is a single [Atomic.get]. *)

type t

(** How reports are written: [Ansi] redraws one line in place, [Plain]
    emits a line per update. *)
type style = Ansi | Plain

val set_enabled : bool -> unit
val enabled : unit -> bool

(** [set_interval secs] changes the default reporting period
    (initially 0.5 s) used by subsequently created reporters. *)
val set_interval : float -> unit

(** [create ?interval ?out ?style ~label ~render ()] makes a reporter.
    The first report is due one [interval] after creation.  [style]
    defaults to auto-detection: [Ansi] only when [out] is a TTY,
    [NO_COLOR] is unset/empty and [TERM] is neither unset nor [dumb]. *)
val create :
  ?interval:float ->
  ?out:out_channel ->
  ?style:style ->
  label:string ->
  render:(unit -> string) ->
  unit ->
  t

(** The style the reporter resolved to (exposed for tests). *)
val style : t -> style

(** [tick t] prints "[label +elapsed] render ()" when a report is due. *)
val tick : t -> unit

(** [force t] prints unconditionally (when enabled) — used for a final
    summary line; in [Ansi] style this commits the line with a
    newline. *)
val force : t -> unit
