(** Periodic progress reporter.

    A handle created with a [render] closure; the instrumented hot loop
    calls {!tick} at will (typically once per node).  The tick checks a
    global enable flag, then an atomic next-due timestamp, and at most
    one caller wins the compare-and-set and prints one line to the
    output channel (stderr by default) — so reporting works unchanged
    when several domains tick concurrently.

    Disabled (the default), a tick is a single [Atomic.get]. *)

type t

val set_enabled : bool -> unit
val enabled : unit -> bool

(** [set_interval secs] changes the default reporting period
    (initially 0.5 s) used by subsequently created reporters. *)
val set_interval : float -> unit

(** [create ?interval ?out ~label ~render ()] makes a reporter.  The
    first report is due one [interval] after creation. *)
val create :
  ?interval:float ->
  ?out:out_channel ->
  label:string ->
  render:(unit -> string) ->
  unit ->
  t

(** [tick t] prints "[label +elapsed] render ()" when a report is due. *)
val tick : t -> unit

(** [force t] prints unconditionally (when enabled) — used for a final
    summary line. *)
val force : t -> unit
