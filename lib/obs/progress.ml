module Clock = Stc_util.Clock

let enabled_flag = Atomic.make false
let set_enabled b = Atomic.set enabled_flag b
let enabled () = Atomic.get enabled_flag

let default_interval = Atomic.make 0.5
let set_interval secs = Atomic.set default_interval secs

type style = Ansi | Plain

(* CI logs must stay readable: carriage-return redraw is only worth it
   on an interactive terminal, and NO_COLOR (https://no-color.org) is a
   request for plain output that we extend to cursor tricks.  Anything
   non-TTY (a pipe, a redirected log) gets one full line per update. *)
let auto_style out =
  let tty =
    match Unix.isatty (Unix.descr_of_out_channel out) with
    | b -> b
    | exception Unix.Unix_error _ -> false
    | exception Sys_error _ -> false
  in
  let no_color =
    match Sys.getenv_opt "NO_COLOR" with Some "" | None -> false | Some _ -> true
  in
  let dumb_term =
    match Sys.getenv_opt "TERM" with Some "dumb" | None -> true | Some _ -> false
  in
  if tty && (not no_color) && not dumb_term then Ansi else Plain

type t = {
  interval : float;
  out : out_channel;
  style : style;
  label : string;
  render : unit -> string;
  started : float;
  next_due : float Atomic.t;
}

let create ?interval ?(out = stderr) ?style ~label ~render () =
  let interval =
    match interval with Some i -> i | None -> Atomic.get default_interval
  in
  let style = match style with Some s -> s | None -> auto_style out in
  let started = Clock.now () in
  {
    interval;
    out;
    style;
    label;
    render;
    started;
    next_due = Atomic.make (started +. interval);
  }

let style t = t.style

let report ?(final = false) t now =
  let line =
    Printf.sprintf "[%s +%.2fs] %s" t.label (now -. t.started) (t.render ())
  in
  match t.style with
  | Plain -> Printf.fprintf t.out "%s\n%!" line
  | Ansi ->
    (* Redraw in place; the final report commits the line with a
       newline so the shell prompt does not overwrite it. *)
    Printf.fprintf t.out "\r\027[K%s%s%!" line (if final then "\n" else "")

let tick t =
  if enabled () then begin
    let due = Atomic.get t.next_due in
    let now = Clock.now () in
    (* The CAS elects a single reporter among concurrently ticking
       domains and re-arms the timer in one step. *)
    if now >= due && Atomic.compare_and_set t.next_due due (now +. t.interval)
    then report t now
  end

let force t = if enabled () then report ~final:true t (Clock.now ())
