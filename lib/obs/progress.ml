module Clock = Stc_util.Clock

let enabled_flag = Atomic.make false
let set_enabled b = Atomic.set enabled_flag b
let enabled () = Atomic.get enabled_flag

let default_interval = Atomic.make 0.5
let set_interval secs = Atomic.set default_interval secs

type t = {
  interval : float;
  out : out_channel;
  label : string;
  render : unit -> string;
  started : float;
  next_due : float Atomic.t;
}

let create ?interval ?(out = stderr) ~label ~render () =
  let interval =
    match interval with Some i -> i | None -> Atomic.get default_interval
  in
  let started = Clock.now () in
  {
    interval;
    out;
    label;
    render;
    started;
    next_due = Atomic.make (started +. interval);
  }

let report t now =
  Printf.fprintf t.out "[%s +%.2fs] %s\n%!" t.label (now -. t.started)
    (t.render ())

let tick t =
  if enabled () then begin
    let due = Atomic.get t.next_due in
    let now = Clock.now () in
    (* The CAS elects a single reporter among concurrently ticking
       domains and re-arms the timer in one step. *)
    if now >= due && Atomic.compare_and_set t.next_due due (now +. t.interval)
    then report t now
  end

let force t = if enabled () then report t (Clock.now ())
