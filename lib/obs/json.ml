type t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | String of string
  | List of t list
  | Obj of (string * t) list

(* ------------------------------------------------------------------ *)
(* Printing                                                            *)
(* ------------------------------------------------------------------ *)

let escape buf s =
  Buffer.add_char buf '"';
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\r' -> Buffer.add_string buf "\\r"
      | '\t' -> Buffer.add_string buf "\\t"
      | '\b' -> Buffer.add_string buf "\\b"
      | '\012' -> Buffer.add_string buf "\\f"
      | c when Char.code c < 0x20 ->
        Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.add_char buf '"'

(* Shortest representation that still parses back to the same double. *)
let float_to_string f =
  if Float.is_integer f && Float.abs f < 1e15 then Printf.sprintf "%.1f" f
  else
    let try_prec p =
      let s = Printf.sprintf "%.*g" p f in
      if float_of_string s = f then Some s else None
    in
    match List.find_map try_prec [ 6; 9; 12; 15 ] with
    | Some s -> s
    | None -> Printf.sprintf "%.17g" f

let to_string ?(pretty = false) v =
  let buf = Buffer.create 256 in
  let pad depth = if pretty then Buffer.add_string buf (String.make (2 * depth) ' ') in
  let nl () = if pretty then Buffer.add_char buf '\n' in
  let rec go depth v =
    match v with
    | Null -> Buffer.add_string buf "null"
    | Bool b -> Buffer.add_string buf (string_of_bool b)
    | Int i -> Buffer.add_string buf (string_of_int i)
    | Float f ->
      (* JSON has no NaN / infinity tokens. *)
      if Float.is_nan f || Float.abs f = infinity then
        Buffer.add_string buf "null"
      else Buffer.add_string buf (float_to_string f)
    | String s -> escape buf s
    | List [] -> Buffer.add_string buf "[]"
    | List items ->
      Buffer.add_char buf '[';
      nl ();
      List.iteri
        (fun k item ->
          if k > 0 then begin
            Buffer.add_char buf ',';
            nl ()
          end;
          pad (depth + 1);
          go (depth + 1) item)
        items;
      nl ();
      pad depth;
      Buffer.add_char buf ']'
    | Obj [] -> Buffer.add_string buf "{}"
    | Obj fields ->
      Buffer.add_char buf '{';
      nl ();
      List.iteri
        (fun k (key, item) ->
          if k > 0 then begin
            Buffer.add_char buf ',';
            nl ()
          end;
          pad (depth + 1);
          escape buf key;
          Buffer.add_string buf (if pretty then ": " else ":");
          go (depth + 1) item)
        fields;
      nl ();
      pad depth;
      Buffer.add_char buf '}'
  in
  go 0 v;
  Buffer.contents buf

let to_channel oc v =
  output_string oc (to_string ~pretty:true v);
  output_char oc '\n'

let write path v =
  let oc = open_out path in
  Fun.protect ~finally:(fun () -> close_out oc) (fun () -> to_channel oc v)

(* ------------------------------------------------------------------ *)
(* Parsing (recursive descent)                                         *)
(* ------------------------------------------------------------------ *)

exception Parse_error of string

let parse_exn s =
  let n = String.length s in
  let pos = ref 0 in
  let error msg = raise (Parse_error (Printf.sprintf "%s at offset %d" msg !pos)) in
  let peek () = if !pos < n then Some s.[!pos] else None in
  let advance () = incr pos in
  let skip_ws () =
    while
      !pos < n && match s.[!pos] with ' ' | '\t' | '\n' | '\r' -> true | _ -> false
    do
      advance ()
    done
  in
  let expect c =
    match peek () with
    | Some c' when c' = c -> advance ()
    | _ -> error (Printf.sprintf "expected %C" c)
  in
  let literal word value =
    let l = String.length word in
    if !pos + l <= n && String.sub s !pos l = word then begin
      pos := !pos + l;
      value
    end
    else error (Printf.sprintf "expected %s" word)
  in
  let hex4 () =
    if !pos + 4 > n then error "truncated \\u escape";
    let v = int_of_string ("0x" ^ String.sub s !pos 4) in
    pos := !pos + 4;
    v
  in
  let add_utf8 buf code =
    (* Encode a Unicode scalar value as UTF-8. *)
    if code < 0x80 then Buffer.add_char buf (Char.chr code)
    else if code < 0x800 then begin
      Buffer.add_char buf (Char.chr (0xC0 lor (code lsr 6)));
      Buffer.add_char buf (Char.chr (0x80 lor (code land 0x3F)))
    end
    else if code < 0x10000 then begin
      Buffer.add_char buf (Char.chr (0xE0 lor (code lsr 12)));
      Buffer.add_char buf (Char.chr (0x80 lor ((code lsr 6) land 0x3F)));
      Buffer.add_char buf (Char.chr (0x80 lor (code land 0x3F)))
    end
    else begin
      Buffer.add_char buf (Char.chr (0xF0 lor (code lsr 18)));
      Buffer.add_char buf (Char.chr (0x80 lor ((code lsr 12) land 0x3F)));
      Buffer.add_char buf (Char.chr (0x80 lor ((code lsr 6) land 0x3F)));
      Buffer.add_char buf (Char.chr (0x80 lor (code land 0x3F)))
    end
  in
  let parse_string () =
    expect '"';
    let buf = Buffer.create 16 in
    let rec go () =
      match peek () with
      | None -> error "unterminated string"
      | Some '"' -> advance ()
      | Some '\\' ->
        advance ();
        (match peek () with
        | Some '"' -> Buffer.add_char buf '"'; advance ()
        | Some '\\' -> Buffer.add_char buf '\\'; advance ()
        | Some '/' -> Buffer.add_char buf '/'; advance ()
        | Some 'n' -> Buffer.add_char buf '\n'; advance ()
        | Some 't' -> Buffer.add_char buf '\t'; advance ()
        | Some 'r' -> Buffer.add_char buf '\r'; advance ()
        | Some 'b' -> Buffer.add_char buf '\b'; advance ()
        | Some 'f' -> Buffer.add_char buf '\012'; advance ()
        | Some 'u' ->
          advance ();
          let hi = hex4 () in
          let code =
            (* Surrogate pair? *)
            if hi >= 0xD800 && hi <= 0xDBFF && !pos + 6 <= n
               && s.[!pos] = '\\' && s.[!pos + 1] = 'u'
            then begin
              pos := !pos + 2;
              let lo = hex4 () in
              0x10000 + ((hi - 0xD800) lsl 10) + (lo - 0xDC00)
            end
            else hi
          in
          add_utf8 buf code
        | _ -> error "bad escape");
        go ()
      | Some c -> Buffer.add_char buf c; advance (); go ()
    in
    go ();
    Buffer.contents buf
  in
  let parse_number () =
    let start = !pos in
    let is_float = ref false in
    if peek () = Some '-' then advance ();
    let digits () =
      while !pos < n && s.[!pos] >= '0' && s.[!pos] <= '9' do
        advance ()
      done
    in
    digits ();
    if peek () = Some '.' then begin
      is_float := true;
      advance ();
      digits ()
    end;
    (match peek () with
    | Some ('e' | 'E') ->
      is_float := true;
      advance ();
      (match peek () with Some ('+' | '-') -> advance () | _ -> ());
      digits ()
    | _ -> ());
    let text = String.sub s start (!pos - start) in
    if text = "" || text = "-" then error "bad number";
    if !is_float then Float (float_of_string text)
    else
      match int_of_string_opt text with
      | Some i -> Int i
      | None -> Float (float_of_string text)
  in
  let rec parse_value () =
    skip_ws ();
    match peek () with
    | None -> error "unexpected end of input"
    | Some '{' ->
      advance ();
      skip_ws ();
      if peek () = Some '}' then begin
        advance ();
        Obj []
      end
      else begin
        let rec fields acc =
          skip_ws ();
          let key = parse_string () in
          skip_ws ();
          expect ':';
          let v = parse_value () in
          skip_ws ();
          match peek () with
          | Some ',' -> advance (); fields ((key, v) :: acc)
          | Some '}' -> advance (); List.rev ((key, v) :: acc)
          | _ -> error "expected , or }"
        in
        Obj (fields [])
      end
    | Some '[' ->
      advance ();
      skip_ws ();
      if peek () = Some ']' then begin
        advance ();
        List []
      end
      else begin
        let rec items acc =
          let v = parse_value () in
          skip_ws ();
          match peek () with
          | Some ',' -> advance (); items (v :: acc)
          | Some ']' -> advance (); List.rev (v :: acc)
          | _ -> error "expected , or ]"
        in
        List (items [])
      end
    | Some '"' -> String (parse_string ())
    | Some 't' -> literal "true" (Bool true)
    | Some 'f' -> literal "false" (Bool false)
    | Some 'n' -> literal "null" Null
    | Some _ -> parse_number ()
  in
  let v = parse_value () in
  skip_ws ();
  if !pos <> n then error "trailing garbage";
  v

let parse_exn s =
  try parse_exn s with Parse_error msg -> failwith ("Json.parse: " ^ msg)

let parse s =
  match parse_exn s with
  | v -> Ok v
  | exception Failure msg -> Error msg

let parse_file path =
  let ic = open_in_bin path in
  let text =
    Fun.protect
      ~finally:(fun () -> close_in ic)
      (fun () -> really_input_string ic (in_channel_length ic))
  in
  parse text

let member key = function
  | Obj fields -> List.assoc_opt key fields
  | _ -> None
