let shards = 64

(* Domain ids increase monotonically over the process lifetime; folding
   them into a fixed shard count can alias two live domains to one slot,
   which contends but stays exact (fetch_and_add). *)
let shard () = (Domain.self () :> int) land (shards - 1)

let enabled_flag = Atomic.make false
let set_enabled b = Atomic.set enabled_flag b
let enabled () = Atomic.get enabled_flag

type counter = int Atomic.t array
type gauge = int Atomic.t

type hist = {
  edges : int array;
  (* cells.(shard * buckets + bucket); buckets = |edges| + 1 overflow. *)
  cells : int Atomic.t array;
  sums : int Atomic.t array;  (* per-shard sum of observed values *)
}

type histogram = hist

type metric = MCounter of counter | MGauge of gauge | MHist of hist

let registry : (string, metric) Hashtbl.t = Hashtbl.create 64
let registry_mutex = Mutex.create ()

let atomics n = Array.init n (fun _ -> Atomic.make 0)

let register name make check =
  Mutex.protect registry_mutex (fun () ->
      match Hashtbl.find_opt registry name with
      | Some m -> check m
      | None ->
        let m = make () in
        Hashtbl.replace registry name m;
        m)

let kind_error name =
  invalid_arg
    (Printf.sprintf "Metrics: %S already registered with another kind" name)

let counter name =
  match
    register name
      (fun () -> MCounter (atomics shards))
      (function MCounter _ as m -> m | _ -> kind_error name)
  with
  | MCounter c -> c
  | _ -> assert false

let gauge name =
  match
    register name
      (fun () -> MGauge (Atomic.make 0))
      (function MGauge _ as m -> m | _ -> kind_error name)
  with
  | MGauge g -> g
  | _ -> assert false

let default_edges =
  Array.init 17 (fun k -> 1 lsl k) (* 1, 2, 4, ..., 65536 *)

let histogram ?(edges = default_edges) name =
  if Array.length edges = 0 then invalid_arg "Metrics.histogram: empty edges";
  Array.iteri
    (fun i e ->
      if i > 0 && edges.(i - 1) >= e then
        invalid_arg "Metrics.histogram: edges must be strictly increasing")
    edges;
  let buckets = Array.length edges + 1 in
  match
    register name
      (fun () ->
        MHist
          {
            edges = Array.copy edges;
            cells = atomics (shards * buckets);
            sums = atomics shards;
          })
      (function
        | MHist h as m ->
          if h.edges <> edges then
            invalid_arg
              (Printf.sprintf "Metrics: histogram %S edges mismatch" name)
          else m
        | _ -> kind_error name)
  with
  | MHist h -> h
  | _ -> assert false

let incr_cell cell = ignore (Atomic.fetch_and_add cell 1)

let incr (c : counter) = if enabled () then incr_cell c.(shard ())

let add (c : counter) v =
  if enabled () then ignore (Atomic.fetch_and_add c.(shard ()) v)

let counter_value (c : counter) =
  Array.fold_left (fun acc cell -> acc + Atomic.get cell) 0 c

let set_gauge (g : gauge) v = if enabled () then Atomic.set g v

(* Keep-the-max semantics for high-water gauges (max heap size).  The
   CAS loop makes concurrent raisers race safely; a stale read only
   retries. *)
let rec set_gauge_max (g : gauge) v =
  if enabled () then begin
    let cur = Atomic.get g in
    if v > cur && not (Atomic.compare_and_set g cur v) then set_gauge_max g v
  end

let gauge_value (g : gauge) = Atomic.get g

let bucket_of edges v =
  let nb = Array.length edges in
  let rec go lo hi =
    (* First index with v <= edges.(i), else the overflow bucket nb. *)
    if lo >= hi then lo
    else
      let mid = (lo + hi) / 2 in
      if v <= edges.(mid) then go lo mid else go (mid + 1) hi
  in
  go 0 nb

let observe (h : hist) v =
  if enabled () then begin
    let buckets = Array.length h.edges + 1 in
    let s = shard () in
    incr_cell h.cells.((s * buckets) + bucket_of h.edges v);
    ignore (Atomic.fetch_and_add h.sums.(s) v)
  end

type hist_snapshot = {
  edges : int array;
  counts : int array;
  count : int;
  sum : int;
}

type value = Counter of int | Gauge of int | Histogram of hist_snapshot

let merge_hist (h : hist) =
  let buckets = Array.length h.edges + 1 in
  let counts = Array.make buckets 0 in
  Array.iteri
    (fun i cell -> counts.(i mod buckets) <- counts.(i mod buckets) + Atomic.get cell)
    h.cells;
  {
    edges = Array.copy h.edges;
    counts;
    count = Array.fold_left ( + ) 0 counts;
    sum = Array.fold_left (fun acc s -> acc + Atomic.get s) 0 h.sums;
  }

let value_of = function
  | MCounter c -> Counter (counter_value c)
  | MGauge g -> Gauge (gauge_value g)
  | MHist h -> Histogram (merge_hist h)

let snapshot () =
  Mutex.protect registry_mutex (fun () ->
      Hashtbl.fold (fun name m acc -> (name, value_of m) :: acc) registry [])
  |> List.sort (fun (a, _) (b, _) -> String.compare a b)

let find name =
  Mutex.protect registry_mutex (fun () -> Hashtbl.find_opt registry name)
  |> Option.map value_of

let reset () =
  Mutex.protect registry_mutex (fun () ->
      Hashtbl.iter
        (fun _ m ->
          match m with
          | MCounter c -> Array.iter (fun cell -> Atomic.set cell 0) c
          | MGauge g -> Atomic.set g 0
          | MHist h ->
            Array.iter (fun cell -> Atomic.set cell 0) h.cells;
            Array.iter (fun s -> Atomic.set s 0) h.sums)
        registry)

let json_of_value name v : Json.t =
  let base = [ ("name", Json.String name) ] in
  match v with
  | Counter n -> Json.Obj (base @ [ ("kind", Json.String "counter"); ("value", Json.Int n) ])
  | Gauge n -> Json.Obj (base @ [ ("kind", Json.String "gauge"); ("value", Json.Int n) ])
  | Histogram h ->
    Json.Obj
      (base
      @ [
          ("kind", Json.String "histogram");
          ("count", Json.Int h.count);
          ("sum", Json.Int h.sum);
          ("edges", Json.List (Array.to_list (Array.map (fun e -> Json.Int e) h.edges)));
          ("counts", Json.List (Array.to_list (Array.map (fun c -> Json.Int c) h.counts)));
        ])

let to_json () =
  Json.Obj
    [
      ("metrics", Json.List (List.map (fun (n, v) -> json_of_value n v) (snapshot ())));
    ]

let write path = Json.write path (to_json ())
