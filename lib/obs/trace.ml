module Clock = Stc_util.Clock

type phase = Begin | End | Instant

(* GC movement across one span, from [Gc.quick_stat] at begin and end.
   Word counts are per-domain in OCaml 5, which matches the span's
   owner; [heap_words] is the absolute major-heap size at span end. *)
type gc_delta = {
  minor_words : int;
  promoted_words : int;
  major_words : int;
  minor_collections : int;
  major_collections : int;
  heap_words : int;
}

type event = {
  name : string;
  cat : string;
  phase : phase;
  ts_ns : int;
  dom : int;
  gc : gc_delta option;
}

let enabled_flag = Atomic.make false
let set_enabled b = Atomic.set enabled_flag b
let enabled () = Atomic.get enabled_flag

(* The profiler keeps span stacks alive without event recording: when
   sampling is on (and tracing possibly off), spans still push/pop their
   name on the domain's stack so a ticker domain can observe it. *)
let sampling_flag = Atomic.make false
let set_sampling b = Atomic.set sampling_flag b
let sampling () = Atomic.get sampling_flag

let instrumented () = enabled () || sampling ()

(* Per-domain growable event buffer plus the live span stack.  Only the
   owning domain mutates either; event merging happens from the flushing
   domain after workers are joined (the solver joins its domains before
   any flush, so reads race only with domains that are already dead).
   The span stack, by contrast, is read racily by the profiler's ticker
   domain while the owner runs: the push writes the frame before bumping
   [depth] and the pop only decrements [depth], so a racy reader sees at
   worst a one-frame-stale stack, never garbage. *)
type buf = {
  mutable events : event array;
  mutable len : int;
  mutable frames : string array;
  mutable depth : int;
  buf_dom : int;
}

let dummy =
  { name = ""; cat = ""; phase = Instant; ts_ns = 0; dom = 0; gc = None }

(* All buffers ever created, for merging and for stack sampling; guarded
   by [buffers_mutex].  Buffers of dead domains stay listed — their
   events are part of the trace (and their stacks are empty). *)
let buffers : buf list ref = ref []
let buffers_mutex = Mutex.create ()

let key : buf Domain.DLS.key =
  Domain.DLS.new_key (fun () ->
      let b =
        {
          events = Array.make 256 dummy;
          len = 0;
          frames = Array.make 32 "";
          depth = 0;
          buf_dom = (Domain.self () :> int);
        }
      in
      Mutex.protect buffers_mutex (fun () -> buffers := b :: !buffers);
      b)

let push ev =
  let b = Domain.DLS.get key in
  if b.len = Array.length b.events then begin
    let grown = Array.make (2 * b.len) dummy in
    Array.blit b.events 0 grown 0 b.len;
    b.events <- grown
  end;
  b.events.(b.len) <- ev;
  b.len <- b.len + 1

let stack_push name =
  let b = Domain.DLS.get key in
  if b.depth = Array.length b.frames then begin
    (* Publish the grown array before any frame write: a concurrent
       sampler holding the old array still reads valid (shorter) data. *)
    let grown = Array.make (2 * b.depth) "" in
    Array.blit b.frames 0 grown 0 b.depth;
    b.frames <- grown
  end;
  b.frames.(b.depth) <- name;
  b.depth <- b.depth + 1

let stack_pop () =
  let b = Domain.DLS.get key in
  if b.depth > 0 then b.depth <- b.depth - 1

(* [live_stacks ()] snapshots every domain's active span stack,
   outermost first.  Reads race with the owning domains by design: the
   profiler wants a statistical sample, and the publish order in
   [stack_push] keeps a racy read prefix-consistent.  Empty stacks are
   dropped. *)
let live_stacks () =
  let bufs = Mutex.protect buffers_mutex (fun () -> !buffers) in
  List.filter_map
    (fun b ->
      let frames = b.frames in
      let depth = min b.depth (Array.length frames) in
      if depth <= 0 then None
      else Some (b.buf_dom, List.init depth (fun i -> frames.(i))))
    bufs

let now_ns () = Int64.to_int (Clock.now_ns ())

let emit ?gc phase cat name =
  push
    {
      name;
      cat;
      phase;
      ts_ns = now_ns ();
      dom = (Domain.self () :> int);
      gc;
    }

let instant ?(cat = "") name = if enabled () then emit Instant cat name

(* obs.gc.*: allocation and collection pressure attributed by the span
   layer.  Only outermost spans bump the word/collection counters —
   nested spans overlap their parents, and double-charging would make
   the totals meaningless.  The heap high-water gauge is raised on every
   span end. *)
let m_gc_minor = lazy (Metrics.counter "obs.gc.minor_words")
let m_gc_promoted = lazy (Metrics.counter "obs.gc.promoted_words")
let m_gc_major = lazy (Metrics.counter "obs.gc.major_words")
let m_gc_minor_col = lazy (Metrics.counter "obs.gc.minor_collections")
let m_gc_major_col = lazy (Metrics.counter "obs.gc.major_collections")
let g_gc_heap = lazy (Metrics.gauge "obs.gc.max_heap_words")

let gc_metrics ~outermost (d : gc_delta) =
  if Metrics.enabled () then begin
    if outermost then begin
      Metrics.add (Lazy.force m_gc_minor) d.minor_words;
      Metrics.add (Lazy.force m_gc_promoted) d.promoted_words;
      Metrics.add (Lazy.force m_gc_major) d.major_words;
      Metrics.add (Lazy.force m_gc_minor_col) d.minor_collections;
      Metrics.add (Lazy.force m_gc_major_col) d.major_collections
    end;
    Metrics.set_gauge_max (Lazy.force g_gc_heap) d.heap_words
  end

(* [Gc.quick_stat]'s [minor_words] is only refreshed at minor
   collections, so short spans would read a zero delta; [Gc.minor_words]
   reads the domain's allocation pointer and is exact.  One capture is
   the pair of both. *)
type gc_capture = { cap_stat : Gc.stat; cap_minor : float }

let gc_capture () =
  { cap_stat = Gc.quick_stat (); cap_minor = Gc.minor_words () }

let gc_delta c0 c1 =
  let g0 = c0.cap_stat and g1 = c1.cap_stat in
  {
    minor_words = int_of_float (c1.cap_minor -. c0.cap_minor);
    promoted_words =
      int_of_float (g1.Gc.promoted_words -. g0.Gc.promoted_words);
    major_words = int_of_float (g1.Gc.major_words -. g0.Gc.major_words);
    minor_collections = g1.Gc.minor_collections - g0.Gc.minor_collections;
    major_collections = g1.Gc.major_collections - g0.Gc.major_collections;
    heap_words = g1.Gc.heap_words;
  }

(* A span is instrumented when any sink wants it: event recording
   (tracing), stack sampling (profiler) or the obs.gc.* metrics. *)
let span ?(cat = "") name f =
  if not (instrumented () || Metrics.enabled ()) then f ()
  else begin
    let accounted = enabled () || Metrics.enabled () in
    let g0 = if accounted then Some (gc_capture ()) else None in
    if enabled () then emit Begin cat name;
    stack_push name;
    Fun.protect
      ~finally:(fun () ->
        stack_pop ();
        match g0 with
        | None -> ()
        | Some g0 ->
          let d = gc_delta g0 (gc_capture ()) in
          let b = Domain.DLS.get key in
          gc_metrics ~outermost:(b.depth = 0) d;
          if enabled () then emit ~gc:d End cat name)
      f
  end

let reset () =
  Mutex.protect buffers_mutex (fun () ->
      List.iter (fun b -> b.len <- 0) !buffers)

let events () =
  let bufs = Mutex.protect buffers_mutex (fun () -> !buffers) in
  List.concat_map
    (fun b -> List.init b.len (fun k -> b.events.(k)))
    bufs
  (* Stable: equal timestamps within one domain keep their append
     order, so a Begin/End pair emitted in the same nanosecond stays
     ordered. *)
  |> List.stable_sort (fun a b -> compare (a.ts_ns, a.dom) (b.ts_ns, b.dom))

(* [interval] back-dates a Begin/End pair with caller-supplied
   timestamps — used by Parmon to chart a worker's busy window after the
   fact, from the worker's own domain.  The flush sort puts the pair in
   timestamp order. *)
let interval ?(cat = "") name ~start_ns ~stop_ns =
  if enabled () then begin
    let dom = (Domain.self () :> int) in
    push { name; cat; phase = Begin; ts_ns = start_ns; dom; gc = None };
    push { name; cat; phase = End; ts_ns = stop_ns; dom; gc = None }
  end

(* ------------------------------------------------------------------ *)
(* Aggregation                                                         *)
(* ------------------------------------------------------------------ *)

let phase_totals () =
  let evs = events () in
  let last_ts = List.fold_left (fun acc e -> max acc e.ts_ns) 0 evs in
  let totals : (string, float) Hashtbl.t = Hashtbl.create 16 in
  let stacks : (int, (string * int) list ref) Hashtbl.t = Hashtbl.create 8 in
  let stack dom =
    match Hashtbl.find_opt stacks dom with
    | Some s -> s
    | None ->
      let s = ref [] in
      Hashtbl.replace stacks dom s;
      s
  in
  let charge name ns =
    let prev = Option.value ~default:0.0 (Hashtbl.find_opt totals name) in
    Hashtbl.replace totals name (prev +. (float_of_int ns *. 1e-9))
  in
  List.iter
    (fun e ->
      match e.phase with
      | Instant -> ()
      | Begin -> (
        let s = stack e.dom in
        s := (e.name, e.ts_ns) :: !s)
      | End -> (
        let s = stack e.dom in
        match !s with
        | (name, t0) :: rest when name = e.name ->
          s := rest;
          charge name (e.ts_ns - t0)
        | _ -> (* unmatched end: drop *) ()))
    evs;
  (* Spans still open when the buffer was flushed (e.g. a timed-out
     worker): charge what is known. *)
  Hashtbl.iter
    (fun _ s -> List.iter (fun (name, t0) -> charge name (last_ts - t0)) !s)
    stacks;
  Hashtbl.fold (fun name secs acc -> (name, secs) :: acc) totals []
  |> List.sort (fun (a, _) (b, _) -> String.compare a b)

(* ------------------------------------------------------------------ *)
(* Output                                                              *)
(* ------------------------------------------------------------------ *)

let phase_letter = function Begin -> "B" | End -> "E" | Instant -> "i"

let json_of_gc (d : gc_delta) : Json.t =
  Json.Obj
    [
      ("minor_words", Json.Int d.minor_words);
      ("promoted_words", Json.Int d.promoted_words);
      ("major_words", Json.Int d.major_words);
      ("minor_collections", Json.Int d.minor_collections);
      ("major_collections", Json.Int d.major_collections);
      ("heap_words", Json.Int d.heap_words);
    ]

let json_of_event ~base e : Json.t =
  let fields =
    [
      ("name", Json.String e.name);
      ("cat", Json.String (if e.cat = "" then "stc" else e.cat));
      ("ph", Json.String (phase_letter e.phase));
      ("ts", Json.Float (float_of_int (e.ts_ns - base) /. 1e3));
      ("pid", Json.Int 1);
      ("tid", Json.Int e.dom);
    ]
  in
  let fields =
    match e.phase with
    | Instant -> fields @ [ ("s", Json.String "t") ]
    | Begin | End -> fields
  in
  let fields =
    match e.gc with
    | Some d -> fields @ [ ("args", json_of_gc d) ]
    | None -> fields
  in
  Json.Obj fields

let base_ts evs =
  match evs with [] -> 0 | e :: _ -> List.fold_left (fun acc e -> min acc e.ts_ns) e.ts_ns evs

let to_chrome_json () =
  let evs = events () in
  let base = base_ts evs in
  Json.Obj
    [
      ("traceEvents", Json.List (List.map (json_of_event ~base) evs));
      ("displayTimeUnit", Json.String "ms");
    ]

let write_chrome path = Json.write path (to_chrome_json ())

let write_jsonl path =
  let evs = events () in
  let base = base_ts evs in
  let oc = open_out path in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () ->
      List.iter
        (fun e ->
          output_string oc (Json.to_string (json_of_event ~base e));
          output_char oc '\n')
        evs)

let write path =
  if Filename.check_suffix path ".jsonl" then write_jsonl path
  else write_chrome path
