module Clock = Stc_util.Clock

type phase = Begin | End | Instant

type event = {
  name : string;
  cat : string;
  phase : phase;
  ts_ns : int;
  dom : int;
}

let enabled_flag = Atomic.make false
let set_enabled b = Atomic.set enabled_flag b
let enabled () = Atomic.get enabled_flag

(* Per-domain growable event buffer.  Only the owning domain appends;
   merging happens from the flushing domain after workers are joined
   (the solver joins its domains before any flush, so reads race only
   with domains that are already dead). *)
type buf = { mutable events : event array; mutable len : int }

let dummy = { name = ""; cat = ""; phase = Instant; ts_ns = 0; dom = 0 }

(* All buffers ever created, for merging; guarded by [buffers_mutex].
   Buffers of dead domains stay listed — their events are part of the
   trace. *)
let buffers : buf list ref = ref []
let buffers_mutex = Mutex.create ()

let key : buf Domain.DLS.key =
  Domain.DLS.new_key (fun () ->
      let b = { events = Array.make 256 dummy; len = 0 } in
      Mutex.protect buffers_mutex (fun () -> buffers := b :: !buffers);
      b)

let push ev =
  let b = Domain.DLS.get key in
  if b.len = Array.length b.events then begin
    let grown = Array.make (2 * b.len) dummy in
    Array.blit b.events 0 grown 0 b.len;
    b.events <- grown
  end;
  b.events.(b.len) <- ev;
  b.len <- b.len + 1

let now_ns () = Int64.to_int (Clock.now_ns ())

let emit phase cat name =
  push { name; cat; phase; ts_ns = now_ns (); dom = (Domain.self () :> int) }

let instant ?(cat = "") name = if enabled () then emit Instant cat name

let span ?(cat = "") name f =
  if not (enabled ()) then f ()
  else begin
    emit Begin cat name;
    Fun.protect ~finally:(fun () -> emit End cat name) f
  end

let reset () =
  Mutex.protect buffers_mutex (fun () ->
      List.iter (fun b -> b.len <- 0) !buffers)

let events () =
  let bufs = Mutex.protect buffers_mutex (fun () -> !buffers) in
  List.concat_map
    (fun b -> List.init b.len (fun k -> b.events.(k)))
    bufs
  (* Stable: equal timestamps within one domain keep their append
     order, so a Begin/End pair emitted in the same nanosecond stays
     ordered. *)
  |> List.stable_sort (fun a b -> compare (a.ts_ns, a.dom) (b.ts_ns, b.dom))

(* ------------------------------------------------------------------ *)
(* Aggregation                                                         *)
(* ------------------------------------------------------------------ *)

let phase_totals () =
  let evs = events () in
  let last_ts = List.fold_left (fun acc e -> max acc e.ts_ns) 0 evs in
  let totals : (string, float) Hashtbl.t = Hashtbl.create 16 in
  let stacks : (int, (string * int) list ref) Hashtbl.t = Hashtbl.create 8 in
  let stack dom =
    match Hashtbl.find_opt stacks dom with
    | Some s -> s
    | None ->
      let s = ref [] in
      Hashtbl.replace stacks dom s;
      s
  in
  let charge name ns =
    let prev = Option.value ~default:0.0 (Hashtbl.find_opt totals name) in
    Hashtbl.replace totals name (prev +. (float_of_int ns *. 1e-9))
  in
  List.iter
    (fun e ->
      match e.phase with
      | Instant -> ()
      | Begin -> (
        let s = stack e.dom in
        s := (e.name, e.ts_ns) :: !s)
      | End -> (
        let s = stack e.dom in
        match !s with
        | (name, t0) :: rest when name = e.name ->
          s := rest;
          charge name (e.ts_ns - t0)
        | _ -> (* unmatched end: drop *) ()))
    evs;
  (* Spans still open when the buffer was flushed (e.g. a timed-out
     worker): charge what is known. *)
  Hashtbl.iter
    (fun _ s -> List.iter (fun (name, t0) -> charge name (last_ts - t0)) !s)
    stacks;
  Hashtbl.fold (fun name secs acc -> (name, secs) :: acc) totals []
  |> List.sort (fun (a, _) (b, _) -> String.compare a b)

(* ------------------------------------------------------------------ *)
(* Output                                                              *)
(* ------------------------------------------------------------------ *)

let phase_letter = function Begin -> "B" | End -> "E" | Instant -> "i"

let json_of_event ~base e : Json.t =
  let fields =
    [
      ("name", Json.String e.name);
      ("cat", Json.String (if e.cat = "" then "stc" else e.cat));
      ("ph", Json.String (phase_letter e.phase));
      ("ts", Json.Float (float_of_int (e.ts_ns - base) /. 1e3));
      ("pid", Json.Int 1);
      ("tid", Json.Int e.dom);
    ]
  in
  let fields =
    match e.phase with
    | Instant -> fields @ [ ("s", Json.String "t") ]
    | Begin | End -> fields
  in
  Json.Obj fields

let base_ts evs =
  match evs with [] -> 0 | e :: _ -> List.fold_left (fun acc e -> min acc e.ts_ns) e.ts_ns evs

let to_chrome_json () =
  let evs = events () in
  let base = base_ts evs in
  Json.Obj
    [
      ("traceEvents", Json.List (List.map (json_of_event ~base) evs));
      ("displayTimeUnit", Json.String "ms");
    ]

let write_chrome path = Json.write path (to_chrome_json ())

let write_jsonl path =
  let evs = events () in
  let base = base_ts evs in
  let oc = open_out path in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () ->
      List.iter
        (fun e ->
          output_string oc (Json.to_string (json_of_event ~base e));
          output_char oc '\n')
        evs)

let write path =
  if Filename.check_suffix path ".jsonl" then write_jsonl path
  else write_chrome path
