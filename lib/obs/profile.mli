(** Sampling profiler over the span tracer.

    {!start} spawns a ticker domain that wakes [hz] times a second and
    snapshots every domain's active span stack (maintained by
    {!Trace.span} whenever tracing or sampling is on — {!start} enables
    {!Trace.set_sampling}, so the profiler works without event
    recording).  {!stop} joins the ticker and returns the aggregated
    folded-stack {!report}, writable in the flamegraph.pl / speedscope
    "folded" format: one line per distinct stack — frames joined by
    [';'], a space, the sample count — preceded by a
    [# stc-profile {json}] header line.

    Sampling is statistical: stack reads race with the running domains
    (prefix-consistent by construction, see {!Trace.live_stacks}), and
    the period stretches under load.  Counts are therefore estimates of
    time shares, not exact durations. *)

(** Default sampling rate (199 Hz — a prime, so phase-locked workloads
    cannot hide between ticks). *)
val default_hz : int

val running : unit -> bool

(** [start ?hz ()] begins sampling.
    @raise Invalid_argument if already running or [hz < 1]. *)
val start : ?hz:int -> unit -> unit

type report = {
  hz : int;
  samples : int;  (** one per live (domain, stack) snapshot; = sum of counts *)
  ticks : int;  (** ticker wakeups, including those that sampled nothing *)
  wall_s : float;
  folded : (string list * int) list;
      (** distinct stacks (outermost frame first) with sample counts,
          hottest first *)
}

(** [stop ()] ends sampling and returns the report.
    @raise Invalid_argument if not running. *)
val stop : unit -> report

(** [self_total r] per-name attribution: [(name, self, total)] where
    [self] counts samples with [name] as the leaf frame and [total]
    samples containing [name] anywhere (once per sample).  Sorted by
    descending [self]. *)
val self_total : report -> (string * int * int) list

(** Frame escaping for the folded format: [';'], whitespace and ['%']
    are percent-encoded, so any span name round-trips through a folded
    line. *)
val escape_frame : string -> string

(** @raise Invalid_argument on a malformed escape. *)
val unescape_frame : string -> string

(** First-line prefix of a folded file ([# stc-profile ]), followed by a
    JSON object with [schema_version], [hz], [samples], [ticks],
    [wall_s]. *)
val header_magic : string

val to_folded_string : report -> string
val write_folded : string -> report -> unit

(** [parse_folded text] inverts {!to_folded_string} (field order inside
    the folded list is preserved; a report round-trips exactly). *)
val parse_folded : string -> (report, string) result
