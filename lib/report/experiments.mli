(** Drivers that regenerate the paper's evaluation artifacts.  Each driver
    returns structured results plus a rendered ASCII table whose rows match
    the paper's layout; `bin/ostr.exe` and `bench/main.exe` print them.
    See EXPERIMENTS.md for the paper-vs-measured record. *)

(** One row of Table 1 (+ our search statistics, which also provide the
    columns of Table 2). *)
type table1_entry = {
  spec : Stc_benchmarks.Suite.spec;
  s1 : int;
  s2 : int;
  ff_conventional : int;
  ff_pipeline : int;
  stats : Stc_core.Solver.stats;
}

(** [table1 ?timeout ?jobs ?names ()] solves OSTR for the selected
    benchmarks (default: all 13).  [timeout] (default 120 s wall clock)
    mirrors the paper's time limit for [tbk]; [jobs] fans each solve over
    that many domains (see {!Stc_core.Solver.solve}). *)
val table1 :
  ?timeout:float -> ?jobs:int -> ?names:string list -> unit -> table1_entry list

(** [render_table1 entries] prints name, |S|, |S1|, |S2|, conv. BIST FFs,
    pipeline FFs - the exact columns of Table 1 - plus the paper's values
    for comparison. *)
val render_table1 : table1_entry list -> string

(** [render_table2 entries] prints |S|, |V| = 2^|MM| and the number of
    nodes investigated with Lemma-1 pruning - the columns of Table 2 -
    plus the transposition-table dedupe count and the paper's reported
    node counts. *)
val render_table2 : table1_entry list -> string

(** One row of the section-4 area discussion: two-level cost of the
    monolithic block C versus the factored blocks C1 + C2 (+ Lambda). *)
type area_entry = {
  name : string;
  spec_transitions : int;  (** |S| * |I|, transitions C implements *)
  factor_transitions : int;  (** (|S1| + |S2|) * |I| *)
  conv_cubes : int;
  conv_literals : int;
  pipe_cubes : int;  (** C1 + C2 + Lambda *)
  pipe_literals : int;
  doubled_literals : int;  (** 2x conventional, the fig. 3 cost *)
}

(** [area ?timeout ?jobs ?names ()] minimizes both structures for the
    selected benchmarks (default: those with a nontrivial Table-1
    solution, including tbk's 2048-row monolithic block - fast under the
    packed engine).  [jobs] fans each espresso pass and the OSTR solve
    over that many domains (see {!Stc_logic.Minimize.minimize}). *)
val area :
  ?timeout:float -> ?jobs:int -> ?names:string list -> unit -> area_entry list

val render_area : area_entry list -> string

(** One row of the fault-coverage experiment (figs. 1-4 discussion):
    stuck-at coverage and flip-flop cost of each self-testable
    structure. *)
type coverage_entry = {
  name : string;
  fig2_coverage : float;  (** raw: detected / all faults *)
  fig2_adjusted : float;
      (** detected / testable faults - SAT-proven untestable faults
          ({!Stc_sat.Prove.redundant} over the union of session
          observation points) are excluded from the denominator *)
  fig2_redundant : int;  (** untestable raw faults excluded *)
  fig2_ff : int;
  fig2_escaped_feedback : int;
      (** undetected faults on the R-to-C feedback path of fig. 2 - the
          paper's drawback 3 *)
  fig3_coverage : float;
  fig3_adjusted : float;
  fig3_redundant : int;
  fig3_ff : int;
  fig4_coverage : float;
  fig4_adjusted : float;
  fig4_redundant : int;
  fig4_ff : int;
}

(** [coverage ?cycles ?timeout ?jobs ?names ()] grades the three
    self-testable structures; [jobs] shards the collapsed fault list over
    that many domains (see {!Stc_faultsim.Session.run}).  Default
    machines: fig5, shiftreg, dk27, tav, mc, bbara (the larger benchmarks
    make the fig. 2/3 netlists slow to grade). *)
val coverage :
  ?cycles:int -> ?timeout:float -> ?jobs:int -> ?names:string list -> unit ->
  coverage_entry list

val render_coverage : coverage_entry list -> string

(** One row of the test-strategy comparison: how long each approach must
    test to reach its coverage (the paper's section-1 motivation). *)
type strategy_entry = {
  name : string;
  seq_coverage : float;  (** random sequential test, primary I/O only *)
  seq_cycles_90 : int option;  (** sequence length to reach 90% of its detections *)
  scan_coverage : float;
  scan_cycles : int;  (** patterns x (chain + 1) shift overhead *)
  bist_coverage : float;  (** fig. 4 two-session BIST *)
  bist_cycles : int;
}

(** [strategies ?cycles ?jobs ?names ()] compares random sequential
    testing, full scan and the pipeline BIST on the selected machines
    (default: fig5, shiftreg, counter8, dk27, mc); [jobs] parallelizes
    each fault-grading pass. *)
val strategies :
  ?cycles:int -> ?jobs:int -> ?names:string list -> unit ->
  strategy_entry list

val render_strategies : strategy_entry list -> string

(** One row of the extensions ablation: state splitting (the paper's
    future work) and the multi-stage generalization. *)
type extension_entry = {
  name : string;
  base_bits : int;  (** 2-stage OSTR flip-flops *)
  split_bits : int;  (** after greedy state splitting *)
  split_states_added : int;
  three_stage_bits : int;  (** best 3-stage chain *)
  three_stage_sizes : string;  (** e.g. "2x2x2" *)
}

(** [extensions ?timeout ?names ()] runs both extensions (default
    machines: shiftreg, fig5, dk27, tav, counter8). *)
val extensions :
  ?timeout:float -> ?names:string list -> unit -> extension_entry list

val render_extensions : extension_entry list -> string

(** One row of the classical-decomposition comparison ([16, 3, 15] - the
    techniques the paper distinguishes itself from). *)
type decomposition_entry = {
  name : string;
  ostr_bits : int;  (** pipeline flip-flops (self-test included) *)
  parallel : string;  (** "k1 x k2 = b bits" or "-" *)
  serial : string;  (** "head h + tail t = b bits" or "-" *)
}

(** [decomposition ?timeout ?names ()] compares the OSTR pipeline against
    classical parallel/serial decomposition (default machines: shiftreg,
    fig5, counter8, dk27, tav, bbara).  Decomposed submachines keep
    feedback loops, so their flip-flop counts exclude self-test
    hardware. *)
val decomposition :
  ?timeout:float -> ?names:string list -> unit -> decomposition_entry list

val render_decomposition : decomposition_entry list -> string

(** One row of the MISR-aliasing measurement (the grader's
    ideal-compaction caveat, quantified). *)
type aliasing_entry = {
  name : string;
  misr_width : int;
  stream_detected : int;
  aliased : int;
  aliasing_rate : float;  (** empirical; theory predicts about 2^-width *)
}

(** [aliasing ?cycles ?jobs ?names ()] measures real-MISR aliasing on the
    fig. 4 structures (default machines: fig5, shiftreg, dk27, tav, mc);
    [jobs] shards the collapsed fault classes over domains. *)
val aliasing :
  ?cycles:int -> ?jobs:int -> ?names:string list -> unit ->
  aliasing_entry list

val render_aliasing : aliasing_entry list -> string

(** [machine_named name] resolves a machine for the drivers: a benchmark
    name, or one of the zoo names [fig5], [shiftreg4], [shiftreg6],
    [serial_adder], [counter8], [counter16], [toggle], [parity]. *)
val machine_named : string -> Stc_fsm.Machine.t option

(** One row of the SCOAP testability comparison: static
    controllability/observability of the conventional fig. 1 structure
    vs. the decomposed fig. 4 pipeline (the static counterpart of the
    fault-coverage experiment). *)
type scoap_entry = {
  name : string;
  conv_gates : int;
  conv : Stc_analysis.Scoap.summary;
  pipe_gates : int;
  pipe : Stc_analysis.Scoap.summary;
}

(** [scoap ?timeout ?names ()] synthesizes both structures and computes
    SCOAP summaries (default machines: fig5, shiftreg, dk16, dk512,
    tav; tbk by request - minimizing it is fast now, but its monolithic
    netlist is large to levelize). *)
val scoap : ?timeout:float -> ?names:string list -> unit -> scoap_entry list

val render_scoap : scoap_entry list -> string
