module Machine = Stc_fsm.Machine
module Zoo = Stc_fsm.Zoo
module Suite = Stc_benchmarks.Suite
module Solver = Stc_core.Solver
module Realization = Stc_core.Realization
module Partition = Stc_partition.Partition
module Tables = Stc_encoding.Tables
module Minimize = Stc_logic.Minimize
module Cover = Stc_logic.Cover
module Arch = Stc_faultsim.Arch
module Session = Stc_faultsim.Session

type table1_entry = {
  spec : Suite.spec;
  s1 : int;
  s2 : int;
  ff_conventional : int;
  ff_pipeline : int;
  stats : Solver.stats;
}

let specs_named = function
  | None -> Suite.all
  | Some names ->
    List.map
      (fun name ->
        match Suite.find name with
        | Some spec -> spec
        | None -> invalid_arg (Printf.sprintf "unknown benchmark %S" name))
      names

let table1 ?(timeout = 120.0) ?jobs ?names () =
  List.map
    (fun (spec : Suite.spec) ->
      let machine = Suite.machine spec in
      let result = Solver.solve ~timeout ?jobs machine in
      let a = Partition.num_classes result.Solver.best.Solver.pi
      and b = Partition.num_classes result.Solver.best.Solver.rho in
      {
        spec;
        s1 = a;
        s2 = b;
        ff_conventional = Machine.flipflops_conventional machine;
        ff_pipeline = result.Solver.best.Solver.cost.Solver.bits;
        stats = result.Solver.stats;
      })
    (specs_named names)

let render_table1 entries =
  let rows =
    List.map
      (fun e ->
        [
          e.spec.Suite.name;
          string_of_int e.spec.Suite.states;
          string_of_int e.s1;
          string_of_int e.s2;
          string_of_int e.ff_conventional;
          string_of_int e.ff_pipeline;
          Printf.sprintf "%d/%d" e.spec.Suite.paper.Suite.s1 e.spec.Suite.paper.Suite.s2;
          Printf.sprintf "%d/%d" e.spec.Suite.paper.Suite.ff_conventional
            e.spec.Suite.paper.Suite.ff_pipeline;
          (if e.stats.Solver.timed_out then "timeout"
           else if e.spec.Suite.paper_timeout then "(paper: timeout)"
           else "");
        ])
      entries
  in
  Table.render
    ~header:
      [ "name"; "|S|"; "|S1|"; "|S2|"; "conv.BIST"; "pipeline";
        "paper S1/S2"; "paper FF"; "note" ]
    rows

let render_table2 entries =
  let rows =
    List.map
      (fun e ->
        [
          e.spec.Suite.name;
          string_of_int e.spec.Suite.states;
          Printf.sprintf "2^%d" e.stats.Solver.basis_size;
          string_of_int e.stats.Solver.investigated;
          string_of_int e.stats.Solver.deduped;
          (match e.spec.Suite.paper_investigated with
          | Some n -> string_of_int n
          | None -> "-");
        ])
      entries
  in
  Table.render
    ~header:
      [ "name"; "|S|"; "|V|"; "investigated"; "deduped"; "paper investigated" ]
    rows

type area_entry = {
  name : string;
  spec_transitions : int;
  factor_transitions : int;
  conv_cubes : int;
  conv_literals : int;
  pipe_cubes : int;
  pipe_literals : int;
  doubled_literals : int;
}

let area_of_machine ?(timeout = 120.0) ?jobs (machine : Machine.t) =
  let enc = Tables.encode machine in
  let on, dc = Tables.conventional enc in
  let conv, _ = Minimize.minimize ?jobs ~dc on in
  let conv_cubes, conv_literals = Cover.cost conv in
  let outcome = Stc_core.Ostr.run ~timeout ?jobs machine in
  let p = Tables.pipeline outcome.Stc_core.Ostr.realization in
  let c1, _ = Minimize.minimize ?jobs ~dc:p.Tables.c1_dc p.Tables.c1_on in
  let c2, _ = Minimize.minimize ?jobs ~dc:p.Tables.c2_dc p.Tables.c2_on in
  let lambda, _ =
    Minimize.minimize ?jobs ~dc:p.Tables.lambda_dc p.Tables.lambda_on
  in
  let cubes3 c = fst (Cover.cost c) and lits3 c = snd (Cover.cost c) in
  {
    name = machine.Machine.name;
    spec_transitions = Realization.spec_transitions outcome.Stc_core.Ostr.realization;
    factor_transitions =
      Realization.factor_transitions outcome.Stc_core.Ostr.realization;
    conv_cubes;
    conv_literals;
    pipe_cubes = cubes3 c1 + cubes3 c2 + cubes3 lambda;
    pipe_literals = lits3 c1 + lits3 c2 + lits3 lambda;
    doubled_literals = 2 * conv_literals;
  }

(* tbk's monolithic block (2048-row covers) used to take minutes in the
   trit-array espresso loop; the packed bit-parallel engine minimizes it
   in seconds, so it is part of the default run. *)
let default_area_names =
  [ "bbara"; "dk16"; "dk27"; "dk512"; "shiftreg"; "tav"; "tbk" ]

let area ?timeout ?jobs ?names () =
  let names = match names with Some ns -> ns | None -> default_area_names in
  List.map
    (fun (spec : Suite.spec) ->
      area_of_machine ?timeout ?jobs (Suite.machine spec))
    (specs_named (Some names))

let render_area entries =
  let rows =
    List.map
      (fun e ->
        [
          e.name;
          string_of_int e.spec_transitions;
          string_of_int e.factor_transitions;
          Printf.sprintf "%d/%d" e.conv_cubes e.conv_literals;
          Printf.sprintf "%d/%d" e.pipe_cubes e.pipe_literals;
          string_of_int e.doubled_literals;
        ])
      entries
  in
  Table.render
    ~header:
      [ "name"; "trans C"; "trans C1+C2"; "C cubes/lits";
        "C1+C2+L cubes/lits"; "doubled lits" ]
    rows

type coverage_entry = {
  name : string;
  fig2_coverage : float;
  fig2_adjusted : float;
  fig2_redundant : int;
  fig2_ff : int;
  fig2_escaped_feedback : int;
  fig3_coverage : float;
  fig3_adjusted : float;
  fig3_redundant : int;
  fig3_ff : int;
  fig4_coverage : float;
  fig4_adjusted : float;
  fig4_redundant : int;
  fig4_ff : int;
}

(* Union of the gates any session observes: the prover must consider a
   fault testable if any session's observation points could see it. *)
let observed_union (b : Arch.built) =
  let tbl = Hashtbl.create 64 in
  List.iter
    (fun (_, obs) -> Array.iter (fun g -> Hashtbl.replace tbl g ()) obs)
    b.Arch.sessions;
  Array.of_list
    (List.sort compare (Hashtbl.fold (fun g () acc -> g :: acc) tbl []))

let adjust ?jobs (b : Arch.built) (r : Session.report) =
  let v =
    Stc_sat.Prove.redundant ?jobs ~observed:(observed_union b) b.Arch.netlist
  in
  (Session.adjusted r ~redundant:v.Stc_sat.Prove.redundant,
   List.length v.Stc_sat.Prove.redundant)

let zoo_machines =
  [
    ("fig5", fun () -> Zoo.paper_fig5 ());
    ("shiftreg4", fun () -> Zoo.shift_register ~bits:4);
    ("shiftreg6", fun () -> Zoo.shift_register ~bits:6);
    ("serial_adder", fun () -> Zoo.serial_adder ());
    ("counter8", fun () -> Zoo.counter ~modulus:8);
    ("counter16", fun () -> Zoo.counter ~modulus:16);
    ("toggle", fun () -> Zoo.toggle ());
    ("parity", fun () -> Zoo.parity ());
  ]

let machine_named name =
  match Suite.find name with
  | Some spec -> Some (Suite.machine spec)
  | None -> (
    match List.assoc_opt name zoo_machines with
    | Some build -> Some (build ())
    | None -> None)

let default_coverage_names = [ "fig5"; "shiftreg"; "dk27"; "tav"; "mc"; "bbara" ]

let coverage ?cycles ?timeout ?jobs ?names () =
  let names = match names with Some ns -> ns | None -> default_coverage_names in
  List.map
    (fun name ->
      let machine =
        match machine_named name with
        | Some m -> m
        | None -> invalid_arg (Printf.sprintf "unknown machine %S" name)
      in
      let fig2 = Arch.conventional_bist ?cycles machine in
      let fig3 = Arch.doubled ?cycles machine in
      let fig4 = Arch.pipeline_of_machine ?cycles ?timeout machine in
      let r2 = Arch.grade ?jobs fig2
      and r3 = Arch.grade ?jobs fig3
      and r4 = Arch.grade ?jobs fig4 in
      let a2, red2 = adjust ?jobs fig2 r2
      and a3, red3 = adjust ?jobs fig3 r3
      and a4, red4 = adjust ?jobs fig4 r4 in
      let escaped =
        List.fold_left
          (fun acc (tag, n) ->
            if tag = "feedback" || tag = "r-input" || tag = "mux" then acc + n
            else acc)
          0
          (Arch.undetected_by_tag fig2 r2)
      in
      {
        name;
        fig2_coverage = r2.Session.coverage;
        fig2_adjusted = a2.Session.coverage;
        fig2_redundant = red2;
        fig2_ff = fig2.Arch.flipflops;
        fig2_escaped_feedback = escaped;
        fig3_coverage = r3.Session.coverage;
        fig3_adjusted = a3.Session.coverage;
        fig3_redundant = red3;
        fig3_ff = fig3.Arch.flipflops;
        fig4_coverage = r4.Session.coverage;
        fig4_adjusted = a4.Session.coverage;
        fig4_redundant = red4;
        fig4_ff = fig4.Arch.flipflops;
      })
    names

let render_coverage entries =
  let pct v = Printf.sprintf "%.1f%%" (100.0 *. v) in
  let rows =
    List.map
      (fun e ->
        [
          e.name;
          pct e.fig2_coverage;
          pct e.fig2_adjusted;
          string_of_int e.fig2_redundant;
          string_of_int e.fig2_ff;
          string_of_int e.fig2_escaped_feedback;
          pct e.fig3_coverage;
          pct e.fig3_adjusted;
          string_of_int e.fig3_redundant;
          string_of_int e.fig3_ff;
          pct e.fig4_coverage;
          pct e.fig4_adjusted;
          string_of_int e.fig4_redundant;
          string_of_int e.fig4_ff;
        ])
      entries
  in
  Table.render
    ~header:
      [ "name"; "fig2 cov"; "adj"; "red"; "ff"; "escaped fb";
        "fig3 cov"; "adj"; "red"; "ff";
        "fig4 cov"; "adj"; "red"; "ff" ]
    rows

type strategy_entry = {
  name : string;
  seq_coverage : float;
  seq_cycles_90 : int option;
  scan_coverage : float;
  scan_cycles : int;
  bist_coverage : float;
  bist_cycles : int;
}

let resolve name =
  match machine_named name with
  | Some m -> m
  | None -> invalid_arg (Printf.sprintf "unknown machine %S" name)

let default_strategy_names = [ "fig5"; "shiftreg"; "counter8"; "dk27"; "mc" ]

let strategies ?(cycles = 1024) ?jobs ?names () =
  let names = match names with Some ns -> ns | None -> default_strategy_names in
  List.map
    (fun name ->
      let machine = resolve name in
      let seq = Stc_faultsim.Seqtest.run_conventional ?jobs ~cycles machine in
      let scan = Stc_faultsim.Scan.run ?jobs ~patterns:cycles machine in
      let fig4 = Arch.pipeline_of_machine ~cycles machine in
      let bist = Arch.grade ?jobs fig4 in
      {
        name;
        seq_coverage = seq.Stc_faultsim.Seqtest.coverage;
        seq_cycles_90 = Stc_faultsim.Seqtest.cycles_to_coverage seq 0.9;
        scan_coverage = scan.Stc_faultsim.Scan.report.Session.coverage;
        scan_cycles = scan.Stc_faultsim.Scan.test_cycles;
        bist_coverage = bist.Session.coverage;
        bist_cycles = 2 * cycles;
      })
    names

let render_strategies entries =
  let pct v = Printf.sprintf "%.1f%%" (100.0 *. v) in
  let rows =
    List.map
      (fun e ->
        [
          e.name;
          pct e.seq_coverage;
          (match e.seq_cycles_90 with Some c -> string_of_int c | None -> "-");
          pct e.scan_coverage;
          string_of_int e.scan_cycles;
          pct e.bist_coverage;
          string_of_int e.bist_cycles;
        ])
      entries
  in
  Table.render
    ~header:
      [ "name"; "seq cov"; "seq 90% at"; "scan cov"; "scan cycles";
        "fig4 BIST cov"; "BIST cycles" ]
    rows

type extension_entry = {
  name : string;
  base_bits : int;
  split_bits : int;
  split_states_added : int;
  three_stage_bits : int;
  three_stage_sizes : string;
}

let default_extension_names = [ "shiftreg"; "fig5"; "dk27"; "tav"; "counter8" ]

let extensions ?(timeout = 20.0) ?names () =
  let names = match names with Some ns -> ns | None -> default_extension_names in
  List.map
    (fun name ->
      let machine = resolve name in
      let base = (Solver.solve ~timeout machine).Solver.best in
      let improved = Stc_core.Split.improve ~timeout machine in
      let chain = Stc_core.Multiway.solve ~timeout ~stages:3 machine in
      {
        name;
        base_bits = base.Solver.cost.Solver.bits;
        split_bits =
          improved.Stc_core.Split.solution.Solver.cost.Solver.bits;
        split_states_added =
          improved.Stc_core.Split.machine.Machine.num_states
          - machine.Machine.num_states;
        three_stage_bits = chain.Stc_core.Multiway.bits;
        three_stage_sizes =
          String.concat "x"
            (Array.to_list
               (Array.map
                  (fun p -> string_of_int (Partition.num_classes p))
                  chain.Stc_core.Multiway.parts));
      })
    names

let render_extensions entries =
  let rows =
    List.map
      (fun e ->
        [
          e.name;
          string_of_int e.base_bits;
          string_of_int e.split_bits;
          string_of_int e.split_states_added;
          string_of_int e.three_stage_bits;
          e.three_stage_sizes;
        ])
      entries
  in
  Table.render
    ~header:
      [ "name"; "2-stage FFs"; "after split"; "states added";
        "3-stage FFs"; "3-stage sizes" ]
    rows

type decomposition_entry = {
  name : string;
  ostr_bits : int;
  parallel : string;
  serial : string;
}

let default_decomposition_names =
  [ "shiftreg"; "fig5"; "counter8"; "dk27"; "tav"; "bbara" ]

let decomposition ?(timeout = 60.0) ?names () =
  let names =
    match names with Some ns -> ns | None -> default_decomposition_names
  in
  List.map
    (fun name ->
      let machine = resolve name in
      let ostr = (Solver.solve ~timeout machine).Solver.best in
      let parallel =
        match Stc_core.Decompose.parallel machine with
        | Some p ->
          Printf.sprintf "%d x %d = %d bits"
            (Partition.num_classes p.Stc_core.Decompose.pi1)
            (Partition.num_classes p.Stc_core.Decompose.pi2)
            p.Stc_core.Decompose.bits
        | None -> "-"
      in
      let serial =
        match Stc_core.Decompose.serial machine with
        | Some s ->
          Printf.sprintf "head %d + tail %d = %d bits"
            (Partition.num_classes s.Stc_core.Decompose.head)
            s.Stc_core.Decompose.tail_states s.Stc_core.Decompose.bits
        | None -> "-"
      in
      { name; ostr_bits = ostr.Solver.cost.Solver.bits; parallel; serial })
    names

let render_decomposition entries =
  let rows =
    List.map
      (fun e -> [ e.name; string_of_int e.ostr_bits; e.parallel; e.serial ])
      entries
  in
  Table.render
    ~header:
      [ "name"; "OSTR pipeline FFs"; "parallel decomposition";
        "serial decomposition" ]
    rows

type aliasing_entry = {
  name : string;
  misr_width : int;
  stream_detected : int;
  aliased : int;
  aliasing_rate : float;
}

let default_aliasing_names = [ "fig5"; "shiftreg"; "dk27"; "tav"; "mc" ]

let aliasing ?(cycles = 512) ?jobs ?names () =
  let names = match names with Some ns -> ns | None -> default_aliasing_names in
  List.map
    (fun name ->
      let machine = resolve name in
      let built = Arch.pipeline_of_machine ~cycles machine in
      let r = Stc_faultsim.Aliasing.measure ?jobs built in
      {
        name;
        misr_width = r.Stc_faultsim.Aliasing.misr_width;
        stream_detected = r.Stc_faultsim.Aliasing.stream_detected;
        aliased = r.Stc_faultsim.Aliasing.aliased;
        aliasing_rate = r.Stc_faultsim.Aliasing.aliasing_rate;
      })
    names

let render_aliasing entries =
  let rows =
    List.map
      (fun e ->
        [
          e.name;
          string_of_int e.misr_width;
          string_of_int e.stream_detected;
          string_of_int e.aliased;
          Printf.sprintf "%.2f%%" (100.0 *. e.aliasing_rate);
          Printf.sprintf "%.2f%%" (100.0 /. Float.pow 2.0 (float_of_int e.misr_width));
        ])
      entries
  in
  Table.render
    ~header:
      [ "name"; "MISR width"; "stream-detected"; "aliased"; "rate";
        "theory 2^-w" ]
    rows

(* ------------------------------------------------------------------ *)
(* SCOAP testability: conventional vs decomposed structures            *)
(* ------------------------------------------------------------------ *)

type scoap_entry = {
  name : string;
  conv_gates : int;
  conv : Stc_analysis.Scoap.summary;
  pipe_gates : int;
  pipe : Stc_analysis.Scoap.summary;
}

(* tbk stays opt-in here: the packed engine minimizes its monolithic block
   quickly now, but the resulting netlist is still large to levelize.
   `ostr scoap --names tbk` runs it. *)
let default_scoap_names = [ "fig5"; "shiftreg"; "dk16"; "dk512"; "tav" ]

let scoap ?timeout ?names () =
  let module Scoap = Stc_analysis.Scoap in
  let module Actx = Stc_analysis.Context in
  let names = match names with Some ns -> ns | None -> default_scoap_names in
  List.map
    (fun name ->
      let machine = resolve name in
      let ctx = Actx.of_machine ?timeout ~conventional:true machine in
      let summarize label =
        match
          List.find_opt
            (fun (t : Actx.netlist_target) -> t.Actx.net_label = label)
            ctx.Actx.netlists
        with
        | Some t ->
          ( Stc_netlist.Netlist.num_gates t.Actx.netlist,
            Scoap.summarize t.Actx.netlist (Scoap.analyze t.Actx.netlist) )
        | None -> invalid_arg (Printf.sprintf "scoap: no %s netlist" label)
      in
      let conv_gates, conv = summarize "fig1" in
      let pipe_gates, pipe = summarize "fig4" in
      { name; conv_gates; conv; pipe_gates; pipe })
    names

let render_scoap entries =
  let maxes (s : Stc_analysis.Scoap.summary) =
    Printf.sprintf "%d/%d/%d" s.Stc_analysis.Scoap.cc0_max
      s.Stc_analysis.Scoap.cc1_max s.Stc_analysis.Scoap.co_max
  in
  let means (s : Stc_analysis.Scoap.summary) =
    Printf.sprintf "%.1f/%.1f/%.1f" s.Stc_analysis.Scoap.cc0_mean
      s.Stc_analysis.Scoap.cc1_mean s.Stc_analysis.Scoap.co_mean
  in
  let hard (s : Stc_analysis.Scoap.summary) =
    s.Stc_analysis.Scoap.uncontrollable + s.Stc_analysis.Scoap.unobservable
  in
  let rows =
    List.map
      (fun e ->
        [
          e.name;
          string_of_int e.conv_gates;
          maxes e.conv;
          means e.conv;
          string_of_int e.pipe_gates;
          maxes e.pipe;
          means e.pipe;
          Printf.sprintf "%d/%d" (hard e.conv) (hard e.pipe);
        ])
      entries
  in
  Table.render
    ~header:
      [ "name"; "fig1 gates"; "fig1 max CC0/CC1/CO"; "fig1 mean";
        "fig4 gates"; "fig4 max CC0/CC1/CO"; "fig4 mean"; "hard fig1/fig4" ]
    rows
