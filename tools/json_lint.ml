(* Tiny validator for CI artifacts.  Three modes:

     json_lint FILE [KEY ...]      parse FILE, require each KEY at top level
     json_lint --bench FILE...     validate versioned bench files against
                                   Stc_benchmarks.Schema (header keys,
                                   schema version, per-row key consistency)
     json_lint --folded FILE...    validate profiler folded-stack output
                                   (header magic + JSON header, line format,
                                   counts summing to the header's samples)

   Exits nonzero with a message on stderr on any violation, so check.sh
   can gate on the observability artifacts actually being well-formed. *)

module Json = Stc_obs.Json

let failed = ref false

let fail fmt =
  Printf.ksprintf
    (fun s ->
      Printf.eprintf "json_lint: %s\n" s;
      failed := true)
    fmt

(* --- classic mode: top-level key presence --------------------------- *)

let lint_keys path keys =
  match Json.parse_file path with
  | Error msg -> fail "%s: %s" path msg
  | Ok doc ->
    let missing = List.filter (fun k -> Json.member k doc = None) keys in
    if missing <> [] then
      List.iter (fun k -> fail "%s: missing key %S" path k) missing
    else
      Printf.printf "json_lint: %s ok (%d keys checked)\n" path
        (List.length keys)

(* --- bench mode: versioned schema ----------------------------------- *)

let lint_bench path =
  match Json.parse_file path with
  | Error msg -> fail "%s: %s" path msg
  | Ok doc -> (
    match Stc_benchmarks.Schema.validate doc with
    | Ok bench ->
      let rows =
        match Json.member "rows" doc with
        | Some (Json.List rows) -> List.length rows
        | _ -> 0
      in
      Printf.printf "json_lint: %s ok (bench %S, %d rows)\n" path bench rows
    | Error errs -> List.iter (fun e -> fail "%s: %s" path e) errs)

(* --- folded mode: profiler output ----------------------------------- *)

let read_file path =
  match open_in_bin path with
  | exception Sys_error msg -> Error msg
  | ic ->
    Fun.protect
      ~finally:(fun () -> close_in ic)
      (fun () -> Ok (really_input_string ic (in_channel_length ic)))

let lint_folded path =
  match Result.bind (read_file path) Stc_obs.Profile.parse_folded with
  | Error msg -> fail "%s: %s" path msg
  | Ok report ->
    let total =
      List.fold_left (fun acc (_, c) -> acc + c) 0 report.Stc_obs.Profile.folded
    in
    if total <> report.Stc_obs.Profile.samples then
      fail "%s: folded counts sum to %d but header says %d samples" path total
        report.Stc_obs.Profile.samples
    else
      Printf.printf "json_lint: %s ok (%d samples @ %d Hz, %d stacks)\n" path
        report.Stc_obs.Profile.samples report.Stc_obs.Profile.hz
        (List.length report.Stc_obs.Profile.folded)

let () =
  (match Array.to_list Sys.argv with
  | _ :: "--bench" :: (_ :: _ as files) -> List.iter lint_bench files
  | _ :: "--folded" :: (_ :: _ as files) -> List.iter lint_folded files
  | _ :: path :: keys when path <> "--bench" && path <> "--folded" ->
    lint_keys path keys
  | _ ->
    prerr_endline
      "usage: json_lint FILE [KEY ...] | json_lint --bench FILE... | \
       json_lint --folded FILE...";
    exit 2);
  if !failed then exit 1
