(* Tiny JSON validator for CI: parses FILE and checks that each KEY named
   on the command line is present at the top level.  Exits nonzero (with a
   message on stderr) on a parse failure or a missing key, so check.sh can
   gate on trace/metrics files actually being well-formed. *)

let () =
  match Array.to_list Sys.argv with
  | _ :: path :: keys ->
    (match Stc_obs.Json.parse_file path with
    | Error msg ->
      Printf.eprintf "json_lint: %s: %s\n" path msg;
      exit 1
    | Ok doc ->
      let missing =
        List.filter (fun k -> Stc_obs.Json.member k doc = None) keys
      in
      if missing <> [] then begin
        List.iter
          (fun k -> Printf.eprintf "json_lint: %s: missing key %S\n" path k)
          missing;
        exit 1
      end;
      Printf.printf "json_lint: %s ok (%d keys checked)\n" path
        (List.length keys))
  | _ ->
    prerr_endline "usage: json_lint FILE [KEY ...]";
    exit 2
