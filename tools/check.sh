#!/bin/sh
# CI gate: full build, the complete test suite, and the solver smoke
# benchmark (dk16 / dk512 / tbk must reproduce the paper's Table-1 factors
# under a hard wall-clock cap - the bench exits nonzero on timeout or
# factor mismatch).  Run from the repository root.
set -eu

cd "$(dirname "$0")/.."

echo "== dune build =="
dune build

echo "== dune runtest =="
dune runtest

echo "== solver smoke (hard cap via timeout(1)) =="
if command -v timeout >/dev/null 2>&1; then
  timeout 300 dune exec bench/main.exe -- quick
else
  dune exec bench/main.exe -- quick
fi

echo "== traced smoke (trace + metrics files must parse as JSON) =="
obs_dir=$(mktemp -d)
trap 'rm -rf "$obs_dir"' EXIT
dune exec bin/ostr.exe -- solve tbk \
  --trace "$obs_dir/trace.json" --metrics "$obs_dir/metrics.json"
dune exec tools/json_lint.exe -- "$obs_dir/trace.json" \
  traceEvents displayTimeUnit
dune exec tools/json_lint.exe -- "$obs_dir/metrics.json" metrics

echo "check.sh: all gates passed"
