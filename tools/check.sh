#!/bin/sh
# CI gate: full build, the complete test suite, and the solver smoke
# benchmark (dk16 / dk512 / tbk must reproduce the paper's Table-1 factors
# under a hard wall-clock cap - the bench exits nonzero on timeout or
# factor mismatch).  Run from the repository root.
set -eu

cd "$(dirname "$0")/.."

echo "== dune build =="
dune build

echo "== dune runtest =="
dune runtest

echo "== solver smoke (hard cap via timeout(1)) =="
if command -v timeout >/dev/null 2>&1; then
  timeout 300 dune exec bench/main.exe -- quick
else
  dune exec bench/main.exe -- quick
fi

echo "== fault-sim smoke (optimized engine must match the naive grader) =="
if command -v timeout >/dev/null 2>&1; then
  timeout 300 dune exec bench/main.exe -- faultsim-quick
else
  dune exec bench/main.exe -- faultsim-quick
fi

echo "== BENCH_faultsim.json must pass the versioned bench schema =="
dune exec tools/json_lint.exe -- --bench BENCH_faultsim.json

echo "== minimize smoke (packed engine must match the naive reference) =="
if command -v timeout >/dev/null 2>&1; then
  timeout 300 dune exec bench/main.exe -- minimize-quick
else
  dune exec bench/main.exe -- minimize-quick
fi

echo "== BENCH_minimize.json must pass the versioned bench schema =="
dune exec tools/json_lint.exe -- --bench BENCH_minimize.json

echo "== core kernel smoke (packed bit engine must match the references) =="
if command -v timeout >/dev/null 2>&1; then
  timeout 300 dune exec bench/main.exe -- core-quick
else
  dune exec bench/main.exe -- core-quick
fi

echo "== SAT verify smoke (equivalence + redundancy proofs must hold) =="
if command -v timeout >/dev/null 2>&1; then
  timeout 300 dune exec bench/main.exe -- verify-quick
else
  dune exec bench/main.exe -- verify-quick
fi

echo "== anytime smoke (stochastic tier: gap >= 0, seeded determinism) =="
if command -v timeout >/dev/null 2>&1; then
  timeout 300 dune exec bench/main.exe -- anytime-quick
else
  dune exec bench/main.exe -- anytime-quick
fi

echo "== every BENCH file must pass the versioned bench schema =="
dune exec tools/json_lint.exe -- --bench \
  BENCH_solver.json BENCH_faultsim.json BENCH_minimize.json BENCH_core.json \
  BENCH_verify.json BENCH_anytime.json

echo "== traced smoke (trace + metrics + profile files must validate) =="
obs_dir=$(mktemp -d)
trap 'rm -rf "$obs_dir"' EXIT
dune exec bin/ostr.exe -- solve tbk \
  --trace "$obs_dir/trace.json" --metrics "$obs_dir/metrics.json" \
  --profile "$obs_dir/prof.folded"
dune exec tools/json_lint.exe -- "$obs_dir/trace.json" \
  traceEvents displayTimeUnit
dune exec tools/json_lint.exe -- "$obs_dir/metrics.json" metrics
dune exec tools/json_lint.exe -- --folded "$obs_dir/prof.folded"

echo "== bench-diff noise gate (same config twice must not regress) =="
if command -v timeout >/dev/null 2>&1; then
  timeout 300 dune exec bench/main.exe -- core-quick "$obs_dir/bq_a.json"
  timeout 300 dune exec bench/main.exe -- core-quick "$obs_dir/bq_b.json"
else
  dune exec bench/main.exe -- core-quick "$obs_dir/bq_a.json"
  dune exec bench/main.exe -- core-quick "$obs_dir/bq_b.json"
fi
dune exec tools/json_lint.exe -- --bench "$obs_dir/bq_a.json" "$obs_dir/bq_b.json"
dune exec tools/bench_diff.exe -- "$obs_dir/bq_a.json" "$obs_dir/bq_b.json"
if command -v timeout >/dev/null 2>&1; then
  timeout 300 dune exec bench/main.exe -- verify-quick "$obs_dir/vq_a.json"
  timeout 300 dune exec bench/main.exe -- verify-quick "$obs_dir/vq_b.json"
else
  dune exec bench/main.exe -- verify-quick "$obs_dir/vq_a.json"
  dune exec bench/main.exe -- verify-quick "$obs_dir/vq_b.json"
fi
dune exec tools/json_lint.exe -- --bench "$obs_dir/vq_a.json" "$obs_dir/vq_b.json"
dune exec tools/bench_diff.exe -- "$obs_dir/vq_a.json" "$obs_dir/vq_b.json"
if command -v timeout >/dev/null 2>&1; then
  timeout 300 dune exec bench/main.exe -- anytime-quick "$obs_dir/aq_a.json"
  timeout 300 dune exec bench/main.exe -- anytime-quick "$obs_dir/aq_b.json"
else
  dune exec bench/main.exe -- anytime-quick "$obs_dir/aq_a.json"
  dune exec bench/main.exe -- anytime-quick "$obs_dir/aq_b.json"
fi
dune exec tools/json_lint.exe -- --bench "$obs_dir/aq_a.json" "$obs_dir/aq_b.json"
dune exec tools/bench_diff.exe -- "$obs_dir/aq_a.json" "$obs_dir/aq_b.json"

echo "== incremental closure vs full-recompute oracle (CLI runs must agree) =="
# The delta evaluator (--split-ratio/--full-eval live on the same command)
# must be bit-identical to the from-scratch closure: same best, same
# factor counts, same RNG-stream fingerprint.  Only the deterministic
# report lines are compared - elapsed lines differ by construction.
dune exec bin/ostr.exe -- anytime dk16 --force-stochastic --evals 400 \
  | grep -E "stochastic tier:|best:" > "$obs_dir/anytime_incr.txt"
dune exec bin/ostr.exe -- anytime dk16 --force-stochastic --evals 400 --full-eval \
  | grep -E "stochastic tier:|best:" > "$obs_dir/anytime_full.txt"
cmp "$obs_dir/anytime_incr.txt" "$obs_dir/anytime_full.txt"

echo "== static lint gate (benchmark suite, --werror) =="
# Expected-clean set: each of these machines must lint with zero errors AND
# zero warnings; --werror turns any regression into a nonzero exit.  Keep
# the list explicit so a regression shows up as a diff of this file, not as
# a silent skip.  s1 is excluded from the per-commit gate only because
# the cover-lint minterm-enumeration checks on its 5000-cube blocks exceed
# the CI time budget (minimization itself is fast with the packed engine);
# it is linted offline (see EXPERIMENTS.md "Static analysis").
LINT_WERROR_CLEAN="bbara bbtas dk14 dk15 dk16 dk17 dk27 dk512 mc shiftreg tav tbk"
for m in $LINT_WERROR_CLEAN; do
  echo "   lint --werror $m"
  dune exec bin/ostr.exe -- lint "$m" --werror > /dev/null
done
# fig5 carries two known FSM001 warnings (its zoo encoding leaves two
# states unreachable from reset, a genuine finding): errors are still
# forbidden, warnings are expected, so no --werror here.
echo "   lint fig5 (warnings expected, errors forbidden)"
dune exec bin/ostr.exe -- lint fig5 > /dev/null

echo "== lint JSON report must parse and carry the report keys =="
dune exec bin/ostr.exe -- lint dk16 --json "$obs_dir/lint.json" > /dev/null
dune exec tools/json_lint.exe -- "$obs_dir/lint.json" \
  machine diagnostics summary

echo "== verify gate (all zoo architectures must certify; report keys) =="
for m in fig5 shiftreg4 toggle parity; do
  echo "   verify --all-archs --werror $m"
  dune exec bin/ostr.exe -- verify "$m" --all-archs --werror > /dev/null
done
dune exec bin/ostr.exe -- verify dk27 --json "$obs_dir/verify.json" > /dev/null
dune exec tools/json_lint.exe -- "$obs_dir/verify.json" \
  machine diagnostics summary

echo "check.sh: all gates passed"
