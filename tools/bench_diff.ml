(* bench_diff OLD NEW [--rel R] [--abs-s S] [--abs-ns NS] [--verbose]

   Compares two versioned BENCH_*.json files (see Stc_benchmarks.Schema)
   with noise-aware thresholds (Stc_benchmarks.Diff) and exits

     0 - no regression (improvements and stable drift are fine),
     1 - at least one time metric regressed past the thresholds,
     2 - usage / parse / schema errors.

   check.sh gates on this: `bench core-quick` twice must diff clean, and
   any PR that slows a recorded wall past the thresholds fails CI when
   its BENCH file is regenerated. *)

module Json = Stc_obs.Json
module Diff = Stc_benchmarks.Diff

let usage () =
  prerr_endline
    "usage: bench_diff OLD.json NEW.json [--rel FRACTION] [--abs-s SECONDS] \
     [--abs-ns NANOSECONDS] [--verbose]";
  exit 2

let () =
  let files = ref [] in
  let opts = ref Diff.default_options in
  let verbose = ref false in
  let rec parse = function
    | [] -> ()
    | "--verbose" :: rest ->
      verbose := true;
      parse rest
    | flag :: value :: rest
      when flag = "--rel" || flag = "--abs-s" || flag = "--abs-ns" -> (
      match float_of_string_opt value with
      | None -> usage ()
      | Some v ->
        (match flag with
        | "--rel" -> opts := { !opts with Diff.rel = v }
        | "--abs-s" -> opts := { !opts with Diff.abs_s = v }
        | _ -> opts := { !opts with Diff.abs_ns = v });
        parse rest)
    | arg :: _ when String.length arg > 0 && arg.[0] = '-' -> usage ()
    | file :: rest ->
      files := file :: !files;
      parse rest
  in
  parse (List.tl (Array.to_list Sys.argv));
  match List.rev !files with
  | [ old_path; new_path ] -> (
    let load path =
      match Json.parse_file path with
      | Ok doc -> doc
      | Error msg ->
        Printf.eprintf "bench_diff: %s: %s\n" path msg;
        exit 2
    in
    let old_doc = load old_path and new_doc = load new_path in
    match Diff.compare_docs ~opts:!opts ~old_doc ~new_doc () with
    | Error msg ->
      Printf.eprintf "bench_diff: %s\n" msg;
      exit 2
    | Ok r ->
      print_string (Diff.render ~verbose:!verbose r);
      if r.Diff.regressions > 0 then begin
        Printf.printf "bench_diff: %s -> %s: %d regression(s)\n" old_path
          new_path r.Diff.regressions;
        exit 1
      end
      else Printf.printf "bench_diff: %s -> %s: no regressions\n" old_path new_path)
  | _ -> usage ()
