(* Maintainer tool: search generator seeds for the benchmark stand-ins.

   For every benchmark spec in Stc_benchmarks.Suite, try seeds derived from
   the spec's base seed until the generated machine has the right state
   count and the OSTR solver finds exactly the expected Table-1 factors.
   The winning seeds are what `lib/benchmarks/suite.ml` hard-codes; rerun
   this after any change to the generators or the solver and update the
   suite if a seed shifts.

   Run with: dune exec tools/seed_search.exe *)

module Suite = Stc_benchmarks.Suite
module Partition = Stc_partition.Partition
module Solver = Stc_core.Solver
module Machine = Stc_fsm.Machine

let factors (solution : Solver.solution) =
  let a = Partition.num_classes solution.Solver.pi
  and b = Partition.num_classes solution.Solver.rho in
  (min a b, max a b)

let with_seed (spec : Suite.spec) seed =
  match spec.Suite.kind with
  | Suite.Exact -> spec
  | Suite.Planted p -> { spec with Suite.kind = Suite.Planted { p with seed } }
  | Suite.Random _ -> { spec with Suite.kind = Suite.Random { seed } }

let try_seed (spec : Suite.spec) seed =
  let spec = with_seed spec seed in
  match Suite.machine spec with
  | exception _ -> None
  | machine ->
    if machine.Machine.num_states <> spec.Suite.states then None
    else begin
      let result = Solver.solve ~timeout:30.0 machine in
      let expected =
        ( min spec.Suite.expected.Suite.s1 spec.Suite.expected.Suite.s2,
          max spec.Suite.expected.Suite.s1 spec.Suite.expected.Suite.s2 )
      in
      if factors result.Solver.best = expected && not result.Solver.stats.Solver.timed_out
      then Some (seed, result.Solver.stats.Solver.investigated)
      else None
    end

let () =
  List.iter
    (fun (spec : Suite.spec) ->
      match spec.Suite.kind with
      | Suite.Exact -> Format.printf "%-10s exact reconstruction@." spec.Suite.name
      | Suite.Planted { seed = base; _ } | Suite.Random { seed = base } ->
        let rec go k =
          if k > 400 then Format.printf "%-10s NO SEED FOUND@." spec.Suite.name
          else
            match try_seed spec (base + k) with
            | Some (seed, investigated) ->
              Format.printf "%-10s seed %d (%d nodes investigated)%s@."
                spec.Suite.name seed investigated
                (if k = 0 then "" else "  << CHANGED, update suite.ml")
            | None -> go (k + 1)
        in
        go 0)
    Suite.all
