module Code = Stc_encoding.Code
module Tables = Stc_encoding.Tables
module Machine = Stc_fsm.Machine
module Zoo = Stc_fsm.Zoo
module Cover = Stc_logic.Cover
module Cube = Stc_logic.Cube
module Realization = Stc_core.Realization
module Partition = Stc_partition.Partition
module Rng = Stc_util.Rng

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)

(* ------------------------------------------------------------------ *)
(* Code                                                                *)
(* ------------------------------------------------------------------ *)

let test_binary () =
  let c = Code.binary ~num_states:5 in
  check_int "width" 3 c.Code.width;
  check_int "code of 4" 4 c.Code.codes.(4);
  check_bool "bit accessor msb-first" true (Code.bit c ~state:4 ~k:0);
  check_bool "bit accessor lsb" false (Code.bit c ~state:4 ~k:2)

let test_gray_adjacent () =
  let c = Code.gray ~num_states:8 in
  let popcount v =
    let rec go v acc = if v = 0 then acc else go (v lsr 1) (acc + (v land 1)) in
    go v 0
  in
  for s = 0 to 6 do
    check_int "adjacent codes differ by 1 bit" 1
      (popcount (c.Code.codes.(s) lxor c.Code.codes.(s + 1)))
  done

let test_one_hot () =
  let c = Code.one_hot ~num_states:4 in
  check_int "width" 4 c.Code.width;
  Array.iter
    (fun v -> check_bool "single bit" true (v land (v - 1) = 0 && v <> 0))
    c.Code.codes

let test_make_validation () =
  check_bool "duplicate rejected" true
    (match Code.make ~width:2 [| 1; 1 |] with
    | exception Invalid_argument _ -> true
    | _ -> false);
  check_bool "range rejected" true
    (match Code.make ~width:2 [| 1; 4 |] with
    | exception Invalid_argument _ -> true
    | _ -> false)

let test_used_decode () =
  let c = Code.make ~width:2 [| 2; 0 |] in
  let used = Code.used c in
  check_bool "used flags" true (used = [| true; false; true; false |]);
  check_bool "decode" true (Code.decode c 2 = Some 0 && Code.decode c 1 = None)

let test_heuristic_never_worse () =
  List.iter
    (fun m ->
      let binary = Code.binary ~num_states:m.Machine.num_states in
      let h = Code.heuristic m in
      check_bool
        (m.Machine.name ^ " heuristic <= binary")
        true
        (Code.adjacency_cost m h <= Code.adjacency_cost m binary))
    [ Zoo.paper_fig5 (); Zoo.shift_register ~bits:3; Zoo.counter ~modulus:6 ]

let test_adjacency_cost_example () =
  (* Self-loops cost 0; a transition between codes 00 and 11 costs 2. *)
  let m =
    Machine.make ~name:"adj" ~num_states:2 ~num_inputs:1 ~num_outputs:1
      ~next:[| [| 1 |]; [| 1 |] |]
      ~output:[| [| 0 |]; [| 0 |] |]
      ()
  in
  let c = Code.make ~width:2 [| 0; 3 |] in
  check_int "cost" 2 (Code.adjacency_cost m c)
  (* 0->1 costs 2, 1->1 costs 0 *)

(* ------------------------------------------------------------------ *)
(* Tables: conventional                                                *)
(* ------------------------------------------------------------------ *)

let eval_bits cover v = Cover.eval cover v

let minterm_of ~enc ~input_sym ~code_word =
  let iw = enc.Tables.input_width in
  let w = enc.Tables.state_code.Code.width in
  (input_sym lsl w) lor code_word
  |> fun v ->
  ignore iw;
  v

let test_conventional_semantics () =
  List.iter
    (fun m ->
      let enc = Tables.encode m in
      let on, dc = Tables.conventional enc in
      let w = enc.Tables.state_code.Code.width in
      let ow = enc.Tables.output_width in
      for s = 0 to m.Machine.num_states - 1 do
        for i = 0 to m.Machine.num_inputs - 1 do
          let v = minterm_of ~enc ~input_sym:i ~code_word:enc.Tables.state_code.Code.codes.(s) in
          let row = eval_bits on v in
          let expect_ns = enc.Tables.state_code.Code.codes.(m.Machine.next.(s).(i)) in
          let expect_out = enc.Tables.output_codes.(m.Machine.output.(s).(i)) in
          for k = 0 to w - 1 do
            check_bool
              (Printf.sprintf "%s ns bit (s=%d i=%d k=%d)" m.Machine.name s i k)
              (expect_ns land (1 lsl (w - 1 - k)) <> 0)
              row.(k)
          done;
          for k = 0 to ow - 1 do
            check_bool
              (Printf.sprintf "%s out bit (s=%d i=%d k=%d)" m.Machine.name s i k)
              (expect_out land (1 lsl (ow - 1 - k)) <> 0)
              row.(w + k)
          done;
          (* specified entries are never don't-care *)
          check_bool "dc disjoint from specified rows" true
            (Array.for_all not (eval_bits dc v))
        done
      done)
    [ Zoo.paper_fig5 (); Zoo.shift_register ~bits:3; Zoo.counter ~modulus:5 ]

let test_conventional_dc_on_unused_codes () =
  (* counter 5 uses 5 of 8 codes: 3 unused code words are fully dc. *)
  let m = Zoo.counter ~modulus:5 in
  let enc = Tables.encode m in
  let _, dc = Tables.conventional enc in
  let unused = [ 5; 6; 7 ] in
  List.iter
    (fun word ->
      let v = minterm_of ~enc ~input_sym:1 ~code_word:word in
      check_bool "unused code is dc" true (Array.for_all Fun.id (eval_bits dc v)))
    unused

let test_encode_respects_kiss_names () =
  let m = Zoo.paper_fig5 () in
  let enc = Tables.encode m in
  check_int "input width from names" 1 enc.Tables.input_width;
  check_int "output width from names" 1 enc.Tables.output_width;
  (* outputs named "0"/"1" map to codes 0/1 *)
  check_int "output code" 1 enc.Tables.output_codes.(1)

let test_encode_rejects_mismatched_code () =
  let m = Zoo.paper_fig5 () in
  check_bool "rejected" true
    (match Tables.encode ~state_code:(Code.binary ~num_states:7) m with
    | exception Invalid_argument _ -> true
    | _ -> false)

(* ------------------------------------------------------------------ *)
(* Tables: pipeline                                                    *)
(* ------------------------------------------------------------------ *)

let fig5_pipeline () =
  let m = Zoo.paper_fig5 () in
  let pi = Partition.of_blocks ~n:4 [ [ 0; 1 ]; [ 2; 3 ] ] in
  let rho = Partition.of_blocks ~n:4 [ [ 0; 3 ]; [ 1; 2 ] ] in
  Tables.pipeline (Realization.build m ~pi ~rho)

let test_pipeline_factor_semantics () =
  let p = fig5_pipeline () in
  let r = p.Tables.realization in
  let iw = p.Tables.enc.Tables.input_width in
  let w1 = p.Tables.code1.Code.width and w2 = p.Tables.code2.Code.width in
  (* c1 : (input, code1 c1) -> code2 (delta1 c1 i) *)
  Array.iteri
    (fun c1 row ->
      Array.iteri
        (fun i target ->
          let v = (i lsl w1) lor p.Tables.code1.Code.codes.(c1) in
          let bits = Cover.eval p.Tables.c1_on v in
          let expect = p.Tables.code2.Code.codes.(target) in
          for k = 0 to w2 - 1 do
            check_bool "c1 bit" (expect land (1 lsl (w2 - 1 - k)) <> 0) bits.(k)
          done)
        row)
    r.Realization.delta1;
  ignore iw

let test_pipeline_lambda_semantics () =
  let p = fig5_pipeline () in
  let r = p.Tables.realization in
  let m = r.Realization.spec in
  let w1 = p.Tables.code1.Code.width and w2 = p.Tables.code2.Code.width in
  for s = 0 to m.Machine.num_states - 1 do
    let c1 = Partition.class_of r.Realization.pi s in
    let c2 = Partition.class_of r.Realization.rho s in
    for i = 0 to m.Machine.num_inputs - 1 do
      let v =
        (((i lsl w1) lor p.Tables.code1.Code.codes.(c1)) lsl w2)
        lor p.Tables.code2.Code.codes.(c2)
      in
      let bits = Cover.eval p.Tables.lambda_on v in
      let expect = p.Tables.enc.Tables.output_codes.(m.Machine.output.(s).(i)) in
      let ow = p.Tables.enc.Tables.output_width in
      for k = 0 to ow - 1 do
        check_bool "lambda bit" (expect land (1 lsl (ow - 1 - k)) <> 0) bits.(k)
      done
    done
  done

let test_pipeline_lambda_dc_on_empty_intersections () =
  (* dk27-style realization: most product states are fillers -> dc. *)
  let rng = Rng.create 321 in
  let info =
    Stc_fsm.Generate.block_product ~rng ~name:"dcs"
      ~blocks:((1, 2) :: List.init 4 (fun _ -> (1, 1)))
      ~num_inputs:2 ~num_outputs:4 ~distinct_signatures:false ()
  in
  let m = info.Stc_fsm.Generate.machine in
  let pi = Partition.of_class_map info.Stc_fsm.Generate.pi_classes in
  let rho = Partition.of_class_map info.Stc_fsm.Generate.rho_classes in
  let p = Tables.pipeline (Realization.build m ~pi ~rho) in
  check_bool "has dc cubes" true (Cover.size p.Tables.lambda_dc > 0)

let test_pipeline_of_machine_runs () =
  let p = Tables.pipeline_of_machine (Zoo.shift_register ~bits:3) in
  check_int "w1 + w2 = 3 flipflops"
    3
    (p.Tables.code1.Code.width + p.Tables.code2.Code.width)

let test_pipeline_code_mismatch_rejected () =
  let m = Zoo.paper_fig5 () in
  let pi = Partition.of_blocks ~n:4 [ [ 0; 1 ]; [ 2; 3 ] ] in
  let rho = Partition.of_blocks ~n:4 [ [ 0; 3 ]; [ 1; 2 ] ] in
  let r = Realization.build m ~pi ~rho in
  check_bool "rejected" true
    (match Tables.pipeline ~code1:(Code.binary ~num_states:5) r with
    | exception Invalid_argument _ -> true
    | _ -> false)

let () =
  Alcotest.run "stc_encoding"
    [
      ( "code",
        [
          Alcotest.test_case "binary" `Quick test_binary;
          Alcotest.test_case "gray adjacency" `Quick test_gray_adjacent;
          Alcotest.test_case "one hot" `Quick test_one_hot;
          Alcotest.test_case "make validation" `Quick test_make_validation;
          Alcotest.test_case "used/decode" `Quick test_used_decode;
          Alcotest.test_case "heuristic never worse" `Quick test_heuristic_never_worse;
          Alcotest.test_case "adjacency cost" `Quick test_adjacency_cost_example;
        ] );
      ( "conventional",
        [
          Alcotest.test_case "semantics" `Quick test_conventional_semantics;
          Alcotest.test_case "dc on unused codes" `Quick
            test_conventional_dc_on_unused_codes;
          Alcotest.test_case "kiss names" `Quick test_encode_respects_kiss_names;
          Alcotest.test_case "rejects bad code" `Quick test_encode_rejects_mismatched_code;
        ] );
      ( "pipeline",
        [
          Alcotest.test_case "factor semantics" `Quick test_pipeline_factor_semantics;
          Alcotest.test_case "lambda semantics" `Quick test_pipeline_lambda_semantics;
          Alcotest.test_case "lambda dc on fillers" `Quick
            test_pipeline_lambda_dc_on_empty_intersections;
          Alcotest.test_case "pipeline_of_machine" `Quick test_pipeline_of_machine_runs;
          Alcotest.test_case "code mismatch rejected" `Quick
            test_pipeline_code_mismatch_rejected;
        ] );
    ]
