(* Tests for the extension modules: state splitting (the paper's stated
   future work), multi-stage pipelines, and the sequential / full-scan
   test baselines. *)

module Machine = Stc_fsm.Machine
module Zoo = Stc_fsm.Zoo
module Generate = Stc_fsm.Generate
module Equiv = Stc_fsm.Equiv
module Reach = Stc_fsm.Reach
module Partition = Stc_partition.Partition
module Solver = Stc_core.Solver
module Split = Stc_core.Split
module Multiway = Stc_core.Multiway
module Seqtest = Stc_faultsim.Seqtest
module Scan = Stc_faultsim.Scan
module Decompose = Stc_core.Decompose
module Aliasing = Stc_faultsim.Aliasing
module Arch = Stc_faultsim.Arch
module Session = Stc_faultsim.Session
module Suite = Stc_benchmarks.Suite
module Rng = Stc_util.Rng

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)

let qcheck = QCheck_alcotest.to_alcotest

(* ------------------------------------------------------------------ *)
(* Split                                                               *)
(* ------------------------------------------------------------------ *)

let test_split_preserves_behaviour =
  QCheck.Test.make ~count:60 ~name:"splitting preserves behaviour"
    QCheck.(int_bound 100000)
    (fun seed ->
      let rng = Rng.create seed in
      let n = 3 + Rng.int rng 5 in
      let m =
        Generate.random ~rng ~name:"sp" ~num_states:n ~num_inputs:2
          ~num_outputs:2 ()
      in
      let state = Rng.int rng n in
      let edges = Split.incoming m state in
      match edges with
      | [] -> true
      | _ ->
        let moved = List.filteri (fun k _ -> k mod 2 = 0) edges in
        if moved = [] then true
        else begin
          let m' = Split.split m ~state ~moved in
          m'.Machine.num_states = n + 1 && Machine.equal_behaviour m m'
        end)

let test_split_copies_are_equivalent () =
  let m = Zoo.paper_fig5 () in
  let edges = Split.incoming m 0 in
  check_bool "fig5 s1 has incoming edges" true (List.length edges >= 2);
  let moved = [ List.hd edges ] in
  let m' = Split.split m ~state:0 ~moved in
  check_bool "copy is equivalent to the original state" true
    (Equiv.equivalent m' 0 4);
  check_bool "machine is now unreduced" false (Equiv.is_reduced m')

let test_split_incoming () =
  let m = Zoo.shift_register ~bits:3 in
  (* State 0 (000) is entered from 000 and 100 under input 0. *)
  check_bool "incoming of 000" true
    (Split.incoming m 0 = [ (0, 0); (4, 0) ])

let test_split_rejects_bad_edges () =
  let m = Zoo.paper_fig5 () in
  check_bool "edge not leading to state" true
    (match Split.split m ~state:0 ~moved:[ (0, 1) ] with
    | exception Invalid_argument _ -> true
    | _ -> false)

(* The headline test: a machine whose minimization destroyed its product
   structure; splitting one state recovers the 4-flip-flop realization.
   Seed 2 was found by search (see dev notes); the construction is
   deterministic. *)
let split_demo_machine () =
  let rng = Rng.create 2 in
  let info =
    Generate.block_product ~rng ~name:"m8" ~blocks:[ (2, 2); (2, 2) ]
      ~num_inputs:4 ~num_outputs:2 ~distinct_signatures:false ()
  in
  let m8 = info.Generate.machine in
  let twin = ref None in
  for u = 0 to m8.Machine.num_states - 1 do
    for v = u + 1 to m8.Machine.num_states - 1 do
      if !twin = None && m8.Machine.next.(u) = m8.Machine.next.(v) then
        twin := Some (u, v)
    done
  done;
  match !twin with
  | None -> Alcotest.fail "construction lost its twin states"
  | Some (u, v) ->
    let output = Array.map Array.copy m8.Machine.output in
    output.(v) <- Array.copy output.(u);
    let m8t =
      Machine.make ~name:"m8t" ~num_states:m8.Machine.num_states
        ~num_inputs:m8.Machine.num_inputs ~num_outputs:m8.Machine.num_outputs
        ~next:m8.Machine.next ~output ()
    in
    Equiv.minimize m8t

let test_split_improves_demo () =
  let m7 = split_demo_machine () in
  check_int "minimized to 7 states" 7 m7.Machine.num_states;
  let before = (Solver.solve m7).Solver.best in
  check_int "merged machine needs 5 flip-flops" 5 before.Solver.cost.Solver.bits;
  let improved = Split.improve m7 in
  check_int "one split recovers 4 flip-flops" 4
    improved.Split.solution.Solver.cost.Solver.bits;
  check_int "one split sufficed" 1 (List.length improved.Split.splits);
  check_bool "behaviour preserved" true
    (Machine.equal_behaviour m7 improved.Split.machine)

let test_split_improve_never_worse =
  QCheck.Test.make ~count:15 ~name:"improve never worsens the OSTR cost"
    QCheck.(int_bound 100000)
    (fun seed ->
      let rng = Rng.create seed in
      let n = 3 + Rng.int rng 4 in
      let m =
        Generate.random ~rng ~name:"iw" ~num_states:n ~num_inputs:2
          ~num_outputs:2 ()
      in
      let before = (Solver.solve m).Solver.best in
      let improved = Split.improve ~max_rounds:1 m in
      Solver.compare_cost improved.Split.solution.Solver.cost
        before.Solver.cost
      <= 0
      && Machine.equal_behaviour m improved.Split.machine)

(* ------------------------------------------------------------------ *)
(* Multiway                                                            *)
(* ------------------------------------------------------------------ *)

let test_multiway_shiftreg3_three_stages () =
  let m = Zoo.shift_register ~bits:3 in
  let c = Multiway.solve ~timeout:5.0 ~stages:3 m in
  check_int "3 flip-flops" 3 c.Multiway.bits;
  check_bool "three 2-class stages" true
    (Array.for_all (fun p -> Partition.num_classes p = 2) c.Multiway.parts);
  check_bool "realizes" true (Multiway.realizes m c.Multiway.parts)

let test_multiway_shiftreg4_four_stages () =
  let m = Zoo.shift_register ~bits:4 in
  let c = Multiway.solve ~timeout:5.0 ~stages:4 m in
  check_int "4 flip-flops" 4 c.Multiway.bits;
  check_bool "four 2-class stages" true
    (Array.for_all (fun p -> Partition.num_classes p = 2) c.Multiway.parts)

let test_multiway_two_stages_matches_pair_solver () =
  List.iter
    (fun m ->
      let chain = Multiway.solve ~timeout:10.0 ~stages:2 m in
      let pair = (Solver.solve m).Solver.best in
      check_int
        (m.Machine.name ^ " same flip-flop count")
        pair.Solver.cost.Solver.bits chain.Multiway.bits)
    [ Zoo.paper_fig5 (); Zoo.shift_register ~bits:3; Zoo.counter ~modulus:5 ]

let test_multiway_chain_oracle () =
  (* The hand-derived chain of the 3-bit shift register: stage k holds
     tap b_k. *)
  let m = Zoo.shift_register ~bits:3 in
  let ker bit =
    Partition.of_class_map
      (Array.init 8 (fun s -> (s lsr bit) land 1))
  in
  let parts = [| ker 0; ker 1; ker 2 |] in
  check_bool "is a chain" true (Multiway.is_chain ~next:m.Machine.next parts);
  check_bool "admissible" true (Multiway.admissible m parts);
  check_bool "realizes" true (Multiway.realizes m parts);
  (* Rotations are chains too; a wrong order is not. *)
  check_bool "rotation is a chain" true
    (Multiway.is_chain ~next:m.Machine.next [| ker 1; ker 2; ker 0 |]);
  check_bool "reversed order is not" false
    (Multiway.is_chain ~next:m.Machine.next [| ker 2; ker 1; ker 0 |])

let test_multiway_trivial_fallback () =
  let m = Zoo.counter ~modulus:6 in
  let c = Multiway.solve ~timeout:5.0 ~stages:3 m in
  check_bool "at least the trivial chain" true (Array.length c.Multiway.parts = 3);
  check_bool "admissible" true (Multiway.admissible m c.Multiway.parts);
  check_bool "realizes" true (Multiway.realizes m c.Multiway.parts)

let test_multiway_realize_random_products =
  QCheck.Test.make ~count:15 ~name:"multiway realization always realizes"
    QCheck.(int_bound 100000)
    (fun seed ->
      let rng = Rng.create seed in
      let info =
        Generate.block_product ~rng ~name:"mw" ~blocks:[ (2, 2); (1, 1) ]
          ~num_inputs:4 ~num_outputs:4 ()
      in
      let m = info.Generate.machine in
      let c = Multiway.solve ~timeout:5.0 ~stages:3 m in
      Multiway.realizes m c.Multiway.parts)

let test_multiway_rejects_bad_input () =
  let m = Zoo.paper_fig5 () in
  check_bool "stages < 2 rejected" true
    (match Multiway.solve ~stages:1 m with
    | exception Invalid_argument _ -> true
    | _ -> false);
  check_bool "realize rejects non-chain" true
    (match
       Multiway.realize m
         [| Partition.of_blocks ~n:4 [ [ 0; 2 ] ];
            Partition.of_blocks ~n:4 [ [ 1; 3 ] ];
            Partition.identity 4 |]
     with
    | exception Invalid_argument _ -> true
    | _ -> false)

(* ------------------------------------------------------------------ *)
(* Seqtest                                                             *)
(* ------------------------------------------------------------------ *)

let test_seqtest_counter_depth () =
  (* A mod-16 counter only reveals most faults at the carry output, which
     needs long input runs: first detections must spread over many
     cycles. *)
  let r = Seqtest.run_conventional ~cycles:2048 (Zoo.counter ~modulus:16) in
  check_bool "most faults detected" true (r.Seqtest.coverage > 0.8);
  let last =
    r.Seqtest.detection_cycles.(Array.length r.Seqtest.detection_cycles - 1)
  in
  check_bool "tail detection beyond cycle 15" true (last >= 15)

let test_seqtest_deterministic () =
  let m = Zoo.shift_register ~bits:3 in
  let a = Seqtest.run_conventional ~cycles:512 m in
  let b = Seqtest.run_conventional ~cycles:512 m in
  check_int "same detected" a.Seqtest.detected b.Seqtest.detected;
  check_bool "same detection profile" true
    (a.Seqtest.detection_cycles = b.Seqtest.detection_cycles)

let test_seqtest_cycles_to_coverage () =
  let r = Seqtest.run_conventional ~cycles:1024 (Zoo.counter ~modulus:8) in
  let median = Seqtest.cycles_to_coverage r 0.5 in
  let full = Seqtest.cycles_to_coverage r 1.0 in
  check_bool "median defined" true (median <> None);
  check_bool "median <= full" true
    (match (median, full) with
    | Some a, Some b -> a <= b
    | _ -> false)

let test_seqtest_monotone_in_cycles () =
  let m = Zoo.counter ~modulus:12 in
  let short = Seqtest.run_conventional ~cycles:16 m in
  let long = Seqtest.run_conventional ~cycles:1024 m in
  check_bool "longer sequences detect at least as much" true
    (long.Seqtest.detected >= short.Seqtest.detected)

(* ------------------------------------------------------------------ *)
(* Scan                                                                *)
(* ------------------------------------------------------------------ *)

let test_scan_coverage_and_cost () =
  let m = Zoo.shift_register ~bits:3 in
  let s = Scan.run ~patterns:512 m in
  check_bool "high coverage" true
    (s.Scan.report.Session.coverage > 0.95);
  check_int "chain length" 3 s.Scan.chain_length;
  check_int "test cycles include shift overhead" (512 * 4) s.Scan.test_cycles;
  check_int "one mux per flip-flop" 3 s.Scan.extra_muxes

let test_scan_vs_pipeline_test_time () =
  (* Same pattern budget: the scan test pays (chain+1)x the cycles. *)
  let m = Zoo.shift_register ~bits:3 in
  let s = Scan.run ~patterns:1024 m in
  let pipeline_cycles = 2 * 1024 in
  check_bool "scan needs more cycles than both BIST sessions" true
    (s.Scan.test_cycles > pipeline_cycles)

(* ------------------------------------------------------------------ *)
(* Decompose                                                           *)
(* ------------------------------------------------------------------ *)

let test_closed_partitions_are_closed =
  QCheck.Test.make ~count:40 ~name:"enumerated closed partitions are closed"
    QCheck.(int_bound 100000)
    (fun seed ->
      let rng = Rng.create seed in
      let n = 3 + Rng.int rng 5 in
      let m =
        Generate.random ~rng ~name:"cl" ~num_states:n ~num_inputs:2
          ~num_outputs:2 ~ensure_reduced:false ()
      in
      let next = m.Machine.next in
      let closed = Decompose.closed_partitions ~next in
      closed <> []
      && List.for_all (fun pi -> Decompose.is_closed ~next pi) closed
      && List.mem (Partition.identity n) closed)

let test_closure_is_minimal_closed =
  QCheck.Test.make ~count:60 ~name:"closure is the least closed coarsening"
    QCheck.(int_bound 100000)
    (fun seed ->
      let rng = Rng.create seed in
      let n = 3 + Rng.int rng 4 in
      let m =
        Generate.random ~rng ~name:"cm" ~num_states:n ~num_inputs:2
          ~num_outputs:2 ~ensure_reduced:false ()
      in
      let next = m.Machine.next in
      let k = 1 + Rng.int rng n in
      let pi = Partition.of_class_map (Array.init n (fun _ -> Rng.int rng k)) in
      let c = Decompose.closure ~next pi in
      Decompose.is_closed ~next c
      && Partition.subseteq pi c
      && List.for_all
           (fun q ->
             if Partition.subseteq pi q && Decompose.is_closed ~next q then
               Partition.subseteq c q
             else true)
           (Stc_partition.Enumerate.all n))

let test_decompose_counter_serial_only () =
  (* The counter decomposes serially (ripple carry) but admits no
     nontrivial parallel decomposition and no nontrivial pipeline pair -
     the paper's "different from decomposition" point, one way. *)
  let m = Zoo.counter ~modulus:8 in
  check_bool "no parallel decomposition" true (Decompose.parallel m = None);
  check_bool "serial decomposition exists" true (Decompose.serial m <> None);
  let r = Solver.solve m in
  check_bool "pipeline is trivial" true (Solver.is_trivial m r.Solver.best)

let test_decompose_tav_pipeline_only () =
  (* ...and the other way: tav pipeline-factors into 2x2 but has no
     classical decomposition at all. *)
  let m =
    match Suite.find "tav" with Some s -> Suite.machine s | None -> assert false
  in
  check_bool "no parallel decomposition" true (Decompose.parallel m = None);
  check_bool "no serial decomposition" true (Decompose.serial m = None);
  let r = Solver.solve m in
  check_int "pipeline needs 2 flip-flops" 2 r.Solver.best.Solver.cost.Solver.bits

let test_decompose_shiftreg_serial () =
  let m = Zoo.shift_register ~bits:3 in
  match Decompose.serial m with
  | None -> Alcotest.fail "shift register must decompose serially"
  | Some s ->
    check_int "head 2 + tail 4 = 3 bits" 3 s.Decompose.bits;
    check_bool "head is closed" true
      (Decompose.is_closed ~next:m.Machine.next s.Decompose.head)

let test_decompose_parallel_components_closed =
  QCheck.Test.make ~count:25 ~name:"parallel components are closed and admissible"
    QCheck.(int_bound 100000)
    (fun seed ->
      let rng = Rng.create seed in
      let n = 4 + Rng.int rng 4 in
      let m =
        Generate.random ~rng ~name:"pd" ~num_states:n ~num_inputs:2
          ~num_outputs:2 ()
      in
      match Decompose.parallel m with
      | None -> true
      | Some p ->
        let next = m.Machine.next in
        Decompose.is_closed ~next p.Decompose.pi1
        && Decompose.is_closed ~next p.Decompose.pi2
        && Partition.is_identity
             (Partition.meet p.Decompose.pi1 p.Decompose.pi2))

(* ------------------------------------------------------------------ *)
(* Aliasing                                                            *)
(* ------------------------------------------------------------------ *)

let test_aliasing_bounds () =
  let built = Arch.pipeline_of_machine ~cycles:256 (Zoo.paper_fig5 ()) in
  let r = Aliasing.measure built in
  check_bool "signature-detected <= stream-detected" true
    (r.Aliasing.signature_detected <= r.Aliasing.stream_detected);
  check_int "aliased = stream - signature detections" r.Aliasing.aliased
    (r.Aliasing.stream_detected - r.Aliasing.signature_detected);
  check_bool "rate in [0,1]" true
    (r.Aliasing.aliasing_rate >= 0.0 && r.Aliasing.aliasing_rate <= 1.0)

let test_aliasing_rate_near_theory () =
  (* dk27's 5-bit MISR should alias near 2^-5; allow a generous band. *)
  let m =
    match Suite.find "dk27" with Some s -> Suite.machine s | None -> assert false
  in
  let built = Arch.pipeline_of_machine ~cycles:512 m in
  let r = Aliasing.measure built in
  check_int "5-bit signature" 5 r.Aliasing.misr_width;
  check_bool "rate within 4x of theory" true
    (r.Aliasing.aliasing_rate < 4.0 /. 32.0)

let test_aliasing_wide_register_clean () =
  (* A wider signature (shiftreg sessions observe few nets but the fault
     population is small) should alias rarely or never. *)
  let built = Arch.pipeline_of_machine ~cycles:512 (Zoo.shift_register ~bits:3) in
  let r = Aliasing.measure built in
  check_bool "few aliases" true (r.Aliasing.aliased <= 2)

let () =
  Alcotest.run "stc_extensions"
    [
      ( "split",
        [
          qcheck test_split_preserves_behaviour;
          Alcotest.test_case "copies are equivalent" `Quick
            test_split_copies_are_equivalent;
          Alcotest.test_case "incoming" `Quick test_split_incoming;
          Alcotest.test_case "rejects bad edges" `Quick test_split_rejects_bad_edges;
          Alcotest.test_case "improves the merged product machine" `Quick
            test_split_improves_demo;
          qcheck test_split_improve_never_worse;
        ] );
      ( "multiway",
        [
          Alcotest.test_case "shiftreg3 three stages" `Quick
            test_multiway_shiftreg3_three_stages;
          Alcotest.test_case "shiftreg4 four stages" `Quick
            test_multiway_shiftreg4_four_stages;
          Alcotest.test_case "two stages = pair solver" `Quick
            test_multiway_two_stages_matches_pair_solver;
          Alcotest.test_case "hand-derived chain oracle" `Quick
            test_multiway_chain_oracle;
          Alcotest.test_case "trivial fallback" `Quick test_multiway_trivial_fallback;
          qcheck test_multiway_realize_random_products;
          Alcotest.test_case "rejects bad input" `Quick test_multiway_rejects_bad_input;
        ] );
      ( "decompose",
        [
          qcheck test_closed_partitions_are_closed;
          qcheck test_closure_is_minimal_closed;
          Alcotest.test_case "counter: serial only" `Quick
            test_decompose_counter_serial_only;
          Alcotest.test_case "tav: pipeline only" `Quick
            test_decompose_tav_pipeline_only;
          Alcotest.test_case "shiftreg serial" `Quick test_decompose_shiftreg_serial;
          qcheck test_decompose_parallel_components_closed;
        ] );
      ( "aliasing",
        [
          Alcotest.test_case "bounds" `Quick test_aliasing_bounds;
          Alcotest.test_case "rate near theory" `Quick test_aliasing_rate_near_theory;
          Alcotest.test_case "wide register clean" `Quick
            test_aliasing_wide_register_clean;
        ] );
      ( "seqtest",
        [
          Alcotest.test_case "counter depth" `Quick test_seqtest_counter_depth;
          Alcotest.test_case "deterministic" `Quick test_seqtest_deterministic;
          Alcotest.test_case "cycles to coverage" `Quick test_seqtest_cycles_to_coverage;
          Alcotest.test_case "monotone in cycles" `Quick test_seqtest_monotone_in_cycles;
        ] );
      ( "scan",
        [
          Alcotest.test_case "coverage and cost" `Quick test_scan_coverage_and_cost;
          Alcotest.test_case "scan vs pipeline test time" `Quick
            test_scan_vs_pipeline_test_time;
        ] );
    ]
