test/test_extensions.ml: Alcotest Array List QCheck QCheck_alcotest Stc_benchmarks Stc_core Stc_faultsim Stc_fsm Stc_partition Stc_util
