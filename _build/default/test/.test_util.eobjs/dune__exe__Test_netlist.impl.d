test/test_netlist.ml: Alcotest Array Format Fun List Printf QCheck QCheck_alcotest Stc_logic Stc_netlist Stc_util String
