test/test_benchmarks.ml: Alcotest List Printf Result Stc_benchmarks Stc_core Stc_fsm Stc_partition
