test/test_util.ml: Alcotest Array Fun Stc_util
