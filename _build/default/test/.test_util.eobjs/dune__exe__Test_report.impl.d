test/test_report.ml: Alcotest List Stc_benchmarks Stc_core Stc_report String
