test/test_faultsim.ml: Alcotest Array List Printf Stc_benchmarks Stc_faultsim Stc_fsm Stc_netlist
