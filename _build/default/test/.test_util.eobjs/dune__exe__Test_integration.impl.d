test/test_integration.ml: Alcotest Array List Printf QCheck QCheck_alcotest Stc_benchmarks Stc_core Stc_encoding Stc_fsm Stc_logic Stc_netlist Stc_partition Stc_util
