test/test_logic.ml: Alcotest Array Fun List QCheck QCheck_alcotest Stc_logic Stc_util String
