test/test_fsm.ml: Alcotest Array Gen List Printf QCheck QCheck_alcotest Stc_fsm Stc_partition Stc_util String
