test/test_bist.ml: Alcotest Array Printf QCheck QCheck_alcotest Stc_bist Stc_util
