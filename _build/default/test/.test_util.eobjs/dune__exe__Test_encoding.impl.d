test/test_encoding.ml: Alcotest Array Fun List Printf Stc_core Stc_encoding Stc_fsm Stc_logic Stc_partition Stc_util
