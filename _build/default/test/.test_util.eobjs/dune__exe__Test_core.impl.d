test/test_core.ml: Alcotest Array Float Format List QCheck QCheck_alcotest Result Stc_benchmarks Stc_core Stc_fsm Stc_partition Stc_util String
