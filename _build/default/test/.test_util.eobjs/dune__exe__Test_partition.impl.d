test/test_partition.ml: Alcotest Array List Printf QCheck QCheck_alcotest Seq Stc_fsm Stc_partition Stc_util
