module Lfsr = Stc_bist.Lfsr
module Misr = Stc_bist.Misr
module Bilbo = Stc_bist.Bilbo
module Rng = Stc_util.Rng

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)

let qcheck = QCheck_alcotest.to_alcotest

(* ------------------------------------------------------------------ *)
(* Lfsr                                                                *)
(* ------------------------------------------------------------------ *)

let test_full_period () =
  for w = 1 to 14 do
    let l = Lfsr.create ~width:w ~seed:1 () in
    check_int
      (Printf.sprintf "period of width %d" w)
      ((1 lsl w) - 1)
      (Lfsr.period l)
  done

let test_never_zero =
  QCheck.Test.make ~count:100 ~name:"lfsr state never reaches zero"
    QCheck.(pair (int_range 2 16) (int_bound 100000))
    (fun (w, seed) ->
      let l = Lfsr.create ~width:w ~seed:(1 + (seed mod ((1 lsl w) - 1))) () in
      let ok = ref true in
      for _ = 1 to 200 do
        if Lfsr.step l = 0 then ok := false
      done;
      !ok)

let test_sequence_deterministic () =
  let a = Lfsr.create ~width:8 ~seed:17 () in
  let b = Lfsr.create ~width:8 ~seed:17 () in
  check_bool "same sequences" true (Lfsr.sequence a 50 = Lfsr.sequence b 50)

let test_next_pattern_returns_current () =
  let l = Lfsr.create ~width:4 ~seed:0b1010 () in
  check_int "first pattern is the seed" 0b1010 (Lfsr.next_pattern l);
  check_bool "then it advanced" true (Lfsr.state l <> 0b1010)

let test_create_validation () =
  check_bool "zero seed" true
    (match Lfsr.create ~width:4 ~seed:0 () with
    | exception Invalid_argument _ -> true
    | _ -> false);
  check_bool "seed masked to width" true
    (match Lfsr.create ~width:4 ~seed:16 () with
    | exception Invalid_argument _ -> true (* 16 mod 16 = 0 *)
    | _ -> false);
  check_bool "width range" true
    (match Lfsr.create ~width:0 ~seed:1 () with
    | exception Invalid_argument _ -> true
    | _ -> false)

let test_bit_accessor () =
  let l = Lfsr.create ~width:4 ~seed:0b0110 () in
  check_bool "bit 0" false (Lfsr.bit l 0);
  check_bool "bit 1" true (Lfsr.bit l 1);
  check_bool "bit 2" true (Lfsr.bit l 2);
  check_bool "bit 3" false (Lfsr.bit l 3)

let test_sequence_covers_all_nonzero () =
  let l = Lfsr.create ~width:6 ~seed:1 () in
  let seen = Array.make 64 false in
  Array.iter (fun v -> seen.(v) <- true) (Lfsr.sequence l 63);
  check_bool "zero never" false seen.(0);
  for v = 1 to 63 do
    check_bool (Printf.sprintf "state %d visited" v) true seen.(v)
  done

(* ------------------------------------------------------------------ *)
(* Misr                                                                *)
(* ------------------------------------------------------------------ *)

let test_misr_zero_stream_is_lfsr () =
  (* With all-zero inputs a MISR seeded non-zero is exactly the LFSR. *)
  let m = Misr.create ~width:8 ~seed:0b1011 () in
  let l = Lfsr.create ~width:8 ~seed:0b1011 () in
  for _ = 1 to 100 do
    check_int "same step" (Lfsr.step l) (Misr.absorb m 0)
  done

let test_misr_linearity =
  QCheck.Test.make ~count:100 ~name:"signatures are GF(2)-linear in the stream"
    QCheck.(int_bound 1000000)
    (fun seed ->
      let rng = Rng.create seed in
      let w = 4 + Rng.int rng 12 in
      let n = 1 + Rng.int rng 30 in
      let mask = (1 lsl w) - 1 in
      let a = Array.init n (fun _ -> Rng.int rng (mask + 1)) in
      let b = Array.init n (fun _ -> Rng.int rng (mask + 1)) in
      let sig_of stream =
        Misr.absorb_all (Misr.create ~width:w ~seed:0 ()) stream
      in
      let xor = Array.map2 ( lxor ) a b in
      sig_of xor = sig_of a lxor sig_of b)

let test_misr_detects_single_corruption () =
  let w = 8 in
  let stream = Array.init 40 (fun k -> (k * 37) land 0xFF) in
  let reference = Misr.absorb_all (Misr.create ~width:w ~seed:0 ()) stream in
  (* A single corrupted word always changes the signature (no aliasing for
     a single error). *)
  for k = 0 to 39 do
    let corrupted = Array.copy stream in
    corrupted.(k) <- corrupted.(k) lxor 0x10;
    let s = Misr.absorb_all (Misr.create ~width:w ~seed:0 ()) corrupted in
    check_bool (Printf.sprintf "corruption at %d detected" k) true (s <> reference)
  done

let test_misr_reset () =
  let m = Misr.create ~width:8 ~seed:0 () in
  ignore (Misr.absorb m 0xAB);
  Misr.reset m 0;
  check_int "back to zero" 0 (Misr.signature m)

(* ------------------------------------------------------------------ *)
(* Bilbo                                                               *)
(* ------------------------------------------------------------------ *)

let test_bilbo_system_mode () =
  let b = Bilbo.create ~width:8 () in
  Bilbo.set_mode b Bilbo.System;
  ignore (Bilbo.clock b ~parallel:0x5A ~serial:false);
  check_int "parallel load" 0x5A (Bilbo.state b)

let test_bilbo_scan_mode () =
  let b = Bilbo.create ~width:4 () in
  Bilbo.load b 0b1001;
  Bilbo.set_mode b Bilbo.Scan;
  check_bool "scan out is lsb" true (Bilbo.scan_out b);
  ignore (Bilbo.clock b ~parallel:0 ~serial:true);
  check_int "shifted with serial in" 0b1100 (Bilbo.state b)

let test_bilbo_pattern_gen_is_lfsr () =
  let b = Bilbo.create ~width:8 () in
  Bilbo.load b 0x35;
  Bilbo.set_mode b Bilbo.Pattern_gen;
  let l = Lfsr.create ~width:8 ~seed:0x35 () in
  for _ = 1 to 60 do
    check_int "tracks lfsr" (Lfsr.step l)
      (Bilbo.clock b ~parallel:0xFF ~serial:false)
  done

let test_bilbo_signature_is_misr () =
  let b = Bilbo.create ~width:8 () in
  Bilbo.load b 0;
  Bilbo.set_mode b Bilbo.Signature;
  let m = Misr.create ~width:8 ~seed:0 () in
  let rng = Rng.create 99 in
  for _ = 1 to 60 do
    let word = Rng.int rng 256 in
    check_int "tracks misr" (Misr.absorb m word)
      (Bilbo.clock b ~parallel:word ~serial:false)
  done

let test_bilbo_two_session_roles () =
  (* The fig. 4 usage: R1 generates while R2 compresses, then swap. *)
  let r1 = Bilbo.create ~width:4 () and r2 = Bilbo.create ~width:4 () in
  Bilbo.load r1 0b0101;
  Bilbo.set_mode r1 Bilbo.Pattern_gen;
  Bilbo.set_mode r2 Bilbo.Signature;
  for _ = 1 to 15 do
    let pattern = Bilbo.state r1 in
    ignore (Bilbo.clock r1 ~parallel:0 ~serial:false);
    ignore (Bilbo.clock r2 ~parallel:pattern ~serial:false)
  done;
  let session1_signature = Bilbo.state r2 in
  check_bool "signature accumulated" true (session1_signature <> 0);
  (* swap roles *)
  Bilbo.set_mode r1 Bilbo.Signature;
  Bilbo.set_mode r2 Bilbo.Pattern_gen;
  Bilbo.load r2 0b0011;
  for _ = 1 to 15 do
    let pattern = Bilbo.state r2 in
    ignore (Bilbo.clock r2 ~parallel:0 ~serial:false);
    ignore (Bilbo.clock r1 ~parallel:pattern ~serial:false)
  done;
  check_bool "roles swapped" true (Bilbo.mode r1 = Bilbo.Signature)

let () =
  Alcotest.run "stc_bist"
    [
      ( "lfsr",
        [
          Alcotest.test_case "full period" `Quick test_full_period;
          qcheck test_never_zero;
          Alcotest.test_case "deterministic" `Quick test_sequence_deterministic;
          Alcotest.test_case "next_pattern" `Quick test_next_pattern_returns_current;
          Alcotest.test_case "create validation" `Quick test_create_validation;
          Alcotest.test_case "bit accessor" `Quick test_bit_accessor;
          Alcotest.test_case "covers all nonzero states" `Quick
            test_sequence_covers_all_nonzero;
        ] );
      ( "misr",
        [
          Alcotest.test_case "zero stream = lfsr" `Quick test_misr_zero_stream_is_lfsr;
          qcheck test_misr_linearity;
          Alcotest.test_case "single corruption detected" `Quick
            test_misr_detects_single_corruption;
          Alcotest.test_case "reset" `Quick test_misr_reset;
        ] );
      ( "bilbo",
        [
          Alcotest.test_case "system mode" `Quick test_bilbo_system_mode;
          Alcotest.test_case "scan mode" `Quick test_bilbo_scan_mode;
          Alcotest.test_case "pattern gen = lfsr" `Quick test_bilbo_pattern_gen_is_lfsr;
          Alcotest.test_case "signature = misr" `Quick test_bilbo_signature_is_misr;
          Alcotest.test_case "two-session roles" `Quick test_bilbo_two_session_roles;
        ] );
    ]
