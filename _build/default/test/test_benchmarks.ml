module Suite = Stc_benchmarks.Suite
module Machine = Stc_fsm.Machine
module Kiss = Stc_fsm.Kiss
module Reach = Stc_fsm.Reach
module Equiv = Stc_fsm.Equiv
module Partition = Stc_partition.Partition
module Solver = Stc_core.Solver
module Realization = Stc_core.Realization

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)

let test_registry () =
  check_int "13 benchmarks" 13 (List.length Suite.all);
  check_bool "find works" true (Suite.find "dk27" <> None);
  check_bool "find misses unknown" true (Suite.find "nonesuch" = None);
  check_bool "names sorted as in the paper" true
    (Suite.names
    = [ "bbara"; "bbtas"; "dk14"; "dk15"; "dk16"; "dk17"; "dk27"; "dk512";
        "mc"; "s1"; "shiftreg"; "tav"; "tbk" ])

let test_paper_rows_consistent () =
  (* Flip-flop columns of Table 1 must satisfy their defining formulas. *)
  List.iter
    (fun (spec : Suite.spec) ->
      check_int
        (spec.name ^ " conventional FF")
        (2 * Machine.bits_for spec.states)
        spec.paper.ff_conventional;
      check_int
        (spec.name ^ " pipeline FF")
        (Machine.bits_for spec.paper.s1 + Machine.bits_for spec.paper.s2)
        spec.paper.ff_pipeline)
    Suite.all

let test_machines_well_formed () =
  List.iter
    (fun (spec : Suite.spec) ->
      let m = Suite.machine spec in
      check_int (spec.name ^ " states") spec.states m.Machine.num_states;
      check_int (spec.name ^ " inputs") (1 lsl spec.input_bits) m.Machine.num_inputs;
      check_bool (spec.name ^ " connected") true (Reach.is_connected m);
      check_bool (spec.name ^ " reduced") true (Equiv.is_reduced m))
    Suite.all

let test_machines_deterministic () =
  List.iter
    (fun (spec : Suite.spec) ->
      let a = Suite.machine spec and b = Suite.machine spec in
      check_bool (spec.name ^ " rebuilds identically") true
        (a.Machine.next = b.Machine.next && a.Machine.output = b.Machine.output))
    Suite.all

let test_kiss_roundtrip () =
  List.iter
    (fun (spec : Suite.spec) ->
      let m = Suite.machine spec in
      let m' = Kiss.parse ~name:spec.name (Kiss.print m) in
      check_bool (spec.name ^ " kiss roundtrip") true (Machine.equal_behaviour m m'))
    Suite.all

let test_nontrivial_flags () =
  let nontrivial =
    List.filter Suite.nontrivial Suite.all |> List.map (fun s -> s.Suite.name)
  in
  (* Section 4: "for eight examples a nontrivial solution ... could be
     found" - the paper's table marks these seven plus tbk via timeout;
     in our reading bbara, dk16, dk27, dk512, shiftreg, tav, tbk. *)
  check_bool "nontrivial set" true
    (nontrivial = [ "bbara"; "dk16"; "dk27"; "dk512"; "shiftreg"; "tav"; "tbk" ])

(* Table 1 reproduction: the solver finds exactly the expected row. *)
let solve_and_check (spec : Suite.spec) () =
  let m = Suite.machine spec in
  let r = Solver.solve ~timeout:120.0 m in
  check_bool (spec.name ^ " solution valid") true
    (Result.is_ok (Solver.validate m r.best));
  let a = Partition.num_classes r.best.pi
  and b = Partition.num_classes r.best.rho in
  let expected = (min spec.expected.s1 spec.expected.s2,
                  max spec.expected.s1 spec.expected.s2) in
  check_bool
    (Printf.sprintf "%s factors (%d,%d)" spec.name a b)
    true
    ((min a b, max a b) = expected);
  check_int (spec.name ^ " pipeline FF") spec.expected.ff_pipeline r.best.cost.bits;
  (* The realization must actually realize the machine. *)
  let real = Realization.of_solution m r.best in
  check_bool (spec.name ^ " realizes") true (Realization.realizes real);
  check_bool (spec.name ^ " behaviour") true
    (Machine.equal_behaviour m real.Realization.product)

let table1_cases =
  List.map
    (fun (spec : Suite.spec) ->
      let speed = if spec.states > 14 then `Slow else `Quick in
      Alcotest.test_case ("table1 " ^ spec.name) speed (solve_and_check spec))
    Suite.all

let () =
  Alcotest.run "stc_benchmarks"
    [
      ( "suite",
        [
          Alcotest.test_case "registry" `Quick test_registry;
          Alcotest.test_case "paper rows consistent" `Quick test_paper_rows_consistent;
          Alcotest.test_case "machines well-formed" `Quick test_machines_well_formed;
          Alcotest.test_case "machines deterministic" `Quick test_machines_deterministic;
          Alcotest.test_case "kiss roundtrip" `Quick test_kiss_roundtrip;
          Alcotest.test_case "nontrivial flags" `Quick test_nontrivial_flags;
        ] );
      ("table1", table1_cases);
    ]
