module Table = Stc_report.Table
module Experiments = Stc_report.Experiments
module Suite = Stc_benchmarks.Suite
module Solver = Stc_core.Solver

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)
let check_string = Alcotest.(check string)

let contains hay needle =
  let nl = String.length needle and hl = String.length hay in
  let rec go i = i + nl <= hl && (String.sub hay i nl = needle || go (i + 1)) in
  go 0

(* ------------------------------------------------------------------ *)
(* Table                                                               *)
(* ------------------------------------------------------------------ *)

let test_table_layout () =
  let s = Table.render ~header:[ "a"; "bb" ] [ [ "11"; "2" ]; [ "3"; "444" ] ] in
  check_string "layout" "a   bb \n--  ---\n11  2  \n3   444\n" s

let test_table_ragged_rows () =
  let s = Table.render ~header:[ "x" ] [ [ "1"; "2" ]; [] ] in
  check_bool "extra column padded" true (contains s "1  2");
  check_int "four lines" 4
    (List.length (String.split_on_char '\n' (String.trim s)) + 1)

(* ------------------------------------------------------------------ *)
(* Experiments                                                         *)
(* ------------------------------------------------------------------ *)

let test_table1_driver_row () =
  let entries = Experiments.table1 ~names:[ "shiftreg"; "tav" ] () in
  check_int "two rows" 2 (List.length entries);
  let shiftreg = List.hd entries in
  check_int "pipeline FFs" 3 shiftreg.Experiments.ff_pipeline;
  check_int "conventional FFs" 6 shiftreg.Experiments.ff_conventional;
  let rendered = Experiments.render_table1 entries in
  check_bool "mentions paper column" true (contains rendered "paper S1/S2");
  check_bool "row present" true (contains rendered "shiftreg")

let test_table2_driver_row () =
  let entries = Experiments.table1 ~names:[ "shiftreg" ] () in
  let rendered = Experiments.render_table2 entries in
  check_bool "power-of-two search space" true (contains rendered "2^7");
  check_bool "paper count present" true (contains rendered "45")

let test_area_driver () =
  let entries = Experiments.area ~names:[ "shiftreg" ] () in
  let e = List.hd entries in
  check_bool "pipeline literals at most doubled" true
    (e.Experiments.pipe_literals <= e.Experiments.doubled_literals);
  check_bool "renders" true
    (contains (Experiments.render_area entries) "doubled lits")

let test_coverage_driver () =
  let entries = Experiments.coverage ~cycles:256 ~names:[ "shiftreg" ] () in
  let e = List.hd entries in
  check_bool "fig4 at least fig2 coverage" true
    (e.Experiments.fig4_coverage >= e.Experiments.fig2_coverage);
  check_int "fig4 flip-flops" 3 e.Experiments.fig4_ff;
  check_bool "fig2 leaves feedback faults" true
    (e.Experiments.fig2_escaped_feedback > 0)

let test_strategies_driver () =
  let entries = Experiments.strategies ~cycles:256 ~names:[ "shiftreg" ] () in
  let e = List.hd entries in
  check_bool "scan pays shift overhead" true
    (e.Experiments.scan_cycles > e.Experiments.bist_cycles);
  check_bool "renders" true
    (contains (Experiments.render_strategies entries) "BIST cycles")

let test_extensions_driver () =
  let entries = Experiments.extensions ~timeout:5.0 ~names:[ "shiftreg" ] () in
  let e = List.hd entries in
  check_int "2-stage baseline" 3 e.Experiments.base_bits;
  check_int "3-stage result" 3 e.Experiments.three_stage_bits;
  check_string "3-stage sizes" "2x2x2" e.Experiments.three_stage_sizes;
  check_bool "split never worse" true
    (e.Experiments.split_bits <= e.Experiments.base_bits)

let test_machine_named () =
  check_bool "benchmark" true (Experiments.machine_named "dk27" <> None);
  check_bool "zoo" true (Experiments.machine_named "counter8" <> None);
  check_bool "unknown" true (Experiments.machine_named "nonesuch" = None)

let test_unknown_names_rejected () =
  check_bool "rejected" true
    (match Experiments.table1 ~names:[ "nonesuch" ] () with
    | exception Invalid_argument _ -> true
    | _ -> false)

let () =
  Alcotest.run "stc_report"
    [
      ( "table",
        [
          Alcotest.test_case "layout" `Quick test_table_layout;
          Alcotest.test_case "ragged rows" `Quick test_table_ragged_rows;
        ] );
      ( "experiments",
        [
          Alcotest.test_case "table1 driver" `Quick test_table1_driver_row;
          Alcotest.test_case "table2 driver" `Quick test_table2_driver_row;
          Alcotest.test_case "area driver" `Quick test_area_driver;
          Alcotest.test_case "coverage driver" `Quick test_coverage_driver;
          Alcotest.test_case "strategies driver" `Quick test_strategies_driver;
          Alcotest.test_case "extensions driver" `Quick test_extensions_driver;
          Alcotest.test_case "machine_named" `Quick test_machine_named;
          Alcotest.test_case "unknown names rejected" `Quick
            test_unknown_names_rejected;
        ] );
    ]
