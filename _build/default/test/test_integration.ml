(* End-to-end flow tests: KISS2 spec -> OSTR solution -> Theorem-1
   realization -> state encoding -> espresso-minimized blocks -> gate-level
   pipeline netlist, then cycle-accurate co-simulation of the synthesized
   circuit against the original machine. *)

module Machine = Stc_fsm.Machine
module Kiss = Stc_fsm.Kiss
module Zoo = Stc_fsm.Zoo
module Generate = Stc_fsm.Generate
module Suite = Stc_benchmarks.Suite
module Ostr = Stc_core.Ostr
module Realization = Stc_core.Realization
module Tables = Stc_encoding.Tables
module Code = Stc_encoding.Code
module Minimize = Stc_logic.Minimize
module Truth = Stc_logic.Truth
module N = Stc_netlist.Netlist
module B = Stc_netlist.Netlist.Builder
module Partition = Stc_partition.Partition
module Rng = Stc_util.Rng

let check_bool = Alcotest.(check bool)

(* Build the fig. 4 pipeline as a *sequential* circuit model: minimized C1,
   C2 and Lambda plus two state words held by the caller, and step it cycle
   by cycle. *)
type circuit = {
  tables : Tables.pipeline;
  net : N.t;
  c1_out : int array;
  c2_out : int array;
  po_out : int array;
  mutable r1 : int;
  mutable r2 : int;
}

let build_circuit (p : Tables.pipeline) =
  let iw = p.Tables.enc.Tables.input_width in
  let w1 = p.Tables.code1.Code.width and w2 = p.Tables.code2.Code.width in
  let c1 = fst (Minimize.minimize ~dc:p.Tables.c1_dc p.Tables.c1_on) in
  let c2 = fst (Minimize.minimize ~dc:p.Tables.c2_dc p.Tables.c2_on) in
  let lambda = fst (Minimize.minimize ~dc:p.Tables.lambda_dc p.Tables.lambda_on) in
  let b = B.create "pipeline" in
  let primary = Array.init iw (fun k -> B.input b (Printf.sprintf "i%d" k)) in
  let r1 = Array.init w1 (fun k -> B.input b (Printf.sprintf "r1_%d" k)) in
  let r2 = Array.init w2 (fun k -> B.input b (Printf.sprintf "r2_%d" k)) in
  let c1_out = B.emit_cover b ~inputs:(Array.append primary r1) c1 in
  let c2_out = B.emit_cover b ~inputs:(Array.append primary r2) c2 in
  let po_out = B.emit_cover b ~inputs:(Array.concat [ primary; r1; r2 ]) lambda in
  Array.iteri (fun k g -> B.output b (Printf.sprintf "o%d" k) g) po_out;
  let r = p.Tables.realization in
  let reset = r.Realization.spec.Machine.reset in
  {
    tables = p;
    net = B.finish b;
    c1_out;
    c2_out;
    po_out;
    r1 = p.Tables.code1.Code.codes.(Partition.class_of r.Realization.pi reset);
    r2 = p.Tables.code2.Code.codes.(Partition.class_of r.Realization.rho reset);
  }

let bits_to_word values gates = Array.fold_left (fun acc g -> (acc lsl 1) lor (values.(g) land 1)) 0 gates

(* Apply input symbol [i]; return the output code word and advance the
   registers: new R1 = C2 output, new R2 = C1 output, as in Theorem 1. *)
let step_circuit c i =
  let p = c.tables in
  let iw = p.Tables.enc.Tables.input_width in
  let w1 = p.Tables.code1.Code.width and w2 = p.Tables.code2.Code.width in
  let vec =
    Array.concat
      [
        Array.init iw (fun k -> (i lsr (iw - 1 - k)) land 1);
        Array.init w1 (fun k -> (c.r1 lsr (w1 - 1 - k)) land 1);
        Array.init w2 (fun k -> (c.r2 lsr (w2 - 1 - k)) land 1);
      ]
  in
  let values = N.eval c.net ~inputs:vec in
  let out = bits_to_word values c.po_out in
  let new_r2 = bits_to_word values c.c1_out in
  let new_r1 = bits_to_word values c.c2_out in
  c.r1 <- new_r1;
  c.r2 <- new_r2;
  out

let co_simulate machine ~steps ~seed =
  let outcome = Ostr.run machine in
  let p = Tables.pipeline outcome.Ostr.realization in
  let circuit = build_circuit p in
  let rng = Rng.create seed in
  let ow = p.Tables.enc.Tables.output_width in
  let state = ref machine.Machine.reset in
  let ok = ref true in
  for _ = 1 to steps do
    let i = Rng.int rng machine.Machine.num_inputs in
    let s', o = Machine.step machine !state i in
    state := s';
    let got = step_circuit circuit i in
    let expect = p.Tables.enc.Tables.output_codes.(o) in
    if got land ((1 lsl ow) - 1) <> expect then ok := false
  done;
  !ok

let test_cosim machine () =
  check_bool
    (machine.Machine.name ^ " circuit behaves as the specification")
    true
    (co_simulate machine ~steps:2000 ~seed:42)

let test_cosim_random_products =
  QCheck_alcotest.to_alcotest
    (QCheck.Test.make ~count:10 ~name:"random product machines co-simulate"
       QCheck.(int_bound 100000)
       (fun seed ->
         let rng = Rng.create seed in
         let info =
           Generate.block_product ~rng ~name:"cosim"
             ~blocks:[ (1, 2); (2, 1); (1, 1) ]
             ~num_inputs:4 ~num_outputs:4 ()
         in
         co_simulate info.Generate.machine ~steps:500 ~seed))

(* The complete artifact path: spec text -> parse -> synthesize -> export
   both factors back to KISS2 and re-parse them. *)
let test_kiss_to_kiss () =
  let text = Kiss.print (Zoo.paper_fig5 ()) in
  let machine = Kiss.parse ~name:"fig5" text in
  let outcome = Ostr.run machine in
  let product = outcome.Ostr.realization.Realization.product in
  let product' = Kiss.parse ~name:"product" (Kiss.print product) in
  check_bool "product round-trips through KISS2" true
    (Machine.equal_behaviour product product');
  check_bool "and realizes the spec" true
    (Machine.equal_behaviour machine product')

(* Minimization contracts along the benchmark flow. *)
let test_benchmark_minimization_contracts () =
  List.iter
    (fun name ->
      let spec = match Suite.find name with Some s -> s | None -> assert false in
      let machine = Suite.machine spec in
      let enc = Tables.encode machine in
      let on, dc = Tables.conventional enc in
      let cover, _ = Minimize.minimize ~dc on in
      check_bool (name ^ " conventional contract") true
        (Truth.equivalent_with_dc ~on ~dc cover);
      let p = Tables.pipeline_of_machine machine in
      let c1, _ = Minimize.minimize ~dc:p.Tables.c1_dc p.Tables.c1_on in
      check_bool (name ^ " c1 contract") true
        (Truth.equivalent_with_dc ~on:p.Tables.c1_on ~dc:p.Tables.c1_dc c1))
    [ "dk27"; "shiftreg"; "tav" ]

let () =
  Alcotest.run "stc_integration"
    [
      ( "cosimulation",
        [
          Alcotest.test_case "fig5" `Quick (test_cosim (Zoo.paper_fig5 ()));
          Alcotest.test_case "shiftreg" `Quick (test_cosim (Zoo.shift_register ~bits:3));
          Alcotest.test_case "counter (trivial realization)" `Quick
            (test_cosim (Zoo.counter ~modulus:5));
          Alcotest.test_case "serial adder" `Quick (test_cosim (Zoo.serial_adder ()));
          test_cosim_random_products;
        ] );
      ( "artifacts",
        [
          Alcotest.test_case "kiss to kiss" `Quick test_kiss_to_kiss;
          Alcotest.test_case "benchmark minimization contracts" `Quick
            test_benchmark_minimization_contracts;
        ] );
    ]
