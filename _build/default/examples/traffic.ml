(* A safety-critical controller through the whole flow.

   The paper motivates self-testable controllers with safety-critical
   applications (avionics, medicine) that demand periodic maintenance
   self-tests.  This example walks the `bbara` benchmark - MCNC's highway /
   farm-road traffic-light controller interface (here: our deterministic
   stand-in with the same signature, see DESIGN.md section 5) - through the
   complete synthesis flow and compares the three self-testable structures.

   Run with: dune exec examples/traffic.exe *)

module Machine = Stc_fsm.Machine
module Suite = Stc_benchmarks.Suite
module Ostr = Stc_core.Ostr
module Realization = Stc_core.Realization
module Tables = Stc_encoding.Tables
module Minimize = Stc_logic.Minimize
module Cover = Stc_logic.Cover
module Arch = Stc_faultsim.Arch
module Session = Stc_faultsim.Session
module N = Stc_netlist.Netlist

let section title = Format.printf "@.== %s ==@.@." title

let () =
  let spec = match Suite.find "bbara" with Some s -> s | None -> assert false in
  let m = Suite.machine spec in
  section "The controller";
  Format.printf
    "%s: %d states, %d input symbols (4 sensor bits), %d output symbols.@."
    m.Machine.name m.Machine.num_states m.Machine.num_inputs m.Machine.num_outputs;

  section "Step 1: solve OSTR";
  let outcome = Ostr.run m in
  Format.printf "%a@.@." Ostr.pp_summary outcome;
  Format.printf
    "The machine factors into %d x %d classes: the pipeline needs %d\n\
     flip-flops where the conventional BIST structure needs %d.@."
    (Realization.num_s1 outcome.Ostr.realization)
    (Realization.num_s2 outcome.Ostr.realization)
    (Realization.flipflops outcome.Ostr.realization)
    (Machine.flipflops_conventional m);

  section "Step 2: encode and minimize the blocks";
  let p = Tables.pipeline outcome.Ostr.realization in
  let show label on dc =
    let cover, report = Minimize.minimize ~dc on in
    Format.printf "%-7s %3d cubes, %4d literals (raw table had %d cubes)@."
      label (fst (Cover.cost cover)) (snd (Cover.cost cover))
      report.Minimize.initial_cubes
  in
  let enc = Tables.encode m in
  let conv_on, conv_dc = Tables.conventional enc in
  show "C" conv_on conv_dc;
  show "C1" p.Tables.c1_on p.Tables.c1_dc;
  show "C2" p.Tables.c2_on p.Tables.c2_dc;
  show "Lambda" p.Tables.lambda_on p.Tables.lambda_dc;

  section "Step 3: build the three self-testable structures";
  let fig2 = Arch.conventional_bist m in
  let fig3 = Arch.doubled m in
  let fig4 = Arch.pipeline p in
  List.iter
    (fun (built : Arch.built) ->
      let stats = N.stats built.Arch.netlist in
      Format.printf "%-34s %2d FFs, %4d gates, depth %d@." built.Arch.label
        built.Arch.flipflops stats.N.gates stats.N.depth)
    [ fig2; fig3; fig4 ];

  section "Step 4: run the self-test sessions and grade stuck-at coverage";
  List.iter
    (fun built ->
      let report = Arch.grade built in
      Format.printf "%-34s coverage %5.1f%% (%d / %d faults)@."
        built.Arch.label
        (100.0 *. report.Session.coverage)
        report.Session.detected report.Session.total;
      List.iter
        (fun (tag, n) -> Format.printf "%36s undetected in %s: %d@." "" tag n)
        (Arch.undetected_by_tag built report))
    [ fig2; fig3; fig4 ];

  section "Conclusion";
  Format.printf
    "The fig. 4 pipeline achieves the highest coverage with the fewest\n\
     flip-flops; the conventional BIST leaves every fault on the R-to-C\n\
     feedback path untested (the paper's drawback 3), and doubling pays\n\
     twice the logic.@."
