(* The two-session self-test, narrated at the register level.

   The pipeline structure of fig. 4 is tested in two sessions without any
   extra test register: in session 1, R1 works as an LFSR (pattern
   generator) and R2 as a MISR (signature analyzer) compressing C1's
   responses; in session 2 the roles swap and C2 is tested.  This demo
   drives the synthesized `shiftreg` pipeline with BILBO-style registers,
   prints the signatures, then injects a stuck-at fault and shows the
   signature mismatch.

   Run with: dune exec examples/selftest_demo.exe *)

module Machine = Stc_fsm.Machine
module Zoo = Stc_fsm.Zoo
module Ostr = Stc_core.Ostr
module Tables = Stc_encoding.Tables
module Code = Stc_encoding.Code
module Minimize = Stc_logic.Minimize
module N = Stc_netlist.Netlist
module B = Stc_netlist.Netlist.Builder
module Bilbo = Stc_bist.Bilbo
module Lfsr = Stc_bist.Lfsr

let section title = Format.printf "@.== %s ==@.@." title

(* Build the two combinational blocks as netlists. *)
let build_blocks (p : Tables.pipeline) =
  let iw = p.Tables.enc.Tables.input_width in
  let w1 = p.Tables.code1.Code.width and w2 = p.Tables.code2.Code.width in
  let block label on dc in_width =
    let cover, _ = Minimize.minimize ~dc on in
    let b = B.create label in
    let inputs = Array.init in_width (fun k -> B.input b (Printf.sprintf "x%d" k)) in
    let outs = B.emit_cover b ~inputs cover in
    Array.iteri (fun k g -> B.output b (Printf.sprintf "y%d" k) g) outs;
    (B.finish b, outs)
  in
  ( block "C1" p.Tables.c1_on p.Tables.c1_dc (iw + w1),
    block "C2" p.Tables.c2_on p.Tables.c2_dc (iw + w2) )

let eval_block ?fault (net, outs) word ~in_width ~out_width =
  let inputs = Array.init in_width (fun k -> (word lsr (in_width - 1 - k)) land 1) in
  let values = N.eval ?fault net ~inputs in
  Array.fold_left (fun acc g -> (acc lsl 1) lor (values.(g) land 1)) 0
    (Array.sub outs 0 out_width)

let () =
  section "Synthesis";
  let m = Zoo.shift_register ~bits:4 in
  let outcome = Ostr.run m in
  Format.printf "%a@." Ostr.pp_summary outcome;
  let p = Tables.pipeline outcome.Ostr.realization in
  let iw = p.Tables.enc.Tables.input_width in
  let w1 = p.Tables.code1.Code.width and w2 = p.Tables.code2.Code.width in
  let c1_block, c2_block = build_blocks p in
  Format.printf "R1: %d flip-flop(s), R2: %d flip-flop(s); no test register.@." w1 w2;

  section "Session 1: R1 generates, R2 compresses C1";
  let r1 = Bilbo.create ~width:w1 () and r2 = Bilbo.create ~width:w2 () in
  Bilbo.load r1 1;
  Bilbo.set_mode r1 Bilbo.Pattern_gen;
  Bilbo.load r2 0;
  Bilbo.set_mode r2 Bilbo.Signature;
  let input_gen = Lfsr.create ~width:8 ~seed:0x2D () in
  let cycles = 64 in
  let run_session ?fault () =
    Bilbo.load r1 1;
    Bilbo.set_mode r1 Bilbo.Pattern_gen;
    Bilbo.load r2 0;
    Bilbo.set_mode r2 Bilbo.Signature;
    let gen = Lfsr.create ~width:8 ~seed:0x2D () in
    for _ = 1 to cycles do
      let i = Lfsr.state gen land ((1 lsl iw) - 1) in
      let pattern = Bilbo.state r1 in
      let response =
        eval_block ?fault c1_block ((i lsl w1) lor pattern) ~in_width:(iw + w1)
          ~out_width:w2
      in
      ignore (Bilbo.clock r1 ~parallel:0 ~serial:false);
      ignore (Bilbo.clock r2 ~parallel:response ~serial:false);
      ignore (Lfsr.step gen)
    done;
    Bilbo.state r2
  in
  ignore input_gen;
  let golden1 = run_session () in
  Format.printf "%d cycles applied; golden signature in R2: %d@." cycles golden1;

  section "Session 2: R2 generates, R1 compresses C2";
  let run_session2 ?fault () =
    Bilbo.load r2 1;
    Bilbo.set_mode r2 Bilbo.Pattern_gen;
    Bilbo.load r1 0;
    Bilbo.set_mode r1 Bilbo.Signature;
    let gen = Lfsr.create ~width:8 ~seed:0x53 () in
    for _ = 1 to cycles do
      let i = Lfsr.state gen land ((1 lsl iw) - 1) in
      let pattern = Bilbo.state r2 in
      let response =
        eval_block ?fault c2_block ((i lsl w2) lor pattern) ~in_width:(iw + w2)
          ~out_width:w1
      in
      ignore (Bilbo.clock r2 ~parallel:0 ~serial:false);
      ignore (Bilbo.clock r1 ~parallel:response ~serial:false);
      ignore (Lfsr.step gen)
    done;
    Bilbo.state r1
  in
  let golden2 = run_session2 () in
  Format.printf "%d cycles applied; golden signature in R1: %d@." cycles golden2;

  section "Fault injection";
  let net1, _ = c1_block in
  let candidates = N.fault_sites net1 in
  let detected = ref 0 in
  List.iter
    (fun fault ->
      if run_session ~fault () <> golden1 then incr detected)
    candidates;
  Format.printf
    "injecting every stuck-at fault of C1 one by one: %d / %d change the\n\
     session-1 signature.@."
    !detected (List.length candidates);
  Format.printf
    "(a plain LFSR never emits the all-zero pattern, so a few faults need\n\
     the zero-injection the production grader in Stc_faultsim models.)@.";
  (match candidates with
  | example :: _ ->
    let s = run_session ~fault:example () in
    Format.printf
      "example: gate %d stuck-at-%d gives signature %d (golden %d) -> %s@."
      example.N.gate
      (Bool.to_int example.N.stuck_at)
      s golden1
      (if s <> golden1 then "DETECTED" else "escaped")
  | [] -> ());
  Format.printf
    "@.During normal operation both registers simply run in system mode -\n\
     no transparency, no bypass, no extra delay (section 1).@."
