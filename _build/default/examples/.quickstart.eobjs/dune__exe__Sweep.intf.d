examples/sweep.mli:
