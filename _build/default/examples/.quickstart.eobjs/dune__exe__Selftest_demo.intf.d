examples/selftest_demo.mli:
