examples/traffic.ml: Format List Stc_benchmarks Stc_core Stc_encoding Stc_faultsim Stc_fsm Stc_logic Stc_netlist
