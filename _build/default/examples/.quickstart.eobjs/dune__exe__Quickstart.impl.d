examples/quickstart.ml: Format List Stc_core Stc_encoding Stc_fsm Stc_logic Stc_partition String
