examples/quickstart.mli:
