examples/traffic.mli:
