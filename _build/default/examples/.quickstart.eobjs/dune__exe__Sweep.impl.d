examples/sweep.ml: Format List Printf Stc_core Stc_fsm Stc_report Stc_util
