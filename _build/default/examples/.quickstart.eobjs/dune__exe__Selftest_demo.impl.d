examples/selftest_demo.ml: Array Bool Format List Printf Stc_bist Stc_core Stc_encoding Stc_fsm Stc_logic Stc_netlist
