(* Quickstart: the paper's running example, end to end.

   Reproduces figures 5-8 of Hellebrand & Wunderlich, "Synthesis of
   Self-Testable Controllers" (ED&TC 1994):
   fig. 5 - a 4-state machine specification,
   fig. 6 - its symmetric partition pair,
   fig. 7 - the factor tables delta1 and delta2,
   fig. 8 - the resulting 2-flip-flop pipeline structure.

   Run with: dune exec examples/quickstart.exe *)

module Machine = Stc_fsm.Machine
module Zoo = Stc_fsm.Zoo
module Partition = Stc_partition.Partition
module Pair = Stc_partition.Pair
module Ostr = Stc_core.Ostr
module Solver = Stc_core.Solver
module Realization = Stc_core.Realization
module Tables = Stc_encoding.Tables
module Code = Stc_encoding.Code
module Minimize = Stc_logic.Minimize
module Pla = Stc_logic.Pla

let section title = Format.printf "@.== %s ==@.@." title

let () =
  section "Figure 5: the specification";
  let m = Zoo.paper_fig5 () in
  Format.printf "%a@." Machine.pp m;

  section "Figure 6: a symmetric partition pair";
  let pi = Partition.of_blocks ~n:4 [ [ 0; 1 ]; [ 2; 3 ] ] in
  let rho = Partition.of_blocks ~n:4 [ [ 0; 3 ]; [ 1; 2 ] ] in
  Format.printf "S/pi  = %s   (classes {s1,s2} and {s3,s4})@."
    (Partition.to_string pi);
  Format.printf "S/rho = %s   (classes {s1,s4} and {s2,s3})@."
    (Partition.to_string rho);
  Format.printf "(pi, rho) is a partition pair:  %b@."
    (Pair.is_pair ~next:m.Machine.next pi rho);
  Format.printf "(rho, pi) is a partition pair:  %b   (=> symmetric)@."
    (Pair.is_pair ~next:m.Machine.next rho pi);
  Format.printf "pi /\\ rho = %s  (identity, as Theorem 1 requires)@."
    (Partition.to_string (Partition.meet pi rho));

  section "The OSTR search finds exactly this pair";
  let outcome = Ostr.run m in
  Format.printf "%a@." Ostr.pp_summary outcome;

  section "Figure 7: the factor tables";
  Format.printf "%a@." Realization.pp_factors outcome.Ostr.realization;

  section "Figure 8: the pipeline structure";
  let p = Tables.pipeline outcome.Ostr.realization in
  Format.printf
    "R1 holds [S1] in %d flip-flop(s), R2 holds [S2] in %d flip-flop(s).@."
    p.Tables.code1.Code.width p.Tables.code2.Code.width;
  Format.printf
    "With [s1]pi = [1]rho = 1 and [s3]pi = [2]rho = 0 (the paper's coding),@.";
  Format.printf "block C1 (inputs: i, R1; output: next R2) minimizes to:@.";
  let c1, _ = Minimize.minimize ~dc:p.Tables.c1_dc p.Tables.c1_on in
  print_string (Pla.print ~name:"C1" c1);
  Format.printf "and block C2 (inputs: i, R2; output: next R1) to:@.";
  let c2, _ = Minimize.minimize ~dc:p.Tables.c2_dc p.Tables.c2_on in
  print_string (Pla.print ~name:"C2" c2);

  section "The realization really is the machine";
  let product = outcome.Ostr.realization.Realization.product in
  Format.printf "structural check (Definition 3): %b@."
    (Realization.realizes outcome.Ostr.realization);
  Format.printf "bisimulation check:              %b@."
    (Machine.equal_behaviour m product);
  let word = [ 1; 1; 0; 1; 0; 0; 1 ] in
  let out_spec, _ = Machine.simulate m word in
  let out_pipe, _ = Machine.simulate product word in
  Format.printf "outputs on %s: spec %s, pipeline %s@."
    (String.concat "" (List.map string_of_int word))
    (String.concat "" (List.map string_of_int out_spec))
    (String.concat "" (List.map string_of_int out_pipe))
