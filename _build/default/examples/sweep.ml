(* Workload sweep: how common are nontrivial self-testable realizations?

   The paper finds nontrivial OSTR solutions for 8 of 13 benchmark
   machines.  This sweep quantifies the phenomenon on synthetic workloads:
   for purely random machines a nontrivial symmetric partition pair is
   rare, while machines built from interacting submachines (the block
   product of DESIGN.md) always factor - and the search statistics show how
   Lemma 1 keeps the tree small either way.

   Run with: dune exec examples/sweep.exe *)

module Machine = Stc_fsm.Machine
module Generate = Stc_fsm.Generate
module Solver = Stc_core.Solver
module Rng = Stc_util.Rng
module Table = Stc_report.Table

let solve_stats machines =
  let nontrivial = ref 0 and investigated = ref 0 and bits_saved = ref 0 in
  List.iter
    (fun (m : Machine.t) ->
      let r = Solver.solve ~timeout:10.0 m in
      if not (Solver.is_trivial m r.Solver.best) then incr nontrivial;
      investigated := !investigated + r.Solver.stats.Solver.investigated;
      bits_saved :=
        !bits_saved
        + (2 * Machine.bits_for m.Machine.num_states)
        - r.Solver.best.Solver.cost.Solver.bits)
    machines;
  let n = List.length machines in
  ( !nontrivial,
    float_of_int !investigated /. float_of_int n,
    float_of_int !bits_saved /. float_of_int n )

let () =
  let trials = 20 in
  let rng = Rng.create 2024 in
  Format.printf "Random reduced machines (%d trials per row):@.@." trials;
  let rows =
    List.map
      (fun n ->
        let machines =
          List.init trials (fun _ ->
              Generate.random ~rng ~name:"rnd" ~num_states:n ~num_inputs:4
                ~num_outputs:4 ())
        in
        let nontrivial, avg_nodes, avg_saved = solve_stats machines in
        [
          string_of_int n;
          Printf.sprintf "%d/%d" nontrivial trials;
          Printf.sprintf "%.1f" avg_nodes;
          Printf.sprintf "%.2f" avg_saved;
        ])
      [ 4; 6; 8; 10; 12 ]
  in
  print_string
    (Table.render
       ~header:[ "|S|"; "nontrivial"; "avg nodes"; "avg FFs saved vs conv. BIST" ]
       rows);

  Format.printf "@.Product-structured machines (factors planted, %d trials per row):@.@."
    trials;
  let rows =
    List.map
      (fun (blocks, label) ->
        let machines =
          List.init trials (fun _ ->
              (Generate.block_product ~rng ~name:"bp" ~blocks ~num_inputs:4
                 ~num_outputs:4 ())
                .Generate.machine)
        in
        let nontrivial, avg_nodes, avg_saved = solve_stats machines in
        [
          label;
          Printf.sprintf "%d/%d" nontrivial trials;
          Printf.sprintf "%.1f" avg_nodes;
          Printf.sprintf "%.2f" avg_saved;
        ])
      [
        ([ (2, 2) ], "4 = 2x2");
        ([ (2, 2); (1, 1) ], "5 = 2x2 + 1");
        ([ (2, 2); (2, 2) ], "8 = 2(2x2)");
        ([ (2, 2); (2, 1); (1, 2) ], "8 mixed");
        ([ (2, 2); (2, 2); (2, 2) ], "12 = 3(2x2)");
      ]
  in
  print_string
    (Table.render
       ~header:[ "structure"; "nontrivial"; "avg nodes"; "avg FFs saved vs conv. BIST" ]
       rows);
  Format.printf
    "@.Random control logic almost never factors; controllers composed of\n\
     interacting units factor by construction, and the OSTR search finds\n\
     the decomposition in a handful of nodes (Lemma-1 pruning).@."
