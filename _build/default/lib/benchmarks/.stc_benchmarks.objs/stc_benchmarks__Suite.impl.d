lib/benchmarks/suite.ml: List Stc_fsm Stc_util
