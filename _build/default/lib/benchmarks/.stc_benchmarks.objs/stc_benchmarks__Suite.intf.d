lib/benchmarks/suite.mli: Stc_fsm
