(** Monotonic wall clock for search budgets and benchmarks.

    [Sys.time] is CPU time: under [d] running domains it advances up to
    [d]x faster than the wall, so a CPU-time budget of [t] seconds would
    cut a parallel search off after roughly [t/d] wall seconds.  All
    timeouts in this repository are therefore wall-clock, measured with
    the OS monotonic clock (immune to NTP steps, unlike
    [Unix.gettimeofday]). *)

(** [now_ns ()] is the monotonic clock in nanoseconds (arbitrary
    origin). *)
val now_ns : unit -> int64

(** [now ()] is the monotonic clock in seconds (arbitrary origin);
    only differences are meaningful. *)
val now : unit -> float

(** [elapsed ~since] is [now () -. since]. *)
val elapsed : since:float -> float
