(* Monotonic wall clock.

   [Sys.time] measures CPU time, which overshoots wall-clock budgets as
   soon as more than one domain is running (each domain's CPU seconds
   accumulate), and [Unix.gettimeofday] can jump under NTP adjustment.
   Bechamel's CLOCK_MONOTONIC stub gives a steady nanosecond counter. *)

let now_ns () = Monotonic_clock.now ()

let now () = Int64.to_float (Monotonic_clock.now ()) *. 1e-9

let elapsed ~since = now () -. since
