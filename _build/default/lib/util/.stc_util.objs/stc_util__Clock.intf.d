lib/util/clock.mli:
