lib/util/clock.ml: Int64 Monotonic_clock
