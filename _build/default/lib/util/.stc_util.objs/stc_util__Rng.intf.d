lib/util/rng.mli:
