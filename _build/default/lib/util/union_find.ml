type t = {
  parent : int array;
  rank : int array;
  mutable sets : int;
}

let create n =
  { parent = Array.init n (fun i -> i); rank = Array.make n 0; sets = n }

let size t = Array.length t.parent

let rec find t x =
  let p = t.parent.(x) in
  if p = x then x
  else begin
    let root = find t p in
    t.parent.(x) <- root;
    root
  end

let union t x y =
  let rx = find t x and ry = find t y in
  if rx = ry then false
  else begin
    t.sets <- t.sets - 1;
    if t.rank.(rx) < t.rank.(ry) then t.parent.(rx) <- ry
    else if t.rank.(rx) > t.rank.(ry) then t.parent.(ry) <- rx
    else begin
      t.parent.(ry) <- rx;
      t.rank.(rx) <- t.rank.(rx) + 1
    end;
    true
  end

let same t x y = find t x = find t y

let count t = t.sets

let class_map t =
  let n = size t in
  let ids = Array.make n (-1) in
  let next = ref 0 in
  let out = Array.make n (-1) in
  for x = 0 to n - 1 do
    let r = find t x in
    if ids.(r) < 0 then begin
      ids.(r) <- !next;
      incr next
    end;
    out.(x) <- ids.(r)
  done;
  out
