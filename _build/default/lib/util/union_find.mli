(** Imperative union-find (disjoint sets) over the integers [0..n-1], with
    path compression and union by rank.  This is the workhorse behind
    partition joins and the [m] operator of partition-pair algebra. *)

type t

(** [create n] returns [n] singleton sets. *)
val create : int -> t

(** [size t] is the number of elements (not sets). *)
val size : t -> int

(** [find t x] returns the canonical representative of [x]'s set. *)
val find : t -> int -> int

(** [union t x y] merges the sets of [x] and [y]; returns [true] when the
    two were previously distinct. *)
val union : t -> int -> int -> bool

(** [same t x y] tests whether [x] and [y] are in the same set. *)
val same : t -> int -> int -> bool

(** [count t] is the current number of disjoint sets. *)
val count : t -> int

(** [class_map t] returns an array mapping each element to a dense class
    index in [0..count-1], numbered by first occurrence. *)
val class_map : t -> int array
