(** State equivalence [(~=)] of Mealy machines and state minimization.

    Two states are equivalent when they produce the same output word for
    every input word.  The equivalence partition is the [e] relation of the
    paper's Theorem 1: a symmetric partition pair [(pi, rho)] supports a
    self-testable realization exactly when [pi /\ rho] refines [e]. *)

(** [classes m] maps each state to a dense equivalence-class index
    (numbered by first occurrence).  Computed by Moore-style partition
    refinement: the initial partition groups states with identical output
    rows, then blocks are split by successor classes until stable. *)
val classes : Machine.t -> int array

(** [num_classes m] is the number of equivalence classes. *)
val num_classes : Machine.t -> int

(** [is_reduced m] holds when no two distinct states are equivalent. *)
val is_reduced : Machine.t -> bool

(** [equivalent m s t] tests equivalence of two states of the same
    machine. *)
val equivalent : Machine.t -> int -> int -> bool

(** [minimize m] returns the quotient machine with one state per
    equivalence class (class of the reset state becomes the new reset;
    state names are taken from the first member of each class).  The
    result is behaviourally equivalent to [m] and reduced. *)
val minimize : Machine.t -> Machine.t
