(** Fully specified Mealy-type finite state machines (Definition 1 of the
    paper): [M = (S, I, O, delta, lambda)] with finite non-empty state,
    input and output sets, a total transition function [delta : S x I -> S]
    and a total output function [lambda : S x I -> O].

    States, inputs and outputs are represented by dense integer indices;
    human-readable names are kept alongside for KISS2 round-tripping and
    reports.  All machines in this library are complete (every
    (state, input) pair has exactly one transition); completion of partial
    KISS2 specifications happens at parse time in {!Kiss}. *)

type t = private {
  name : string;  (** identifier used in reports and file names *)
  num_states : int;
  num_inputs : int;  (** size of the input alphabet (e.g. [2^bits] for KISS2) *)
  num_outputs : int;  (** size of the output alphabet *)
  next : int array array;  (** [next.(s).(i)] = delta(s, i) *)
  output : int array array;  (** [output.(s).(i)] = lambda(s, i) *)
  reset : int;  (** initial state *)
  state_names : string array;
  input_names : string array;  (** binary strings for KISS2-derived machines *)
  output_names : string array;
}

(** [make ~name ~num_states ~num_inputs ~num_outputs ~next ~output ()]
    validates dimensions and index ranges and builds a machine.  Optional
    [reset] defaults to state 0; optional name arrays default to
    ["s0".."sN"], binary input strings when [num_inputs] is a power of two
    (["i0"..] otherwise) and ["o0".."oN"].

    @raise Invalid_argument on dimension or range errors. *)
val make :
  name:string ->
  num_states:int ->
  num_inputs:int ->
  num_outputs:int ->
  next:int array array ->
  output:int array array ->
  ?reset:int ->
  ?state_names:string array ->
  ?input_names:string array ->
  ?output_names:string array ->
  unit ->
  t

(** [delta m s i] is the next state from [s] under input [i]. *)
val delta : t -> int -> int -> int

(** [lambda m s i] is the output emitted from [s] under input [i]. *)
val lambda : t -> int -> int -> int

(** [with_name m name] renames the machine. *)
val with_name : t -> string -> t

(** [step m s i] is [(delta m s i, lambda m s i)]. *)
val step : t -> int -> int -> int * int

(** [run m ~start word] feeds the input [word] from state [start] and
    returns the emitted output word together with the final state. *)
val run : t -> start:int -> int list -> int list * int

(** [simulate m word] is [run m ~start:m.reset word]. *)
val simulate : t -> int list -> int list * int

(** [iter_transitions m f] calls [f s i s' o] for every transition. *)
val iter_transitions : t -> (int -> int -> int -> int -> unit) -> unit

(** [relabel_states m perm] renames state [s] to [perm.(s)]; [perm] must be
    a permutation of [0..num_states-1].  The reset state and all names
    follow their states. *)
val relabel_states : t -> int array -> t

(** [equal_behaviour m1 m2] tests bisimilarity from the reset states: same
    input alphabet and outputs for every input word.  Output alphabets are
    compared through their names.  Used as a test oracle. *)
val equal_behaviour : t -> t -> bool

(** [flipflops_conventional m] is the flip-flop count of the conventional
    BIST structure of fig. 2: [2 * ceil(log2 num_states)] (system register
    plus equally wide test register).  Column 5 of Table 1. *)
val flipflops_conventional : t -> int

(** [bits_for n] is [ceil(log2 n)], with [bits_for 1 = 0]. *)
val bits_for : int -> int

(** [pp] prints the state transition table in the style of fig. 5 (rows =
    states, columns = inputs, entries [next/output]). *)
val pp : Format.formatter -> t -> unit

val to_string : t -> string
