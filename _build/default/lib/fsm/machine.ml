type t = {
  name : string;
  num_states : int;
  num_inputs : int;
  num_outputs : int;
  next : int array array;
  output : int array array;
  reset : int;
  state_names : string array;
  input_names : string array;
  output_names : string array;
}

let bits_for n =
  if n <= 0 then invalid_arg "Machine.bits_for: non-positive";
  let rec go bits capacity =
    if capacity >= n then bits else go (bits + 1) (capacity * 2)
  in
  go 0 1

let is_power_of_two n = n > 0 && n land (n - 1) = 0

let binary_string ~width v =
  String.init width (fun k ->
      if v land (1 lsl (width - 1 - k)) <> 0 then '1' else '0')

let default_state_names n = Array.init n (fun s -> Printf.sprintf "s%d" s)

let default_input_names n =
  if is_power_of_two n && n > 1 then
    let width = bits_for n in
    Array.init n (fun i -> binary_string ~width i)
  else Array.init n (fun i -> Printf.sprintf "i%d" i)

let default_output_names n = Array.init n (fun o -> Printf.sprintf "o%d" o)

let check_table ~what ~rows ~cols ~bound table =
  if Array.length table <> rows then
    invalid_arg (Printf.sprintf "Machine.make: %s has %d rows, expected %d" what
                   (Array.length table) rows);
  Array.iteri
    (fun s row ->
      if Array.length row <> cols then
        invalid_arg
          (Printf.sprintf "Machine.make: %s row %d has %d columns, expected %d"
             what s (Array.length row) cols);
      Array.iter
        (fun v ->
          if v < 0 || v >= bound then
            invalid_arg
              (Printf.sprintf "Machine.make: %s row %d contains %d, out of range [0,%d)"
                 what s v bound))
        row)
    table

let check_names ~what ~expected names =
  if Array.length names <> expected then
    invalid_arg
      (Printf.sprintf "Machine.make: %d %s names for %d entries"
         (Array.length names) what expected)

let make ~name ~num_states ~num_inputs ~num_outputs ~next ~output ?(reset = 0)
    ?state_names ?input_names ?output_names () =
  if num_states <= 0 then invalid_arg "Machine.make: num_states must be positive";
  if num_inputs <= 0 then invalid_arg "Machine.make: num_inputs must be positive";
  if num_outputs <= 0 then invalid_arg "Machine.make: num_outputs must be positive";
  if reset < 0 || reset >= num_states then invalid_arg "Machine.make: reset out of range";
  check_table ~what:"next" ~rows:num_states ~cols:num_inputs ~bound:num_states next;
  check_table ~what:"output" ~rows:num_states ~cols:num_inputs ~bound:num_outputs output;
  let state_names =
    match state_names with
    | None -> default_state_names num_states
    | Some names -> check_names ~what:"state" ~expected:num_states names; names
  in
  let input_names =
    match input_names with
    | None -> default_input_names num_inputs
    | Some names -> check_names ~what:"input" ~expected:num_inputs names; names
  in
  let output_names =
    match output_names with
    | None -> default_output_names num_outputs
    | Some names -> check_names ~what:"output" ~expected:num_outputs names; names
  in
  let copy_table table = Array.map Array.copy table in
  { name; num_states; num_inputs; num_outputs;
    next = copy_table next; output = copy_table output; reset;
    state_names = Array.copy state_names;
    input_names = Array.copy input_names;
    output_names = Array.copy output_names }

let delta m s i = m.next.(s).(i)

let lambda m s i = m.output.(s).(i)

let with_name m name = { m with name }

let step m s i = (m.next.(s).(i), m.output.(s).(i))

let run m ~start word =
  let rec go s acc = function
    | [] -> (List.rev acc, s)
    | i :: rest ->
      let s', o = step m s i in
      go s' (o :: acc) rest
  in
  go start [] word

let simulate m word = run m ~start:m.reset word

let iter_transitions m f =
  for s = 0 to m.num_states - 1 do
    for i = 0 to m.num_inputs - 1 do
      f s i m.next.(s).(i) m.output.(s).(i)
    done
  done

let relabel_states m perm =
  if Array.length perm <> m.num_states then
    invalid_arg "Machine.relabel_states: permutation size mismatch";
  let seen = Array.make m.num_states false in
  Array.iter
    (fun v ->
      if v < 0 || v >= m.num_states || seen.(v) then
        invalid_arg "Machine.relabel_states: not a permutation";
      seen.(v) <- true)
    perm;
  let next = Array.make_matrix m.num_states m.num_inputs 0 in
  let output = Array.make_matrix m.num_states m.num_inputs 0 in
  let state_names = Array.make m.num_states "" in
  for s = 0 to m.num_states - 1 do
    state_names.(perm.(s)) <- m.state_names.(s);
    for i = 0 to m.num_inputs - 1 do
      next.(perm.(s)).(i) <- perm.(m.next.(s).(i));
      output.(perm.(s)).(i) <- m.output.(s).(i)
    done
  done;
  { m with next; output; reset = perm.(m.reset); state_names }

(* Bisimulation from the reset states: breadth-first over reachable state
   pairs, comparing outputs through their printable names so that machines
   with differently numbered output alphabets can still be equivalent. *)
let equal_behaviour m1 m2 =
  m1.num_inputs = m2.num_inputs
  && begin
    let visited = Hashtbl.create 64 in
    let queue = Queue.create () in
    Queue.add (m1.reset, m2.reset) queue;
    Hashtbl.replace visited (m1.reset, m2.reset) ();
    let ok = ref true in
    while !ok && not (Queue.is_empty queue) do
      let s1, s2 = Queue.take queue in
      for i = 0 to m1.num_inputs - 1 do
        if m1.output_names.(m1.output.(s1).(i)) <> m2.output_names.(m2.output.(s2).(i))
        then ok := false
        else begin
          let pair = (m1.next.(s1).(i), m2.next.(s2).(i)) in
          if not (Hashtbl.mem visited pair) then begin
            Hashtbl.replace visited pair ();
            Queue.add pair queue
          end
        end
      done
    done;
    !ok
  end

let flipflops_conventional m = 2 * bits_for m.num_states

let pp ppf m =
  let open Format in
  let width = ref (String.length "state") in
  Array.iter (fun n -> width := max !width (String.length n)) m.state_names;
  let cell s i =
    Printf.sprintf "%s/%s" m.state_names.(m.next.(s).(i))
      m.output_names.(m.output.(s).(i))
  in
  let col_width = Array.make m.num_inputs 0 in
  for i = 0 to m.num_inputs - 1 do
    col_width.(i) <- String.length m.input_names.(i);
    for s = 0 to m.num_states - 1 do
      col_width.(i) <- max col_width.(i) (String.length (cell s i))
    done
  done;
  fprintf ppf "@[<v>%s (reset %s)@," m.name m.state_names.(m.reset);
  fprintf ppf "%-*s" !width "state";
  for i = 0 to m.num_inputs - 1 do
    fprintf ppf "  %-*s" col_width.(i) m.input_names.(i)
  done;
  fprintf ppf "@,";
  for s = 0 to m.num_states - 1 do
    fprintf ppf "%-*s" !width m.state_names.(s);
    for i = 0 to m.num_inputs - 1 do
      fprintf ppf "  %-*s" col_width.(i) (cell s i)
    done;
    fprintf ppf "@,"
  done;
  fprintf ppf "@]"

let to_string m = Format.asprintf "%a" pp m
