(** Hand-written machines with known structure, used by examples, tests and
    documentation. *)

(** The running example of the paper (fig. 5): 4 states, 1 input bit,
    1 output bit.  Its unique optimal symmetric partition pair is
    [S/pi = {{s1,s2},{s3,s4}}], [S/rho = {{s1,s4},{s2,s3}}] (fig. 6), giving
    a 2 x 2 realization (figs. 7-8).  State [s1] is index 0, ..., [s4] is
    index 3; input symbol 0 is ["0"], 1 is ["1"]. *)
val paper_fig5 : unit -> Machine.t

(** [shift_register ~bits] is the serial shift register over [bits]
    flip-flops: state = register contents, the input bit is shifted in at
    the low end, the bit falling out at the high end is the output.  This
    is the exact semantics of the IWLS'93 [shiftreg] benchmark for
    [bits = 3] (8 states); its OSTR optimum is [(4, 2)] as in Table 1. *)
val shift_register : bits:int -> Machine.t

(** [counter ~modulus] is an enabled counter: input 1 increments modulo
    [modulus], input 0 holds; the output is 1 exactly on the wrapping
    increment.  Counters have a ripple-carry feedback dependency chain, so
    they admit only the trivial OSTR solution - a useful negative
    example. *)
val counter : modulus:int -> Machine.t

(** [toggle ()] is the 2-state toggle flip-flop (T-FF) as a Mealy machine:
    input 1 flips the state, the output reports the old state. *)
val toggle : unit -> Machine.t

(** [serial_adder ()] is the 2-state serial full adder: 2 input bits per
    cycle (4 input symbols), state = carry, output = sum bit. *)
val serial_adder : unit -> Machine.t

(** [parity ()] is the 2-state serial parity checker. *)
val parity : unit -> Machine.t
