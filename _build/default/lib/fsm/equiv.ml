(* Moore-style partition refinement.  Complexity O(n^2 * inputs) worst case,
   ample for benchmark-sized controllers (<= a few hundred states). *)

let group_by_signature num_states signature =
  let table = Hashtbl.create num_states in
  let cls = Array.make num_states (-1) in
  for s = 0 to num_states - 1 do
    let key = signature s in
    match Hashtbl.find_opt table key with
    | Some id -> cls.(s) <- id
    | None ->
      let id = Hashtbl.length table in
      Hashtbl.replace table key id;
      cls.(s) <- id
  done;
  (cls, Hashtbl.length table)

let classes (m : Machine.t) =
  let cls, count = group_by_signature m.num_states (fun s -> m.output.(s)) in
  let cls = ref cls and count = ref count in
  let stable = ref false in
  while not !stable do
    let prev = !cls in
    let signature s =
      (prev.(s), Array.map (fun s' -> prev.(s')) m.next.(s))
    in
    let cls', count' = group_by_signature m.num_states signature in
    if count' = !count then stable := true;
    cls := cls';
    count := count'
  done;
  (* Renumber by first occurrence for a canonical result. *)
  let remap = Hashtbl.create !count in
  Array.map
    (fun c ->
      match Hashtbl.find_opt remap c with
      | Some id -> id
      | None ->
        let id = Hashtbl.length remap in
        Hashtbl.replace remap c id;
        id)
    !cls

let num_classes m =
  let cls = classes m in
  1 + Array.fold_left max 0 cls

let is_reduced (m : Machine.t) = num_classes m = m.num_states

let equivalent m s t =
  let cls = classes m in
  cls.(s) = cls.(t)

let minimize (m : Machine.t) =
  let cls = classes m in
  let count = 1 + Array.fold_left max 0 cls in
  if count = m.num_states then m
  else begin
    let representative = Array.make count (-1) in
    for s = m.num_states - 1 downto 0 do
      representative.(cls.(s)) <- s
    done;
    let next = Array.make_matrix count m.num_inputs 0 in
    let output = Array.make_matrix count m.num_inputs 0 in
    let state_names = Array.make count "" in
    for c = 0 to count - 1 do
      let s = representative.(c) in
      state_names.(c) <- m.state_names.(s);
      for i = 0 to m.num_inputs - 1 do
        next.(c).(i) <- cls.(m.next.(s).(i));
        output.(c).(i) <- m.output.(s).(i)
      done
    done;
    Machine.make ~name:m.name ~num_states:count ~num_inputs:m.num_inputs
      ~num_outputs:m.num_outputs ~next ~output ~reset:cls.(m.reset)
      ~state_names ~input_names:m.input_names ~output_names:m.output_names ()
  end
