let bfs_order (m : Machine.t) start =
  let order = Array.make m.num_states (-1) in
  let queue = Queue.create () in
  Queue.add start queue;
  order.(start) <- 0;
  let seen = ref 1 in
  while not (Queue.is_empty queue) do
    let s = Queue.take queue in
    for i = 0 to m.num_inputs - 1 do
      let s' = m.next.(s).(i) in
      if order.(s') < 0 then begin
        order.(s') <- !seen;
        incr seen;
        Queue.add s' queue
      end
    done
  done;
  (order, !seen)

let reachable m =
  let order, _ = bfs_order m m.reset in
  Array.map (fun k -> k >= 0) order

let reachable_count m =
  let _, count = bfs_order m m.reset in
  count

let is_connected (m : Machine.t) = reachable_count m = m.num_states

let trim (m : Machine.t) =
  let order, count = bfs_order m m.reset in
  if count = m.num_states then m
  else begin
    let next = Array.make_matrix count m.num_inputs 0 in
    let output = Array.make_matrix count m.num_inputs 0 in
    let state_names = Array.make count "" in
    for s = 0 to m.num_states - 1 do
      let k = order.(s) in
      if k >= 0 then begin
        state_names.(k) <- m.state_names.(s);
        for i = 0 to m.num_inputs - 1 do
          next.(k).(i) <- order.(m.next.(s).(i));
          output.(k).(i) <- m.output.(s).(i)
        done
      end
    done;
    Machine.make ~name:m.name ~num_states:count ~num_inputs:m.num_inputs
      ~num_outputs:m.num_outputs ~next ~output ~reset:order.(m.reset)
      ~state_names ~input_names:m.input_names ~output_names:m.output_names ()
  end

let is_strongly_connected (m : Machine.t) =
  (* Small machines: reachability from every state suffices. *)
  let ok = ref true in
  let s = ref 0 in
  while !ok && !s < m.num_states do
    let _, count = bfs_order m !s in
    if count <> m.num_states then ok := false;
    incr s
  done;
  !ok
