type error = { line : int; message : string }

exception Parse_error of error

let fail line fmt =
  Printf.ksprintf (fun message -> raise (Parse_error { line; message })) fmt

let is_binary_string s =
  s <> "" && String.for_all (fun c -> c = '0' || c = '1') s

let int_of_binary s =
  String.fold_left (fun acc c -> (acc * 2) + if c = '1' then 1 else 0) 0 s

(* Expand an input cube such as "1-0" into the integer minterms it covers. *)
let expand_cube ~line cube =
  let width = String.length cube in
  let rec go k acc =
    if k = width then acc
    else
      let extend bit = List.map (fun v -> (v * 2) + bit) acc in
      match cube.[k] with
      | '0' -> go (k + 1) (extend 0)
      | '1' -> go (k + 1) (extend 1)
      | '-' -> go (k + 1) (extend 0 @ extend 1)
      | c -> fail line "invalid character %C in input cube %S" c cube
  in
  go 0 [ 0 ]

type row = { line : int; cube : string; current : string; next : string; out : string }

let tokenize text =
  let lines = String.split_on_char '\n' text in
  List.mapi
    (fun idx line ->
      let line =
        match String.index_opt line '#' with
        | None -> line
        | Some k -> String.sub line 0 k
      in
      (idx + 1, String.split_on_char ' ' (String.map (function '\t' | '\r' -> ' ' | c -> c) line)
                |> List.filter (fun tok -> tok <> "")))
    lines
  |> List.filter (fun (_, toks) -> toks <> [])

let parse ?(name = "kiss") ?(on_missing = `Error) text =
  let in_bits = ref (-1)
  and out_bits = ref (-1)
  and declared_states = ref (-1)
  and declared_products = ref (-1)
  and reset_name = ref None
  and rows = ref [] in
  let header line key value =
    match key with
    | ".i" -> in_bits := value
    | ".o" -> out_bits := value
    | ".s" -> declared_states := value
    | ".p" -> declared_products := value
    | _ -> fail line "unknown numeric header %s" key
  in
  List.iter
    (fun (line, toks) ->
      match toks with
      | [ ".e" ] | [ ".end" ] -> ()
      | [ ".r"; s ] -> reset_name := Some s
      | [ key; v ] when String.length key > 1 && key.[0] = '.' -> begin
          match int_of_string_opt v with
          | Some value -> header line key value
          | None -> fail line "header %s expects an integer, got %S" key v
        end
      | [ cube; current; next; out ] ->
        rows := { line; cube; current; next; out } :: !rows
      | _ -> fail line "expected header or 4-column transition row")
    (tokenize text);
  let rows = List.rev !rows in
  if rows = [] then fail 0 "no transition rows";
  if !in_bits < 0 then fail 0 "missing .i header";
  if !out_bits <= 0 then fail 0 "missing or zero .o header";
  if !in_bits = 0 then fail 0 ".i 0 (autonomous machines) not supported";
  if !in_bits > 16 then fail 0 ".i %d too wide to expand" !in_bits;
  if !declared_products >= 0 && List.length rows <> !declared_products then
    fail 0 ".p declares %d products but %d rows given" !declared_products
      (List.length rows);
  (* Collect state names in order of first appearance. *)
  let state_ids = Hashtbl.create 16 in
  let state_names = ref [] in
  let state_id name =
    match Hashtbl.find_opt state_ids name with
    | Some id -> id
    | None ->
      let id = Hashtbl.length state_ids in
      Hashtbl.replace state_ids name id;
      state_names := name :: !state_names;
      id
  in
  List.iter
    (fun r ->
      ignore (state_id r.current);
      ignore (state_id r.next))
    rows;
  let num_states = Hashtbl.length state_ids in
  if !declared_states >= 0 && num_states <> !declared_states then
    fail 0 ".s declares %d states but %d distinct names used" !declared_states num_states;
  let num_inputs = 1 lsl !in_bits in
  (* Output alphabet: distinct fully specified bit vectors. *)
  let out_ids = Hashtbl.create 16 in
  let out_names = ref [] in
  let out_id ~line vec =
    if String.length vec <> !out_bits then
      fail line "output %S has %d columns, .o says %d" vec (String.length vec) !out_bits;
    if not (is_binary_string vec) then
      fail line "output %S must be fully specified (0/1 only)" vec;
    match Hashtbl.find_opt out_ids vec with
    | Some id -> id
    | None ->
      let id = Hashtbl.length out_ids in
      Hashtbl.replace out_ids vec id;
      out_names := vec :: !out_names;
      id
  in
  let next = Array.make_matrix num_states num_inputs (-1) in
  let output = Array.make_matrix num_states num_inputs (-1) in
  List.iter
    (fun r ->
      if String.length r.cube <> !in_bits then
        fail r.line "input cube %S has %d columns, .i says %d" r.cube
          (String.length r.cube) !in_bits;
      let s = state_id r.current
      and s' = state_id r.next
      and o = out_id ~line:r.line r.out in
      List.iter
        (fun i ->
          if next.(s).(i) >= 0 && (next.(s).(i) <> s' || output.(s).(i) <> o) then
            fail r.line "conflicting specification for state %s, input %d" r.current i;
          next.(s).(i) <- s';
          output.(s).(i) <- o)
        (expand_cube ~line:r.line r.cube))
    rows;
  let reset =
    match !reset_name with
    | None -> 0
    | Some n -> (
        match Hashtbl.find_opt state_ids n with
        | Some id -> id
        | None -> fail 0 ".r names unknown state %S" n)
  in
  (* Completion of unspecified entries. *)
  let zero_output = lazy (out_id ~line:0 (String.make !out_bits '0')) in
  for s = 0 to num_states - 1 do
    for i = 0 to num_inputs - 1 do
      if next.(s).(i) < 0 then begin
        match on_missing with
        | `Error ->
          fail 0 "state %s has no transition for input minterm %d (machine not fully specified)"
            (List.nth (List.rev !state_names) s) i
        | `Self_loop ->
          next.(s).(i) <- s;
          output.(s).(i) <- Lazy.force zero_output
        | `Reset ->
          next.(s).(i) <- reset;
          output.(s).(i) <- Lazy.force zero_output
      end
    done
  done;
  let input_names =
    Array.init num_inputs (fun i ->
        String.init !in_bits (fun k ->
            if i land (1 lsl (!in_bits - 1 - k)) <> 0 then '1' else '0'))
  in
  Machine.make ~name ~num_states ~num_inputs
    ~num_outputs:(Hashtbl.length out_ids) ~next ~output ~reset
    ~state_names:(Array.of_list (List.rev !state_names))
    ~input_names
    ~output_names:(Array.of_list (List.rev !out_names))
    ()

let parse_file ?on_missing path =
  let ic = open_in path in
  let len = in_channel_length ic in
  let text = really_input_string ic len in
  close_in ic;
  let name = Filename.remove_extension (Filename.basename path) in
  parse ~name ?on_missing text

let input_bits (m : Machine.t) =
  let widths =
    Array.map
      (fun n ->
        if not (is_binary_string n) then
          invalid_arg (Printf.sprintf "Kiss: input name %S is not binary" n);
        String.length n)
      m.input_names
  in
  let w = widths.(0) in
  if not (Array.for_all (fun w' -> w' = w) widths) then
    invalid_arg "Kiss: input names have mixed widths";
  if 1 lsl w <> m.num_inputs then
    invalid_arg "Kiss: input alphabet is not a full binary cube";
  Array.iteri
    (fun i n ->
      if int_of_binary n <> i then
        invalid_arg "Kiss: input names are not in binary counting order")
    m.input_names;
  w

let output_bits (m : Machine.t) =
  let w = String.length m.output_names.(0) in
  Array.iter
    (fun n ->
      if not (is_binary_string n) || String.length n <> w then
        invalid_arg (Printf.sprintf "Kiss: output name %S is not binary of width %d" n w))
    m.output_names;
  w

let print (m : Machine.t) =
  let in_bits = input_bits m in
  ignore (output_bits m);
  let buf = Buffer.create 1024 in
  Buffer.add_string buf (Printf.sprintf ".i %d\n" in_bits);
  Buffer.add_string buf (Printf.sprintf ".o %d\n" (output_bits m));
  Buffer.add_string buf (Printf.sprintf ".s %d\n" m.num_states);
  Buffer.add_string buf (Printf.sprintf ".p %d\n" (m.num_states * m.num_inputs));
  Buffer.add_string buf (Printf.sprintf ".r %s\n" m.state_names.(m.reset));
  Machine.iter_transitions m (fun s i s' o ->
      Buffer.add_string buf
        (Printf.sprintf "%s %s %s %s\n" m.input_names.(i) m.state_names.(s)
           m.state_names.(s') m.output_names.(o)));
  Buffer.add_string buf ".e\n";
  Buffer.contents buf
