let paper_fig5 () =
  (* Columns in index order: input 0 ("0"), input 1 ("1"); the paper prints
     the "1" column first.  Rows s1..s4 are indices 0..3. *)
  let next =
    [| [| 0; 2 |];  (* s1: 0 -> s1, 1 -> s3 *)
       [| 3; 1 |];  (* s2: 0 -> s4, 1 -> s2 *)
       [| 2; 0 |];  (* s3: 0 -> s3, 1 -> s1 *)
       [| 1; 3 |]   (* s4: 0 -> s2, 1 -> s4 *) |]
  and output =
    [| [| 1; 1 |];  (* s1: 1/1 *)
       [| 0; 0 |];  (* s2: 0/0 *)
       [| 0; 1 |];  (* s3: 0/1 *)
       [| 1; 0 |]   (* s4: 1/0 *) |]
  in
  Machine.make ~name:"fig5" ~num_states:4 ~num_inputs:2 ~num_outputs:2
    ~next ~output
    ~state_names:[| "s1"; "s2"; "s3"; "s4" |]
    ~input_names:[| "0"; "1" |]
    ~output_names:[| "0"; "1" |] ()

let shift_register ~bits =
  if bits < 1 || bits > 16 then invalid_arg "Zoo.shift_register: bits in [1,16]";
  let n = 1 lsl bits in
  let next = Array.make_matrix n 2 0 in
  let output = Array.make_matrix n 2 0 in
  for v = 0 to n - 1 do
    for x = 0 to 1 do
      next.(v).(x) <- ((v lsl 1) lor x) land (n - 1);
      output.(v).(x) <- (v lsr (bits - 1)) land 1
    done
  done;
  let state_names =
    Array.init n (fun v ->
        String.init bits (fun k ->
            if v land (1 lsl (bits - 1 - k)) <> 0 then '1' else '0'))
  in
  Machine.make ~name:"shiftreg" ~num_states:n ~num_inputs:2 ~num_outputs:2
    ~next ~output ~state_names
    ~input_names:[| "0"; "1" |] ~output_names:[| "0"; "1" |] ()

let counter ~modulus =
  if modulus < 2 then invalid_arg "Zoo.counter: modulus must be >= 2";
  let next = Array.make_matrix modulus 2 0 in
  let output = Array.make_matrix modulus 2 0 in
  for s = 0 to modulus - 1 do
    next.(s).(0) <- s;
    next.(s).(1) <- (s + 1) mod modulus;
    output.(s).(0) <- 0;
    output.(s).(1) <- (if s = modulus - 1 then 1 else 0)
  done;
  Machine.make ~name:(Printf.sprintf "counter%d" modulus) ~num_states:modulus
    ~num_inputs:2 ~num_outputs:2 ~next ~output
    ~input_names:[| "0"; "1" |] ~output_names:[| "0"; "1" |] ()

let toggle () =
  Machine.make ~name:"toggle" ~num_states:2 ~num_inputs:2 ~num_outputs:2
    ~next:[| [| 0; 1 |]; [| 1; 0 |] |]
    ~output:[| [| 0; 0 |]; [| 1; 1 |] |]
    ~input_names:[| "0"; "1" |] ~output_names:[| "0"; "1" |] ()

let serial_adder () =
  (* Input symbol i encodes the bit pair (a, b) = (i >> 1, i land 1);
     state = carry; output = a xor b xor carry. *)
  let next = Array.make_matrix 2 4 0 in
  let output = Array.make_matrix 2 4 0 in
  for carry = 0 to 1 do
    for i = 0 to 3 do
      let a = i lsr 1 and b = i land 1 in
      let sum = a + b + carry in
      next.(carry).(i) <- sum lsr 1;
      output.(carry).(i) <- sum land 1
    done
  done;
  Machine.make ~name:"serial_adder" ~num_states:2 ~num_inputs:4 ~num_outputs:2
    ~next ~output
    ~input_names:[| "00"; "01"; "10"; "11" |] ~output_names:[| "0"; "1" |] ()

let parity () =
  Machine.make ~name:"parity" ~num_states:2 ~num_inputs:2 ~num_outputs:2
    ~next:[| [| 0; 1 |]; [| 1; 0 |] |]
    ~output:[| [| 0; 1 |]; [| 1; 0 |] |]
    ~input_names:[| "0"; "1" |] ~output_names:[| "0"; "1" |] ()
