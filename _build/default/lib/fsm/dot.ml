let render ?pi_classes (m : Machine.t) =
  let buf = Buffer.create 1024 in
  let add fmt = Printf.ksprintf (Buffer.add_string buf) fmt in
  add "digraph %S {\n  rankdir=LR;\n  node [shape=circle];\n" m.name;
  add "  __start [shape=point];\n  __start -> q%d;\n" m.reset;
  begin
    match pi_classes with
    | None ->
      for s = 0 to m.num_states - 1 do
        add "  q%d [label=%S];\n" s m.state_names.(s)
      done
    | Some cls ->
      let num_classes = 1 + Array.fold_left max 0 cls in
      for c = 0 to num_classes - 1 do
        add "  subgraph cluster_%d {\n    label=\"class %d\";\n" c c;
        for s = 0 to m.num_states - 1 do
          if cls.(s) = c then add "    q%d [label=%S];\n" s m.state_names.(s)
        done;
        add "  }\n"
      done
  end;
  (* Merge parallel edges into one label per (src, dst). *)
  let edges = Hashtbl.create 64 in
  Machine.iter_transitions m (fun s i s' o ->
      let label = Printf.sprintf "%s/%s" m.input_names.(i) m.output_names.(o) in
      let key = (s, s') in
      Hashtbl.replace edges key
        (match Hashtbl.find_opt edges key with
        | None -> [ label ]
        | Some ls -> label :: ls));
  Hashtbl.fold (fun k v acc -> (k, List.rev v) :: acc) edges []
  |> List.sort compare
  |> List.iter (fun ((s, s'), labels) ->
         add "  q%d -> q%d [label=%S];\n" s s' (String.concat "\\n" labels));
  add "}\n";
  Buffer.contents buf
