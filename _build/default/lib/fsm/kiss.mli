(** KISS2 state-transition-table reader and writer.

    KISS2 is the interchange format of the MCNC / IWLS'93 FSM benchmarks
    the paper evaluates on.  A file looks like:

    {v
    .i 2
    .o 1
    .s 4
    .p 8
    .r st0
    00 st0 st1 0
    -1 st0 st2 1
    ...
    .e
    v}

    Input columns may contain ['-'] (don't care); such a row is expanded
    into all matching input minterms, so the resulting {!Machine.t} has
    [2^i] input symbols named by their bit patterns.  The paper requires
    fully specified machines; missing (state, minterm) entries are handled
    according to [on_missing]. *)

type error = {
  line : int;  (** 1-based line number, 0 when global *)
  message : string;
}

exception Parse_error of error

(** [parse ?name ?on_missing text] parses KISS2 text.

    [on_missing] selects the completion policy for unspecified
    (state, input) pairs:
    - [`Error] (default): raise {!Parse_error};
    - [`Self_loop]: stay in the same state and emit the all-zero output;
    - [`Reset]: go to the reset state and emit the all-zero output.

    Conflicting double specifications of the same (state, minterm) always
    raise.  Output columns must be fully specified (no ['-']).

    @raise Parse_error on malformed input. *)
val parse :
  ?name:string -> ?on_missing:[ `Error | `Self_loop | `Reset ] -> string -> Machine.t

(** [parse_file ?on_missing path] reads and parses a KISS2 file; the
    machine is named after the file's basename. *)
val parse_file : ?on_missing:[ `Error | `Self_loop | `Reset ] -> string -> Machine.t

(** [print m] renders a machine back to KISS2, one row per
    (state, input minterm).  Requires the machine's input alphabet to be a
    power of two with binary input names (true for machines produced by
    {!parse} and by the benchmark generators). *)
val print : Machine.t -> string

(** [input_bits m] is the number of input columns [print] will emit.
    @raise Invalid_argument if input names are not uniform binary strings. *)
val input_bits : Machine.t -> int

(** [output_bits m] is the number of output columns [print] will emit. *)
val output_bits : Machine.t -> int
