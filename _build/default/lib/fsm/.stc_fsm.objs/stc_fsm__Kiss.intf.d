lib/fsm/kiss.mli: Machine
