lib/fsm/generate.ml: Array Equiv Hashtbl List Machine Printf Queue Reach Stc_util String
