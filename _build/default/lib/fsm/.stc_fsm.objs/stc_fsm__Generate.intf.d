lib/fsm/generate.mli: Machine Stc_util
