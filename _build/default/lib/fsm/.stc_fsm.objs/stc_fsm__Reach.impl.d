lib/fsm/reach.ml: Array Machine Queue
