lib/fsm/zoo.ml: Array Machine Printf String
