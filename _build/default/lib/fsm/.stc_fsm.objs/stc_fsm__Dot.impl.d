lib/fsm/dot.ml: Array Buffer Hashtbl List Machine Printf String
