lib/fsm/equiv.ml: Array Hashtbl Machine
