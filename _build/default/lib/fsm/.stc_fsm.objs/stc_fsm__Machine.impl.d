lib/fsm/machine.ml: Array Format Hashtbl List Printf Queue String
