lib/fsm/dot.mli: Machine
