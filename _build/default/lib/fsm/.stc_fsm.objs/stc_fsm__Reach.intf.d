lib/fsm/reach.mli: Machine
