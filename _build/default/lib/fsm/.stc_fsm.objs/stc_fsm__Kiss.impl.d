lib/fsm/kiss.ml: Array Buffer Filename Hashtbl Lazy List Machine Printf String
