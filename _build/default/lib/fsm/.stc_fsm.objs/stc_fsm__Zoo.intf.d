lib/fsm/zoo.mli: Machine
