lib/fsm/equiv.mli: Machine
