(** Graphviz DOT export of machines, optionally colouring states by the
    classes of a partition pair (handy for visualising OSTR solutions). *)

(** [render ?pi_classes m] returns DOT text.  Transitions are labelled
    [input/output]; parallel edges between the same states are merged.
    When [pi_classes] is given, states are grouped into clusters by
    class. *)
val render : ?pi_classes:int array -> Machine.t -> string
