(** Reachability analysis and dead-state elimination. *)

(** [reachable m] marks the states reachable from the reset state. *)
val reachable : Machine.t -> bool array

(** [reachable_count m] is the number of reachable states. *)
val reachable_count : Machine.t -> int

(** [is_connected m] holds when every state is reachable from reset. *)
val is_connected : Machine.t -> bool

(** [trim m] removes unreachable states, renumbering the survivors in
    breadth-first discovery order from reset.  The result is behaviourally
    equivalent to [m]. *)
val trim : Machine.t -> Machine.t

(** [is_strongly_connected m] holds when every state can reach every other
    state (relevant for test-sequence arguments in the BIST literature). *)
val is_strongly_connected : Machine.t -> bool
