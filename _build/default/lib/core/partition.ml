(* Re-export so that [Stc_core.Partition] is the partition type appearing
   in this library's interfaces. *)
include Stc_partition.Partition
