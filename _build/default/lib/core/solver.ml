module Machine = Stc_fsm.Machine
module Equiv = Stc_fsm.Equiv
module Pair = Stc_partition.Pair

type cost = { bits : int; imbalance : float; factor_states : int }

let compare_cost a b =
  let c = Int.compare a.bits b.bits in
  if c <> 0 then c
  else
    let c = Int.compare a.factor_states b.factor_states in
    if c <> 0 then c else Float.compare a.imbalance b.imbalance

type solution = { pi : Partition.t; rho : Partition.t; cost : cost }

let is_trivial (machine : Machine.t) sol =
  Partition.num_classes sol.pi = machine.num_states
  && Partition.num_classes sol.rho = machine.num_states

type stats = {
  basis_size : int;
  search_space : float;
  investigated : int;
  pruned : int;
  solutions : int;
  elapsed : float;
  timed_out : bool;
}

type result = { best : solution; stats : stats }

let cost_of (_machine : Machine.t) ~pi ~rho =
  let k1 = Partition.num_classes pi and k2 = Partition.num_classes rho in
  let bits = Machine.bits_for k1 + Machine.bits_for k2 in
  let hi = float_of_int (max k1 k2) and lo = float_of_int (min k1 k2) in
  { bits; imbalance = (hi /. lo) -. 1.0; factor_states = k1 + k2 }

let equivalence_partition machine = Partition.of_class_map (Equiv.classes machine)

let validate (machine : Machine.t) sol =
  let next = machine.next in
  let equiv = equivalence_partition machine in
  if not (Pair.is_pair ~next sol.pi sol.rho) then
    Error "(pi, rho) is not a partition pair"
  else if not (Pair.is_pair ~next sol.rho sol.pi) then
    Error "(rho, pi) is not a partition pair"
  else if not (Partition.subseteq (Partition.meet sol.pi sol.rho) equiv) then
    Error "pi /\\ rho does not refine state equivalence"
  else Ok ()

exception Timeout

let solve ?(timeout = infinity) ?(prune = true) ?(max_nodes = max_int)
    (machine : Machine.t) =
  let next = machine.next in
  let n = machine.num_states in
  let equiv = equivalence_partition machine in
  let basis = Array.of_list (Pair.basis ~next) in
  let num_basis = Array.length basis in
  let start = Sys.time () in
  let investigated = ref 0 and pruned = ref 0 and solutions = ref 0 in
  let best = ref None in
  let timed_out = ref false in
  let admissible candidate_pi candidate_rho =
    Pair.is_symmetric_pair ~next candidate_pi candidate_rho
    && Partition.subseteq (Partition.meet candidate_pi candidate_rho) equiv
  in
  (* Alternately coarsen each side with the M operator while the pair stays
     admissible.  If (pi, rho) is a symmetric pair then so is (M rho, rho):
     (M rho, rho) is a pair by definition of M, and (rho, M rho) is one
     because (rho, pi) is and pi is a subset of M rho.  Coarsening can only
     shrink class counts, so this is a monotone improvement. *)
  let rec polish candidate_pi candidate_rho =
    let pi' = Pair.big_m ~next candidate_rho in
    if
      (not (Partition.equal pi' candidate_pi))
      && admissible pi' candidate_rho
    then polish pi' candidate_rho
    else begin
      let rho' = Pair.big_m ~next candidate_pi in
      if
        (not (Partition.equal rho' candidate_rho))
        && admissible candidate_pi rho'
      then polish candidate_pi rho'
      else (candidate_pi, candidate_rho)
    end
  in
  (* Besides the single best solution, keep a small pool of the best
     distinct candidates as starting points for the final hill climb. *)
  let pool_capacity = 16 in
  let pool = ref [] in
  let pool_add sol =
    let known existing =
      Partition.equal existing.pi sol.pi && Partition.equal existing.rho sol.rho
    in
    if not (List.exists known !pool) then begin
      let sorted =
        List.sort (fun a b -> compare_cost a.cost b.cost) (sol :: !pool)
      in
      pool := List.filteri (fun i _ -> i < pool_capacity) sorted
    end
  in
  let record candidate_pi candidate_rho =
    if admissible candidate_pi candidate_rho then begin
      incr solutions;
      let candidate_pi, candidate_rho = polish candidate_pi candidate_rho in
      let cost = cost_of machine ~pi:candidate_pi ~rho:candidate_rho in
      let sol = { pi = candidate_pi; rho = candidate_rho; cost } in
      pool_add sol;
      match !best with
      | None -> best := Some sol
      | Some b -> if compare_cost cost b.cost < 0 then best := Some sol
    end
  in
  (* Depth-first walk over subsets of the basis, each node carrying the join
     [pi] of its subset.  Children extend the subset with a strictly larger
     basis index, exactly as in the paper's (V, E) definition. *)
  let rec visit pi from_index =
    (* The root always runs to completion so that the trivial solution is
       recorded even under a zero timeout. *)
    if !investigated > 0 then begin
      if !investigated >= max_nodes then raise Timeout;
      if Sys.time () -. start > timeout then raise Timeout
    end;
    incr investigated;
    let mpi = Pair.m ~next pi in
    let big_mpi = Pair.big_m ~next pi in
    (* Candidate 1: the Mm-pair (M(pi), pi). *)
    record big_mpi pi;
    (* Candidate 2: (m(pi), pi), whose intersection with pi is minimal
       among all pairs bracketed by the Mm-pair (Theorem 2 discussion). *)
    if not (Partition.equal mpi big_mpi) then record mpi pi;
    (* Lemma 1: if m(pi) /\ pi does not refine equivalence, no successor
       can yield an admissible pair with right member above pi. *)
    let viable = Partition.subseteq (Partition.meet mpi pi) equiv in
    if prune && not viable then incr pruned
    else
      for j = from_index to num_basis - 1 do
        let pi' = Partition.join pi basis.(j) in
        visit pi' (j + 1)
      done
  in
  begin
    try visit (Partition.identity n) 0 with Timeout -> timed_out := true
  end;
  let best =
    match !best with
    | Some sol -> sol
    | None ->
      (* The root always records (M(identity), identity); unreachable. *)
      assert false
  in
  (* Post-search refinement.  The paper's candidate set (M(pi), pi) /
     (m(pi), pi) can miss optima whose right member is not a join of basis
     elements; a greedy class-merge hill climb recovers them.  [close_pair]
     computes the least symmetric partition pair above a seed pair by
     alternating joins with the m images. *)
  let rec close_pair pi rho =
    let rho' = Partition.join rho (Pair.m ~next pi) in
    let pi' = Partition.join pi (Pair.m ~next rho') in
    if Partition.equal pi pi' && Partition.equal rho rho' then (pi, rho')
    else close_pair pi' rho'
  in
  let merge_candidates partition =
    let reps = Partition.representatives partition in
    let k = Array.length reps in
    let acc = ref [] in
    for c = 0 to k - 1 do
      for d = c + 1 to k - 1 do
        acc := (reps.(c), reps.(d)) :: !acc
      done
    done;
    !acc
  in
  let try_merge sol (side : [ `Left | `Right ]) (s, t) =
    let seed = Partition.pair_relation ~n s t in
    let pi0, rho0 =
      match side with
      | `Left -> (Partition.join sol.pi seed, sol.rho)
      | `Right -> (sol.pi, Partition.join sol.rho seed)
    in
    let pi', rho' = close_pair pi0 rho0 in
    if admissible pi' rho' then begin
      let pi', rho' = polish pi' rho' in
      let cost = cost_of machine ~pi:pi' ~rho:rho' in
      if compare_cost cost sol.cost < 0 then Some { pi = pi'; rho = rho'; cost }
      else None
    end
    else None
  in
  let rec hill_climb sol =
    let moves =
      List.map (fun p -> (`Left, p)) (merge_candidates sol.pi)
      @ List.map (fun p -> (`Right, p)) (merge_candidates sol.rho)
    in
    let improved =
      List.fold_left
        (fun acc (side, p) ->
          match acc with Some _ -> acc | None -> try_merge sol side p)
        None moves
    in
    match improved with None -> sol | Some better -> hill_climb better
  in
  let best =
    List.fold_left
      (fun acc sol ->
        let sol = hill_climb sol in
        if compare_cost sol.cost acc.cost < 0 then sol else acc)
      (hill_climb best) !pool
  in
  (match validate machine best with
  | Ok () -> ()
  | Error msg -> invalid_arg ("Solver.solve: internal error: " ^ msg));
  {
    best;
    stats =
      {
        basis_size = num_basis;
        search_space = Float.pow 2.0 (float_of_int num_basis);
        investigated = !investigated;
        pruned = !pruned;
        solutions = !solutions;
        elapsed = Sys.time () -. start;
        timed_out = !timed_out;
      };
  }

let solve_exhaustive (machine : Machine.t) =
  let next = machine.next in
  let n = machine.num_states in
  let equiv = equivalence_partition machine in
  let all = Stc_partition.Enumerate.all n in
  let best = ref None in
  List.iter
    (fun pi ->
      List.iter
        (fun rho ->
          if
            Pair.is_symmetric_pair ~next pi rho
            && Partition.subseteq (Partition.meet pi rho) equiv
          then begin
            let cost = cost_of machine ~pi ~rho in
            let sol = { pi; rho; cost } in
            match !best with
            | None -> best := Some sol
            | Some b -> if compare_cost cost b.cost < 0 then best := Some sol
          end)
        all)
    all;
  match !best with
  | Some sol -> sol
  | None -> assert false (* (identity, identity) is always admissible *)
