(** Classical FSM decomposition - the baseline the paper distinguishes
    itself from ("this structure is different from structures provided by
    decomposition techniques where the resulting submachines contain
    internal feedback loops" [16, 3, 15]).

    A partition [pi] is {e closed} (has the substitution property) when
    [(s,t) in pi] implies [(delta(s,i), delta(t,i)) in pi] - i.e.
    [(pi, pi)] is a partition pair.  Closed partitions give classical
    decompositions:

    - {b parallel}: two closed partitions with intersection refining
      equivalence yield two independent submachines (each with its own
      feedback loop) running side by side;
    - {b serial}: one closed partition yields a head machine (the
      quotient) feeding state information into a tail machine.

    Both submachines keep internal feedback, so unlike the paper's
    pipeline they still need the fig. 2/3 treatment to become
    self-testable.  This module measures how the classical approach fares
    on the same machines. *)

(** [is_closed ~next pi] tests the substitution property. *)
val is_closed : next:int array array -> Partition.t -> bool

(** [closed_partitions ~next] enumerates the lattice of closed partitions:
    the join-closure of the basis [m(p_st) ∨ p_st] closures.  Exponential
    in the worst case; meant for benchmark-sized machines. *)
val closed_partitions : next:int array array -> Partition.t list

(** [closure ~next pi] is the smallest closed partition containing
    [pi]. *)
val closure : next:int array array -> Partition.t -> Partition.t

type parallel = {
  pi1 : Partition.t;
  pi2 : Partition.t;
  bits : int;  (** flip-flops of the two independent submachines *)
}

(** [parallel machine] finds the best {e nontrivial} parallel
    decomposition - both closed partitions with more than one and fewer
    than [|S|] classes, meet refining state equivalence - minimizing
    (bits, total factor states, imbalance); [None] when none exists.
    Closedness is [(pi, pi)] being a pair, where the pipeline needs the
    "shifted" pairs [(pi, rho)] and [(rho, pi)] - the two notions are
    incomparable, which is exactly the paper's point: a counter
    decomposes serially but does not pipeline-factor, and dk27
    pipeline-factors without a nontrivial parallel decomposition. *)
val parallel : Stc_fsm.Machine.t -> parallel option

type serial = {
  head : Partition.t;  (** a closed partition: the head machine's states *)
  tail_states : int;  (** max block size: the tail machine's state count *)
  bits : int;  (** head + tail flip-flops *)
}

(** [serial machine] finds the best nontrivial serial decomposition: a
    closed partition with [1 < classes < |S|] minimizing head+tail
    flip-flops, where the tail needs [max block size] states (one per
    state within the current head class); [None] when no nontrivial
    closed partition exists.  Note both submachines keep feedback loops:
    the flip-flop count excludes any self-test hardware, whereas the
    pipeline's count includes it. *)
val serial : Stc_fsm.Machine.t -> serial option
