(** State splitting - the paper's future work (section 5):

    "Future work will concentrate on modifying the state transition
    diagram to obtain functionally equivalent machines whose self-testable
    realizations lead to better solutions of problem OSTR."

    Splitting a state [s] into two copies with identical outgoing rows and
    an arbitrary redistribution of the incoming transitions preserves the
    machine's behaviour exactly (the copies are equivalent states), but it
    can create symmetric partition pairs that do not exist in the merged
    machine: state minimization can destroy product structure, and
    splitting recovers it.

    {!improve} is a greedy first-improvement search over single-state
    splits, evaluating each candidate with the OSTR solver. *)

type improvement = {
  machine : Stc_fsm.Machine.t;  (** the (possibly split) machine *)
  solution : Solver.solution;  (** OSTR optimum of [machine] *)
  splits : (int * (int * int) list) list;
      (** the splits applied, outermost last: state index (in the machine
          at the time of the split) and the incoming edges (source, input)
          moved to the new copy *)
}

(** [split machine ~state ~moved] returns a machine with one extra state:
    a copy of [state] with the same outgoing transitions; each incoming
    edge [(source, input)] listed in [moved] is redirected to the copy.
    Behaviour is preserved ([Machine.equal_behaviour] holds).

    @raise Invalid_argument if an edge in [moved] does not lead to
    [state], or if [state] is out of range.  Moving the implicit "reset
    enters here" edge is expressed by [moved] containing [(-1, 0)]. *)
val split :
  Stc_fsm.Machine.t -> state:int -> moved:(int * int) list -> Stc_fsm.Machine.t

(** [incoming machine state] lists the edges [(source, input)] with
    [delta source input = state]. *)
val incoming : Stc_fsm.Machine.t -> int -> (int * int) list

(** [improve ?timeout ?max_in_degree ?max_rounds ?max_states machine] runs
    the greedy search:

    - solve OSTR for the current machine;
    - for every state whose in-degree is at most [max_in_degree] (default
      10), enumerate all proper bipartitions of its incoming edges, split,
      re-solve, and accept the first split that strictly improves the
      solver cost;
    - repeat for up to [max_rounds] (default 3) or until [max_states]
      (default [2 * num_states]) is reached or no split helps.

    The result's machine always behaves exactly like the input. *)
val improve :
  ?timeout:float ->
  ?max_in_degree:int ->
  ?max_rounds:int ->
  ?max_states:int ->
  Stc_fsm.Machine.t ->
  improvement
