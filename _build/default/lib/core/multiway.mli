(** Multi-stage pipeline realizations - a generalization of the paper's
    two-register structure to a ring of [m >= 2] registers.

    A {e partition chain} of length [m] is a tuple (pi_0, ..., pi_(m-1))
    of partitions with

    {v (s,t) in pi_k  ==>  (delta(s,i), delta(t,i)) in pi_(k+1 mod m) v}

    for all inputs [i].  For [m = 2] this is exactly a symmetric partition
    pair.  When additionally the meet of all pi_k refines state
    equivalence, the machine factors into [m] registers R_0..R_(m-1) in a
    ring: block C_k computes R_(k+1)'s next value from R_k and the inputs,
    so there is still no direct feedback loop around any block, and the
    self-test runs in [m] sessions with each register in turn generating
    patterns while its successor compresses.

    Total flip-flops are never below the two-stage optimum (the bit counts
    add), but more stages can give smaller, more balanced blocks with
    fewer transitions each - e.g. the 6-bit shift register factors into
    three 4-state stages. *)

type chain = {
  parts : Partition.t array;  (** the partitions pi_0 .. pi_(m-1) *)
  bits : int;  (** total flip-flops: sum of ceil(log2 classes) *)
  factor_states : int;  (** sum of class counts *)
}

(** [is_chain ~next parts] checks the defining condition. *)
val is_chain : next:int array array -> Partition.t array -> bool

(** [admissible machine parts] additionally checks that the meet of all
    parts refines state equivalence. *)
val admissible : Stc_fsm.Machine.t -> Partition.t array -> bool

(** [solve ?timeout ~stages machine] searches for the best admissible
    chain of length [stages >= 2] with the same basis-join tree as the
    OSTR solver: at each candidate pi the chain
    (M-closure, pi, m pi, m (m pi), ...) is evaluated.  Cost order: bits,
    then total factor states, then imbalance.  Always returns at least the
    trivial chain (identity everywhere). *)
val solve : ?timeout:float -> stages:int -> Stc_fsm.Machine.t -> chain

(** [realize machine chain] constructs the ring product machine [M*]: a
    state is a tuple of classes (mixed-radix encoded), with

    {v delta*((x_0..x_(m-1)), i) = (d_(m-1)(x_(m-1),i), d_0(x_0,i), ...) v}

    where [d_k : classes_k x I -> classes_(k+1)] is the induced factor
    map, and the output is taken from any specification state in the
    intersection of the classes (filler output elsewhere).  Returns the
    product machine together with the state homomorphism alpha.

    @raise Invalid_argument if the chain is not admissible. *)
val realize :
  Stc_fsm.Machine.t -> Partition.t array -> Stc_fsm.Machine.t * int array

(** [realizes machine parts] builds the realization and checks the
    Definition-3 homomorphism - the test oracle. *)
val realizes : Stc_fsm.Machine.t -> Partition.t array -> bool
