lib/core/realization.mli: Format Partition Solver Stc_fsm
