lib/core/ostr.ml: Format Partition Realization Solver Stc_fsm
