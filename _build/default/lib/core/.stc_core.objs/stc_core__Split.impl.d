lib/core/split.ml: Array List Solver Stc_fsm
