lib/core/decompose.mli: Partition Stc_fsm
