lib/core/solver.ml: Array Atomic Domain Float Hashtbl Int List Partition Seq Stc_fsm Stc_partition Stc_util
