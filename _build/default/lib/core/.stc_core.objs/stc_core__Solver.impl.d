lib/core/solver.ml: Array Float Int List Partition Stc_fsm Stc_partition Sys
