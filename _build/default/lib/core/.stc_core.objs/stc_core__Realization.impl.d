lib/core/realization.ml: Array Format Partition Printf Solver Stc_fsm Stc_partition
