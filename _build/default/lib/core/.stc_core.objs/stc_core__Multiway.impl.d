lib/core/multiway.ml: Array Float Int Partition Stc_fsm Stc_partition Stc_util
