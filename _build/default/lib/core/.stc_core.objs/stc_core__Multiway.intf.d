lib/core/multiway.mli: Partition Stc_fsm
