lib/core/decompose.ml: Array Hashtbl List Option Partition Queue Stc_fsm Stc_partition
