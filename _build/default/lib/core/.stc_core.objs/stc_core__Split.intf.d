lib/core/split.mli: Solver Stc_fsm
