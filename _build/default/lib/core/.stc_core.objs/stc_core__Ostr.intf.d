lib/core/ostr.mli: Format Realization Solver Stc_fsm
