lib/core/solver.mli: Partition Stc_fsm Stdlib
