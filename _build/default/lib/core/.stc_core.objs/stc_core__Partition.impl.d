lib/core/partition.ml: Stc_partition
