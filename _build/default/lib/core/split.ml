module Machine = Stc_fsm.Machine

type improvement = {
  machine : Machine.t;
  solution : Solver.solution;
  splits : (int * (int * int) list) list;
}

let incoming (m : Machine.t) state =
  let edges = ref [] in
  for s = m.num_states - 1 downto 0 do
    for i = m.num_inputs - 1 downto 0 do
      if m.next.(s).(i) = state then edges := (s, i) :: !edges
    done
  done;
  !edges

let split (m : Machine.t) ~state ~moved =
  if state < 0 || state >= m.num_states then
    invalid_arg "Split.split: state out of range";
  List.iter
    (fun (s, i) ->
      if s = -1 then () (* the reset pseudo-edge *)
      else if s < 0 || s >= m.num_states || i < 0 || i >= m.num_inputs then
        invalid_arg "Split.split: edge out of range"
      else if m.next.(s).(i) <> state then
        invalid_arg "Split.split: edge does not lead to the split state")
    moved;
  let n = m.num_states in
  let copy = n in
  let next = Array.init (n + 1) (fun s -> Array.copy m.next.(min s (n - 1))) in
  let output = Array.init (n + 1) (fun s -> Array.copy m.output.(min s (n - 1))) in
  (* The copy gets the original's outgoing rows. *)
  next.(copy) <- Array.copy m.next.(state);
  output.(copy) <- Array.copy m.output.(state);
  List.iter
    (fun (s, i) -> if s >= 0 then next.(s).(i) <- copy)
    moved;
  let reset =
    if List.mem (-1, 0) moved && m.reset = state then copy else m.reset
  in
  let state_names =
    Array.append m.state_names [| m.state_names.(state) ^ "'" |]
  in
  Machine.make ~name:m.name ~num_states:(n + 1) ~num_inputs:m.num_inputs
    ~num_outputs:m.num_outputs ~next ~output ~reset ~state_names
    ~input_names:m.input_names ~output_names:m.output_names ()

(* Proper bipartitions of an edge list: subsets 1 .. 2^(d-1) - 1 (fixing
   the first edge on the original side halves the symmetric space). *)
let bipartitions edges =
  match edges with
  | [] | [ _ ] -> []
  | first :: rest ->
    let rest = Array.of_list rest in
    let d = Array.length rest in
    ignore first;
    List.init ((1 lsl d) - 1) (fun mask ->
        let mask = mask + 1 in
        let moved = ref [] in
        Array.iteri
          (fun k edge -> if mask land (1 lsl k) <> 0 then moved := edge :: !moved)
          rest;
        !moved)

let improve ?(timeout = 10.0) ?(max_in_degree = 10) ?(max_rounds = 3)
    ?max_states (m : Machine.t) =
  let max_states =
    match max_states with Some v -> v | None -> 2 * m.num_states
  in
  let solve machine = (Solver.solve ~timeout machine).Solver.best in
  let rec round machine solution splits rounds_left =
    if rounds_left = 0 || machine.Machine.num_states >= max_states then
      { machine; solution; splits }
    else begin
      let found = ref None in
      let state = ref 0 in
      while !found = None && !state < machine.Machine.num_states do
        let edges = incoming machine !state in
        let d = List.length edges in
        if d >= 2 && d <= max_in_degree then begin
          let candidates = bipartitions edges in
          let rec try_candidates = function
            | [] -> ()
            | moved :: rest ->
              let candidate = split machine ~state:!state ~moved in
              let sol = solve candidate in
              if Solver.compare_cost sol.Solver.cost solution.Solver.cost < 0
              then found := Some (candidate, sol, (!state, moved))
              else try_candidates rest
          in
          try_candidates candidates
        end;
        incr state
      done;
      match !found with
      | None -> { machine; solution; splits }
      | Some (candidate, sol, applied) ->
        (* Splitting must never change behaviour; guard against bugs. *)
        assert (Machine.equal_behaviour m candidate);
        round candidate sol (applied :: splits) (rounds_left - 1)
    end
  in
  round m (solve m) [] max_rounds
