module Machine = Stc_fsm.Machine

type outcome = {
  machine : Machine.t;
  solution : Solver.solution;
  realization : Realization.t;
  stats : Solver.stats;
}

let run ?timeout ?jobs machine =
  let result = Solver.solve ?timeout ?jobs machine in
  let realization = Realization.of_solution machine result.best in
  { machine; solution = result.best; realization; stats = result.stats }

let nontrivial outcome =
  let n = outcome.machine.Machine.num_states in
  Partition.num_classes outcome.solution.pi < n
  || Partition.num_classes outcome.solution.rho < n

let reaches_lower_bound outcome =
  Realization.num_s1 outcome.realization * Realization.num_s2 outcome.realization
  = outcome.machine.Machine.num_states

let pp_summary ppf outcome =
  let open Format in
  let m = outcome.machine and r = outcome.realization in
  fprintf ppf "@[<v>machine %s: |S| = %d, |I| = %d, |O| = %d@," m.Machine.name
    m.Machine.num_states m.Machine.num_inputs m.Machine.num_outputs;
  fprintf ppf "optimal factors: |S1| = %d, |S2| = %d%s@," (Realization.num_s1 r)
    (Realization.num_s2 r)
    (if nontrivial outcome then "" else "  (trivial: doubling)");
  fprintf ppf "flip-flops: conventional BIST %d, pipeline structure %d@,"
    (Machine.flipflops_conventional m)
    (Realization.flipflops r);
  fprintf ppf "transitions to implement: C %d vs C1+C2 %d@,"
    (Realization.spec_transitions r)
    (Realization.factor_transitions r);
  fprintf ppf
    "search: basis %d, |V| = 2^%d, investigated %d, deduped %d, pruned %d%s@]"
    outcome.stats.Solver.basis_size outcome.stats.Solver.basis_size
    outcome.stats.Solver.investigated outcome.stats.Solver.deduped
    outcome.stats.Solver.pruned
    (if outcome.stats.Solver.timed_out then "  (timeout)" else "")
