(** Construction of the self-testable realization [M*] from a symmetric
    partition pair (Theorem 1) and verification that it realizes the
    specification (Definition 3).

    Given [(pi, rho)] with [pi /\ rho] refining state equivalence, the
    realization has states [S1 x S2] with [S1 = S/pi], [S2 = S/rho] and

    {v
    delta*((s1, s2), i) = (delta2(s2, i), delta1(s1, i))
    delta1([s]pi,  i)   = [delta(s, i)]rho
    delta2([s]rho, i)   = [delta(s, i)]pi
    lambda*((s1, s2), i) = lambda(s, i)   for s in s1 /\ s2 (filler if empty)
    v}

    The straightforward implementation is the pipeline structure of fig. 4:
    register R1 holds the [S1] component, R2 the [S2] component,
    combinational block C1 implements [delta1], C2 implements [delta2], and
    there is no direct feedback loop around either block. *)

type t = {
  spec : Stc_fsm.Machine.t;
  pi : Partition.t;
  rho : Partition.t;
  delta1 : int array array;  (** [delta1.(s1).(i)] : S2 class fed into R2 *)
  delta2 : int array array;  (** [delta2.(s2).(i)] : S1 class fed into R1 *)
  product : Stc_fsm.Machine.t;
      (** [M*] as a plain machine; state [(s1, s2)] has index
          [s1 * |S2| + s2], reset is [alpha spec.reset] *)
  alpha : int array;  (** the state homomorphism [S -> S1 x S2] *)
  filler_output : int;  (** the arbitrary [o*] used on empty intersections *)
  filled : int;  (** number of (state, input) entries that needed [o*] *)
}

(** [build machine ~pi ~rho] constructs the realization.

    @raise Invalid_argument if [(pi, rho)] is not a symmetric partition
    pair or the intersection does not refine state equivalence (i.e. the
    hypotheses of Theorem 1 fail). *)
val build : Stc_fsm.Machine.t -> pi:Partition.t -> rho:Partition.t -> t

(** [of_solution machine solution] is [build] on a solver result. *)
val of_solution : Stc_fsm.Machine.t -> Solver.solution -> t

(** [realizes r] checks Definition 3 structurally: with [alpha] as state
    map and identity input/output maps,
    [delta*(alpha s, i) = alpha (delta (s, i))] and
    [lambda*(alpha s, i) = lambda (s, i)] for all [s, i].  [build] already
    guarantees this; exposed as a test oracle. *)
val realizes : t -> bool

(** [num_s1 r], [num_s2 r]: factor sizes [|S1|], [|S2|]. *)
val num_s1 : t -> int

val num_s2 : t -> int

(** [flipflops r] is [ceil(log2 |S1|) + ceil(log2 |S2|)] - column 6 of
    Table 1 ("pipeline structure"). *)
val flipflops : t -> int

(** [spec_transitions r] and [factor_transitions r]: number of state
    transitions the original network C, resp. the combined networks C1 and
    C2, must implement ([|S|*|I|] vs [(|S1| + |S2|)*|I|]); the hardware-
    saving argument below Table 1. *)
val spec_transitions : t -> int

val factor_transitions : t -> int

(** [pp_factors] prints the [delta1]/[delta2] tables in the style of
    fig. 7. *)
val pp_factors : Format.formatter -> t -> unit
