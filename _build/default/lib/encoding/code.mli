(** State assignments: injective maps from states to binary codes. *)

type t = private {
  width : int;  (** code length in bits *)
  codes : int array;  (** [codes.(s)] is the code of state [s], < 2^width *)
}

(** [make ~width codes] validates injectivity and range. *)
val make : width:int -> int array -> t

(** [binary ~num_states] assigns codes 0, 1, 2, ... with minimal width. *)
val binary : num_states:int -> t

(** [gray ~num_states] assigns consecutive Gray codes with minimal
    width. *)
val gray : num_states:int -> t

(** [one_hot ~num_states] assigns one bit per state. *)
val one_hot : num_states:int -> t

(** [heuristic machine] starts from the binary assignment and hill-climbs
    code swaps to minimize the transition-weighted Hamming distance - a
    light-weight stand-in for MUSTANG/NOVA-style encoding. *)
val heuristic : Stc_fsm.Machine.t -> t

(** [bit code ~state ~k] is bit [k] (MSB first) of the state's code. *)
val bit : t -> state:int -> k:int -> bool

(** [used code] marks which code words are taken; length [2^width].
    Unused words become don't-cares of the synthesized tables. *)
val used : t -> bool array

(** [decode code word] is the state with code [word], if any. *)
val decode : t -> int -> int option

(** [adjacency_cost machine code] is the sum over transitions of the
    Hamming distance between the source and target codes (the objective of
    {!heuristic}). *)
val adjacency_cost : Stc_fsm.Machine.t -> t -> int
