lib/encoding/tables.ml: Array Code List Stc_core Stc_fsm Stc_logic Stc_partition String
