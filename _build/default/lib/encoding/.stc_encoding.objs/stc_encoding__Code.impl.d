lib/encoding/code.ml: Array Hashtbl Stc_fsm
