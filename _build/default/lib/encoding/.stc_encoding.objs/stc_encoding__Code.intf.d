lib/encoding/code.mli: Stc_fsm
