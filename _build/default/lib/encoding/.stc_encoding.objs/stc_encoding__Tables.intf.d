lib/encoding/tables.mli: Code Stc_core Stc_fsm Stc_logic
