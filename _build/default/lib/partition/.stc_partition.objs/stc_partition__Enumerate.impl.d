lib/partition/enumerate.ml: Array List Partition Seq
