lib/partition/partition.ml: Array Format Hashtbl List Printf Stc_util Stdlib String
