lib/partition/partition.ml: Array Domain Format Hashtbl List Printf Stc_util Stdlib String Weak
