lib/partition/pair.mli: Partition
