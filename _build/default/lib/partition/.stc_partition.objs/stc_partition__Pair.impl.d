lib/partition/pair.ml: Array Hashtbl List Partition Queue Stc_util
