lib/partition/enumerate.mli: Partition Seq
