lib/partition/enumerate.mli: Partition
