(** Enumeration of all partitions of a small set.  Used as a brute-force
    oracle in tests (Bell numbers grow fast: B(8) = 4140,
    B(10) = 115975, B(12) = 4213597). *)

(** [partitions n] streams every partition of [{0..n-1}] in restricted
    growth-string order, lazily: nothing is materialized, so memory stays
    O(n) no matter how large [Bell(n)] is, and consumers can stop early.
    The sequence is persistent - it can be re-iterated from the head
    (e.g. for nested loops over all pairs of partitions).  The ceiling is
    set by run time, not memory: streaming all of [n = 14]
    (B(14) = 190899322) takes minutes, [n = 12] seconds.
    @raise Invalid_argument when [n < 1] or [n > 20]. *)
val partitions : int -> Partition.t Seq.t

(** [all n] lists every partition of [{0..n-1}], i.e. [Bell(n)] values,
    materialized.  Prefer {!partitions} for anything above [n = 8].
    @raise Invalid_argument when [n < 1] or [n > 12]. *)
val all : int -> Partition.t list

(** [bell n] is the Bell number [B(n)] (number of partitions). *)
val bell : int -> int
