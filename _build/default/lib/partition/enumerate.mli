(** Exhaustive enumeration of all partitions of a small set.  Used as a
    brute-force oracle in tests (Bell numbers grow fast: B(8) = 4140,
    B(10) = 115975 - keep [n] small). *)

(** [all n] lists every partition of [{0..n-1}], i.e. [Bell(n)] values.
    @raise Invalid_argument when [n < 1] or [n > 12]. *)
val all : int -> Partition.t list

(** [bell n] is the Bell number [B(n)] (number of partitions). *)
val bell : int -> int
