module Union_find = Stc_util.Union_find

type t = {
  n : int;
  cls : int array;  (* canonical: dense class ids by first occurrence *)
  count : int;
  hcache : int;  (* cached hash over (n, cls) *)
}

(* ------------------------------------------------------------------ *)
(* Hash-consing                                                        *)
(* ------------------------------------------------------------------ *)

(* Every constructor funnels through [intern], which keeps one canonical
   value per distinct class map in a weak table.  Within a domain, equal
   partitions are therefore physically equal, [equal] is a pointer check
   in the common case, and [hash] is a cached int - exactly what the
   solver's memo tables need for O(1) keys.

   The intern table is domain-local ([Domain.DLS]): [Weak.Make] tables
   are not safe for concurrent mutation, and a lock around a global one
   would serialize the parallel search's hottest allocation path.  The
   price is that values built in different domains may be physically
   distinct, so [equal] keeps a structural fallback (guarded by the
   cached hash); all semantics are unchanged. *)

(* Full-width FNV-style mix: [Hashtbl.hash] only samples a prefix of the
   array, which collides badly on the long class maps of dk16/tbk. *)
let hash_class_map n cls =
  let h = ref (0x811c9dc5 + n) in
  for i = 0 to Array.length cls - 1 do
    h := ((!h lxor cls.(i)) * 0x01000193) land max_int
  done;
  !h

module Intern = Weak.Make (struct
  type nonrec t = t

  let equal a b = a.hcache = b.hcache && a.n = b.n && a.cls = b.cls
  let hash p = p.hcache
end)

let intern_table = Domain.DLS.new_key (fun () -> Intern.create 4096)

(* [cls] must already be canonical and must not be mutated afterwards. *)
let intern ~n ~count cls =
  let p = { n; cls; count; hcache = hash_class_map n cls } in
  Intern.merge (Domain.DLS.get intern_table) p

let size p = p.n

let num_classes p = p.count

let class_of p s = p.cls.(s)

let same p s t = p.cls.(s) = p.cls.(t)

let canonicalize cls =
  let n = Array.length cls in
  let remap = Hashtbl.create 16 in
  let out = Array.make n 0 in
  for s = 0 to n - 1 do
    out.(s) <-
      (match Hashtbl.find_opt remap cls.(s) with
      | Some id -> id
      | None ->
        let id = Hashtbl.length remap in
        Hashtbl.replace remap cls.(s) id;
        id)
  done;
  intern ~n ~count:(Hashtbl.length remap) out

let of_class_map cls =
  if Array.length cls = 0 then invalid_arg "Partition.of_class_map: empty";
  canonicalize cls

let class_map p = Array.copy p.cls

let identity n =
  if n <= 0 then invalid_arg "Partition.identity: n must be positive";
  intern ~n ~count:n (Array.init n (fun s -> s))

let universal n =
  if n <= 0 then invalid_arg "Partition.universal: n must be positive";
  intern ~n ~count:1 (Array.make n 0)

let is_identity p = p.count = p.n

let is_universal p = p.count = 1

let of_blocks ~n blocks =
  let cls = Array.make n (-1) in
  List.iteri
    (fun b block ->
      List.iter
        (fun s ->
          if s < 0 || s >= n then
            invalid_arg (Printf.sprintf "Partition.of_blocks: %d out of range" s);
          if cls.(s) >= 0 then
            invalid_arg (Printf.sprintf "Partition.of_blocks: %d in two blocks" s);
          cls.(s) <- b)
        block)
    blocks;
  let next = ref (List.length blocks) in
  for s = 0 to n - 1 do
    if cls.(s) < 0 then begin
      cls.(s) <- !next;
      incr next
    end
  done;
  canonicalize cls

let blocks p =
  let buckets = Array.make p.count [] in
  for s = p.n - 1 downto 0 do
    buckets.(p.cls.(s)) <- s :: buckets.(p.cls.(s))
  done;
  Array.to_list buckets

let pair_relation ~n s t =
  if s < 0 || s >= n || t < 0 || t >= n then
    invalid_arg "Partition.pair_relation: out of range";
  let cls = Array.init n (fun x -> x) in
  cls.(max s t) <- min s t;
  canonicalize cls

let meet p q =
  if p.n <> q.n then invalid_arg "Partition.meet: size mismatch";
  let table = Hashtbl.create 16 in
  let cls = Array.make p.n 0 in
  for s = 0 to p.n - 1 do
    let key = (p.cls.(s), q.cls.(s)) in
    cls.(s) <-
      (match Hashtbl.find_opt table key with
      | Some id -> id
      | None ->
        let id = Hashtbl.length table in
        Hashtbl.replace table key id;
        id)
  done;
  (* The (p-class, q-class) keying numbers classes by first occurrence, so
     [cls] is already canonical. *)
  intern ~n:p.n ~count:(Hashtbl.length table) cls

let join p q =
  if p.n <> q.n then invalid_arg "Partition.join: size mismatch";
  if p == q then p
  else begin
    let uf = Union_find.create p.n in
    let first_p = Array.make p.count (-1) and first_q = Array.make q.count (-1) in
    for s = 0 to p.n - 1 do
      let cp = p.cls.(s) and cq = q.cls.(s) in
      if first_p.(cp) < 0 then first_p.(cp) <- s
      else ignore (Union_find.union uf first_p.(cp) s);
      if first_q.(cq) < 0 then first_q.(cq) <- s
      else ignore (Union_find.union uf first_q.(cq) s)
    done;
    canonicalize (Union_find.class_map uf)
  end

let join_all ~n ps = List.fold_left join (identity n) ps

let subseteq p q =
  p.n = q.n
  && begin
    (* p refines q iff each p-class maps into a single q-class. *)
    let image = Array.make p.count (-1) in
    let ok = ref true in
    let s = ref 0 in
    while !ok && !s < p.n do
      let cp = p.cls.(!s) and cq = q.cls.(!s) in
      if image.(cp) < 0 then image.(cp) <- cq
      else if image.(cp) <> cq then ok := false;
      incr s
    done;
    !ok
  end

let equal p q =
  p == q || (p.hcache = q.hcache && p.n = q.n && p.cls = q.cls)

let compare p q =
  if p == q then 0
  else
    let c = Stdlib.compare p.n q.n in
    if c <> 0 then c else Stdlib.compare p.cls q.cls

let hash p = p.hcache

let representatives p =
  let reps = Array.make p.count (-1) in
  for s = p.n - 1 downto 0 do
    reps.(p.cls.(s)) <- s
  done;
  reps

let members p c =
  let rec go s acc =
    if s < 0 then acc else go (s - 1) (if p.cls.(s) = c then s :: acc else acc)
  in
  go (p.n - 1) []

let pp ppf p =
  List.iter
    (fun block ->
      Format.fprintf ppf "{%s}"
        (String.concat "," (List.map string_of_int block)))
    (blocks p)

let to_string p = Format.asprintf "%a" pp p
