(* Restricted growth strings: element 0 gets class 0; element s may take any
   class in [0 .. 1 + max of previous classes]. *)
let all n =
  if n < 1 || n > 12 then invalid_arg "Enumerate.all: n must be in [1,12]";
  let cls = Array.make n 0 in
  let acc = ref [] in
  let rec go s highest =
    if s = n then acc := Partition.of_class_map cls :: !acc
    else
      for c = 0 to highest + 1 do
        cls.(s) <- c;
        go (s + 1) (max highest c)
      done
  in
  cls.(0) <- 0;
  go 1 0;
  List.rev !acc

let bell n =
  (* Bell triangle. *)
  if n < 0 then invalid_arg "Enumerate.bell";
  if n = 0 then 1
  else begin
    let row = ref [| 1 |] in
    for _ = 2 to n do
      let prev = !row in
      let len = Array.length prev in
      let next = Array.make (len + 1) 0 in
      next.(0) <- prev.(len - 1);
      for k = 1 to len do
        next.(k) <- next.(k - 1) + prev.(k - 1)
      done;
      row := next
    done;
    let r = !row in
    r.(Array.length r - 1)
  end
