(* Restricted growth strings: element 0 gets class 0; element s may take any
   class in [0 .. 1 + max of previous classes]. *)

(* Streaming enumeration.  Each suspension carries its growth-string
   prefix as an immutable list, so the sequence is persistent (interior
   nodes can be re-forced or shared freely) and memory is O(n) per live
   suspension regardless of Bell(n); the ceiling only guards against
   unusable run times, not memory. *)
let partitions n =
  if n < 1 || n > 20 then invalid_arg "Enumerate.partitions: n must be in [1,20]";
  let rec go prefix s highest =
    if s = n then
      Seq.return (Partition.of_class_map (Array.of_list (List.rev prefix)))
    else
      fun () ->
        let rec branch c () =
          if c > highest + 1 then Seq.Nil
          else
            Seq.append
              (go (c :: prefix) (s + 1) (max highest c))
              (branch (c + 1))
              ()
        in
        branch 0 ()
  in
  go [ 0 ] 1 0

let all n =
  if n < 1 || n > 12 then invalid_arg "Enumerate.all: n must be in [1,12]";
  List.of_seq (partitions n)

let bell n =
  (* Bell triangle. *)
  if n < 0 then invalid_arg "Enumerate.bell";
  if n = 0 then 1
  else begin
    let row = ref [| 1 |] in
    for _ = 2 to n do
      let prev = !row in
      let len = Array.length prev in
      let next = Array.make (len + 1) 0 in
      next.(0) <- prev.(len - 1);
      for k = 1 to len do
        next.(k) <- next.(k - 1) + prev.(k - 1)
      done;
      row := next
    done;
    let r = !row in
    r.(Array.length r - 1)
  end
