(* Re-export so that [Stc_faultsim.Netlist] is the netlist type appearing
   in this library's interfaces. *)
include Stc_netlist.Netlist
