(** Self-test session simulation and single-stuck-at fault grading.

    A session applies a deterministic stimulus stream to a combinational
    netlist (the registers are part of the test equipment model: LFSRs
    generate, MISRs compress - see {!Arch}) and observes a set of nets.  A
    fault is detected when any observed net differs from the fault-free
    value in any cycle.

    Two deliberate modelling simplifications, both conservative:
    - compression aliasing is ignored (streams are compared directly, as
      if the MISR were ideal);
    - register contents are replayed from the fault-free run, so fault
      effects that would detour through a compressing register are not
      credited with extra detections. *)

type stimuli = int array array
(** [stimuli.(cycle).(k)] is the 0/1 value of netlist input [k]. *)

type report = {
  label : string;
  total : int;  (** faults simulated *)
  detected : int;
  coverage : float;  (** detected / total *)
  undetected : Netlist.fault list;
}

(** [run ~label netlist ~stimuli ~observed] grades every fault site of the
    netlist against the stimulus stream, observing the gates in
    [observed].  Patterns are packed {!Netlist.word_bits} per simulation
    word and faults are dropped at first detection. *)
val run :
  label:string -> Netlist.t -> stimuli:stimuli -> observed:int array -> report

(** [run_sessions ~label netlist sessions] grades the same fault universe
    against several sessions (e.g. the two sessions of fig. 4); a fault
    counts as detected when any session detects it. *)
val run_sessions :
  label:string ->
  Netlist.t ->
  (stimuli * int array) list ->
  report

(** [pack stimuli] transposes a cycle-major 0/1 matrix into word-parallel
    batches: one [int array] of input words per group of
    {!Netlist.word_bits} cycles. *)
val pack : stimuli -> int array list

(** [fault_on fault tags] finds the tag naming the fault's gate, if any;
    used to classify undetected faults (e.g. "feedback"). *)
val fault_on : Netlist.fault -> (string * int list) list -> string option
