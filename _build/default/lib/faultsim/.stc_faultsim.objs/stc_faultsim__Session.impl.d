lib/faultsim/session.ml: Array List Netlist
