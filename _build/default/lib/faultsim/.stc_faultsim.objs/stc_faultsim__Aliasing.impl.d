lib/faultsim/aliasing.ml: Arch Array List Netlist Stc_bist
