lib/faultsim/scan.ml: Arch Array Netlist Session Stc_bist Stc_encoding Stc_fsm
