lib/faultsim/arch.ml: Array Hashtbl List Netlist Option Printf Session Stc_bist Stc_encoding Stc_fsm Stc_logic
