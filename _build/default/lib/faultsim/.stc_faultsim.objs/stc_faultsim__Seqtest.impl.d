lib/faultsim/seqtest.ml: Arch Array Int64 List Netlist Stc_encoding Stc_fsm Stc_util
