lib/faultsim/arch.mli: Netlist Session Stc_encoding Stc_fsm
