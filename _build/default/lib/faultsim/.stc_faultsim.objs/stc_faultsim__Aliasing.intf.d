lib/faultsim/aliasing.mli: Arch
