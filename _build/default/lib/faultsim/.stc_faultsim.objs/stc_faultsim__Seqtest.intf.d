lib/faultsim/seqtest.mli: Netlist Stc_fsm
