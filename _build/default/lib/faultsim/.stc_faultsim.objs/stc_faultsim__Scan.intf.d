lib/faultsim/scan.mli: Session Stc_fsm
