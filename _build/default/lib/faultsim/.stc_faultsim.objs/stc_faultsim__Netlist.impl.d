lib/faultsim/netlist.ml: Stc_netlist
