lib/faultsim/session.mli: Netlist
