module Misr = Stc_bist.Misr

type report = {
  total : int;
  stream_detected : int;
  signature_detected : int;
  aliased : int;
  aliasing_rate : float;
  misr_width : int;
}

(* Observed gate values of one cycle, packed MSB-first into a word for the
   MISR (truncated to its width - wider observation buses fold, which only
   makes aliasing more likely, i.e. the measurement conservative). *)
let observe_word values observed ~width =
  let word = ref 0 in
  Array.iteri
    (fun k g ->
      if k < width then word := (!word lsl 1) lor (values.(g) land 1))
    observed;
  !word

let measure ?cycles (built : Arch.built) =
  let net = built.Arch.netlist in
  let sessions =
    List.map
      (fun (stimuli, observed) ->
        let stimuli =
          match cycles with
          | Some c when c < Array.length stimuli -> Array.sub stimuli 0 c
          | _ -> stimuli
        in
        (stimuli, observed))
      built.Arch.sessions
  in
  let width =
    List.fold_left
      (fun acc (_, observed) -> max acc (min 32 (Array.length observed)))
      1 sessions
  in
  (* Per fault and session: (stream differs, final signature). *)
  let run_session ?fault (stimuli, observed) =
    let misr = Misr.create ~width ~seed:0 () in
    let trace = Array.make (Array.length stimuli) 0 in
    Array.iteri
      (fun cycle vec ->
        let values = Netlist.eval ?fault net ~inputs:vec in
        let word = observe_word values observed ~width in
        trace.(cycle) <- word;
        ignore (Misr.absorb misr word))
      stimuli;
    (trace, Misr.signature misr)
  in
  let golden = List.map (fun session -> run_session session) sessions in
  let faults = Netlist.fault_sites net in
  let stream_detected = ref 0
  and signature_detected = ref 0
  and aliased = ref 0 in
  List.iter
    (fun fault ->
      let stream = ref false and signature = ref false in
      List.iter2
        (fun session (golden_trace, golden_sig) ->
          let trace, sig_ = run_session ~fault session in
          if trace <> golden_trace then stream := true;
          if sig_ <> golden_sig then signature := true)
        sessions golden;
      if !stream then incr stream_detected;
      if !signature then incr signature_detected;
      if !stream && not !signature then incr aliased)
    faults;
  {
    total = List.length faults;
    stream_detected = !stream_detected;
    signature_detected = !signature_detected;
    aliased = !aliased;
    aliasing_rate =
      (if !stream_detected = 0 then 0.0
       else float_of_int !aliased /. float_of_int !stream_detected);
    misr_width = width;
  }
