module Rng = Stc_util.Rng
module Tables = Stc_encoding.Tables

type result = {
  total : int;
  detected : int;
  coverage : float;
  detection_cycles : int array;
  cycles : int;
}

let lane_mask = (1 lsl Netlist.word_bits) - 1

(* Spread bit [k] (MSB first, width [w]) of [code] to all lanes. *)
let code_bit_word ~width code k =
  if code land (1 lsl (width - 1 - k)) <> 0 then lane_mask else 0

let run ?(seed = 20240705) ~cycles ~state_width ~reset_code (net : Netlist.t) =
  let num_inputs = Array.length net.Netlist.inputs in
  if num_inputs <= state_width then
    invalid_arg "Seqtest.run: netlist has no primary inputs beside the state";
  let primary = num_inputs - state_width in
  let num_outputs = Array.length net.Netlist.outputs in
  if num_outputs <= state_width then
    invalid_arg "Seqtest.run: netlist has no primary outputs beside next-state";
  let ns_gates =
    Array.init state_width (fun k -> snd net.Netlist.outputs.(k))
  in
  let po_gates =
    Array.init (num_outputs - state_width) (fun k ->
        snd net.Netlist.outputs.(state_width + k))
  in
  (* One independent random input stream per lane: pre-draw a word per
     primary input per cycle. *)
  let rng = Rng.create seed in
  let stimulus =
    Array.init cycles (fun _ ->
        Array.init primary (fun _ ->
            Int64.to_int (Int64.logand (Rng.bits64 rng) 0x3FFFFFFFFFFFFFFFL)
            land lane_mask))
  in
  let initial_state =
    Array.init state_width (code_bit_word ~width:state_width reset_code)
  in
  let simulate ?fault ~observe () =
    (* [observe cycle po_words] may stop the run by returning true. *)
    let state = Array.copy initial_state in
    let stopped = ref None in
    let cycle = ref 0 in
    while !stopped = None && !cycle < cycles do
      let inputs = Array.append stimulus.(!cycle) state in
      let values = Netlist.eval ?fault net ~inputs in
      let po = Array.map (fun g -> values.(g)) po_gates in
      if observe !cycle po then stopped := Some !cycle
      else begin
        Array.iteri (fun k g -> state.(k) <- values.(g) land lane_mask) ns_gates;
        incr cycle
      end
    done;
    !stopped
  in
  (* Golden primary-output trace. *)
  let golden = Array.make cycles [||] in
  ignore
    (simulate ~observe:(fun cycle po ->
         golden.(cycle) <- po;
         false)
       ());
  let faults = Netlist.fault_sites net in
  let detections = ref [] in
  let detected = ref 0 in
  List.iter
    (fun fault ->
      let hit =
        simulate ~fault
          ~observe:(fun cycle po ->
            let differs = ref false in
            Array.iteri
              (fun k v ->
                if (v lxor golden.(cycle).(k)) land lane_mask <> 0 then
                  differs := true)
              po;
            !differs)
          ()
      in
      match hit with
      | Some cycle ->
        incr detected;
        detections := cycle :: !detections
      | None -> ())
    faults;
  let detection_cycles = Array.of_list !detections in
  Array.sort compare detection_cycles;
  let total = List.length faults in
  {
    total;
    detected = !detected;
    coverage =
      (if total = 0 then 1.0 else float_of_int !detected /. float_of_int total);
    detection_cycles;
    cycles;
  }

let run_conventional ?seed ?(cycles = 2048) machine =
  let built = Arch.conventional machine in
  let enc = Tables.encode machine in
  let code = enc.Tables.state_code in
  run ?seed ~cycles ~state_width:code.Stc_encoding.Code.width
    ~reset_code:code.Stc_encoding.Code.codes.(machine.Stc_fsm.Machine.reset)
    built.Arch.netlist

let cycles_to_coverage result fraction =
  if result.detected = 0 then None
  else begin
    let index =
      min (result.detected - 1)
        (int_of_float (ceil (fraction *. float_of_int result.detected)) - 1)
    in
    let index = max 0 index in
    Some (result.detection_cycles.(index) + 1)
  end
