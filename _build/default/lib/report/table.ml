let render ~header rows =
  let num_cols =
    List.fold_left (fun acc row -> max acc (List.length row)) (List.length header) rows
  in
  let cell row k = match List.nth_opt row k with Some c -> c | None -> "" in
  let widths =
    Array.init num_cols (fun k ->
        List.fold_left
          (fun acc row -> max acc (String.length (cell row k)))
          (String.length (cell header k))
          rows)
  in
  let buf = Buffer.create 256 in
  let emit row =
    List.init num_cols (fun k -> Printf.sprintf "%-*s" widths.(k) (cell row k))
    |> String.concat "  "
    |> fun line ->
    Buffer.add_string buf (String.trim line |> fun l -> if l = "" then "" else line);
    Buffer.add_char buf '\n'
  in
  emit header;
  Buffer.add_string buf
    (String.concat "  "
       (List.init num_cols (fun k -> String.make widths.(k) '-')));
  Buffer.add_char buf '\n';
  List.iter emit rows;
  Buffer.contents buf
