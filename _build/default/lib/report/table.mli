(** Minimal ASCII table rendering for experiment reports. *)

(** [render ~header rows] lays out a left-aligned column table with a
    separator under the header.  Rows may be ragged; missing cells are
    blank. *)
val render : header:string list -> string list list -> string
