lib/report/table.mli:
