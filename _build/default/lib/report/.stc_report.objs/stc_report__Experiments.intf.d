lib/report/experiments.mli: Stc_benchmarks Stc_core Stc_fsm
