lib/report/experiments.ml: Array Float List Printf Stc_benchmarks Stc_core Stc_encoding Stc_faultsim Stc_fsm Stc_logic Stc_partition String Table
