module Cube = Stc_logic.Cube
module Cover = Stc_logic.Cover

type gate =
  | Input of string
  | Const of bool
  | Buf of int
  | Not of int
  | And of int array
  | Or of int array
  | Xor of int array
  | Mux of { sel : int; a : int; b : int }

type t = {
  name : string;
  gates : gate array;
  inputs : int array;
  outputs : (string * int) array;
}

let word_bits = 62

type fault = { gate : int; pin : int option; stuck_at : bool }

module Builder = struct
  type netlist = t

  type t = {
    name : string;
    mutable gates : gate array;
    mutable count : int;
    mutable input_ids : int list;
    mutable output_list : (string * int) list;
  }

  let create name =
    { name; gates = Array.make 64 (Const false); count = 0;
      input_ids = []; output_list = [] }

  let check b idx what =
    if idx < 0 || idx >= b.count then
      invalid_arg (Printf.sprintf "Netlist.Builder: %s refers to gate %d, have %d"
                     what idx b.count)

  let push b gate =
    if b.count = Array.length b.gates then begin
      let bigger = Array.make (2 * b.count) (Const false) in
      Array.blit b.gates 0 bigger 0 b.count;
      b.gates <- bigger
    end;
    b.gates.(b.count) <- gate;
    b.count <- b.count + 1;
    b.count - 1

  let input b name =
    let idx = push b (Input name) in
    b.input_ids <- idx :: b.input_ids;
    idx

  let const b v = push b (Const v)

  let buf b x =
    check b x "Buf";
    push b (Buf x)

  let not_ b x =
    check b x "Not";
    push b (Not x)

  let gate_of_list b what of_array = function
    | [] -> invalid_arg (Printf.sprintf "Netlist.Builder: empty %s" what)
    | [ x ] ->
      check b x what;
      push b (Buf x)
    | xs ->
      List.iter (fun x -> check b x what) xs;
      push b (of_array (Array.of_list xs))

  let and_ b xs = gate_of_list b "And" (fun a -> And a) xs

  let or_ b xs = gate_of_list b "Or" (fun a -> Or a) xs

  let xor_ b xs = gate_of_list b "Xor" (fun a -> Xor a) xs

  let mux b ~sel ~a ~b:b' =
    check b sel "Mux.sel";
    check b a "Mux.a";
    check b b' "Mux.b";
    push b (Mux { sel; a; b = b' })

  let output b name gate =
    check b gate "output";
    b.output_list <- (name, gate) :: b.output_list

  let emit_cover b ~inputs (cover : Cover.t) =
    if Array.length inputs <> cover.Cover.num_vars then
      invalid_arg "Netlist.Builder.emit_cover: input count mismatch";
    (* Shared input inverters, created on demand. *)
    let inverted = Array.make cover.Cover.num_vars (-1) in
    let inv k =
      if inverted.(k) < 0 then inverted.(k) <- not_ b inputs.(k);
      inverted.(k)
    in
    let term_of_cube cube =
      let literals = ref [] in
      Array.iteri
        (fun k trit ->
          match trit with
          | Cube.One -> literals := inputs.(k) :: !literals
          | Cube.Zero -> literals := inv k :: !literals
          | Cube.Dc -> ())
        cube.Cube.input;
      match !literals with
      | [] -> const b true
      | ls -> and_ b (List.rev ls)
    in
    let terms = List.map (fun cube -> (cube, term_of_cube cube)) cover.Cover.cubes in
    Array.init cover.Cover.num_outputs (fun o ->
        let fanin =
          List.filter_map
            (fun (cube, term) -> if cube.Cube.output.(o) then Some term else None)
            terms
        in
        match fanin with [] -> const b false | ls -> or_ b ls)

  let finish b : netlist =
    {
      name = b.name;
      gates = Array.sub b.gates 0 b.count;
      inputs = Array.of_list (List.rev b.input_ids);
      outputs = Array.of_list (List.rev b.output_list);
    }
end

let num_gates (net : t) = Array.length net.gates

type stats = { gates : int; literals : int; depth : int; inverters : int }

let stats (net : t) =
  let gates = ref 0 and literals = ref 0 and inverters = ref 0 in
  let level = Array.make (num_gates net) 0 in
  let depth = ref 0 in
  Array.iteri
    (fun idx gate ->
      let operands =
        match gate with
        | Input _ | Const _ -> [||]
        | Buf x | Not x -> [| x |]
        | And xs | Or xs | Xor xs -> xs
        | Mux { sel; a; b } -> [| sel; a; b |]
      in
      (match gate with
      | Input _ | Const _ -> ()
      | Not _ ->
        incr gates;
        incr inverters
      | Buf _ -> incr gates
      | And xs | Or xs | Xor xs ->
        incr gates;
        literals := !literals + Array.length xs
      | Mux _ ->
        incr gates;
        literals := !literals + 3);
      let lvl =
        Array.fold_left (fun acc x -> max acc (level.(x) + 1)) 0 operands
      in
      level.(idx) <- lvl;
      if lvl > !depth then depth := lvl)
    net.gates;
  { gates = !gates; literals = !literals; depth = !depth; inverters = !inverters }

let all_ones = -1

let eval ?fault (net : t) ~inputs =
  if Array.length inputs <> Array.length net.inputs then
    invalid_arg "Netlist.eval: input count mismatch";
  let values = Array.make (num_gates net) 0 in
  let next_input = ref 0 in
  let faulty_output, faulty_pin =
    match fault with
    | None -> (-1, (-1, -1, false))
    | Some { gate; pin = None; stuck_at } ->
      ((gate lsl 1) lor Bool.to_int stuck_at, (-1, -1, false))
    | Some { gate; pin = Some k; stuck_at } -> (-1, (gate, k, stuck_at))
  in
  let fgate, fpin, fstuck = faulty_pin in
  Array.iteri
    (fun idx gate ->
      let read k x =
        if idx = fgate && k = fpin then if fstuck then all_ones else 0
        else values.(x)
      in
      let v =
        match gate with
        | Input _ ->
          let v = inputs.(!next_input) in
          incr next_input;
          v
        | Const true -> all_ones
        | Const false -> 0
        | Buf x -> read 0 x
        | Not x -> lnot (read 0 x)
        | And xs ->
          let acc = ref all_ones in
          Array.iteri (fun k x -> acc := !acc land read k x) xs;
          !acc
        | Or xs ->
          let acc = ref 0 in
          Array.iteri (fun k x -> acc := !acc lor read k x) xs;
          !acc
        | Xor xs ->
          let acc = ref 0 in
          Array.iteri (fun k x -> acc := !acc lxor read k x) xs;
          !acc
        | Mux { sel; a; b } ->
          let s = read 0 sel in
          (lnot s land read 1 a) lor (s land read 2 b)
      in
      values.(idx) <-
        (if faulty_output = (idx lsl 1) lor 1 then all_ones
         else if faulty_output = idx lsl 1 then 0
         else v))
    net.gates;
  values

let eval_outputs ?fault (net : t) ~inputs =
  let values = eval ?fault net ~inputs in
  Array.map (fun (_, g) -> values.(g)) net.outputs

let fault_sites (net : t) =
  let sites = ref [] in
  let add gate pin =
    sites :=
      { gate; pin; stuck_at = true } :: { gate; pin; stuck_at = false } :: !sites
  in
  Array.iteri
    (fun idx gate ->
      match gate with
      | Const _ -> ()
      | Input _ -> add idx None
      | Buf _ | Not _ ->
        (* The input pin fault is equivalent to the driver's output fault
           (possibly inverted), which is already in the list. *)
        add idx None
      | And xs | Or xs | Xor xs ->
        add idx None;
        Array.iteri (fun k _ -> add idx (Some k)) xs
      | Mux _ ->
        add idx None;
        for k = 0 to 2 do
          add idx (Some k)
        done)
    net.gates;
  List.rev !sites

let pp ppf (net : t) =
  let open Format in
  fprintf ppf "@[<v>netlist %s: %d gates, %d inputs, %d outputs@," net.name
    (num_gates net) (Array.length net.inputs) (Array.length net.outputs);
  Array.iteri
    (fun idx gate ->
      let show =
        match gate with
        | Input n -> Printf.sprintf "input %s" n
        | Const v -> Printf.sprintf "const %b" v
        | Buf x -> Printf.sprintf "buf g%d" x
        | Not x -> Printf.sprintf "not g%d" x
        | And xs ->
          "and "
          ^ String.concat " " (Array.to_list (Array.map (Printf.sprintf "g%d") xs))
        | Or xs ->
          "or "
          ^ String.concat " " (Array.to_list (Array.map (Printf.sprintf "g%d") xs))
        | Xor xs ->
          "xor "
          ^ String.concat " " (Array.to_list (Array.map (Printf.sprintf "g%d") xs))
        | Mux { sel; a; b } -> Printf.sprintf "mux sel=g%d a=g%d b=g%d" sel a b
      in
      fprintf ppf "g%d: %s@," idx show)
    net.gates;
  Array.iter (fun (name, g) -> fprintf ppf "output %s = g%d@," name g) net.outputs;
  fprintf ppf "@]"
