lib/netlist/netlist.ml: Array Bool Format List Printf Stc_logic String
