lib/netlist/netlist.mli: Format Stc_logic
