(** Combinational gate-level netlists with bit-parallel simulation.

    Gates are stored in topological order (operands always refer to
    earlier gates - the builder enforces this), so evaluation is a single
    left-to-right pass.  Values are machine words: each of the low
    {!word_bits} bit lanes carries an independent test pattern, giving
    parallel-pattern evaluation for the fault simulator.

    Sequential elements are deliberately absent: in every BIST session of
    the paper's architectures the registers are driven by the test
    hardware (LFSR / MISR), so each clock cycle evaluates a pure
    combinational cone.  The register models live in [Stc_bist]. *)

type gate =
  | Input of string
  | Const of bool
  | Buf of int
  | Not of int
  | And of int array  (** >= 1 operand *)
  | Or of int array
  | Xor of int array
  | Mux of { sel : int; a : int; b : int }  (** [sel = 0 -> a, 1 -> b] *)

type t = private {
  name : string;
  gates : gate array;
  inputs : int array;  (** indices of the [Input] gates, in creation order *)
  outputs : (string * int) array;
}

(** Number of independent pattern lanes per simulation word. *)
val word_bits : int

(** A single stuck-at fault: on a gate's output ([pin = None]) or on one of
    its input pins ([pin = Some k], the [k]-th operand). *)
type fault = { gate : int; pin : int option; stuck_at : bool }

(** Imperative netlist construction. *)
module Builder : sig
  type netlist := t

  type t

  val create : string -> t

  (** Each constructor returns the index of the new gate.  Operand indices
      must refer to already-created gates.
      @raise Invalid_argument on forward references or empty operand
      lists. *)

  val input : t -> string -> int

  val const : t -> bool -> int

  val buf : t -> int -> int

  val not_ : t -> int -> int

  val and_ : t -> int list -> int

  val or_ : t -> int list -> int

  val xor_ : t -> int list -> int

  val mux : t -> sel:int -> a:int -> b:int -> int

  (** [output b name gate] registers a named primary output. *)
  val output : t -> string -> int -> unit

  (** [emit_cover b ~inputs cover] instantiates a two-level (AND-OR with
      input inverters) network for [cover]; [inputs] supplies the gate
      index of each cover variable.  Returns one gate index per cover
      output. *)
  val emit_cover : t -> inputs:int array -> Stc_logic.Cover.t -> int array

  val finish : t -> netlist
end

(** [num_gates n] counts all gates, inputs included. *)
val num_gates : t -> int

type stats = {
  gates : int;  (** logic gates (excluding inputs and constants) *)
  literals : int;  (** total fanin count of And/Or/Xor/Mux gates *)
  depth : int;  (** maximum logic depth from any input *)
  inverters : int;
}

val stats : t -> stats

(** [eval net ?fault ~inputs] evaluates all gates; [inputs] gives one word
    per [Input] gate (in creation order).  Returns the value of every
    gate.  With [fault], the corresponding stuck-at is injected.
    @raise Invalid_argument if [inputs] length mismatches. *)
val eval : ?fault:fault -> t -> inputs:int array -> int array

(** [eval_outputs net ?fault ~inputs] returns just the primary output
    words, in declaration order. *)
val eval_outputs : ?fault:fault -> t -> inputs:int array -> int array

(** [fault_sites net] enumerates all stuck-at faults: two per gate output
    and two per gate input pin, with trivial equivalences collapsed (a
    [Buf]/[Not] input fault is equivalent to the output fault of its
    driver; faults on [Input] outputs are kept, [Const] gates have
    none). *)
val fault_sites : t -> fault list

val pp : Format.formatter -> t -> unit
