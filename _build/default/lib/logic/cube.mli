(** Multi-output cubes in positional notation, the unit of two-level logic
    minimization.

    A cube over [n] input variables and [m] outputs has an input part
    (each variable is {!zero}, {!one} or {!dc}) and an output part (a bit
    per function: does this product term feed output [o]?).  A cube
    represents the set of minterms matching the input part, asserted for
    every output in the output part. *)

type trit = Zero | One | Dc

type t = {
  input : trit array;
  output : bool array;  (** at least one output must be set *)
}

(** [make ~input ~output] validates and builds a cube (copies its
    arguments).
    @raise Invalid_argument if [output] is all-false or empty. *)
val make : input:trit array -> output:bool array -> t

(** [of_string "1-0 10"] parses a PLA-style row: input characters [0 1 -],
    output characters [0 1] ([~] is accepted for 0). *)
val of_string : string -> t

val to_string : t -> string

(** [full ~num_vars ~num_outputs] is the universal cube: all inputs
    don't-care, all outputs asserted. *)
val full : num_vars:int -> num_outputs:int -> t

(** [minterm ~num_vars ~num_outputs value] is the cube of the single input
    minterm [value] (bit [num_vars-1] of [value] is variable 0), asserted
    for all outputs. *)
val minterm : num_vars:int -> num_outputs:int -> int -> t

val num_vars : t -> int

val num_outputs : t -> int

(** [matches c v] tests whether input minterm [v] lies in the cube. *)
val matches : t -> int -> bool

(** [literals c] counts the non-don't-care input positions. *)
val literals : t -> int

(** [input_size c] is the number of minterms covered ([2^dc_count]). *)
val input_size : t -> float

(** [contains a b] tests whether [a] covers [b] (input part covers and
    output part is a superset). *)
val contains : t -> t -> bool

(** [intersect a b] is the cube of minterms in both, asserted for outputs
    in both; [None] when empty. *)
val intersect : t -> t -> t option

(** [distance a b] is the number of input variables on which [a] and [b]
    have opposite fixed values; 0 means the input parts intersect. *)
val distance : t -> t -> int

(** [supercube a b] is the smallest cube containing both. *)
val supercube : t -> t -> t

(** [cofactor c ~wrt] is the Shannon cofactor of [c] with respect to cube
    [wrt] (input parts only; output part of [c] is restricted to outputs of
    [wrt]): [None] if [c] does not intersect [wrt]. *)
val cofactor : t -> wrt:t -> t option

(** [equal a b] structural equality. *)
val equal : t -> t -> bool

val compare : t -> t -> int
