type t = { num_vars : int; num_outputs : int; cubes : Cube.t list }

let make ~num_vars ~num_outputs cubes =
  List.iter
    (fun c ->
      if Cube.num_vars c <> num_vars || Cube.num_outputs c <> num_outputs then
        invalid_arg "Cover.make: cube dimension mismatch")
    cubes;
  { num_vars; num_outputs; cubes }

let empty ~num_vars ~num_outputs = { num_vars; num_outputs; cubes = [] }

let of_strings ~num_vars ~num_outputs rows =
  make ~num_vars ~num_outputs (List.map Cube.of_string rows)

let size c = List.length c.cubes

let cost c =
  let literals =
    List.fold_left
      (fun acc cube ->
        acc + Cube.literals cube
        + Array.fold_left (fun a b -> if b then a + 1 else a) 0 cube.Cube.output)
      0 c.cubes
  in
  (List.length c.cubes, literals)

let eval c v =
  let out = Array.make c.num_outputs false in
  List.iter
    (fun cube ->
      if Cube.matches cube v then
        Array.iteri (fun o b -> if b then out.(o) <- true) cube.Cube.output)
    c.cubes;
  out

let add c cube =
  if Cube.num_vars cube <> c.num_vars || Cube.num_outputs cube <> c.num_outputs
  then invalid_arg "Cover.add: dimension mismatch";
  { c with cubes = cube :: c.cubes }

let union a b =
  if a.num_vars <> b.num_vars || a.num_outputs <> b.num_outputs then
    invalid_arg "Cover.union: dimension mismatch";
  { a with cubes = a.cubes @ b.cubes }

let cofactor c ~wrt =
  { c with cubes = List.filter_map (fun cube -> Cube.cofactor cube ~wrt) c.cubes }

(* --------------------------------------------------------------------
   Single-output engine: rows are bare input parts (trit arrays).
   -------------------------------------------------------------------- *)

let row_all_dc row = Array.for_all (fun t -> t = Cube.Dc) row

let row_cofactor row k polarity =
  match (row.(k), polarity) with
  | Cube.Dc, _ ->
    Some row
  | Cube.One, true | Cube.Zero, false ->
    let r = Array.copy row in
    r.(k) <- Cube.Dc;
    Some r
  | Cube.One, false | Cube.Zero, true -> None

let rows_cofactor rows k polarity =
  List.filter_map (fun r -> row_cofactor r k polarity) rows

(* Pick the variable on which the rows are "most binate"; [None] when all
   rows are all-dc or the list is empty. *)
let select_var num_vars rows =
  let ones = Array.make num_vars 0 and zeros = Array.make num_vars 0 in
  List.iter
    (fun row ->
      Array.iteri
        (fun k t ->
          match t with
          | Cube.One -> ones.(k) <- ones.(k) + 1
          | Cube.Zero -> zeros.(k) <- zeros.(k) + 1
          | Cube.Dc -> ())
        row)
    rows;
  let best = ref None in
  for k = 0 to num_vars - 1 do
    if ones.(k) + zeros.(k) > 0 then begin
      let score = (min ones.(k) zeros.(k) * 10000) + ones.(k) + zeros.(k) in
      match !best with
      | Some (_, s) when s >= score -> ()
      | _ -> best := Some (k, score)
    end
  done;
  match !best with
  | Some (k, _) -> Some (k, ones.(k) > 0 && zeros.(k) > 0)
  | None -> None

let rec rows_tautology num_vars rows =
  if List.exists row_all_dc rows then true
  else
    match select_var num_vars rows with
    | None -> false (* empty, or no fixed literal and no all-dc row *)
    | Some (k, binate) ->
      if binate then
        rows_tautology num_vars (rows_cofactor rows k true)
        && rows_tautology num_vars (rows_cofactor rows k false)
      else begin
        (* Unate in k: the smaller cofactor implies the other. *)
        let polarity = List.exists (fun r -> r.(k) = Cube.Zero) rows in
        rows_tautology num_vars (rows_cofactor rows k polarity)
      end

let rec rows_complement num_vars rows =
  if List.exists row_all_dc rows then []
  else if rows = [] then [ Array.make num_vars Cube.Dc ]
  else
    match select_var num_vars rows with
    | None -> assert false (* nonempty with no all-dc row has a literal *)
    | Some (k, _) ->
      let branch polarity =
        let sub = rows_complement num_vars (rows_cofactor rows k polarity) in
        List.map
          (fun r ->
            let r = Array.copy r in
            r.(k) <- (if polarity then Cube.One else Cube.Zero);
            r)
          sub
      in
      branch true @ branch false

let rows_for_output c o =
  List.filter_map
    (fun cube -> if cube.Cube.output.(o) then Some cube.Cube.input else None)
    c.cubes

let covers_cube c cube =
  let cf = cofactor c ~wrt:cube in
  let ok = ref true in
  Array.iteri
    (fun o asserted ->
      if asserted && !ok then
        if not (rows_tautology c.num_vars (rows_for_output cf o)) then ok := false)
    cube.Cube.output;
  !ok

let tautology c =
  covers_cube c (Cube.full ~num_vars:c.num_vars ~num_outputs:c.num_outputs)

let covers a b = List.for_all (fun cube -> covers_cube a cube) b.cubes

let equivalent a b = covers a b && covers b a

let output_singleton num_outputs o =
  Array.init num_outputs (fun i -> i = o)

let complement c =
  let cubes = ref [] in
  for o = 0 to c.num_outputs - 1 do
    let comp = rows_complement c.num_vars (rows_for_output c o) in
    List.iter
      (fun input ->
        cubes :=
          Cube.make ~input ~output:(output_singleton c.num_outputs o) :: !cubes)
      comp
  done;
  { c with cubes = !cubes }

let sharp_cube cube c =
  let num_vars = Array.length cube.Cube.input in
  let num_outputs = Array.length cube.Cube.output in
  let cubes = ref [] in
  Array.iteri
    (fun o asserted ->
      if asserted then begin
        let comp = rows_complement num_vars (rows_for_output c o) in
        List.iter
          (fun input ->
            let candidate =
              Cube.make ~input ~output:(output_singleton num_outputs o)
            in
            match Cube.intersect cube candidate with
            | Some piece ->
              (* Restrict the piece to output o. *)
              let piece =
                Cube.make ~input:piece.Cube.input
                  ~output:(output_singleton num_outputs o)
              in
              cubes := piece :: !cubes
            | None -> ())
          comp
      end)
    cube.Cube.output;
  { num_vars; num_outputs; cubes = !cubes }

let single_cube_containment c =
  let rec keep acc = function
    | [] -> List.rev acc
    | cube :: rest ->
      let contained_elsewhere =
        List.exists (fun other -> Cube.contains other cube) rest
        || List.exists (fun other -> Cube.contains other cube) acc
      in
      if contained_elsewhere then keep acc rest else keep (cube :: acc) rest
  in
  { c with cubes = keep [] c.cubes }

let minterms c =
  if c.num_vars > 16 then invalid_arg "Cover.minterms: too many variables";
  let cubes = ref [] in
  for v = (1 lsl c.num_vars) - 1 downto 0 do
    let out = eval c v in
    if Array.exists Fun.id out then begin
      let m = Cube.minterm ~num_vars:c.num_vars ~num_outputs:c.num_outputs v in
      cubes := Cube.make ~input:m.Cube.input ~output:out :: !cubes
    end
  done;
  { c with cubes = !cubes }

let pp ppf c =
  Format.fprintf ppf "@[<v>";
  List.iter (fun cube -> Format.fprintf ppf "%s@," (Cube.to_string cube)) c.cubes;
  Format.fprintf ppf "@]"

let to_string c = Format.asprintf "%a" pp c
