lib/logic/minimize.ml: Array Cover Cube Int List
