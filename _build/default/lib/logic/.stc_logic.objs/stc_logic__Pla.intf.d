lib/logic/pla.mli: Cover
