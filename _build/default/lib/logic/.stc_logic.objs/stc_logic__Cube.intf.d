lib/logic/cube.mli:
