lib/logic/truth.mli: Cover
