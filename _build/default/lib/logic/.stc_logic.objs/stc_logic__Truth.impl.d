lib/logic/truth.ml: Array Cover
