lib/logic/pla.ml: Array Buffer Cover Cube Fun List Printf String
