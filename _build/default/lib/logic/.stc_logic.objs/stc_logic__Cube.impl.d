lib/logic/cube.ml: Array Float Fun Printf Stdlib String
