(** Espresso-style heuristic two-level minimization: EXPAND against the
    off-set, IRREDUNDANT, REDUCE, iterated until the cost stops improving.

    This is the "logic minimization" step of the conventional synthesis
    flow (fig. 1) and of the pipeline blocks C1/C2 (fig. 4); the area
    comparison of section 4 is made on the minimized covers. *)

type report = {
  initial_cubes : int;
  initial_literals : int;
  final_cubes : int;
  final_literals : int;
  iterations : int;
}

(** [minimize ?dc on] minimizes the on-set [on] using the optional
    don't-care set [dc].  The result covers every care on-set minterm
    (don't-cares take precedence on overlap), covers nothing outside
    on+dc, and is irredundant. *)
val minimize : ?dc:Cover.t -> Cover.t -> Cover.t * report

(** [expand ~off cover] raises each cube to a prime-ish cube: literals and
    outputs are lifted greedily as long as the cube stays disjoint from the
    off-set [off]; then single-cube containment cleans up. *)
val expand : off:Cover.t -> Cover.t -> Cover.t

(** [irredundant ?dc cover] greedily removes cubes covered by the rest of
    the cover (plus [dc]). *)
val irredundant : ?dc:Cover.t -> Cover.t -> Cover.t

(** [reduce ?dc cover] shrinks each cube to the supercube of the parts only
    it covers, enabling the next expansion to escape local minima.  Cubes
    that become empty are dropped. *)
val reduce : ?dc:Cover.t -> Cover.t -> Cover.t

(** [off_set ?dc on] is the complement of [on + dc]. *)
val off_set : ?dc:Cover.t -> Cover.t -> Cover.t

(** [verify ~on ?dc result] checks the minimization contract:
    [(on \ dc) <= result <= on + dc]. *)
val verify : on:Cover.t -> ?dc:Cover.t -> Cover.t -> bool

(** [is_irredundant ?dc cover] holds when no single cube can be dropped. *)
val is_irredundant : ?dc:Cover.t -> Cover.t -> bool
