(** Exhaustive truth-table oracle for small functions, used to cross-check
    the cube-based algorithms in tests and verification flows. *)

(** [table cover] evaluates every input minterm; [table cover].(v).(o) is
    output [o] on minterm [v].
    @raise Invalid_argument beyond 16 variables. *)
val table : Cover.t -> bool array array

(** [equivalent a b] compares two covers minterm by minterm. *)
val equivalent : Cover.t -> Cover.t -> bool

(** [equivalent_with_dc ~on ~dc result] checks the minimization contract
    [(on \ dc) <= result <= on + dc] minterm by minterm (don't-cares take
    precedence where the two sets overlap, as in espresso). *)
val equivalent_with_dc : on:Cover.t -> dc:Cover.t -> Cover.t -> bool

(** [count_ones cover o] counts the minterms asserting output [o]. *)
val count_ones : Cover.t -> int -> int
