type trit = Zero | One | Dc

type t = { input : trit array; output : bool array }

let make ~input ~output =
  if Array.length output = 0 then invalid_arg "Cube.make: no outputs";
  if not (Array.exists Fun.id output) then
    invalid_arg "Cube.make: output part is empty";
  { input = Array.copy input; output = Array.copy output }

let of_string s =
  match String.split_on_char ' ' (String.trim s) with
  | [ inp; out ] ->
    let input =
      Array.init (String.length inp) (fun k ->
          match inp.[k] with
          | '0' -> Zero
          | '1' -> One
          | '-' | '2' -> Dc
          | c -> invalid_arg (Printf.sprintf "Cube.of_string: input char %C" c))
    in
    let output =
      Array.init (String.length out) (fun k ->
          match out.[k] with
          | '1' | '4' -> true
          | '0' | '~' | '-' -> false
          | c -> invalid_arg (Printf.sprintf "Cube.of_string: output char %C" c))
    in
    make ~input ~output
  | _ -> invalid_arg "Cube.of_string: expected \"<inputs> <outputs>\""

let to_string c =
  let inp =
    String.init (Array.length c.input) (fun k ->
        match c.input.(k) with Zero -> '0' | One -> '1' | Dc -> '-')
  in
  let out =
    String.init (Array.length c.output) (fun k ->
        if c.output.(k) then '1' else '0')
  in
  inp ^ " " ^ out

let full ~num_vars ~num_outputs =
  { input = Array.make num_vars Dc; output = Array.make num_outputs true }

let minterm ~num_vars ~num_outputs value =
  let input =
    Array.init num_vars (fun k ->
        if value land (1 lsl (num_vars - 1 - k)) <> 0 then One else Zero)
  in
  { input; output = Array.make num_outputs true }

let num_vars c = Array.length c.input

let num_outputs c = Array.length c.output

let matches c v =
  let n = Array.length c.input in
  let ok = ref true in
  for k = 0 to n - 1 do
    let bit = v land (1 lsl (n - 1 - k)) <> 0 in
    match c.input.(k) with
    | Dc -> ()
    | One -> if not bit then ok := false
    | Zero -> if bit then ok := false
  done;
  !ok

let literals c =
  Array.fold_left (fun acc t -> if t = Dc then acc else acc + 1) 0 c.input

let input_size c =
  Float.pow 2.0 (float_of_int (Array.length c.input - literals c))

let contains a b =
  Array.length a.input = Array.length b.input
  && Array.length a.output = Array.length b.output
  && (let ok = ref true in
      Array.iteri
        (fun k ta -> match (ta, b.input.(k)) with
          | Dc, _ -> ()
          | One, One | Zero, Zero -> ()
          | One, (Zero | Dc) | Zero, (One | Dc) -> ok := false)
        a.input;
      !ok)
  && (let ok = ref true in
      Array.iteri (fun o bo -> if bo && not a.output.(o) then ok := false) b.output;
      !ok)

let intersect a b =
  let n = Array.length a.input in
  let input = Array.make n Dc in
  let ok = ref true in
  for k = 0 to n - 1 do
    match (a.input.(k), b.input.(k)) with
    | Dc, t | t, Dc -> input.(k) <- t
    | One, One -> input.(k) <- One
    | Zero, Zero -> input.(k) <- Zero
    | One, Zero | Zero, One -> ok := false
  done;
  let output = Array.mapi (fun o bo -> bo && b.output.(o)) a.output in
  if !ok && Array.exists Fun.id output then Some { input; output } else None

let distance a b =
  let d = ref 0 in
  Array.iteri
    (fun k ta ->
      match (ta, b.input.(k)) with
      | One, Zero | Zero, One -> incr d
      | _ -> ())
    a.input;
  !d

let supercube a b =
  let input =
    Array.mapi
      (fun k ta ->
        match (ta, b.input.(k)) with
        | One, One -> One
        | Zero, Zero -> Zero
        | _ -> Dc)
      a.input
  in
  let output = Array.mapi (fun o bo -> bo || b.output.(o)) a.output in
  { input; output }

let cofactor c ~wrt =
  if distance c wrt > 0 then None
  else begin
    let input =
      Array.mapi (fun k t -> if wrt.input.(k) = Dc then t else Dc) c.input
    in
    let output = Array.mapi (fun o bo -> bo && wrt.output.(o)) c.output in
    if Array.exists Fun.id output then Some { input; output } else None
  end

let equal a b = a.input = b.input && a.output = b.output

let compare a b = Stdlib.compare (a.input, a.output) (b.input, b.output)
