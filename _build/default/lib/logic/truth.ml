let table cover =
  let n = cover.Cover.num_vars in
  if n > 16 then invalid_arg "Truth.table: too many variables";
  Array.init (1 lsl n) (fun v -> Cover.eval cover v)

let equivalent a b =
  a.Cover.num_vars = b.Cover.num_vars
  && a.Cover.num_outputs = b.Cover.num_outputs
  && table a = table b

let equivalent_with_dc ~on ~dc result =
  let n = on.Cover.num_vars in
  if n > 16 then invalid_arg "Truth.equivalent_with_dc: too many variables";
  let ok = ref true in
  for v = 0 to (1 lsl n) - 1 do
    let want = Cover.eval on v
    and care = Cover.eval dc v
    and got = Cover.eval result v in
    Array.iteri
      (fun o w ->
        if w && (not care.(o)) && not got.(o) then ok := false;
        if got.(o) && (not w) && not care.(o) then ok := false)
      want
  done;
  !ok

let count_ones cover o =
  let t = table cover in
  Array.fold_left (fun acc row -> if row.(o) then acc + 1 else acc) 0 t
