(** Berkeley PLA text format (the espresso interchange format).

    Supports types [f] (on-set only) and [fd] (on-set + don't-care set):
    output column characters [1] (on), [0]/[~] (off), [-] (don't care). *)

type file = {
  name : string option;
  on : Cover.t;
  dc : Cover.t;  (** empty for type [f] *)
}

exception Parse_error of string

(** [parse text] reads a PLA description.
    @raise Parse_error on malformed input. *)
val parse : string -> file

(** [print ?dc on] renders a PLA of type [fd] (or [f] when [dc] is absent
    or empty). *)
val print : ?name:string -> ?dc:Cover.t -> Cover.t -> string
