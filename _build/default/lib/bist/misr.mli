(** Multiple-input signature registers: the response-compression mode of a
    self-test register.  Each clock the register shifts (with the LFSR
    feedback) and XORs one parallel input word into its stages. *)

type t

(** [create ?polynomial ~width ~seed ()] - like {!Lfsr.create} but a zero
    seed is allowed (signature registers commonly start at 0). *)
val create : ?polynomial:int -> width:int -> seed:int -> unit -> t

val width : t -> int

(** [signature m] is the current register contents. *)
val signature : t -> int

(** [absorb m word] clocks the register once with parallel input [word]
    (masked to the width); returns the new signature. *)
val absorb : t -> int -> int

(** [absorb_all m words] clocks once per word and returns the final
    signature. *)
val absorb_all : t -> int array -> int

(** [reset m seed] restarts the register. *)
val reset : t -> int -> unit
