lib/bist/misr.ml: Array Lfsr
