lib/bist/bilbo.ml: Bool Lfsr
