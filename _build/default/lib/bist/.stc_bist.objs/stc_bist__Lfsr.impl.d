lib/bist/lfsr.ml: Array
