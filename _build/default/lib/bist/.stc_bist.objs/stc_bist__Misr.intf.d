lib/bist/misr.mli:
