lib/bist/lfsr.mli:
