lib/bist/bilbo.mli:
