(** BILBO - built-in logic block observation register (Koenemann, Mucha &
    Zwiehoff 1979), the classical multifunctional test register the paper's
    introduction builds on.  One register implements four modes selected by
    two control bits:

    - {b System}: an ordinary parallel-load register;
    - {b Scan}: a serial shift path;
    - {b Pattern_gen}: autonomous LFSR (inputs ignored);
    - {b Signature}: MISR compressing the parallel inputs.

    In the paper's fig. 4 architecture, R1 and R2 are registers of this
    kind: during session 1 one works in [Pattern_gen] and the other in
    [Signature]; during session 2 the roles swap; in normal operation both
    are in [System] mode. *)

type mode = System | Scan | Pattern_gen | Signature

type t

val create : ?polynomial:int -> width:int -> unit -> t

val width : t -> int

val mode : t -> mode

val set_mode : t -> mode -> unit

val state : t -> int

(** [load t word] forces the register contents (e.g. system reset). *)
val load : t -> int -> unit

(** [clock t ~parallel ~serial] advances one cycle: [parallel] is the word
    at the D inputs (used in System and Signature modes), [serial] the scan
    input bit (Scan mode).  Returns the new contents. *)
val clock : t -> parallel:int -> serial:bool -> int

(** [scan_out t] is the serial output (LSB stage). *)
val scan_out : t -> bool
