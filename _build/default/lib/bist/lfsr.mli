(** Linear feedback shift registers for built-in test pattern generation.

    A width-[w] Fibonacci LFSR with a primitive feedback polynomial cycles
    through all [2^w - 1] non-zero states, providing the pseudo-random
    patterns the paper's registers generate during a self-test session. *)

type t

(** [primitive_polynomial w] is a known primitive polynomial of degree [w]
    as a tap mask: bit [k] is the coefficient of [x^k]; the leading [x^w]
    term is implicit.  Available for [1 <= w <= 32]. *)
val primitive_polynomial : int -> int

(** [create ?polynomial ~width ~seed ()] builds an LFSR.  [seed] must be
    non-zero modulo [2^width] (it is masked to the width); [polynomial]
    defaults to {!primitive_polynomial}. *)
val create : ?polynomial:int -> width:int -> seed:int -> unit -> t

val width : t -> int

(** [state l] is the current register contents. *)
val state : t -> int

(** [step l] advances one clock and returns the new state. *)
val step : t -> int

(** [next_pattern l] returns the current state, then advances - the usual
    "one pattern per clock" usage. *)
val next_pattern : t -> int

(** [sequence l n] returns the next [n] patterns (advancing [n] times). *)
val sequence : t -> int -> int array

(** [period l] steps until the initial state recurs and returns the count;
    [2^width - 1] for a primitive polynomial.  Intended for small
    widths. *)
val period : t -> int

(** [bit l k] is bit [k] of the current state ([k = 0] is the LSB). *)
val bit : t -> int -> bool
