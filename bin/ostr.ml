(* ostr - synthesis of self-testable controllers (Hellebrand & Wunderlich,
   ED&TC 1994).  Command-line driver around the stc_* libraries. *)

module Machine = Stc_fsm.Machine
module Kiss = Stc_fsm.Kiss
module Reach = Stc_fsm.Reach
module Equiv = Stc_fsm.Equiv
module Dot = Stc_fsm.Dot
module Ostr_core = Stc_core.Ostr
module Solver = Stc_core.Solver
module Anytime = Stc_core.Anytime
module Realization = Stc_core.Realization
module Partition = Stc_partition.Partition
module Tables = Stc_encoding.Tables
module Minimize = Stc_logic.Minimize
module Pla = Stc_logic.Pla
module Suite = Stc_benchmarks.Suite
module Experiments = Stc_report.Experiments
module Arch = Stc_faultsim.Arch
module Session = Stc_faultsim.Session
module Trace = Stc_obs.Trace
module Metrics = Stc_obs.Metrics
module Progress = Stc_obs.Progress
module Profile = Stc_obs.Profile
module Json = Stc_obs.Json
module Lint = Stc_analysis.Lint
module Verify = Stc_analysis.Verify
module Context = Stc_analysis.Context
module Diagnostic = Stc_analysis.Diagnostic
module Pass = Stc_analysis.Pass

open Cmdliner

(* ------------------------------------------------------------------ *)
(* Machine resolution: benchmark/zoo name or KISS2 file path           *)
(* ------------------------------------------------------------------ *)

let load_machine spec =
  if Sys.file_exists spec then Ok (Kiss.parse_file spec)
  else
    match Experiments.machine_named spec with
    | Some m -> Ok m
    | None -> (
      match Stc_fsm.Generate.of_spec spec with
      | Some m -> Ok m
      | None ->
        Error
          (Printf.sprintf
             "%S is neither a file, a known machine (benchmarks: %s), nor a \
              generator spec (random:<n>x<k>[@seed], planted:<n>x<k>[@seed])"
             spec
             (String.concat ", " Suite.names)))

let machine_arg =
  let doc =
    "Machine to process: a KISS2 file path, a benchmark name (bbara, ..., \
     tbk) or a zoo name (fig5, shiftreg4, serial_adder, counter8, toggle, \
     parity)."
  in
  Arg.(required & pos 0 (some string) None & info [] ~docv:"MACHINE" ~doc)

let timeout_arg =
  let doc = "Wall-clock limit for the OSTR search, in seconds." in
  Arg.(value & opt float 120.0 & info [ "timeout" ] ~docv:"SECONDS" ~doc)

let jobs_arg =
  let doc =
    "Domains to fan the work over - the OSTR search, or the collapsed \
     fault list when fault-grading (default 1: deterministic sequential \
     run; 0 means one per core)."
  in
  Arg.(value & opt int 1 & info [ "j"; "jobs" ] ~docv:"N" ~doc)

let resolve_jobs jobs =
  if jobs <= 0 then Domain.recommended_domain_count () else jobs

let names_arg =
  let doc = "Comma-separated machine names (default: the usual set)." in
  Arg.(value & opt (some string) None & info [ "names" ] ~docv:"NAMES" ~doc)

let split_names = Option.map (String.split_on_char ',')

let or_die = function
  | Ok v -> v
  | Error msg ->
    prerr_endline ("ostr: " ^ msg);
    exit 1

(* ------------------------------------------------------------------ *)
(* Observability: --trace / --metrics / --progress / --profile         *)
(* ------------------------------------------------------------------ *)

type obs = {
  trace : string option;
  metrics : string option;
  progress : bool;
  profile : string option;
}

let obs_term =
  let trace =
    let doc =
      "Write a span trace to $(docv): Chrome trace_event JSON (loadable in \
       Perfetto / chrome://tracing), or JSONL when $(docv) ends in .jsonl."
    in
    Arg.(value & opt (some string) None & info [ "trace" ] ~docv:"FILE" ~doc)
  in
  let metrics =
    let doc =
      "Write a JSON metrics snapshot (counters, gauges, histograms) to \
       $(docv) when the command finishes."
    in
    Arg.(value & opt (some string) None & info [ "metrics" ] ~docv:"FILE" ~doc)
  in
  let progress =
    let doc =
      "Periodically report search progress (nodes/sec, incumbent cost, \
       memo-hit and dedupe rates, per-domain queue depth) on stderr."
    in
    Arg.(value & flag & info [ "progress" ] ~doc)
  in
  let profile =
    let doc =
      "Sample every domain's span stack while the command runs and write \
       folded stacks (flamegraph.pl / speedscope format) to $(docv)."
    in
    Arg.(value & opt (some string) None & info [ "profile" ] ~docv:"FILE" ~doc)
  in
  Term.(
    const (fun trace metrics progress profile ->
        { trace; metrics; progress; profile })
    $ trace $ metrics $ progress $ profile)

(* Enable the requested observability sinks around [f], and flush them
   even when [f] dies - a trace of a crashed run is the useful one. *)
let with_obs obs f =
  if obs.trace <> None then Trace.set_enabled true;
  if obs.metrics <> None then Metrics.set_enabled true;
  if obs.progress then Progress.set_enabled true;
  Trace.reset ();
  Metrics.reset ();
  Option.iter (fun _ -> Profile.start ()) obs.profile;
  Fun.protect
    ~finally:(fun () ->
      Option.iter
        (fun path ->
          if Profile.running () then begin
            let report = Profile.stop () in
            Profile.write_folded path report;
            Format.eprintf "wrote profile %s (%d samples at %d Hz)@." path
              report.Stc_obs.Profile.samples report.Stc_obs.Profile.hz
          end)
        obs.profile;
      Option.iter
        (fun path ->
          Trace.write path;
          Format.eprintf "wrote trace %s (%d events)@." path
            (List.length (Trace.events ())))
        obs.trace;
      Option.iter
        (fun path ->
          Metrics.write path;
          Format.eprintf "wrote metrics %s@." path)
        obs.metrics)
    f

(* ------------------------------------------------------------------ *)
(* info                                                                *)
(* ------------------------------------------------------------------ *)

let info_cmd =
  let run spec obs =
    let m = or_die (load_machine spec) in
    with_obs obs @@ fun () ->
    Format.printf "%a@." Machine.pp m;
    Format.printf "states: %d, inputs: %d, outputs: %d@." m.Machine.num_states
      m.Machine.num_inputs m.Machine.num_outputs;
    Format.printf "connected: %b, strongly connected: %b, reduced: %b@."
      (Reach.is_connected m)
      (Reach.is_strongly_connected m)
      (Equiv.is_reduced m);
    Format.printf "equivalence classes: %d@." (Equiv.num_classes m);
    Format.printf "conventional BIST flip-flops: %d@."
      (Machine.flipflops_conventional m)
  in
  Cmd.v
    (Cmd.info "info" ~doc:"Print a machine's transition table and statistics.")
    Term.(const run $ machine_arg $ obs_term)

(* ------------------------------------------------------------------ *)
(* minimize                                                            *)
(* ------------------------------------------------------------------ *)

let minimize_cmd =
  let run spec obs =
    let m = or_die (load_machine spec) in
    with_obs obs @@ fun () ->
    let reduced = Equiv.minimize (Reach.trim m) in
    print_string (Kiss.print reduced)
  in
  Cmd.v
    (Cmd.info "minimize"
       ~doc:"Trim unreachable states, merge equivalent states, emit KISS2.")
    Term.(const run $ machine_arg $ obs_term)

(* ------------------------------------------------------------------ *)
(* solve                                                               *)
(* ------------------------------------------------------------------ *)

(* Shared by [ostr anytime] and [ostr solve --anytime]. *)
let print_anytime_result (m : Machine.t) verbose (r : Anytime.result) =
  let open Anytime in
  let best = r.best in
  Format.printf "tier: %a@." pp_tier r.stats.tier;
  Option.iter
    (fun (e : Solver.stats) ->
      Format.printf "exact tier: %d nodes investigated in %.2f s%s@."
        e.Solver.investigated e.Solver.elapsed
        (if e.Solver.timed_out then " (budget hit, handed off)" else ""))
    r.stats.exact;
  (match r.stats.tier with
  | Exact -> ()
  | Stochastic _ ->
    Format.printf
      "stochastic tier: %d rounds, %d evals (%d feasible), %d SA acceptances, \
       rng fingerprint %016x@."
      r.stats.rounds r.stats.evals r.stats.feasible r.stats.sa_accepted
      r.stats.rng_fingerprint;
    List.iter
      (fun p ->
        Format.printf "  round %-4d evals %-7d %6.2f s  %d bits@." p.round
          p.evals p.elapsed p.cost.Solver.bits)
      r.stats.trajectory);
  Format.printf
    "best: %d bits (factors %d x %d states; conventional doubling needs %d \
     bits)@."
    best.Solver.cost.Solver.bits
    (Partition.num_classes best.Solver.pi)
    (Partition.num_classes best.Solver.rho)
    (2 * Machine.bits_for m.Machine.num_states);
  Format.printf "elapsed: %.2f s%s@." r.stats.elapsed
    (if r.stats.timed_out then " (wall budget hit)" else "");
  if verbose || m.Machine.num_states <= 64 then begin
    Format.printf "pi  (S1): %s@." (Partition.to_string best.Solver.pi);
    Format.printf "rho (S2): %s@." (Partition.to_string best.Solver.rho)
  end

let solve_cmd =
  let run spec timeout jobs anytime verbose obs =
    let m = or_die (load_machine spec) in
    with_obs obs @@ fun () ->
    if anytime then
      let config =
        { Anytime.default_config with budget = timeout;
          jobs = resolve_jobs jobs }
      in
      print_anytime_result m verbose (Anytime.solve ~config m)
    else begin
      let outcome = Ostr_core.run ~timeout ~jobs:(resolve_jobs jobs) m in
      Format.printf "%a@." Ostr_core.pp_summary outcome;
      Format.printf "pi  (S1): %s@." (Partition.to_string outcome.Ostr_core.solution.Solver.pi);
      Format.printf "rho (S2): %s@." (Partition.to_string outcome.Ostr_core.solution.Solver.rho);
      if verbose then begin
        Format.printf "%a@." Realization.pp_factors outcome.Ostr_core.realization;
        Format.printf "product machine:@.%a@." Machine.pp
          outcome.Ostr_core.realization.Realization.product
      end
    end
  in
  let verbose =
    Arg.(value & flag & info [ "v"; "verbose" ] ~doc:"Also print the factor tables.")
  in
  let anytime =
    Arg.(
      value & flag
      & info [ "anytime" ]
          ~doc:
            "Use the anytime driver: exact search under a budget, stochastic \
             tier on hand-off (see the $(b,anytime) command).")
  in
  Cmd.v
    (Cmd.info "solve"
       ~doc:"Solve problem OSTR: find the optimal self-testable realization.")
    Term.(
      const run $ machine_arg $ timeout_arg $ jobs_arg $ anytime $ verbose
      $ obs_term)

(* ------------------------------------------------------------------ *)
(* anytime                                                             *)
(* ------------------------------------------------------------------ *)

let anytime_cmd =
  let run spec budget seed jobs evals beam moves split_ratio sa_steps force
      full_eval verbose obs =
    let m = or_die (load_machine spec) in
    with_obs obs @@ fun () ->
    let config =
      {
        Anytime.default_config with
        seed;
        budget;
        jobs = resolve_jobs jobs;
        max_evals = evals;
        beam_width = beam;
        moves_per_candidate = moves;
        split_ratio;
        sa_steps;
        incremental = not full_eval;
      }
    in
    print_anytime_result m verbose (Anytime.solve ~config ~force m)
  in
  let budget =
    Arg.(
      value & opt float 60.0
      & info [ "budget" ] ~docv:"SECONDS"
          ~doc:
            "Wall-clock budget: the exact tier gets half, the stochastic \
             tier the rest.  Deterministic eval/round caps are the primary \
             stops; the budget is a safety net.")
  in
  let seed =
    Arg.(
      value & opt int 1
      & info [ "seed" ] ~docv:"N"
          ~doc:
            "Master RNG seed.  Equal seeds give bit-identical results at any \
             $(b,--jobs) value.")
  in
  let evals =
    Arg.(
      value
      & opt int Anytime.default_config.Anytime.max_evals
      & info [ "evals" ] ~docv:"N"
          ~doc:"Total proposal budget (beam + annealing).")
  in
  let beam =
    Arg.(
      value
      & opt int Anytime.default_config.Anytime.beam_width
      & info [ "beam" ] ~docv:"N" ~doc:"Beam width (survivors per round).")
  in
  let moves =
    Arg.(
      value
      & opt int Anytime.default_config.Anytime.moves_per_candidate
      & info [ "moves" ] ~docv:"N"
          ~doc:"Proposals per beam survivor per round.")
  in
  let split_ratio =
    Arg.(
      value
      & opt int Anytime.default_config.Anytime.split_ratio
      & info [ "split-ratio" ] ~docv:"N"
          ~doc:
            "1 in $(docv) proposals is a singleton split, the rest are block \
             merges; 0 disables splits.  Changing it changes the consumed \
             RNG streams (and so the fingerprint).")
  in
  let sa_steps =
    Arg.(
      value
      & opt int Anytime.default_config.Anytime.sa_steps
      & info [ "sa-steps" ] ~docv:"N"
          ~doc:"Metropolis steps per annealing chain.")
  in
  let full_eval =
    Arg.(
      value & flag
      & info [ "full-eval" ]
          ~doc:
            "Evaluate every proposal with the full-recompute closure instead \
             of the incremental delta engine.  Results are bit-identical; \
             this is the equivalence oracle and the slow baseline for \
             benchmarks.")
  in
  let force =
    Arg.(
      value & flag
      & info [ "force-stochastic" ]
          ~doc:"Skip the exact tier even when the machine is small.")
  in
  let verbose =
    Arg.(
      value & flag
      & info [ "v"; "verbose" ]
          ~doc:"Print the factor partitions even for large machines.")
  in
  Cmd.v
    (Cmd.info "anytime"
       ~doc:
         "Anytime OSTR search: exact DFS under a budget, then seeded beam \
          search + simulated annealing over partition pairs.  Scales to \
          10^3-10^4-state machines (try planted:1024x4@1)."
       ~man:
         [
           `S Manpage.s_description;
           `P
             "Runs the exact Mm-lattice search under a node/wall budget and \
              hands off to a stochastic tier when the budget fires (or \
              immediately, for machines whose basis would be too large to \
              build).  The stochastic tier is a seeded beam search over \
              partition-pair merges/splits closed to symmetric pairs, with \
              the fused meet-subseteq admissibility kernel as the \
              feasibility gate, followed by simulated-annealing polish.  \
              Results are reproducible: equal seeds give bit-identical \
              output at any --jobs value.";
         ])
    Term.(
      const run $ machine_arg $ budget $ seed $ jobs_arg $ evals $ beam
      $ moves $ split_ratio $ sa_steps $ force $ full_eval $ verbose
      $ obs_term)

(* ------------------------------------------------------------------ *)
(* realize                                                             *)
(* ------------------------------------------------------------------ *)

let realize_cmd =
  let run spec timeout out_dir obs =
    let m = or_die (load_machine spec) in
    with_obs obs @@ fun () ->
    let outcome = Ostr_core.run ~timeout m in
    let p = Tables.pipeline outcome.Ostr_core.realization in
    let write name text =
      let path = Filename.concat out_dir name in
      let oc = open_out path in
      output_string oc text;
      close_out oc;
      Format.printf "wrote %s@." path
    in
    if not (Sys.file_exists out_dir) then Sys.mkdir out_dir 0o755;
    write (m.Machine.name ^ "_pipeline.kiss")
      (Kiss.print outcome.Ostr_core.realization.Realization.product);
    let minimized_pla label on dc =
      let cover, report = Minimize.minimize ~dc on in
      Format.printf "%s: %d cubes, %d literals (from %d/%d)@." label
        report.Minimize.final_cubes report.Minimize.final_literals
        report.Minimize.initial_cubes report.Minimize.initial_literals;
      Pla.print ~name:label cover
    in
    write (m.Machine.name ^ "_c1.pla")
      (minimized_pla "c1" p.Tables.c1_on p.Tables.c1_dc);
    write (m.Machine.name ^ "_c2.pla")
      (minimized_pla "c2" p.Tables.c2_on p.Tables.c2_dc);
    write (m.Machine.name ^ "_lambda.pla")
      (minimized_pla "lambda" p.Tables.lambda_on p.Tables.lambda_dc)
  in
  let out_dir =
    Arg.(value & opt string "." & info [ "o"; "output" ] ~docv:"DIR"
           ~doc:"Output directory.")
  in
  Cmd.v
    (Cmd.info "realize"
       ~doc:
         "Synthesize the fig. 4 pipeline realization: product machine as \
          KISS2 plus minimized PLAs for C1, C2 and the output block.")
    Term.(const run $ machine_arg $ timeout_arg $ out_dir $ obs_term)

(* ------------------------------------------------------------------ *)
(* dot                                                                 *)
(* ------------------------------------------------------------------ *)

let dot_cmd =
  let run spec clusters timeout obs =
    let m = or_die (load_machine spec) in
    with_obs obs @@ fun () ->
    if clusters then begin
      let outcome = Ostr_core.run ~timeout m in
      let pi = outcome.Ostr_core.solution.Solver.pi in
      print_string (Dot.render ~pi_classes:(Partition.class_map pi) m)
    end
    else print_string (Dot.render m)
  in
  let clusters =
    Arg.(value & flag
         & info [ "clusters" ]
             ~doc:"Group states by the S1 classes of the OSTR optimum.")
  in
  Cmd.v
    (Cmd.info "dot" ~doc:"Emit the machine as a Graphviz digraph.")
    Term.(const run $ machine_arg $ clusters $ timeout_arg $ obs_term)

(* ------------------------------------------------------------------ *)
(* table1 / table2 / area / faultcov                                   *)
(* ------------------------------------------------------------------ *)

let table1_cmd =
  let run timeout jobs names obs =
    with_obs obs @@ fun () ->
    let entries =
      Experiments.table1 ~timeout ~jobs:(resolve_jobs jobs)
        ?names:(split_names names) ()
    in
    print_string (Experiments.render_table1 entries)
  in
  Cmd.v
    (Cmd.info "table1"
       ~doc:"Reproduce Table 1: OSTR factors and flip-flop counts.")
    Term.(const run $ timeout_arg $ jobs_arg $ names_arg $ obs_term)

let table2_cmd =
  let run timeout jobs names obs =
    with_obs obs @@ fun () ->
    let entries =
      Experiments.table1 ~timeout ~jobs:(resolve_jobs jobs)
        ?names:(split_names names) ()
    in
    print_string (Experiments.render_table2 entries)
  in
  Cmd.v
    (Cmd.info "table2"
       ~doc:"Reproduce Table 2: search-space size vs nodes investigated.")
    Term.(const run $ timeout_arg $ jobs_arg $ names_arg $ obs_term)

let area_cmd =
  let run timeout jobs names obs =
    with_obs obs @@ fun () ->
    let entries =
      Experiments.area ~timeout ~jobs:(resolve_jobs jobs)
        ?names:(split_names names) ()
    in
    print_string (Experiments.render_area entries)
  in
  Cmd.v
    (Cmd.info "area"
       ~doc:
         "Two-level cost of the monolithic block C vs the factored blocks \
          C1+C2+Lambda (section 4's hardware-saving discussion).")
    Term.(const run $ timeout_arg $ jobs_arg $ names_arg $ obs_term)

let faultcov_cmd =
  let run cycles jobs names obs =
    with_obs obs @@ fun () ->
    let entries =
      Experiments.coverage ~cycles ~jobs:(resolve_jobs jobs)
        ?names:(split_names names) ()
    in
    print_string (Experiments.render_coverage entries)
  in
  let cycles =
    Arg.(value & opt int 1024
         & info [ "cycles" ] ~docv:"N" ~doc:"Self-test session length.")
  in
  Cmd.v
    (Cmd.info "faultcov"
       ~doc:
         "Stuck-at fault coverage of the fig. 2/3/4 structures under their \
          BIST sessions.")
    Term.(const run $ cycles $ jobs_arg $ names_arg $ obs_term)

let testlen_cmd =
  let run cycles jobs names obs =
    with_obs obs @@ fun () ->
    let entries =
      Experiments.strategies ~cycles ~jobs:(resolve_jobs jobs)
        ?names:(split_names names) ()
    in
    print_string (Experiments.render_strategies entries)
  in
  let cycles =
    Arg.(value & opt int 1024
         & info [ "cycles" ] ~docv:"N" ~doc:"Pattern / sequence budget.")
  in
  Cmd.v
    (Cmd.info "testlen"
       ~doc:
         "Compare test strategies: random sequential testing through the \
          primary pins, full scan, and the fig. 4 two-session BIST \
          (section 1's motivation, quantified).")
    Term.(const run $ cycles $ jobs_arg $ names_arg $ obs_term)

let extensions_cmd =
  let run timeout names obs =
    with_obs obs @@ fun () ->
    let entries = Experiments.extensions ~timeout ?names:(split_names names) () in
    print_string (Experiments.render_extensions entries)
  in
  Cmd.v
    (Cmd.info "extensions"
       ~doc:
         "Run the extensions: state splitting (the paper's future work) \
          and 3-stage pipeline chains, against the 2-stage baseline.")
    Term.(const run $ timeout_arg $ names_arg $ obs_term)

let decompose_cmd =
  let run timeout names obs =
    with_obs obs @@ fun () ->
    let entries =
      Experiments.decomposition ~timeout ?names:(split_names names) ()
    in
    print_string (Experiments.render_decomposition entries)
  in
  Cmd.v
    (Cmd.info "decompose"
       ~doc:
         "Compare the OSTR pipeline against classical parallel/serial FSM \
          decomposition (the [16,3,15] techniques the paper distinguishes \
          itself from; decomposed submachines keep feedback loops).")
    Term.(const run $ timeout_arg $ names_arg $ obs_term)

let aliasing_cmd =
  let run cycles jobs names obs =
    with_obs obs @@ fun () ->
    let entries =
      Experiments.aliasing ~cycles ~jobs:(resolve_jobs jobs)
        ?names:(split_names names) ()
    in
    print_string (Experiments.render_aliasing entries)
  in
  let cycles =
    Arg.(value & opt int 512
         & info [ "cycles" ] ~docv:"N" ~doc:"Patterns per session.")
  in
  Cmd.v
    (Cmd.info "aliasing"
       ~doc:
         "Measure real MISR aliasing on the fig. 4 structure (quantifies \
          the grader's ideal-compaction assumption).")
    Term.(const run $ cycles $ jobs_arg $ names_arg $ obs_term)

(* ------------------------------------------------------------------ *)
(* selftest: narrated two-session BIST demo                            *)
(* ------------------------------------------------------------------ *)

let selftest_cmd =
  let run spec cycles jobs obs =
    let m = or_die (load_machine spec) in
    let jobs = resolve_jobs jobs in
    with_obs obs @@ fun () ->
    let built = Arch.pipeline_of_machine ~cycles m in
    Format.printf "pipeline structure of %s: %d flip-flops, %d gates@."
      m.Machine.name built.Arch.flipflops
      (Stc_netlist.Netlist.num_gates built.Arch.netlist);
    List.iteri
      (fun k (stimuli, observed) ->
        let report =
          Session.run ~jobs
            ~label:(Printf.sprintf "session %d" (k + 1))
            built.Arch.netlist ~stimuli ~observed
        in
        Format.printf
          "session %d: %d cycles, %d observed nets, coverage %.1f%% (%d/%d)@."
          (k + 1) (Array.length stimuli) (Array.length observed)
          (100.0 *. report.Session.coverage)
          report.Session.detected report.Session.total)
      built.Arch.sessions;
    let merged = Arch.grade ~jobs built in
    Format.printf "both sessions combined: %.1f%% (%d/%d)@."
      (100.0 *. merged.Session.coverage)
      merged.Session.detected merged.Session.total
  in
  let cycles =
    Arg.(value & opt int 1024
         & info [ "cycles" ] ~docv:"N" ~doc:"Patterns per session.")
  in
  Cmd.v
    (Cmd.info "selftest"
       ~doc:"Run the two-session self-test of the pipeline structure.")
    Term.(const run $ machine_arg $ cycles $ jobs_arg $ obs_term)

(* ------------------------------------------------------------------ *)
(* lint / scoap: static analysis                                       *)
(* ------------------------------------------------------------------ *)

let lint_cmd =
  let run spec timeout jobs werror json_out conventional list_passes obs =
    let jobs = resolve_jobs jobs in
    if list_passes then
      List.iter
        (fun p -> Format.printf "%-12s %s@." p.Pass.name p.Pass.doc)
        (Pass.all ())
    else begin
      let name, diags =
        if Sys.file_exists spec then begin
          let name = Filename.remove_extension (Filename.basename spec) in
          let ic = open_in spec in
          let len = in_channel_length ic in
          let text = really_input_string ic len in
          close_in ic;
          let _ctx, diags =
            with_obs obs @@ fun () ->
            Lint.lint_kiss_text ~timeout ~conventional ~jobs ~name text
          in
          (name, diags)
        end
        else
          match Experiments.machine_named spec with
          | Some m ->
            let _ctx, diags =
              with_obs obs @@ fun () ->
              Lint.lint_machine ~timeout ~conventional ~jobs m
            in
            (m.Machine.name, diags)
          | None ->
            or_die
              (Error
                 (Printf.sprintf
                    "%S is neither a file nor a known machine (benchmarks: %s)"
                    spec
                    (String.concat ", " Suite.names)))
      in
      Format.printf "%a" Diagnostic.pp_report diags;
      Option.iter
        (fun path ->
          Json.write path (Diagnostic.report_to_json ~subject:name diags);
          Format.eprintf "wrote lint report %s@." path)
        json_out;
      if Diagnostic.fails ~werror diags then exit 1
    end
  in
  let werror =
    Arg.(value & flag
         & info [ "werror" ] ~doc:"Exit nonzero on warnings, not just errors.")
  in
  let json_out =
    Arg.(value & opt (some string) None
         & info [ "json" ] ~docv:"FILE"
             ~doc:"Also write the sorted report as JSON to $(docv).")
  in
  let conventional =
    Arg.(value & flag
         & info [ "conventional" ]
             ~doc:
               "Also analyze the conventional fig. 1 structure (slow on \
                large machines: its monolithic block C must be minimized).")
  in
  let list_passes =
    Arg.(value & flag
         & info [ "list-passes" ]
             ~doc:"List the registered analysis passes and exit.")
  in
  let machine =
    (* Like [machine_arg] but optional so --list-passes works alone. *)
    Arg.(value & pos 0 string "" & info [] ~docv:"MACHINE"
           ~doc:
             "Machine to lint: a KISS2 file path, a benchmark name or a zoo \
              name.")
  in
  Cmd.v
    (Cmd.info "lint"
       ~doc:
         "Static analysis: lint the FSM, the minimized covers and the \
          synthesized netlists, and statically prove the fig. 4 \
          feedback-free pipeline property.")
    Term.(
      const run $ machine $ timeout_arg $ jobs_arg $ werror $ json_out
      $ conventional $ list_passes $ obs_term)

(* ------------------------------------------------------------------ *)
(* verify: SAT-backed formal verification                              *)
(* ------------------------------------------------------------------ *)

let verify_cmd =
  let run spec timeout jobs werror json_out all_archs cec redundant prove obs =
    let m = or_die (load_machine spec) in
    let jobs = resolve_jobs jobs in
    let select =
      match
        (if cec then [ "cec" ] else [])
        @ (if prove then [ "net-prove" ] else [])
        @ (if redundant then [ "sat-redundant" ] else [])
      with
      | [] -> None (* no mode flag: run the whole family *)
      | chosen -> Some chosen
    in
    let diags =
      with_obs obs @@ fun () ->
      let ctx =
        Context.of_machine ~timeout ~conventional:all_archs ~all_archs ~jobs m
      in
      Verify.run ?select ctx
    in
    Format.printf "%a" Diagnostic.pp_report diags;
    Option.iter
      (fun path ->
        Json.write path
          (Diagnostic.report_to_json ~subject:m.Machine.name diags);
        Format.eprintf "wrote verify report %s@." path)
      json_out;
    if Diagnostic.fails ~werror diags then exit 1
  in
  let werror =
    Arg.(value & flag
         & info [ "werror" ] ~doc:"Exit nonzero on warnings, not just errors.")
  in
  let json_out =
    Arg.(value & opt (some string) None
         & info [ "json" ] ~docv:"FILE"
             ~doc:"Also write the sorted report as JSON to $(docv).")
  in
  let all_archs =
    Arg.(value & flag
         & info [ "all-archs" ]
             ~doc:
               "Also verify the fig. 1/2/3 structures (each must minimize \
                the monolithic block C - slow on large machines).  Default: \
                the fig. 4 pipeline only.")
  in
  let cec =
    Arg.(value & flag
         & info [ "cec" ]
             ~doc:
               "Equivalence checking only: minimized blocks vs their on/dc \
                specification, packed vs naive minimizer, netlists vs the \
                FSM tables.")
  in
  let redundant =
    Arg.(value & flag
         & info [ "redundant" ]
             ~doc:
               "Untestable-fault proofs only: per-fault good-vs-faulty \
                miters, UNSAT = provably redundant.")
  in
  let prove =
    Arg.(value & flag
         & info [ "prove" ]
             ~doc:
               "Pipeline-property proofs only: SAT-backed register-feedback \
                certificates (upgrades the structural NET010/NET011).")
  in
  Cmd.v
    (Cmd.info "verify"
       ~doc:
         "SAT-backed formal verification: equivalence proofs (--cec), \
          untestable-fault proofs (--redundant) and pipeline-property \
          proofs (--prove); all three by default.")
    Term.(
      const run $ machine_arg $ timeout_arg $ jobs_arg $ werror $ json_out
      $ all_archs $ cec $ redundant $ prove $ obs_term)

let scoap_cmd =
  let run timeout names obs =
    with_obs obs @@ fun () ->
    let entries = Experiments.scoap ~timeout ?names:(split_names names) () in
    print_string (Experiments.render_scoap entries)
  in
  Cmd.v
    (Cmd.info "scoap"
       ~doc:
         "SCOAP testability metrics (CC0/CC1 controllability, CO \
          observability) of the conventional fig. 1 structure vs the \
          decomposed fig. 4 pipeline.")
    Term.(const run $ timeout_arg $ names_arg $ obs_term)

(* ------------------------------------------------------------------ *)
(* export-benchmarks                                                   *)
(* ------------------------------------------------------------------ *)

let export_cmd =
  let run out_dir obs =
    with_obs obs @@ fun () ->
    if not (Sys.file_exists out_dir) then Sys.mkdir out_dir 0o755;
    List.iter
      (fun spec ->
        let m = Suite.machine spec in
        let path = Filename.concat out_dir (spec.Suite.name ^ ".kiss") in
        let oc = open_out path in
        output_string oc (Kiss.print m);
        close_out oc;
        Format.printf "wrote %s@." path)
      Suite.all
  in
  let out_dir =
    Arg.(value & opt string "benchmarks"
         & info [ "o"; "output" ] ~docv:"DIR" ~doc:"Output directory.")
  in
  Cmd.v
    (Cmd.info "export-benchmarks"
       ~doc:"Write all 13 benchmark stand-ins as KISS2 files.")
    Term.(const run $ out_dir $ obs_term)

let () =
  Stc_obs.Parmon.install ();
  let doc = "synthesis of self-testable controllers (ED&TC 1994 reproduction)" in
  let main =
    Cmd.group
      (Cmd.info "ostr" ~version:"1.0.0" ~doc)
      [
        info_cmd; minimize_cmd; solve_cmd; anytime_cmd; realize_cmd; dot_cmd; table1_cmd;
        table2_cmd; area_cmd; faultcov_cmd; testlen_cmd; extensions_cmd;
        decompose_cmd; aliasing_cmd; selftest_cmd; lint_cmd; verify_cmd;
        scoap_cmd; export_cmd;
      ]
  in
  exit (Cmd.eval main)
