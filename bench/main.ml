(* Benchmark harness.

   Modes (`dune exec bench/main.exe -- MODE`):

   - `all` (default): regenerate every evaluation artifact of the paper
     (Tables 1 and 2, the section-4 area discussion and the figs. 1-4
     fault-coverage comparison - see EXPERIMENTS.md), then run the
     Bechamel micro-benchmarks.
   - `tables`: artifacts only.
   - `micro`: micro-benchmarks only.
   - `quick`: solver smoke test - solve the three heavy Table-1 rows
     (dk16, dk512, tbk) under a hard wall-clock cap and check the factor
     sizes against the paper; nonzero exit on timeout or mismatch.  This
     is the CI entry point (tools/check.sh).
   - `json`: write BENCH_solver.json - per-row sequential vs parallel
     wall time, investigated / deduped node counts and speedup.
   - `faultsim`: write BENCH_faultsim.json - per-machine naive vs
     optimized (collapsed + cone-limited) vs multicore fault grading:
     wall time, gate evaluations, collapse ratio, coverage; nonzero exit
     if any engine disagrees with the naive reference.
   - `faultsim-quick`: the same equivalence check on two small machines
     with short sessions, no file written - the CI gate.
   - `minimize`: write BENCH_minimize.json - per-machine naive
     (trit-array) vs packed bit-parallel vs multicore espresso on the
     monolithic block C: wall time, cube/literal counts before and
     after, expand/tautology counters; nonzero exit if any engine
     violates the minimization contract or jobs>1 changes the result.
   - `minimize-quick`: the same checks on small machines, no file
     written - the CI gate.
   - `core`: write BENCH_core.json - the shared bit-engine kernels
     (word SWAR ops, bitvec algebra, packed partition ops) timed against
     the retained element-wise references, with per-row equality checks.
   - `core-quick`: packed-vs-reference equivalence only, no timing
     loops, no file written - the CI gate.
   - `verify [OUT]`: write BENCH_verify.json (default OUT) - per-machine
     SAT verification: CEC + pipeline-proof certificate counts, the
     untestable-fault census with jobs-1-vs-N agreement, raw vs
     redundancy-adjusted fig. 4 coverage, and CDCL solver counters;
     nonzero exit on any proof error or jobs disagreement.
   - `verify-quick [OUT]`: the same checks on two small machines with
     short sessions - the CI gate (writes OUT when given).
   - `anytime [OUT]`: write BENCH_anytime.json (default OUT) - the
     stochastic anytime tier cross-checked against the exact optimum on
     the full corpus (gap must be >= 0), plus the generated planted
     family up to 5120 states with quality-vs-time trajectories and a
     seeded jobs-1-vs-N determinism check; nonzero exit on any negative
     gap, nondeterminism, trivial factorization or blown wall cap.
   - `anytime-quick [OUT]`: the same checks on three small corpus
     machines and a 96-state planted machine at tiny proposal budgets -
     the CI gate (writes OUT when given). *)

module Machine = Stc_fsm.Machine
module Kiss = Stc_fsm.Kiss
module Zoo = Stc_fsm.Zoo
module Suite = Stc_benchmarks.Suite
module Partition = Stc_partition.Partition
module Pair = Stc_partition.Pair
module Solver = Stc_core.Solver
module Anytime = Stc_core.Anytime
module Generate = Stc_fsm.Generate
module Realization = Stc_core.Realization
module Tables = Stc_encoding.Tables
module Minimize = Stc_logic.Minimize
module Arch = Stc_faultsim.Arch
module Experiments = Stc_report.Experiments
module Clock = Stc_util.Clock
module Json = Stc_obs.Json
module Trace = Stc_obs.Trace
module Metrics = Stc_obs.Metrics
module Profile = Stc_obs.Profile
module Parmon = Stc_obs.Parmon
module Schema = Stc_benchmarks.Schema

(* ------------------------------------------------------------------ *)
(* Artifact regeneration (the paper's tables and figures)              *)
(* ------------------------------------------------------------------ *)

let print_tables () =
  Format.printf
    "=== Table 1: factors and flip-flop counts (paper values for comparison) ===@.@.";
  let entries = Experiments.table1 ~timeout:120.0 () in
  print_string (Experiments.render_table1 entries);
  Format.printf
    "@.=== Table 2: search space vs nodes investigated (Lemma-1 pruning) ===@.@.";
  print_string (Experiments.render_table2 entries);
  Format.printf
    "@.=== Section 4: two-level area, block C vs blocks C1+C2+Lambda vs doubling ===@.@.";
  print_string (Experiments.render_area (Experiments.area ()));
  Format.printf
    "@.=== Figs. 1-4: stuck-at coverage of the self-testable structures ===@.@.";
  print_string (Experiments.render_coverage (Experiments.coverage ()));
  Format.printf
    "@.(fig2 = conventional BIST with test register; fig3 = doubled;\n\
     fig4 = the paper's pipeline structure.  'escaped fb' counts the\n\
     undetected faults on the R-to-C feedback path of fig. 2.)@.";
  Format.printf
    "@.=== Section 1 motivation: test length by strategy ===@.@.";
  print_string (Experiments.render_strategies (Experiments.strategies ()));
  Format.printf
    "@.=== Extensions: state splitting (the paper's future work) and 3-stage chains ===@.@.";
  print_string (Experiments.render_extensions (Experiments.extensions ()));
  Format.printf
    "@.=== Baseline: classical parallel/serial decomposition [16,3,15] ===@.@.";
  print_string (Experiments.render_decomposition (Experiments.decomposition ()));
  Format.printf
    "@.=== MISR aliasing on the fig. 4 structure (ideal-compaction check) ===@.@.";
  print_string (Experiments.render_aliasing (Experiments.aliasing ()))

(* ------------------------------------------------------------------ *)
(* Solver trajectory: the heavy Table-1 rows, timed                    *)
(* ------------------------------------------------------------------ *)

let heavy_names = [ "dk16"; "dk512"; "tbk" ]

let benchmark_machine name =
  match Suite.find name with
  | Some spec -> Suite.machine spec
  | None -> invalid_arg name

(* One instrumented solver execution: result, wall clock, per-phase span
   totals (seconds, summed across domains - concurrent DFS workers can
   exceed wall time) and the merged metrics counters. *)
type instrumented = {
  result : Solver.result;
  wall : float;
  phases : (string * float) list;
  counters : (string * int) list;
}

type solver_run = {
  spec : Suite.spec;
  seq : instrumented;
  par : instrumented;
}

let par_jobs = max 2 (Domain.recommended_domain_count ())

let timed f =
  let t0 = Clock.now () in
  let r = f () in
  (r, Clock.elapsed ~since:t0)

let instrumented_solve ~timeout ?jobs machine =
  Trace.set_enabled true;
  Metrics.set_enabled true;
  Trace.reset ();
  Metrics.reset ();
  let result, wall = timed (fun () -> Solver.solve ~timeout ?jobs machine) in
  let phases = Trace.phase_totals () in
  let counters =
    List.filter_map
      (fun (name, v) ->
        match v with
        | Metrics.Counter n | Metrics.Gauge n ->
          if n <> 0 then Some (name, n) else None
        | Metrics.Histogram _ -> None)
      (Metrics.snapshot ())
  in
  Trace.set_enabled false;
  Metrics.set_enabled false;
  { result; wall; phases; counters }

let solver_runs ~timeout =
  List.map
    (fun name ->
      let spec = Option.get (Suite.find name) in
      let machine = Suite.machine spec in
      let seq = instrumented_solve ~timeout machine in
      let par = instrumented_solve ~timeout ~jobs:par_jobs machine in
      { spec; seq; par })
    heavy_names

(* Quick smoke: hard wall-clock cap, factors checked against the paper.
   Exit status is the number of failing rows, so CI can gate on it. *)
let run_quick () =
  let cap = 30.0 in
  let failures = ref 0 in
  List.iter
    (fun name ->
      let spec = Option.get (Suite.find name) in
      let machine = Suite.machine spec in
      let r, wall = timed (fun () -> Solver.solve ~timeout:cap machine) in
      let s1 = Partition.num_classes r.Solver.best.Solver.pi
      and s2 = Partition.num_classes r.Solver.best.Solver.rho in
      let expected = (spec.Suite.paper.Suite.s1, spec.Suite.paper.Suite.s2) in
      let ok = (not r.Solver.stats.Solver.timed_out) && (s1, s2) = expected in
      if not ok then incr failures;
      Printf.printf
        "%-8s %s  %.2fs  factors %d/%d (paper %d/%d)  investigated %d  deduped %d%s\n"
        name
        (if ok then "ok  " else "FAIL")
        wall s1 s2 (fst expected) (snd expected)
        r.Solver.stats.Solver.investigated r.Solver.stats.Solver.deduped
        (if r.Solver.stats.Solver.timed_out then "  (timeout)" else ""))
    heavy_names;
  if !failures > 0 then
    Printf.printf "quick smoke: %d of %d rows failed\n" !failures
      (List.length heavy_names)
  else Printf.printf "quick smoke: all %d rows ok\n" (List.length heavy_names);
  exit !failures

(* ------------------------------------------------------------------ *)
(* JSON trajectory (built on the Stc_obs JSON tree - no external dep)  *)
(* ------------------------------------------------------------------ *)

let json_of_instrumented (i : instrumented) =
  let stats = i.result.Solver.stats in
  Json.Obj
    [
      ("wall_s", Json.Float i.wall);
      ("investigated", Json.Int stats.Solver.investigated);
      ("deduped", Json.Int stats.Solver.deduped);
      ("pruned", Json.Int stats.Solver.pruned);
      ("memo_hits", Json.Int stats.Solver.memo_hits);
      ("timed_out", Json.Bool stats.Solver.timed_out);
      (* Per-phase span seconds, summed over domains: the dfs entry of a
         parallel run counts every worker's time, so dfs > wall_s means
         the fan-out burned more CPU than the sequential walk - exactly
         the BENCH_solver.json slowdown question. *)
      ( "phases",
        Json.Obj (List.map (fun (n, s) -> (n, Json.Float s)) i.phases) );
      ( "metrics",
        Json.Obj (List.map (fun (n, v) -> (n, Json.Int v)) i.counters) );
    ]

let cost_equal r =
  Solver.compare_cost r.seq.result.Solver.best.Solver.cost
    r.par.result.Solver.best.Solver.cost
  = 0

let json_of_run r =
  let best = r.seq.result.Solver.best in
  Json.Obj
    [
      ("name", Json.String r.spec.Suite.name);
      ("states", Json.Int r.spec.Suite.states);
      ("basis", Json.Int r.seq.result.Solver.stats.Solver.basis_size);
      ("s1", Json.Int (Partition.num_classes best.Solver.pi));
      ("s2", Json.Int (Partition.num_classes best.Solver.rho));
      ("bits", Json.Int best.Solver.cost.Solver.bits);
      ("sequential", json_of_instrumented r.seq);
      ("parallel", json_of_instrumented r.par);
      ("parallel_jobs", Json.Int par_jobs);
      ("speedup", Json.Float (r.seq.wall /. Float.max 1e-9 r.par.wall));
      ("cost_equal", Json.Bool (cost_equal r));
    ]

let run_json () =
  let runs = solver_runs ~timeout:120.0 in
  let path = "BENCH_solver.json" in
  Json.write path
    (Schema.wrap ~bench:"solver" ~jobs:par_jobs
       ~extra:
         [ ("recommended_domains", Json.Int (Domain.recommended_domain_count ())) ]
       (List.map json_of_run runs));
  Printf.printf "wrote %s\n" path;
  let phase r name =
    Option.value ~default:0.0 (List.assoc_opt name r.phases)
  in
  List.iter
    (fun r ->
      Printf.printf
        "%-8s seq %.2fs (%d nodes, %d deduped)  par(x%d) %.2fs  speedup %.2f\n"
        r.spec.Suite.name r.seq.wall r.seq.result.Solver.stats.Solver.investigated
        r.seq.result.Solver.stats.Solver.deduped par_jobs r.par.wall
        (r.seq.wall /. Float.max 1e-9 r.par.wall);
      Printf.printf
        "         phases seq basis %.3fs dfs %.3fs climb %.3fs | par dfs \
         %.3fs (sum over %d domains)\n"
        (phase r.seq "basis") (phase r.seq "dfs") (phase r.seq "hill_climb")
        (phase r.par "dfs") par_jobs)
    runs;
  (* The trajectory is only meaningful if both searches agree on the cost:
     any cost_equal: false row fails the run. *)
  let disagree = List.filter (fun r -> not (cost_equal r)) runs in
  if disagree <> [] then begin
    List.iter
      (fun r ->
        Printf.printf "FAIL %s: sequential and parallel costs differ\n"
          r.spec.Suite.name)
      disagree;
    exit 1
  end

(* ------------------------------------------------------------------ *)
(* Fault-simulation trajectory: naive vs optimized vs multicore        *)
(* ------------------------------------------------------------------ *)

module Session = Stc_faultsim.Session

let faultsim_machines =
  [ "fig5"; "shiftreg"; "dk27"; "tav"; "mc"; "bbara"; "dk16" ]

let counter_of name =
  match Metrics.find name with Some (Metrics.Counter n) -> n | _ -> 0

let hist_mean name =
  match Metrics.find name with
  | Some (Metrics.Histogram h) when h.Metrics.count > 0 ->
    float_of_int h.Metrics.sum /. float_of_int h.Metrics.count
  | _ -> 0.0

type fs_run = {
  fs_report : Session.report;
  fs_wall : float;
  fs_gate_evals : int;
  fs_raw : int;
  fs_classes : int;
  fs_dom_skips : int;
  fs_mean_cone : float;
}

(* One metered grading run.  Metrics are enabled only around [f] and
   [need_cycles:false] is forced by the callers, so the dominance
   shortcut stays on - this measures the production configuration, not
   the histogram-exact one. *)
let fs_instrumented f =
  Metrics.set_enabled true;
  Metrics.reset ();
  let fs_report, fs_wall = timed f in
  let run =
    {
      fs_report;
      fs_wall;
      fs_gate_evals = counter_of "faultsim.gate_evals";
      fs_raw = counter_of "faultsim.faults.raw";
      fs_classes = counter_of "faultsim.faults.classes";
      fs_dom_skips = counter_of "faultsim.dominance_skips";
      fs_mean_cone = hist_mean "faultsim.cone_size";
    }
  in
  Metrics.set_enabled false;
  run

type fs_row = {
  fs_name : string;
  fs_gates : int;
  naive : fs_run;
  opt : fs_run;  (* collapsed + cone-limited, jobs = 1 *)
  par : fs_run;  (* same engine, jobs = par_jobs *)
  (* Sequential random testing of the fig. 1 structure: per-class work is
     a whole multi-cycle replay, so this is where fault-parallel domains
     pay off (the combinational grading above is cone-limited into the
     sub-millisecond range, where domain spawns dominate). *)
  seq_j1 : float;
  seq_jn : float;
  seq_ok : bool;
}

let fs_equal a b =
  a.Session.total = b.Session.total
  && a.Session.detected = b.Session.detected
  && a.Session.undetected = b.Session.undetected

let fs_row_ok r =
  fs_equal r.naive.fs_report r.opt.fs_report
  && fs_equal r.naive.fs_report r.par.fs_report
  && r.seq_ok

let faultsim_row ~cycles name =
  let machine =
    match Experiments.machine_named name with
    | Some m -> m
    | None -> invalid_arg name
  in
  let built = Arch.pipeline_of_machine ~cycles machine in
  let naive = fs_instrumented (fun () -> Arch.grade ~naive:true built) in
  let opt =
    fs_instrumented (fun () -> Arch.grade ~jobs:1 ~need_cycles:false built)
  in
  let par =
    fs_instrumented (fun () ->
        Arch.grade ~jobs:par_jobs ~need_cycles:false built)
  in
  let conv = Arch.conventional machine in
  let enc = Tables.encode machine in
  let code = enc.Tables.state_code in
  let seqtest jobs =
    Stc_faultsim.Seqtest.run ~jobs ~cycles
      ~state_width:code.Stc_encoding.Code.width
      ~reset_code:code.Stc_encoding.Code.codes.(machine.Machine.reset)
      conv.Arch.netlist
  in
  let s1, seq_j1 = timed (fun () -> seqtest 1) in
  let sn, seq_jn = timed (fun () -> seqtest par_jobs) in
  let seq_ok =
    s1.Stc_faultsim.Seqtest.detected = sn.Stc_faultsim.Seqtest.detected
    && s1.Stc_faultsim.Seqtest.detection_cycles
       = sn.Stc_faultsim.Seqtest.detection_cycles
  in
  {
    fs_name = name;
    fs_gates = Stc_netlist.Netlist.num_gates built.Arch.netlist;
    naive;
    opt;
    par;
    seq_j1;
    seq_jn;
    seq_ok;
  }

let json_of_fs_row r =
  let ratio a b = float_of_int a /. Float.max 1.0 (float_of_int b) in
  Json.Obj
    [
      ("name", Json.String r.fs_name);
      ("gates", Json.Int r.fs_gates);
      ("raw_faults", Json.Int r.opt.fs_raw);
      ("classes", Json.Int r.opt.fs_classes);
      ("collapse_ratio", Json.Float (ratio r.opt.fs_raw r.opt.fs_classes));
      ("mean_cone", Json.Float r.opt.fs_mean_cone);
      ( "naive",
        Json.Obj
          [
            ("wall_s", Json.Float r.naive.fs_wall);
            ("gate_evals", Json.Int r.naive.fs_gate_evals);
          ] );
      ( "optimized",
        Json.Obj
          [
            ("wall_s", Json.Float r.opt.fs_wall);
            ("gate_evals", Json.Int r.opt.fs_gate_evals);
            ("dominance_skips", Json.Int r.opt.fs_dom_skips);
          ] );
      ( "parallel",
        Json.Obj
          [
            ("jobs", Json.Int par_jobs);
            ("wall_s", Json.Float r.par.fs_wall);
          ] );
      ( "gate_eval_ratio",
        Json.Float (ratio r.naive.fs_gate_evals r.opt.fs_gate_evals) );
      ( "speedup_optimized",
        Json.Float (r.naive.fs_wall /. Float.max 1e-9 r.opt.fs_wall) );
      ( "speedup_parallel",
        Json.Float (r.opt.fs_wall /. Float.max 1e-9 r.par.fs_wall) );
      ( "seqtest",
        Json.Obj
          [
            ("wall_j1_s", Json.Float r.seq_j1);
            ("wall_jn_s", Json.Float r.seq_jn);
            ("jobs", Json.Int par_jobs);
            ("speedup", Json.Float (r.seq_j1 /. Float.max 1e-9 r.seq_jn));
          ] );
      ("coverage", Json.Float r.naive.fs_report.Session.coverage);
      ("detected", Json.Int r.naive.fs_report.Session.detected);
      ("total", Json.Int r.naive.fs_report.Session.total);
      ("equal", Json.Bool (fs_row_ok r));
    ]

let print_fs_row r =
  Printf.printf
    "%-8s %s  %d faults -> %d classes  naive %.3fs (%d evals)  opt %.3fs \
     (%d evals, %.1fx fewer)  par(x%d) %.3fs (%.2fx)  seqtest %.2fs -> \
     %.2fs (%.2fx)\n%!"
    r.fs_name
    (if fs_row_ok r then "ok  " else "FAIL")
    r.opt.fs_raw r.opt.fs_classes r.naive.fs_wall r.naive.fs_gate_evals
    r.opt.fs_wall r.opt.fs_gate_evals
    (float_of_int r.naive.fs_gate_evals
    /. Float.max 1.0 (float_of_int r.opt.fs_gate_evals))
    par_jobs r.par.fs_wall
    (r.opt.fs_wall /. Float.max 1e-9 r.par.fs_wall)
    r.seq_j1 r.seq_jn
    (r.seq_j1 /. Float.max 1e-9 r.seq_jn)

let run_faultsim () =
  let cycles = 2048 in
  let rows = List.map (faultsim_row ~cycles) faultsim_machines in
  List.iter print_fs_row rows;
  let path = "BENCH_faultsim.json" in
  Json.write path
    (Schema.wrap ~bench:"faultsim" ~jobs:par_jobs
       ~extra:
         [
           ("cycles", Json.Int cycles);
           ("recommended_domains", Json.Int (Domain.recommended_domain_count ()));
         ]
       (List.map json_of_fs_row rows));
  Printf.printf "wrote %s\n" path;
  let bad = List.filter (fun r -> not (fs_row_ok r)) rows in
  if bad <> [] then begin
    List.iter
      (fun r ->
        Printf.printf "FAIL %s: optimized grading disagrees with naive\n"
          r.fs_name)
      bad;
    exit 1
  end

(* CI gate: equivalence only, small machines, short sessions. *)
let run_faultsim_quick () =
  let rows = List.map (faultsim_row ~cycles:256) [ "fig5"; "dk27" ] in
  List.iter print_fs_row rows;
  let failures = List.length (List.filter (fun r -> not (fs_row_ok r)) rows) in
  if failures = 0 then Printf.printf "faultsim quick: all rows ok\n";
  exit failures

(* ------------------------------------------------------------------ *)
(* Minimization trajectory: naive trit-array vs packed vs multicore    *)
(* ------------------------------------------------------------------ *)

module Cover = Stc_logic.Cover
module Cube = Stc_logic.Cube

let minimize_machines = [ "dk16"; "s1"; "dk512"; "tbk" ]
let minimize_quick_machines = [ "dk27"; "mc"; "bbara" ]

(* The naive reference predates every performance fix; on s1's 5000-row
   monolithic block a full pass takes hours.  Cap it and report the
   speedup as a lower bound ([capped] in the JSON). *)
let mz_naive_budget = 600.0

type mz_run = {
  mz_wall : float;
  mz_result : (Cover.t * Minimize.report) option;  (* None: budget exhausted *)
  mz_counters : (string * int) list;
}

(* One metered minimization.  Caches are cleared first so every engine
   starts cold and the cofactor/tautology hit counters are comparable
   between runs. *)
let mz_instrumented f =
  Cover.clear_caches ();
  Metrics.set_enabled true;
  Metrics.reset ();
  let mz_result, mz_wall =
    timed (fun () ->
        match f () with
        | r -> Some r
        | exception Stc_logic.Naive.Timeout -> None)
  in
  let mz_counters =
    List.filter_map
      (fun name ->
        match Metrics.find name with
        | Some (Metrics.Counter n) when n <> 0 -> Some (name, n)
        | _ -> None)
      [
        "minimize.expand_raises_attempted";
        "minimize.expand_raises_accepted";
        "minimize.cofactor_cache_hits";
        "minimize.tautology_calls";
        "minimize.tautology_memo_hits";
      ]
  in
  Metrics.set_enabled false;
  { mz_wall; mz_result; mz_counters }

type mz_row = {
  mz_name : string;
  mz_vars : int;
  mz_outs : int;
  mz_dc_cubes : int;
  mz_naive : mz_run;
  mz_packed : mz_run;  (* bit-parallel engine, jobs = 1 *)
  mz_par : mz_run;  (* same engine, jobs = par_jobs *)
  (* Every completed result meets the contract (on \ dc) <= r <=
     (on + dc); since they also cover nothing outside on+dc this makes
     them pairwise equivalent on every care point - the naive-vs-packed
     cross-check.  A budget-capped naive run has nothing to check. *)
  mz_verified : bool;
  mz_deterministic : bool;  (* jobs:1 and jobs:N covers cube-identical *)
}

let mz_same a b =
  Array.length a.Cover.cubes = Array.length b.Cover.cubes
  && Array.for_all2 Cube.equal a.Cover.cubes b.Cover.cubes

let mz_cover_exn label r =
  match r.mz_result with
  | Some (cover, _) -> cover
  | None -> failwith (label ^ ": packed engine exceeded the naive budget?")

let mz_report_exn label r =
  match r.mz_result with
  | Some (_, report) -> report
  | None -> failwith (label ^ ": packed engine exceeded the naive budget?")

let mz_row_ok r = r.mz_verified && r.mz_deterministic

(* Rows print as they complete; the heavy machines keep the naive
   reference busy for minutes, so stream progress per engine too. *)
let minimize_row name =
  let enc = Tables.encode (benchmark_machine name) in
  let on, dc = Tables.conventional enc in
  let stage s = Printf.eprintf "  %s: %s...\n%!" name s in
  stage "packed jobs:1";
  let packed = mz_instrumented (fun () -> Minimize.minimize ~jobs:1 ~dc on) in
  stage (Printf.sprintf "packed jobs:%d" par_jobs);
  let par =
    mz_instrumented (fun () -> Minimize.minimize ~jobs:par_jobs ~dc on)
  in
  stage "naive reference";
  let naive =
    mz_instrumented (fun () ->
        Minimize.reference ~budget:mz_naive_budget ~dc on)
  in
  stage "verify";
  let verified_or_capped r =
    match r.mz_result with
    | Some (cover, _) -> Minimize.verify ~on ~dc cover
    | None -> true
  in
  let verified =
    verified_or_capped naive
    && verified_or_capped packed
    && verified_or_capped par
  in
  {
    mz_name = name;
    mz_vars = on.Cover.num_vars;
    mz_outs = on.Cover.num_outputs;
    mz_dc_cubes = Array.length dc.Cover.cubes;
    mz_naive = naive;
    mz_packed = packed;
    mz_par = par;
    mz_verified = verified;
    mz_deterministic =
      mz_same (mz_cover_exn name packed) (mz_cover_exn name par);
  }

let json_of_mz_run (r : mz_run) =
  let detail =
    match r.mz_result with
    | Some (cover, report) ->
      let cubes, literals = Cover.cost cover in
      [
        ("cubes", Json.Int cubes);
        ("literals", Json.Int literals);
        ("iterations", Json.Int report.Minimize.iterations);
      ]
    | None -> []
  in
  Json.Obj
    (( ("wall_s", Json.Float r.mz_wall)
     :: ("capped", Json.Bool (Option.is_none r.mz_result))
     :: detail )
    @ [
        ( "metrics",
          Json.Obj (List.map (fun (n, v) -> (n, Json.Int v)) r.mz_counters) );
      ])

let json_of_mz_row r =
  let report = mz_report_exn r.mz_name r.mz_packed in
  Json.Obj
    [
      ("name", Json.String r.mz_name);
      ("vars", Json.Int r.mz_vars);
      ("outputs", Json.Int r.mz_outs);
      ("on_cubes", Json.Int report.Minimize.initial_cubes);
      ("on_literals", Json.Int report.Minimize.initial_literals);
      ("dc_cubes", Json.Int r.mz_dc_cubes);
      ("naive", json_of_mz_run r.mz_naive);
      ("packed", json_of_mz_run r.mz_packed);
      ( "parallel",
        Json.Obj
          (("jobs", Json.Int par_jobs)
          :: (match json_of_mz_run r.mz_par with
             | Json.Obj fields -> fields
             | _ -> [])) );
      (* A capped naive run makes this a lower bound (see naive.capped). *)
      ( "speedup_packed",
        Json.Float (r.mz_naive.mz_wall /. Float.max 1e-9 r.mz_packed.mz_wall) );
      ( "speedup_parallel",
        Json.Float (r.mz_packed.mz_wall /. Float.max 1e-9 r.mz_par.mz_wall) );
      ("verified", Json.Bool r.mz_verified);
      ("deterministic", Json.Bool r.mz_deterministic);
      ("equal", Json.Bool (mz_row_ok r));
    ]

let print_mz_row r =
  let cubes, literals = Cover.cost (mz_cover_exn r.mz_name r.mz_packed) in
  let naive_s =
    if Option.is_none r.mz_naive.mz_result then
      Printf.sprintf ">= %.0fs (capped)" r.mz_naive.mz_wall
    else Printf.sprintf "%.3fs" r.mz_naive.mz_wall
  in
  Printf.printf
    "%-8s %s  %d -> %d cubes (%d literals)  naive %s  packed %.3fs \
     (%.1fx%s)  par(x%d) %.3fs (%.2fx)\n%!"
    r.mz_name
    (if mz_row_ok r then "ok  " else "FAIL")
    (mz_report_exn r.mz_name r.mz_packed).Minimize.initial_cubes
    cubes literals naive_s r.mz_packed.mz_wall
    (r.mz_naive.mz_wall /. Float.max 1e-9 r.mz_packed.mz_wall)
    (if Option.is_none r.mz_naive.mz_result then "+" else "")
    par_jobs r.mz_par.mz_wall
    (r.mz_packed.mz_wall /. Float.max 1e-9 r.mz_par.mz_wall)

let minimize_rows names =
  List.map
    (fun name ->
      let r = minimize_row name in
      print_mz_row r;
      r)
    names

let mz_failures rows =
  List.filter (fun r -> not (mz_row_ok r)) rows
  |> List.map (fun r ->
         Printf.printf "FAIL %s:%s%s\n" r.mz_name
           (if r.mz_verified then "" else " contract violated")
           (if r.mz_deterministic then "" else " jobs>1 changed the result");
         r.mz_name)

let run_minimize () =
  let rows = minimize_rows minimize_machines in
  let path = "BENCH_minimize.json" in
  Json.write path
    (Schema.wrap ~bench:"minimize" ~jobs:par_jobs
       ~extra:
         [ ("recommended_domains", Json.Int (Domain.recommended_domain_count ())) ]
       (List.map json_of_mz_row rows));
  Printf.printf "wrote %s\n" path;
  if mz_failures rows <> [] then exit 1

(* CI gate: contract + determinism checks only, small machines, no file. *)
let run_minimize_quick () =
  let rows = minimize_rows minimize_quick_machines in
  let failures = List.length (mz_failures rows) in
  if failures = 0 then Printf.printf "minimize quick: all rows ok\n";
  exit failures

(* ------------------------------------------------------------------ *)
(* Core kernel trajectory: packed bit engine vs element-wise references *)
(* ------------------------------------------------------------------ *)

module Word = Stc_bits.Word
module Bitvec = Stc_bits.Bitvec
module Reference = Stc_partition.Reference
module Rng = Stc_util.Rng

(* Self-calibrating ns/op: grow the repeat count until the measured
   window is long enough to trust the monotonic clock, then report the
   mean.  Deterministic workloads (Rng-seeded, pregenerated) keep the
   old and new sides byte-comparable.  The window is a ref so the
   core-quick noise gate can trade precision for speed (check.sh times
   the suite twice and diffs the two files). *)
let calibration_window = ref 0.05

let ns_per_op f =
  f ();
  (* warm-up: fill caches, trigger interning *)
  let window = !calibration_window in
  let rec measure iters =
    let t0 = Clock.now () in
    for _ = 1 to iters do
      f ()
    done;
    let dt = Clock.elapsed ~since:t0 in
    if dt < window && iters < 10_000_000 then measure (iters * 4)
    else dt *. 1e9 /. float_of_int iters
  in
  measure 1

type core_row = {
  ck_kernel : string;
  ck_n : int;
  ck_old_ns : float;
  ck_new_ns : float;
  ck_equal : bool;
}

let core_sizes = [ 15; 32; 200 ]

(* Random class maps biased toward few classes (the solver's regime:
   partitions stay coarse near the top of the Mm lattice). *)
let core_class_maps rng n count =
  Array.init count (fun _ ->
      let k = 1 + Rng.int rng n in
      Array.init n (fun _ -> Rng.int rng k))

let consume_int = ref 0
let consume_bool = ref false

(* One partition kernel at size [n]: time the old element-wise reference
   against the packed implementation over the same pregenerated
   workload, and check result equality on every workload item. *)
let partition_rows n =
  let rng = Rng.create (0x5eed + n) in
  let maps = core_class_maps rng n 64 in
  let pairs = Array.map (fun a -> (a, (core_class_maps rng n 1).(0))) maps in
  let parts = Array.map Partition.of_class_map maps in
  let part_pairs =
    Array.map (fun (a, b) -> (Partition.of_class_map a, Partition.of_class_map b)) pairs
  in
  let cursor = ref 0 in
  let next_idx () =
    let i = !cursor in
    cursor := (i + 1) land 63;
    i
  in
  let row kernel ~equal ~old_op ~new_op =
    let ck_equal = equal () in
    cursor := 0;
    let ck_old_ns = ns_per_op (fun () -> old_op (next_idx ())) in
    cursor := 0;
    let ck_new_ns = ns_per_op (fun () -> new_op (next_idx ())) in
    { ck_kernel = kernel; ck_n = n; ck_old_ns; ck_new_ns; ck_equal }
  in
  let all_eq f = Array.for_all Fun.id (Array.init 64 f) in
  [
    row "partition/canonicalize"
      ~equal:(fun () ->
        all_eq (fun i ->
            Partition.class_map (Partition.of_class_map maps.(i))
            = Reference.canonicalize maps.(i)))
      ~old_op:(fun i -> consume_int := Array.length (Reference.canonicalize maps.(i)))
      ~new_op:(fun i ->
        consume_int := Partition.num_classes (Partition.of_class_map maps.(i)));
    row "partition/meet"
      ~equal:(fun () ->
        all_eq (fun i ->
            let a, b = pairs.(i) and p, q = part_pairs.(i) in
            Partition.class_map (Partition.meet p q) = Reference.meet a b))
      ~old_op:(fun i ->
        let a, b = pairs.(i) in
        consume_int := Array.length (Reference.meet a b))
      ~new_op:(fun i ->
        let p, q = part_pairs.(i) in
        consume_int := Partition.num_classes (Partition.meet p q));
    row "partition/join"
      ~equal:(fun () ->
        all_eq (fun i ->
            let a, b = pairs.(i) and p, q = part_pairs.(i) in
            Partition.class_map (Partition.join p q) = Reference.join a b))
      ~old_op:(fun i ->
        let a, b = pairs.(i) in
        consume_int := Array.length (Reference.join a b))
      ~new_op:(fun i ->
        let p, q = part_pairs.(i) in
        consume_int := Partition.num_classes (Partition.join p q));
    row "partition/subseteq"
      ~equal:(fun () ->
        all_eq (fun i ->
            let a, b = pairs.(i) and p, q = part_pairs.(i) in
            Partition.subseteq p q = Reference.subseteq a b))
      ~old_op:(fun i ->
        let a, b = pairs.(i) in
        consume_bool := Reference.subseteq a b)
      ~new_op:(fun i ->
        let p, q = part_pairs.(i) in
        consume_bool := Partition.subseteq p q);
    (* meet_subseteq fuses what the old code spelled as subseteq(meet p q) r;
       both sides run their full composition. *)
    row "partition/meet_subseteq"
      ~equal:(fun () ->
        all_eq (fun i ->
            let a, b = pairs.(i) and p, q = part_pairs.(i) in
            let r = parts.(i) and rc = maps.(i) in
            Partition.meet_subseteq p q r
            = Reference.subseteq (Reference.meet a b) rc))
      ~old_op:(fun i ->
        let a, b = pairs.(i) in
        consume_bool := Reference.subseteq (Reference.meet a b) maps.(i))
      ~new_op:(fun i ->
        let p, q = part_pairs.(i) in
        consume_bool := Partition.meet_subseteq p q parts.(i));
    (* Hash timing only: the new rows-based hash is a different function
       by design, so "equal" here means both sides are self-consistent
       across a relabeling of the input class map. *)
    row "partition/hash"
      ~equal:(fun () ->
        all_eq (fun i ->
            let relabeled = Array.map (fun id -> (id * 2) + 7) maps.(i) in
            Reference.hash_class_map n (Reference.canonicalize maps.(i))
            = Reference.hash_class_map n (Reference.canonicalize relabeled)
            && Partition.hash (Partition.of_class_map maps.(i))
               = Partition.hash (Partition.of_class_map relabeled)))
      ~old_op:(fun i -> consume_int := Reference.hash_class_map n maps.(i))
      ~new_op:(fun i -> consume_int := Partition.hash parts.(i));
  ]

(* The retired bit-serial word loops (see test/test_bits.ml for the
   pinning tests) vs the SWAR kernels, over one word array. *)
let word_rows () =
  let rng = Rng.create 0xb175 in
  let words =
    Array.init 4096 (fun _ ->
        let w = Int64.to_int (Rng.bits64 rng) in
        if w = 0 then 1 else w)
  in
  let parity_loop v =
    let rec go v acc = if v = 0 then acc else go (v lsr 1) (acc lxor (v land 1)) in
    go v 0
  in
  let popcount_loop v =
    let rec go v acc = if v = 0 then acc else go (v lsr 1) (acc + (v land 1)) in
    go v 0
  in
  let ffs_loop w =
    let rec go k w = if w land 1 = 1 then k else go (k + 1) (w lsr 1) in
    go 0 w
  in
  let sweep f =
    let acc = ref 0 in
    Array.iter (fun w -> acc := !acc + f w) words;
    consume_int := !acc
  in
  let row kernel old_f new_f =
    {
      ck_kernel = "word/" ^ kernel;
      ck_n = Array.length words;
      ck_old_ns = ns_per_op (fun () -> sweep old_f) /. float_of_int (Array.length words);
      ck_new_ns = ns_per_op (fun () -> sweep new_f) /. float_of_int (Array.length words);
      ck_equal = Array.for_all (fun w -> old_f w = new_f w) words;
    }
  in
  [
    row "popcount" popcount_loop Word.popcount;
    row "parity" parity_loop Word.parity;
    row "ffs" ffs_loop Word.ffs;
  ]

(* Bitvec set algebra vs the bool-array spec it is property-tested
   against. *)
let bitvec_rows n =
  let rng = Rng.create (0xb17 + n) in
  let bools = Array.init 64 (fun _ -> Array.init n (fun _ -> Rng.int rng 2 = 1)) in
  let vecs = Array.map Bitvec.of_bools bools in
  let spec_union a b = Array.init n (fun i -> a.(i) || b.(i)) in
  let spec_count a = Array.fold_left (fun acc x -> if x then acc + 1 else acc) 0 a in
  let cursor = ref 0 in
  let next_pair () =
    let i = !cursor in
    cursor := (i + 1) land 63;
    (i, (i + 1) land 63)
  in
  let equal =
    Array.for_all Fun.id
      (Array.init 64 (fun i ->
           let j = (i + 1) land 63 in
           Bitvec.to_bools (Bitvec.union vecs.(i) vecs.(j))
           = spec_union bools.(i) bools.(j)
           && Bitvec.popcount vecs.(i) = spec_count bools.(i)))
  in
  cursor := 0;
  let old_ns =
    ns_per_op (fun () ->
        let i, j = next_pair () in
        consume_int := spec_count (spec_union bools.(i) bools.(j)))
  in
  cursor := 0;
  let new_ns =
    ns_per_op (fun () ->
        let i, j = next_pair () in
        consume_int := Bitvec.popcount (Bitvec.union vecs.(i) vecs.(j)))
  in
  [
    {
      ck_kernel = "bitvec/union+popcount";
      ck_n = n;
      ck_old_ns = old_ns;
      ck_new_ns = new_ns;
      ck_equal = equal;
    };
  ]

let core_rows () =
  word_rows ()
  @ List.concat_map bitvec_rows core_sizes
  @ List.concat_map partition_rows core_sizes

let print_core_row r =
  Printf.printf "%-24s n=%-4d %s  old %10.1f ns/op  new %10.1f ns/op  %5.2fx\n%!"
    r.ck_kernel r.ck_n
    (if r.ck_equal then "ok  " else "FAIL")
    r.ck_old_ns r.ck_new_ns
    (r.ck_old_ns /. Float.max 1e-9 r.ck_new_ns)

let json_of_core_row r =
  Json.Obj
    [
      ("kernel", Json.String r.ck_kernel);
      ("n", Json.Int r.ck_n);
      ("old_ns_per_op", Json.Float r.ck_old_ns);
      ("new_ns_per_op", Json.Float r.ck_new_ns);
      ("speedup", Json.Float (r.ck_old_ns /. Float.max 1e-9 r.ck_new_ns));
      ("equal", Json.Bool r.ck_equal);
    ]

let core_failures rows =
  List.filter (fun r -> not r.ck_equal) rows
  |> List.map (fun r ->
         Printf.printf "FAIL %s n=%d: packed result differs from reference\n"
           r.ck_kernel r.ck_n;
         r.ck_kernel)

let run_core () =
  let rows = core_rows () in
  List.iter print_core_row rows;
  let path = "BENCH_core.json" in
  Json.write path
    (Schema.wrap ~bench:"core" ~jobs:1 (List.map json_of_core_row rows));
  Printf.printf "wrote %s\n" path;
  if core_failures rows <> [] then exit 1

(* CI gate: equivalence checks only, no timing loops, no file written;
   exit status counts failures.  With [?out] it additionally writes a
   light-timed (short calibration window) schema'd BENCH file - check.sh
   runs that twice and feeds both files to bench_diff to prove the
   regression thresholds absorb same-box noise. *)
let run_core_quick ?out () =
  let rng = Rng.create 0xc0de in
  let failures = ref 0 in
  List.iter
    (fun n ->
      for _ = 1 to 50 do
        let pick () = (core_class_maps rng n 1).(0) in
        let a = pick () and b = pick () and c = pick () in
        let p = Partition.of_class_map a
        and q = Partition.of_class_map b
        and r = Partition.of_class_map c in
        let ok =
          Partition.class_map (Partition.meet p q) = Reference.meet a b
          && Partition.class_map (Partition.join p q) = Reference.join a b
          && Partition.subseteq p q = Reference.subseteq a b
          && Partition.meet_subseteq p q r
             = Reference.subseteq (Reference.meet a b) c
        in
        if not ok then begin
          Printf.printf "FAIL core-quick: n=%d packed vs reference mismatch\n" n;
          incr failures
        end
      done)
    core_sizes;
  if !failures = 0 then Printf.printf "core quick: all kernels agree\n";
  (match out with
  | Some path when !failures = 0 ->
    calibration_window := 0.02;
    let rows = core_rows () in
    Json.write path
      (Schema.wrap ~bench:"core" ~jobs:1
         ~extra:[ ("quick", Json.Bool true) ]
         (List.map json_of_core_row rows));
    Printf.printf "wrote %s\n" path
  | _ -> ());
  exit !failures

(* ------------------------------------------------------------------ *)
(* Micro-benchmarks                                                    *)
(* ------------------------------------------------------------------ *)

open Bechamel
open Toolkit

let solver_tests =
  (* One Test per Table-1/Table-2 row that solves in well under a second;
     the slow rows (dk16, dk512, tbk) are covered by `quick` / `json`. *)
  let machines =
    [ "bbara"; "bbtas"; "dk14"; "dk15"; "dk17"; "dk27"; "mc"; "s1";
      "shiftreg"; "tav" ]
  in
  List.map
    (fun name ->
      let m = benchmark_machine name in
      Test.make ~name:("table1/" ^ name)
        (Staged.stage (fun () -> ignore (Solver.solve m))))
    machines

let kernel_tests =
  let dk16 = benchmark_machine "dk16" in
  let next = dk16.Machine.next in
  let pi =
    Partition.of_class_map
      (Array.init dk16.Machine.num_states (fun s -> s mod 5))
  in
  let basis = Pair.basis ~next in
  let some_basis = List.filteri (fun i _ -> i < 8) basis in
  let dk27 = benchmark_machine "dk27" in
  let enc = Tables.encode dk27 in
  let on, dc = Tables.conventional enc in
  let shiftreg = Zoo.shift_register ~bits:3 in
  let shiftreg_pipeline = Arch.pipeline_of_machine ~cycles:256 shiftreg in
  let fig5_text = Kiss.print (Zoo.paper_fig5 ()) in
  [
    Test.make ~name:"kernel/m-operator(dk16)"
      (Staged.stage (fun () -> ignore (Pair.m ~next pi)));
    Test.make ~name:"kernel/M-operator(dk16)"
      (Staged.stage (fun () -> ignore (Pair.big_m ~next pi)));
    Test.make ~name:"kernel/basis(dk16)"
      (Staged.stage (fun () -> ignore (Pair.basis ~next)));
    Test.make ~name:"kernel/joins(dk16)"
      (Staged.stage (fun () ->
           ignore (List.fold_left Partition.join pi some_basis)));
    Test.make ~name:"kernel/espresso(dk27-C)"
      (Staged.stage (fun () -> ignore (Minimize.minimize ~dc on)));
    Test.make ~name:"kernel/realization(fig5)"
      (Staged.stage (fun () ->
           let m = Zoo.paper_fig5 () in
           let pi = Partition.of_blocks ~n:4 [ [ 0; 1 ]; [ 2; 3 ] ] in
           let rho = Partition.of_blocks ~n:4 [ [ 0; 3 ]; [ 1; 2 ] ] in
           ignore (Realization.build m ~pi ~rho)));
    Test.make ~name:"kernel/fault-grade(shiftreg-fig4)"
      (Staged.stage (fun () -> ignore (Arch.grade shiftreg_pipeline)));
    Test.make ~name:"kernel/kiss-parse(fig5)"
      (Staged.stage (fun () -> ignore (Kiss.parse fig5_text)));
    Test.make ~name:"kernel/seqtest(counter8)"
      (Staged.stage (fun () ->
           ignore
             (Stc_faultsim.Seqtest.run_conventional ~cycles:256
                (Zoo.counter ~modulus:8))));
    Test.make ~name:"ext/multiway-3(shiftreg)"
      (Staged.stage (fun () ->
           ignore
             (Stc_core.Multiway.solve ~timeout:5.0 ~stages:3
                (Zoo.shift_register ~bits:3))));
    Test.make ~name:"ext/split-improve(fig5)"
      (Staged.stage (fun () ->
           ignore (Stc_core.Split.improve ~max_rounds:1 (Zoo.paper_fig5 ()))));
  ]

let run_benchmarks () =
  let tests = Test.make_grouped ~name:"stc" (solver_tests @ kernel_tests) in
  let cfg =
    Benchmark.cfg ~limit:300 ~quota:(Time.second 0.5) ~kde:None ~stabilize:true ()
  in
  let raw = Benchmark.all cfg Instance.[ monotonic_clock ] tests in
  let ols =
    Analyze.ols ~r_square:true ~bootstrap:0 ~predictors:[| Measure.run |]
  in
  let results = Analyze.all ols Instance.monotonic_clock raw in
  let rows =
    Hashtbl.fold
      (fun name ols acc ->
        let ns =
          match Analyze.OLS.estimates ols with
          | Some (est :: _) -> est
          | Some [] | None -> Float.nan
        in
        let r2 =
          match Analyze.OLS.r_square ols with Some r -> r | None -> Float.nan
        in
        (name, ns, r2) :: acc)
      results []
    |> List.sort (fun (a, _, _) (b, _, _) -> String.compare a b)
  in
  Format.printf "@.=== micro-benchmarks (monotonic clock, OLS) ===@.@.";
  print_string
    (Stc_report.Table.render
       ~header:[ "benchmark"; "time/run"; "r^2" ]
       (List.map
          (fun (name, ns, r2) ->
            let time =
              if Float.is_nan ns then "n/a"
              else if ns >= 1e9 then Printf.sprintf "%.2f s" (ns /. 1e9)
              else if ns >= 1e6 then Printf.sprintf "%.2f ms" (ns /. 1e6)
              else if ns >= 1e3 then Printf.sprintf "%.2f us" (ns /. 1e3)
              else Printf.sprintf "%.0f ns" ns
            in
            [ name; time; Printf.sprintf "%.3f" r2 ])
          rows))

(* ------------------------------------------------------------------ *)
(* SAT verification: CEC + pipeline proofs + untestable-fault proofs   *)
(* ------------------------------------------------------------------ *)

module Context = Stc_analysis.Context
module Verify = Stc_analysis.Verify
module Diagnostic = Stc_analysis.Diagnostic
module Prove = Stc_sat.Prove

type verify_row = {
  vr_name : string;
  vr_gates : int;
  vr_errors : int;  (* CEC + net-prove errors: must be 0 *)
  vr_certs : int;  (* CEC003/005/007 + NET011 certificates *)
  vr_verify_wall : float;
  vr_raw_faults : int;
  vr_classes : int;
  vr_redundant : int;
  vr_unobservable : int;
  vr_red_wall : float;
  vr_jobs_agree : bool;  (* jobs=1 and jobs=N redundant lists identical *)
  vr_raw_cov : float;
  vr_adj_cov : float;
  vr_decisions : int;
  vr_conflicts : int;
  vr_propagations : int;
  vr_solves : int;
}

let vr_observed_union (b : Arch.built) =
  let tbl = Hashtbl.create 64 in
  List.iter
    (fun (_, obs) -> Array.iter (fun g -> Hashtbl.replace tbl g ()) obs)
    b.Arch.sessions;
  Array.of_list
    (List.sort compare (Hashtbl.fold (fun g () acc -> g :: acc) tbl []))

let vr_cert_codes = [ "CEC003"; "CEC005"; "CEC007"; "NET011" ]

let verify_row ~cycles name =
  let machine =
    match Experiments.machine_named name with
    | Some m -> m
    | None -> invalid_arg name
  in
  let read c = Metrics.counter_value (Metrics.counter c) in
  let d0 = read "sat.decisions"
  and c0 = read "sat.conflicts"
  and p0 = read "sat.propagations"
  and s0 = read "sat.solves" in
  let ctx = Context.of_machine machine in
  let diags, verify_wall =
    timed (fun () -> Verify.run ~select:[ "cec"; "net-prove" ] ctx)
  in
  let built = Arch.pipeline_of_machine ~cycles machine in
  let observed = vr_observed_union built in
  let v1, red_wall =
    timed (fun () -> Prove.redundant ~jobs:1 ~observed built.Arch.netlist)
  in
  let vn = Prove.redundant ~jobs:par_jobs ~observed built.Arch.netlist in
  let report = Arch.grade ~jobs:1 ~need_cycles:false built in
  let adj = Session.adjusted report ~redundant:v1.Prove.redundant in
  {
    vr_name = name;
    vr_gates = Stc_netlist.Netlist.num_gates built.Arch.netlist;
    vr_errors = Diagnostic.count Diagnostic.Error diags;
    vr_certs =
      List.length
        (List.filter (fun d -> List.mem d.Diagnostic.code vr_cert_codes) diags);
    vr_verify_wall = verify_wall;
    vr_raw_faults = v1.Prove.total_faults;
    vr_classes = v1.Prove.total_classes;
    vr_redundant = List.length v1.Prove.redundant;
    vr_unobservable = v1.Prove.unobservable_classes;
    vr_red_wall = red_wall;
    vr_jobs_agree = v1.Prove.redundant = vn.Prove.redundant;
    vr_raw_cov = report.Session.coverage;
    vr_adj_cov = adj.Session.coverage;
    vr_decisions = read "sat.decisions" - d0;
    vr_conflicts = read "sat.conflicts" - c0;
    vr_propagations = read "sat.propagations" - p0;
    vr_solves = read "sat.solves" - s0;
  }

let json_of_verify_row r =
  Json.Obj
    [
      ("name", Json.String r.vr_name);
      ("gates", Json.Int r.vr_gates);
      ( "proofs",
        Json.Obj
          [
            ("errors", Json.Int r.vr_errors);
            ("certificates", Json.Int r.vr_certs);
            ("wall_s", Json.Float r.vr_verify_wall);
          ] );
      ( "redundant",
        Json.Obj
          [
            ("raw_faults", Json.Int r.vr_raw_faults);
            ("classes", Json.Int r.vr_classes);
            ("untestable", Json.Int r.vr_redundant);
            ("unobservable", Json.Int r.vr_unobservable);
            ("wall_s", Json.Float r.vr_red_wall);
            ("jobs_agree", Json.Bool r.vr_jobs_agree);
          ] );
      ( "coverage",
        Json.Obj
          [
            ("raw", Json.Float r.vr_raw_cov);
            ("adjusted", Json.Float r.vr_adj_cov);
          ] );
      ( "sat",
        Json.Obj
          [
            ("decisions", Json.Int r.vr_decisions);
            ("conflicts", Json.Int r.vr_conflicts);
            ("propagations", Json.Int r.vr_propagations);
            ("solves", Json.Int r.vr_solves);
          ] );
    ]

let print_verify_row r =
  Printf.printf
    "%-10s %4d gates: %d errors, %d certs (%.2fs); %d/%d faults untestable \
     (%.2fs, jobs %s); coverage %.1f%% raw -> %.1f%% adjusted; %d solves, \
     %d conflicts\n"
    r.vr_name r.vr_gates r.vr_errors r.vr_certs r.vr_verify_wall
    r.vr_redundant r.vr_raw_faults r.vr_red_wall
    (if r.vr_jobs_agree then "agree" else "DISAGREE")
    (100.0 *. r.vr_raw_cov) (100.0 *. r.vr_adj_cov) r.vr_solves
    r.vr_conflicts

let verify_row_ok r = r.vr_errors = 0 && r.vr_jobs_agree

let run_verify_rows ~cycles ~out names =
  (* SAT counters live in the metrics registry; enable it so the rows can
     report per-machine decision/conflict/propagation deltas.  Graders are
     called with ~need_cycles:false explicitly, so enabling metrics does
     not change any verdict. *)
  Metrics.set_enabled true;
  Metrics.reset ();
  let rows = List.map (verify_row ~cycles) names in
  List.iter print_verify_row rows;
  let failures = List.length (List.filter (fun r -> not (verify_row_ok r)) rows) in
  (match out with
  | Some path when failures = 0 ->
    Json.write path
      (Schema.wrap ~bench:"verify" ~jobs:par_jobs
         ~extra:[ ("cycles", Json.Int cycles) ]
         (List.map json_of_verify_row rows));
    Printf.printf "wrote %s\n" path
  | _ -> ());
  if failures = 0 then Printf.printf "verify: all proofs hold\n";
  exit failures

let verify_machines = [ "fig5"; "shiftreg"; "dk27"; "tav"; "mc" ]

let run_verify ?(out = "BENCH_verify.json") () =
  run_verify_rows ~cycles:1024 ~out:(Some out) verify_machines

let run_verify_quick ?out () =
  run_verify_rows ~cycles:256 ~out [ "fig5"; "dk27" ]

(* ------------------------------------------------------------------ *)
(* Anytime: stochastic-tier cross-check and the scale frontier         *)
(* ------------------------------------------------------------------ *)

(* Quality-vs-time rows for the anytime tier (lib/core/anytime.ml), in
   two families:

   - corpus rows: the 13 suite machines, exact optimum vs the forced
     stochastic tier at a capped proposal budget.  The gap
     (stochastic - exact bits) must be >= 0 by optimality of the exact
     tier; a negative gap is a bug and fails the mode.
   - generated rows: the planted:<n>x4 family (lib/fsm/generate.ml),
     beyond the exact tier's reach.  The flagship >= 1000-state row must
     finish under the 60 s budget with a nontrivial factorization.

   Where [deterministic] is reported, the same seed was re-run and run
   again at jobs=par_jobs, and cost, factor partitions and RNG-stream
   fingerprint were required to be identical (the jobs-invariance
   contract of Anytime).  The configs below stop on deterministic
   counters; the wall budget is a safety cap sized not to fire. *)

type anytime_row = {
  an_name : string;
  an_states : int;
  an_jobs : int;
  an_tier : string;
  an_bits : int;
  an_s1 : int;
  an_s2 : int;
  an_trivial_bits : int;
  an_exact_bits : int option;  (* exact optimum - corpus rows only *)
  an_wall : float;
  an_evals : int;
  an_feasible : int;
  an_rounds : int;
  an_sa_accepted : int;
  an_timed_out : bool;
  an_fingerprint : int;
  an_deterministic : bool option;  (* None = identity not re-checked *)
  an_incr_identical : bool option;
      (* incremental run = full-recompute oracle rerun; None = oracle
         not re-run (the largest rows, where the full closure is the
         cost being benchmarked away) *)
  an_ns_per_eval : float;  (* wall / evals - the per-proposal cost *)
  an_full_ns_per_eval : float option;  (* same, for the oracle rerun *)
  an_trajectory : Anytime.frontier_point list;
  an_ok : bool;
}

let anytime_identical (a : Anytime.result) (b : Anytime.result) =
  Solver.compare_cost a.Anytime.best.Solver.cost b.Anytime.best.Solver.cost = 0
  && a.Anytime.stats.Anytime.rng_fingerprint
     = b.Anytime.stats.Anytime.rng_fingerprint
  && Partition.compare a.Anytime.best.Solver.pi b.Anytime.best.Solver.pi = 0
  && Partition.compare a.Anytime.best.Solver.rho b.Anytime.best.Solver.rho = 0

let ns_per_eval ~wall ~evals =
  if evals = 0 then 0.0 else wall *. 1e9 /. float_of_int evals

let anytime_row_of_result ~name ~jobs ~exact_bits ~deterministic
    ~incr_identical ~full_wall ~wall machine (r : Anytime.result) =
  let s = r.Anytime.stats in
  let best = r.Anytime.best in
  let bits = best.Solver.cost.Solver.bits in
  let gap_ok = match exact_bits with Some e -> bits >= e | None -> true in
  {
    an_name = name;
    an_states = machine.Machine.num_states;
    an_jobs = jobs;
    an_tier = Format.asprintf "%a" Anytime.pp_tier s.Anytime.tier;
    an_bits = bits;
    an_s1 = Partition.num_classes best.Solver.pi;
    an_s2 = Partition.num_classes best.Solver.rho;
    an_trivial_bits = 2 * Machine.bits_for machine.Machine.num_states;
    an_exact_bits = exact_bits;
    an_wall = wall;
    an_evals = s.Anytime.evals;
    an_feasible = s.Anytime.feasible;
    an_rounds = s.Anytime.rounds;
    an_sa_accepted = s.Anytime.sa_accepted;
    an_timed_out = s.Anytime.timed_out;
    an_fingerprint = s.Anytime.rng_fingerprint;
    an_deterministic = deterministic;
    an_incr_identical = incr_identical;
    an_ns_per_eval = ns_per_eval ~wall ~evals:s.Anytime.evals;
    an_full_ns_per_eval =
      Option.map (fun w -> ns_per_eval ~wall:w ~evals:s.Anytime.evals) full_wall;
    an_trajectory = s.Anytime.trajectory;
    an_ok =
      gap_ok
      && (not s.Anytime.timed_out)
      && (match deterministic with Some d -> d | None -> true)
      && match incr_identical with Some d -> d | None -> true;
  }

(* Forced stochastic tier on a suite machine, cross-checked against the
   exact optimum.  Identity is always re-checked on corpus rows (they
   are small), as is equivalence against the full-recompute closure
   oracle ([incremental = false]). *)
let anytime_corpus_row ~config (spec : Suite.spec) =
  let machine = Suite.machine spec in
  let exact = Solver.solve ~timeout:120.0 machine in
  let r1, wall = timed (fun () -> Anytime.search ~config machine) in
  let r2 = Anytime.search ~config machine in
  let rn =
    Anytime.search ~config:{ config with Anytime.jobs = par_jobs } machine
  in
  let rfull, full_wall =
    timed (fun () ->
        Anytime.search ~config:{ config with Anytime.incremental = false }
          machine)
  in
  let deterministic = anytime_identical r1 r2 && anytime_identical r1 rn in
  anytime_row_of_result ~name:spec.Suite.name ~jobs:config.Anytime.jobs
    ~exact_bits:(Some exact.Solver.best.Solver.cost.Solver.bits)
    ~deterministic:(Some deterministic)
    ~incr_identical:(Some (anytime_identical r1 rfull))
    ~full_wall:(Some full_wall) ~wall machine r1

(* Full anytime driver on a generated machine; must beat the trivial
   doubled realization and stay under the wall cap.  [check_full] reruns
   the row with the full-recompute oracle — affordable up to the ~6000
   state rows; the 10^4+ frontier rows skip it (their oracle identity is
   covered by the 5929-state row and the unit suite). *)
let anytime_generated_row ~spec ~config ~check_identity
    ?(check_full = false) () =
  let machine =
    match Generate.of_spec spec with
    | Some m -> m
    | None -> failwith ("bench: bad generator spec " ^ spec)
  in
  let r1, wall = timed (fun () -> Anytime.solve ~config machine) in
  let deterministic =
    if check_identity then begin
      let r2 = Anytime.solve ~config machine in
      let rn =
        Anytime.solve ~config:{ config with Anytime.jobs = par_jobs } machine
      in
      Some (anytime_identical r1 r2 && anytime_identical r1 rn)
    end
    else None
  in
  let incr_identical, full_wall =
    if check_full then begin
      let rfull, full_wall =
        timed (fun () ->
            Anytime.solve
              ~config:{ config with Anytime.incremental = false }
              machine)
      in
      (Some (anytime_identical r1 rfull), Some full_wall)
    end
    else (None, None)
  in
  let name =
    if config.Anytime.jobs = 1 then spec
    else Printf.sprintf "%s#j%d" spec config.Anytime.jobs
  in
  let row =
    anytime_row_of_result ~name ~jobs:config.Anytime.jobs ~exact_bits:None
      ~deterministic ~incr_identical ~full_wall ~wall machine r1
  in
  {
    row with
    an_ok =
      row.an_ok && wall < 60.0 && not (Solver.is_trivial machine r1.Anytime.best);
  }

let print_anytime_row r =
  Printf.printf
    "%-22s %5d st j%d %-22s bits %2d (%d,%d; trivial %2d)%s wall %6.2fs \
     evals %5d feas %4d rounds %3d%s fp %016x%s\n%!"
    r.an_name r.an_states r.an_jobs r.an_tier r.an_bits r.an_s1 r.an_s2
    r.an_trivial_bits
    (match r.an_exact_bits with
    | Some e -> Printf.sprintf " exact %d gap %+d" e (r.an_bits - e)
    | None -> "")
    r.an_wall r.an_evals r.an_feasible r.an_rounds
    (match r.an_deterministic with
    | Some true -> " deterministic"
    | Some false -> " NONDETERMINISTIC"
    | None -> "")
    r.an_fingerprint
    ((match (r.an_incr_identical, r.an_full_ns_per_eval) with
     | Some true, Some full ->
       Printf.sprintf " incr=full (%.2fx)"
         (if r.an_ns_per_eval > 0.0 then full /. r.an_ns_per_eval else 0.0)
     | Some true, None -> " incr=full"
     | Some false, _ -> " INCR<>FULL"
     | None, _ -> "")
    ^ if r.an_ok then "" else "  FAIL")

let json_of_anytime_row r =
  let base =
    [
      ("name", Json.String r.an_name);
      ("states", Json.Int r.an_states);
      ("jobs", Json.Int r.an_jobs);
      ("tier", Json.String r.an_tier);
      ("bits", Json.Int r.an_bits);
      ("s1", Json.Int r.an_s1);
      ("s2", Json.Int r.an_s2);
      ("trivial_bits", Json.Int r.an_trivial_bits);
      ("wall_s", Json.Float r.an_wall);
      ("evals", Json.Int r.an_evals);
      ("feasible", Json.Int r.an_feasible);
      ("rounds", Json.Int r.an_rounds);
      ("sa_accepted", Json.Int r.an_sa_accepted);
      ("timed_out", Json.Bool r.an_timed_out);
      ("rng_fingerprint", Json.String (Printf.sprintf "%016x" r.an_fingerprint));
    ]
  (* null, not absent, where a check did not run - the schema keeps row
     keys uniform *)
  and exact =
    match r.an_exact_bits with
    | Some e ->
      [ ("exact_bits", Json.Int e); ("gap_bits", Json.Int (r.an_bits - e)) ]
    | None -> [ ("exact_bits", Json.Null); ("gap_bits", Json.Null) ]
  and det =
    [
      ( "deterministic",
        match r.an_deterministic with
        | Some d -> Json.Bool d
        | None -> Json.Null );
      ( "incr_identical",
        match r.an_incr_identical with
        | Some d -> Json.Bool d
        | None -> Json.Null );
      (* deliberately NOT *_ns / *ns_per_op: per-proposal costs are
         context for EXPERIMENTS.md, not bench_diff-judged metrics (the
         judged wall already covers the same measurement) *)
      ("ns_per_eval", Json.Float r.an_ns_per_eval);
      ( "full_ns_per_eval",
        match r.an_full_ns_per_eval with
        | Some v -> Json.Float v
        | None -> Json.Null );
    ]
  and traj =
    (* inside a List, so bench_diff skips these elapsed_s leaves - the
       trajectory is data for EXPERIMENTS.md plots, not a gated metric *)
    [
      ( "trajectory",
        Json.List
          (List.map
             (fun (p : Anytime.frontier_point) ->
               Json.Obj
                 [
                   ("round", Json.Int p.Anytime.round);
                   ("evals", Json.Int p.Anytime.evals);
                   ("elapsed_s", Json.Float p.Anytime.elapsed);
                   ("bits", Json.Int p.Anytime.cost.Solver.bits);
                 ])
             r.an_trajectory) );
    ]
  in
  Json.Obj (base @ exact @ det @ traj)

let finish_anytime ~out rows =
  List.iter print_anytime_row rows;
  let failures = List.length (List.filter (fun r -> not r.an_ok) rows) in
  (match out with
  | Some path when failures = 0 ->
    Json.write path
      (Schema.wrap ~bench:"anytime" ~jobs:par_jobs
         ~extra:
           [
             ( "recommended_domains",
               Json.Int (Domain.recommended_domain_count ()) );
           ]
         (List.map json_of_anytime_row rows));
    Printf.printf "wrote %s\n" path
  | _ -> ());
  if failures = 0 then Printf.printf "anytime: all rows ok\n";
  exit failures

let anytime_corpus_config =
  { Anytime.default_config with Anytime.max_evals = 6000; jobs = 1 }

let run_anytime ?(out = "BENCH_anytime.json") () =
  let corpus =
    List.map (anytime_corpus_row ~config:anytime_corpus_config) Suite.all
  in
  let gen ?(check_identity = false) ?(check_full = false) ?(jobs = 1)
      ~max_evals spec =
    anytime_generated_row ~spec
      ~config:
        {
          Anytime.default_config with
          Anytime.max_evals;
          jobs;
          budget = 60.0;
        }
      ~check_identity ~check_full ()
  in
  let generated =
    [ gen ~check_identity:true ~check_full:true ~max_evals:4000
        "planted:1024x4@1" ]
    @ (if par_jobs > 1 then
         [ gen ~jobs:par_jobs ~max_evals:4000 "planted:1024x4@1" ]
       else [])
    @ [
        (* proposal budgets shrink with size: a proposal costs roughly
           O(states * classes / 64) for the full closure, so these keep
           each row well under the 60 s wall cap (which must not fire -
           it is the one nondeterministic stop).  The oracle rerun
           ([check_full]) stops at the 5929-state row: its full-closure
           wall is the old frontier, and the 10^4+ rows below exist
           precisely because the delta engine no longer pays it. *)
        gen ~check_full:true ~max_evals:2000 "planted:2048x4@1";
        gen ~check_full:true ~max_evals:1000 "planted:5120x4@1";
        (* the incremental-closure frontier: >= 10^4 states on 1 core *)
        gen ~max_evals:1000 "planted:12288x4@1";
        gen ~max_evals:600 "planted:16384x4@1";
      ]
  in
  finish_anytime ~out:(Some out) (corpus @ generated)

(* The CI gate: three small corpus machines plus a small planted
   machine, tiny proposal budgets, forced past the exact tier.  Writes
   the schema'd row file when OUT is given so check.sh can run it twice
   and bench_diff the walls. *)
let anytime_quick_config =
  {
    Anytime.default_config with
    Anytime.beam_width = 4;
    moves_per_candidate = 12;
    max_rounds = 40;
    max_evals = 800;
    patience = 8;
    sa_chains = 2;
    sa_steps = 100;
    jobs = 1;
  }

let run_anytime_quick ?out () =
  let corpus =
    List.filter_map Suite.find [ "dk27"; "tav"; "mc" ]
    |> List.map (anytime_corpus_row ~config:anytime_quick_config)
  in
  let generated =
    [
      anytime_generated_row ~spec:"planted:96x4@1"
        ~config:{ anytime_quick_config with Anytime.exact_max_states = 64 }
        ~check_identity:true ~check_full:true ();
    ]
  in
  finish_anytime ~out (corpus @ generated)

let () =
  (* `--profile FILE` anywhere on the line samples the whole run and
     writes folded stacks at exit - modes terminate via [exit], so the
     writer hangs off [at_exit]. *)
  let rec strip_profile acc = function
    | [] -> (List.rev acc, None)
    | "--profile" :: file :: rest -> (List.rev acc @ rest, Some file)
    | [ "--profile" ] ->
      prerr_endline "bench: --profile needs a file argument";
      exit 2
    | arg :: rest -> strip_profile (arg :: acc) rest
  in
  let args, profile = strip_profile [] (List.tl (Array.to_list Sys.argv)) in
  Parmon.install ();
  (match profile with
  | None -> ()
  | Some file ->
    Profile.start ();
    at_exit (fun () ->
        if Profile.running () then begin
          let report = Profile.stop () in
          Profile.write_folded file report;
          Printf.eprintf "profile: wrote %s (%d samples @ %d Hz)\n%!" file
            report.Profile.samples report.Profile.hz
        end));
  match args with
  | [ "quick" ] -> run_quick ()
  | [ "json" ] -> run_json ()
  | [ "faultsim" ] -> run_faultsim ()
  | [ "faultsim-quick" ] -> run_faultsim_quick ()
  | [ "minimize" ] -> run_minimize ()
  | [ "minimize-quick" ] -> run_minimize_quick ()
  | [ "core" ] -> run_core ()
  | [ "core-quick" ] -> run_core_quick ()
  | [ "core-quick"; out ] -> run_core_quick ~out ()
  | [ "verify" ] -> run_verify ()
  | [ "verify"; out ] -> run_verify ~out ()
  | [ "verify-quick" ] -> run_verify_quick ()
  | [ "verify-quick"; out ] -> run_verify_quick ~out ()
  | [ "anytime" ] -> run_anytime ()
  | [ "anytime"; out ] -> run_anytime ~out ()
  | [ "anytime-quick" ] -> run_anytime_quick ()
  | [ "anytime-quick"; out ] -> run_anytime_quick ~out ()
  | [ "micro" ] -> run_benchmarks ()
  | [ "tables" ] -> print_tables ()
  | [] | [ "all" ] ->
    print_tables ();
    run_benchmarks ()
  | other :: _ ->
    prerr_endline
      ("bench: unknown mode " ^ other
     ^ " (expected all, tables, micro, quick, json, faultsim, \
        faultsim-quick, minimize, minimize-quick, core, core-quick, \
        verify, verify-quick, anytime or anytime-quick [OUT]; any mode \
        accepts --profile FILE)");
    exit 2
