module Partition = Stc_partition.Partition
module Pair = Stc_partition.Pair
module Enumerate = Stc_partition.Enumerate
module Machine = Stc_fsm.Machine
module Zoo = Stc_fsm.Zoo
module Generate = Stc_fsm.Generate
module Rng = Stc_util.Rng

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)
let check_string = Alcotest.(check string)

let qcheck = QCheck_alcotest.to_alcotest

(* Random partition of size n from a seed. *)
let random_partition rng n =
  let k = 1 + Rng.int rng n in
  Partition.of_class_map (Array.init n (fun _ -> Rng.int rng k))

(* Random transition table. *)
let random_next rng n k =
  Array.init n (fun _ -> Array.init k (fun _ -> Rng.int rng n))

(* ------------------------------------------------------------------ *)
(* Partition basics                                                    *)
(* ------------------------------------------------------------------ *)

let test_identity_universal () =
  let id = Partition.identity 4 and u = Partition.universal 4 in
  check_int "identity classes" 4 (Partition.num_classes id);
  check_int "universal classes" 1 (Partition.num_classes u);
  check_bool "is_identity" true (Partition.is_identity id);
  check_bool "is_universal" true (Partition.is_universal u);
  check_bool "id not universal" false (Partition.is_universal id);
  check_bool "same in universal" true (Partition.same u 0 3);
  check_bool "distinct in identity" false (Partition.same id 0 3)

let test_of_class_map_canonical () =
  let p = Partition.of_class_map [| 7; 3; 7; 1 |] in
  check_int "three classes" 3 (Partition.num_classes p);
  check_int "first class is 0" 0 (Partition.class_of p 0);
  check_int "second class is 1" 1 (Partition.class_of p 1);
  check_bool "0 ~ 2" true (Partition.same p 0 2);
  (* Canonical class maps make structural equality semantic. *)
  let q = Partition.of_class_map [| 0; 9; 0; 4 |] in
  check_bool "equal" true (Partition.equal p q)

let test_of_blocks () =
  let p = Partition.of_blocks ~n:5 [ [ 0; 3 ]; [ 1; 4 ] ] in
  check_int "three classes (2 is a singleton)" 3 (Partition.num_classes p);
  check_bool "0 ~ 3" true (Partition.same p 0 3);
  check_bool "2 alone" false (Partition.same p 2 0);
  check_bool "blocks roundtrip" true
    (Partition.blocks p = [ [ 0; 3 ]; [ 1; 4 ]; [ 2 ] ])

let test_of_blocks_rejects_overlap () =
  check_bool "overlap rejected" true
    (match Partition.of_blocks ~n:4 [ [ 0; 1 ]; [ 1; 2 ] ] with
    | exception Invalid_argument _ -> true
    | _ -> false);
  check_bool "out of range rejected" true
    (match Partition.of_blocks ~n:3 [ [ 0; 5 ] ] with
    | exception Invalid_argument _ -> true
    | _ -> false)

let test_pair_relation () =
  let p = Partition.pair_relation ~n:5 1 3 in
  check_int "four classes" 4 (Partition.num_classes p);
  check_bool "1 ~ 3" true (Partition.same p 1 3);
  check_bool "others singleton" false (Partition.same p 0 2)

let test_meet_join_examples () =
  let p = Partition.of_blocks ~n:4 [ [ 0; 1 ]; [ 2; 3 ] ] in
  let q = Partition.of_blocks ~n:4 [ [ 0; 3 ]; [ 1; 2 ] ] in
  check_bool "meet is identity" true (Partition.is_identity (Partition.meet p q));
  check_bool "join is universal" true (Partition.is_universal (Partition.join p q))

let test_subseteq () =
  let fine = Partition.of_blocks ~n:4 [ [ 0; 1 ] ] in
  let coarse = Partition.of_blocks ~n:4 [ [ 0; 1; 2 ] ] in
  check_bool "fine <= coarse" true (Partition.subseteq fine coarse);
  check_bool "coarse not<= fine" false (Partition.subseteq coarse fine);
  check_bool "reflexive" true (Partition.subseteq fine fine)

let test_representatives_members () =
  let p = Partition.of_blocks ~n:5 [ [ 1; 4 ]; [ 0; 2 ] ] in
  let reps = Partition.representatives p in
  check_int "rep of class of 1" 1 reps.(Partition.class_of p 1);
  check_int "rep of class of 2" 0 reps.(Partition.class_of p 2);
  check_bool "members of class of 4" true
    (Partition.members p (Partition.class_of p 4) = [ 1; 4 ])

let test_pp () =
  let p = Partition.of_blocks ~n:4 [ [ 0; 3 ]; [ 1; 2 ] ] in
  check_string "printed" "{0,3}{1,2}" (Partition.to_string p)

let test_join_all () =
  let ps = [ Partition.pair_relation ~n:4 0 1; Partition.pair_relation ~n:4 1 2 ] in
  let j = Partition.join_all ~n:4 ps in
  check_bool "transitive closure" true (Partition.same j 0 2);
  check_bool "3 apart" false (Partition.same j 0 3)

(* Lattice laws, exhaustive on n = 4 (Bell(4) = 15). *)
let test_lattice_laws_exhaustive () =
  let all = Enumerate.all 4 in
  List.iter
    (fun p ->
      List.iter
        (fun q ->
          let m = Partition.meet p q and j = Partition.join p q in
          check_bool "meet commutative" true (Partition.equal m (Partition.meet q p));
          check_bool "join commutative" true (Partition.equal j (Partition.join q p));
          check_bool "meet lower bound" true
            (Partition.subseteq m p && Partition.subseteq m q);
          check_bool "join upper bound" true
            (Partition.subseteq p j && Partition.subseteq q j);
          (* order characterisations *)
          check_bool "p<=q iff join=q" true
            (Partition.subseteq p q = Partition.equal j q);
          check_bool "p<=q iff meet=p" true
            (Partition.subseteq p q = Partition.equal m p);
          (* absorption *)
          check_bool "absorb 1" true
            (Partition.equal p (Partition.meet p (Partition.join p q)));
          check_bool "absorb 2" true
            (Partition.equal p (Partition.join p (Partition.meet p q))))
        all)
    all

let test_lattice_laws_random =
  QCheck.Test.make ~count:200 ~name:"lattice laws on random partitions"
    QCheck.(pair (int_bound 10000) (int_range 2 12))
    (fun (seed, n) ->
      let rng = Rng.create seed in
      let p = random_partition rng n
      and q = random_partition rng n
      and r = random_partition rng n in
      let ( = ) = Partition.equal in
      Partition.meet p (Partition.meet q r) = Partition.meet (Partition.meet p q) r
      && Partition.join p (Partition.join q r) = Partition.join (Partition.join p q) r
      && Partition.meet p p = p
      && Partition.join p p = p)

(* ------------------------------------------------------------------ *)
(* Hash-consing                                                        *)
(* ------------------------------------------------------------------ *)

let test_hashcons_physical_equality () =
  (* Equal partitions built independently intern to the same value. *)
  let p = Partition.of_class_map [| 7; 3; 7; 1 |] in
  let q = Partition.of_class_map [| 0; 9; 0; 4 |] in
  check_bool "of_class_map interns" true (p == q);
  let a = Partition.of_blocks ~n:4 [ [ 0; 2 ] ] in
  let b = Partition.of_class_map [| 0; 1; 0; 2 |] in
  check_bool "of_blocks interns to the same" true (a == b);
  check_bool "pair_relation interns" true
    (Partition.pair_relation ~n:4 0 2 == a)

let test_hashcons_operations_intern =
  QCheck.Test.make ~count:300 ~name:"meet/join results are interned"
    QCheck.(pair (int_bound 10000) (int_range 2 12))
    (fun (seed, n) ->
      let rng = Rng.create seed in
      let p = random_partition rng n and q = random_partition rng n in
      Partition.meet p q == Partition.meet q p
      && Partition.join p q == Partition.join q p
      && Partition.hash (Partition.meet p q) = Partition.hash (Partition.meet q p)
      (* equal <-> physically equal, within one domain *)
      && Partition.equal p q = (p == q))

(* ------------------------------------------------------------------ *)
(* Memoized operators                                                  *)
(* ------------------------------------------------------------------ *)

let test_memo_matches_direct =
  QCheck.Test.make ~count:200 ~name:"Memo.m / Memo.big_m = m / big_m"
    QCheck.(int_bound 100000)
    (fun seed ->
      let rng = Rng.create seed in
      let n = 2 + Rng.int rng 6 and k = 1 + Rng.int rng 3 in
      let next = random_next rng n k in
      let memo = Pair.Memo.create ~next in
      let ps = List.init 10 (fun _ -> random_partition rng n) in
      List.for_all
        (fun p ->
          Partition.equal (Pair.Memo.m memo p) (Pair.m ~next p)
          && Partition.equal (Pair.Memo.big_m memo p) (Pair.big_m ~next p)
          (* cached: second call returns the identical partition *)
          && Pair.Memo.m memo p == Pair.Memo.m memo p)
        ps)

let test_memo_counters () =
  let m = Zoo.paper_fig5 () in
  let next = m.Machine.next in
  let memo = Pair.Memo.create ~next in
  let pi = Partition.of_blocks ~n:4 [ [ 0; 1 ]; [ 2; 3 ] ] in
  check_int "fresh cache" 0 (Pair.Memo.hits memo);
  ignore (Pair.Memo.m memo pi);
  check_int "first call misses" 1 (Pair.Memo.misses memo);
  ignore (Pair.Memo.m memo pi);
  ignore (Pair.Memo.m memo pi);
  check_int "repeat calls hit" 2 (Pair.Memo.hits memo);
  check_int "no extra misses" 1 (Pair.Memo.misses memo)

(* ------------------------------------------------------------------ *)
(* Enumerate                                                           *)
(* ------------------------------------------------------------------ *)

let test_bell_numbers () =
  List.iter
    (fun (n, b) -> check_int (Printf.sprintf "bell %d" n) b (Enumerate.bell n))
    [ (0, 1); (1, 1); (2, 2); (3, 5); (4, 15); (5, 52); (6, 203); (7, 877) ]

let test_enumerate_counts () =
  for n = 1 to 6 do
    let all = Enumerate.all n in
    check_int
      (Printf.sprintf "count for n=%d" n)
      (Enumerate.bell n) (List.length all);
    (* all distinct *)
    let distinct = List.sort_uniq Partition.compare all in
    check_int "distinct" (List.length all) (List.length distinct)
  done

let test_enumerate_streaming () =
  (* The Seq agrees with the materialized list... *)
  for n = 1 to 6 do
    let streamed = List.of_seq (Enumerate.partitions n) in
    check_bool
      (Printf.sprintf "streamed = all for n=%d" n)
      true
      (List.equal Partition.equal streamed (Enumerate.all n))
  done;
  (* ...is persistent (re-iterating from the head gives the same answer,
     e.g. for nested loops over all pairs)... *)
  let s = Enumerate.partitions 5 in
  let count seq = Seq.fold_left (fun acc _ -> acc + 1) 0 seq in
  check_int "first pass" (Enumerate.bell 5) (count s);
  check_int "second pass" (Enumerate.bell 5) (count s);
  let pairs = ref 0 in
  Seq.iter (fun _ -> Seq.iter (fun _ -> incr pairs) s) s;
  check_int "nested pairs" (Enumerate.bell 5 * Enumerate.bell 5) !pairs;
  (* ...and is lazy: taking a prefix of a Bell-number space far beyond the
     materialization ceiling terminates immediately. *)
  let prefix = List.of_seq (Seq.take 100 (Enumerate.partitions 20)) in
  check_int "lazy prefix" 100 (List.length prefix);
  check_bool "prefix distinct" true
    (List.length (List.sort_uniq Partition.compare prefix) = 100)

(* ------------------------------------------------------------------ *)
(* Pair: the m / M Galois connection                                   *)
(* ------------------------------------------------------------------ *)

(* Direct quadratic definition of a partition pair, as an oracle. *)
let is_pair_oracle next pi rho =
  let n = Array.length next and k = Array.length next.(0) in
  let ok = ref true in
  for s = 0 to n - 1 do
    for t = 0 to n - 1 do
      if Partition.same pi s t then
        for i = 0 to k - 1 do
          if not (Partition.same rho next.(s).(i) next.(t).(i)) then ok := false
        done
    done
  done;
  !ok

let test_is_pair_matches_oracle =
  QCheck.Test.make ~count:200 ~name:"is_pair agrees with quadratic oracle"
    QCheck.(int_bound 100000)
    (fun seed ->
      let rng = Rng.create seed in
      let n = 2 + Rng.int rng 6 and k = 1 + Rng.int rng 3 in
      let next = random_next rng n k in
      let pi = random_partition rng n and rho = random_partition rng n in
      Pair.is_pair ~next pi rho = is_pair_oracle next pi rho)

let test_galois_connection =
  QCheck.Test.make ~count:300 ~name:"(pi,rho) pair <-> m pi <= rho <-> pi <= M rho"
    QCheck.(int_bound 100000)
    (fun seed ->
      let rng = Rng.create seed in
      let n = 2 + Rng.int rng 6 and k = 1 + Rng.int rng 3 in
      let next = random_next rng n k in
      let pi = random_partition rng n and rho = random_partition rng n in
      let p = Pair.is_pair ~next pi rho in
      p = Partition.subseteq (Pair.m ~next pi) rho
      && p = Partition.subseteq pi (Pair.big_m ~next rho))

let test_m_minimality =
  QCheck.Test.make ~count:100 ~name:"m pi is the minimal right member"
    QCheck.(int_bound 100000)
    (fun seed ->
      let rng = Rng.create seed in
      let n = 2 + Rng.int rng 4 in
      let next = random_next rng n 2 in
      let pi = random_partition rng n in
      let mpi = Pair.m ~next pi in
      (* m pi is itself a valid right member... *)
      Pair.is_pair ~next pi mpi
      (* ...and no strictly finer partition is. *)
      && List.for_all
           (fun rho ->
             if Partition.subseteq rho mpi && not (Partition.equal rho mpi) then
               not (Pair.is_pair ~next pi rho)
             else true)
           (Enumerate.all n))

let test_big_m_maximality =
  QCheck.Test.make ~count:100 ~name:"M rho is the maximal left member"
    QCheck.(int_bound 100000)
    (fun seed ->
      let rng = Rng.create seed in
      let n = 2 + Rng.int rng 4 in
      let next = random_next rng n 2 in
      let rho = random_partition rng n in
      let bm = Pair.big_m ~next rho in
      Pair.is_pair ~next bm rho
      && List.for_all
           (fun pi ->
             if Partition.subseteq bm pi && not (Partition.equal bm pi) then
               not (Pair.is_pair ~next pi rho)
             else true)
           (Enumerate.all n))

let test_adjunction_identities =
  QCheck.Test.make ~count:300 ~name:"m M m = m and M m M = M"
    QCheck.(int_bound 100000)
    (fun seed ->
      let rng = Rng.create seed in
      let n = 2 + Rng.int rng 6 and k = 1 + Rng.int rng 3 in
      let next = random_next rng n k in
      let p = random_partition rng n in
      let m = Pair.m ~next and big_m = Pair.big_m ~next in
      Partition.equal (m (big_m (m p))) (m p)
      && Partition.equal (big_m (m (big_m p))) (big_m p))

let test_m_monotone =
  QCheck.Test.make ~count:200 ~name:"m and M are monotone"
    QCheck.(int_bound 100000)
    (fun seed ->
      let rng = Rng.create seed in
      let n = 2 + Rng.int rng 6 and k = 1 + Rng.int rng 3 in
      let next = random_next rng n k in
      let p = random_partition rng n in
      let q = Partition.join p (random_partition rng n) in
      (* p <= q by construction *)
      Partition.subseteq (Pair.m ~next p) (Pair.m ~next q)
      && Partition.subseteq (Pair.big_m ~next p) (Pair.big_m ~next q))

(* The identity behind the search tree: m(pi) is the join of the basis
   elements m(p_{s,t}) over the pairs (s,t) inside pi. *)
let test_m_is_join_of_basis =
  QCheck.Test.make ~count:200 ~name:"m pi = join of m(p_st) over (s,t) in pi"
    QCheck.(int_bound 100000)
    (fun seed ->
      let rng = Rng.create seed in
      let n = 2 + Rng.int rng 6 and k = 1 + Rng.int rng 3 in
      let next = random_next rng n k in
      let pi = random_partition rng n in
      let parts = ref [] in
      for s = 0 to n - 1 do
        for t = s + 1 to n - 1 do
          if Partition.same pi s t then begin
            let p_st = Partition.pair_relation ~n s t in
            parts := Pair.m ~next p_st :: !parts
          end
        done
      done;
      Partition.equal (Pair.m ~next pi) (Partition.join_all ~n !parts))

let test_basis_properties () =
  let m = Zoo.paper_fig5 () in
  let next = m.Machine.next in
  let basis = Pair.basis ~next in
  check_int "basis size" (Pair.basis_size ~next) (List.length basis);
  (* deduplicated *)
  let distinct = List.sort_uniq Partition.compare basis in
  check_int "distinct" (List.length basis) (List.length distinct);
  (* each element is m of some pair relation *)
  let n = m.Machine.num_states in
  List.iter
    (fun b ->
      let found = ref false in
      for s = 0 to n - 1 do
        for t = s + 1 to n - 1 do
          if Partition.equal b (Pair.m ~next (Partition.pair_relation ~n s t))
          then found := true
        done
      done;
      check_bool "is m of a pair relation" true !found)
    basis

let test_mm_pairs_are_mm =
  QCheck.Test.make ~count:60 ~name:"mm_pairs returns genuine Mm-pairs"
    QCheck.(int_bound 100000)
    (fun seed ->
      let rng = Rng.create seed in
      let n = 2 + Rng.int rng 5 and k = 1 + Rng.int rng 2 in
      let next = random_next rng n k in
      let pairs = Pair.mm_pairs ~next in
      pairs <> []
      && List.for_all
           (fun (p, bm) ->
             Partition.equal bm (Pair.big_m ~next p)
             && Partition.equal (Pair.m ~next bm) p)
           pairs)

(* ------------------------------------------------------------------ *)
(* Packed kernels vs the retained element-wise reference               *)
(* ------------------------------------------------------------------ *)

module Reference = Stc_partition.Reference

(* Class maps with ids well outside [0..n-1] (including negatives), to
   drive the canonicalization fallback as well as the stamped fast
   path. *)
let wild_class_map rng n =
  let k = 1 + Rng.int rng n in
  let spread = Rng.int rng 3 in
  Array.init n (fun _ ->
      let id = Rng.int rng k in
      match spread with
      | 0 -> id
      | 1 -> (id * 7919) + 100000
      | _ -> (id * 104729) - 500000)

(* Sizes straddling the 63-bit word boundary: multi-word rows from
   n = 64 up exercise every word-loop remainder. *)
let size_gen = QCheck.oneof [ QCheck.int_range 1 20; QCheck.int_range 60 150 ]

let test_canonicalize_matches_reference =
  QCheck.Test.make ~count:300 ~name:"of_class_map = Reference.canonicalize"
    QCheck.(pair (int_bound 100000) size_gen)
    (fun (seed, n) ->
      let rng = Rng.create seed in
      let cls = wild_class_map rng n in
      let p = Partition.of_class_map cls in
      Partition.class_map p = Reference.canonicalize cls
      && Partition.num_classes p = Reference.num_classes cls)

let test_meet_matches_reference =
  QCheck.Test.make ~count:300 ~name:"meet = Reference.meet"
    QCheck.(pair (int_bound 100000) size_gen)
    (fun (seed, n) ->
      let rng = Rng.create seed in
      let a = wild_class_map rng n and b = wild_class_map rng n in
      let p = Partition.of_class_map a and q = Partition.of_class_map b in
      Partition.class_map (Partition.meet p q)
      = Reference.canonicalize (Reference.meet (Partition.class_map p) (Partition.class_map q)))

let test_join_matches_reference =
  QCheck.Test.make ~count:300 ~name:"join = Reference.join"
    QCheck.(pair (int_bound 100000) size_gen)
    (fun (seed, n) ->
      let rng = Rng.create seed in
      let a = wild_class_map rng n and b = wild_class_map rng n in
      let p = Partition.of_class_map a and q = Partition.of_class_map b in
      Partition.class_map (Partition.join p q)
      = Reference.join (Partition.class_map p) (Partition.class_map q))

let test_join_all_matches_reference =
  QCheck.Test.make ~count:200 ~name:"join_all = folded Reference.join"
    QCheck.(pair (int_bound 100000) size_gen)
    (fun (seed, n) ->
      let rng = Rng.create seed in
      let maps = List.init (1 + Rng.int rng 4) (fun _ -> wild_class_map rng n) in
      let ps = List.map Partition.of_class_map maps in
      let expected =
        List.fold_left
          (fun acc m -> Reference.join acc (Reference.canonicalize m))
          (Array.init n (fun s -> s))
          maps
      in
      Partition.class_map (Partition.join_all ~n ps) = expected)

let test_subseteq_matches_reference =
  QCheck.Test.make ~count:300 ~name:"subseteq = Reference.subseteq"
    QCheck.(pair (int_bound 100000) size_gen)
    (fun (seed, n) ->
      let rng = Rng.create seed in
      let a = wild_class_map rng n and b = wild_class_map rng n in
      let p = Partition.of_class_map a and q = Partition.of_class_map b in
      (* both directions, plus guaranteed-true instances via meet *)
      let m = Partition.meet p q in
      Partition.subseteq p q
      = Reference.subseteq (Partition.class_map p) (Partition.class_map q)
      && Partition.subseteq q p
         = Reference.subseteq (Partition.class_map q) (Partition.class_map p)
      && Partition.subseteq m p && Partition.subseteq m q)

let test_meet_subseteq_matches_composition =
  QCheck.Test.make ~count:300 ~name:"meet_subseteq p q r = subseteq (meet p q) r"
    QCheck.(pair (int_bound 100000) size_gen)
    (fun (seed, n) ->
      let rng = Rng.create seed in
      let p = Partition.of_class_map (wild_class_map rng n)
      and q = Partition.of_class_map (wild_class_map rng n)
      and r = Partition.of_class_map (wild_class_map rng n) in
      let direct = Partition.meet_subseteq p q r in
      direct = Partition.subseteq (Partition.meet p q) r
      (* and a guaranteed-true instance *)
      && Partition.meet_subseteq p q (Partition.meet p q))

(* Relabeling the input class map must not change the partition - and
   therefore not its hash. *)
let test_hash_stable_under_relabeling =
  QCheck.Test.make ~count:300 ~name:"hash stable under class-map relabeling"
    QCheck.(pair (int_bound 100000) size_gen)
    (fun (seed, n) ->
      let rng = Rng.create seed in
      let cls = wild_class_map rng n in
      let p = Partition.of_class_map cls in
      (* injective relabeling of the ids *)
      let shift = 1 + Rng.int rng 1000 in
      let relabeled = Array.map (fun id -> (id * 2) + shift) cls in
      let q = Partition.of_class_map relabeled in
      Partition.equal p q && Partition.hash p = Partition.hash q)

let test_iter_coarse_members_spec =
  QCheck.Test.make ~count:300 ~name:"iter_coarse_members = non-reps by block"
    QCheck.(pair (int_bound 100000) size_gen)
    (fun (seed, n) ->
      let rng = Rng.create seed in
      let p = Partition.of_class_map (wild_class_map rng n) in
      let got = ref [] in
      Partition.iter_coarse_members p (fun rep s -> got := (rep, s) :: !got);
      let expected =
        List.concat_map
          (fun block ->
            match block with
            | rep :: rest -> List.map (fun s -> (rep, s)) rest
            | [] -> [])
          (Partition.blocks p)
      in
      List.rev !got = expected)

(* ------------------------------------------------------------------ *)
(* Move kernels (anytime stochastic search)                            *)
(* ------------------------------------------------------------------ *)

let test_merge_classes_examples () =
  let p = Partition.of_blocks ~n:5 [ [ 0; 1 ]; [ 2 ]; [ 3; 4 ] ] in
  let q = Partition.merge_classes p 0 2 in
  check_bool "blocks merged" true (Partition.same q 0 3 && Partition.same q 1 4);
  check_bool "other block kept" false (Partition.same q 0 2);
  check_int "one fewer class" (Partition.num_classes p - 1)
    (Partition.num_classes q);
  check_bool "self-merge is a no-op" true (Partition.merge_classes p 1 1 == p);
  Alcotest.check_raises "class out of range"
    (Invalid_argument "Partition.merge_classes: class out of range") (fun () ->
      ignore (Partition.merge_classes p 0 3))

let test_merge_classes_is_join =
  QCheck.Test.make ~count:300
    ~name:"merge_classes = join with pair_relation of representatives"
    QCheck.(pair (int_bound 100000) (int_range 2 80))
    (fun (seed, n) ->
      let rng = Rng.create seed in
      let p = random_partition rng n in
      let k = Partition.num_classes p in
      let c = Rng.int rng k and d = Rng.int rng k in
      let reps = Partition.representatives p in
      let got = Partition.merge_classes p c d in
      let expected =
        Partition.join p (Partition.pair_relation ~n reps.(c) reps.(d))
      in
      Partition.equal got expected)

let test_split_singleton_examples () =
  let p = Partition.of_blocks ~n:4 [ [ 0; 1; 2 ]; [ 3 ] ] in
  let q = Partition.split_singleton p 1 in
  check_bool "element left its block" false
    (Partition.same q 0 1 || Partition.same q 1 2);
  check_bool "rest of the block kept" true (Partition.same q 0 2);
  check_int "one more class" (Partition.num_classes p + 1)
    (Partition.num_classes q);
  check_bool "splitting a singleton is a no-op" true
    (Partition.split_singleton p 3 == p);
  (* merging the singleton back undoes the split *)
  let back =
    Partition.merge_classes q (Partition.class_of q 1) (Partition.class_of q 0)
  in
  check_bool "merge round-trip" true (Partition.equal back p)

let test_split_singleton_spec =
  QCheck.Test.make ~count:300
    ~name:"split_singleton = class-map surgery, refines its input"
    QCheck.(pair (int_bound 100000) (int_range 2 80))
    (fun (seed, n) ->
      let rng = Rng.create seed in
      let p = random_partition rng n in
      let s = Rng.int rng n in
      let q = Partition.split_singleton p s in
      let expected =
        Partition.of_class_map
          (Array.init n (fun t ->
               if t = s then n else Partition.class_of p t))
      in
      Partition.equal q expected
      && Partition.subseteq q p
      && List.length (Partition.members q (Partition.class_of q s)) = 1)

let test_blocks_members_multiword =
  QCheck.Test.make ~count:200 ~name:"blocks/members/representatives agree (multi-word)"
    QCheck.(pair (int_bound 100000) (int_range 60 150))
    (fun (seed, n) ->
      let rng = Rng.create seed in
      let p = Partition.of_class_map (wild_class_map rng n) in
      let blocks = Partition.blocks p in
      let reps = Partition.representatives p in
      List.length blocks = Partition.num_classes p
      && List.for_all
           (fun block ->
             let c = Partition.class_of p (List.hd block) in
             Partition.members p c = block && reps.(c) = List.hd block)
           blocks
      && List.concat blocks |> List.sort Stdlib.compare
         = List.init n (fun s -> s))

(* ------------------------------------------------------------------ *)
(* Incremental closure engine vs the from-scratch oracle               *)
(* ------------------------------------------------------------------ *)

let test_class_size_spec =
  QCheck.Test.make ~count:300 ~name:"class_size = length of members (multi-word)"
    QCheck.(pair (int_bound 100000) size_gen)
    (fun (seed, n) ->
      let rng = Rng.create seed in
      let p = Partition.of_class_map (wild_class_map rng n) in
      let ok = ref true in
      for c = 0 to Partition.num_classes p - 1 do
        if Partition.class_size p c <> List.length (Partition.members p c) then
          ok := false
      done;
      !ok)

let test_coarsen_with_spec =
  QCheck.Test.make ~count:300
    ~name:"coarsen_with = join of representative pair relations"
    QCheck.(pair (int_bound 100000) size_gen)
    (fun (seed, n) ->
      let rng = Rng.create seed in
      let p = Partition.of_class_map (wild_class_map rng n) in
      let k = Partition.num_classes p in
      (* a random idempotent class map: each class points at the smallest
         member of its group *)
      let groups = Array.init k (fun _ -> Rng.int rng (1 + Rng.int rng k)) in
      let f c =
        let g = groups.(c) in
        let rec first i = if groups.(i) = g then i else first (i + 1) in
        first 0
      in
      let got = Partition.coarsen_with p f in
      let reps = Partition.representatives p in
      let expected =
        Partition.join_all ~n
          (p
          :: List.init k (fun c ->
                 Partition.pair_relation ~n reps.(c) reps.(f c)))
      in
      Partition.equal got expected
      && Partition.coarsen_with p (fun c -> c) == p)

(* The from-scratch closure the anytime tier used before the delta
   engine: alternating joins with m-images up to the least fixpoint. *)
let close_pair_spec ~next pi rho =
  let rec go pi rho =
    let rho' = Partition.join rho (Pair.m ~next pi) in
    let pi' = Partition.join pi (Pair.m ~next rho') in
    if Partition.equal pi pi' && Partition.equal rho rho' then (pi, rho')
    else go pi' rho'
  in
  go pi rho

(* A random {e closed} symmetric pair: the precondition of close_merge. *)
let random_closed_pair rng ~next n =
  let pi0 = random_partition rng n in
  let rho0 = random_partition rng n in
  close_pair_spec ~next pi0 rho0

let test_close_merge_matches_oracle =
  QCheck.Test.make ~count:200
    ~name:"close_merge = close_pair o merge_classes (closed parents)"
    QCheck.(pair (int_bound 100000) size_gen)
    (fun (seed, n) ->
      let rng = Rng.create seed in
      let k_in = 1 + Rng.int rng 4 in
      let next = random_next rng n k_in in
      let pi, rho = random_closed_pair rng ~next n in
      let on_pi = Rng.bool rng in
      let side = if on_pi then pi else rho in
      let k = Partition.num_classes side in
      let c = Rng.int rng k and d = Rng.int rng k in
      let got_pi, got_rho, dirty =
        Pair.close_merge ~next ~pi ~rho ~on_pi c d
      in
      let side' = Partition.merge_classes side c d in
      let exp_pi, exp_rho =
        if on_pi then close_pair_spec ~next side' rho
        else close_pair_spec ~next pi side'
      in
      Partition.equal got_pi exp_pi
      && Partition.equal got_rho exp_rho
      && dirty >= 0
      (* a self-merge forces nothing: both sides come back physically *)
      && (c <> d || (got_pi == pi && got_rho == rho)))

let test_big_m_coarse_matches =
  QCheck.Test.make ~count:200 ~name:"big_m_coarse from a refinement = big_m"
    QCheck.(pair (int_bound 100000) size_gen)
    (fun (seed, n) ->
      let rng = Rng.create seed in
      let k_in = 1 + Rng.int rng 4 in
      let next = random_next rng n k_in in
      let base = random_partition rng n in
      (* rho coarsens base by a random join *)
      let rho = Partition.join base (random_partition rng n) in
      let bm = Pair.big_m ~next base in
      Partition.equal
        (Pair.big_m_coarse ~next ~rho bm)
        (Pair.big_m ~next rho)
      (* base = rho degenerate case *)
      && Partition.equal (Pair.big_m_coarse ~next ~rho:base bm) bm)

let test_memo_big_m_from =
  QCheck.Test.make ~count:200 ~name:"Memo.big_m_from = big_m (and is cached)"
    QCheck.(pair (int_bound 100000) size_gen)
    (fun (seed, n) ->
      let rng = Rng.create seed in
      let k_in = 1 + Rng.int rng 4 in
      let next = random_next rng n k_in in
      let base = random_partition rng n in
      let rho = Partition.join base (random_partition rng n) in
      let memo = Pair.Memo.create ~next in
      let first = Pair.Memo.big_m_from memo ~base rho in
      let again = Pair.Memo.big_m_from memo ~base rho in
      Partition.equal first (Pair.big_m ~next rho)
      && first == again
      (* the plain memoized entry and the derived one share the table *)
      && Pair.Memo.big_m memo rho == first)

(* ------------------------------------------------------------------ *)
(* Paper's fig. 6 oracle                                               *)
(* ------------------------------------------------------------------ *)

let test_fig6_symmetric_pair () =
  let m = Zoo.paper_fig5 () in
  let next = m.Machine.next in
  (* states s1..s4 are indices 0..3 *)
  let pi = Partition.of_blocks ~n:4 [ [ 0; 1 ]; [ 2; 3 ] ] in
  let rho = Partition.of_blocks ~n:4 [ [ 0; 3 ]; [ 1; 2 ] ] in
  check_bool "(pi,rho) is a pair" true (Pair.is_pair ~next pi rho);
  check_bool "(rho,pi) is a pair" true (Pair.is_pair ~next rho pi);
  check_bool "symmetric" true (Pair.is_symmetric_pair ~next pi rho);
  check_bool "intersection is identity" true
    (Partition.is_identity (Partition.meet pi rho))

let test_fig6_mm_structure () =
  let m = Zoo.paper_fig5 () in
  let next = m.Machine.next in
  let pi = Partition.of_blocks ~n:4 [ [ 0; 1 ]; [ 2; 3 ] ] in
  let rho = Partition.of_blocks ~n:4 [ [ 0; 3 ]; [ 1; 2 ] ] in
  check_bool "M rho >= pi" true (Partition.subseteq pi (Pair.big_m ~next rho));
  check_bool "m pi <= rho" true (Partition.subseteq (Pair.m ~next pi) rho)

let () =
  Alcotest.run "stc_partition"
    [
      ( "partition",
        [
          Alcotest.test_case "identity/universal" `Quick test_identity_universal;
          Alcotest.test_case "of_class_map canonical" `Quick
            test_of_class_map_canonical;
          Alcotest.test_case "of_blocks" `Quick test_of_blocks;
          Alcotest.test_case "of_blocks rejects overlap" `Quick
            test_of_blocks_rejects_overlap;
          Alcotest.test_case "pair relation" `Quick test_pair_relation;
          Alcotest.test_case "meet/join examples" `Quick test_meet_join_examples;
          Alcotest.test_case "subseteq" `Quick test_subseteq;
          Alcotest.test_case "representatives/members" `Quick
            test_representatives_members;
          Alcotest.test_case "pp" `Quick test_pp;
          Alcotest.test_case "join_all closure" `Quick test_join_all;
          Alcotest.test_case "lattice laws (exhaustive n=4)" `Quick
            test_lattice_laws_exhaustive;
          qcheck test_lattice_laws_random;
        ] );
      ( "packed_vs_reference",
        [
          qcheck test_canonicalize_matches_reference;
          qcheck test_meet_matches_reference;
          qcheck test_join_matches_reference;
          qcheck test_join_all_matches_reference;
          qcheck test_subseteq_matches_reference;
          qcheck test_meet_subseteq_matches_composition;
          qcheck test_hash_stable_under_relabeling;
          qcheck test_iter_coarse_members_spec;
          qcheck test_blocks_members_multiword;
        ] );
      ( "move_kernels",
        [
          Alcotest.test_case "merge_classes examples" `Quick
            test_merge_classes_examples;
          qcheck test_merge_classes_is_join;
          Alcotest.test_case "split_singleton examples" `Quick
            test_split_singleton_examples;
          qcheck test_split_singleton_spec;
        ] );
      ( "hashcons",
        [
          Alcotest.test_case "physical equality" `Quick
            test_hashcons_physical_equality;
          qcheck test_hashcons_operations_intern;
        ] );
      ( "memo",
        [
          qcheck test_memo_matches_direct;
          Alcotest.test_case "hit/miss counters" `Quick test_memo_counters;
        ] );
      ( "enumerate",
        [
          Alcotest.test_case "bell numbers" `Quick test_bell_numbers;
          Alcotest.test_case "enumeration counts" `Quick test_enumerate_counts;
          Alcotest.test_case "streaming enumeration" `Quick
            test_enumerate_streaming;
        ] );
      ( "pair",
        [
          qcheck test_is_pair_matches_oracle;
          qcheck test_galois_connection;
          qcheck test_m_minimality;
          qcheck test_big_m_maximality;
          qcheck test_adjunction_identities;
          qcheck test_m_monotone;
          qcheck test_m_is_join_of_basis;
          Alcotest.test_case "basis properties" `Quick test_basis_properties;
          qcheck test_mm_pairs_are_mm;
        ] );
      ( "incremental_closure",
        [
          qcheck test_class_size_spec;
          qcheck test_coarsen_with_spec;
          qcheck test_close_merge_matches_oracle;
          qcheck test_big_m_coarse_matches;
          qcheck test_memo_big_m_from;
        ] );
      ( "paper_oracle",
        [
          Alcotest.test_case "fig6 symmetric pair" `Quick test_fig6_symmetric_pair;
          Alcotest.test_case "fig6 Mm structure" `Quick test_fig6_mm_structure;
        ] );
    ]
