module Suite = Stc_benchmarks.Suite
module Schema = Stc_benchmarks.Schema
module Diff = Stc_benchmarks.Diff
module Json = Stc_obs.Json
module Machine = Stc_fsm.Machine
module Kiss = Stc_fsm.Kiss
module Reach = Stc_fsm.Reach
module Equiv = Stc_fsm.Equiv
module Partition = Stc_partition.Partition
module Solver = Stc_core.Solver
module Realization = Stc_core.Realization

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)

let test_registry () =
  check_int "13 benchmarks" 13 (List.length Suite.all);
  check_bool "find works" true (Suite.find "dk27" <> None);
  check_bool "find misses unknown" true (Suite.find "nonesuch" = None);
  check_bool "names sorted as in the paper" true
    (Suite.names
    = [ "bbara"; "bbtas"; "dk14"; "dk15"; "dk16"; "dk17"; "dk27"; "dk512";
        "mc"; "s1"; "shiftreg"; "tav"; "tbk" ])

let test_paper_rows_consistent () =
  (* Flip-flop columns of Table 1 must satisfy their defining formulas. *)
  List.iter
    (fun (spec : Suite.spec) ->
      check_int
        (spec.name ^ " conventional FF")
        (2 * Machine.bits_for spec.states)
        spec.paper.ff_conventional;
      check_int
        (spec.name ^ " pipeline FF")
        (Machine.bits_for spec.paper.s1 + Machine.bits_for spec.paper.s2)
        spec.paper.ff_pipeline)
    Suite.all

let test_machines_well_formed () =
  List.iter
    (fun (spec : Suite.spec) ->
      let m = Suite.machine spec in
      check_int (spec.name ^ " states") spec.states m.Machine.num_states;
      check_int (spec.name ^ " inputs") (1 lsl spec.input_bits) m.Machine.num_inputs;
      check_bool (spec.name ^ " connected") true (Reach.is_connected m);
      check_bool (spec.name ^ " reduced") true (Equiv.is_reduced m))
    Suite.all

let test_machines_deterministic () =
  List.iter
    (fun (spec : Suite.spec) ->
      let a = Suite.machine spec and b = Suite.machine spec in
      check_bool (spec.name ^ " rebuilds identically") true
        (a.Machine.next = b.Machine.next && a.Machine.output = b.Machine.output))
    Suite.all

let test_kiss_roundtrip () =
  List.iter
    (fun (spec : Suite.spec) ->
      let m = Suite.machine spec in
      let m' = Kiss.parse ~name:spec.name (Kiss.print m) in
      check_bool (spec.name ^ " kiss roundtrip") true (Machine.equal_behaviour m m'))
    Suite.all

let test_nontrivial_flags () =
  let nontrivial =
    List.filter Suite.nontrivial Suite.all |> List.map (fun s -> s.Suite.name)
  in
  (* Section 4: "for eight examples a nontrivial solution ... could be
     found" - the paper's table marks these seven plus tbk via timeout;
     in our reading bbara, dk16, dk27, dk512, shiftreg, tav, tbk. *)
  check_bool "nontrivial set" true
    (nontrivial = [ "bbara"; "dk16"; "dk27"; "dk512"; "shiftreg"; "tav"; "tbk" ])

(* ------------------------------------------------------------------ *)
(* Versioned bench schema + regression diff                            *)
(* ------------------------------------------------------------------ *)

let sample_rows walls =
  List.mapi
    (fun i w ->
      Json.Obj
        [
          ("name", Json.String (Printf.sprintf "row%d" i));
          ("wall_s", Json.Float w);
          ("nodes", Json.Int (100 * (i + 1)));
        ])
    walls

let test_schema_wrap_and_validate () =
  let doc = Schema.wrap ~bench:"t" ~jobs:3 (sample_rows [ 1.0; 2.0 ]) in
  (match Schema.validate doc with
  | Ok bench -> Alcotest.(check string) "bench name" "t" bench
  | Error errs -> Alcotest.failf "valid doc rejected: %s" (String.concat "; " errs));
  List.iter
    (fun k ->
      check_bool (k ^ " present") true (Json.member k doc <> None))
    Schema.required_keys;
  check_bool "version stamped" true
    (Json.member "schema_version" doc = Some (Json.Int Schema.schema_version));
  check_bool "jobs stamped" true (Json.member "jobs" doc = Some (Json.Int 3));
  (* git_rev resolves this repository's HEAD without running git. *)
  match Json.member "git_rev" doc with
  | Some (Json.String rev) ->
    check_bool "git_rev is a commit or unknown" true
      (rev = "unknown" || String.length rev = 40)
  | _ -> Alcotest.fail "git_rev missing"

let test_schema_timestamp_env () =
  let var = "BENCH_TIMESTAMP" in
  Unix.putenv var "1234567";
  Fun.protect
    ~finally:(fun () -> Unix.putenv var "")
    (fun () -> check_int "env override wins" 1234567 (Schema.timestamp ()))

let test_schema_rejects_violations () =
  let errors_of doc =
    match Schema.validate doc with Ok _ -> [] | Error errs -> errs
  in
  let base = Schema.wrap ~bench:"t" ~jobs:1 (sample_rows [ 1.0 ]) in
  check_bool "missing header key" true
    (errors_of
       (match base with
       | Json.Obj fields ->
         Json.Obj (List.filter (fun (k, _) -> k <> "host") fields)
       | _ -> assert false)
    <> []);
  check_bool "unknown version" true
    (errors_of
       (match base with
       | Json.Obj fields ->
         Json.Obj
           (List.map
              (fun (k, v) ->
                if k = "schema_version" then (k, Json.Int 999) else (k, v))
              fields)
       | _ -> assert false)
    <> []);
  (* Rows must agree on their key set, or per-row diffs are meaningless. *)
  let inconsistent =
    Schema.wrap ~bench:"t" ~jobs:1
      [
        Json.Obj [ ("name", Json.String "a"); ("wall_s", Json.Float 1.0) ];
        Json.Obj [ ("name", Json.String "b"); ("other", Json.Int 1) ];
      ]
  in
  check_bool "inconsistent row keys" true (errors_of inconsistent <> [])

let test_diff_self_compare_clean () =
  let doc = Schema.wrap ~bench:"t" ~jobs:1 (sample_rows [ 1.0; 0.5; 2.0 ]) in
  match Diff.compare_docs ~old_doc:doc ~new_doc:doc () with
  | Error msg -> Alcotest.failf "self compare errored: %s" msg
  | Ok r ->
    check_int "no regressions" 0 r.Diff.regressions;
    check_int "no improvements" 0 r.Diff.improvements;
    check_int "three wall metrics judged" 3 (List.length r.Diff.verdicts)

let test_diff_flags_slowdown () =
  let old_doc = Schema.wrap ~bench:"t" ~jobs:1 (sample_rows [ 1.0; 0.5 ]) in
  let new_doc = Schema.wrap ~bench:"t" ~jobs:1 (sample_rows [ 3.0; 0.5 ]) in
  match Diff.compare_docs ~old_doc ~new_doc () with
  | Error msg -> Alcotest.failf "compare errored: %s" msg
  | Ok r ->
    check_int "one regression" 1 r.Diff.regressions;
    let v = List.find (fun v -> v.Diff.regressed) r.Diff.verdicts in
    Alcotest.(check string) "right row" "row0" v.Diff.key;
    check_bool "ratio recorded" true (abs_float (v.Diff.ratio -. 3.0) < 1e-9);
    (* Rendering mentions it and the summary counts it. *)
    let contains_sub s sub =
      let ls = String.length sub and l = String.length s in
      let rec go i = i + ls <= l && (String.sub s i ls = sub || go (i + 1)) in
      go 0
    in
    check_bool "rendered" true (contains_sub (Diff.render r) "REGRESSION")

let test_diff_noise_floors () =
  (* 3x on a nanosecond metric is noise until it also clears the
     absolute floor; 1ns -> 3ns must stay quiet, 100ns -> 300ns must
     not. *)
  let mk ns =
    Schema.wrap ~bench:"t" ~jobs:1
      [
        Json.Obj
          [ ("kernel", Json.String "k"); ("n", Json.Int 8);
            ("old_ns_per_op", Json.Float ns) ];
      ]
  in
  (match Diff.compare_docs ~old_doc:(mk 1.0) ~new_doc:(mk 3.0) () with
  | Ok r -> check_int "tiny absolute change ignored" 0 r.Diff.regressions
  | Error msg -> Alcotest.failf "compare errored: %s" msg);
  match Diff.compare_docs ~old_doc:(mk 100.0) ~new_doc:(mk 300.0) () with
  | Ok r ->
    check_int "large absolute change flagged" 1 r.Diff.regressions;
    let v = List.hd r.Diff.verdicts in
    Alcotest.(check string) "kernel row key" "k[n=8]" v.Diff.key
  | Error msg -> Alcotest.failf "compare errored: %s" msg

let test_diff_rejects_mismatched_bench () =
  let a = Schema.wrap ~bench:"a" ~jobs:1 (sample_rows [ 1.0 ]) in
  let b = Schema.wrap ~bench:"b" ~jobs:1 (sample_rows [ 1.0 ]) in
  check_bool "bench mismatch is an error" true
    (match Diff.compare_docs ~old_doc:a ~new_doc:b () with
    | Error _ -> true
    | Ok _ -> false)

(* Table 1 reproduction: the solver finds exactly the expected row. *)
let solve_and_check (spec : Suite.spec) () =
  let m = Suite.machine spec in
  let r = Solver.solve ~timeout:120.0 m in
  check_bool (spec.name ^ " solution valid") true
    (Result.is_ok (Solver.validate m r.best));
  let a = Partition.num_classes r.best.pi
  and b = Partition.num_classes r.best.rho in
  let expected = (min spec.expected.s1 spec.expected.s2,
                  max spec.expected.s1 spec.expected.s2) in
  check_bool
    (Printf.sprintf "%s factors (%d,%d)" spec.name a b)
    true
    ((min a b, max a b) = expected);
  check_int (spec.name ^ " pipeline FF") spec.expected.ff_pipeline r.best.cost.bits;
  (* The realization must actually realize the machine. *)
  let real = Realization.of_solution m r.best in
  check_bool (spec.name ^ " realizes") true (Realization.realizes real);
  check_bool (spec.name ^ " behaviour") true
    (Machine.equal_behaviour m real.Realization.product)

let table1_cases =
  List.map
    (fun (spec : Suite.spec) ->
      let speed = if spec.states > 14 then `Slow else `Quick in
      Alcotest.test_case ("table1 " ^ spec.name) speed (solve_and_check spec))
    Suite.all

let () =
  Alcotest.run "stc_benchmarks"
    [
      ( "suite",
        [
          Alcotest.test_case "registry" `Quick test_registry;
          Alcotest.test_case "paper rows consistent" `Quick test_paper_rows_consistent;
          Alcotest.test_case "machines well-formed" `Quick test_machines_well_formed;
          Alcotest.test_case "machines deterministic" `Quick test_machines_deterministic;
          Alcotest.test_case "kiss roundtrip" `Quick test_kiss_roundtrip;
          Alcotest.test_case "nontrivial flags" `Quick test_nontrivial_flags;
        ] );
      ( "schema",
        [
          Alcotest.test_case "wrap + validate" `Quick
            test_schema_wrap_and_validate;
          Alcotest.test_case "timestamp env" `Quick test_schema_timestamp_env;
          Alcotest.test_case "rejects violations" `Quick
            test_schema_rejects_violations;
        ] );
      ( "diff",
        [
          Alcotest.test_case "self compare clean" `Quick
            test_diff_self_compare_clean;
          Alcotest.test_case "flags slowdown" `Quick test_diff_flags_slowdown;
          Alcotest.test_case "noise floors" `Quick test_diff_noise_floors;
          Alcotest.test_case "mismatched bench" `Quick
            test_diff_rejects_mismatched_bench;
        ] );
      ("table1", table1_cases);
    ]
