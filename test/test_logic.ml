module Cube = Stc_logic.Cube
module Cover = Stc_logic.Cover
module Minimize = Stc_logic.Minimize
module Naive = Stc_logic.Naive
module Pla = Stc_logic.Pla
module Truth = Stc_logic.Truth
module Rng = Stc_util.Rng

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)
let check_string = Alcotest.(check string)

let qcheck = QCheck_alcotest.to_alcotest

(* Random cube / cover generators driven by a seed. *)
let random_cube rng ~num_vars ~num_outputs =
  let input =
    Array.init num_vars (fun _ ->
        match Rng.int rng 3 with 0 -> Cube.Zero | 1 -> Cube.One | _ -> Cube.Dc)
  in
  let output = Array.init num_outputs (fun _ -> Rng.bool rng) in
  if Array.exists Fun.id output then Cube.make ~input ~output
  else begin
    output.(Rng.int rng num_outputs) <- true;
    Cube.make ~input ~output
  end

let random_cover rng ~num_vars ~num_outputs ~max_cubes =
  let n = 1 + Rng.int rng max_cubes in
  Cover.make ~num_vars ~num_outputs
    (List.init n (fun _ -> random_cube rng ~num_vars ~num_outputs))

let dims rng =
  let num_vars = 2 + Rng.int rng 4 in
  let num_outputs = 1 + Rng.int rng 3 in
  (num_vars, num_outputs)

(* ------------------------------------------------------------------ *)
(* Cube                                                                *)
(* ------------------------------------------------------------------ *)

let test_cube_string_roundtrip () =
  let c = Cube.of_string "1-0 10" in
  check_string "roundtrip" "1-0 10" (Cube.to_string c);
  check_int "literals" 2 (Cube.literals c);
  check_bool "matches 100" true (Cube.matches c 0b100);
  check_bool "matches 110" true (Cube.matches c 0b110);
  check_bool "rejects 101" false (Cube.matches c 0b101)

let test_cube_of_string_rejects () =
  check_bool "bad char" true
    (match Cube.of_string "1x0 1" with
    | exception Invalid_argument _ -> true
    | _ -> false);
  check_bool "empty output" true
    (match Cube.of_string "111 00" with
    | exception Invalid_argument _ -> true
    | _ -> false)

let test_cube_minterm () =
  let c = Cube.minterm ~num_vars:3 ~num_outputs:1 0b101 in
  check_string "string" "101 1" (Cube.to_string c);
  check_bool "only itself" true
    (List.for_all
       (fun v -> Cube.matches c v = (v = 0b101))
       (List.init 8 (fun v -> v)))

let test_cube_input_size () =
  check_bool "2 dc -> 4 minterms" true
    (Cube.input_size (Cube.of_string "1-- 1") = 4.0)

let test_cube_contains_semantic =
  QCheck.Test.make ~count:300 ~name:"contains = minterm subset + output subset"
    QCheck.(int_bound 1000000)
    (fun seed ->
      let rng = Rng.create seed in
      let num_vars, num_outputs = dims rng in
      let a = random_cube rng ~num_vars ~num_outputs
      and b = random_cube rng ~num_vars ~num_outputs in
      let input_subset = ref true in
      for v = 0 to (1 lsl num_vars) - 1 do
        if Cube.matches b v && not (Cube.matches a v) then input_subset := false
      done;
      let output_subset = ref true in
      for o = 0 to num_outputs - 1 do
        if Cube.output_bit b o && not (Cube.output_bit a o) then
          output_subset := false
      done;
      Cube.contains a b = (!input_subset && !output_subset))

let test_cube_intersect_semantic =
  QCheck.Test.make ~count:300 ~name:"intersect matches minterm intersection"
    QCheck.(int_bound 1000000)
    (fun seed ->
      let rng = Rng.create seed in
      let num_vars, num_outputs = dims rng in
      let a = random_cube rng ~num_vars ~num_outputs
      and b = random_cube rng ~num_vars ~num_outputs in
      let both v = Cube.matches a v && Cube.matches b v in
      let out_overlap = Cube.output_overlap a b in
      match Cube.intersect a b with
      | None ->
        (* empty: either inputs disjoint or outputs disjoint *)
        List.for_all (fun v -> not (both v)) (List.init (1 lsl num_vars) Fun.id)
        || not out_overlap
      | Some c ->
        List.for_all
          (fun v -> Cube.matches c v = both v)
          (List.init (1 lsl num_vars) Fun.id))

let test_cube_supercube_is_bound =
  QCheck.Test.make ~count:300 ~name:"supercube contains both arguments"
    QCheck.(int_bound 1000000)
    (fun seed ->
      let rng = Rng.create seed in
      let num_vars, num_outputs = dims rng in
      let a = random_cube rng ~num_vars ~num_outputs
      and b = random_cube rng ~num_vars ~num_outputs in
      let s = Cube.supercube a b in
      Cube.contains s a && Cube.contains s b)

let test_cube_distance () =
  check_int "distance" 3 (Cube.distance (Cube.of_string "110 1") (Cube.of_string "001 1"));
  check_int "zero when overlapping" 0
    (Cube.distance (Cube.of_string "1-- 1") (Cube.of_string "-01 1"))

(* ------------------------------------------------------------------ *)
(* Cover                                                               *)
(* ------------------------------------------------------------------ *)

let test_cover_eval () =
  let c = Cover.of_strings ~num_vars:2 ~num_outputs:2 [ "1- 10"; "-1 01" ] in
  check_bool "11 -> both" true (Cover.eval c 0b11 = [| true; true |]);
  check_bool "10 -> first" true (Cover.eval c 0b10 = [| true; false |]);
  check_bool "00 -> none" true (Cover.eval c 0b00 = [| false; false |])

let test_cover_tautology_examples () =
  let taut = Cover.of_strings ~num_vars:2 ~num_outputs:1 [ "1- 1"; "0- 1" ] in
  check_bool "x + x' tautology" true (Cover.tautology taut);
  let no = Cover.of_strings ~num_vars:2 ~num_outputs:1 [ "1- 1"; "01 1" ] in
  check_bool "not tautology" false (Cover.tautology no);
  let dc = Cover.of_strings ~num_vars:2 ~num_outputs:1 [ "-- 1" ] in
  check_bool "universal cube" true (Cover.tautology dc)

let test_cover_tautology_oracle =
  QCheck.Test.make ~count:300 ~name:"tautology agrees with truth table"
    QCheck.(int_bound 1000000)
    (fun seed ->
      let rng = Rng.create seed in
      let num_vars, num_outputs = dims rng in
      let c = random_cover rng ~num_vars ~num_outputs ~max_cubes:8 in
      let table = Truth.table c in
      let full = Array.for_all (fun row -> Array.for_all Fun.id row) table in
      Cover.tautology c = full)

let test_cover_complement_oracle =
  QCheck.Test.make ~count:200 ~name:"complement flips every minterm"
    QCheck.(int_bound 1000000)
    (fun seed ->
      let rng = Rng.create seed in
      let num_vars, num_outputs = dims rng in
      let c = random_cover rng ~num_vars ~num_outputs ~max_cubes:8 in
      let comp = Cover.complement c in
      let ok = ref true in
      for v = 0 to (1 lsl num_vars) - 1 do
        let a = Cover.eval c v and b = Cover.eval comp v in
        Array.iteri (fun o av -> if av = b.(o) then ok := false) a
      done;
      !ok)

let test_cover_covers_cube_oracle =
  QCheck.Test.make ~count:300 ~name:"covers_cube agrees with truth table"
    QCheck.(int_bound 1000000)
    (fun seed ->
      let rng = Rng.create seed in
      let num_vars, num_outputs = dims rng in
      let c = random_cover rng ~num_vars ~num_outputs ~max_cubes:6 in
      let cube = random_cube rng ~num_vars ~num_outputs in
      let semantic = ref true in
      for v = 0 to (1 lsl num_vars) - 1 do
        if Cube.matches cube v then begin
          let row = Cover.eval c v in
          for o = 0 to num_outputs - 1 do
            if Cube.output_bit cube o && not row.(o) then semantic := false
          done
        end
      done;
      Cover.covers_cube c cube = !semantic)

let test_cover_sharp_cube_oracle =
  QCheck.Test.make ~count:200 ~name:"sharp_cube = cube minus cover"
    QCheck.(int_bound 1000000)
    (fun seed ->
      let rng = Rng.create seed in
      let num_vars, num_outputs = dims rng in
      let c = random_cover rng ~num_vars ~num_outputs ~max_cubes:6 in
      let cube = random_cube rng ~num_vars ~num_outputs in
      let diff = Cover.sharp_cube cube c in
      let ok = ref true in
      for v = 0 to (1 lsl num_vars) - 1 do
        let in_diff = Cover.eval diff v and in_c = Cover.eval c v in
        for o = 0 to num_outputs - 1 do
          let expected =
            Cube.output_bit cube o && Cube.matches cube v && not in_c.(o)
          in
          if in_diff.(o) <> expected then ok := false
        done
      done;
      !ok)

let test_cover_scc_preserves =
  QCheck.Test.make ~count:200 ~name:"single-cube containment preserves function"
    QCheck.(int_bound 1000000)
    (fun seed ->
      let rng = Rng.create seed in
      let num_vars, num_outputs = dims rng in
      let c = random_cover rng ~num_vars ~num_outputs ~max_cubes:10 in
      Truth.equivalent c (Cover.single_cube_containment c))

let test_cover_minterms_equals_eval =
  QCheck.Test.make ~count:100 ~name:"minterm expansion preserves function"
    QCheck.(int_bound 1000000)
    (fun seed ->
      let rng = Rng.create seed in
      let num_vars, num_outputs = dims rng in
      let c = random_cover rng ~num_vars ~num_outputs ~max_cubes:6 in
      Truth.equivalent c (Cover.minterms c))

let test_cover_equivalent_mutual =
  QCheck.Test.make ~count:150 ~name:"equivalent agrees with truth tables"
    QCheck.(int_bound 1000000)
    (fun seed ->
      let rng = Rng.create seed in
      let num_vars, num_outputs = dims rng in
      let a = random_cover rng ~num_vars ~num_outputs ~max_cubes:5 in
      let b = random_cover rng ~num_vars ~num_outputs ~max_cubes:5 in
      Cover.equivalent a b = Truth.equivalent a b)

(* ------------------------------------------------------------------ *)
(* Minimize                                                            *)
(* ------------------------------------------------------------------ *)

let test_minimize_xor_stays_two_cubes () =
  (* XOR has no two-level minimization: 2 cubes, 4 literals. *)
  let on = Cover.of_strings ~num_vars:2 ~num_outputs:1 [ "10 1"; "01 1" ] in
  let result, _ = Minimize.minimize on in
  check_int "2 cubes" 2 (Cover.size result);
  check_bool "exact" true (Truth.equivalent on result)

let test_minimize_merges_adjacent () =
  (* ab + ab' = a. *)
  let on = Cover.of_strings ~num_vars:2 ~num_outputs:1 [ "11 1"; "10 1" ] in
  let result, report = Minimize.minimize on in
  check_int "1 cube" 1 (Cover.size result);
  check_int "1 literal" 2 report.Minimize.final_literals
  (* input literal + output literal *)

let test_minimize_uses_dont_cares () =
  (* f = m(1); dc = m(3): minimizer should produce the single cube -1. *)
  let on = Cover.of_strings ~num_vars:2 ~num_outputs:1 [ "01 1" ] in
  let dc = Cover.of_strings ~num_vars:2 ~num_outputs:1 [ "11 1" ] in
  let result, _ = Minimize.minimize ~dc on in
  check_int "1 cube" 1 (Cover.size result);
  check_bool "contract" true (Truth.equivalent_with_dc ~on ~dc result)

let test_minimize_contract =
  QCheck.Test.make ~count:150 ~name:"minimize satisfies on <= f <= on+dc"
    QCheck.(int_bound 1000000)
    (fun seed ->
      let rng = Rng.create seed in
      let num_vars, num_outputs = dims rng in
      let on = random_cover rng ~num_vars ~num_outputs ~max_cubes:8 in
      let dc = random_cover rng ~num_vars ~num_outputs ~max_cubes:4 in
      let result, _ = Minimize.minimize ~dc on in
      Truth.equivalent_with_dc ~on ~dc result
      && Minimize.verify ~on ~dc result
      && Minimize.is_irredundant ~dc result)

let test_minimize_never_worse =
  (* Cube count never increases (expand keeps it, containment/irredundant
     only remove).  Literal counts can trade input literals for output
     literals, so only the cube bound is guaranteed. *)
  QCheck.Test.make ~count:150 ~name:"minimize never increases the cube count"
    QCheck.(int_bound 1000000)
    (fun seed ->
      let rng = Rng.create seed in
      let num_vars, num_outputs = dims rng in
      let on = random_cover rng ~num_vars ~num_outputs ~max_cubes:10 in
      let result, report = Minimize.minimize on in
      let cubes, lits = Cover.cost result in
      cubes <= report.Minimize.initial_cubes
      && report.Minimize.final_cubes = cubes
      && report.Minimize.final_literals = lits)

let test_expand_yields_primes =
  QCheck.Test.make ~count:100 ~name:"expanded cubes cannot be raised further"
    QCheck.(int_bound 1000000)
    (fun seed ->
      let rng = Rng.create seed in
      let num_vars, num_outputs = dims rng in
      let on = random_cover rng ~num_vars ~num_outputs ~max_cubes:6 in
      let off = Minimize.off_set on in
      let expanded = Minimize.expand ~off on in
      Array.for_all
        (fun cube ->
          (* every remaining literal conflicts with the off-set if raised *)
          let prime = ref true in
          for k = 0 to num_vars - 1 do
            if Cube.get cube k <> Cube.Dc then begin
              let input = Cube.input cube in
              input.(k) <- Cube.Dc;
              let raised = Cube.make ~input ~output:(Cube.output cube) in
              let hits_off =
                Array.exists
                  (fun r -> Cube.intersect raised r <> None)
                  off.Cover.cubes
              in
              if not hits_off then prime := false
            end
          done;
          !prime)
        expanded.Cover.cubes)

let test_reduce_keeps_function =
  QCheck.Test.make ~count:100 ~name:"reduce preserves the function"
    QCheck.(int_bound 1000000)
    (fun seed ->
      let rng = Rng.create seed in
      let num_vars, num_outputs = dims rng in
      let on = random_cover rng ~num_vars ~num_outputs ~max_cubes:8 in
      Truth.equivalent on (Minimize.reduce on))

(* ------------------------------------------------------------------ *)
(* Packed engine vs. the retained trit-array reference (Naive)         *)
(* ------------------------------------------------------------------ *)

let same_cover a b =
  Cover.size a = Cover.size b
  && Array.for_all2 Cube.equal a.Cover.cubes b.Cover.cubes

let test_packed_cube_ops_vs_naive =
  QCheck.Test.make ~count:300 ~name:"packed contains/intersect = naive"
    QCheck.(int_bound 1000000)
    (fun seed ->
      let rng = Rng.create seed in
      let num_vars, num_outputs = dims rng in
      let a = random_cube rng ~num_vars ~num_outputs
      and b = random_cube rng ~num_vars ~num_outputs in
      Cube.contains a b = Naive.contains a b
      && (match (Cube.intersect a b, Naive.intersect a b) with
         | None, None -> true
         | Some x, Some y -> Cube.equal x y
         | _ -> false))

let test_packed_cover_ops_vs_naive =
  QCheck.Test.make ~count:200
    ~name:"packed tautology/covers_cube/complement = naive"
    QCheck.(int_bound 1000000)
    (fun seed ->
      let rng = Rng.create seed in
      let num_vars, num_outputs = dims rng in
      let c = random_cover rng ~num_vars ~num_outputs ~max_cubes:8 in
      let cube = random_cube rng ~num_vars ~num_outputs in
      Cover.tautology c = Naive.tautology c
      && Cover.covers_cube c cube = Naive.covers_cube c cube
      && Truth.equivalent (Cover.complement c) (Naive.complement c))

let test_minimize_vs_reference =
  QCheck.Test.make ~count:80 ~name:"minimize matches the reference contract"
    QCheck.(int_bound 1000000)
    (fun seed ->
      let rng = Rng.create seed in
      let num_vars, num_outputs = dims rng in
      let on = random_cover rng ~num_vars ~num_outputs ~max_cubes:8 in
      let dc = random_cover rng ~num_vars ~num_outputs ~max_cubes:4 in
      let packed, _ = Minimize.minimize ~dc on in
      let reference, _ = Minimize.reference ~dc on in
      Minimize.verify ~on ~dc packed
      && Minimize.verify ~on ~dc reference
      && Truth.equivalent_with_dc ~on ~dc packed
      && Truth.equivalent_with_dc ~on ~dc reference)

let test_minimize_jobs_deterministic =
  QCheck.Test.make ~count:60 ~name:"minimize jobs:1 = jobs:2, cube for cube"
    QCheck.(int_bound 1000000)
    (fun seed ->
      let rng = Rng.create seed in
      let num_vars, num_outputs = dims rng in
      let on = random_cover rng ~num_vars ~num_outputs ~max_cubes:8 in
      let dc = random_cover rng ~num_vars ~num_outputs ~max_cubes:4 in
      let r1, _ = Minimize.minimize ~jobs:1 ~dc on in
      let r2, _ = Minimize.minimize ~jobs:2 ~dc on in
      same_cover r1 r2)

let test_of_string_edge_chars () =
  (* espresso PLA alternates: '2' is a don't-care input, '4' asserts an
     output, '~' clears one. *)
  let c = Cube.of_string "2-01 4~0-" in
  check_string "normalized" "--01 1000" (Cube.to_string c);
  let c2 = Cube.of_string "--01 1000" in
  check_bool "roundtrip equal" true (Cube.equal c c2)

let test_scc_prefers_general_and_is_canonical () =
  let of_rows rows = Cover.of_strings ~num_vars:2 ~num_outputs:1 rows in
  (* The general cube must survive no matter where it sits. *)
  let a = Cover.single_cube_containment (of_rows [ "11 1"; "1- 1" ]) in
  let b = Cover.single_cube_containment (of_rows [ "1- 1"; "11 1" ]) in
  check_int "one cube (a)" 1 (Cover.size a);
  check_int "one cube (b)" 1 (Cover.size b);
  check_string "keeps the more general cube" "1- 1"
    (Cube.to_string a.Cover.cubes.(0));
  check_bool "order-independent" true (same_cover a b);
  (* Equal duplicates collapse to a single copy. *)
  let c = Cover.single_cube_containment (of_rows [ "01 1"; "01 1" ]) in
  check_int "dedup" 1 (Cover.size c)

let test_scc_canonical_random =
  QCheck.Test.make ~count:200 ~name:"scc result is independent of cube order"
    QCheck.(int_bound 1000000)
    (fun seed ->
      let rng = Rng.create seed in
      let num_vars, num_outputs = dims rng in
      let c = random_cover rng ~num_vars ~num_outputs ~max_cubes:10 in
      let reversed =
        Cover.of_array ~num_vars ~num_outputs
          (let a = Array.copy c.Cover.cubes in
           let n = Array.length a in
           Array.init n (fun i -> a.(n - 1 - i)))
      in
      same_cover
        (Cover.single_cube_containment c)
        (Cover.single_cube_containment reversed))

(* ------------------------------------------------------------------ *)
(* Pla                                                                 *)
(* ------------------------------------------------------------------ *)

let test_pla_roundtrip () =
  let on = Cover.of_strings ~num_vars:3 ~num_outputs:2 [ "1-0 10"; "011 01" ] in
  let dc = Cover.of_strings ~num_vars:3 ~num_outputs:2 [ "111 11" ] in
  let text = Pla.print ~name:"t" ~dc on in
  let file = Pla.parse text in
  check_bool "on preserved" true (Truth.equivalent on file.Pla.on);
  check_bool "dc preserved" true (Truth.equivalent dc file.Pla.dc);
  check_bool "name" true (file.Pla.name = Some "t")

let test_pla_type_f () =
  let on = Cover.of_strings ~num_vars:2 ~num_outputs:1 [ "11 1" ] in
  let text = Pla.print on in
  check_bool "type f emitted" true
    (String.split_on_char '\n' text |> List.exists (fun l -> l = ".type f"));
  let file = Pla.parse text in
  check_int "empty dc" 0 (Cover.size file.Pla.dc)

let test_pla_parse_errors () =
  let bad text =
    match Pla.parse text with exception Pla.Parse_error _ -> true | _ -> false
  in
  check_bool "missing .i" true (bad ".o 1\n11 1\n");
  check_bool "width mismatch" true (bad ".i 2\n.o 1\n111 1\n.e\n");
  check_bool "bad type" true (bad ".i 1\n.o 1\n.type fr\n1 1\n.e\n")

let test_pla_dash_outputs_are_dc () =
  let file = Pla.parse ".i 2\n.o 2\n11 1-\n00 01\n.e\n" in
  check_int "one on-cube has output 0" 1
    (Array.fold_left
       (fun acc c -> if Cube.output_bit c 0 then acc + 1 else acc)
       0 file.Pla.on.Cover.cubes);
  check_int "dc set has one cube" 1 (Cover.size file.Pla.dc)

let () =
  Alcotest.run "stc_logic"
    [
      ( "cube",
        [
          Alcotest.test_case "string roundtrip" `Quick test_cube_string_roundtrip;
          Alcotest.test_case "of_string rejects" `Quick test_cube_of_string_rejects;
          Alcotest.test_case "minterm" `Quick test_cube_minterm;
          Alcotest.test_case "input size" `Quick test_cube_input_size;
          qcheck test_cube_contains_semantic;
          qcheck test_cube_intersect_semantic;
          qcheck test_cube_supercube_is_bound;
          Alcotest.test_case "distance" `Quick test_cube_distance;
        ] );
      ( "cover",
        [
          Alcotest.test_case "eval" `Quick test_cover_eval;
          Alcotest.test_case "tautology examples" `Quick test_cover_tautology_examples;
          qcheck test_cover_tautology_oracle;
          qcheck test_cover_complement_oracle;
          qcheck test_cover_covers_cube_oracle;
          qcheck test_cover_sharp_cube_oracle;
          qcheck test_cover_scc_preserves;
          qcheck test_cover_minterms_equals_eval;
          qcheck test_cover_equivalent_mutual;
        ] );
      ( "minimize",
        [
          Alcotest.test_case "xor stays two cubes" `Quick test_minimize_xor_stays_two_cubes;
          Alcotest.test_case "merges adjacent" `Quick test_minimize_merges_adjacent;
          Alcotest.test_case "uses don't cares" `Quick test_minimize_uses_dont_cares;
          qcheck test_minimize_contract;
          qcheck test_minimize_never_worse;
          qcheck test_expand_yields_primes;
          qcheck test_reduce_keeps_function;
        ] );
      ( "packed vs reference",
        [
          qcheck test_packed_cube_ops_vs_naive;
          qcheck test_packed_cover_ops_vs_naive;
          qcheck test_minimize_vs_reference;
          qcheck test_minimize_jobs_deterministic;
          Alcotest.test_case "of_string edge chars" `Quick
            test_of_string_edge_chars;
          Alcotest.test_case "scc canonicality" `Quick
            test_scc_prefers_general_and_is_canonical;
          qcheck test_scc_canonical_random;
        ] );
      ( "pla",
        [
          Alcotest.test_case "roundtrip" `Quick test_pla_roundtrip;
          Alcotest.test_case "type f" `Quick test_pla_type_f;
          Alcotest.test_case "parse errors" `Quick test_pla_parse_errors;
          Alcotest.test_case "dash outputs are dc" `Quick test_pla_dash_outputs_are_dc;
        ] );
    ]
