(* lib/sat suite: the CDCL core against pigeonhole instances and a
   brute-force oracle, the incremental-assumption API, the Tseitin
   encoders against Netlist.eval / cover semantics, and the
   cec-vs-fault-sim cross-check (a SAT-testable fault must be caught by
   exhaustive simulation). *)

module Solver = Stc_sat.Solver
module Cnf = Stc_sat.Cnf
module Prove = Stc_sat.Prove
module N = Stc_netlist.Netlist
module B = Stc_netlist.Netlist.Builder
module Cover = Stc_logic.Cover

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)
let qcheck = QCheck_alcotest.to_alcotest

let is_sat = function Solver.Sat -> true | Solver.Unsat -> false

(* --- pigeonhole ------------------------------------------------------ *)

(* PHP(p, h): p pigeons into h holes.  Satisfiable iff p <= h; the
   p = h + 1 refutations are the classic resolution-hard family, a good
   workout for clause learning and restarts. *)
let pigeonhole s ~pigeons ~holes =
  let v = Array.init pigeons (fun _ -> Array.init holes (fun _ -> Solver.new_var s)) in
  for p = 0 to pigeons - 1 do
    Solver.add_clause s (List.init holes (fun h -> Solver.pos v.(p).(h)))
  done;
  for h = 0 to holes - 1 do
    for p = 0 to pigeons - 1 do
      for q = p + 1 to pigeons - 1 do
        Solver.add_clause s
          [ Solver.neg_of_var v.(p).(h); Solver.neg_of_var v.(q).(h) ]
      done
    done
  done

let test_pigeonhole () =
  for holes = 1 to 6 do
    let s = Solver.create () in
    pigeonhole s ~pigeons:(holes + 1) ~holes;
    check_bool
      (Printf.sprintf "PHP(%d,%d) unsat" (holes + 1) holes)
      false
      (is_sat (Solver.solve s));
    let s = Solver.create () in
    pigeonhole s ~pigeons:holes ~holes;
    check_bool
      (Printf.sprintf "PHP(%d,%d) sat" holes holes)
      true
      (is_sat (Solver.solve s))
  done

(* --- random 3-SAT vs. brute force ------------------------------------ *)

(* Decode a deterministic instance from a QCheck integer seed: [nv]
   variables, [nc] clauses of 3 literals each. *)
let random_instance seed =
  let rng = Stc_util.Rng.create seed in
  let nv = 2 + Stc_util.Rng.int rng 8 (* 2..9 *) in
  let nc = 1 + Stc_util.Rng.int rng 32 (* 1..32 *) in
  let clause () =
    List.init 3 (fun _ ->
        let v = Stc_util.Rng.int rng nv in
        (2 * v) + Stc_util.Rng.int rng 2)
  in
  (nv, List.init nc (fun _ -> clause ()))

let brute_force_sat nv clauses =
  let lit_true model l =
    let v = (model lsr (l lsr 1)) land 1 = 1 in
    if l land 1 = 0 then v else not v
  in
  let sat = ref false in
  for model = 0 to (1 lsl nv) - 1 do
    if
      (not !sat)
      && List.for_all (List.exists (fun l -> lit_true model l)) clauses
    then sat := true
  done;
  !sat

let test_random_3sat =
  QCheck.Test.make ~count:500 ~name:"CDCL agrees with brute force on 3-SAT"
    QCheck.(int_bound 1_000_000)
    (fun seed ->
      let nv, clauses = random_instance seed in
      let s = Solver.create () in
      let _vars = Array.init nv (fun _ -> Solver.new_var s) in
      List.iter (Solver.add_clause s) clauses;
      let got = is_sat (Solver.solve s) in
      let want = brute_force_sat nv clauses in
      if got <> want then
        QCheck.Test.fail_reportf "seed %d: solver %b, oracle %b" seed got want;
      (* a Sat verdict must come with a genuine model *)
      if got then
        List.iter
          (fun c ->
            if not (List.exists (fun l -> Solver.value s l) c) then
              QCheck.Test.fail_reportf "seed %d: model violates a clause" seed)
          clauses;
      true)

(* --- incremental assumptions ----------------------------------------- *)

let test_assumptions () =
  let s = Solver.create () in
  let a = Solver.new_var s and b = Solver.new_var s and c = Solver.new_var s in
  (* a -> b, b -> c *)
  Solver.add_clause s [ Solver.neg_of_var a; Solver.pos b ];
  Solver.add_clause s [ Solver.neg_of_var b; Solver.pos c ];
  check_bool "base sat" true (is_sat (Solver.solve s));
  check_bool "a & ~c unsat" false
    (is_sat (Solver.solve ~assumptions:[ Solver.pos a; Solver.neg_of_var c ] s));
  check_bool "still sat under a alone" true
    (is_sat (Solver.solve ~assumptions:[ Solver.pos a ] s));
  check_bool "implied b" true (Solver.value s (Solver.pos b));
  (* clauses may arrive between solves *)
  Solver.add_clause s [ Solver.neg_of_var c ];
  check_bool "a now contradicts" false
    (is_sat (Solver.solve ~assumptions:[ Solver.pos a ] s));
  check_bool "sat without assumptions" true (is_sat (Solver.solve s))

let test_unsat_core () =
  let s = Solver.create () in
  let v = Array.init 6 (fun _ -> Solver.new_var s) in
  (* chain: v0 -> v1 -> v2 *)
  Solver.add_clause s [ Solver.neg_of_var v.(0); Solver.pos v.(1) ];
  Solver.add_clause s [ Solver.neg_of_var v.(1); Solver.pos v.(2) ];
  let assumptions =
    [
      Solver.pos v.(3);
      Solver.pos v.(0);
      Solver.pos v.(4);
      Solver.neg_of_var v.(2);
      Solver.pos v.(5);
    ]
  in
  check_bool "unsat under assumptions" false
    (is_sat (Solver.solve ~assumptions s));
  let core = Solver.unsat_core s in
  (* the core must be a subset of the assumptions ... *)
  List.iter
    (fun l ->
      check_bool "core lit is an assumption" true (List.mem l assumptions))
    core;
  (* ... that does not mention the irrelevant assumptions ... *)
  check_bool "v3 irrelevant" false (List.mem (Solver.pos v.(3)) core);
  check_bool "v4 irrelevant" false (List.mem (Solver.pos v.(4)) core);
  check_bool "v5 irrelevant" false (List.mem (Solver.pos v.(5)) core);
  (* ... and must itself refute the instance *)
  check_bool "core refutes" false (is_sat (Solver.solve ~assumptions:core s));
  (* contradictory instances report an empty core *)
  let s = Solver.create () in
  let a = Solver.new_var s in
  Solver.add_clause s [ Solver.pos a ];
  Solver.add_clause s [ Solver.neg_of_var a ];
  check_bool "contradiction" false
    (is_sat (Solver.solve ~assumptions:[ Solver.pos a ] s));
  check_int "empty core" 0 (List.length (Solver.unsat_core s))

(* --- Tseitin encoding vs. Netlist.eval ------------------------------- *)

let reference_net () =
  let b = B.create "ref" in
  let a = B.input b "a" in
  let bb = B.input b "b" in
  let c = B.input b "c" in
  let ab = B.and_ b [ a; bb ] in
  let nc = B.not_ b c in
  let f = B.or_ b [ ab; nc ] in
  let g = B.xor_ b [ a; c; bb ] in
  let m = B.mux b ~sel:c ~a:ab ~b:g in
  B.output b "f" f;
  B.output b "g" g;
  B.output b "m" m;
  B.finish b

(* Check the encoding of [net] (with [fault] injected) against eval on
   every input minterm, by solving under input-fixing assumptions. *)
let check_encoding ?fault net =
  let s = Solver.create () in
  let n_in = Array.length net.N.inputs in
  let inputs = Cnf.fresh_inputs s n_in in
  let lits = Cnf.add_netlist s ?fault net ~inputs in
  let outs = Cnf.outputs net lits in
  for v = 0 to (1 lsl n_in) - 1 do
    let in_words = Array.init n_in (fun k -> (v lsr k) land 1) in
    let want = N.eval_outputs ?fault net ~inputs:in_words in
    let assumptions =
      List.init n_in (fun k ->
          if in_words.(k) = 1 then inputs.(k) else Solver.negate inputs.(k))
    in
    check_bool "encoding consistent" true
      (is_sat (Solver.solve ~assumptions s));
    Array.iteri
      (fun o l ->
        check_bool
          (Printf.sprintf "output %d at minterm %d" o v)
          (want.(o) land 1 = 1) (Solver.value s l))
      outs
  done

let test_tseitin_good () = check_encoding (reference_net ())

let test_tseitin_faulty () =
  let net = reference_net () in
  List.iter (fun fault -> check_encoding ~fault net) (N.fault_sites net)

(* --- redundant-fault proofs vs. exhaustive simulation ----------------- *)

(* Oracle: a fault is testable iff some input minterm flips some primary
   output.  Every SAT verdict must agree, in both directions. *)
let exhaustive_testable net fault =
  let n_in = Array.length net.N.inputs in
  let testable = ref false in
  for v = 0 to (1 lsl n_in) - 1 do
    let inputs = Array.init n_in (fun k -> (v lsr k) land 1) in
    let good = N.eval_outputs net ~inputs in
    let bad = N.eval_outputs ~fault net ~inputs in
    if Array.exists2 (fun a b -> (a lxor b) land 1 <> 0) good bad then
      testable := true
  done;
  !testable

(* A netlist with a genuinely redundant region: f = (a & b) | (a & ~b)
   collapses to a, so several faults in the two-cube implementation are
   untestable. *)
let redundant_net () =
  let b = B.create "red" in
  let a = B.input b "a" in
  let bb = B.input b "b" in
  let nb = B.not_ b bb in
  let t1 = B.and_ b [ a; bb ] in
  let t2 = B.and_ b [ a; nb ] in
  let f = B.or_ b [ t1; t2 ] in
  B.output b "f" f;
  B.finish b

let check_prove_vs_sim ?(jobs = 1) net =
  let v = Prove.redundant ~jobs net in
  let in_list = List.mem in
  List.iter
    (fun fault ->
      let untestable_by_sat = in_list fault v.Prove.redundant in
      let testable_by_sim = exhaustive_testable net fault in
      if untestable_by_sat && testable_by_sim then
        Alcotest.failf "fault on gate %d proven redundant but simulable"
          fault.N.gate;
      if (not untestable_by_sat) && not testable_by_sim then
        Alcotest.failf "fault on gate %d testable by SAT but not by simulation"
          fault.N.gate)
    (N.fault_sites net);
  v

let test_prove_vs_sim () =
  let v = check_prove_vs_sim (redundant_net ()) in
  check_bool "found redundancy" true (List.length v.Prove.redundant > 0);
  ignore (check_prove_vs_sim (reference_net ()))

let test_prove_jobs_deterministic () =
  let net = redundant_net () in
  let a = Prove.redundant ~jobs:1 net in
  let b = Prove.redundant ~jobs:4 net in
  check_bool "redundant list independent of jobs" true
    (a.Prove.redundant = b.Prove.redundant);
  check_int "classes agree" a.Prove.redundant_classes b.Prove.redundant_classes

(* --- cover encoder ---------------------------------------------------- *)

let test_cover_encoding () =
  let on =
    Cover.of_strings ~num_vars:3 ~num_outputs:2
      [ "11- 10"; "--0 01"; "001 11" ]
  in
  let s = Solver.create () in
  let inputs = Cnf.fresh_inputs s 3 in
  let outs = Cnf.add_cover s on ~inputs in
  for v = 0 to 7 do
    let bits = Array.init 3 (fun k -> (v lsr (2 - k)) land 1) in
    (* variable 0 is the leftmost position, minterm bit num_vars-1-k *)
    let assumptions =
      List.init 3 (fun k ->
          if bits.(k) = 1 then inputs.(k) else Solver.negate inputs.(k))
    in
    check_bool "cover enc sat" true (is_sat (Solver.solve ~assumptions s));
    let want o =
      Array.exists
        (fun c -> Stc_logic.Cube.matches c v && Stc_logic.Cube.output_bit c o)
        on.Cover.cubes
    in
    Array.iteri
      (fun o l ->
        check_bool
          (Printf.sprintf "cover out %d at %d" o v)
          (want o) (Solver.value s l))
      outs
  done

let () =
  Alcotest.run "sat"
    [
      ( "solver",
        [
          Alcotest.test_case "pigeonhole" `Quick test_pigeonhole;
          qcheck test_random_3sat;
          Alcotest.test_case "assumptions" `Quick test_assumptions;
          Alcotest.test_case "unsat core" `Quick test_unsat_core;
        ] );
      ( "cnf",
        [
          Alcotest.test_case "tseitin good" `Quick test_tseitin_good;
          Alcotest.test_case "tseitin faulty" `Quick test_tseitin_faulty;
          Alcotest.test_case "cover encoding" `Quick test_cover_encoding;
        ] );
      ( "prove",
        [
          Alcotest.test_case "vs exhaustive sim" `Quick test_prove_vs_sim;
          Alcotest.test_case "jobs deterministic" `Quick
            test_prove_jobs_deterministic;
        ] );
    ]
